#include "core/machine.hh"

#include "sim/logging.hh"

namespace tmsim {

Machine::Machine(const MachineConfig& cfg_)
    : cfg(cfg_), tracerObj(eq), statSimTicks(statsReg.counter("sim.ticks"))
{
    if (cfg.numCpus < 1)
        fatal("Machine needs at least one CPU");
    threads.reserve(static_cast<size_t>(cfg.numCpus));
    tracerObj.setNumCpus(cfg.numCpus);
    memSys = std::make_unique<MemSystem>(eq, cfg.bus, cfg.memBytes,
                                         statsReg, cfg.store);
    memSys->detector().setTracer(&tracerObj);
    for (int i = 0; i < cfg.numCpus; ++i) {
        cpus.push_back(std::make_unique<Cpu>(i, cfg.htm, cfg.l1, cfg.l2,
                                             *memSys, statsReg));
        cpus.back()->setTracer(&tracerObj);
    }

    // Derived whole-run metrics, evaluated lazily at dump time.
    statsReg.formula("htm.abort_rate", "cpu*.rollbacks_outer",
                     "cpu*.htm.begins");
    statsReg.formula("htm.commit_rate", "cpu*.htm.outer_commits",
                     "cpu*.htm.begins");
    statsReg.formula("bus.utilization", "bus.busy_cycles", "sim.ticks");
    // Jain's fairness index over per-CPU outer commits: 1.0 when every
    // CPU commits equally often, 1/n when one CPU gets everything.
    statsReg.jainFairness("htm.commit_fairness",
                          "cpu*.htm.outer_commits");
}

void
Machine::spawn(int cpu_index, ThreadFn fn)
{
    if (cpu_index < 0 || cpu_index >= numCpus())
        fatal("spawn on nonexistent cpu %d", cpu_index);
    for (const auto& slot : threads) {
        if (slot.cpuIndex == cpu_index && !slot.task.done())
            fatal("cpu %d already has an active thread", cpu_index);
    }
    threads.push_back(ThreadSlot{cpu_index, std::move(fn), SimTask{}});
}

bool
Machine::allDone() const
{
    for (const auto& slot : threads)
        if (!slot.started || !slot.task.done())
            return false;
    return true;
}

Tick
Machine::run(Tick max_ticks)
{
    LogScope scope(logCtx);
    for (auto& slot : threads) {
        if (slot.started)
            continue;
        slot.task = slot.fn(*cpus[static_cast<size_t>(slot.cpuIndex)]);
        slot.started = true;
        // Stagger thread starts by one tick so identical bodies do not
        // proceed in pathological lockstep.
        SimTask* task = &slot.task;
        eq.schedule(static_cast<Cycles>(slot.cpuIndex),
                    [task] { task->start(); });
    }

    Tick end = eq.run(max_ticks);
    statSimTicks.set(end);

    for (auto& slot : threads) {
        if (slot.task.done())
            slot.task.result(); // rethrow escaped exceptions
    }
    if (!allDone() && eq.empty()) {
        fatal("deadlock: event queue drained with %zu thread(s) pending",
              threads.size());
    }
    return end;
}

} // namespace tmsim
