#include "core/cpu.hh"

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace tmsim {

Cpu::Cpu(CpuId id_, const HtmConfig& htm_cfg, const CacheGeometry& l1_geom,
         const CacheGeometry& l2_geom, MemSystem& mem_sys,
         StatsRegistry& stats)
    : cpuId(id_),
      eq(mem_sys.eventQueue()),
      memSys(mem_sys),
      statsReg(stats),
      l1(strfmt("cpu%d.l1", id_), l1_geom, htm_cfg.scheme,
         htm_cfg.maxHwLevels, stats),
      l2(strfmt("cpu%d.l2", id_), l2_geom, htm_cfg.scheme,
         htm_cfg.maxHwLevels, stats),
      ctx(id_, htm_cfg, mem_sys.memory(), &l1, &l2, stats),
      det(mem_sys.detector()),
      tr(&TxTracer::nil()),
      statLoads(stats.counter(strfmt("cpu%d.loads", id_))),
      statStores(stats.counter(strfmt("cpu%d.stores", id_))),
      statViolationsTaken(
          stats.counter(strfmt("cpu%d.violations_taken", id_))),
      statRollbacksToOutermost(
          stats.counter(strfmt("cpu%d.rollbacks_outer", id_))),
      statRollbacksToInner(
          stats.counter(strfmt("cpu%d.rollbacks_inner", id_))),
      statOuterCommits(
          stats.counter(strfmt("cpu%d.htm.outer_commits", id_))),
      statRestarts(stats.counter(strfmt("cpu%d.htm.restarts", id_))),
      statCapacityRestarts(
          stats.counter(strfmt("cpu%d.htm.capacity_restarts", id_))),
      statWastedCycles(
          stats.counter(strfmt("cpu%d.htm.wasted_cycles", id_))),
      statBusBusy(stats.counter(strfmt("cpu%d.bus.busy_cycles", id_))),
      distTxDurCommitted(
          stats.distribution("htm.tx_duration_committed")),
      distTxDurViolated(stats.distribution("htm.tx_duration_violated")),
      distVioRestart(stats.distribution("htm.violation_to_restart"))
{
    if (l1_geom.lineBytes != l2_geom.lineBytes)
        fatal("L1 and L2 must use the same line size");
    memSys.registerCpu(cpuId, &l1, &l2, &ctx);
}

void
Cpu::checkAlign(Addr addr)
{
    if (addr % wordBytes != 0)
        panic("unaligned access at 0x%llx",
              static_cast<unsigned long long>(addr));
}

int
Cpu::lowestLevel(std::uint32_t mask)
{
    if (mask == 0)
        panic("lowestLevel of empty mask");
    return __builtin_ctz(mask) + 1;
}

void
Cpu::setTracer(TxTracer* t)
{
    tr = t;
    ctx.setTracer(t);
}

void
Cpu::setViolationProtocol(ViolationProtocol p)
{
    violationProtocol = std::move(p);
}

void
Cpu::setAbortProtocol(AbortProtocol p)
{
    abortProtocol = std::move(p);
}

SimTask
Cpu::poll()
{
    if (ctx.deliverable())
        co_await deliverViolations();
}

SimTask
Cpu::deliverViolations()
{
    while (ctx.deliverable()) {
        ctx.clampMasksToDepth();
        if (!ctx.inTx() || ctx.xvcurrent() == 0)
            break;
        // Hardware saves xvpc/xvaddr, disables reporting and jumps to
        // xvhcode; the installed protocol is that code.
        ctx.setReporting(false);
        ++violationsDelivered;
        ++statViolationsTaken;
        tr->instant(cpuId, TxTracer::Ev::ViolationDelivered, ctx.depth(),
                    ctx.xvaddr(), ctx.xvattacker());
        // The report registers are now saved into the handler frame;
        // a conflict raised while the handler runs gets its own report.
        ctx.consumeReport();
        if (violationProtocol)
            co_await violationProtocol(*this);
        else
            co_await defaultViolationProtocol();
        // The protocol chose to continue the transaction: xvret.
        if (!ctx.returnFromHandler())
            break;
    }
}

SimTask
Cpu::defaultViolationProtocol()
{
    co_await rollbackAndThrow(lowestLevel(ctx.xvcurrent()));
}

SimTask
Cpu::rollbackAndThrow(int target_level)
{
    // Paper section 7: a rollback without registered handlers takes 6
    // instructions (handler-stack probe, xrwsetclear, xregrestore).
    retire(6);
    co_await Delay{eq, 6};
    Addr where = ctx.xvaddr();
    rawRollback(target_level);
    throw TxRollback{target_level, where};
}

void
Cpu::rawRollback(int target_level)
{
    if (target_level <= 1) {
        ++statRollbacksToOutermost;
        if (ctx.inTx()) {
            const Tick wasted = eq.curTick() - ctx.age();
            distTxDurViolated.sample(wasted);
            statWastedCycles += wasted;
        }
    } else {
        ++statRollbacksToInner;
    }
    // Retract serialisation slots of validated levels about to unwind
    // (an open-nested child validated, then an ancestor was violated
    // before the child's xcommit applied anything).
    if (target_level >= 1 && target_level <= ctx.depth()) {
        const std::uint32_t doomed =
            ctx.validatedLevels() & ~((1u << (target_level - 1)) - 1);
        for (std::uint32_t m = doomed; m; m &= m - 1)
            memSys.notifySerializeCancelled(cpuId);
    }
    for (int lvl = ctx.depth(); lvl >= target_level; --lvl) {
        auto it = lockedAtLevel.find(lvl);
        if (it != lockedAtLevel.end()) {
            det.unlockLines(ctx, it->second);
            lockedAtLevel.erase(it);
        }
    }
    ctx.rollbackTo(target_level);
    // Attribute the restart reason: a rollback consuming a capacity
    // abort is counted separately and latched for the runtime's retry
    // loop (capacity restarts skip backoff — the retried attempt runs
    // virtualised, so waiting buys nothing).
    lastRollbackCapacity = ctx.takeCapacityRestart();
    if (lastRollbackCapacity)
        ++statCapacityRestarts;
    restartPending = true;
    restartFromTick = eq.curTick();
    // Re-enable reporting and promote anything that arrived while the
    // handler ran; survivors are delivered at the next poll point.
    ctx.returnFromHandler();
}

SimTask
Cpu::exec(std::uint64_t n)
{
    if (ctx.deliverable())
        co_await deliverViolations();
    if (n == 0)
        co_return;
    retire(n);
    co_await Delay{eq, n};
    if (ctx.deliverable())
        co_await deliverViolations();
}

WordTask
Cpu::load(Addr addr)
{
    checkAlign(addr);
    if (ctx.deliverable())
        co_await deliverViolations();
    retire(1);
    ++statLoads;
    const Addr unit = ctx.trackUnit(addr);
    {
        // Inlined timed access: doing the lookup here instead of in a
        // child coroutine saves a frame allocation per memory access.
        const Addr lineA = ctx.lineOf(addr);
        MemSystem::Lookup lk = memSys.lookup(cpuId, lineA);
        if (lk.latency)
            co_await Delay{eq, lk.latency};
        if (lk.needsBus)
            co_await memSys.busFill(cpuId, lineA);
    }
    // A validated transaction pins its write-set until xcommit; late
    // readers stall rather than observe soon-to-be-replaced data.
    while (det.lockedByOther(ctx, unit))
        co_await det.waitUnlocked(ctx, unit);
    if (ctx.deliverable())
        co_await deliverViolations();

    if (!ctx.inTx()) {
        // A validated peer that wrote this unit is already serialised
        // before us; wait for its commit instead of returning the
        // value it is about to replace.
        while (det.lockedByOther(ctx, unit) ||
               det.validatedPeerBlocks(cpuId, unit, false)) {
            if (det.lockedByOther(ctx, unit))
                co_await det.waitUnlocked(ctx, unit);
            else
                co_await Delay{eq, 2};
        }
        co_return det.resolveNonTxLoad(cpuId, addr,
                                       memSys.memory().read(addr));
    }

    if (ctx.config().conflict == ConflictMode::Eager &&
        (ctx.levelsReading(unit) | ctx.levelsWriting(unit)) == 0) {
        Cycles pen = det.overflowPenalty();
        if (pen) {
            co_await Delay{eq, pen};
            if (ctx.deliverable())
                co_await deliverViolations();
        }
        CpuId peer = -1;
        auto verdict = det.eagerCheck(ctx, unit, false, &peer);
        if (verdict == ConflictDetector::Verdict::SelfViolate) {
            ctx.raiseViolation(1u << (ctx.depth() - 1), unit, peer);
            co_await deliverViolations();
        }
    }
    co_return ctx.specRead(addr);
}

SimTask
Cpu::store(Addr addr, Word value)
{
    checkAlign(addr);
    if (ctx.deliverable())
        co_await deliverViolations();
    retire(1);
    ++statStores;
    const Addr unit = ctx.trackUnit(addr);
    {
        // Inlined timed access: doing the lookup here instead of in a
        // child coroutine saves a frame allocation per memory access.
        const Addr lineA = ctx.lineOf(addr);
        MemSystem::Lookup lk = memSys.lookup(cpuId, lineA);
        if (lk.latency)
            co_await Delay{eq, lk.latency};
        if (lk.needsBus)
            co_await memSys.busFill(cpuId, lineA);
    }
    while (det.lockedByOther(ctx, unit))
        co_await det.waitUnlocked(ctx, unit);
    if (ctx.deliverable())
        co_await deliverViolations();

    if (!ctx.inTx()) {
        // A validated peer with this unit in its read- or write-set is
        // already serialised before us: storing now would clobber a
        // value its commit depends on (or lose ours under its pending
        // write-back). Stall until it commits.
        while (det.lockedByOther(ctx, unit) ||
               det.validatedPeerBlocks(cpuId, unit, true)) {
            if (det.lockedByOther(ctx, unit))
                co_await det.waitUnlocked(ctx, unit);
            else
                co_await Delay{eq, 2};
        }
        // Strong atomicity: a non-transactional store violates every
        // transaction speculating on the unit and updates memory now;
        // in-place speculative writers get their undo entries patched
        // so their rollback keeps this value.
        det.nonTxStore(cpuId, unit);
        memSys.memory().write(addr, value);
        det.patchInPlaceWriters(cpuId, unit, addr, value);
        memSys.commitInvalidate(cpuId, ctx.lineOf(addr));
        co_return;
    }

    if (ctx.config().conflict == ConflictMode::Eager &&
        ctx.levelsWriting(unit) == 0) {
        Cycles pen = det.overflowPenalty();
        if (pen) {
            co_await Delay{eq, pen};
            if (ctx.deliverable())
                co_await deliverViolations();
        }
        CpuId peer = -1;
        auto verdict = det.eagerCheck(ctx, unit, true, &peer);
        if (verdict == ConflictDetector::Verdict::SelfViolate) {
            ctx.raiseViolation(1u << (ctx.depth() - 1), unit, peer);
            co_await deliverViolations();
        }
    }
    ctx.specWrite(addr, value);
}

int
Cpu::registerOpClass(const std::string& name)
{
    auto it = opClassIds.find(name);
    if (it != opClassIds.end())
        return it->second;
    const int id = static_cast<int>(opClasses.size());
    opClasses.push_back(OpClassStats{
        &statsReg.distribution("htm.tx_duration_committed." + name),
        &statsReg.distribution("htm.violation_to_restart." + name)});
    opClassIds.emplace(name, id);
    return id;
}

void
Cpu::consumeRestart()
{
    if (!restartPending)
        return;
    restartPending = false;
    ++statRestarts;
    const Tick lat = eq.curTick() - restartFromTick;
    distVioRestart.sample(lat);
    // The restart belongs to the attempt that was rolled back, whose
    // class is still latched in activeOpClass.
    if (activeOpClass >= 0)
        opClasses[static_cast<size_t>(activeOpClass)].vioRestart->sample(
            lat);
}

SimTask
Cpu::xbegin()
{
    if (ctx.deliverable())
        co_await deliverViolations();
    retire(1);
    consumeRestart();
    if (!ctx.inTx())
        activeOpClass = curOpClass;
    ctx.begin(TxKind::Closed, eq.curTick());
    co_await Delay{eq, 1};
}

SimTask
Cpu::xbeginOpen()
{
    if (ctx.deliverable())
        co_await deliverViolations();
    retire(1);
    consumeRestart();
    if (!ctx.inTx())
        activeOpClass = curOpClass;
    ctx.begin(TxKind::Open, eq.curTick());
    co_await Delay{eq, 1};
}

SimTask
Cpu::xvalidate()
{
    if (ctx.deliverable())
        co_await deliverViolations();
    retire(1);
    co_await Delay{eq, 1};
    if (!ctx.inTx())
        fatal("xvalidate outside a transaction");

    // A subsumed begin or a closed-nested transaction validates for
    // free: its fate is tied to the outermost transaction.
    if (ctx.topIsSubsumed())
        co_return;
    const bool outermost = ctx.depth() == 1;
    const bool open = ctx.top().kind == TxKind::Open;
    if (!outermost && !open)
        co_return;
    if (ctx.top().status == TxStatus::Validated)
        co_return;

    // A conflict recorded against this level — even one that arrived
    // while violation reporting was disabled (handler context) — must
    // be delivered before validation can succeed.
    ctx.promotePendingForLevel(ctx.depth());
    if (ctx.xvcurrent() & (1u << (ctx.depth() - 1))) {
        ctx.setReporting(true);
        co_await deliverViolations();
    }

    if (ctx.config().conflict == ConflictMode::Eager) {
        // Eager systems resolved every conflict at access time; once no
        // violation is pending, all prior accesses are conflict-free.
        ctx.setTopValidated();
        memSys.notifySerialized(cpuId, !outermost);
        co_return;
    }

    // Lazy (TCC-style) validation: acquire the commit token, broadcast
    // the write-set, pin the lines until xcommit.
    Bus& bus = memSys.bus();
    int commitYields = 0;
    constexpr int maxCommitYields = 8;
    for (;;) {
        ctx.promotePendingForLevel(ctx.depth());
        if (ctx.xvcurrent() & (1u << (ctx.depth() - 1)))
            ctx.setReporting(true);
        if (ctx.deliverable())
            co_await deliverViolations();
        const std::vector<Addr>& lines = ctx.topWriteLines();
        if (lines.empty()) {
            // Read-only transaction: nothing to broadcast or pin.
            ctx.setTopValidated();
            memSys.notifySerialized(cpuId, !outermost);
            co_return;
        }
        bool waited = false;
        for (Addr line : lines) {
            while (det.lockedByOther(ctx, line)) {
                waited = true;
                co_await det.waitUnlocked(ctx, line);
            }
        }
        if (waited)
            continue;

        co_await bus.commitToken().acquire();
        bus.countTokenGrant();
        if (ctx.deliverable() || det.anyLockedByOther(ctx, lines)) {
            bus.commitToken().release();
            continue;
        }

        // Commit arbitration: the contention manager may tell this
        // committer to surrender its slot to a starving reader (the
        // Hybrid policy's must-win escalation). Yield by pausing, not
        // aborting: release the token and retry shortly, opening a
        // window for the escalated reader to grab the token and commit
        // first. The committer keeps its speculative state — if the
        // reader's commit genuinely conflicts, its broadcast violates
        // this committer through the normal path. Bounded so a
        // long-running reader cannot pin a validated committer forever.
        if (commitYields < maxCommitYields) {
            const auto yield = det.commitYieldTarget(ctx, lines);
            if (yield.yield) {
                ++commitYields;
                bus.commitToken().release();
                co_await Delay{eq, Cycles{4}};
                continue;
            }
        }

        // Commit point: violate conflicting readers, pin the write-set.
        Cycles penalty = det.broadcastWriteSet(ctx, lines);
        det.lockLines(ctx, lines);
        lockedAtLevel[ctx.depth()] = lines;
        ctx.setTopValidated();
        memSys.notifySerialized(cpuId, !outermost);

        const Addr unitBytes =
            ctx.config().granularity == TrackGranularity::Word
                ? wordBytes
                : l1.geometry().lineBytes;
        const Cycles beats =
            lines.size() * (1 + bus.beatsForLine(unitBytes));
        co_await bus.occupy(beats);
        statBusBusy += bus.config().arbitrationLatency + beats;
        if (penalty)
            co_await Delay{eq, penalty};
        bus.commitToken().release();
        co_return;
    }
}

SimTask
Cpu::xcommit()
{
    if (ctx.deliverable())
        co_await deliverViolations();
    retire(1);
    co_await Delay{eq, 1};
    if (!ctx.inTx())
        fatal("xcommit outside a transaction");

    if (ctx.topIsSubsumed()) {
        ctx.commitSubsumed();
        co_return;
    }

    const bool outermost = ctx.depth() == 1;
    const bool open = ctx.top().kind == TxKind::Open;
    if (!outermost && !open) {
        // Closed-nested commit: merge into the parent.
        Cycles cost = ctx.commitClosedTop();
        if (cost)
            co_await Delay{eq, cost};
        co_return;
    }

    if (ctx.top().status != TxStatus::Validated)
        fatal("xcommit without a preceding xvalidate");

    const std::vector<Addr>& lines = ctx.topWriteLines();
    Cycles cost = ctx.commitTopToMemory();
    // Under word-granular tracking several units share a line; snoop
    // each line once, not once per written word.
    invalidateScratch.clear();
    for (Addr unit : lines) {
        const Addr line = ctx.lineOf(unit);
        if (invalidateScratch.insert(line).second)
            memSys.commitInvalidate(cpuId, line);
    }
    auto it = lockedAtLevel.find(ctx.depth());
    if (it != lockedAtLevel.end()) {
        det.unlockLines(ctx, it->second);
        lockedAtLevel.erase(it);
    }
    if (outermost) {
        ++statOuterCommits;
        const Tick dur = eq.curTick() - ctx.age();
        distTxDurCommitted.sample(dur);
        if (activeOpClass >= 0)
            opClasses[static_cast<size_t>(activeOpClass)]
                .durCommitted->sample(dur);
    }
    ctx.popCommittedTop();
    if (cost)
        co_await Delay{eq, cost};
}

SimTask
Cpu::xrwsetclear()
{
    retire(1);
    co_await Delay{eq, 1};
    if (!ctx.inTx())
        fatal("xrwsetclear outside a transaction");
    ctx.clearTopSets();
    ctx.clearViolationBits(ctx.depth());
}

SimTask
Cpu::xregrestore()
{
    retire(1);
    co_await Delay{eq, 1};
}

SimTask
Cpu::xabort(Word code)
{
    retire(1);
    co_await Delay{eq, 1};
    if (!ctx.inTx())
        fatal("xabort outside a transaction");
    tr->instant(cpuId, TxTracer::Ev::AbortRequested, ctx.depth());
    // Hardware jumps to xahcode with reporting disabled.
    ctx.setReporting(false);
    if (abortProtocol) {
        co_await abortProtocol(*this, code);
        // Protocol returned without unwinding: resume the transaction.
        ctx.setReporting(true);
        co_return;
    }
    // Default: roll back the current transaction and unwind. Raw-ISA
    // users have no runtime retry loop, so a voluntary abort that
    // leaves the outermost level ends the attempt sequence for the
    // contention manager's fairness bookkeeping.
    int target = ctx.depth();
    retire(5);
    co_await Delay{eq, 5};
    rawRollback(target);
    if (!ctx.inTx())
        det.noteSequenceAbandoned(cpuId);
    throw TxAbortSignal{target, code};
}

WordTask
Cpu::imld(Addr addr)
{
    checkAlign(addr);
    if (ctx.deliverable())
        co_await deliverViolations();
    retire(1);
    {
        // Inlined timed access: doing the lookup here instead of in a
        // child coroutine saves a frame allocation per memory access.
        const Addr lineA = ctx.lineOf(addr);
        MemSystem::Lookup lk = memSys.lookup(cpuId, lineA);
        if (lk.latency)
            co_await Delay{eq, lk.latency};
        if (lk.needsBus)
            co_await memSys.busFill(cpuId, lineA);
    }
    co_return ctx.immRead(addr);
}

SimTask
Cpu::imst(Addr addr, Word value)
{
    checkAlign(addr);
    if (ctx.deliverable())
        co_await deliverViolations();
    retire(1);
    {
        // Inlined timed access: doing the lookup here instead of in a
        // child coroutine saves a frame allocation per memory access.
        const Addr lineA = ctx.lineOf(addr);
        MemSystem::Lookup lk = memSys.lookup(cpuId, lineA);
        if (lk.latency)
            co_await Delay{eq, lk.latency};
        if (lk.needsBus)
            co_await memSys.busFill(cpuId, lineA);
    }
    ctx.immWrite(addr, value);
}

SimTask
Cpu::imstid(Addr addr, Word value)
{
    checkAlign(addr);
    if (ctx.deliverable())
        co_await deliverViolations();
    retire(1);
    {
        // Inlined timed access: doing the lookup here instead of in a
        // child coroutine saves a frame allocation per memory access.
        const Addr lineA = ctx.lineOf(addr);
        MemSystem::Lookup lk = memSys.lookup(cpuId, lineA);
        if (lk.latency)
            co_await Delay{eq, lk.latency};
        if (lk.needsBus)
            co_await memSys.busFill(cpuId, lineA);
    }
    ctx.immWriteIdempotent(addr, value);
}

SimTask
Cpu::release(Addr addr)
{
    if (ctx.deliverable())
        co_await deliverViolations();
    retire(1);
    co_await Delay{eq, 1};
    // Paper 4.7: release drops exactly the addressed conflict-tracking
    // unit — under word tracking, only that word — so a conflict on a
    // neighbouring word of the same line must still violate.
    ctx.releaseLine(addr);
}

} // namespace tmsim
