/**
 * @file
 * The ISA layer: one hardware CPU context exposing every instruction of
 * paper table 2 plus plain loads/stores and ALU execution, with the
 * violation/abort delivery protocol of section 4.
 *
 * Simulated software is written as coroutines calling these methods;
 * each call charges instructions and cycles and may suspend for memory
 * timing. Rollback unwinds via TxRollback/TxAbortSignal exceptions.
 */

#ifndef TMSIM_CORE_CPU_HH
#define TMSIM_CORE_CPU_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/mem_system.hh"
#include "core/tx_signals.hh"
#include "htm/htm_context.hh"
#include "mem/cache.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace tmsim {

class Cpu
{
  public:
    Cpu(CpuId id, const HtmConfig& htm_cfg, const CacheGeometry& l1_geom,
        const CacheGeometry& l2_geom, MemSystem& mem_sys,
        StatsRegistry& stats);

    Cpu(const Cpu&) = delete;
    Cpu& operator=(const Cpu&) = delete;

    CpuId id() const { return cpuId; }
    HtmContext& htm() { return ctx; }
    const HtmContext& htm() const { return ctx; }
    EventQueue& eventQueue() { return eq; }

    /** The machine-wide lifecycle tracer (never null; defaults to
     *  TxTracer::nil()). Set by the Machine at construction. */
    TxTracer* tracer() { return tr; }
    void setTracer(TxTracer* t);
    MemSystem& memSystem() { return memSys; }
    BackingStore& memory() { return memSys.memory(); }
    Tick now() const { return eq.curTick(); }

    /** Retired instruction count (CPI=1 for non-memory instructions). */
    std::uint64_t instret() const { return instrRetired; }

    /** Violations delivered to this CPU's handler protocol. */
    std::uint64_t violationsTaken() const { return violationsDelivered; }

    // --- plain execution ---

    /** Execute @p n non-memory instructions (n cycles, CPI = 1). */
    SimTask exec(std::uint64_t n);

    /** Timed load; transactional when inside a transaction. */
    WordTask load(Addr addr);

    /** Timed store; transactional when inside a transaction. */
    SimTask store(Addr addr, Word value);

    // --- transaction definition (table 2) ---

    /** Begin a (closed-nested) transaction. */
    SimTask xbegin();

    /** Begin an open-nested transaction. */
    SimTask xbeginOpen();

    /**
     * Validate the current transaction's read-set: once this returns,
     * the transaction cannot be rolled back due to a prior access.
     */
    SimTask xvalidate();

    /** Atomically commit the current (validated) transaction. */
    SimTask xcommit();

    // --- state & handler management (table 2) ---

    /** Discard the top level's read/write-set and clear its pending
     *  violation bits (used by manual rollback sequences). */
    SimTask xrwsetclear();

    /** Restore the register checkpoint (cost model only: the actual
     *  restart happens by re-invoking the transaction body). */
    SimTask xregrestore();

    /**
     * Voluntarily abort the current transaction: runs the abort
     * protocol, which rolls back and throws TxAbortSignal.
     */
    SimTask xabort(Word code = 0);

    /** Re-enable violation reporting (xenviolrep). */
    void xenviolrep() { ctx.setReporting(true); }

    /**
     * xvret: re-enable reporting, promote pending violations.
     * @return true if another delivery is required.
     */
    bool xvret() { return ctx.returnFromHandler(); }

    // --- optional performance instructions (table 2) ---

    /** imld: load without read-set insertion. */
    WordTask imld(Addr addr);

    /** imst: immediate store (undo kept, no write-set insertion). */
    SimTask imst(Addr addr, Word value);

    /** imstid: idempotent immediate store (no undo information). */
    SimTask imstid(Addr addr, Word value);

    /** release: drop an address from the current read-set. */
    SimTask release(Addr addr);

    // --- handler protocol hooks (xvhcode / xahcode analogues) ---

    /** Runs on violation delivery; throws to roll back, or returns to
     *  continue the interrupted transaction (xvret semantics). */
    using ViolationProtocol = std::function<SimTask(Cpu&)>;

    /** Runs on xabort; receives the abort code. Must unwind. */
    using AbortProtocol = std::function<SimTask(Cpu&, Word)>;

    void setViolationProtocol(ViolationProtocol p);
    void setAbortProtocol(AbortProtocol p);

    // --- rollback services for protocols ---

    /**
     * Hardware rollback to @p target_level: releases commit locks held
     * by discarded levels, restores/discards speculative state, and
     * re-enables violation reporting (promoting pending conflicts).
     */
    void rawRollback(int target_level);

    /** Charge the handler-free rollback cost (paper: 6 instructions),
     *  rawRollback and throw TxRollback. */
    SimTask rollbackAndThrow(int target_level);

    /** Deliver any pending violation now (poll point for long host-side
     *  computations inside workloads). */
    SimTask poll();

    /** Restart reason of the last rawRollback: true when it was caused
     *  by a capacity abort (bounded read/write-set caps, or a
     *  transactional-line eviction in CapacityMode::Abort). The
     *  runtime's retry loop consults this to skip backoff — waiting
     *  cannot shrink a footprint, and the restarted attempt already
     *  runs virtualised. */
    bool lastRollbackWasCapacity() const { return lastRollbackCapacity; }

    // --- op-class tagging (per-class tail latency) ---

    /**
     * Register (or look up) a named op class and return its dense id
     * for setOpClass(). Registration creates the chip-wide
     * htm.tx_duration_committed.<name> and
     * htm.violation_to_restart.<name> distributions (shared across
     * CPUs through the registry). Host-side only: costs no simulated
     * instructions or cycles.
     */
    int registerOpClass(const std::string& name);

    /**
     * Tag subsequent outermost transactions with op class @p id (-1,
     * the default, leaves them untagged). The class is latched at the
     * outermost xbegin and attributed to that attempt's commit
     * duration and violation-to-restart latency.
     */
    void setOpClass(int id) { curOpClass = id; }
    int opClass() const { return curOpClass; }

  private:
    SimTask deliverViolations();
    SimTask defaultViolationProtocol();

    /** Account a pending rollback-to-restart interval at xbegin. */
    void consumeRestart();

    void
    retire(std::uint64_t n)
    {
        instrRetired += n;
    }

    static void checkAlign(Addr addr);
    static int lowestLevel(std::uint32_t mask);

    CpuId cpuId;
    EventQueue& eq;
    MemSystem& memSys;
    StatsRegistry& statsReg;
    Cache l1;
    Cache l2;
    HtmContext ctx;
    ConflictDetector& det;
    TxTracer* tr;

    ViolationProtocol violationProtocol;
    AbortProtocol abortProtocol;

    /** Lines locked at xvalidate, per nesting level, until xcommit. */
    std::unordered_map<int, std::vector<Addr>> lockedAtLevel;

    /** Scratch set reused by xcommit to dedupe per-word track units to
     *  whole lines before commit-invalidating peers. */
    std::unordered_set<Addr> invalidateScratch;

    std::uint64_t instrRetired = 0;
    std::uint64_t violationsDelivered = 0;

    /** Tick of the last rawRollback, pending consumption by the next
     *  xbegin (violation-to-restart latency measurement). */
    Tick restartFromTick = 0;
    bool restartPending = false;

    /** Restart-reason latch (see lastRollbackWasCapacity). */
    bool lastRollbackCapacity = false;

    StatsRegistry::Counter& statLoads;
    StatsRegistry::Counter& statStores;
    StatsRegistry::Counter& statViolationsTaken;
    StatsRegistry::Counter& statRollbacksToOutermost;
    StatsRegistry::Counter& statRollbacksToInner;
    /** Outermost (depth-1) commits: the samples counter of
     *  htm.tx_duration_committed. */
    StatsRegistry::Counter& statOuterCommits;
    /** Begins that re-start a transaction after a rollback: the
     *  samples counter of htm.violation_to_restart. */
    StatsRegistry::Counter& statRestarts;
    /** The subset of restarts whose rollback was a capacity abort. */
    StatsRegistry::Counter& statCapacityRestarts;
    /** Cycles spent in transactions that were later rolled back. */
    StatsRegistry::Counter& statWastedCycles;
    /** This CPU's share of bus.busy_cycles (shared counter with
     *  MemSystem::busFill; per-requester occupancy). */
    StatsRegistry::Counter& statBusBusy;

    /** Chip-wide outcome-split duration/latency histograms. */
    StatsRegistry::Distribution& distTxDurCommitted;
    StatsRegistry::Distribution& distTxDurViolated;
    StatsRegistry::Distribution& distVioRestart;

    /** Per-op-class slices of the commit-duration and restart-latency
     *  histograms (chip-wide, shared by name through the registry). */
    struct OpClassStats
    {
        StatsRegistry::Distribution* durCommitted;
        StatsRegistry::Distribution* vioRestart;
    };
    std::vector<OpClassStats> opClasses;
    std::unordered_map<std::string, int> opClassIds;
    /** Class for the next outermost xbegin (setOpClass). */
    int curOpClass = -1;
    /** Class latched by the current/last outermost attempt. */
    int activeOpClass = -1;
};

} // namespace tmsim

#endif // TMSIM_CORE_CPU_HH
