/**
 * @file
 * The simulated chip-multiprocessor: CPUs, private caches, bus, memory,
 * HTM machinery and the run loop (paper section 7 machine model: up to
 * 16 cores, private 32KB L1 / 512KB L2, 16-byte split-transaction bus).
 */

#ifndef TMSIM_CORE_MACHINE_HH
#define TMSIM_CORE_MACHINE_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/cpu.hh"
#include "core/mem_system.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/task.hh"
#include "sim/trace.hh"

namespace tmsim {

/** Full machine configuration. Defaults mirror the paper's setup. */
struct MachineConfig
{
    int numCpus = 8;
    CacheGeometry l1{32 * 1024, 32, 4, 1};
    CacheGeometry l2{512 * 1024, 32, 8, 12};
    BusConfig bus{};
    HtmConfig htm{};
    Addr memBytes = 64ull * 1024 * 1024;
    /** Host representation of the memory image (semantics-neutral). */
    StoreMode store = defaultStoreMode();
};

/**
 * A simulated CMP. Spawn one logical thread per CPU, then run() to
 * completion; stats and memory can be inspected afterwards.
 */
class Machine
{
  public:
    explicit Machine(const MachineConfig& cfg = MachineConfig{});

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    int numCpus() const { return static_cast<int>(cpus.size()); }
    Cpu& cpu(int i) { return *cpus[static_cast<size_t>(i)]; }

    EventQueue& eventQueue() { return eq; }
    StatsRegistry& stats() { return statsReg; }

    /** The machine-wide transaction lifecycle tracer. Disabled (and
     *  effectively free) until tracer().enable(true). */
    TxTracer& tracer() { return tracerObj; }

    /**
     * This machine's diagnostic routing. Seeded from the context
     * active on the constructing thread (so a campaign worker's quiet
     * flag and fatal trap carry over) and installed as the calling
     * thread's current context for the duration of run(), keeping
     * concurrent machines' logging fully independent.
     */
    LogContext& logContext() { return logCtx; }
    MemSystem& memSystem() { return *memSys; }
    BackingStore& memory() { return memSys->memory(); }
    const MachineConfig& config() const { return cfg; }
    Tick now() const { return eq.curTick(); }

    /**
     * Observe the chip-global commit (serialisation) order: forwards to
     * MemSystem::setCommitOrderHooks. @p on_serialized fires once per
     * memory-committing level at its serialisation point;
     * @p on_cancelled retracts a validated level that rolled back
     * before committing. Used by the check/ oracle layer.
     */
    void
    setCommitOrderHooks(MemSystem::SerializeFn on_serialized,
                        MemSystem::SerializeCancelFn on_cancelled)
    {
        memSys->setCommitOrderHooks(std::move(on_serialized),
                                    std::move(on_cancelled));
    }

    /** A logical thread body bound to one CPU. */
    using ThreadFn = std::function<SimTask(Cpu&)>;

    /**
     * Bind a thread to CPU @p cpu_index. At most one thread per CPU.
     * The thread starts when run() is called.
     */
    void spawn(int cpu_index, ThreadFn fn);

    /**
     * Run until every spawned thread finishes (or @p max_ticks).
     * Rethrows any exception that escaped a thread; calls fatal() on
     * deadlock (event queue drained with threads still pending).
     * @return final simulated tick.
     */
    Tick run(Tick max_ticks = ~static_cast<Tick>(0));

    /** True once every spawned thread has completed. */
    bool allDone() const;

  private:
    struct ThreadSlot
    {
        int cpuIndex;
        ThreadFn fn;
        SimTask task;
        bool started = false;
    };

    MachineConfig cfg;
    LogContext logCtx = LogContext::inherit();
    EventQueue eq;
    StatsRegistry statsReg;
    TxTracer tracerObj;
    std::unique_ptr<MemSystem> memSys;
    std::vector<std::unique_ptr<Cpu>> cpus;
    std::vector<ThreadSlot> threads;

    /** Cached "sim.ticks" counter (resolved once; run() is hot in
     *  campaign sweeps that construct and run many machines). */
    StatsRegistry::Counter& statSimTicks;
};

} // namespace tmsim

#endif // TMSIM_CORE_MACHINE_HH
