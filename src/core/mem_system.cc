#include "core/mem_system.hh"

#include "sim/logging.hh"

namespace tmsim {

MemSystem::MemSystem(EventQueue& eq_, const BusConfig& bus_cfg,
                     Addr mem_bytes, StatsRegistry& stats,
                     StoreMode store_mode)
    : eq(eq_), statsReg(stats), store(mem_bytes, store_mode),
      sysBus(eq_, bus_cfg, stats), det(eq_, stats), serialize(eq_)
{
}

void
MemSystem::registerCpu(CpuId cpu, Cache* l1, Cache* l2, HtmContext* ctx)
{
    if (cpu != static_cast<CpuId>(ports.size()))
        panic("CPUs must register in order (got %d, expected %zu)", cpu,
              ports.size());
    ports.push_back(CpuPort{
        l1, l2, ctx,
        &statsReg.counter(strfmt("cpu%d.bus.busy_cycles", cpu))});
    det.addContext(ctx);
}

MemSystem::Lookup
MemSystem::lookup(CpuId cpu, Addr line_addr)
{
    CpuPort& port = ports[static_cast<size_t>(cpu)];
    Cycles lat = port.l1->geometry().hitLatency;
    if (port.l1->lookup(line_addr))
        return Lookup{lat, false};

    lat += port.l2->geometry().hitLatency;
    if (port.l2->lookup(line_addr)) {
        // Fill L1 from L2; an L1 eviction is not an overflow as long as
        // L2 still tracks the line, so only L2 victims count.
        port.l1->fill(line_addr);
        return Lookup{lat, false};
    }
    return Lookup{lat, true};
}

SimTask
MemSystem::busFill(CpuId cpu, Addr line_addr)
{
    CpuPort& port = ports[static_cast<size_t>(cpu)];
    const Addr lineBytes = port.l1->geometry().lineBytes;
    co_await sysBus.lineFetch(lineBytes);
    *port.busBusy += sysBus.config().arbitrationLatency + 1 +
                     sysBus.beatsForLine(lineBytes);
    EvictInfo l2Evict = port.l2->fill(line_addr);
    if (l2Evict.evicted && l2Evict.transactional)
        port.ctx->noteEviction(l2Evict);
    port.l1->fill(line_addr);
}

void
MemSystem::commitInvalidate(CpuId committer, Addr line_addr)
{
    for (size_t i = 0; i < ports.size(); ++i) {
        if (static_cast<CpuId>(i) == committer)
            continue;
        ports[i].l1->invalidateNonSpec(line_addr);
        ports[i].l2->invalidateNonSpec(line_addr);
    }
}

} // namespace tmsim
