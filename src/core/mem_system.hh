/**
 * @file
 * The uncore: backing memory, the system bus, the conflict detector,
 * and the per-CPU cache registry used for timed accesses and snooping.
 */

#ifndef TMSIM_CORE_MEM_SYSTEM_HH
#define TMSIM_CORE_MEM_SYSTEM_HH

#include <vector>

#include "htm/conflict_detector.hh"
#include "mem/backing_store.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace tmsim {

/**
 * Shared memory-system state of the chip. Each Cpu performs timed
 * accesses through here; commit broadcasts invalidate stale copies in
 * other CPUs' private caches.
 */
class MemSystem
{
  public:
    MemSystem(EventQueue& eq, const BusConfig& bus_cfg, Addr mem_bytes,
              StatsRegistry& stats);

    StatsRegistry& statsRegistry() { return statsReg; }

    BackingStore& memory() { return store; }
    Bus& bus() { return sysBus; }
    ConflictDetector& detector() { return det; }
    EventQueue& eventQueue() { return eq; }

    /** Global serialization resource for the no-transactional-I/O
     *  baseline ("revert to sequential execution"). */
    FifoResource& serializeLock() { return serialize; }

    /** Register one CPU's private caches (called by the Machine). */
    void registerCpu(CpuId cpu, Cache* l1, Cache* l2, HtmContext* ctx);

    /** Result of the synchronous part of a cache access. */
    struct Lookup
    {
        /** Cycles of latency payable immediately. */
        Cycles latency;
        /** The access missed in both private levels: fetch via bus. */
        bool needsBus;
    };

    /**
     * Probe the private hierarchy of @p cpu for @p line_addr, filling
     * on an L2 hit. Purely synchronous; the caller charges latency and,
     * if needsBus, awaits busFill().
     */
    Lookup lookup(CpuId cpu, Addr line_addr);

    /** Fetch @p line_addr over the bus and fill both private levels. */
    SimTask busFill(CpuId cpu, Addr line_addr);

    /**
     * Invalidate non-speculative copies of @p line_addr in every cache
     * except @p committer's (commit-broadcast / non-tx store snoop).
     */
    void commitInvalidate(CpuId committer, Addr line_addr);

  private:
    struct CpuPort
    {
        Cache* l1 = nullptr;
        Cache* l2 = nullptr;
        HtmContext* ctx = nullptr;
        /** Per-requester share of bus.busy_cycles (name-shared with the
         *  Cpu's statBusBusy; mirrors Bus::lineFetch accounting). */
        StatsRegistry::Counter* busBusy = nullptr;
    };

    EventQueue& eq;
    StatsRegistry& statsReg;
    BackingStore store;
    Bus sysBus;
    ConflictDetector det;
    FifoResource serialize;
    std::vector<CpuPort> ports;
};

} // namespace tmsim

#endif // TMSIM_CORE_MEM_SYSTEM_HH
