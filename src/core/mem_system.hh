/**
 * @file
 * The uncore: backing memory, the system bus, the conflict detector,
 * and the per-CPU cache registry used for timed accesses and snooping.
 */

#ifndef TMSIM_CORE_MEM_SYSTEM_HH
#define TMSIM_CORE_MEM_SYSTEM_HH

#include <functional>
#include <vector>

#include "htm/conflict_detector.hh"
#include "mem/backing_store.hh"
#include "mem/bus.hh"
#include "mem/cache.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace tmsim {

/**
 * Shared memory-system state of the chip. Each Cpu performs timed
 * accesses through here; commit broadcasts invalidate stale copies in
 * other CPUs' private caches.
 */
class MemSystem
{
  public:
    MemSystem(EventQueue& eq, const BusConfig& bus_cfg, Addr mem_bytes,
              StatsRegistry& stats,
              StoreMode store_mode = defaultStoreMode());

    StatsRegistry& statsRegistry() { return statsReg; }

    BackingStore& memory() { return store; }
    Bus& bus() { return sysBus; }
    ConflictDetector& detector() { return det; }
    EventQueue& eventQueue() { return eq; }

    /** Global serialization resource for the no-transactional-I/O
     *  baseline ("revert to sequential execution"). */
    FifoResource& serializeLock() { return serialize; }

    /** Register one CPU's private caches (called by the Machine). */
    void registerCpu(CpuId cpu, Cache* l1, Cache* l2, HtmContext* ctx);

    /** Result of the synchronous part of a cache access. */
    struct Lookup
    {
        /** Cycles of latency payable immediately. */
        Cycles latency;
        /** The access missed in both private levels: fetch via bus. */
        bool needsBus;
    };

    /**
     * Probe the private hierarchy of @p cpu for @p line_addr, filling
     * on an L2 hit. Purely synchronous; the caller charges latency and,
     * if needsBus, awaits busFill().
     */
    Lookup lookup(CpuId cpu, Addr line_addr);

    /** Fetch @p line_addr over the bus and fill both private levels. */
    SimTask busFill(CpuId cpu, Addr line_addr);

    /**
     * Invalidate non-speculative copies of @p line_addr in every cache
     * except @p committer's (commit-broadcast / non-tx store snoop).
     */
    void commitInvalidate(CpuId committer, Addr line_addr);

    // --- commit-order observation ---
    //
    // A transaction's serialisation point is the instant its top level
    // becomes Validated (lazy: commit-token broadcast; eager: all
    // access-time conflicts resolved). The hooks below let an external
    // oracle record the chip-global serialisation order of every
    // memory-committing level: outermost commits (open=false) and
    // open-nested commits (open=true). A validated level that is
    // nevertheless rolled back (an open-nested child unwound by a
    // violation against an ancestor) retracts its slot via the cancel
    // hook before any memory effect.

    /** Called at each serialisation point: (cpu, open_nested). */
    using SerializeFn = std::function<void(CpuId, bool)>;
    /** Called when a validated-but-uncommitted level rolls back. */
    using SerializeCancelFn = std::function<void(CpuId)>;

    void
    setCommitOrderHooks(SerializeFn on_serialized,
                        SerializeCancelFn on_cancelled)
    {
        serializedHook = std::move(on_serialized);
        cancelHook = std::move(on_cancelled);
    }

    void
    notifySerialized(CpuId cpu, bool open)
    {
        if (serializedHook)
            serializedHook(cpu, open);
    }

    void
    notifySerializeCancelled(CpuId cpu)
    {
        if (cancelHook)
            cancelHook(cpu);
    }

  private:
    struct CpuPort
    {
        Cache* l1 = nullptr;
        Cache* l2 = nullptr;
        HtmContext* ctx = nullptr;
        /** Per-requester share of bus.busy_cycles (name-shared with the
         *  Cpu's statBusBusy; mirrors Bus::lineFetch accounting). */
        StatsRegistry::Counter* busBusy = nullptr;
    };

    EventQueue& eq;
    StatsRegistry& statsReg;
    SerializeFn serializedHook;
    SerializeCancelFn cancelHook;
    BackingStore store;
    Bus sysBus;
    ConflictDetector det;
    FifoResource serialize;
    std::vector<CpuPort> ports;
};

} // namespace tmsim

#endif // TMSIM_CORE_MEM_SYSTEM_HH
