/**
 * @file
 * Control-transfer signals used to unwind transaction bodies.
 *
 * A violation or abort handler that decides to roll back performs the
 * hardware rollback (undo restore, set discard, register restore) and
 * then throws one of these through the coroutine chain; the owning
 * atomic() frame catches it. This models the xvpc redirection of the
 * paper's handler protocol in a structured way.
 */

#ifndef TMSIM_CORE_TX_SIGNALS_HH
#define TMSIM_CORE_TX_SIGNALS_HH

#include "sim/types.hh"

namespace tmsim {

/** Rollback-and-retry signal targeted at nesting level targetLevel. */
struct TxRollback
{
    /** The shallowest level that was rolled back (1-based). */
    int targetLevel;
    /** Conflict address (xvaddr) if available. */
    Addr vaddr;
};

/** Voluntary abort (xabort) unwinding to level targetLevel. */
struct TxAbortSignal
{
    int targetLevel;
    /** User abort code passed to xabort. */
    Word code;
};

} // namespace tmsim

#endif // TMSIM_CORE_TX_SIGNALS_HH
