/**
 * @file
 * Word-addressable simulated physical memory with a bump allocator for
 * workload setup.
 *
 * Two host representations, identical simulated semantics (every
 * untouched word reads as zero in both):
 *
 *  - Dense: one flat std::vector<Word> sized to the whole address
 *    space. Host footprint is O(address-space); cheapest per access.
 *  - Sparse: a page table of fixed-size chunks allocated on first
 *    *written* touch, so host footprint is O(touched chunks). This is
 *    what lets a production-scale workload declare a multi-GiB
 *    simulated address space (sharded warehouse pools, huge key
 *    ranges) and only pay for the lines it actually dirties.
 *
 * Reads never materialise a chunk; only writes do. A one-entry chunk
 * cache keeps the sparse fast path at "shift, compare, index".
 */

#ifndef TMSIM_MEM_BACKING_STORE_HH
#define TMSIM_MEM_BACKING_STORE_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace tmsim {

/** Host representation of the simulated memory image. */
enum class StoreMode
{
    Dense,
    Sparse,
};

/** Process-wide default representation (Sparse unless overridden).
 *  Tools set this from --store before constructing machines; it never
 *  affects simulated semantics, only host memory/speed. */
StoreMode defaultStoreMode();
void setDefaultStoreMode(StoreMode m);

/** Name <-> mode helpers for CLI surfaces. */
const char* storeModeName(StoreMode m);
bool storeModeFromName(const std::string& name, StoreMode& out);

/**
 * Parse a TMSIM_WATCH_ADDR-style watchpoint value. Returns invalidAddr
 * (watchpoint disabled) for null, empty or malformed input — with a
 * warning for the malformed case, so a typo'd address degrades to "no
 * watchpoint" loudly instead of silently watching address 0.
 */
Addr watchAddrFromEnv(const char* env);

/**
 * The architectural memory image. Committed transactional state and
 * non-speculative data live here. Access is untimed; all timing is
 * modelled by the cache hierarchy and bus.
 */
class BackingStore
{
  public:
    /** Sparse chunk size: 64 KiB (8192 words), a power of two. */
    static constexpr Addr defaultChunkBytes = 64 * 1024;

    /** @param size_bytes total simulated physical memory. */
    explicit BackingStore(Addr size_bytes,
                          StoreMode mode = defaultStoreMode(),
                          Addr chunk_bytes = defaultChunkBytes);

    /** Read the aligned 64-bit word at @p addr. */
    Word read(Addr addr) const;

    /** Write the aligned 64-bit word at @p addr. */
    void write(Addr addr, Word value);

    /** Total size in bytes. */
    Addr size() const { return bytes; }

    /**
     * Host-side allocation of simulated memory for workload setup and
     * for the runtime's thread-private regions (TCB stacks, handler
     * stacks, undo logs). Alignment defaults to a cache line.
     * Reserving address space is free in sparse mode; chunks only
     * materialise when written.
     */
    Addr allocate(Addr n_bytes, Addr align = 64);

    /** Current allocation high-water mark. */
    Addr brk() const { return brkPtr; }

    StoreMode mode() const { return storeMode; }
    Addr chunkBytes() const { return chunkSize; }

    /** Chunks holding at least one written word (sparse); in dense
     *  mode every chunk of the address space counts as touched. */
    std::size_t touchedChunks() const;

    /** Host words actually allocated for the image — the footprint
     *  the sparse mode exists to bound. */
    Addr hostWordsAllocated() const;

    // --- debug watchpoint (TMSIM_WATCH_ADDR) ---

    /** The watched address (invalidAddr = disabled). Per instance:
     *  initialised from the environment at construction, overridable
     *  so multi-Machine campaign workers and tests stay independent. */
    Addr watchAddr() const { return watchAddrVal; }
    void setWatchAddr(Addr a) { watchAddrVal = a; }

  private:
    void checkAddr(Addr addr) const;
    Word* chunkFor(Addr word_index, bool create) const;

    StoreMode storeMode;
    Addr bytes;
    Addr brkPtr;
    Addr watchAddrVal;

    // Dense image.
    std::vector<Word> words;

    // Sparse image: chunk index -> chunk storage (all-zero on first
    // touch), plus a one-entry cache of the last chunk hit. The map
    // and cache are mutated on write only; read() of an untouched
    // chunk returns 0 without materialising it.
    Addr chunkSize;
    Addr chunkWordsShift = 0; ///< log2(words per chunk)
    mutable std::unordered_map<Addr, std::unique_ptr<Word[]>> chunks;
    mutable Addr cachedChunk = ~static_cast<Addr>(0);
    mutable Word* cachedPtr = nullptr;
};

} // namespace tmsim

#endif // TMSIM_MEM_BACKING_STORE_HH
