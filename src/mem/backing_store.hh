/**
 * @file
 * Flat word-addressable simulated physical memory with a bump allocator
 * for workload setup.
 */

#ifndef TMSIM_MEM_BACKING_STORE_HH
#define TMSIM_MEM_BACKING_STORE_HH

#include <vector>

#include "sim/types.hh"

namespace tmsim {

/**
 * Parse a TMSIM_WATCH_ADDR-style watchpoint value. Returns invalidAddr
 * (watchpoint disabled) for null, empty or malformed input — with a
 * warning for the malformed case, so a typo'd address degrades to "no
 * watchpoint" loudly instead of silently watching address 0.
 */
Addr watchAddrFromEnv(const char* env);

/**
 * The architectural memory image. Committed transactional state and
 * non-speculative data live here. Access is untimed; all timing is
 * modelled by the cache hierarchy and bus.
 */
class BackingStore
{
  public:
    /** @param size_bytes total simulated physical memory. */
    explicit BackingStore(Addr size_bytes);

    /** Read the aligned 64-bit word at @p addr. */
    Word read(Addr addr) const;

    /** Write the aligned 64-bit word at @p addr. */
    void write(Addr addr, Word value);

    /** Total size in bytes. */
    Addr size() const { return bytes; }

    /**
     * Host-side allocation of simulated memory for workload setup and
     * for the runtime's thread-private regions (TCB stacks, handler
     * stacks, undo logs). Alignment defaults to a cache line.
     */
    Addr allocate(Addr n_bytes, Addr align = 64);

    /** Current allocation high-water mark. */
    Addr brk() const { return brkPtr; }

  private:
    void checkAddr(Addr addr) const;

    std::vector<Word> words;
    Addr bytes;
    Addr brkPtr;
};

} // namespace tmsim

#endif // TMSIM_MEM_BACKING_STORE_HH
