#include "mem/backing_store.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/logging.hh"

namespace tmsim {

Addr
watchAddrFromEnv(const char* env)
{
    if (!env || *env == '\0')
        return invalidAddr;
    // strtoull quietly maps garbage to 0 and wraps negatives: a typo'd
    // TMSIM_WATCH_ADDR would silently trace address 0 instead of the
    // intended word. Require a full, non-negative parse.
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = strtoull(env, &end, 0);
    if (end == env || *end != '\0' || errno == ERANGE ||
        strchr(env, '-') != nullptr) {
        warn("TMSIM_WATCH_ADDR='%s' is not a valid address; "
             "watchpoint disabled", env);
        return invalidAddr;
    }
    return static_cast<Addr>(v);
}

BackingStore::BackingStore(Addr size_bytes)
    : words((size_bytes + wordBytes - 1) / wordBytes, 0),
      bytes(size_bytes),
      // Keep address 0 unmapped-ish: start allocations at one line so a
      // zero Addr can serve as a null pointer in workloads.
      brkPtr(64)
{
    if (size_bytes == 0)
        fatal("BackingStore size must be nonzero");
}

void
BackingStore::checkAddr(Addr addr) const
{
    if (addr % wordBytes != 0)
        panic("unaligned word access at 0x%llx",
              static_cast<unsigned long long>(addr));
    if (addr + wordBytes > bytes)
        panic("out-of-range memory access at 0x%llx",
              static_cast<unsigned long long>(addr));
}

Word
BackingStore::read(Addr addr) const
{
    checkAddr(addr);
    return words[addr / wordBytes];
}

void
BackingStore::write(Addr addr, Word value)
{
    checkAddr(addr);
    // Debug watchpoint: set TMSIM_WATCH_ADDR=<addr> to trace every
    // architectural write to one simulated word (committed stores,
    // in-place speculative stores, and undo restores).
    static Addr watch = watchAddrFromEnv(getenv("TMSIM_WATCH_ADDR"));
    if (addr == watch) {
        fprintf(stderr, "[watch] 0x%llx: %llu -> %llu\n",
                (unsigned long long)addr,
                (unsigned long long)words[addr / wordBytes],
                (unsigned long long)value);
    }
    words[addr / wordBytes] = value;
}

Addr
BackingStore::allocate(Addr n_bytes, Addr align)
{
    if (align == 0 || (align & (align - 1)) != 0)
        panic("allocation alignment must be a power of two");
    Addr base = (brkPtr + align - 1) & ~(align - 1);
    if (base + n_bytes > bytes)
        fatal("simulated memory exhausted (%llu bytes requested)",
              static_cast<unsigned long long>(n_bytes));
    brkPtr = base + n_bytes;
    return base;
}

} // namespace tmsim
