#include "mem/backing_store.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/logging.hh"

namespace tmsim {

namespace {

StoreMode&
defaultStoreModeRef()
{
    static StoreMode mode = StoreMode::Sparse;
    return mode;
}

} // namespace

StoreMode
defaultStoreMode()
{
    return defaultStoreModeRef();
}

void
setDefaultStoreMode(StoreMode m)
{
    defaultStoreModeRef() = m;
}

const char*
storeModeName(StoreMode m)
{
    return m == StoreMode::Dense ? "dense" : "sparse";
}

bool
storeModeFromName(const std::string& name, StoreMode& out)
{
    if (name == "dense") {
        out = StoreMode::Dense;
        return true;
    }
    if (name == "sparse") {
        out = StoreMode::Sparse;
        return true;
    }
    return false;
}

Addr
watchAddrFromEnv(const char* env)
{
    if (!env || *env == '\0')
        return invalidAddr;
    // strtoull quietly maps garbage to 0 and wraps negatives: a typo'd
    // TMSIM_WATCH_ADDR would silently trace address 0 instead of the
    // intended word. Require a full, non-negative parse.
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = strtoull(env, &end, 0);
    if (end == env || *end != '\0' || errno == ERANGE ||
        strchr(env, '-') != nullptr) {
        warn("TMSIM_WATCH_ADDR='%s' is not a valid address; "
             "watchpoint disabled", env);
        return invalidAddr;
    }
    return static_cast<Addr>(v);
}

BackingStore::BackingStore(Addr size_bytes, StoreMode mode, Addr chunk_bytes)
    : storeMode(mode),
      bytes(size_bytes),
      // Keep address 0 unmapped-ish: start allocations at one line so a
      // zero Addr can serve as a null pointer in workloads.
      brkPtr(64),
      watchAddrVal(watchAddrFromEnv(getenv("TMSIM_WATCH_ADDR"))),
      chunkSize(chunk_bytes)
{
    if (size_bytes == 0)
        fatal("BackingStore size must be nonzero");
    if (storeMode == StoreMode::Dense) {
        words.assign((size_bytes + wordBytes - 1) / wordBytes, 0);
        return;
    }
    if (chunkSize < wordBytes || (chunkSize & (chunkSize - 1)) != 0)
        fatal("BackingStore chunk size must be a power of two >= %llu "
              "(got %llu)",
              static_cast<unsigned long long>(wordBytes),
              static_cast<unsigned long long>(chunkSize));
    const Addr chunkWords = chunkSize / wordBytes;
    while ((static_cast<Addr>(1) << chunkWordsShift) < chunkWords)
        ++chunkWordsShift;
}

void
BackingStore::checkAddr(Addr addr) const
{
    if (addr % wordBytes != 0)
        panic("unaligned word access at 0x%llx",
              static_cast<unsigned long long>(addr));
    // Subtraction form: `addr + wordBytes > bytes` wraps for addresses
    // near UINT64_MAX and would admit them.
    if (addr >= bytes || bytes - addr < wordBytes)
        panic("out-of-range memory access at 0x%llx",
              static_cast<unsigned long long>(addr));
}

Word*
BackingStore::chunkFor(Addr word_index, bool create) const
{
    const Addr chunk = word_index >> chunkWordsShift;
    const Addr offset = word_index & ((static_cast<Addr>(1)
                                       << chunkWordsShift) - 1);
    if (chunk == cachedChunk)
        return cachedPtr + offset;
    auto it = chunks.find(chunk);
    if (it == chunks.end()) {
        if (!create)
            return nullptr;
        // make_unique<Word[]> value-initializes: fresh chunks read 0,
        // matching dense semantics exactly.
        it = chunks.emplace(chunk, std::make_unique<Word[]>(
                static_cast<Addr>(1) << chunkWordsShift)).first;
    }
    cachedChunk = chunk;
    cachedPtr = it->second.get();
    return cachedPtr + offset;
}

Word
BackingStore::read(Addr addr) const
{
    checkAddr(addr);
    const Addr idx = addr / wordBytes;
    if (storeMode == StoreMode::Dense)
        return words[idx];
    const Word* w = chunkFor(idx, /*create=*/false);
    return w ? *w : 0;
}

void
BackingStore::write(Addr addr, Word value)
{
    checkAddr(addr);
    const Addr idx = addr / wordBytes;
    Word* slot = storeMode == StoreMode::Dense
        ? &words[idx]
        : chunkFor(idx, /*create=*/true);
    // Debug watchpoint: set TMSIM_WATCH_ADDR=<addr> to trace every
    // architectural write to one simulated word (committed stores,
    // in-place speculative stores, and undo restores).
    if (addr == watchAddrVal) {
        fprintf(stderr, "[watch] 0x%llx: %llu -> %llu\n",
                (unsigned long long)addr,
                (unsigned long long)*slot,
                (unsigned long long)value);
    }
    *slot = value;
}

Addr
BackingStore::allocate(Addr n_bytes, Addr align)
{
    if (align == 0 || (align & (align - 1)) != 0)
        panic("allocation alignment must be a power of two");
    // All comparisons in subtraction form: `base + n_bytes > bytes`
    // wraps for huge n_bytes and would hand out a bogus base.
    Addr base = brkPtr;
    const Addr rem = base & (align - 1);
    if (rem != 0) {
        const Addr pad = align - rem;
        if (base > bytes || pad > bytes - base)
            fatal("simulated memory exhausted (%llu bytes requested "
                  "at alignment %llu)",
                  static_cast<unsigned long long>(n_bytes),
                  static_cast<unsigned long long>(align));
        base += pad;
    }
    if (base > bytes || n_bytes > bytes - base)
        fatal("simulated memory exhausted (%llu bytes requested)",
              static_cast<unsigned long long>(n_bytes));
    brkPtr = base + n_bytes;
    return base;
}

std::size_t
BackingStore::touchedChunks() const
{
    if (storeMode == StoreMode::Sparse)
        return chunks.size();
    return static_cast<std::size_t>((bytes + chunkSize - 1) / chunkSize);
}

Addr
BackingStore::hostWordsAllocated() const
{
    if (storeMode == StoreMode::Sparse)
        return static_cast<Addr>(chunks.size()) << chunkWordsShift;
    return static_cast<Addr>(words.size());
}

} // namespace tmsim
