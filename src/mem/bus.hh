/**
 * @file
 * Split-transaction system bus with FIFO arbitration, plus the commit
 * token used to serialise transaction validation.
 */

#ifndef TMSIM_MEM_BUS_HH
#define TMSIM_MEM_BUS_HH

#include <coroutine>
#include <deque>

#include "sim/stats.hh"
#include "sim/task.hh"
#include "sim/types.hh"

namespace tmsim {

/**
 * A single-owner resource with a FIFO wait queue of parked coroutines.
 * Used for the bus data path and for the commit token.
 */
class FifoResource
{
  public:
    explicit FifoResource(EventQueue& eq) : eq(eq) {}

    FifoResource(const FifoResource&) = delete;
    FifoResource& operator=(const FifoResource&) = delete;

    bool busy() const { return held; }
    size_t queueDepth() const { return waiters.size(); }

    /** Awaitable that grants the resource in FIFO order. */
    struct Acquire
    {
        FifoResource& res;

        bool
        await_ready() const
        {
            if (!res.held) {
                res.held = true;
                return true;
            }
            return false;
        }

        void
        await_suspend(std::coroutine_handle<> h) const
        {
            res.waiters.push_back(h);
        }

        void await_resume() const {}
    };

    Acquire acquire() { return Acquire{*this}; }

    /**
     * Release the resource. If somebody is queued, ownership passes to
     * the head of the queue and its coroutine is resumed next tick.
     */
    void
    release()
    {
        if (!held)
            panic("release of a free FifoResource");
        if (waiters.empty()) {
            held = false;
            return;
        }
        auto h = waiters.front();
        waiters.pop_front();
        // Ownership transfers directly; 'held' stays true.
        eq.schedule(0, [h] { h.resume(); });
    }

  private:
    EventQueue& eq;
    bool held = false;
    std::deque<std::coroutine_handle<>> waiters;
};

/** Bus and memory timing parameters (paper section 7 machine model). */
struct BusConfig
{
    /** Bus width in bytes (paper: 16-byte split-transaction bus). */
    int widthBytes = 16;
    /** Arbitration latency per granted request. */
    Cycles arbitrationLatency = 3;
    /** DRAM access latency, overlapped with other bus traffic. */
    Cycles memoryLatency = 100;
};

/**
 * The chip-wide interconnect. Requests and responses occupy the bus
 * separately so independent memory accesses overlap with DRAM latency
 * (split transactions); commit-time write-set broadcasts occupy the bus
 * for address+data beats per line.
 */
class Bus
{
  public:
    Bus(EventQueue& eq, const BusConfig& cfg, StatsRegistry& stats);

    const BusConfig& config() const { return cfg; }

    /** Beats needed to move one cache line of @p line_bytes. */
    Cycles
    beatsForLine(Addr line_bytes) const
    {
        return (line_bytes + cfg.widthBytes - 1) / cfg.widthBytes;
    }

    /**
     * A full cache-line fetch from memory: request beat, DRAM latency,
     * response beats. Suspends the caller for the whole round trip.
     */
    SimTask lineFetch(Addr line_bytes);

    /**
     * Occupy the bus for @p beats data beats after arbitration
     * (commit write-set broadcasts, watch-set messages).
     */
    SimTask occupy(Cycles beats);

    /** The commit token serialising transaction validation. */
    FifoResource& commitToken() { return token; }

  private:
    EventQueue& eq;
    BusConfig cfg;
    FifoResource arbiter;
    FifoResource token;

    StatsRegistry::Counter& statTransfers;
    StatsRegistry::Counter& statBusyCycles;
    StatsRegistry::Counter& statTokenGrants;

  public:
    /** Exposed for HTM stats: count a token grant. */
    void countTokenGrant() { ++statTokenGrants; }
};

} // namespace tmsim

#endif // TMSIM_MEM_BUS_HH
