/**
 * @file
 * Cache geometry parameters and address slicing helpers.
 */

#ifndef TMSIM_MEM_CACHE_GEOMETRY_HH
#define TMSIM_MEM_CACHE_GEOMETRY_HH

#include "sim/types.hh"

namespace tmsim {

/** Size/associativity/line parameters of one cache level. */
struct CacheGeometry
{
    Addr sizeBytes = 32 * 1024;
    Addr lineBytes = 32;
    int assoc = 4;
    Cycles hitLatency = 1;

    /** Number of sets implied by the parameters. */
    int numSets() const;

    /** Line-aligned base of @p addr. */
    Addr lineAddr(Addr addr) const { return addr & ~(lineBytes - 1); }

    /** Set index for @p addr. */
    int setIndex(Addr addr) const;

    /** Words per cache line. */
    int wordsPerLine() const { return static_cast<int>(lineBytes / 8); }

    /** Validate parameters, aborting on nonsense configurations. */
    void validate(const char* name) const;
};

} // namespace tmsim

#endif // TMSIM_MEM_CACHE_GEOMETRY_HH
