#include "mem/cache_geometry.hh"

#include "sim/logging.hh"

namespace tmsim {

int
CacheGeometry::numSets() const
{
    return static_cast<int>(sizeBytes / (lineBytes * assoc));
}

int
CacheGeometry::setIndex(Addr addr) const
{
    return static_cast<int>((addr / lineBytes) % numSets());
}

void
CacheGeometry::validate(const char* name) const
{
    auto pow2 = [](Addr v) { return v != 0 && (v & (v - 1)) == 0; };
    if (!pow2(lineBytes) || lineBytes < 8)
        fatal("%s: line size must be a power of two >= 8", name);
    if (assoc <= 0)
        fatal("%s: associativity must be positive", name);
    if (sizeBytes % (lineBytes * assoc) != 0)
        fatal("%s: size must be a multiple of line*assoc", name);
    if (!pow2(static_cast<Addr>(numSets())))
        fatal("%s: number of sets must be a power of two", name);
}

} // namespace tmsim
