/**
 * @file
 * Private cache model with transactional line metadata.
 *
 * The cache tracks presence and replacement for timing, and carries the
 * per-line transactional annotations of the paper's two nesting schemes
 * (section 6.3):
 *
 *  - MultiTracking: each line has R_i/W_i bits for every nesting level
 *    (figure 4a). Rollback gang-clears a level; closed commit ORs level
 *    i bits into level i-1.
 *  - Associativity: each line has a single R/W pair plus a nesting-level
 *    field NL (figure 4b); multiple versions of the same line occupy
 *    different ways of the same set. Closed commit retags NL=i lines to
 *    i-1, merging duplicates; open commit retags to NL=0.
 *
 * Architectural data and the authoritative read/write sets live in the
 * HTM engine; the cache's annotations model capacity pressure, overflow
 * (virtualisation) events, and the replication cost of the associativity
 * scheme.
 */

#ifndef TMSIM_MEM_CACHE_HH
#define TMSIM_MEM_CACHE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mem/cache_geometry.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tmsim {

/** Which of the paper's nesting-support schemes the cache implements. */
enum class NestScheme
{
    MultiTracking,
    Associativity,
};

/** Result of allocating a line: what, if anything, was evicted. */
struct EvictInfo
{
    bool evicted = false;
    Addr lineAddr = invalidAddr;
    /** The victim carried read/write-set annotations: an overflow. */
    bool transactional = false;
};

class Cache
{
  public:
    Cache(std::string name, const CacheGeometry& geom, NestScheme scheme,
          int max_levels, StatsRegistry& stats);

    const CacheGeometry& geometry() const { return geom; }

    /** True if any copy/version of the line is present. */
    bool contains(Addr line_addr) const;

    /**
     * Timed lookup: touches LRU and counts hit/miss statistics.
     * @return true on hit.
     */
    bool lookup(Addr line_addr);

    /**
     * Allocate the line (after a miss was serviced). Never evicts other
     * versions of the same line. @return eviction info for the victim.
     */
    EvictInfo fill(Addr line_addr);

    /**
     * Invalidate copies of the line that carry no transactional
     * annotations (commit-broadcast snoop on other CPUs' caches).
     */
    void invalidateNonSpec(Addr line_addr);

    /** Annotate the line as read at @p level (allocating if absent). */
    void markRead(Addr line_addr, int level);

    /** Annotate the line as written at @p level (allocating if absent). */
    void markWrite(Addr line_addr, int level);

    /** True if any version of the line carries any annotation. */
    bool hasTxMeta(Addr line_addr) const;

    /** True if the line is annotated read (written) at @p level. */
    bool isRead(Addr line_addr, int level) const;
    bool isWritten(Addr line_addr, int level) const;

    /** Rollback at @p level: gang-clear that level's annotations. */
    void clearLevel(int level);

    /** Closed-nested commit: merge level @p level into @p level - 1. */
    void mergeLevelDown(int level);

    /** Open-nested commit: drop level @p level annotations, keep data. */
    void commitOpenLevel(int level);

    /** Drop every transactional annotation (whole-context reset). */
    void clearAllTx();

    /** Number of lines currently carrying annotations. */
    std::uint64_t txLineCount() const;

    /** Number of distinct versions of @p line_addr currently resident
     *  (associativity scheme replication; always 0/1 for multi-track). */
    int versionCount(Addr line_addr) const;

  private:
    struct Line
    {
        bool valid = false;
        Addr lineAddr = invalidAddr;
        std::uint64_t lru = 0;
        // MultiTracking: bit (level-1) set in each mask.
        std::uint32_t readMask = 0;
        std::uint32_t writeMask = 0;
        // Associativity: nesting level of this version (0 = plain data).
        int nl = 0;
        // Flat position of this way (set * assoc + way); fixed at
        // construction so the tx index can address lines by number.
        std::uint32_t self = 0;
        // Position in txLines while annotated, -1 otherwise.
        std::int32_t txSlot = -1;

        bool isTx() const { return readMask != 0 || writeMask != 0; }
        bool holdsTxMeta() const
        {
            return valid && (isTx() || nl != 0);
        }
    };

    std::vector<Line>& setFor(Addr line_addr);
    const std::vector<Line>& setFor(Addr line_addr) const;
    Line* findLine(Addr line_addr);
    const Line* findLine(Addr line_addr) const;
    /** Associativity scheme: the version visible to @p level. */
    Line* findVersionFor(Addr line_addr, int level);
    Line* allocate(Addr line_addr, EvictInfo* evict);
    void touch(Line& line) { line.lru = ++lruClock; }

    Line&
    lineAt(std::uint32_t flat)
    {
        return sets[flat / static_cast<std::uint32_t>(geom.assoc)]
                   [flat % static_cast<std::uint32_t>(geom.assoc)];
    }

    /** Reconcile @p line's membership in the tx-line index with its
     *  current annotation state. Call after any mutation of valid,
     *  readMask, writeMask or nl. */
    void
    syncTx(Line& line)
    {
        const bool want = line.holdsTxMeta();
        if (want && line.txSlot < 0) {
            line.txSlot = static_cast<std::int32_t>(txLines.size());
            txLines.push_back(line.self);
        } else if (!want && line.txSlot >= 0) {
            const std::uint32_t moved = txLines.back();
            txLines[static_cast<size_t>(line.txSlot)] = moved;
            lineAt(moved).txSlot = line.txSlot;
            txLines.pop_back();
            line.txSlot = -1;
        }
    }

    /** Invalidate @p line in place, keeping self/txSlot bookkeeping. */
    void
    wipe(Line& line)
    {
        line.valid = false;
        line.lineAddr = invalidAddr;
        line.lru = 0;
        line.readMask = 0;
        line.writeMask = 0;
        line.nl = 0;
        syncTx(line);
    }

    std::string name;
    CacheGeometry geom;
    NestScheme scheme;
    int maxLevels;
    std::vector<std::vector<Line>> sets;
    /** Flat indices of every line with holdsTxMeta(); lets commit and
     *  rollback touch only annotated lines instead of the whole cache. */
    std::vector<std::uint32_t> txLines;
    std::uint64_t lruClock = 0;

    StatsRegistry::Counter& statHits;
    StatsRegistry::Counter& statMisses;
    StatsRegistry::Counter& statEvictions;
    StatsRegistry::Counter& statTxOverflows;
    StatsRegistry::Counter& statReplications;
};

} // namespace tmsim

#endif // TMSIM_MEM_CACHE_HH
