#include "mem/cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tmsim {

Cache::Cache(std::string name_, const CacheGeometry& geom_,
             NestScheme scheme_, int max_levels, StatsRegistry& stats)
    : name(std::move(name_)),
      geom(geom_),
      scheme(scheme_),
      maxLevels(max_levels),
      statHits(stats.counter(name + ".hits")),
      statMisses(stats.counter(name + ".misses")),
      statEvictions(stats.counter(name + ".evictions")),
      statTxOverflows(stats.counter(name + ".tx_overflows")),
      statReplications(stats.counter(name + ".version_replications"))
{
    geom.validate(name.c_str());
    if (maxLevels < 1 || maxLevels > 30)
        fatal("%s: max nesting levels must be in [1, 30]", name.c_str());
    sets.assign(geom.numSets(),
                std::vector<Line>(static_cast<size_t>(geom.assoc)));
    std::uint32_t flat = 0;
    for (auto& set : sets)
        for (auto& line : set)
            line.self = flat++;
}

std::vector<Cache::Line>&
Cache::setFor(Addr line_addr)
{
    return sets[static_cast<size_t>(geom.setIndex(line_addr))];
}

const std::vector<Cache::Line>&
Cache::setFor(Addr line_addr) const
{
    return sets[static_cast<size_t>(geom.setIndex(line_addr))];
}

Cache::Line*
Cache::findLine(Addr line_addr)
{
    Line* best = nullptr;
    for (auto& line : setFor(line_addr)) {
        if (line.valid && line.lineAddr == line_addr) {
            // Associativity scheme: the most recent version has the
            // highest NL field.
            if (!best || line.nl > best->nl)
                best = &line;
        }
    }
    return best;
}

const Cache::Line*
Cache::findLine(Addr line_addr) const
{
    return const_cast<Cache*>(this)->findLine(line_addr);
}

bool
Cache::contains(Addr line_addr) const
{
    return findLine(line_addr) != nullptr;
}

bool
Cache::lookup(Addr line_addr)
{
    Line* line = findLine(line_addr);
    if (line) {
        touch(*line);
        ++statHits;
        return true;
    }
    ++statMisses;
    return false;
}

Cache::Line*
Cache::allocate(Addr line_addr, EvictInfo* evict)
{
    auto& ways = setFor(line_addr);
    Line* victim = nullptr;
    // Prefer an invalid way, then the LRU non-transactional line, then
    // the LRU line overall (which forces a transactional overflow).
    for (auto& line : ways) {
        if (!line.valid) {
            victim = &line;
            break;
        }
    }
    if (!victim) {
        Line* lruPlain = nullptr;
        Line* lruAny = nullptr;
        for (auto& line : ways) {
            if (!lruAny || line.lru < lruAny->lru)
                lruAny = &line;
            if (!line.isTx() && (!lruPlain || line.lru < lruPlain->lru))
                lruPlain = &line;
        }
        victim = lruPlain ? lruPlain : lruAny;
        ++statEvictions;
        if (victim->isTx())
            ++statTxOverflows;
        if (evict) {
            evict->evicted = true;
            evict->lineAddr = victim->lineAddr;
            evict->transactional = victim->isTx();
        }
    }
    wipe(*victim);
    victim->valid = true;
    victim->lineAddr = line_addr;
    touch(*victim);
    return victim;
}

EvictInfo
Cache::fill(Addr line_addr)
{
    EvictInfo evict;
    if (Line* line = findLine(line_addr)) {
        touch(*line);
        return evict;
    }
    allocate(line_addr, &evict);
    return evict;
}

void
Cache::invalidateNonSpec(Addr line_addr)
{
    for (auto& line : setFor(line_addr)) {
        if (line.valid && line.lineAddr == line_addr && !line.isTx() &&
            line.nl == 0) {
            wipe(line);
        }
    }
}

namespace {

std::uint32_t
levelBit(int level)
{
    return 1u << (level - 1);
}

} // namespace

void
Cache::markRead(Addr line_addr, int level)
{
    if (level < 1)
        panic("markRead at non-transactional level %d", level);
    int eff = std::min(level, maxLevels);

    if (scheme == NestScheme::MultiTracking) {
        Line* line = findLine(line_addr);
        if (!line)
            line = allocate(line_addr, nullptr);
        line->readMask |= levelBit(eff);
        syncTx(*line);
        touch(*line);
        return;
    }

    // Associativity scheme.
    Line* line = findLine(line_addr);
    if (!line) {
        line = allocate(line_addr, nullptr);
        line->nl = eff;
    } else if (line->nl == 0) {
        line->nl = eff;
    } else if (line->nl < eff) {
        // A version belonging to an ancestor exists: replicate into a
        // new way of the same set (paper section 6.3.2).
        ++statReplications;
        line = allocate(line_addr, nullptr);
        line->nl = eff;
    }
    line->readMask |= 1;
    syncTx(*line);
    touch(*line);
}

void
Cache::markWrite(Addr line_addr, int level)
{
    if (level < 1)
        panic("markWrite at non-transactional level %d", level);
    int eff = std::min(level, maxLevels);

    if (scheme == NestScheme::MultiTracking) {
        Line* line = findLine(line_addr);
        if (!line)
            line = allocate(line_addr, nullptr);
        line->writeMask |= levelBit(eff);
        syncTx(*line);
        touch(*line);
        return;
    }

    Line* line = findLine(line_addr);
    if (!line) {
        line = allocate(line_addr, nullptr);
        line->nl = eff;
    } else if (line->nl == 0) {
        line->nl = eff;
    } else if (line->nl < eff) {
        ++statReplications;
        line = allocate(line_addr, nullptr);
        line->nl = eff;
    }
    line->writeMask |= 1;
    syncTx(*line);
    touch(*line);
}

bool
Cache::hasTxMeta(Addr line_addr) const
{
    for (const auto& line : setFor(line_addr)) {
        if (line.valid && line.lineAddr == line_addr && line.isTx())
            return true;
    }
    return false;
}

bool
Cache::isRead(Addr line_addr, int level) const
{
    int eff = std::min(level, maxLevels);
    for (const auto& line : setFor(line_addr)) {
        if (!line.valid || line.lineAddr != line_addr)
            continue;
        if (scheme == NestScheme::MultiTracking) {
            if (line.readMask & levelBit(eff))
                return true;
        } else if (line.nl == eff && (line.readMask & 1)) {
            return true;
        }
    }
    return false;
}

bool
Cache::isWritten(Addr line_addr, int level) const
{
    int eff = std::min(level, maxLevels);
    for (const auto& line : setFor(line_addr)) {
        if (!line.valid || line.lineAddr != line_addr)
            continue;
        if (scheme == NestScheme::MultiTracking) {
            if (line.writeMask & levelBit(eff))
                return true;
        } else if (line.nl == eff && (line.writeMask & 1)) {
            return true;
        }
    }
    return false;
}

// The gang operations below walk the tx-line index instead of the
// whole cache: only lines carrying annotations can be affected, and
// each per-line transform is independent of every other annotated
// line (the associativity merge targets are addressed by (addr, nl),
// which is unique within a set), so index order does not matter.
// syncTx() may swap-remove the current slot, in which case the same
// slot index is revisited; lines it appends (a merge target gaining
// its first annotation) are no-ops for the running transform.

void
Cache::clearLevel(int level)
{
    int eff = std::min(level, maxLevels);
    for (size_t i = 0; i < txLines.size();) {
        Line& line = lineAt(txLines[i]);
        if (scheme == NestScheme::MultiTracking) {
            line.readMask &= ~levelBit(eff);
            line.writeMask &= ~levelBit(eff);
            syncTx(line);
        } else if (line.nl == eff) {
            if (line.writeMask) {
                // Dirty speculative version: discard (the committed
                // version, if any, lives in another way or in memory).
                wipe(line);
            } else {
                // Read-only at this level: the data is committed and
                // stays valid; only the annotation dies.
                line.nl = 0;
                line.readMask = 0;
                syncTx(line);
            }
        }
        if (line.txSlot == static_cast<std::int32_t>(i))
            ++i;
    }
}

void
Cache::mergeLevelDown(int level)
{
    int eff = std::min(level, maxLevels);
    std::uint32_t bit = levelBit(eff);
    std::uint32_t below = eff >= 2 ? levelBit(eff - 1) : 0;

    for (size_t i = 0; i < txLines.size();) {
        Line& line = lineAt(txLines[i]);
        if (scheme == NestScheme::MultiTracking) {
            if (line.readMask & bit) {
                line.readMask &= ~bit;
                line.readMask |= below;
            }
            if (line.writeMask & bit) {
                line.writeMask &= ~bit;
                line.writeMask |= below;
            }
            syncTx(line);
        } else if (line.nl == eff) {
            // Retag to the parent level; merge into an existing
            // parent version if one occupies the same set.
            auto& set = setFor(line.lineAddr);
            Line* parent = nullptr;
            for (auto& other : set) {
                if (&other != &line && other.valid &&
                    other.lineAddr == line.lineAddr &&
                    other.nl == eff - 1) {
                    parent = &other;
                    break;
                }
            }
            if (parent) {
                parent->readMask |= line.readMask;
                parent->writeMask |= line.writeMask;
                syncTx(*parent);
                wipe(line);
            } else {
                line.nl = eff - 1;
                if (line.nl == 0) {
                    line.readMask = 0;
                    line.writeMask = 0;
                }
                syncTx(line);
            }
        }
        if (line.txSlot == static_cast<std::int32_t>(i))
            ++i;
    }
}

void
Cache::commitOpenLevel(int level)
{
    int eff = std::min(level, maxLevels);
    for (size_t i = 0; i < txLines.size();) {
        Line& line = lineAt(txLines[i]);
        if (scheme == NestScheme::MultiTracking) {
            line.readMask &= ~levelBit(eff);
            line.writeMask &= ~levelBit(eff);
            syncTx(line);
        } else if (line.nl == eff) {
            // Keep the (now committed) data as a plain line unless
            // a plain copy already exists in the set.
            auto& set = setFor(line.lineAddr);
            Line* plain = nullptr;
            for (auto& other : set) {
                if (&other != &line && other.valid &&
                    other.lineAddr == line.lineAddr && other.nl == 0) {
                    plain = &other;
                    break;
                }
            }
            if (plain) {
                wipe(line);
            } else {
                line.nl = 0;
                line.readMask = 0;
                line.writeMask = 0;
                syncTx(line);
            }
        }
        if (line.txSlot == static_cast<std::int32_t>(i))
            ++i;
    }
}

void
Cache::clearAllTx()
{
    for (size_t i = 0; i < txLines.size();) {
        Line& line = lineAt(txLines[i]);
        if (scheme == NestScheme::MultiTracking) {
            line.readMask = 0;
            line.writeMask = 0;
            syncTx(line);
        } else if (line.nl != 0) {
            wipe(line);
        }
        // else: an associativity-scheme plain (nl == 0) line carrying
        // masks from a level-1 merge; it keeps its annotations, same
        // as the whole-cache scan did.
        if (line.txSlot == static_cast<std::int32_t>(i))
            ++i;
    }
}

std::uint64_t
Cache::txLineCount() const
{
    return txLines.size();
}

int
Cache::versionCount(Addr line_addr) const
{
    int count = 0;
    for (const auto& line : setFor(line_addr))
        if (line.valid && line.lineAddr == line_addr)
            ++count;
    return count;
}

} // namespace tmsim
