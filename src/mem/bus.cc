#include "mem/bus.hh"

namespace tmsim {

Bus::Bus(EventQueue& eq_, const BusConfig& cfg_, StatsRegistry& stats)
    : eq(eq_),
      cfg(cfg_),
      arbiter(eq_),
      token(eq_),
      statTransfers(stats.counter("bus.transfers")),
      statBusyCycles(stats.counter("bus.busy_cycles")),
      statTokenGrants(stats.counter("bus.token_grants"))
{
}

SimTask
Bus::lineFetch(Addr line_bytes)
{
    // Request phase: one address beat on the bus.
    co_await arbiter.acquire();
    ++statTransfers;
    statBusyCycles += cfg.arbitrationLatency + 1;
    co_await Delay{eq, cfg.arbitrationLatency + 1};
    arbiter.release();

    // DRAM access proceeds off the bus.
    co_await Delay{eq, cfg.memoryLatency};

    // Response phase: data beats.
    Cycles beats = beatsForLine(line_bytes);
    co_await arbiter.acquire();
    statBusyCycles += beats;
    co_await Delay{eq, beats};
    arbiter.release();
}

SimTask
Bus::occupy(Cycles beats)
{
    co_await arbiter.acquire();
    ++statTransfers;
    statBusyCycles += cfg.arbitrationLatency + beats;
    co_await Delay{eq, cfg.arbitrationLatency + beats};
    arbiter.release();
}

} // namespace tmsim
