/**
 * @file
 * Conditional synchronisation via open nesting and violation handlers —
 * the paper's figure 3, adapted to a 1:1 thread-to-CPU model.
 *
 * A dedicated scheduler thread runs one everlasting transaction whose
 * read-set contains every worker mailbox line plus every watched
 * address. Workers communicate watch/cancel commands by writing their
 * mailbox from an open-nested transaction, which violates the
 * scheduler; the scheduler's violation handler (which always CONTINUES
 * the scheduler transaction) processes commands, pulls watched
 * addresses into the scheduler's read-set, and wakes waiting workers
 * when a watched line is modified by a committing producer. The
 * early-release instruction drops a watched line from the read-set
 * once its waiters have been woken (paper 4.7: "we use it in low-level
 * code for the conditional synchronization scheduler").
 */

#ifndef TMSIM_RUNTIME_COND_SCHED_HH
#define TMSIM_RUNTIME_COND_SCHED_HH

#include <functional>
#include <unordered_map>
#include <vector>

#include "runtime/tx_thread.hh"

namespace tmsim {

class CondScheduler
{
  public:
    /** Mailbox command codes. */
    static constexpr Word cmdWatch = 1;
    static constexpr Word cmdCancel = 2;

    /**
     * @param mem simulated memory for mailboxes and flags
     * @param max_workers number of worker slots (mailboxes)
     */
    CondScheduler(BackingStore& mem, int max_workers);

    /** Register the worker thread occupying slot @p worker. */
    void addWorker(int worker, TxThread* thread);

    /**
     * The scheduler thread body; spawn on a dedicated CPU. Exits once
     * workerDone() has been called @p stop_count times (or stop()).
     */
    SimTask schedulerBody(TxThread& t, int stop_count);

    /** Worker-side: signal completion (counts toward stop_count). */
    SimTask workerDone(TxThread& t);

    /** Ask the scheduler to exit (host-side; takes effect promptly). */
    void stop(BackingStore& mem);

    /**
     * Worker-side: load @p addr inside the current transaction; if
     * @p ok rejects the value, watch the address, abort-and-yield, and
     * re-execute the transaction body once the value changes.
     * Implements Atomos watch/retry.
     */
    WordTask loadOrRetry(TxThread& t, int worker, Addr addr,
                         std::function<bool(Word)> ok);

    /** Worker-side: publish a WATCH command (open-nested). */
    SimTask watch(TxThread& t, int worker, Addr addr, Word seen_value);

    /** Worker-side: publish a CANCEL command (open-nested). */
    SimTask cancel(TxThread& t, int worker);

    /** Wake-ups issued by the scheduler (tests/stats). */
    std::uint64_t wakeups() const { return numWakeups; }

    /** Violations the scheduler handled (tests/stats). */
    std::uint64_t schedulerViolations() const { return numViolations; }

  private:
    static constexpr size_t mailboxWords = 8; // one cache line

    Addr mailboxAddr(int worker) const
    {
        return mailboxBase +
               static_cast<Addr>(worker) * mailboxWords * wordBytes;
    }
    Addr seqAddr(int w) const { return mailboxAddr(w); }
    Addr cmdAddr(int w) const { return mailboxAddr(w) + wordBytes; }
    Addr argAddr(int w) const { return mailboxAddr(w) + 2 * wordBytes; }
    Addr valAddr(int w) const { return mailboxAddr(w) + 3 * wordBytes; }

    /** Pick up new mailbox commands (violation handler or poll pass). */
    SimTask processMailboxes(TxThread& t);

    /** Re-read every watched address, waking workers whose value
     *  changed since they watched. */
    SimTask scanWatches(TxThread& t);

    struct WatchEntry
    {
        int worker;
        Addr addr;
        Word value;
    };

    int maxWorkers;
    Addr mailboxBase = 0;
    Addr stopFlag = 0;

    /**
     * Re-entrancy guard: a violation can be delivered while the
     * scheduler is suspended inside processMailboxes/scanWatches; the
     * handler must not mutate the watch list under the interrupted
     * scan (the pending-violation redelivery and the idle-loop poll
     * guarantee the commands are picked up afterwards).
     */
    bool scanning = false;

    std::vector<TxThread*> workers;
    std::vector<Word> lastSeq;
    std::vector<WatchEntry> watches;

    std::uint64_t numWakeups = 0;
    std::uint64_t numViolations = 0;
    Addr lineMask = ~static_cast<Addr>(31);
};

} // namespace tmsim

#endif // TMSIM_RUNTIME_COND_SCHED_HH
