/**
 * @file
 * A handler stack (commit, violation or abort) following the software
 * convention of paper section 4.2-4.4: entries of [handler PC, argc,
 * args...] pushed into thread-private memory, with the current top held
 * in a TCB-adjacent pointer field.
 *
 * The host-side mirror keeps the callable objects; the word offsets let
 * the runtime issue imld/imst traffic to the right simulated addresses.
 */

#ifndef TMSIM_RUNTIME_HANDLER_STACK_HH
#define TMSIM_RUNTIME_HANDLER_STACK_HH

#include <vector>

#include "sim/types.hh"

namespace tmsim {

template <typename Fn>
class HandlerStack
{
  public:
    HandlerStack(Addr base, Addr top_field, size_t cap_words)
        : base(base), topField(top_field), capWords(cap_words)
    {
    }

    struct Entry
    {
        Fn fn;
        std::vector<Word> args;
        /** Word offset of this entry within the simulated stack. */
        size_t wordOff;
    };

    /** Current top, in words (the value of the xc/xv/xahptr_top). */
    size_t topWords() const { return topW; }

    /** Simulated address of the top pointer field. */
    Addr topFieldAddr() const { return topField; }

    /** Simulated address of word @p off within the stack. */
    Addr wordAddr(size_t off) const { return base + off * wordBytes; }

    bool empty() const { return entries.empty(); }
    size_t size() const { return entries.size(); }

    /** Would pushing a handler with @p n_args arguments overflow the
     *  stack? Pure query, for callers that want to branch before
     *  constructing the entry; push() itself refuses overflow. */
    bool
    wouldOverflow(size_t n_args) const
    {
        return topW + 2 + n_args > capWords;
    }

    /**
     * Push a handler; returns the new entry (for traffic addresses),
     * or nullptr when the entry would not fit. Overflow is the
     * caller's recoverable condition (a per-transaction abort), never
     * a process-fatal error: an abort protocol may legally resume past
     * xabort, and registration must then fail cleanly, not kill the
     * simulator.
     */
    const Entry*
    push(Fn fn, std::vector<Word> args)
    {
        size_t need = 2 + args.size();
        if (topW + need > capWords)
            return nullptr;
        entries.push_back(Entry{std::move(fn), std::move(args), topW});
        topW += need;
        return &entries.back();
    }

    /** Discard every entry at or above @p top_words (rollback/commit). */
    void
    truncate(size_t top_words)
    {
        while (!entries.empty() && entries.back().wordOff >= top_words)
            entries.pop_back();
        topW = top_words;
    }

    /** Copy of the entries registered at or above @p top_words, in
     *  registration (push) order. */
    std::vector<Entry>
    entriesAbove(size_t top_words) const
    {
        std::vector<Entry> out;
        for (const Entry& e : entries)
            if (e.wordOff >= top_words)
                out.push_back(e);
        return out;
    }

  private:
    Addr base;
    Addr topField;
    size_t capWords;
    size_t topW = 0;
    std::vector<Entry> entries;
};

} // namespace tmsim

#endif // TMSIM_RUNTIME_HANDLER_STACK_HH
