#include "runtime/cond_sched.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tmsim {

CondScheduler::CondScheduler(BackingStore& mem, int max_workers)
    : maxWorkers(max_workers)
{
    mailboxBase = mem.allocate(
        static_cast<Addr>(max_workers) * mailboxWords * wordBytes, 64);
    stopFlag = mem.allocate(64, 64);
    mem.write(stopFlag, 0);
    for (int w = 0; w < max_workers; ++w) {
        mem.write(seqAddr(w), 0);
        mem.write(cmdAddr(w), 0);
        mem.write(argAddr(w), 0);
        mem.write(valAddr(w), 0);
    }
    workers.assign(static_cast<size_t>(max_workers), nullptr);
    lastSeq.assign(static_cast<size_t>(max_workers), 0);
}

void
CondScheduler::addWorker(int worker, TxThread* thread)
{
    workers[static_cast<size_t>(worker)] = thread;
}

void
CondScheduler::stop(BackingStore& mem)
{
    mem.write(stopFlag, ~static_cast<Word>(0));
}

SimTask
CondScheduler::workerDone(TxThread& t)
{
    co_await t.atomicOpen([&](TxThread& th) -> SimTask {
        Word done = co_await th.ld(stopFlag);
        co_await th.st(stopFlag, done + 1);
    });
}

SimTask
CondScheduler::schedulerBody(TxThread& t, int stop_count)
{
    lineMask = ~(t.cpu().htm().lineBytes() - 1);
    co_await t.atomic([this, stop_count](TxThread& th) -> SimTask {
        // The scheduler transaction never rolls back: its violation
        // handler does the work and always continues (figure 3).
        co_await th.onViolation(
            [this](TxThread& h, const ViolationInfo&,
                   const std::vector<Word>&) -> Task<VioAction> {
                ++numViolations;
                if (!scanning) {
                    co_await processMailboxes(h);
                    co_await scanWatches(h);
                }
                co_return VioAction::Continue;
            });

        // Subscribe to every worker mailbox.
        for (int w = 0; w < maxWorkers; ++w)
            co_await th.ld(seqAddr(w));

        // Idle loop: violations are the fast path; the periodic poll is
        // a robustness net (e.g. a mailbox write that raced the
        // initial subscription).
        for (;;) {
            Word done = co_await th.cpu().imld(stopFlag);
            if (done >= static_cast<Word>(stop_count))
                break;
            co_await processMailboxes(th);
            co_await scanWatches(th);
            co_await th.cpu().exec(16);
        }
    });
}

SimTask
CondScheduler::processMailboxes(TxThread& t)
{
    scanning = true;
    for (int w = 0; w < maxWorkers; ++w) {
        // The regular load keeps the mailbox line in the scheduler's
        // read-set so the next command violates us again.
        Word seq = co_await t.ld(seqAddr(w));
        if (seq == lastSeq[static_cast<size_t>(w)])
            continue;
        lastSeq[static_cast<size_t>(w)] = seq;
        Word cmd = co_await t.ld(cmdAddr(w));
        if (cmd == cmdWatch) {
            Word addr = co_await t.ld(argAddr(w));
            Word seen = co_await t.ld(valAddr(w));
            watches.push_back(WatchEntry{w, addr, seen});
        } else if (cmd == cmdCancel) {
            watches.erase(std::remove_if(watches.begin(), watches.end(),
                                         [w](const WatchEntry& e) {
                                             return e.worker == w;
                                         }),
                          watches.end());
        }
    }
    scanning = false;
}

SimTask
CondScheduler::scanWatches(TxThread& t)
{
    scanning = true;
    for (size_t i = 0; i < watches.size();) {
        // Loading the watched address keeps (or puts back) its line in
        // the scheduler's read-set: the watch subscription itself.
        Word v = co_await t.ld(watches[i].addr);
        if (v == watches[i].value) {
            ++i;
            continue;
        }
        const WatchEntry entry = watches[i];
        watches.erase(watches.begin() + static_cast<std::ptrdiff_t>(i));
        ++numWakeups;
        if (workers[static_cast<size_t>(entry.worker)])
            workers[static_cast<size_t>(entry.worker)]->wake();

        // Early release (paper 4.7): once nobody watches the line any
        // more, drop it from the everlasting read-set so unrelated
        // updates stop violating the scheduler.
        const Addr line = entry.addr & lineMask;
        const bool others = std::any_of(
            watches.begin(), watches.end(), [&](const WatchEntry& e) {
                return (e.addr & lineMask) == line;
            });
        if (!others)
            co_await t.cpu().release(line);
    }
    scanning = false;
}

WordTask
CondScheduler::loadOrRetry(TxThread& t, int worker, Addr addr,
                           std::function<bool(Word)> ok)
{
    Word v = co_await t.ld(addr);
    if (ok(v))
        co_return v;

    // Figure 3 consumer path: register the cancel violation handler,
    // publish the watch, then abort-and-yield.
    co_await t.onViolation(
        [this, worker](TxThread& th, const ViolationInfo&,
                       const std::vector<Word>&) -> Task<VioAction> {
            co_await cancel(th, worker);
            co_return VioAction::Proceed;
        });
    co_await watch(t, worker, addr, v);
    co_await t.retryYield(); // unwinds; atomic() parks until wake()
    co_return 0;             // unreachable
}

SimTask
CondScheduler::watch(TxThread& t, int worker, Addr addr, Word seen_value)
{
    co_await t.atomicOpen([&](TxThread& th) -> SimTask {
        Word seq = co_await th.cpu().imld(seqAddr(worker));
        co_await th.st(cmdAddr(worker), cmdWatch);
        co_await th.st(argAddr(worker), addr);
        co_await th.st(valAddr(worker), seen_value);
        co_await th.st(seqAddr(worker), seq + 1);
    });
}

SimTask
CondScheduler::cancel(TxThread& t, int worker)
{
    co_await t.atomicOpen([&](TxThread& th) -> SimTask {
        Word seq = co_await th.cpu().imld(seqAddr(worker));
        co_await th.st(cmdAddr(worker), cmdCancel);
        co_await th.st(seqAddr(worker), seq + 1);
    });
}

} // namespace tmsim
