#include "runtime/tx_io.hh"

#include "sim/logging.hh"

namespace tmsim {

TxLogDevice
TxLogDevice::create(BackingStore& mem, size_t capacity_words)
{
    TxLogDevice dev;
    dev.tailPtr = mem.allocate(64, 64);
    dev.base = mem.allocate(capacity_words * wordBytes, 64);
    dev.capacity = capacity_words;
    mem.write(dev.tailPtr, 0);
    return dev;
}

std::vector<Word>
TxLogDevice::contents(const BackingStore& mem) const
{
    Word tail = mem.read(tailPtr);
    std::vector<Word> out;
    out.reserve(tail);
    for (Word i = 0; i < tail; ++i)
        out.push_back(mem.read(base + i * wordBytes));
    return out;
}

Addr
TxIo::stagingFor(TxThread& t, size_t words)
{
    Staging& s = staging[t.cpu().id()];
    if (s.base == 0) {
        s.words = 4096;
        s.base = t.memory().allocate(s.words * wordBytes, 64);
        s.cursor = 0;
    }
    if (s.cursor + words > s.words)
        s.cursor = 0; // ring reuse; records are consumed at commit
    Addr out = s.base + s.cursor * wordBytes;
    s.cursor += words;
    return out;
}

SimTask
TxIo::txWrite(TxThread& t, std::vector<Word> record)
{
    const size_t n = record.size();
    if (n == 0)
        co_return;

    // Stage the record in thread-private memory (immediate stores: no
    // read/write-set pressure on the user transaction).
    const Addr buf = stagingFor(t, n);
    for (size_t i = 0; i < n; ++i)
        co_await t.cpu().imst(buf + i * wordBytes, record[i]);

    if (!t.cpu().htm().inTx()) {
        // Outside a transaction the "system call" happens immediately.
        co_await appendOpen(t, buf, n);
        co_return;
    }

    // The real append runs as a commit handler once the transaction is
    // validated (paper: "system calls with permanent side-effects
    // execute as commit handlers").
    co_await t.onCommit(
        [this, buf, n](TxThread& th, const std::vector<Word>&) -> SimTask {
            co_await appendOpen(th, buf, n);
        });
}

SimTask
TxIo::appendOpen(TxThread& t, Addr buf, size_t n)
{
    TxOutcome out = co_await t.atomicOpen([&](TxThread& th) -> SimTask {
        Word tail = co_await th.ld(log.tailAddr());
        if (tail + n > log.capacityWords()) {
            // Device full: abort the open append so the log is left
            // untouched, then escalate below.
            co_await th.cpu().xabort(TxThread::logFullCode);
        }
        for (size_t i = 0; i < n; ++i) {
            Word w = co_await th.cpu().imld(buf + i * wordBytes);
            co_await th.st(log.dataBase() + (tail + i) * wordBytes, w);
        }
        co_await th.st(log.tailAddr(), tail + n);
    });
    if (out.result == TxResult::Aborted && t.cpu().htm().inTx()) {
        // The device refused the append while an enclosing transaction
        // is live (commit-handler path): escalate so the user
        // transaction aborts recoverably with the same code. Earlier
        // commit handlers may already have performed their open-nested
        // side effects — inherent to open-nested I/O; compensation is
        // the caller's business (section 5).
        co_await t.cpu().xabort(TxThread::logFullCode);
    }
}

SimTask
TxIo::directWrite(TxThread& t, const std::vector<Word>& record)
{
    // Baseline: append from inside the transaction itself. The tail
    // pointer lands in the transaction's read- and write-set, so
    // concurrent transactions doing I/O violate each other unless the
    // caller serialised the whole transaction.
    Word tail = co_await t.ld(log.tailAddr());
    if (tail + record.size() > log.capacityWords()) {
        // Device full: recoverable abort of the writing transaction;
        // the log is untouched.
        co_await t.cpu().xabort(TxThread::logFullCode);
    }
    for (size_t i = 0; i < record.size(); ++i)
        co_await t.st(log.dataBase() + (tail + i) * wordBytes, record[i]);
    co_await t.st(log.tailAddr(), tail + record.size());
}

TxInFile
TxInFile::create(BackingStore& mem, const std::vector<Word>& contents)
{
    TxInFile f;
    f.posPtr = mem.allocate(64, 64);
    f.base = mem.allocate(std::max<size_t>(contents.size(), 1) * wordBytes,
                          64);
    f.sizeWords = contents.size();
    mem.write(f.posPtr, 0);
    for (size_t i = 0; i < contents.size(); ++i)
        mem.write(f.base + i * wordBytes, contents[i]);
    return f;
}

WordTask
TxInFile::txRead(TxThread& t)
{
    Word value = 0;
    Word savedPos = 0;

    // The "read syscall" runs open-nested so the shared file position
    // does not create dependencies through the user transaction.
    co_await t.atomicOpen([&](TxThread& th) -> SimTask {
        savedPos = co_await th.ld(posPtr);
        if (savedPos >= sizeWords)
            fatal("TxInFile read past end");
        value = co_await th.ld(base + savedPos * wordBytes);
        co_await th.st(posPtr, savedPos + 1);
    });

    // Compensation: if the user transaction rolls back, the consumed
    // input must be returned (paper: "a violation handler that
    // restores the file position"). Handlers run newest-first, so
    // nested reads unwind to the oldest saved position.
    if (t.cpu().htm().inTx()) {
        auto restore = [this, savedPos](TxThread& th) -> SimTask {
            ++numCompensations;
            co_await th.atomicOpen([&](TxThread& inner) -> SimTask {
                co_await inner.st(posPtr, savedPos);
            });
        };
        co_await t.onViolation(
            [restore](TxThread& th, const ViolationInfo&,
                      const std::vector<Word>&) -> Task<VioAction> {
                co_await restore(th);
                co_return VioAction::Proceed;
            });
        co_await t.onAbort(
            [restore](TxThread& th, const std::vector<Word>&) -> SimTask {
                co_await restore(th);
            });
    }
    co_return value;
}

} // namespace tmsim
