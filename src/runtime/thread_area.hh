/**
 * @file
 * Layout of a thread's private runtime memory: the TCB stack and the
 * three handler stacks of paper figure 2, plus the memory-resident
 * pointer fields (xtcbptr/xchptr/xvhptr/xahptr analogues).
 *
 * The runtime manipulates these with imld/imst so TCB and handler
 * management generate realistic (thread-private, well-cached) memory
 * traffic with the instruction counts reported in paper section 7.
 */

#ifndef TMSIM_RUNTIME_THREAD_AREA_HH
#define TMSIM_RUNTIME_THREAD_AREA_HH

#include <cstddef>

#include "mem/backing_store.hh"
#include "sim/types.hh"

namespace tmsim {

struct ThreadArea
{
    /** Pointer-field block: [0] xtcbptr_top, [1] xchptr_top,
     *  [2] xvhptr_top, [3] xahptr_top. */
    Addr regBase = 0;
    /** Base of the TCB frame stack. */
    Addr tcbBase = 0;
    /** Bases of the commit / violation / abort handler stacks. */
    Addr chBase = 0;
    Addr vhBase = 0;
    Addr ahBase = 0;

    size_t maxFrames = 0;
    size_t stackWords = 0;

    /** Words per TCB frame (status + three handler-top snapshots +
     *  checkpoint slots). */
    static constexpr size_t frameWords = 8;

    /** Carve a thread area out of simulated memory. */
    static ThreadArea allocate(BackingStore& mem, size_t max_frames = 16,
                               size_t stack_words = 2048);

    Addr
    tcbFrameAddr(size_t frame) const
    {
        return tcbBase + frame * frameWords * wordBytes;
    }

    Addr tcbTopField() const { return regBase + 0 * wordBytes; }
    Addr chTopField() const { return regBase + 1 * wordBytes; }
    Addr vhTopField() const { return regBase + 2 * wordBytes; }
    Addr ahTopField() const { return regBase + 3 * wordBytes; }
};

} // namespace tmsim

#endif // TMSIM_RUNTIME_THREAD_AREA_HH
