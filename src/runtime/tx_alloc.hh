/**
 * @file
 * Transactional memory allocator (paper section 5): allocation executes
 * as an open-nested transaction around the shared break pointer, and a
 * violation/abort handler compensates (releases the block) if the
 * enclosing user transaction rolls back.
 */

#ifndef TMSIM_RUNTIME_TX_ALLOC_HH
#define TMSIM_RUNTIME_TX_ALLOC_HH

#include <cstdint>
#include <vector>

#include "runtime/tx_thread.hh"

namespace tmsim {

class TxHeap
{
  public:
    /**
     * Carve a shared heap out of simulated memory. The break pointer
     * and live-byte counter live in simulated shared memory and are
     * maintained transactionally.
     */
    static TxHeap create(BackingStore& mem, Addr heap_bytes);

    /**
     * Allocate @p bytes within (or outside) a transaction. Inside a
     * transaction, registers compensation that returns the block if
     * the transaction aborts or is violated.
     */
    Task<Addr> alloc(TxThread& t, Addr bytes);

    /** Explicitly free a block (transaction-safe). */
    SimTask free(TxThread& t, Addr base, Addr bytes);

    /** Live allocated bytes according to the simulated counter. */
    Word liveBytes(const BackingStore& mem) const;

    /** Number of compensations executed (tests). */
    std::uint64_t compensations() const { return numCompensations; }

  private:
    Addr brkAddr = 0;
    Addr liveAddr = 0;
    Addr heapBase = 0;
    Addr heapEnd = 0;
    std::uint64_t numCompensations = 0;

    SimTask releaseBlock(TxThread& t, Addr bytes);
};

} // namespace tmsim

#endif // TMSIM_RUNTIME_TX_ALLOC_HH
