/**
 * @file
 * TxThread: the software conventions of paper sections 4-5 layered on
 * the raw ISA — TCB stack management, commit/violation/abort handler
 * stacks, and the atomic()/atomicOpen() retry drivers that language
 * implementations build on.
 *
 * Calibrated fast paths (verified by tests, reported in paper sec. 7):
 *   - transaction start (TCB allocation): 6 instructions
 *   - commit without handlers:           10 instructions
 *   - rollback without handlers:          6 instructions
 *   - handler registration (no args):     9 instructions
 */

#ifndef TMSIM_RUNTIME_TX_THREAD_HH
#define TMSIM_RUNTIME_TX_THREAD_HH

#include <functional>
#include <vector>

#include "core/cpu.hh"
#include "runtime/handler_stack.hh"
#include "runtime/thread_area.hh"
#include "sim/rng.hh"
#include "sim/task.hh"

namespace tmsim {

class TxThread;

/** A transaction body: re-invoked from scratch on every retry. */
using TxBody = std::function<SimTask(TxThread&)>;

/** Information handed to violation handlers (xvaddr / xvcurrent). */
struct ViolationInfo
{
    Addr vaddr;
    std::uint32_t mask;
};

/** What a violation handler wants done after it ran. */
enum class VioAction
{
    /** Fall through to the default: roll back and retry. */
    Proceed,
    /** Resume the interrupted transaction (xvret to xvpc). */
    Continue,
};

using CommitHandlerFn =
    std::function<SimTask(TxThread&, const std::vector<Word>&)>;
using AbortHandlerFn = CommitHandlerFn;
using ViolationHandlerFn = std::function<Task<VioAction>(
    TxThread&, const ViolationInfo&, const std::vector<Word>&)>;

/** Why atomic() returned. */
enum class TxResult
{
    Committed,
    Aborted,
    RetriesExhausted,
};

struct TxOutcome
{
    TxResult result = TxResult::Committed;
    Word abortCode = 0;
    int retries = 0;

    bool committed() const { return result == TxResult::Committed; }
};

struct TxOpts
{
    /** 0 = retry until committed or aborted. */
    int maxRetries = 0;
    /** Exponential backoff between retries (eager configs). */
    bool autoBackoff = true;
};

/**
 * One logical software thread bound 1:1 to a Cpu. Installs the runtime
 * violation/abort protocols into the Cpu at construction.
 */
class TxThread
{
  public:
    /** Abort code used by retryYield(): the owning atomic() parks the
     *  thread until wake() instead of returning Aborted. */
    static constexpr Word retryYieldCode = 0x52455452; // 'RETR'

    /** Abort code reported when a handler registration would overflow
     *  its handler stack: the transaction aborts recoverably (through
     *  the normal abort-handler path) instead of killing the sim. */
    static constexpr Word handlerOverflowCode = 0x484F5646; // 'HOVF'

    /** Abort code reported when an append would run past a
     *  TxLogDevice's capacity: the writing transaction aborts
     *  recoverably and the log is left untouched. */
    static constexpr Word logFullCode = 0x4C4F4746; // 'LOGF'

    explicit TxThread(Cpu& cpu);

    TxThread(const TxThread&) = delete;
    TxThread& operator=(const TxThread&) = delete;

    Cpu& cpu() { return cpuRef; }
    EventQueue& eventQueue() { return cpuRef.eventQueue(); }
    BackingStore& memory() { return cpuRef.memory(); }
    Rng& rng() { return threadRng; }

    // --- convenience passthroughs ---
    WordTask ld(Addr a) { return cpuRef.load(a); }
    SimTask st(Addr a, Word v) { return cpuRef.store(a, v); }
    SimTask work(std::uint64_t n) { return cpuRef.exec(n); }

    // --- op-class tagging (per-class tail latency; host-side only) ---

    /** Register a named op class on the bound Cpu; the returned id is
     *  only valid for this thread's setOpClass(). */
    int registerOpClass(const std::string& name)
    {
        return cpuRef.registerOpClass(name);
    }

    /** Tag subsequent transactions started by this thread (-1 clears).
     *  Typically called right before atomic(). */
    void setOpClass(int id) { cpuRef.setOpClass(id); }

    // --- transactions ---

    /** Run @p body as a closed-nested transaction, retrying on
     *  violation until it commits or aborts. */
    Task<TxOutcome> atomic(TxBody body, TxOpts opts = TxOpts{});

    /** Run @p body as an open-nested transaction. */
    Task<TxOutcome> atomicOpen(TxBody body, TxOpts opts = TxOpts{});

    /**
     * tryatomic/orElse: run @p body; if it aborts voluntarily, run
     * @p alt instead (violations still retry each path normally).
     */
    Task<TxOutcome> atomicOrElse(TxBody body, TxBody alt,
                                 TxOpts opts = TxOpts{});

    /**
     * Baseline for systems without transactional I/O support: the
     * whole transaction runs while holding the global serialization
     * resource (conventional HTMs "revert to sequential execution").
     */
    Task<TxOutcome> serializedAtomic(TxBody body, TxOpts opts = TxOpts{});

    // --- handler registration (must be inside a transaction) ---

    SimTask onCommit(CommitHandlerFn fn, std::vector<Word> args = {});
    SimTask onViolation(ViolationHandlerFn fn, std::vector<Word> args = {});
    SimTask onAbort(AbortHandlerFn fn, std::vector<Word> args = {});

    // --- conditional synchronisation support ---

    /**
     * Abort the innermost transaction and yield until wake(); the
     * owning atomic() then re-executes the body (Atomos retry).
     */
    SimTask retryYield();

    /** Wake a thread parked in retryYield(). Safe to call early. */
    void wake() { retryWaker.wake(1); }

    /** Nesting depth of live runtime frames (tests). */
    size_t frameCount() const { return frames.size(); }

  private:
    struct Frame
    {
        int hwLevel;
        TxKind kind;
        size_t chSave;
        size_t vhSave;
        size_t ahSave;
    };

    Task<TxOutcome> runTx(TxKind kind, TxBody body, TxOpts opts);
    SimTask beginTx(TxKind kind);
    SimTask commitSequence();
    SimTask backoff(int retries);

    SimTask violationProtocolImpl(Cpu& c);
    SimTask abortProtocolImpl(Cpu& c, Word code);

    /** Charge the imld/alu traffic of dispatching one handler entry. */
    template <typename Fn>
    SimTask chargeDispatch(const HandlerStack<Fn>& st,
                           const typename HandlerStack<Fn>::Entry& e);

    Cpu& cpuRef;
    ThreadArea area;
    HandlerStack<CommitHandlerFn> ch;
    HandlerStack<ViolationHandlerFn> vh;
    HandlerStack<AbortHandlerFn> ah;
    std::vector<Frame> frames;
    Waker retryWaker;
    Rng threadRng;
};

} // namespace tmsim

#endif // TMSIM_RUNTIME_TX_THREAD_HH
