#include "runtime/tx_thread.hh"

#include <algorithm>

#include "core/tx_signals.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace tmsim {

TxThread::TxThread(Cpu& cpu)
    : cpuRef(cpu),
      area(ThreadArea::allocate(cpu.memory())),
      ch(area.chBase, area.chTopField(), area.stackWords),
      vh(area.vhBase, area.vhTopField(), area.stackWords),
      ah(area.ahBase, area.ahTopField(), area.stackWords),
      retryWaker(cpu.eventQueue()),
      threadRng(0xC0FFEEull + static_cast<std::uint64_t>(cpu.id()) * 7919)
{
    cpu.setViolationProtocol(
        [this](Cpu& c) { return violationProtocolImpl(c); });
    cpu.setAbortProtocol(
        [this](Cpu& c, Word code) { return abortProtocolImpl(c, code); });
}

Task<TxOutcome>
TxThread::atomic(TxBody body, TxOpts opts)
{
    return runTx(TxKind::Closed, std::move(body), opts);
}

Task<TxOutcome>
TxThread::atomicOpen(TxBody body, TxOpts opts)
{
    return runTx(TxKind::Open, std::move(body), opts);
}

Task<TxOutcome>
TxThread::atomicOrElse(TxBody body, TxBody alt, TxOpts opts)
{
    // tryatomic / orElse (paper section 3 "Contention and Error
    // Management", section 5): run the alternate path when the primary
    // transaction aborts voluntarily.
    TxOutcome out = co_await runTx(TxKind::Closed, std::move(body), opts);
    if (out.result != TxResult::Aborted)
        co_return out;
    TxOutcome altOut =
        co_await runTx(TxKind::Closed, std::move(alt), opts);
    altOut.retries += out.retries;
    co_return altOut;
}

Task<TxOutcome>
TxThread::serializedAtomic(TxBody body, TxOpts opts)
{
    FifoResource& lock = cpuRef.memSystem().serializeLock();
    co_await lock.acquire();
    TxOutcome out;
    try {
        out = co_await runTx(TxKind::Closed, std::move(body), opts);
    } catch (...) {
        lock.release();
        throw;
    }
    lock.release();
    co_return out;
}

Task<TxOutcome>
TxThread::runTx(TxKind kind, TxBody body, TxOpts opts)
{
    enum class Next
    {
        Retry,
        RetryWait,
        Return,
    };

    int retries = 0;
    for (;;) {
        const int depthBefore = cpuRef.htm().depth();
        co_await beginTx(kind);
        const bool subsumed = cpuRef.htm().depth() == depthBefore;
        const int myLevel = cpuRef.htm().depth();

        Next next;
        TxOutcome out;
        try {
            co_await body(*this);
            co_await commitSequence();
            co_return TxOutcome{TxResult::Committed, 0, retries};
        } catch (const TxRollback& r) {
            // A rollback targeting an outer level, or one whose
            // hardware level we merely subsumed, belongs to an
            // enclosing frame.
            if (subsumed || r.targetLevel < myLevel)
                throw;
            ++retries;
            if (opts.maxRetries && retries > opts.maxRetries) {
                next = Next::Return;
                out = TxOutcome{TxResult::RetriesExhausted, 0, retries};
            } else {
                next = Next::Retry;
            }
        } catch (const TxAbortSignal& a) {
            if (subsumed || a.targetLevel < myLevel)
                throw;
            if (a.code == retryYieldCode) {
                ++retries;
                next = Next::RetryWait;
            } else {
                next = Next::Return;
                out = TxOutcome{TxResult::Aborted, a.code, retries};
            }
        }

        if (next == Next::Return) {
            // This attempt sequence is over without a commit (voluntary
            // abort that will not retry, or retry budget exhausted):
            // drop the contention manager's fairness record so stale
            // seniority/karma cannot leak into an unrelated later
            // transaction. Only when we actually left the outermost
            // level — an inner abort with a live enclosing transaction
            // keeps the outer sequence (and its record) alive.
            if (!cpuRef.htm().inTx())
                cpuRef.memSystem().detector().noteSequenceAbandoned(
                    cpuRef.id());
            co_return out;
        }
        if (next == Next::RetryWait) {
            // Conditional synchronisation: park until woken, then
            // re-execute the body from scratch.
            co_await WaitOn{retryWaker};
        } else if (opts.autoBackoff &&
                   !cpuRef.lastRollbackWasCapacity()) {
            // Capacity restarts retry immediately: waiting cannot
            // shrink the footprint, and the restarted attempt runs
            // virtualised (caps lifted), so it is guaranteed to fit.
            co_await backoff(retries);
        }
    }
}

SimTask
TxThread::beginTx(TxKind kind)
{
    const int before = cpuRef.htm().depth();
    if (kind == TxKind::Closed)
        co_await cpuRef.xbegin(); // 1 instruction
    else
        co_await cpuRef.xbeginOpen();
    if (cpuRef.htm().depth() == before)
        co_return; // subsumed begin: no TCB frame

    // TCB allocation, 5 further instructions (6 total with xbegin):
    // snapshot the handler-stack tops into the new frame and bump the
    // TCB top pointer.
    Frame f{cpuRef.htm().depth(), kind, ch.topWords(), vh.topWords(),
            ah.topWords()};
    const Addr tcb = area.tcbFrameAddr(frames.size());
    co_await cpuRef.imst(tcb + 0 * wordBytes,
                         static_cast<Word>(f.hwLevel));
    co_await cpuRef.imst(tcb + 1 * wordBytes, f.chSave);
    co_await cpuRef.imst(tcb + 2 * wordBytes, f.vhSave);
    co_await cpuRef.exec(2); // ah snapshot in a register + tcbptr bump
    frames.push_back(f);
}

template <typename Fn>
SimTask
TxThread::chargeDispatch(const HandlerStack<Fn>& st,
                         const typename HandlerStack<Fn>::Entry& e)
{
    co_await cpuRef.imld(st.wordAddr(e.wordOff));     // handler PC
    co_await cpuRef.imld(st.wordAddr(e.wordOff + 1)); // argc
    for (size_t i = 0; i < e.args.size(); ++i)
        co_await cpuRef.imld(st.wordAddr(e.wordOff + 2 + i));
    co_await cpuRef.exec(2); // indirect call + return
}

SimTask
TxThread::commitSequence()
{
    HtmContext& ctx = cpuRef.htm();
    if (!ctx.inTx())
        panic("commitSequence outside a transaction");

    if (ctx.topIsSubsumed()) {
        co_await cpuRef.xcommit(); // flattened inner commit: 1 instr
        co_return;
    }
    if (frames.empty() || frames.back().hwLevel != ctx.depth())
        panic("runtime frame stack out of sync with hardware nesting");

    const Frame f = frames.back();
    const bool outermost = ctx.depth() == 1;
    const bool open = f.kind == TxKind::Open;

    if (!outermost && !open) {
        // Closed-nested commit: handlers merge into the parent by
        // leaving them on the stacks; only the frame disappears.
        co_await cpuRef.xvalidate(); // no-op for closed nesting (1)
        co_await cpuRef.exec(2);     // copy handler tops to parent TCB
        co_await cpuRef.xcommit();   // merge sets into parent (1)
        co_await cpuRef.exec(1);     // tcbptr pop
        frames.pop_back();
        co_return;
    }

    // Outermost or open-nested: full two-phase commit.
    co_await cpuRef.xvalidate();                 // 1 (may stall/throw)
    co_await cpuRef.imld(ch.topFieldAddr());     // 2
    co_await cpuRef.exec(2);                     // 4: bounds + branch
    auto commitEntries = ch.entriesAbove(f.chSave);
    for (const auto& e : commitEntries) {
        cpuRef.tracer()->instant(cpuRef.id(), TxTracer::Ev::CommitHandler,
                                 ctx.depth());
        co_await chargeDispatch(ch, e);
        co_await e.fn(*this, e.args);
    }
    co_await cpuRef.exec(3); // 7: discard violation/abort handler tops
    co_await cpuRef.xcommit();                   // 8
    co_await cpuRef.exec(2);                     // 10: tcb pop + return

    ch.truncate(f.chSave);
    vh.truncate(f.vhSave);
    ah.truncate(f.ahSave);
    frames.pop_back();
}

SimTask
TxThread::backoff(int retries)
{
    if (!cpuRef.htm().config().retryBackoff)
        co_return;
    const bool eager =
        cpuRef.htm().config().conflict == ConflictMode::Eager;
    Cycles d = cpuRef.memSystem().detector().contention().backoffDelay(
        cpuRef.id(), retries, eager, threadRng);
    if (d) {
        const Tick start = cpuRef.now();
        cpuRef.tracer()->span(cpuRef.id(), TxTracer::Ev::Backoff, start, d);
        co_await Delay{cpuRef.eventQueue(), d};
    }
}

SimTask
TxThread::onCommit(CommitHandlerFn fn, std::vector<Word> args)
{
    if (!cpuRef.htm().inTx())
        fatal("onCommit outside a transaction");
    const auto* e = ch.push(std::move(fn), std::move(args));
    if (!e) {
        // Registration would overflow the thread's handler stack: a
        // recoverable per-transaction abort (through the normal abort
        // protocol), not a simulator death. Usually throws
        // TxAbortSignal; a custom abort protocol may instead resume
        // us, in which case the registration is simply dropped.
        co_await cpuRef.xabort(handlerOverflowCode);
        co_return;
    }
    // Registration cost (paper: 9 instructions for no arguments).
    co_await cpuRef.imld(ch.topFieldAddr());              // 1
    co_await cpuRef.exec(2);                              // 3: bounds
    co_await cpuRef.imst(ch.wordAddr(e->wordOff), 1);     // 4: PC
    co_await cpuRef.imst(ch.wordAddr(e->wordOff + 1),
                         e->args.size());                 // 5: argc
    for (size_t i = 0; i < e->args.size(); ++i)
        co_await cpuRef.imst(ch.wordAddr(e->wordOff + 2 + i), e->args[i]);
    co_await cpuRef.exec(1);                              // 6: new top
    co_await cpuRef.imst(ch.topFieldAddr(), ch.topWords()); // 7
    co_await cpuRef.exec(2);                              // 9: call/ret
}

SimTask
TxThread::onViolation(ViolationHandlerFn fn, std::vector<Word> args)
{
    if (!cpuRef.htm().inTx())
        fatal("onViolation outside a transaction");
    const auto* e = vh.push(std::move(fn), std::move(args));
    if (!e) {
        co_await cpuRef.xabort(handlerOverflowCode);
        co_return;
    }
    co_await cpuRef.imld(vh.topFieldAddr());
    co_await cpuRef.exec(2);
    co_await cpuRef.imst(vh.wordAddr(e->wordOff), 1);
    co_await cpuRef.imst(vh.wordAddr(e->wordOff + 1), e->args.size());
    for (size_t i = 0; i < e->args.size(); ++i)
        co_await cpuRef.imst(vh.wordAddr(e->wordOff + 2 + i), e->args[i]);
    co_await cpuRef.exec(1);
    co_await cpuRef.imst(vh.topFieldAddr(), vh.topWords());
    co_await cpuRef.exec(2);
}

SimTask
TxThread::onAbort(AbortHandlerFn fn, std::vector<Word> args)
{
    if (!cpuRef.htm().inTx())
        fatal("onAbort outside a transaction");
    const auto* e = ah.push(std::move(fn), std::move(args));
    if (!e) {
        co_await cpuRef.xabort(handlerOverflowCode);
        co_return;
    }
    co_await cpuRef.imld(ah.topFieldAddr());
    co_await cpuRef.exec(2);
    co_await cpuRef.imst(ah.wordAddr(e->wordOff), 1);
    co_await cpuRef.imst(ah.wordAddr(e->wordOff + 1), e->args.size());
    for (size_t i = 0; i < e->args.size(); ++i)
        co_await cpuRef.imst(ah.wordAddr(e->wordOff + 2 + i), e->args[i]);
    co_await cpuRef.exec(1);
    co_await cpuRef.imst(ah.topFieldAddr(), ah.topWords());
    co_await cpuRef.exec(2);
}

SimTask
TxThread::retryYield()
{
    co_await cpuRef.xabort(retryYieldCode);
}

SimTask
TxThread::violationProtocolImpl(Cpu& c)
{
    HtmContext& ctx = c.htm();
    const std::uint32_t mask = ctx.xvcurrent();
    const ViolationInfo info{ctx.xvaddr(), mask};
    const int target = __builtin_ctz(mask) + 1;

    if (static_cast<size_t>(target) > frames.size()) {
        // Raw-ISA transactions not managed by this runtime.
        co_await c.rollbackAndThrow(target);
    }
    const Frame tf = frames[static_cast<size_t>(target) - 1];

    // Handler-probe fast path: 2 instructions.
    co_await c.imld(vh.topFieldAddr());
    co_await c.exec(1);

    // Run every violation handler registered by the levels being
    // rolled back, newest first (paper 4.3: reverse order preserves
    // undo semantics).
    auto entries = vh.entriesAbove(tf.vhSave);
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        c.tracer()->instant(c.id(), TxTracer::Ev::ViolationHandler,
                            ctx.depth(), info.vaddr);
        co_await chargeDispatch(vh, *it);
        VioAction action = co_await it->fn(*this, info, it->args);
        if (action == VioAction::Continue) {
            // Software chose to resume the transaction: acknowledge
            // the delivered conflicts and xvret.
            ctx.clearCurrentViolations();
            co_return;
        }
    }

    // Default: roll back to the shallowest violated level and retry.
    // With no handlers this path costs 6 instructions total: imld +
    // alu above, then the undo processing / xrwsetclear / xregrestore
    // slots. The architectural state change happens atomically in
    // rawRollback AFTER the undo data is restored — clearing the
    // write-set before the in-place data is restored would open a
    // window where another CPU's conflict check passes and reads
    // doomed speculative values.
    co_await c.exec(4);

    while (!frames.empty() && frames.back().hwLevel >= target)
        frames.pop_back();
    ch.truncate(tf.chSave);
    vh.truncate(tf.vhSave);
    ah.truncate(tf.ahSave);

    c.rawRollback(target); // undo-log walk + xrwsetclear + xregrestore
    throw TxRollback{target, info.vaddr};
}

SimTask
TxThread::abortProtocolImpl(Cpu& c, Word code)
{
    HtmContext& ctx = c.htm();
    const int target = ctx.depth();

    if (static_cast<size_t>(target) > frames.size())
        panic("abort protocol with no runtime frame");
    const Frame tf = frames[static_cast<size_t>(target) - 1];

    co_await c.imld(ah.topFieldAddr()); // 1 (+1 for xabort itself)
    co_await c.exec(1);                 // 2

    auto entries = ah.entriesAbove(tf.ahSave);
    for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
        c.tracer()->instant(c.id(), TxTracer::Ev::AbortHandler,
                            ctx.depth());
        co_await chargeDispatch(ah, *it);
        co_await it->fn(*this, it->args);
    }

    co_await c.exec(3); // 5 (6 with the xabort instruction): undo walk
                        // + xrwsetclear + xregrestore slots

    while (!frames.empty() && frames.back().hwLevel >= target)
        frames.pop_back();
    ch.truncate(tf.chSave);
    vh.truncate(tf.vhSave);
    ah.truncate(tf.ahSave);

    c.rawRollback(target); // atomic: restore, discard sets, restore regs
    throw TxAbortSignal{target, code};
}

} // namespace tmsim
