/**
 * @file
 * Transactional I/O (paper sections 5 and 7.2).
 *
 * Output: txWrite buffers the record in a thread-private staging area
 * now and registers a commit handler that performs the actual "system
 * call" — an open-nested append to the shared log device — only once
 * the transaction is known to commit. A violated transaction discards
 * the buffer for free.
 *
 * Input: txRead performs the system call immediately inside an
 * open-nested transaction and registers violation/abort handlers that
 * restore the file position if the user transaction rolls back.
 */

#ifndef TMSIM_RUNTIME_TX_IO_HH
#define TMSIM_RUNTIME_TX_IO_HH

#include <unordered_map>
#include <vector>

#include "runtime/tx_thread.hh"

namespace tmsim {

/** A shared append-only log "device" living in simulated memory. */
class TxLogDevice
{
  public:
    static TxLogDevice create(BackingStore& mem, size_t capacity_words);

    Addr tailAddr() const { return tailPtr; }
    Addr dataBase() const { return base; }

    /** Device capacity, in words: appends past this bound abort the
     *  writing transaction (TxThread::logFullCode). */
    size_t capacityWords() const { return capacity; }

    /** Committed length, in words. */
    Word length(const BackingStore& mem) const { return mem.read(tailPtr); }

    /** Committed contents (host-side inspection for tests). */
    std::vector<Word> contents(const BackingStore& mem) const;

  private:
    Addr tailPtr = 0;
    Addr base = 0;
    size_t capacity = 0;
};

/** Transactional writer over a TxLogDevice. */
class TxIo
{
  public:
    explicit TxIo(TxLogDevice& log) : log(log) {}

    /**
     * Transactional write: stage privately, append at commit via a
     * commit handler. Usable inside or outside a transaction (outside,
     * the append happens immediately).
     */
    SimTask txWrite(TxThread& t, std::vector<Word> record);

    /**
     * Non-transactional baseline write: append to the device
     * immediately from inside the transaction (only safe when the
     * whole transaction is serialised; see
     * TxThread::serializedAtomic).
     */
    SimTask directWrite(TxThread& t, const std::vector<Word>& record);

  private:
    SimTask appendOpen(TxThread& t, Addr buf, size_t n);
    Addr stagingFor(TxThread& t, size_t words);

    TxLogDevice& log;

    struct Staging
    {
        Addr base = 0;
        size_t words = 0;
        size_t cursor = 0;
    };
    std::unordered_map<CpuId, Staging> staging;
};

/** A read-only sequential word "file" with a shared position. */
class TxInFile
{
  public:
    static TxInFile create(BackingStore& mem,
                           const std::vector<Word>& contents);

    /**
     * Transactional read of the next word: advances the position in an
     * open-nested transaction, registering compensation that restores
     * it if the enclosing transaction rolls back.
     */
    WordTask txRead(TxThread& t);

    /** Current position, in words (tests). */
    Word position(const BackingStore& mem) const { return mem.read(posPtr); }

    std::uint64_t compensations() const { return numCompensations; }

  private:
    Addr posPtr = 0;
    Addr base = 0;
    size_t sizeWords = 0;
    std::uint64_t numCompensations = 0;
};

} // namespace tmsim

#endif // TMSIM_RUNTIME_TX_IO_HH
