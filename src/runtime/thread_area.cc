#include "runtime/thread_area.hh"

namespace tmsim {

ThreadArea
ThreadArea::allocate(BackingStore& mem, size_t max_frames,
                     size_t stack_words)
{
    ThreadArea area;
    area.maxFrames = max_frames;
    area.stackWords = stack_words;
    area.regBase = mem.allocate(8 * wordBytes, 64);
    area.tcbBase = mem.allocate(max_frames * frameWords * wordBytes, 64);
    area.chBase = mem.allocate(stack_words * wordBytes, 64);
    area.vhBase = mem.allocate(stack_words * wordBytes, 64);
    area.ahBase = mem.allocate(stack_words * wordBytes, 64);
    return area;
}

} // namespace tmsim
