#include "runtime/tx_alloc.hh"

#include "sim/logging.hh"

namespace tmsim {

TxHeap
TxHeap::create(BackingStore& mem, Addr heap_bytes)
{
    TxHeap heap;
    heap.brkAddr = mem.allocate(64, 64);
    heap.liveAddr = heap.brkAddr + wordBytes;
    heap.heapBase = mem.allocate(heap_bytes, 64);
    heap.heapEnd = heap.heapBase + heap_bytes;
    mem.write(heap.brkAddr, heap.heapBase);
    mem.write(heap.liveAddr, 0);
    return heap;
}

Task<Addr>
TxHeap::alloc(TxThread& t, Addr bytes)
{
    const Addr rounded = (bytes + 63) & ~static_cast<Addr>(63);
    Addr result = 0;

    // The brk update runs open-nested so the enclosing user transaction
    // neither serialises on the shared break pointer nor holds it in
    // its write-set until commit.
    co_await t.atomicOpen([&](TxThread& th) -> SimTask {
        Word brk = co_await th.ld(brkAddr);
        if (brk + rounded > heapEnd)
            fatal("TxHeap exhausted");
        result = brk;
        co_await th.st(brkAddr, brk + rounded);
        Word live = co_await th.ld(liveAddr);
        co_await th.st(liveAddr, live + rounded);
    });

    // If the user transaction that requested the block rolls back, the
    // allocation must be compensated (paper: "a violation handler is
    // registered to free the memory if the transaction aborts").
    if (t.cpu().htm().inTx()) {
        co_await t.onViolation(
            [this, rounded](TxThread& th, const ViolationInfo&,
                            const std::vector<Word>&) -> Task<VioAction> {
                co_await releaseBlock(th, rounded);
                co_return VioAction::Proceed;
            });
        co_await t.onAbort(
            [this, rounded](TxThread& th,
                            const std::vector<Word>&) -> SimTask {
                co_await releaseBlock(th, rounded);
            });
    }
    co_return result;
}

SimTask
TxHeap::releaseBlock(TxThread& t, Addr bytes)
{
    ++numCompensations;
    co_await t.atomicOpen([&](TxThread& th) -> SimTask {
        Word live = co_await th.ld(liveAddr);
        co_await th.st(liveAddr, live - bytes);
    });
}

SimTask
TxHeap::free(TxThread& t, Addr /* base */, Addr bytes)
{
    const Addr rounded = (bytes + 63) & ~static_cast<Addr>(63);
    co_await t.atomicOpen([&](TxThread& th) -> SimTask {
        Word live = co_await th.ld(liveAddr);
        co_await th.st(liveAddr, live - rounded);
    });
}

Word
TxHeap::liveBytes(const BackingStore& mem) const
{
    return mem.read(liveAddr);
}

} // namespace tmsim
