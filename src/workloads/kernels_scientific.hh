/**
 * @file
 * Substitute kernels for the paper's scientific benchmarks (SPECcpu
 * swim/tomcatv, SPLASH barnes/fmm/water, Java Grande moldyn).
 *
 * Each original was parallelised in the paper by wrapping loop bodies
 * in outer transactions, with reduction-variable / shared-cell updates
 * as closed-nested inner transactions. The kernels here reproduce that
 * transactional structure with tunable dimensions: outer length,
 * private streaming traffic, inner-transaction count and placement,
 * and the size of the shared conflict domain. Figure 5's shape depends
 * on exactly these dimensions, not on the original codes' arithmetic.
 */

#ifndef TMSIM_WORKLOADS_KERNELS_SCIENTIFIC_HH
#define TMSIM_WORKLOADS_KERNELS_SCIENTIFIC_HH

#include "workloads/harness.hh"

namespace tmsim {

/** Transactional-structure parameters of one scientific kernel. */
struct SciParams
{
    std::string name;
    /** Outer transactions in total (divided among threads). */
    int outerIters = 128;
    /** ALU work at the start of each outer transaction. */
    int frontCycles = 800;
    /** ALU work at the end of each outer transaction. */
    int backCycles = 200;
    /** Private words streamed (read+write) per outer transaction. */
    int privateWords = 24;
    /** Shared read-mostly words read per outer transaction. */
    int sharedReads = 4;
    /** Inner (closed-nested) transactions per outer transaction. */
    int innerCount = 2;
    /** ALU work inside each inner transaction. */
    int innerCycles = 20;
    /** Number of shared cells the inner transactions update. The
     *  smaller the domain, the higher the conflict rate. */
    int sharedCells = 128;
    /** Place the inner transactions after the bulk of the outer work
     *  (mp3d-style: a late conflict costs the whole outer tx under
     *  flattening). */
    bool innersAtEnd = true;
    /** Contended reduction variables updated by one closed-nested
     *  transaction at the very end of each outer transaction (0 =
     *  none). This is the paper's "update reduction variables within
     *  larger transactions" pattern. */
    int reductionCells = 0;
    /** ALU cycles inside the reduction transaction. */
    int reductionCycles = 30;
    /** RNG seed (per-thread streams derive from it). */
    std::uint64_t seed = 1;
};

/** The parameterised scientific kernel. */
class SciKernel : public Kernel
{
  public:
    explicit SciKernel(SciParams params) : p(std::move(params)) {}

    std::string name() const override { return p.name; }
    void init(Machine& m, int n_threads) override;
    SimTask thread(TxThread& t, int tid, int n_threads) override;
    bool verify(Machine& m, int n_threads) override;

    const SciParams& params() const { return p; }

  private:
    int itersFor(int tid, int n_threads) const;

    SciParams p;
    Addr cellsBase = 0;
    Addr reductionBase = 0;
    Addr sharedReadBase = 0;
    std::vector<Addr> privateBase;
};

/** Presets reproducing the paper's benchmark suite structure. */
SciParams sciBarnes();
SciParams sciFmm();
SciParams sciMoldyn();
SciParams sciSwim();
SciParams sciTomcatv();
SciParams sciWater();

} // namespace tmsim

#endif // TMSIM_WORKLOADS_KERNELS_SCIENTIFIC_HH
