#include "workloads/kernel_condsync.hh"

namespace tmsim {

void
CondSyncKernel::init(Machine& m, int n_threads)
{
    workerCount = n_threads - 1;
    sched = std::make_unique<CondScheduler>(m.memory(),
                                            std::max(workerCount, 1));
    const int pairs = pairsFor(n_threads);
    slots.clear();
    received.assign(static_cast<size_t>(std::max(pairs, 1)), {});
    for (int i = 0; i < pairs; ++i) {
        Addr s = m.memory().allocate(64, 64);
        m.memory().write(s, 0);
        slots.push_back(s);
    }
}

SimTask
CondSyncKernel::producer(TxThread& t, int worker, Addr slot)
{
    const int pair = worker / 2;
    for (int i = 1; i <= p.itemsPerPair; ++i) {
        const Word item = static_cast<Word>(pair) * 10000 +
                          static_cast<Word>(i);
        const std::uint64_t produceWork =
            static_cast<std::uint64_t>(p.workCycles) *
            static_cast<std::uint64_t>(p.produceMult);
        if (p.useScheduler) {
            co_await t.atomic([&](TxThread& tx) -> SimTask {
                co_await sched->loadOrRetry(tx, worker, slot,
                                            [](Word w) { return w == 0; });
                co_await tx.work(produceWork);
                co_await tx.st(slot, item);
            });
        } else {
            for (;;) {
                TxOutcome out =
                    co_await t.atomic([&](TxThread& tx) -> SimTask {
                        Word v = co_await tx.ld(slot);
                        if (v != 0)
                            co_await tx.cpu().xabort(1); // poll again
                        co_await tx.work(produceWork);
                        co_await tx.st(slot, item);
                    });
                if (out.committed())
                    break;
            }
        }
    }
}

SimTask
CondSyncKernel::consumer(TxThread& t, int worker, Addr slot, int pair)
{
    for (int i = 0; i < p.itemsPerPair; ++i) {
        Word got = 0;
        if (p.useScheduler) {
            co_await t.atomic([&](TxThread& tx) -> SimTask {
                got = co_await sched->loadOrRetry(
                    tx, worker, slot, [](Word w) { return w != 0; });
                co_await tx.work(
                    static_cast<std::uint64_t>(p.workCycles));
                co_await tx.st(slot, 0);
            });
        } else {
            for (;;) {
                TxOutcome out =
                    co_await t.atomic([&](TxThread& tx) -> SimTask {
                        Word v = co_await tx.ld(slot);
                        if (v == 0)
                            co_await tx.cpu().xabort(1);
                        got = v;
                        co_await tx.work(
                            static_cast<std::uint64_t>(p.workCycles));
                        co_await tx.st(slot, 0);
                    });
                if (out.committed())
                    break;
            }
        }
        received[static_cast<size_t>(pair)].push_back(got);
    }
}

SimTask
CondSyncKernel::thread(TxThread& t, int tid, int n_threads)
{
    if (tid == 0) {
        if (p.useScheduler)
            co_await sched->schedulerBody(t, workerCount);
        co_return; // polling variant: CPU 0 idles for comparability
    }

    const int worker = tid - 1;
    if (p.useScheduler)
        sched->addWorker(worker, &t);

    const int pairs = pairsFor(n_threads);
    const int pair = worker / 2;
    if (pair < pairs) {
        if (worker % 2 == 0)
            co_await producer(t, worker, slots[static_cast<size_t>(pair)]);
        else
            co_await consumer(t, worker, slots[static_cast<size_t>(pair)],
                              pair);
    }
    if (p.useScheduler)
        co_await sched->workerDone(t);
}

bool
CondSyncKernel::verify(Machine& m, int n_threads)
{
    const int pairs = pairsFor(n_threads);
    for (int pr = 0; pr < pairs; ++pr) {
        const auto& got = received[static_cast<size_t>(pr)];
        if (got.size() != static_cast<size_t>(p.itemsPerPair))
            return false;
        for (int i = 0; i < p.itemsPerPair; ++i) {
            if (got[static_cast<size_t>(i)] !=
                static_cast<Word>(pr) * 10000 + static_cast<Word>(i + 1)) {
                return false;
            }
        }
        if (m.memory().read(slots[static_cast<size_t>(pr)]) != 0)
            return false;
    }
    return true;
}

} // namespace tmsim
