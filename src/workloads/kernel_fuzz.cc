#include "workloads/kernel_fuzz.hh"

#include "check/oracle.hh"
#include "sim/logging.hh"

namespace tmsim {

FuzzKernel::FuzzKernel(std::uint64_t s) : seed(s)
{
    program = generateProgram(seed);
}

std::string
FuzzKernel::name() const
{
    return "fuzz[seed=" + std::to_string(seed) + "]";
}

void
FuzzKernel::init(Machine& m, int n_threads)
{
    (void)n_threads;
    // The interpreter's checking rules depend on the machine's HTM
    // configuration (nesting mode, track granularity), so it can only
    // be built once the Machine exists.
    interp = std::make_unique<FuzzInterp>(program, m.config().htm);
    interp->attach(m);
}

SimTask
FuzzKernel::thread(TxThread& t, int tid, int n_threads)
{
    (void)n_threads;
    co_await interp->threadBody(t, tid);
}

bool
FuzzKernel::verify(Machine& m, int n_threads)
{
    (void)n_threads;
    const ObservedRun run = interp->finish(m, false);
    const OracleVerdict v = checkRun(program, run);
    if (!v.ok)
        warn("fuzz oracle: %s", v.message.c_str());
    return v.ok;
}

} // namespace tmsim
