/**
 * @file
 * A B-tree living entirely in simulated memory, operated through
 * transactional loads/stores. This is the shared data structure under
 * the SPECjbb-style warehouse workload (the paper parallelised
 * SPECjbb2000 "where customer tasks ... manipulate shared
 * data-structures (B-trees)").
 *
 * Node pool allocation runs open-nested so the bump pointer does not
 * serialise user transactions; a leaked node on rollback is harmless
 * (same argument the paper makes for order IDs: unique, not dense).
 */

#ifndef TMSIM_WORKLOADS_BTREE_HH
#define TMSIM_WORKLOADS_BTREE_HH

#include <unordered_map>
#include <utility>
#include <vector>

#include "runtime/tx_thread.hh"

namespace tmsim {

class SimBTree
{
  public:
    /** Fanout: max children per internal node. */
    static constexpr int order = 8;
    static constexpr int maxKeys = order - 1;

    /**
     * Build an empty tree. @p max_nodes bounds the node pool.
     */
    static SimBTree create(BackingStore& mem, size_t max_nodes);

    /** Transactional point lookup. @return value, or 0 if absent. */
    WordTask lookup(TxThread& t, Word key);

    /** Transactional insert-or-overwrite. */
    SimTask insert(TxThread& t, Word key, Word value);

    /** Transactional read-modify-write of an existing key's value.
     *  @return the new value (0 if the key is absent). */
    WordTask addDelta(TxThread& t, Word key, Word delta);

    /**
     * Host-side bulk load of sorted unique (key, value) pairs into an
     * EMPTY tree (untimed; workload initialisation).
     */
    void bulkLoad(BackingStore& mem,
                  const std::vector<std::pair<Word, Word>>& pairs);

    // --- host-side inspection (untimed; tests and verification) ---

    /** In-order (key, value) pairs. */
    std::vector<std::pair<Word, Word>> items(const BackingStore& mem) const;

    /** Structural invariants: sorted keys, fill bounds, leaf depth. */
    bool validateStructure(const BackingStore& mem) const;

    /** Number of keys stored. */
    size_t size(const BackingStore& mem) const;

    /** Nodes allocated from the pool (includes leaked ones). */
    Word nodesAllocated(const BackingStore& mem) const;

  private:
    // Node layout, in words:
    //   [0]            packed header: numKeys | (isLeaf ? 1<<32 : 0)
    //   [1 .. 7]       keys
    //   [8 .. 15]      children (internal) or values (leaf, 7 used)
    static constexpr size_t nodeWords = 16;
    static constexpr Word leafBit = 1ull << 32;

    Addr headerAddr(Addr node) const { return node; }
    Addr keyAddr(Addr node, int i) const
    {
        return node + (1 + static_cast<Addr>(i)) * wordBytes;
    }
    Addr slotAddr(Addr node, int i) const
    {
        return node + (8 + static_cast<Addr>(i)) * wordBytes;
    }

    /** Open-nested node-pool bump allocation. */
    WordTask allocNode(TxThread& t, bool leaf);

    /** Split full child @p idx of @p parent (single-pass insert). */
    SimTask splitChild(TxThread& t, Addr parent, int idx, Addr child);

    void collect(const BackingStore& mem, Addr node,
                 std::vector<std::pair<Word, Word>>& out) const;
    bool validateNode(const BackingStore& mem, Addr node, Word lo,
                      Word hi, int depth, int& leaf_depth) const;

    Addr rootPtrAddr = 0;
    Addr poolNextAddr = 0;
    Addr poolBase = 0;
    Addr poolEnd = 0;

    /**
     * Per-thread spare nodes recycled by violation/abort compensation
     * handlers: a node allocated by a transaction that later rolled
     * back is unused (its initialisation was speculative) and can be
     * handed out again, bounding pool consumption under contention.
     */
    std::unordered_map<CpuId, std::vector<Word>> spares;
};

} // namespace tmsim

#endif // TMSIM_WORKLOADS_BTREE_HH
