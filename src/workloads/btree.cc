#include "workloads/btree.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tmsim {

namespace {

int
numKeysOf(Word header)
{
    return static_cast<int>(header & 0xFFFFFFFFull);
}

bool
isLeafOf(Word header)
{
    return (header & (1ull << 32)) != 0;
}

Word
packHeader(int num_keys, bool leaf)
{
    return static_cast<Word>(num_keys) | (leaf ? (1ull << 32) : 0);
}

} // namespace

SimBTree
SimBTree::create(BackingStore& mem, size_t max_nodes)
{
    SimBTree t;
    Addr ctl = mem.allocate(64, 64);
    t.rootPtrAddr = ctl;
    t.poolNextAddr = ctl + wordBytes;
    t.poolBase = mem.allocate(max_nodes * nodeWords * wordBytes, 64);
    t.poolEnd = t.poolBase + max_nodes * nodeWords * wordBytes;

    // Host-side bootstrap: an empty leaf root.
    Addr root = t.poolBase;
    mem.write(t.poolNextAddr, root + nodeWords * wordBytes);
    mem.write(t.headerAddr(root), packHeader(0, true));
    mem.write(t.rootPtrAddr, root);
    return t;
}

WordTask
SimBTree::allocNode(TxThread& t, bool leaf)
{
    Word node = 0;
    std::vector<Word>& spare = spares[t.cpu().id()];

    // Compensation-based recycling is only sound when the open-nested
    // allocation genuinely commits openly. If the begin would be
    // subsumed (flattening baseline, or hardware depth exhausted), the
    // pool bump is speculative: a rollback undoes it, so there is
    // nothing to recycle — and reusing a "spare" whose bump never
    // committed would hand the same node to two transactions.
    HtmContext& ctx = t.cpu().htm();
    const HtmConfig& cfg = ctx.config();
    const bool openCommits =
        !((cfg.nesting == NestingMode::Flatten && ctx.inTx()) ||
          ctx.depth() >= cfg.maxHwLevels);

    if (openCommits && !spare.empty()) {
        node = spare.back();
        spare.pop_back();
        co_await t.work(2); // free-list pop
    } else {
        // Open-nested bump allocation: commits immediately, never
        // serialises the enclosing user transaction on the pool
        // pointer.
        co_await t.atomicOpen([&](TxThread& th) -> SimTask {
            Word next = co_await th.ld(poolNextAddr);
            if (next + nodeWords * wordBytes > poolEnd)
                fatal("SimBTree node pool exhausted");
            node = next;
            co_await th.st(poolNextAddr, next + nodeWords * wordBytes);
        });
    }

    // Compensation: if the allocating transaction rolls back, the node
    // was never linked (its initialisation was speculative) — recycle
    // it instead of leaking pool space.
    if (openCommits && t.cpu().htm().inTx()) {
        const CpuId owner = t.cpu().id();
        const Word recycled = node;
        co_await t.onViolation(
            [this, owner, recycled](TxThread&, const ViolationInfo&,
                                    const std::vector<Word>&)
                -> Task<VioAction> {
                spares[owner].push_back(recycled);
                co_return VioAction::Proceed;
            });
        co_await t.onAbort(
            [this, owner, recycled](TxThread&,
                                    const std::vector<Word>&) -> SimTask {
                spares[owner].push_back(recycled);
                co_return;
            });
    }

    // The node body is initialised speculatively by the current
    // transaction.
    co_await t.st(headerAddr(node), packHeader(0, leaf));
    co_return node;
}

WordTask
SimBTree::lookup(TxThread& t, Word key)
{
    Addr node = co_await t.ld(rootPtrAddr);
    for (;;) {
        Word header = co_await t.ld(headerAddr(node));
        int n = numKeysOf(header);
        if (isLeafOf(header)) {
            for (int i = 0; i < n; ++i) {
                Word k = co_await t.ld(keyAddr(node, i));
                if (k == key)
                    co_return co_await t.ld(slotAddr(node, i));
                if (k > key)
                    co_return 0;
            }
            co_return 0;
        }
        int idx = 0;
        while (idx < n) {
            Word k = co_await t.ld(keyAddr(node, idx));
            if (key < k)
                break;
            ++idx;
        }
        node = co_await t.ld(slotAddr(node, idx));
    }
}

SimTask
SimBTree::splitChild(TxThread& t, Addr parent, int idx, Addr child)
{
    Word childHeader = co_await t.ld(headerAddr(child));
    const bool leaf = isLeafOf(childHeader);
    Addr sibling = co_await allocNode(t, leaf);
    Word separator;

    if (leaf) {
        // Leaf split: left keeps 4, right takes 3; the separator is
        // the right sibling's first key (B+-tree style).
        constexpr int keep = 4;
        separator = co_await t.ld(keyAddr(child, keep));
        for (int i = keep; i < maxKeys; ++i) {
            Word k = co_await t.ld(keyAddr(child, i));
            Word v = co_await t.ld(slotAddr(child, i));
            co_await t.st(keyAddr(sibling, i - keep), k);
            co_await t.st(slotAddr(sibling, i - keep), v);
        }
        co_await t.st(headerAddr(sibling),
                      packHeader(maxKeys - keep, true));
        co_await t.st(headerAddr(child), packHeader(keep, true));
    } else {
        // Internal split: left keeps 3 keys, the middle key is
        // promoted, right takes 3 keys and 4 children.
        constexpr int keep = 3;
        separator = co_await t.ld(keyAddr(child, keep));
        for (int i = keep + 1; i < maxKeys; ++i) {
            Word k = co_await t.ld(keyAddr(child, i));
            co_await t.st(keyAddr(sibling, i - keep - 1), k);
        }
        for (int i = keep + 1; i <= maxKeys; ++i) {
            Word c = co_await t.ld(slotAddr(child, i));
            co_await t.st(slotAddr(sibling, i - keep - 1), c);
        }
        co_await t.st(headerAddr(sibling),
                      packHeader(maxKeys - keep - 1, false));
        co_await t.st(headerAddr(child), packHeader(keep, false));
    }

    // Make room in the (non-full) parent.
    Word parentHeader = co_await t.ld(headerAddr(parent));
    int pn = numKeysOf(parentHeader);
    for (int i = pn; i > idx; --i) {
        Word k = co_await t.ld(keyAddr(parent, i - 1));
        co_await t.st(keyAddr(parent, i), k);
    }
    for (int i = pn + 1; i > idx + 1; --i) {
        Word c = co_await t.ld(slotAddr(parent, i - 1));
        co_await t.st(slotAddr(parent, i), c);
    }
    co_await t.st(keyAddr(parent, idx), separator);
    co_await t.st(slotAddr(parent, idx + 1), sibling);
    co_await t.st(headerAddr(parent), packHeader(pn + 1, false));
}

SimTask
SimBTree::insert(TxThread& t, Word key, Word value)
{
    Addr root = co_await t.ld(rootPtrAddr);
    Word rootHeader = co_await t.ld(headerAddr(root));
    if (numKeysOf(rootHeader) == maxKeys) {
        Addr newRoot = co_await allocNode(t, false);
        co_await t.st(slotAddr(newRoot, 0), root);
        co_await splitChild(t, newRoot, 0, root);
        co_await t.st(rootPtrAddr, newRoot);
        root = newRoot;
    }

    Addr node = root;
    for (;;) {
        Word header = co_await t.ld(headerAddr(node));
        int n = numKeysOf(header);
        if (isLeafOf(header)) {
            // Overwrite or sorted insert.
            std::vector<Word> keys(static_cast<size_t>(n));
            for (int i = 0; i < n; ++i)
                keys[static_cast<size_t>(i)] =
                    co_await t.ld(keyAddr(node, i));
            int pos = 0;
            while (pos < n && keys[static_cast<size_t>(pos)] < key)
                ++pos;
            if (pos < n && keys[static_cast<size_t>(pos)] == key) {
                co_await t.st(slotAddr(node, pos), value);
                co_return;
            }
            for (int i = n; i > pos; --i) {
                co_await t.st(keyAddr(node, i),
                              keys[static_cast<size_t>(i - 1)]);
                Word v = co_await t.ld(slotAddr(node, i - 1));
                co_await t.st(slotAddr(node, i), v);
            }
            co_await t.st(keyAddr(node, pos), key);
            co_await t.st(slotAddr(node, pos), value);
            co_await t.st(headerAddr(node), packHeader(n + 1, true));
            co_return;
        }

        int idx = 0;
        while (idx < n) {
            Word k = co_await t.ld(keyAddr(node, idx));
            if (key < k)
                break;
            ++idx;
        }
        Addr child = co_await t.ld(slotAddr(node, idx));
        Word childHeader = co_await t.ld(headerAddr(child));
        if (numKeysOf(childHeader) == maxKeys) {
            co_await splitChild(t, node, idx, child);
            Word sep = co_await t.ld(keyAddr(node, idx));
            if (key >= sep) {
                ++idx;
                child = co_await t.ld(slotAddr(node, idx));
            }
        }
        node = child;
    }
}

WordTask
SimBTree::addDelta(TxThread& t, Word key, Word delta)
{
    Addr node = co_await t.ld(rootPtrAddr);
    for (;;) {
        Word header = co_await t.ld(headerAddr(node));
        int n = numKeysOf(header);
        if (isLeafOf(header)) {
            for (int i = 0; i < n; ++i) {
                Word k = co_await t.ld(keyAddr(node, i));
                if (k == key) {
                    Word v = co_await t.ld(slotAddr(node, i));
                    co_await t.st(slotAddr(node, i), v + delta);
                    co_return v + delta;
                }
                if (k > key)
                    co_return 0;
            }
            co_return 0;
        }
        int idx = 0;
        while (idx < n) {
            Word k = co_await t.ld(keyAddr(node, idx));
            if (key < k)
                break;
            ++idx;
        }
        node = co_await t.ld(slotAddr(node, idx));
    }
}

void
SimBTree::bulkLoad(BackingStore& mem,
                   const std::vector<std::pair<Word, Word>>& pairs)
{
    if (pairs.empty())
        return;
    if (size(mem) != 0)
        panic("bulkLoad into a non-empty tree");

    auto hostAlloc = [&](bool leaf) {
        Addr node = mem.read(poolNextAddr);
        if (node + nodeWords * wordBytes > poolEnd)
            fatal("SimBTree node pool exhausted during bulk load");
        mem.write(poolNextAddr, node + nodeWords * wordBytes);
        mem.write(headerAddr(node), packHeader(0, leaf));
        return node;
    };

    // Build the leaf level: 4 keys per leaf (the post-split fill).
    struct Sub
    {
        Addr node;
        Word minKey;
    };
    std::vector<Sub> level;
    constexpr int leafFill = 4;
    for (size_t off = 0; off < pairs.size(); off += leafFill) {
        Addr leaf = off == 0 ? mem.read(rootPtrAddr) : hostAlloc(true);
        int n = static_cast<int>(
            std::min<size_t>(leafFill, pairs.size() - off));
        for (int i = 0; i < n; ++i) {
            mem.write(keyAddr(leaf, i), pairs[off + i].first);
            mem.write(slotAddr(leaf, i), pairs[off + i].second);
        }
        mem.write(headerAddr(leaf), packHeader(n, true));
        level.push_back(Sub{leaf, pairs[off].first});
    }

    // Build internal levels bottom-up, 4 children per node.
    constexpr int fanFill = 4;
    while (level.size() > 1) {
        std::vector<Sub> next;
        for (size_t off = 0; off < level.size();) {
            size_t remaining = level.size() - off;
            // Never leave a trailing single-child internal node.
            int n = remaining <= fanFill
                        ? static_cast<int>(remaining)
                        : (remaining == fanFill + 1 ? fanFill - 1
                                                    : fanFill);
            Addr node = hostAlloc(false);
            for (int i = 0; i < n; ++i)
                mem.write(slotAddr(node, i), level[off + i].node);
            for (int i = 1; i < n; ++i)
                mem.write(keyAddr(node, i - 1), level[off + i].minKey);
            mem.write(headerAddr(node), packHeader(n - 1, false));
            next.push_back(Sub{node, level[off].minKey});
            off += static_cast<size_t>(n);
        }
        level = std::move(next);
    }
    mem.write(rootPtrAddr, level.front().node);
}

void
SimBTree::collect(const BackingStore& mem, Addr node,
                  std::vector<std::pair<Word, Word>>& out) const
{
    Word header = mem.read(headerAddr(node));
    int n = numKeysOf(header);
    if (isLeafOf(header)) {
        for (int i = 0; i < n; ++i)
            out.emplace_back(mem.read(keyAddr(node, i)),
                             mem.read(slotAddr(node, i)));
        return;
    }
    for (int i = 0; i <= n; ++i)
        collect(mem, mem.read(slotAddr(node, i)), out);
}

std::vector<std::pair<Word, Word>>
SimBTree::items(const BackingStore& mem) const
{
    std::vector<std::pair<Word, Word>> out;
    collect(mem, mem.read(rootPtrAddr), out);
    return out;
}

bool
SimBTree::validateNode(const BackingStore& mem, Addr node, Word lo,
                       Word hi, int depth, int& leaf_depth) const
{
    Word header = mem.read(headerAddr(node));
    int n = numKeysOf(header);
    if (n > maxKeys)
        return false;
    Word prev = lo;
    for (int i = 0; i < n; ++i) {
        Word k = mem.read(keyAddr(node, i));
        if (k < prev || k >= hi)
            return false;
        // Strictly ascending within the node (>= lo allows the first).
        if (i > 0 && k <= prev)
            return false;
        prev = k;
    }
    if (isLeafOf(header)) {
        if (leaf_depth < 0)
            leaf_depth = depth;
        return leaf_depth == depth;
    }
    Word curLo = lo;
    for (int i = 0; i <= n; ++i) {
        Word curHi = i < n ? mem.read(keyAddr(node, i)) : hi;
        if (!validateNode(mem, mem.read(slotAddr(node, i)), curLo, curHi,
                          depth + 1, leaf_depth)) {
            return false;
        }
        curLo = curHi;
    }
    return true;
}

bool
SimBTree::validateStructure(const BackingStore& mem) const
{
    int leafDepth = -1;
    return validateNode(mem, mem.read(rootPtrAddr), 0,
                        ~static_cast<Word>(0), 0, leafDepth);
}

size_t
SimBTree::size(const BackingStore& mem) const
{
    return items(mem).size();
}

Word
SimBTree::nodesAllocated(const BackingStore& mem) const
{
    return (mem.read(poolNextAddr) - poolBase) /
           (nodeWords * wordBytes);
}

} // namespace tmsim
