#include "workloads/kernel_iobench.hh"

namespace tmsim {

void
IoBenchKernel::init(Machine& m, int n_threads)
{
    log = std::make_unique<TxLogDevice>(TxLogDevice::create(
        m.memory(),
        static_cast<size_t>(n_threads * p.msgsPerThread * p.msgWords) +
            64));
    io = std::make_unique<TxIo>(*log);
    privBase.clear();
    for (int t = 0; t < n_threads; ++t)
        privBase.push_back(m.memory().allocate(16 * wordBytes, 64));
}

SimTask
IoBenchKernel::thread(TxThread& t, int tid, int /* n_threads */)
{
    const Addr priv = privBase[static_cast<size_t>(tid)];
    for (int i = 0; i < p.msgsPerThread; ++i) {
        std::vector<Word> record;
        record.reserve(static_cast<size_t>(p.msgWords));
        record.push_back(static_cast<Word>(tid + 1) * 1000000 +
                         static_cast<Word>(i));
        for (int w = 1; w < p.msgWords; ++w)
            record.push_back(static_cast<Word>(w));

        auto body = [&](TxThread& tx) -> SimTask {
            co_await tx.work(static_cast<std::uint64_t>(p.computeCycles));
            Word v = co_await tx.ld(priv);
            co_await tx.st(priv, v + 1);
            if (p.transactional)
                co_await io->txWrite(tx, record);
            else
                co_await io->directWrite(tx, record);
        };
        if (p.transactional)
            co_await t.atomic(body);
        else
            co_await t.serializedAtomic(body);
    }
}

bool
IoBenchKernel::verify(Machine& m, int n_threads)
{
    auto words = log->contents(m.memory());
    const size_t total = static_cast<size_t>(n_threads) *
                         static_cast<size_t>(p.msgsPerThread) *
                         static_cast<size_t>(p.msgWords);
    if (words.size() != total)
        return false;

    // Records must be contiguous (atomic appends) and complete: count
    // per-thread messages via the tag word.
    std::vector<int> counts(static_cast<size_t>(n_threads) + 1, 0);
    for (size_t off = 0; off < words.size();
         off += static_cast<size_t>(p.msgWords)) {
        Word tag = words[off] / 1000000;
        if (tag < 1 || tag > static_cast<Word>(n_threads))
            return false;
        for (int w = 1; w < p.msgWords; ++w) {
            if (words[off + static_cast<size_t>(w)] !=
                static_cast<Word>(w)) {
                return false;
            }
        }
        ++counts[static_cast<size_t>(tag)];
    }
    for (int t = 1; t <= n_threads; ++t) {
        if (counts[static_cast<size_t>(t)] != p.msgsPerThread)
            return false;
    }
    // Per-thread private counters must match the committed messages.
    for (int t = 0; t < n_threads; ++t) {
        if (m.memory().read(privBase[static_cast<size_t>(t)]) !=
            static_cast<Word>(p.msgsPerThread)) {
            return false;
        }
    }
    return true;
}

} // namespace tmsim
