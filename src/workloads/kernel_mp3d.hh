/**
 * @file
 * Substitute for SPLASH mp3d: rarefied-fluid particle dynamics.
 *
 * Each outer transaction moves a batch of the thread's own particles
 * (private position/velocity state, deterministic pseudo-physics),
 * updates shared space-cell occupancy counters on collisions through
 * closed-nested transactions, and finally accumulates into a single
 * global momentum reduction line — the paper's motivating case: the
 * conflict-prone updates sit at the END of a long outer transaction,
 * so flattening pays the whole outer rollback for every collision
 * conflict while nesting retries only the tiny inner transaction
 * ("the improvements are dramatic for mp3d (4.93x)").
 */

#ifndef TMSIM_WORKLOADS_KERNEL_MP3D_HH
#define TMSIM_WORKLOADS_KERNEL_MP3D_HH

#include "workloads/harness.hh"

namespace tmsim {

struct Mp3dParams
{
    int particles = 384;
    int steps = 2;
    /** Particles per outer transaction. */
    int batch = 16;
    /** Shared space cells (one line each). */
    int cells = 64;
    /** ALU cycles of physics per particle. */
    int moveCycles = 60;
    /** ALU cycles per collision update. */
    int collideCycles = 15;
    /** A particle collides when (pos >> 8) %% collideMod == 0. */
    int collideMod = 8;
    /** ALU cycles inside the momentum reduction transaction
     *  (collision-pair momentum exchange). */
    int momentumCycles = 120;
    /** Run the reduction updates as OPEN-nested transactions with
     *  violation/abort compensation instead of closed-nested ones
     *  (the paper's system-code recipe applied to commutative
     *  reductions; ablation A4). */
    bool openReductions = false;
};

class Mp3dKernel : public Kernel
{
  public:
    explicit Mp3dKernel(Mp3dParams params = Mp3dParams{}) : p(params) {}

    std::string name() const override { return "mp3d"; }
    void init(Machine& m, int n_threads) override;
    SimTask thread(TxThread& t, int tid, int n_threads) override;
    bool verify(Machine& m, int n_threads) override;

    /** Deterministic pseudo-physics shared with the host reference. */
    static Word advance(Word pos);
    bool collides(Word pos) const
    {
        return (pos >> 8) % static_cast<Word>(p.collideMod) == 0;
    }
    static Word momentumOf(Word pos) { return (pos >> 16) & 0xFF; }

  private:
    Mp3dParams p;
    Addr posBase = 0;      // particle positions (one word each)
    Addr cellBase = 0;     // cell occupancy counters (one line each)
    Addr momentumAddr = 0; // the global reduction word
};

} // namespace tmsim

#endif // TMSIM_WORKLOADS_KERNEL_MP3D_HH
