#include "workloads/kernels_scientific.hh"

#include "sim/rng.hh"

namespace tmsim {

int
SciKernel::itersFor(int tid, int n_threads) const
{
    int base = p.outerIters / n_threads;
    int extra = p.outerIters % n_threads;
    return base + (tid < extra ? 1 : 0);
}

void
SciKernel::init(Machine& m, int n_threads)
{
    BackingStore& mem = m.memory();
    // One cell per cache line so the conflict domain is exactly
    // p.sharedCells lines.
    cellsBase = mem.allocate(static_cast<Addr>(p.sharedCells) * 64, 64);
    if (p.reductionCells > 0) {
        reductionBase =
            mem.allocate(static_cast<Addr>(p.reductionCells) * 64, 64);
    }
    sharedReadBase =
        mem.allocate(static_cast<Addr>(std::max(p.sharedReads, 1)) * 64,
                     64);
    privateBase.clear();
    for (int t = 0; t < n_threads; ++t) {
        privateBase.push_back(mem.allocate(
            static_cast<Addr>(std::max(p.privateWords, 1)) * wordBytes,
            64));
    }
    for (int i = 0; i < p.sharedReads; ++i)
        mem.write(sharedReadBase + static_cast<Addr>(i) * 64,
                  static_cast<Word>(i + 1));
}

SimTask
SciKernel::thread(TxThread& t, int tid, int n_threads)
{
    const int iters = itersFor(tid, n_threads);
    Rng rng(p.seed * 7919 + static_cast<std::uint64_t>(tid));
    const Addr priv = privateBase[static_cast<size_t>(tid)];

    for (int it = 0; it < iters; ++it) {
        co_await t.atomic([&](TxThread& tx) -> SimTask {
            co_await tx.work(static_cast<std::uint64_t>(p.frontCycles));

            // Private streaming phase: loads and stores over the
            // thread's own data (cache traffic, no conflicts).
            for (int w = 0; w < p.privateWords; ++w) {
                Addr a = priv + static_cast<Addr>(w) * wordBytes;
                Word v = co_await tx.ld(a);
                co_await tx.st(a, v + 1);
            }

            // Read-mostly shared state (e.g. global parameters).
            for (int r = 0; r < p.sharedReads; ++r) {
                co_await tx.ld(sharedReadBase +
                               static_cast<Addr>(r) * 64);
            }

            auto inners = [&](TxThread& txo) -> SimTask {
                for (int k = 0; k < p.innerCount; ++k) {
                    co_await txo.atomic([&](TxThread& ti) -> SimTask {
                        Addr cell =
                            cellsBase +
                            static_cast<Addr>(rng.below(
                                static_cast<std::uint64_t>(
                                    p.sharedCells))) *
                                64;
                        Word v = co_await ti.ld(cell);
                        co_await ti.work(
                            static_cast<std::uint64_t>(p.innerCycles));
                        co_await ti.st(cell, v + 1);
                    });
                }
            };

            if (!p.innersAtEnd) {
                co_await inners(tx);
                co_await tx.work(
                    static_cast<std::uint64_t>(p.backCycles));
            } else {
                co_await tx.work(
                    static_cast<std::uint64_t>(p.backCycles));
                co_await inners(tx);
            }

            // Reduction update at the very end of the outer
            // transaction: the flattening worst case (a conflict here
            // replays the entire outer transaction).
            if (p.reductionCells > 0) {
                Addr cell = reductionBase +
                            static_cast<Addr>(rng.below(
                                static_cast<std::uint64_t>(
                                    p.reductionCells))) *
                                64;
                co_await tx.atomic([&](TxThread& ti) -> SimTask {
                    Word v = co_await ti.ld(cell);
                    co_await ti.work(static_cast<std::uint64_t>(
                        p.reductionCycles));
                    co_await ti.st(cell, v + 1);
                });
            }
        });
    }
}

bool
SciKernel::verify(Machine& m, int /* n_threads */)
{
    // Every committed outer transaction contributes exactly
    // p.innerCount cell increments, regardless of retries (closed
    // nesting never publishes without the outermost commit).
    Word total = 0;
    for (int i = 0; i < p.sharedCells; ++i)
        total += m.memory().read(cellsBase + static_cast<Addr>(i) * 64);
    if (total != static_cast<Word>(p.outerIters) *
                     static_cast<Word>(p.innerCount)) {
        return false;
    }
    Word reductions = 0;
    for (int i = 0; i < p.reductionCells; ++i)
        reductions +=
            m.memory().read(reductionBase + static_cast<Addr>(i) * 64);
    return reductions ==
           (p.reductionCells > 0 ? static_cast<Word>(p.outerIters) : 0);
}

SciParams
sciBarnes()
{
    SciParams p;
    p.name = "barnes";
    p.outerIters = 96;
    p.frontCycles = 900;
    p.backCycles = 150;
    p.privateWords = 24;
    p.sharedReads = 4;
    p.innerCount = 4;
    p.innerCycles = 25;
    p.sharedCells = 64;
    p.innersAtEnd = true;
    p.reductionCells = 2;
    p.reductionCycles = 110;
    p.seed = 11;
    return p;
}

SciParams
sciFmm()
{
    SciParams p;
    p.name = "fmm";
    p.outerIters = 96;
    p.frontCycles = 1100;
    p.backCycles = 150;
    p.privateWords = 28;
    p.sharedReads = 6;
    p.innerCount = 3;
    p.innerCycles = 30;
    p.sharedCells = 96;
    p.innersAtEnd = true;
    p.reductionCells = 2;
    p.reductionCycles = 20;
    p.seed = 13;
    return p;
}

SciParams
sciMoldyn()
{
    SciParams p;
    p.name = "moldyn";
    p.outerIters = 96;
    p.frontCycles = 1000;
    p.backCycles = 100;
    p.privateWords = 20;
    p.sharedReads = 2;
    p.innerCount = 3;
    p.innerCycles = 20;
    p.sharedCells = 32;
    p.innersAtEnd = true;
    p.reductionCells = 1;
    p.reductionCycles = 140;
    p.seed = 17;
    return p;
}

SciParams
sciSwim()
{
    SciParams p;
    p.name = "swim";
    p.outerIters = 80;
    p.frontCycles = 2200;
    p.backCycles = 200;
    p.privateWords = 40;
    p.sharedReads = 2;
    p.innerCount = 1;
    p.innerCycles = 15;
    p.sharedCells = 16;
    p.innersAtEnd = true;
    p.reductionCells = 2;
    p.reductionCycles = 6;
    p.seed = 19;
    return p;
}

SciParams
sciTomcatv()
{
    SciParams p;
    p.name = "tomcatv";
    p.outerIters = 80;
    p.frontCycles = 1800;
    p.backCycles = 200;
    p.privateWords = 36;
    p.sharedReads = 2;
    p.innerCount = 2;
    p.innerCycles = 15;
    p.sharedCells = 16;
    p.innersAtEnd = true;
    p.reductionCells = 2;
    p.reductionCycles = 45;
    p.seed = 23;
    return p;
}

SciParams
sciWater()
{
    SciParams p;
    p.name = "water";
    p.outerIters = 96;
    p.frontCycles = 800;
    p.backCycles = 120;
    p.privateWords = 22;
    p.sharedReads = 3;
    p.innerCount = 4;
    p.innerCycles = 22;
    p.sharedCells = 40;
    p.innersAtEnd = true;
    p.reductionCells = 2;
    p.reductionCycles = 70;
    p.seed = 29;
    return p;
}

} // namespace tmsim
