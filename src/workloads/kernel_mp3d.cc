#include "workloads/kernel_mp3d.hh"

namespace tmsim {

Word
Mp3dKernel::advance(Word pos)
{
    return pos * 6364136223846793005ull + 1442695040888963407ull;
}

void
Mp3dKernel::init(Machine& m, int /* n_threads */)
{
    BackingStore& mem = m.memory();
    posBase = mem.allocate(static_cast<Addr>(p.particles) * wordBytes, 64);
    cellBase = mem.allocate(static_cast<Addr>(p.cells) * 64, 64);
    momentumAddr = mem.allocate(64, 64);
    for (int i = 0; i < p.particles; ++i) {
        mem.write(posBase + static_cast<Addr>(i) * wordBytes,
                  static_cast<Word>(i) * 2654435761ull + 12345);
    }
}

SimTask
Mp3dKernel::thread(TxThread& t, int tid, int n_threads)
{
    // Static partition of the particle array.
    const int lo = p.particles * tid / n_threads;
    const int hi = p.particles * (tid + 1) / n_threads;

    for (int step = 0; step < p.steps; ++step) {
        for (int base = lo; base < hi; base += p.batch) {
            const int end = std::min(base + p.batch, hi);
            co_await t.atomic([&](TxThread& tx) -> SimTask {
                Word localMomentum = 0;
                std::vector<Addr> collisions;

                // Move phase: long, conflict-free particle physics on
                // the thread's own partition. Collisions are gathered
                // and applied at the end -- the paper's motivating
                // structure: the conflict-prone shared updates sit at
                // the END of the long outer transaction, so a conflict
                // under flattening re-executes everything.
                for (int i = base; i < end; ++i) {
                    Addr pa = posBase + static_cast<Addr>(i) * wordBytes;
                    Word pos = co_await tx.ld(pa);
                    co_await tx.work(
                        static_cast<std::uint64_t>(p.moveCycles));
                    Word npos = advance(pos);
                    co_await tx.st(pa, npos);
                    localMomentum += momentumOf(npos);
                    if (collides(npos)) {
                        collisions.push_back(
                            cellBase +
                            static_cast<Addr>(
                                npos % static_cast<Word>(p.cells)) *
                                64);
                    }
                }

                // Shared-counter update: closed-nested by default;
                // optionally open-nested with compensation (the
                // commutative-reduction recipe: the update commits
                // immediately and a handler subtracts it again if the
                // enclosing transaction rolls back).
                auto reduce = [&](TxThread& txo, Addr addr, Word delta,
                                  std::uint64_t cycles) -> SimTask {
                    if (!p.openReductions) {
                        co_await txo.atomic(
                            [&](TxThread& ti) -> SimTask {
                                Word c = co_await ti.ld(addr);
                                co_await ti.work(cycles);
                                co_await ti.st(addr, c + delta);
                            });
                        co_return;
                    }
                    co_await txo.atomicOpen(
                        [&](TxThread& ti) -> SimTask {
                            Word c = co_await ti.ld(addr);
                            co_await ti.work(cycles);
                            co_await ti.st(addr, c + delta);
                        });
                    auto compensate = [addr,
                                       delta](TxThread& th) -> SimTask {
                        co_await th.atomicOpen(
                            [&](TxThread& ti) -> SimTask {
                                Word c = co_await ti.ld(addr);
                                co_await ti.st(addr, c - delta);
                            });
                    };
                    co_await txo.onViolation(
                        [compensate](TxThread& th, const ViolationInfo&,
                                     const std::vector<Word>&)
                            -> Task<VioAction> {
                            co_await compensate(th);
                            co_return VioAction::Proceed;
                        });
                    co_await txo.onAbort(
                        [compensate](TxThread& th,
                                     const std::vector<Word>&) -> SimTask {
                            co_await compensate(th);
                        });
                };

                // Collision phase: updates of shared cell occupancy
                // counters.
                for (Addr cell : collisions) {
                    co_await reduce(
                        tx, cell, 1,
                        static_cast<std::uint64_t>(p.collideCycles));
                }

                // Global momentum reduction at the very end of the
                // outer transaction: the flattening worst case.
                co_await reduce(
                    tx, momentumAddr, localMomentum,
                    static_cast<std::uint64_t>(p.momentumCycles));
            });
        }
    }
}

bool
Mp3dKernel::verify(Machine& m, int /* n_threads */)
{
    // Host-side reference: the physics is deterministic per particle.
    std::vector<Word> cellRef(static_cast<size_t>(p.cells), 0);
    Word momentumRef = 0;
    for (int i = 0; i < p.particles; ++i) {
        Word pos = static_cast<Word>(i) * 2654435761ull + 12345;
        for (int s = 0; s < p.steps; ++s) {
            pos = advance(pos);
            momentumRef += momentumOf(pos);
            if (collides(pos))
                ++cellRef[static_cast<size_t>(
                    pos % static_cast<Word>(p.cells))];
        }
    }
    for (int c = 0; c < p.cells; ++c) {
        if (m.memory().read(cellBase + static_cast<Addr>(c) * 64) !=
            cellRef[static_cast<size_t>(c)]) {
            return false;
        }
    }
    for (int i = 0; i < p.particles; ++i) {
        Word expect = static_cast<Word>(i) * 2654435761ull + 12345;
        for (int s = 0; s < p.steps; ++s)
            expect = advance(expect);
        if (m.memory().read(posBase + static_cast<Addr>(i) * wordBytes) !=
            expect) {
            return false;
        }
    }
    return m.memory().read(momentumAddr) == momentumRef;
}

} // namespace tmsim
