#include "workloads/kernel_specjbb.hh"

#include <algorithm>
#include <map>
#include <set>

namespace tmsim {

namespace {

// Independent deterministic draw streams off the global op index.
constexpr std::uint64_t saltWarehouse = 0x77;
constexpr std::uint64_t saltCustomer = 0xC5;
constexpr std::uint64_t saltItem = 0x17;
constexpr std::uint64_t saltRemote = 0x4E;
constexpr std::uint64_t saltDest = 0xD5;

std::uint64_t
streamHash(std::uint64_t index, std::uint64_t salt)
{
    return hashMix64(index ^ (salt * 0x9e3779b97f4a7c15ull));
}

} // namespace

std::string
SpecJbbKernel::name() const
{
    switch (variant) {
      case JbbVariant::Flat:
        return "specjbb-flat";
      case JbbVariant::ClosedNested:
        return "specjbb-closed";
      case JbbVariant::OpenNested:
        return "specjbb-open";
      case JbbVariant::Hybrid:
        return "specjbb-hybrid";
    }
    return "specjbb";
}

SpecJbbKernel::Op
SpecJbbKernel::opFor(int g)
{
    int slot = g % 10;
    if (slot < 5)
        return Op::NewOrder;
    if (slot < 8)
        return Op::Payment;
    return Op::OrderStatus;
}

int
SpecJbbKernel::whFor(int g) const
{
    if (p.warehouses == 1)
        return 0;
    return static_cast<int>(
        whZipf.drawAt(static_cast<std::uint64_t>(g), saltWarehouse));
}

Word
SpecJbbKernel::custFor(int g) const
{
    if (legacyArrivals()) {
        return 1 + (static_cast<Word>(g) * 31 + 7) %
                       static_cast<Word>(custsPerWh());
    }
    return 1 + custZipf.drawAt(static_cast<std::uint64_t>(g),
                               saltCustomer);
}

Word
SpecJbbKernel::itemFor(int g, int k) const
{
    if (legacyArrivals()) {
        return 1 + (static_cast<Word>(g) * 13 +
                    static_cast<Word>(k) * 5) %
                       static_cast<Word>(stockPerWh());
    }
    return 1 + itemZipf.drawAt(static_cast<std::uint64_t>(g) * 131071ull +
                                   static_cast<std::uint64_t>(k),
                               saltItem);
}

Word
SpecJbbKernel::amountFor(int g)
{
    return 10 + static_cast<Word>(g) * 3 % 90;
}

bool
SpecJbbKernel::remoteFor(int g) const
{
    if (p.warehouses <= 1 || p.remotePct <= 0)
        return false;
    return streamHash(static_cast<std::uint64_t>(g), saltRemote) % 100 <
           static_cast<std::uint64_t>(p.remotePct);
}

int
SpecJbbKernel::destFor(int g, int home) const
{
    const int hop = 1 + static_cast<int>(
        streamHash(static_cast<std::uint64_t>(g), saltDest) %
        static_cast<std::uint64_t>(p.warehouses - 1));
    return (home + hop) % p.warehouses;
}

Word
SpecJbbKernel::localOrderKey(Word oid, int home) const
{
    const Word uid =
        oid * static_cast<Word>(p.warehouses) + static_cast<Word>(home);
    if (uid >= (1ull << 31))
        panic("order uid overflow (oid %llu, warehouse %d)",
              static_cast<unsigned long long>(oid), home);
    return (uid % 4) * (1ull << 32) + uid;
}

Word
SpecJbbKernel::remoteOrderKey(int g) const
{
    const Word uid = (1ull << 31) | static_cast<Word>(g);
    return (static_cast<Word>(g) % 4) * (1ull << 32) + uid;
}

void
SpecJbbKernel::poolSizes(std::size_t& cust, std::size_t& order,
                         std::size_t& stock) const
{
    // Bulk load packs 4 items per leaf and 4 children per internal
    // node; runtime inserts into the order tree consume at most one
    // node per insert (splits amortise well below that).
    auto bulkPool = [](std::size_t items) {
        std::size_t level = (items + 3) / 4;
        std::size_t total = level;
        while (level > 1) {
            level = (level + 3) / 4;
            total += level;
        }
        return total + 32;
    };
    // max() with the legacy fixed sizes: default params must reproduce
    // the original memory layout exactly (golden fingerprints).
    cust = std::max<std::size_t>(
        512, bulkPool(static_cast<std::size_t>(custsPerWh())));
    stock = std::max<std::size_t>(
        512, bulkPool(static_cast<std::size_t>(stockPerWh())));
    // Worst case: skew lands every new order in one shard's tree.
    order = std::max<std::size_t>(
        1024, static_cast<std::size_t>(p.totalOps) + 64);
}

Addr
SpecJbbKernel::memBytesHint() const
{
    std::size_t cust = 0, order = 0, stock = 0;
    poolSizes(cust, order, stock);
    const Addr nodeBytes = 16 * wordBytes; // SimBTree node layout
    const Addr perShard =
        static_cast<Addr>(cust + order + stock) * nodeBytes +
        3 * 64 /* tree ctl lines */ + 64 /* order id */ +
        static_cast<Addr>(districts) * 64;
    // Generous: reserving address space is free under the sparse
    // store; 64 MiB base covers the runtime's per-thread regions.
    return 64ull * 1024 * 1024 +
           static_cast<Addr>(p.warehouses) * perShard * 2;
}

void
SpecJbbKernel::init(Machine& m, int /* n_threads */)
{
    BackingStore& mem = m.memory();
    statNewOrder = &m.stats().counter("jbb.ops_neworder");
    statPayment = &m.stats().counter("jbb.ops_payment");
    statOrderStatus = &m.stats().counter("jbb.ops_orderstatus");
    statRemote = &m.stats().counter("jbb.remote_handoffs");

    if (!legacyArrivals()) {
        whZipf = ZipfGen(static_cast<std::uint64_t>(p.warehouses),
                         p.zipfS);
        custZipf = ZipfGen(static_cast<std::uint64_t>(custsPerWh()),
                           p.zipfS);
        itemZipf = ZipfGen(static_cast<std::uint64_t>(stockPerWh()),
                           p.zipfS);
    }

    std::size_t custPool = 0, orderPool = 0, stockPool = 0;
    poolSizes(custPool, orderPool, stockPool);

    std::vector<std::pair<Word, Word>> custs;
    custs.reserve(static_cast<std::size_t>(custsPerWh()));
    for (int c = 0; c < custsPerWh(); ++c)
        custs.emplace_back(static_cast<Word>(c + 1), 1000);
    std::vector<std::pair<Word, Word>> stock;
    stock.reserve(static_cast<std::size_t>(stockPerWh()));
    for (int i = 0; i < stockPerWh(); ++i)
        stock.emplace_back(static_cast<Word>(i + 1), 100);

    shards.clear();
    shards.resize(static_cast<std::size_t>(p.warehouses));
    for (auto& s : shards) {
        s.customerTree = SimBTree::create(mem, custPool);
        s.orderTree = SimBTree::create(mem, orderPool);
        s.stockTree = SimBTree::create(mem, stockPool);
        s.orderIdAddr = mem.allocate(64, 64);
        s.ytdBase = mem.allocate(districts * 64, 64);
        mem.write(s.orderIdAddr, 1);
        s.customerTree.bulkLoad(mem, custs);
        s.stockTree.bulkLoad(mem, stock);
    }
}

SimTask
SpecJbbKernel::treeGuard(TxThread& t, TxBody body)
{
    if (variant == JbbVariant::ClosedNested ||
        variant == JbbVariant::Hybrid) {
        co_await t.atomic(std::move(body));
    } else {
        co_await body(t);
    }
}

SimTask
SpecJbbKernel::newOrder(TxThread& t, int g)
{
    const int home = whFor(g);
    Shard& hs = shards[static_cast<std::size_t>(home)];
    const Word cust = custFor(g);
    const bool remote = remoteFor(g);
    Shard& ds =
        remote ? shards[static_cast<std::size_t>(destFor(g, home))] : hs;
    co_await t.atomic([&](TxThread& tx) -> SimTask {
        // Business logic: order assembly, pricing.
        co_await tx.work(static_cast<std::uint64_t>(p.thinkCycles));

        // Customer credit check (read-only, low contention).
        co_await treeGuard(tx, [&](TxThread& ti) -> SimTask {
            co_await hs.customerTree.lookup(ti, cust);
        });

        // Stock reservations (always against the home warehouse).
        for (int k = 0; k < p.stockPerOrder; ++k) {
            const Word item = itemFor(g, k);
            co_await treeGuard(tx, [&](TxThread& ti) -> SimTask {
                co_await hs.stockTree.addDelta(
                    ti, item, static_cast<Word>(-1));
            });
        }

        // Unique order id from the HOME warehouse's counter, insertion
        // into the DESTINATION warehouse's order tree, at the end of
        // the operation.
        //
        //  - Open variant: the id comes from an open-nested increment
        //    that commits immediately ("no compensation code is
        //    needed ... as the order IDs must be unique, but not
        //    necessarily sequential"). A cross-shard handoff bundles
        //    the id draw AND the remote insert into one open-nested
        //    transaction, keyed by the op index so an ancestor abort
        //    replays it idempotently (overwrite, not duplicate).
        //  - Closed variant: id generation and insert form one
        //    closed-nested transaction, so a conflict on the counter
        //    or the order leaf replays only this small piece.
        //  - Flat: both run directly in the outer transaction; every
        //    parallel new-order conflicts on the counter (the paper's
        //    motivation for open nesting).
        if (remote) {
            if (statRemote)
                ++*statRemote;
            const Word key = remoteOrderKey(g);
            const Word w = static_cast<Word>(p.warehouses);
            const Word h = static_cast<Word>(home);
            if (variant == JbbVariant::OpenNested ||
                variant == JbbVariant::Hybrid) {
                co_await tx.atomicOpen([&](TxThread& ti) -> SimTask {
                    Word oid = co_await ti.ld(hs.orderIdAddr);
                    co_await ti.st(hs.orderIdAddr, oid + 1);
                    co_await ds.orderTree.insert(ti, key, oid * w + h);
                });
                co_await tx.work(
                    static_cast<std::uint64_t>(p.thinkCycles));
            } else if (variant == JbbVariant::ClosedNested) {
                co_await tx.work(
                    static_cast<std::uint64_t>(p.thinkCycles));
                co_await tx.atomic([&](TxThread& ti) -> SimTask {
                    Word oid = co_await ti.ld(hs.orderIdAddr);
                    co_await ti.st(hs.orderIdAddr, oid + 1);
                    co_await ds.orderTree.insert(ti, key, oid * w + h);
                });
            } else {
                Word oid = co_await tx.ld(hs.orderIdAddr);
                co_await tx.st(hs.orderIdAddr, oid + 1);
                co_await tx.work(
                    static_cast<std::uint64_t>(p.thinkCycles));
                co_await ds.orderTree.insert(tx, key, oid * w + h);
            }
        } else if (variant == JbbVariant::OpenNested) {
            Word oid = 0;
            co_await tx.atomicOpen([&](TxThread& ti) -> SimTask {
                oid = co_await ti.ld(hs.orderIdAddr);
                co_await ti.st(hs.orderIdAddr, oid + 1);
            });
            co_await tx.work(static_cast<std::uint64_t>(p.thinkCycles));
            co_await hs.orderTree.insert(tx, localOrderKey(oid, home),
                                         (cust << 16) | (oid & 0xFFFF));
        } else if (variant == JbbVariant::Hybrid) {
            // Open-nested id generation AND closed-nested insert.
            Word oid = 0;
            co_await tx.atomicOpen([&](TxThread& ti) -> SimTask {
                oid = co_await ti.ld(hs.orderIdAddr);
                co_await ti.st(hs.orderIdAddr, oid + 1);
            });
            co_await tx.work(static_cast<std::uint64_t>(p.thinkCycles));
            co_await tx.atomic([&](TxThread& ti) -> SimTask {
                co_await hs.orderTree.insert(
                    ti, localOrderKey(oid, home),
                    (cust << 16) | (oid & 0xFFFF));
            });
        } else if (variant == JbbVariant::ClosedNested) {
            co_await tx.work(static_cast<std::uint64_t>(p.thinkCycles));
            co_await tx.atomic([&](TxThread& ti) -> SimTask {
                Word oid = co_await ti.ld(hs.orderIdAddr);
                co_await ti.st(hs.orderIdAddr, oid + 1);
                co_await hs.orderTree.insert(
                    ti, localOrderKey(oid, home),
                    (cust << 16) | (oid & 0xFFFF));
            });
        } else {
            Word oid = co_await tx.ld(hs.orderIdAddr);
            co_await tx.st(hs.orderIdAddr, oid + 1);
            co_await tx.work(static_cast<std::uint64_t>(p.thinkCycles));
            co_await hs.orderTree.insert(tx, localOrderKey(oid, home),
                                         (cust << 16) | (oid & 0xFFFF));
        }
    });
}

SimTask
SpecJbbKernel::payment(TxThread& t, int g)
{
    Shard& hs = shards[static_cast<std::size_t>(whFor(g))];
    const Word cust = custFor(g);
    const Word amount = amountFor(g);
    co_await t.atomic([&](TxThread& tx) -> SimTask {
        co_await tx.work(static_cast<std::uint64_t>(p.thinkCycles));
        co_await treeGuard(tx, [&](TxThread& ti) -> SimTask {
            co_await hs.customerTree.addDelta(ti, cust, amount);
        });
        co_await tx.work(static_cast<std::uint64_t>(p.thinkCycles) / 2);
        // District year-to-date accumulation (hot shared word, last).
        Addr ytd = hs.ytdBase + (cust % districts) * 64;
        co_await treeGuard(tx, [&](TxThread& ti) -> SimTask {
            Word v = co_await ti.ld(ytd);
            co_await ti.st(ytd, v + amount);
        });
    });
}

SimTask
SpecJbbKernel::orderStatus(TxThread& t, int g)
{
    Shard& hs = shards[static_cast<std::size_t>(whFor(g))];
    const Word cust = custFor(g);
    co_await t.atomic([&](TxThread& tx) -> SimTask {
        co_await tx.work(static_cast<std::uint64_t>(p.thinkCycles) / 2);
        co_await treeGuard(tx, [&](TxThread& ti) -> SimTask {
            co_await hs.customerTree.lookup(ti, cust);
        });
        co_await tx.work(static_cast<std::uint64_t>(p.thinkCycles) / 2);
        co_await treeGuard(tx, [&](TxThread& ti) -> SimTask {
            Word probe = co_await ti.ld(hs.orderIdAddr);
            // Probe a recently issued order id (read-only path).
            co_await hs.orderTree.lookup(ti, probe > 1 ? probe - 1 : 1);
        });
    });
}

SimTask
SpecJbbKernel::thread(TxThread& t, int tid, int n_threads)
{
    // Per-op-class tail latency: every transaction of an operation is
    // tagged with that operation's class, so the stats dump reports
    // htm.tx_duration_committed.<class>::p99 per business op. The
    // cross-shard class only exists in sharded configurations, keeping
    // the single-warehouse stats schema unchanged.
    const int clsNewOrder = t.registerOpClass("neworder");
    const int clsPayment = t.registerOpClass("payment");
    const int clsOrderStatus = t.registerOpClass("orderstatus");
    const int clsRemote = p.warehouses > 1
        ? t.registerOpClass("neworder-remote") : clsNewOrder;
    for (int g = tid; g < p.totalOps; g += n_threads) {
        switch (opFor(g)) {
          case Op::NewOrder:
            ++*statNewOrder;
            t.setOpClass(remoteFor(g) ? clsRemote : clsNewOrder);
            co_await newOrder(t, g);
            break;
          case Op::Payment:
            ++*statPayment;
            t.setOpClass(clsPayment);
            co_await payment(t, g);
            break;
          case Op::OrderStatus:
            ++*statOrderStatus;
            t.setOpClass(clsOrderStatus);
            co_await orderStatus(t, g);
            break;
        }
    }
    t.setOpClass(-1);
}

bool
SpecJbbKernel::verify(Machine& m, int n_threads)
{
    const BackingStore& mem = m.memory();
    const int W = p.warehouses;
    for (const auto& s : shards) {
        if (!s.customerTree.validateStructure(mem) ||
            !s.orderTree.validateStructure(mem) ||
            !s.stockTree.validateStructure(mem)) {
            return false;
        }
    }

    // Replay the deterministic operation mix on the host.
    (void)n_threads;
    const auto nc = static_cast<std::size_t>(custsPerWh());
    const auto ns = static_cast<std::size_t>(stockPerWh());
    std::vector<std::vector<Word>> stockRef(
        static_cast<std::size_t>(W), std::vector<Word>(ns, 100));
    std::vector<std::vector<Word>> balanceRef(
        static_cast<std::size_t>(W), std::vector<Word>(nc, 1000));
    std::vector<Word> ytdRef(static_cast<std::size_t>(W), 0);
    std::vector<int> localOrders(static_cast<std::size_t>(W), 0);
    std::vector<std::set<Word>> remoteKeys(static_cast<std::size_t>(W));
    std::map<Word, int> remoteHome;
    for (int g = 0; g < p.totalOps; ++g) {
        const auto w = static_cast<std::size_t>(whFor(g));
        switch (opFor(g)) {
          case Op::NewOrder:
            for (int k = 0; k < p.stockPerOrder; ++k)
                --stockRef[w][static_cast<std::size_t>(itemFor(g, k) - 1)];
            if (remoteFor(g)) {
                const auto d = static_cast<std::size_t>(
                    destFor(g, static_cast<int>(w)));
                remoteKeys[d].insert(remoteOrderKey(g));
                remoteHome[remoteOrderKey(g)] = static_cast<int>(w);
            } else {
                ++localOrders[w];
            }
            break;
          case Op::Payment:
            ytdRef[w] += amountFor(g);
            balanceRef[w][static_cast<std::size_t>(custFor(g) - 1)] +=
                amountFor(g);
            break;
          case Op::OrderStatus:
            break;
        }
    }

    // Draw uids (oid * W + home) seen across every order tree: each
    // committed counter draw may surface at most once, chip-wide.
    std::set<Word> uids;
    for (int w = 0; w < W; ++w) {
        const Shard& s = shards[static_cast<std::size_t>(w)];

        // Orders: exactly one local entry per committed home new-order
        // plus exactly the expected cross-shard handoffs, ids unique.
        auto orders = s.orderTree.items(mem);
        int localSeen = 0;
        std::size_t remoteSeen = 0;
        for (const auto& [k, v] : orders) {
            const Word uid = k & 0xFFFFFFFFull;
            if ((k >> 32) != uid % 4)
                return false;
            if (uid & (1ull << 31)) {
                ++remoteSeen;
                if (!remoteKeys[static_cast<std::size_t>(w)].count(k))
                    return false;
                // Value encodes the draw: oid * W + home warehouse.
                if (static_cast<int>(v % static_cast<Word>(W)) !=
                    remoteHome[k])
                    return false;
                if (!uids.insert(v).second)
                    return false;
            } else {
                ++localSeen;
                if (W > 1 &&
                    static_cast<int>(uid % static_cast<Word>(W)) != w)
                    return false;
                if (!uids.insert(uid).second)
                    return false;
            }
        }
        if (localSeen != localOrders[static_cast<std::size_t>(w)])
            return false;
        if (remoteSeen != remoteKeys[static_cast<std::size_t>(w)].size())
            return false;

        // Stock conservation.
        auto stock = s.stockTree.items(mem);
        if (stock.size() != ns)
            return false;
        for (const auto& [k, v] : stock) {
            if (v != stockRef[static_cast<std::size_t>(w)]
                             [static_cast<std::size_t>(k - 1)])
                return false;
        }

        // Customer balances and district YTD totals.
        auto custs = s.customerTree.items(mem);
        if (custs.size() != nc)
            return false;
        for (const auto& [k, v] : custs) {
            if (v != balanceRef[static_cast<std::size_t>(w)]
                               [static_cast<std::size_t>(k - 1)])
                return false;
        }
        Word ytdTotal = 0;
        for (int d = 0; d < districts; ++d)
            ytdTotal += mem.read(s.ytdBase + static_cast<Addr>(d) * 64);
        if (ytdTotal != ytdRef[static_cast<std::size_t>(w)])
            return false;
    }
    return true;
}

} // namespace tmsim
