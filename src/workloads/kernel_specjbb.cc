#include "workloads/kernel_specjbb.hh"

#include <set>

namespace tmsim {

std::string
SpecJbbKernel::name() const
{
    switch (variant) {
      case JbbVariant::Flat:
        return "specjbb-flat";
      case JbbVariant::ClosedNested:
        return "specjbb-closed";
      case JbbVariant::OpenNested:
        return "specjbb-open";
      case JbbVariant::Hybrid:
        return "specjbb-hybrid";
    }
    return "specjbb";
}

SpecJbbKernel::Op
SpecJbbKernel::opFor(int g)
{
    int slot = g % 10;
    if (slot < 5)
        return Op::NewOrder;
    if (slot < 8)
        return Op::Payment;
    return Op::OrderStatus;
}

Word
SpecJbbKernel::custFor(int g) const
{
    return 1 + (static_cast<Word>(g) * 31 + 7) %
                   static_cast<Word>(p.customers);
}

Word
SpecJbbKernel::itemFor(int g, int k) const
{
    return 1 + (static_cast<Word>(g) * 13 + static_cast<Word>(k) * 5) %
                   static_cast<Word>(p.stockItems);
}

Word
SpecJbbKernel::amountFor(int g)
{
    return 10 + static_cast<Word>(g) * 3 % 90;
}

void
SpecJbbKernel::init(Machine& m, int /* n_threads */)
{
    BackingStore& mem = m.memory();
    customerTree = SimBTree::create(mem, 512);
    orderTree = SimBTree::create(mem, 1024);
    stockTree = SimBTree::create(mem, 512);
    orderIdAddr = mem.allocate(64, 64);
    ytdBase = mem.allocate(districts * 64, 64);
    mem.write(orderIdAddr, 1);

    std::vector<std::pair<Word, Word>> custs;
    for (int c = 0; c < p.customers; ++c)
        custs.emplace_back(static_cast<Word>(c + 1), 1000);
    customerTree.bulkLoad(mem, custs);

    std::vector<std::pair<Word, Word>> stock;
    for (int i = 0; i < p.stockItems; ++i)
        stock.emplace_back(static_cast<Word>(i + 1), 100);
    stockTree.bulkLoad(mem, stock);
}

SimTask
SpecJbbKernel::treeGuard(TxThread& t, TxBody body)
{
    if (variant == JbbVariant::ClosedNested ||
        variant == JbbVariant::Hybrid) {
        co_await t.atomic(std::move(body));
    } else {
        co_await body(t);
    }
}

SimTask
SpecJbbKernel::newOrder(TxThread& t, int g)
{
    const Word cust = custFor(g);
    co_await t.atomic([&](TxThread& tx) -> SimTask {
        // Business logic: order assembly, pricing.
        co_await tx.work(static_cast<std::uint64_t>(p.thinkCycles));

        // Customer credit check (read-only, low contention).
        co_await treeGuard(tx, [&](TxThread& ti) -> SimTask {
            co_await customerTree.lookup(ti, cust);
        });

        // Stock reservations.
        for (int k = 0; k < p.stockPerOrder; ++k) {
            const Word item = itemFor(g, k);
            co_await treeGuard(tx, [&](TxThread& ti) -> SimTask {
                co_await stockTree.addDelta(
                    ti, item, static_cast<Word>(-1));
            });
        }

        // Unique global order id and order insertion, at the end of
        // the operation.
        //
        //  - Open variant: the id comes from an open-nested increment
        //    that commits immediately ("no compensation code is
        //    needed ... as the order IDs must be unique, but not
        //    necessarily sequential").
        //  - Closed variant: id generation and insert form one
        //    closed-nested transaction, so a conflict on the counter
        //    or the order leaf replays only this small piece.
        //  - Flat: both run directly in the outer transaction; every
        //    parallel new-order conflicts on the counter (the paper's
        //    motivation for open nesting).
        auto orderKey = [](Word id) {
            return (id % 4) * (1ull << 32) + id;
        };
        if (variant == JbbVariant::OpenNested) {
            Word oid = 0;
            co_await tx.atomicOpen([&](TxThread& ti) -> SimTask {
                oid = co_await ti.ld(orderIdAddr);
                co_await ti.st(orderIdAddr, oid + 1);
            });
            co_await tx.work(static_cast<std::uint64_t>(p.thinkCycles));
            co_await orderTree.insert(tx, orderKey(oid),
                                      (cust << 16) | (oid & 0xFFFF));
        } else if (variant == JbbVariant::Hybrid) {
            // Open-nested id generation AND closed-nested insert.
            Word oid = 0;
            co_await tx.atomicOpen([&](TxThread& ti) -> SimTask {
                oid = co_await ti.ld(orderIdAddr);
                co_await ti.st(orderIdAddr, oid + 1);
            });
            co_await tx.work(static_cast<std::uint64_t>(p.thinkCycles));
            co_await tx.atomic([&](TxThread& ti) -> SimTask {
                co_await orderTree.insert(ti, orderKey(oid),
                                          (cust << 16) | (oid & 0xFFFF));
            });
        } else if (variant == JbbVariant::ClosedNested) {
            co_await tx.work(static_cast<std::uint64_t>(p.thinkCycles));
            co_await tx.atomic([&](TxThread& ti) -> SimTask {
                Word oid = co_await ti.ld(orderIdAddr);
                co_await ti.st(orderIdAddr, oid + 1);
                co_await orderTree.insert(ti, orderKey(oid),
                                          (cust << 16) | (oid & 0xFFFF));
            });
        } else {
            Word oid = co_await tx.ld(orderIdAddr);
            co_await tx.st(orderIdAddr, oid + 1);
            co_await tx.work(static_cast<std::uint64_t>(p.thinkCycles));
            co_await orderTree.insert(tx, orderKey(oid),
                                      (cust << 16) | (oid & 0xFFFF));
        }
    });
}

SimTask
SpecJbbKernel::payment(TxThread& t, int g)
{
    const Word cust = custFor(g);
    const Word amount = amountFor(g);
    co_await t.atomic([&](TxThread& tx) -> SimTask {
        co_await tx.work(static_cast<std::uint64_t>(p.thinkCycles));
        co_await treeGuard(tx, [&](TxThread& ti) -> SimTask {
            co_await customerTree.addDelta(ti, cust, amount);
        });
        co_await tx.work(static_cast<std::uint64_t>(p.thinkCycles) / 2);
        // District year-to-date accumulation (hot shared word, last).
        Addr ytd = ytdBase + (cust % districts) * 64;
        co_await treeGuard(tx, [&](TxThread& ti) -> SimTask {
            Word v = co_await ti.ld(ytd);
            co_await ti.st(ytd, v + amount);
        });
    });
}

SimTask
SpecJbbKernel::orderStatus(TxThread& t, int g)
{
    const Word cust = custFor(g);
    co_await t.atomic([&](TxThread& tx) -> SimTask {
        co_await tx.work(static_cast<std::uint64_t>(p.thinkCycles) / 2);
        co_await treeGuard(tx, [&](TxThread& ti) -> SimTask {
            co_await customerTree.lookup(ti, cust);
        });
        co_await tx.work(static_cast<std::uint64_t>(p.thinkCycles) / 2);
        co_await treeGuard(tx, [&](TxThread& ti) -> SimTask {
            Word probe = co_await ti.ld(orderIdAddr);
            // Probe a recently issued order id (read-only path).
            co_await orderTree.lookup(ti, probe > 1 ? probe - 1 : 1);
        });
    });
}

SimTask
SpecJbbKernel::thread(TxThread& t, int tid, int n_threads)
{
    // Per-op-class tail latency: every transaction of an operation is
    // tagged with that operation's class, so the stats dump reports
    // htm.tx_duration_committed.<class>::p99 per business op.
    const int clsNewOrder = t.registerOpClass("neworder");
    const int clsPayment = t.registerOpClass("payment");
    const int clsOrderStatus = t.registerOpClass("orderstatus");
    for (int g = tid; g < p.totalOps; g += n_threads) {
        switch (opFor(g)) {
          case Op::NewOrder:
            t.setOpClass(clsNewOrder);
            co_await newOrder(t, g);
            break;
          case Op::Payment:
            t.setOpClass(clsPayment);
            co_await payment(t, g);
            break;
          case Op::OrderStatus:
            t.setOpClass(clsOrderStatus);
            co_await orderStatus(t, g);
            break;
        }
    }
    t.setOpClass(-1);
}

bool
SpecJbbKernel::verify(Machine& m, int n_threads)
{
    const BackingStore& mem = m.memory();
    if (!customerTree.validateStructure(mem) ||
        !orderTree.validateStructure(mem) ||
        !stockTree.validateStructure(mem)) {
        return false;
    }

    // Replay the deterministic operation mix on the host.
    (void)n_threads;
    int newOrders = 0;
    Word paymentsTotal = 0;
    std::vector<Word> stockRef(static_cast<size_t>(p.stockItems), 100);
    std::vector<Word> balanceRef(static_cast<size_t>(p.customers), 1000);
    for (int g = 0; g < p.totalOps; ++g) {
        switch (opFor(g)) {
          case Op::NewOrder:
            ++newOrders;
            for (int k = 0; k < p.stockPerOrder; ++k)
                --stockRef[static_cast<size_t>(itemFor(g, k) - 1)];
            break;
          case Op::Payment:
            paymentsTotal += amountFor(g);
            balanceRef[static_cast<size_t>(custFor(g) - 1)] +=
                amountFor(g);
            break;
          case Op::OrderStatus:
            break;
        }
    }

    // Orders: exactly one per committed new-order, ids unique.
    auto orders = orderTree.items(mem);
    if (orders.size() != static_cast<size_t>(newOrders))
        return false;
    std::set<Word> ids;
    for (const auto& [k, v] : orders) {
        (void)v;
        ids.insert(k);
    }
    if (ids.size() != orders.size())
        return false;

    // Stock conservation.
    auto stock = stockTree.items(mem);
    if (stock.size() != static_cast<size_t>(p.stockItems))
        return false;
    for (const auto& [k, v] : stock) {
        if (v != stockRef[static_cast<size_t>(k - 1)])
            return false;
    }

    // Customer balances and district YTD totals.
    auto custs = customerTree.items(mem);
    if (custs.size() != static_cast<size_t>(p.customers))
        return false;
    for (const auto& [k, v] : custs) {
        if (v != balanceRef[static_cast<size_t>(k - 1)])
            return false;
    }
    Word ytdTotal = 0;
    for (int d = 0; d < districts; ++d)
        ytdTotal += mem.read(ytdBase + static_cast<Addr>(d) * 64);
    return ytdTotal == paymentsTotal;
}

} // namespace tmsim
