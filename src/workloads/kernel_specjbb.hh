/**
 * @file
 * SPECjbb2000-style warehouse workload (paper section 7.1): customer
 * tasks (new order, payment, order status) over shared B-trees inside
 * one warehouse, in the paper's three parallelisations:
 *
 *  - Flat:   one outer transaction per operation (the 1.92x baseline).
 *  - Closed: B-tree searches/updates wrapped in closed-nested
 *            transactions (the paper's SPECjbb2000-closed, 2.05x over
 *            flat).
 *  - Open:   the global order-ID counter increments in an open-nested
 *            transaction (SPECjbb2000-open, 2.22x over flat; "no
 *            compensation code is needed ... as the order IDs must be
 *            unique, but not necessarily sequential").
 */

#ifndef TMSIM_WORKLOADS_KERNEL_SPECJBB_HH
#define TMSIM_WORKLOADS_KERNEL_SPECJBB_HH

#include "workloads/btree.hh"
#include "workloads/harness.hh"

namespace tmsim {

enum class JbbVariant
{
    Flat,
    ClosedNested,
    OpenNested,
    /** Closed-nested tree operations AND the open-nested order-id
     *  counter — the combination the paper suggests but does not
     *  evaluate ("We could use both open and closed nesting to obtain
     *  the advantages of both approaches"). */
    Hybrid,
};

struct JbbParams
{
    /** Total operations, statically partitioned over the threads
     *  (strong scaling, like the paper's fixed warehouse load). */
    int totalOps = 160;
    int customers = 256;
    int stockItems = 512;
    int stockPerOrder = 3;
    /** ALU "business logic" cycles per operation phase. */
    int thinkCycles = 1000;
};

class SpecJbbKernel : public Kernel
{
  public:
    explicit SpecJbbKernel(JbbVariant variant,
                           JbbParams params = JbbParams{})
        : variant(variant), p(params)
    {
    }

    std::string name() const override;
    void init(Machine& m, int n_threads) override;
    SimTask thread(TxThread& t, int tid, int n_threads) override;
    bool verify(Machine& m, int n_threads) override;

    /** Inspection hooks for tests. */
    const SimBTree& orders() const { return orderTree; }
    const SimBTree& customers() const { return customerTree; }
    const SimBTree& stock() const { return stockTree; }

  private:
    /** Deterministic operation selector: 5/3/2 mix per 10 ops. */
    enum class Op
    {
        NewOrder,
        Payment,
        OrderStatus,
    };
    static Op opFor(int g);

    SimTask newOrder(TxThread& t, int g);
    SimTask payment(TxThread& t, int g);
    SimTask orderStatus(TxThread& t, int g);

    /** Run a tree operation, closed-nested under the Closed variant. */
    SimTask treeGuard(TxThread& t, TxBody body);

    Word custFor(int g) const;
    Word itemFor(int g, int k) const;
    static Word amountFor(int g);

    JbbVariant variant;
    JbbParams p;
    SimBTree customerTree;
    SimBTree orderTree;
    SimBTree stockTree;
    Addr orderIdAddr = 0;
    Addr ytdBase = 0; // 4 district year-to-date counters (1 line each)
    static constexpr int districts = 4;
};

} // namespace tmsim

#endif // TMSIM_WORKLOADS_KERNEL_SPECJBB_HH
