/**
 * @file
 * SPECjbb2000-style warehouse workload (paper section 7.1): customer
 * tasks (new order, payment, order status) over shared B-trees, in the
 * paper's three parallelisations:
 *
 *  - Flat:   one outer transaction per operation (the 1.92x baseline).
 *  - Closed: B-tree searches/updates wrapped in closed-nested
 *            transactions (the paper's SPECjbb2000-closed, 2.05x over
 *            flat).
 *  - Open:   the order-ID counter increments in an open-nested
 *            transaction (SPECjbb2000-open, 2.22x over flat; "no
 *            compensation code is needed ... as the order IDs must be
 *            unique, but not necessarily sequential").
 *
 * Production shape: the dataset shards into `warehouses` independent
 * warehouse instances (customer/order/stock B-trees plus an order-ID
 * counter and district YTD lines per warehouse), the deterministic
 * arrival sequence is Zipf-skewed over warehouses and items (hot
 * warehouse 0, hot low keys), and a configurable fraction of new
 * orders is *cross-shard*: the order id is drawn from the home
 * warehouse's counter but the order lands in another warehouse's
 * order tree. Under the Open/Hybrid variants that handoff runs as one
 * open-nested transaction keyed idempotently by the global op index,
 * so it needs no compensation: an ancestor abort simply re-runs the
 * handoff and overwrites the same key with a freshly drawn id.
 *
 * The default parameters (1 warehouse, s = 0, 0% remote) reproduce the
 * original single-warehouse kernel op-for-op and byte-for-byte — the
 * golden determinism fingerprints pin this.
 */

#ifndef TMSIM_WORKLOADS_KERNEL_SPECJBB_HH
#define TMSIM_WORKLOADS_KERNEL_SPECJBB_HH

#include "workloads/btree.hh"
#include "workloads/harness.hh"
#include "workloads/zipf.hh"

namespace tmsim {

enum class JbbVariant
{
    Flat,
    ClosedNested,
    OpenNested,
    /** Closed-nested tree operations AND the open-nested order-id
     *  counter — the combination the paper suggests but does not
     *  evaluate ("We could use both open and closed nesting to obtain
     *  the advantages of both approaches"). */
    Hybrid,
};

struct JbbParams
{
    /** Total operations, statically partitioned over the threads
     *  (strong scaling, like the paper's fixed warehouse load). */
    int totalOps = 160;
    /** Total customer keys across all warehouses. */
    int customers = 256;
    /** Total stock keys across all warehouses. */
    int stockItems = 512;
    int stockPerOrder = 3;
    /** ALU "business logic" cycles per operation phase. */
    int thinkCycles = 1000;
    /** Independent warehouse shards (trees + counter + YTD each). */
    int warehouses = 1;
    /** Zipf exponent in [0, 1) for warehouse/customer/item draws;
     *  0 = uniform. Warehouse 0 and low keys are the hot ranks. */
    double zipfS = 0.0;
    /** Percent of new orders handed off to another warehouse's order
     *  tree (only meaningful with warehouses > 1). */
    int remotePct = 0;
};

class SpecJbbKernel : public Kernel
{
  public:
    explicit SpecJbbKernel(JbbVariant variant,
                           JbbParams params = JbbParams{})
        : variant(variant), p(params)
    {
    }

    std::string name() const override;
    void init(Machine& m, int n_threads) override;
    SimTask thread(TxThread& t, int tid, int n_threads) override;
    bool verify(Machine& m, int n_threads) override;
    Addr memBytesHint() const override;

    /** Inspection hooks for tests (warehouse 0's shard). */
    const SimBTree& orders() const { return shards[0].orderTree; }
    const SimBTree& customers() const { return shards[0].customerTree; }
    const SimBTree& stock() const { return shards[0].stockTree; }

    int warehouses() const { return p.warehouses; }

  private:
    /** Deterministic operation selector: 5/3/2 mix per 10 ops. */
    enum class Op
    {
        NewOrder,
        Payment,
        OrderStatus,
    };
    static Op opFor(int g);

    /** One warehouse: private trees, order-id counter, YTD lines. */
    struct Shard
    {
        SimBTree customerTree;
        SimBTree orderTree;
        SimBTree stockTree;
        Addr orderIdAddr = 0;
        Addr ytdBase = 0; // 4 district year-to-date counters
    };

    SimTask newOrder(TxThread& t, int g);
    SimTask payment(TxThread& t, int g);
    SimTask orderStatus(TxThread& t, int g);

    /** Run a tree operation, closed-nested under the Closed variant. */
    SimTask treeGuard(TxThread& t, TxBody body);

    /** The legacy single-warehouse uniform arrival path: taken iff
     *  warehouses == 1 && zipfS == 0, preserving the original LCG-style
     *  selectors bit-for-bit (golden fingerprints pin them). */
    bool legacyArrivals() const
    {
        return p.warehouses == 1 && p.zipfS == 0.0;
    }

    int custsPerWh() const
    {
        return p.customers / p.warehouses > 0
            ? p.customers / p.warehouses : 1;
    }
    int stockPerWh() const
    {
        return p.stockItems / p.warehouses > 0
            ? p.stockItems / p.warehouses : 1;
    }

    int whFor(int g) const;
    Word custFor(int g) const;
    Word itemFor(int g, int k) const;
    static Word amountFor(int g);

    /** Cross-shard decision and destination for new-order @p g. */
    bool remoteFor(int g) const;
    int destFor(int g, int home) const;

    /**
     * Order-tree key spaces (per destination tree, disjoint):
     *  - local:  uid = oid * W + home  (uid < 2^31; reduces to the
     *            legacy oid at W = 1), key = (uid%4)<<32 | uid
     *  - remote: uid = 2^31 | g       (idempotent per logical op, so
     *            an open-nested handoff replayed after an ancestor
     *            abort overwrites rather than duplicates)
     */
    Word localOrderKey(Word oid, int home) const;
    Word remoteOrderKey(int g) const;

    /** Per-shard B-tree pool sizes (nodes), max'd with the legacy
     *  fixed sizes so default params keep the original layout. */
    void poolSizes(std::size_t& cust, std::size_t& order,
                   std::size_t& stock) const;

    JbbVariant variant;
    JbbParams p;
    std::vector<Shard> shards;
    ZipfGen whZipf;
    ZipfGen custZipf;
    ZipfGen itemZipf;
    static constexpr int districts = 4;

    // Host-side workload counters (jbb.* stats; zero simulated cost).
    StatsRegistry::Counter* statNewOrder = nullptr;
    StatsRegistry::Counter* statPayment = nullptr;
    StatsRegistry::Counter* statOrderStatus = nullptr;
    StatsRegistry::Counter* statRemote = nullptr;
};

} // namespace tmsim

#endif // TMSIM_WORKLOADS_KERNEL_SPECJBB_HH
