#include "workloads/kernel_contention.hh"

namespace tmsim {

void
ContentionKernel::init(Machine& m, int /* n_threads */)
{
    // One line is enough: hotWords is capped at a line's worth of
    // words so every transaction collides on the same tracking unit
    // under line granularity (and on the same words under word
    // granularity when hotWords spans them all).
    hotBase = m.memory().allocate(64, 64);
}

SimTask
ContentionKernel::thread(TxThread& t, int tid, int n_threads)
{
    (void)n_threads;
    const int words = std::min(p.hotWords, 64 / static_cast<int>(wordBytes));
    const bool isLong = tid < p.longThreads;
    const int hold = isLong ? p.holdCycles * p.longFactor : p.holdCycles;
    // Long-holding threads and short ones are distinct op classes, so
    // the dump splits tail latency by victim/aggressor role.
    t.setOpClass(t.registerOpClass(isLong ? "long" : "short"));
    for (int it = 0; it < p.itersPerThread; ++it) {
        co_await t.atomic([&](TxThread& tx) -> SimTask {
            for (int w = 0; w < words; ++w) {
                const Addr a =
                    hotBase + static_cast<Addr>(w) * wordBytes;
                Word v = co_await tx.ld(a);
                co_await tx.work(static_cast<std::uint64_t>(hold));
                co_await tx.st(a, v + 1);
            }
        });
        if (p.thinkCycles > 0)
            co_await t.work(static_cast<std::uint64_t>(p.thinkCycles));
    }
}

bool
ContentionKernel::verify(Machine& m, int n_threads)
{
    const int words = std::min(p.hotWords, 64 / static_cast<int>(wordBytes));
    const Word expect = static_cast<Word>(p.itersPerThread) *
                        static_cast<Word>(n_threads);
    for (int w = 0; w < words; ++w) {
        if (m.memory().read(hotBase + static_cast<Addr>(w) * wordBytes) !=
            expect) {
            return false;
        }
    }
    return true;
}

} // namespace tmsim
