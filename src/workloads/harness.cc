#include "workloads/harness.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "workloads/kernel_condsync.hh"
#include "workloads/kernel_contention.hh"
#include "workloads/kernel_fuzz.hh"
#include "workloads/kernel_iobench.hh"
#include "workloads/kernel_mp3d.hh"
#include "workloads/kernel_specjbb.hh"
#include "workloads/kernels_scientific.hh"

namespace tmsim {

const std::vector<std::string>&
namedKernels()
{
    static const std::vector<std::string> names = {
        "barnes",         "fmm",           "moldyn",
        "mp3d",           "mp3d-open",     "swim",
        "tomcatv",        "water",         "specjbb-flat",
        "specjbb-closed", "specjbb-open",  "specjbb-hybrid",
        "iobench-tx",     "iobench-serialized",
        "condsync-sched", "condsync-poll",
        "contend",        "contend-mixed", "fuzz",
    };
    return names;
}

std::unique_ptr<Kernel>
makeNamedKernel(const std::string& name, std::uint64_t fuzz_seed)
{
    KernelParams kp;
    kp.fuzzSeed = fuzz_seed;
    return makeNamedKernel(name, kp);
}

std::unique_ptr<Kernel>
makeNamedKernel(const std::string& name, const KernelParams& kp)
{
    const std::uint64_t fuzz_seed = kp.fuzzSeed;
    if (name == "barnes")
        return std::make_unique<SciKernel>(sciBarnes());
    if (name == "fmm")
        return std::make_unique<SciKernel>(sciFmm());
    if (name == "moldyn")
        return std::make_unique<SciKernel>(sciMoldyn());
    if (name == "mp3d")
        return std::make_unique<Mp3dKernel>();
    if (name == "mp3d-open") {
        Mp3dParams p;
        p.openReductions = true;
        return std::make_unique<Mp3dKernel>(p);
    }
    if (name == "swim")
        return std::make_unique<SciKernel>(sciSwim());
    if (name == "tomcatv")
        return std::make_unique<SciKernel>(sciTomcatv());
    if (name == "water")
        return std::make_unique<SciKernel>(sciWater());
    if (name.rfind("specjbb-", 0) == 0) {
        JbbVariant variant;
        if (name == "specjbb-flat")
            variant = JbbVariant::Flat;
        else if (name == "specjbb-closed")
            variant = JbbVariant::ClosedNested;
        else if (name == "specjbb-open")
            variant = JbbVariant::OpenNested;
        else if (name == "specjbb-hybrid")
            variant = JbbVariant::Hybrid;
        else
            return nullptr;
        JbbParams p;
        if (kp.jbbOps >= 0)
            p.totalOps = kp.jbbOps;
        if (kp.jbbCustomers >= 0)
            p.customers = kp.jbbCustomers;
        if (kp.jbbStockItems >= 0)
            p.stockItems = kp.jbbStockItems;
        if (kp.jbbWarehouses >= 0)
            p.warehouses = kp.jbbWarehouses;
        if (kp.jbbThinkCycles >= 0)
            p.thinkCycles = kp.jbbThinkCycles;
        if (kp.jbbRemotePct >= 0)
            p.remotePct = kp.jbbRemotePct;
        if (kp.zipfS >= 0.0)
            p.zipfS = kp.zipfS;
        return std::make_unique<SpecJbbKernel>(variant, p);
    }
    if (name == "iobench-tx" || name == "iobench-serialized") {
        IoBenchParams p;
        p.transactional = name == "iobench-tx";
        return std::make_unique<IoBenchKernel>(p);
    }
    if (name == "condsync-sched" || name == "condsync-poll") {
        CondSyncParams p;
        p.useScheduler = name == "condsync-sched";
        return std::make_unique<CondSyncKernel>(p);
    }
    if (name == "contend")
        return std::make_unique<ContentionKernel>();
    if (name == "contend-mixed") {
        // One long-holding victim thread among short aggressors: the
        // two op classes ("long"/"short") split the tail-latency dump
        // by role.
        ContentionParams p;
        p.longThreads = 1;
        return std::make_unique<ContentionKernel>(p);
    }
    if (name == "fuzz")
        return std::make_unique<FuzzKernel>(fuzz_seed);
    return nullptr;
}

RunResult
runKernel(Kernel& kernel, const HtmConfig& htm, int n_threads,
          Addr mem_bytes, StatsRegistry* stats_out)
{
    MachineConfig cfg;
    cfg.numCpus = n_threads;
    cfg.htm = htm;
    cfg.memBytes = std::max(mem_bytes, kernel.memBytesHint());
    Machine m(cfg);

    kernel.init(m, n_threads);

    std::vector<std::unique_ptr<TxThread>> threads;
    threads.reserve(static_cast<size_t>(n_threads));
    for (int i = 0; i < n_threads; ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));

    for (int i = 0; i < n_threads; ++i) {
        TxThread* t = threads[static_cast<size_t>(i)].get();
        m.spawn(i, [&kernel, t, i, n_threads](Cpu&) -> SimTask {
            co_await kernel.thread(*t, i, n_threads);
        });
    }

    RunResult r;
    r.kernel = kernel.name();
    r.htm = htm.describe();
    r.threads = n_threads;
    r.cycles = m.run();
    r.commits = m.stats().sum("cpu*.htm.commits") +
                m.stats().sum("cpu*.htm.open_commits");
    r.rollbacks = m.stats().sum("cpu*.htm.rollbacks");
    r.violationsTaken = m.stats().sum("cpu*.violations_taken");
    r.busBusyCycles = m.stats().value("bus.busy_cycles");
    std::uint64_t instr = 0;
    for (int i = 0; i < n_threads; ++i)
        instr += m.cpu(i).instret();
    r.instructions = instr;
    r.verified = kernel.verify(m, n_threads);
    if (stats_out)
        stats_out->mergeFrom(m.stats());
    return r;
}

Fig5Row
fig5Row(const KernelFactory& make, int n_threads, const HtmConfig& base)
{
    HtmConfig nested = base;
    nested.nesting = NestingMode::Full;
    HtmConfig flat = base;
    flat.nesting = NestingMode::Flatten;

    Fig5Row row;
    {
        auto k = make();
        row.seq = runKernel(*k, nested, 1);
        row.name = k->name();
    }
    {
        auto k = make();
        row.flat = runKernel(*k, flat, n_threads);
    }
    {
        auto k = make();
        row.nested = runKernel(*k, nested, n_threads);
    }
    row.nestingSpeedup = static_cast<double>(row.flat.cycles) /
                         static_cast<double>(row.nested.cycles);
    row.nestedVsSeq = static_cast<double>(row.seq.cycles) /
                      static_cast<double>(row.nested.cycles);
    row.flatVsSeq = static_cast<double>(row.seq.cycles) /
                    static_cast<double>(row.flat.cycles);
    row.allVerified =
        row.seq.verified && row.flat.verified && row.nested.verified;
    return row;
}

} // namespace tmsim
