#include "workloads/harness.hh"

#include "sim/logging.hh"

namespace tmsim {

RunResult
runKernel(Kernel& kernel, const HtmConfig& htm, int n_threads,
          Addr mem_bytes)
{
    MachineConfig cfg;
    cfg.numCpus = n_threads;
    cfg.htm = htm;
    cfg.memBytes = mem_bytes;
    Machine m(cfg);

    kernel.init(m, n_threads);

    std::vector<std::unique_ptr<TxThread>> threads;
    threads.reserve(static_cast<size_t>(n_threads));
    for (int i = 0; i < n_threads; ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));

    for (int i = 0; i < n_threads; ++i) {
        TxThread* t = threads[static_cast<size_t>(i)].get();
        m.spawn(i, [&kernel, t, i, n_threads](Cpu&) -> SimTask {
            co_await kernel.thread(*t, i, n_threads);
        });
    }

    RunResult r;
    r.kernel = kernel.name();
    r.htm = htm.describe();
    r.threads = n_threads;
    r.cycles = m.run();
    r.commits = m.stats().sum("cpu*.htm.commits") +
                m.stats().sum("cpu*.htm.open_commits");
    r.rollbacks = m.stats().sum("cpu*.htm.rollbacks");
    r.violationsTaken = m.stats().sum("cpu*.violations_taken");
    r.busBusyCycles = m.stats().value("bus.busy_cycles");
    std::uint64_t instr = 0;
    for (int i = 0; i < n_threads; ++i)
        instr += m.cpu(i).instret();
    r.instructions = instr;
    r.verified = kernel.verify(m, n_threads);
    return r;
}

Fig5Row
fig5Row(const KernelFactory& make, int n_threads, const HtmConfig& base)
{
    HtmConfig nested = base;
    nested.nesting = NestingMode::Full;
    HtmConfig flat = base;
    flat.nesting = NestingMode::Flatten;

    Fig5Row row;
    {
        auto k = make();
        row.seq = runKernel(*k, nested, 1);
        row.name = k->name();
    }
    {
        auto k = make();
        row.flat = runKernel(*k, flat, n_threads);
    }
    {
        auto k = make();
        row.nested = runKernel(*k, nested, n_threads);
    }
    row.nestingSpeedup = static_cast<double>(row.flat.cycles) /
                         static_cast<double>(row.nested.cycles);
    row.nestedVsSeq = static_cast<double>(row.seq.cycles) /
                      static_cast<double>(row.nested.cycles);
    row.flatVsSeq = static_cast<double>(row.seq.cycles) /
                    static_cast<double>(row.flat.cycles);
    row.allVerified =
        row.seq.verified && row.flat.verified && row.nested.verified;
    return row;
}

} // namespace tmsim
