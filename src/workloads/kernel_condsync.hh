/**
 * @file
 * The paper's section-7.3 conditional-synchronisation benchmark:
 * producer/consumer pairs exchanging items through single-slot
 * channels. The scheduler variant blocks with watch/retry (figure 3);
 * the baseline spins with abort-and-retry polling transactions.
 */

#ifndef TMSIM_WORKLOADS_KERNEL_CONDSYNC_HH
#define TMSIM_WORKLOADS_KERNEL_CONDSYNC_HH

#include <memory>

#include "runtime/cond_sched.hh"
#include "workloads/harness.hh"

namespace tmsim {

struct CondSyncParams
{
    /** Items transferred per producer/consumer pair. */
    int itemsPerPair = 12;
    /** ALU cycles of work per consumed item. */
    int workCycles = 150;
    /** Production is slower than consumption by this factor, so
     *  consumers genuinely wait (the interesting case for blocking
     *  vs. polling synchronisation). */
    int produceMult = 5;
    /** true: figure-3 watch/retry scheduler; false: polling. */
    bool useScheduler = true;
};

/**
 * CPU 0 hosts the scheduler (idle in the polling variant, keeping the
 * machine sizes comparable); the remaining CPUs form pairs: odd CPUs
 * produce, even CPUs consume.
 */
class CondSyncKernel : public Kernel
{
  public:
    explicit CondSyncKernel(CondSyncParams params = CondSyncParams{})
        : p(params)
    {
    }

    std::string
    name() const override
    {
        return p.useScheduler ? "condsync-sched" : "condsync-poll";
    }

    void init(Machine& m, int n_threads) override;
    SimTask thread(TxThread& t, int tid, int n_threads) override;
    bool verify(Machine& m, int n_threads) override;

    /** Items actually transferred (for throughput reporting). */
    int itemsTransferred(int n_threads) const
    {
        return pairsFor(n_threads) * p.itemsPerPair;
    }

  private:
    static int pairsFor(int n_threads) { return (n_threads - 1) / 2; }

    SimTask producer(TxThread& t, int worker, Addr slot);
    SimTask consumer(TxThread& t, int worker, Addr slot, int pair);

    CondSyncParams p;
    std::unique_ptr<CondScheduler> sched;
    std::vector<Addr> slots;
    std::vector<std::vector<Word>> received;
    int workerCount = 0;
};

} // namespace tmsim

#endif // TMSIM_WORKLOADS_KERNEL_CONDSYNC_HH
