/**
 * @file
 * The paper's section-7.2 I/O microbenchmark: every thread repeatedly
 * performs a small computation within a transaction and outputs a
 * message into a shared log.
 *
 * Transactional mode buffers the message privately and appends through
 * a commit handler (scales); the baseline serialises the whole
 * transaction around the direct "system call" (conventional HTMs
 * revert to sequential execution on I/O).
 */

#ifndef TMSIM_WORKLOADS_KERNEL_IOBENCH_HH
#define TMSIM_WORKLOADS_KERNEL_IOBENCH_HH

#include <memory>

#include "runtime/tx_io.hh"
#include "workloads/harness.hh"

namespace tmsim {

struct IoBenchParams
{
    int msgsPerThread = 16;
    int computeCycles = 400;
    int msgWords = 6;
    /** true: commit-handler buffered output; false: serialised. */
    bool transactional = true;
};

class IoBenchKernel : public Kernel
{
  public:
    explicit IoBenchKernel(IoBenchParams params = IoBenchParams{})
        : p(params)
    {
    }

    std::string
    name() const override
    {
        return p.transactional ? "iobench-tx" : "iobench-serialized";
    }

    void init(Machine& m, int n_threads) override;
    SimTask thread(TxThread& t, int tid, int n_threads) override;
    bool verify(Machine& m, int n_threads) override;

  private:
    IoBenchParams p;
    std::unique_ptr<TxLogDevice> log;
    std::unique_ptr<TxIo> io;
    std::vector<Addr> privBase;
};

} // namespace tmsim

#endif // TMSIM_WORKLOADS_KERNEL_IOBENCH_HH
