/**
 * @file
 * Workload harness: runs a kernel on a configured Machine with one
 * TxThread per CPU, verifies the result against a sequential
 * reference, and extracts the numbers the benches report.
 */

#ifndef TMSIM_WORKLOADS_HARNESS_HH
#define TMSIM_WORKLOADS_HARNESS_HH

#include <memory>
#include <string>
#include <vector>

#include "core/machine.hh"
#include "runtime/tx_thread.hh"

namespace tmsim {

/** Aggregate result of one workload run. */
struct RunResult
{
    std::string kernel;
    std::string htm;
    int threads = 0;
    Tick cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t commits = 0;
    std::uint64_t rollbacks = 0;
    std::uint64_t violationsTaken = 0;
    std::uint64_t busBusyCycles = 0;
    bool verified = false;
};

/** A parallel workload with built-in verification. */
class Kernel
{
  public:
    virtual ~Kernel() = default;

    virtual std::string name() const = 0;

    /** Build the initial memory image (host-side, untimed). */
    virtual void init(Machine& m, int n_threads) = 0;

    /** Body of thread @p tid of @p n_threads. */
    virtual SimTask thread(TxThread& t, int tid, int n_threads) = 0;

    /** Check the final memory image against the expected result. */
    virtual bool verify(Machine& m, int n_threads) = 0;

    /**
     * Minimum simulated address-space size this kernel's configured
     * dataset needs (0 = any). runKernel raises its mem_bytes to this;
     * with the sparse backing store, a large hint costs only the
     * chunks actually touched.
     */
    virtual Addr memBytesHint() const { return 0; }
};

/** Run @p kernel with @p n_threads CPUs under @p htm. With
 *  @p stats_out, the machine's full stats registry merges into it
 *  after the run (sweep/campaign aggregation). */
RunResult runKernel(Kernel& kernel, const HtmConfig& htm, int n_threads,
                    Addr mem_bytes = 64ull * 1024 * 1024,
                    StatsRegistry* stats_out = nullptr);

/** Names of every bundled kernel, in listing order. */
const std::vector<std::string>& namedKernels();

/**
 * Bundled-kernel construction knobs (CLI surface). Negative values
 * mean "kernel default" so tools can pass a partially filled struct.
 */
struct KernelParams
{
    /** Parameterises the 'fuzz' kernel's program draw. */
    std::uint64_t fuzzSeed = 1;
    // specjbb-* scaling knobs (see JbbParams).
    int jbbOps = -1;
    int jbbCustomers = -1;
    int jbbStockItems = -1;
    int jbbWarehouses = -1;
    int jbbThinkCycles = -1;
    int jbbRemotePct = -1;
    double zipfS = -1.0;
};

/** Instantiate a bundled kernel by name (nullptr if unknown).
 *  @p fuzz_seed parameterises the 'fuzz' kernel's program draw. */
std::unique_ptr<Kernel> makeNamedKernel(const std::string& name,
                                        std::uint64_t fuzz_seed = 1);

/** Instantiate a bundled kernel by name with explicit knobs. */
std::unique_ptr<Kernel> makeNamedKernel(const std::string& name,
                                        const KernelParams& kp);

/** One bar of the paper's figure 5. */
struct Fig5Row
{
    std::string name;
    /** Speedup of full nesting over flattening at n threads. */
    double nestingSpeedup = 0.0;
    /** Speedup of the nested version over 1-thread execution. */
    double nestedVsSeq = 0.0;
    /** Speedup of the flattened version over 1-thread execution. */
    double flatVsSeq = 0.0;
    RunResult nested;
    RunResult flat;
    RunResult seq;
    bool allVerified = false;
};

/** Factory type so each configuration gets a fresh kernel instance. */
using KernelFactory = std::function<std::unique_ptr<Kernel>()>;

/** Run seq/flat/nested for one kernel and compute the figure-5 bar. */
Fig5Row fig5Row(const KernelFactory& make, int n_threads,
                const HtmConfig& base = HtmConfig::paperLazy());

} // namespace tmsim

#endif // TMSIM_WORKLOADS_HARNESS_HH
