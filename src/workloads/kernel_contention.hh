/**
 * @file
 * Adversarial high-contention kernel for exercising contention
 * management: every thread repeatedly read-modify-writes the SAME few
 * hot words, which all live on one cache line, inside short outer
 * transactions. Nearly every transaction conflicts with every
 * concurrent one, so which transaction wins — and how losers are
 * rescheduled — is decided almost entirely by the contention manager.
 * Throughput and the consecutive-abort distribution under this kernel
 * are the fairness/starvation observables the policy ablation sweeps.
 */

#ifndef TMSIM_WORKLOADS_KERNEL_CONTENTION_HH
#define TMSIM_WORKLOADS_KERNEL_CONTENTION_HH

#include "workloads/harness.hh"

namespace tmsim {

struct ContentionParams
{
    /** Outer transactions per thread. */
    int itersPerThread = 32;
    /** Hot words per transaction, all on one shared line. */
    int hotWords = 2;
    /** ALU cycles between the read and the write of each hot word —
     *  widens the conflict window so overlap is near-certain. */
    int holdCycles = 40;
    /** ALU cycles of private work between transactions. Zero keeps
     *  every thread hammering the hot line back-to-back (the
     *  starvation-adversarial setting). */
    int thinkCycles = 0;
    /** The first longThreads threads run their hold phase longFactor
     *  times longer. A long transaction among short ones is the
     *  classic lazy-commit starvation victim: every short commit
     *  violates it, and age-order arbitration has no lever at lazy
     *  commit time. Off by default: the throughput sweep and the
     *  fairness regression keep threads symmetric (a 6x-long window
     *  outlasts even the guard's commit-yield slot). */
    int longThreads = 0;
    int longFactor = 6;
};

class ContentionKernel : public Kernel
{
  public:
    explicit ContentionKernel(ContentionParams params = ContentionParams{})
        : p(params)
    {
    }

    std::string
    name() const override
    {
        return p.longThreads > 0 ? "contend-mixed" : "contend";
    }
    void init(Machine& m, int n_threads) override;
    SimTask thread(TxThread& t, int tid, int n_threads) override;
    bool verify(Machine& m, int n_threads) override;

  private:
    ContentionParams p;
    Addr hotBase = 0; ///< the single contended line
};

} // namespace tmsim

#endif // TMSIM_WORKLOADS_KERNEL_CONTENTION_HH
