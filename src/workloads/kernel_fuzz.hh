/**
 * @file
 * Fuzz workload adapter: exposes one seed-generated check/ fuzz
 * program through the standard Kernel interface so tmsim_run (and the
 * harness) can execute and oracle-verify it like any other workload.
 */

#ifndef TMSIM_WORKLOADS_KERNEL_FUZZ_HH
#define TMSIM_WORKLOADS_KERNEL_FUZZ_HH

#include <cstdint>
#include <memory>

#include "check/fuzz_interp.hh"
#include "check/fuzz_program.hh"
#include "workloads/harness.hh"

namespace tmsim {

class FuzzKernel : public Kernel
{
  public:
    explicit FuzzKernel(std::uint64_t seed);

    std::string name() const override;
    void init(Machine& m, int n_threads) override;
    SimTask thread(TxThread& t, int tid, int n_threads) override;
    bool verify(Machine& m, int n_threads) override;

  private:
    std::uint64_t seed;
    FuzzProgram program;
    std::unique_ptr<FuzzInterp> interp;
};

} // namespace tmsim

#endif // TMSIM_WORKLOADS_KERNEL_FUZZ_HH
