/**
 * @file
 * Deterministic Zipf-skewed rank generator for production-shaped
 * arrival sequences (hot warehouse / hot item), after the YCSB
 * "ScrambledZipfian" construction: an O(n) one-time zeta sum, then
 * O(1) inverse-transform draws.
 *
 * Determinism contract: a draw is a pure function of (n, s, u). The
 * zeta sum runs in fixed ascending order and every draw evaluates the
 * same closed-form expression, so for one libm build the sequence is
 * bit-stable across runs, thread counts and --jobs values (workload
 * selectors hash a global op index into u, never a per-thread RNG).
 * Golden determinism fingerprints only pin configurations with s = 0
 * and a single warehouse, which bypass this generator entirely, so
 * cross-libm double differences can never break the goldens.
 */

#ifndef TMSIM_WORKLOADS_ZIPF_HH
#define TMSIM_WORKLOADS_ZIPF_HH

#include <cmath>
#include <cstdint>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace tmsim {

/** splitmix64 finalizer: uncorrelated 64-bit hash of an op index and a
 *  stream salt. */
inline std::uint64_t
hashMix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Map a 64-bit hash to a double in [0, 1). */
inline double
hashToUnit(std::uint64_t h)
{
    return static_cast<double>(h >> 11) *
           (1.0 / 9007199254740992.0); // 2^-53
}

/**
 * Zipf(n, s) rank distribution over [0, n), rank 0 hottest. s = 0 is
 * exactly uniform (and skips the O(n) zeta precomputation); s must be
 * < 1 (the YCSB inverse transform requires it; SPECjbb-style skew uses
 * the classic s = 0.99).
 */
class ZipfGen
{
  public:
    ZipfGen() = default;

    ZipfGen(std::uint64_t n, double s)
        : nItems(n), theta(s)
    {
        if (n == 0)
            fatal("ZipfGen needs a nonzero population");
        if (s < 0.0 || s >= 1.0)
            fatal("Zipf exponent must be in [0, 1), got %g", s);
        if (s == 0.0) {
            // Uniform: zeta(n, 0) = n, zeta(2, 0) = 2; eta collapses
            // to 1 and draw() reduces to floor(u * n).
            zetan = static_cast<double>(n);
            half = 1.0;
            alpha = 1.0;
            eta = 1.0;
            return;
        }
        for (std::uint64_t i = 1; i <= n; ++i)
            zetan += 1.0 / std::pow(static_cast<double>(i), theta);
        const double zeta2 = 1.0 + std::pow(2.0, -theta);
        half = std::pow(0.5, theta);
        alpha = 1.0 / (1.0 - theta);
        eta = (1.0 - std::pow(2.0 / static_cast<double>(n),
                              1.0 - theta)) /
              (1.0 - zeta2 / zetan);
    }

    std::uint64_t n() const { return nItems; }
    double s() const { return theta; }

    /** Inverse-transform draw: u in [0, 1) -> rank in [0, n). */
    std::uint64_t
    draw(double u) const
    {
        const double uz = u * zetan;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + half)
            return nItems > 1 ? 1 : 0;
        const double r = static_cast<double>(nItems) *
                         std::pow(eta * u - eta + 1.0, alpha);
        const auto rank = static_cast<std::uint64_t>(r);
        return rank >= nItems ? nItems - 1 : rank;
    }

    /** Draw from the hash of (index, salt) — the deterministic
     *  open-loop arrival sequence used by the workloads. */
    std::uint64_t
    drawAt(std::uint64_t index, std::uint64_t salt) const
    {
        return draw(hashToUnit(hashMix64(index ^ (salt * 0x9e3779b97f4a7c15ull))));
    }

  private:
    std::uint64_t nItems = 1;
    double theta = 0.0;
    double zetan = 0.0;
    double half = 1.0;  ///< 0.5^s, the rank-1 band of the transform
    double alpha = 1.0;
    double eta = 1.0;
};

} // namespace tmsim

#endif // TMSIM_WORKLOADS_ZIPF_HH
