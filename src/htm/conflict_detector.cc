#include "htm/conflict_detector.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace tmsim {

ConflictDetector::ConflictDetector(EventQueue& eq_, StatsRegistry& stats)
    : eq(eq_),
      statsRef(stats),
      statBroadcastLines(stats.counter("htm.broadcast_lines")),
      statLazyViolations(stats.counter("htm.lazy_violations")),
      statEagerConflicts(stats.counter("htm.eager_conflicts")),
      statSelfViolations(stats.counter("htm.self_violations")),
      statLockStalls(stats.counter("htm.lock_stalls")),
      statStrongAtomicityViolations(
          stats.counter("htm.strong_atomicity_violations")),
      statSigFiltered(stats.counter("htm.sig_filtered")),
      statIndexHits(stats.counter("htm.index_hits")),
      statSigFalsePositives(stats.counter("htm.sig_false_positives")),
      statOverflowChecks(stats.counter("htm.overflow_checks"))
{
    tracer = &TxTracer::nil();
}

void
ConflictDetector::addContext(HtmContext* ctx)
{
    if (!ctxs.empty()) {
        const HtmConfig& first = ctxs.front()->config();
        if (ctx->config().granularity != first.granularity ||
            ctx->lineBytes() != ctxs.front()->lineBytes()) {
            panic("sharer index requires a uniform conflict-tracking "
                  "granularity and line size across contexts");
        }
    }
    ctxs.push_back(ctx);
    ctx->setSharerListener(this);
    // The chip-wide contention manager is built from the first
    // context's configuration (policies are per-machine, not per-CPU).
    if (!cm)
        cm = makeContentionManager(ctx->config(), statsRef);
    ctx->setContentionManager(cm.get());
}

ContentionManager&
ConflictDetector::contention()
{
    if (!cm) {
        // No context registered yet (raw detector tests): default
        // Requester manager.
        cm = makeContentionManager(HtmConfig{}, statsRef);
    }
    return *cm;
}

void
ConflictDetector::noteSequenceAbandoned(CpuId cpu)
{
    contention().onSequenceAbandoned(cpu);
    for (HtmContext* ctx : ctxs)
        if (ctx->cpuId() == cpu)
            ctx->noteSequenceAbandoned();
}

void
ConflictDetector::onSharerUpdate(HtmContext* ctx, Addr unit,
                                 std::uint32_t readers,
                                 std::uint32_t writers)
{
    if (readers | writers) {
        SharerEntry& e = sharerIndex[unit];
        auto it = std::lower_bound(
            e.sharers.begin(), e.sharers.end(), ctx->cpuId(),
            [](const SharerSlot& s, CpuId id) { return s.ctx->cpuId() < id; });
        if (it != e.sharers.end() && it->ctx == ctx) {
            it->readers = readers;
            it->writers = writers;
        } else {
            e.sharers.insert(it, SharerSlot{ctx, readers, writers});
        }
        if (readers)
            globalReadSig.add(unit);
        if (writers)
            globalWriteSig.add(unit);
        return;
    }
    auto mit = sharerIndex.find(unit);
    if (mit == sharerIndex.end())
        return;
    auto& sharers = mit->second.sharers;
    for (auto it = sharers.begin(); it != sharers.end(); ++it) {
        if (it->ctx == ctx) {
            sharers.erase(it);
            break;
        }
    }
    if (sharers.empty()) {
        sharerIndex.erase(mit);
        if (sharerIndex.empty()) {
            // Exact rebuild point: nobody shares anything, so every
            // stale signature bit can be dropped at once.
            globalReadSig.clear();
            globalWriteSig.clear();
        }
    }
}

const ConflictDetector::SharerEntry*
ConflictDetector::lookupSharers(Addr unit, bool need_readers,
                                bool need_writers) const
{
    const bool mayRead = need_readers && globalReadSig.mayContain(unit);
    const bool mayWrite = need_writers && globalWriteSig.mayContain(unit);
    if (!mayRead && !mayWrite) {
        ++statSigFiltered;
        return nullptr;
    }
    auto it = sharerIndex.find(unit);
    if (it == sharerIndex.end()) {
        ++statSigFalsePositives;
        return nullptr;
    }
    ++statIndexHits;
    return &it->second;
}

std::uint32_t
ConflictDetector::indexedReaders(const HtmContext& ctx, Addr unit) const
{
    auto it = sharerIndex.find(unit);
    if (it == sharerIndex.end())
        return 0;
    for (const SharerSlot& s : it->second.sharers)
        if (s.ctx == &ctx)
            return s.readers;
    return 0;
}

std::uint32_t
ConflictDetector::indexedWriters(const HtmContext& ctx, Addr unit) const
{
    auto it = sharerIndex.find(unit);
    if (it == sharerIndex.end())
        return 0;
    for (const SharerSlot& s : it->second.sharers)
        if (s.ctx == &ctx)
            return s.writers;
    return 0;
}

Cycles
ConflictDetector::broadcastWriteSet(HtmContext& committer,
                                    const std::vector<Addr>& lines)
{
    statBroadcastLines += lines.size();
    for (Addr line : lines) {
        const SharerEntry* e = lookupSharers(line, true, false);
        if (!e)
            continue;
        for (const SharerSlot& s : e->sharers) {
            HtmContext* ctx = s.ctx;
            if (ctx == &committer || !ctx->inTx())
                continue;
            // Only readers are violated: a write-write overlap without
            // a read is serialisable (the later committer's values
            // simply supersede), and word-granular data application
            // keeps disjoint words of a shared line intact.
            std::uint32_t mask = s.readers & ~ctx->validatedLevels();
            if (mask) {
                ++statLazyViolations;
                ctx->raiseViolation(mask, line, committer.cpuId());
            }
        }
    }
    return overflowPenalty();
}

ConflictDetector::CommitYield
ConflictDetector::commitYieldTarget(const HtmContext& committer,
                                    const std::vector<Addr>& lines)
{
    CommitYield out;
    ContentionManager& mgr = contention();
    if (!mgr.mayYieldAtCommit())
        return out;
    for (Addr line : lines) {
        const SharerEntry* e = lookupSharers(line, true, false);
        if (!e)
            continue;
        for (const SharerSlot& s : e->sharers) {
            HtmContext* ctx = s.ctx;
            if (ctx == &committer || !ctx->inTx())
                continue;
            if (!(s.readers & ~ctx->validatedLevels()))
                continue;
            if (mgr.committerYields(committer, *ctx)) {
                tracer->instant(committer.cpuId(),
                                TxTracer::Ev::Arbitration,
                                committer.depth(), line, ctx->cpuId());
                out.yield = true;
                out.peer = ctx->cpuId();
                out.line = line;
                return out;
            }
        }
    }
    return out;
}

void
ConflictDetector::lockLines(const HtmContext& owner,
                            const std::vector<Addr>& lines)
{
    for (Addr line : lines) {
        auto [it, inserted] = lockOwner.emplace(line, Lock{owner.cpuId(), 1});
        if (!inserted) {
            if (it->second.owner != owner.cpuId())
                panic("line 0x%llx already locked by cpu%d",
                      static_cast<unsigned long long>(line),
                      it->second.owner);
            ++it->second.count;
        }
    }
}

void
ConflictDetector::unlockLines(const HtmContext& owner,
                              const std::vector<Addr>& lines)
{
    for (Addr line : lines) {
        auto it = lockOwner.find(line);
        if (it == lockOwner.end() || it->second.owner != owner.cpuId())
            panic("unlock of line 0x%llx not held by cpu%d",
                  static_cast<unsigned long long>(line), owner.cpuId());
        if (--it->second.count > 0)
            continue;
        lockOwner.erase(it);
        auto wit = lockWaiters.find(line);
        if (wit != lockWaiters.end()) {
            auto handles = std::move(wit->second);
            lockWaiters.erase(wit);
            for (auto h : handles)
                eq.schedule(1, [h] { h.resume(); });
        }
    }
}

bool
ConflictDetector::lockedByOther(const HtmContext& me, Addr line) const
{
    auto it = lockOwner.find(line);
    return it != lockOwner.end() && it->second.owner != me.cpuId();
}

bool
ConflictDetector::anyLockedByOther(const HtmContext& me,
                                   const std::vector<Addr>& lines) const
{
    for (Addr line : lines)
        if (lockedByOther(me, line))
            return true;
    return false;
}

SimTask
ConflictDetector::waitUnlocked(const HtmContext& me, Addr line)
{
    if (!lockedByOther(me, line))
        co_return;
    // One stall event per initial park, however many spurious re-wakes
    // the unlock/relock races deliver before the line is really free.
    ++statLockStalls;
    const Tick stallStart = eq.curTick();
    while (lockedByOther(me, line))
        co_await LockWait{*this, line};
    tracer->span(me.cpuId(), TxTracer::Ev::LockStall, stallStart,
                 eq.curTick() - stallStart);
}

ConflictDetector::Verdict
ConflictDetector::eagerCheck(HtmContext& requester, Addr line,
                             bool is_write, CpuId* conflict_peer)
{
    const SharerEntry* e = lookupSharers(line, is_write, true);
    if (!e)
        return Verdict::Proceed;
    ContentionManager& mgr = contention();
    for (const SharerSlot& s : e->sharers) {
        HtmContext* ctx = s.ctx;
        if (ctx == &requester || !ctx->inTx())
            continue;
        std::uint32_t writerMask = s.writers;
        std::uint32_t mask = writerMask;
        if (is_write)
            mask |= s.readers;
        if (!mask)
            continue;
        ++statEagerConflicts;

        // Physical constraints come first; the contention manager only
        // decides within them.
        const bool victimValidated = (mask & ctx->validatedLevels()) != 0;
        bool requesterLoses = victimValidated;
        if (writerMask != 0 &&
            ctx->config().version == VersionMode::UndoLog) {
            // An undo-log victim's speculative data sits IN memory: the
            // requester must not touch the line until the victim
            // resolves (it backs off and retries). To avoid deadlock
            // through nesting (a requester retrying an inner
            // transaction while holding outer-level lines the victim
            // wants), a SENIOR requester also evicts the junior holder.
            // Every policy's eviction rule is a strict total priority
            // order — the most-senior transaction is never evicted, so
            // the system always makes progress (LogTM's possible-cycle/
            // abort-younger policy).
            requesterLoses = true;
            const bool evictVictim =
                !victimValidated && requester.inTx() &&
                mgr.evictInPlaceVictim(requester, *ctx);
            if (evictVictim) {
                tracer->instant(ctx->cpuId(), TxTracer::Ev::Arbitration,
                                ctx->depth(), line, requester.cpuId());
                ctx->raiseViolation(mask & ~ctx->validatedLevels(), line,
                                    requester.cpuId());
            }
        }
        if (!requesterLoses && requester.inTx())
            requesterLoses = mgr.requesterLoses(requester, *ctx);

        if (requesterLoses) {
            ++statSelfViolations;
            tracer->instant(requester.cpuId(), TxTracer::Ev::Arbitration,
                            requester.depth(), line, ctx->cpuId());
            if (conflict_peer)
                *conflict_peer = ctx->cpuId();
            return Verdict::SelfViolate;
        }
        ctx->raiseViolation(mask & ~ctx->validatedLevels(), line,
                            requester.cpuId());
    }
    return Verdict::Proceed;
}

void
ConflictDetector::nonTxStore(CpuId cpu, Addr line)
{
    const SharerEntry* e = lookupSharers(line, true, true);
    if (!e)
        return;
    for (const SharerSlot& s : e->sharers) {
        HtmContext* ctx = s.ctx;
        if (ctx->cpuId() == cpu || !ctx->inTx())
            continue;
        std::uint32_t mask = (s.readers | s.writers) &
                             ~ctx->validatedLevels();
        if (mask) {
            ++statStrongAtomicityViolations;
            ctx->raiseViolation(mask, line, cpu);
        }
    }
}

Word
ConflictDetector::resolveNonTxLoad(CpuId cpu, Addr word_addr,
                                   Word mem_value) const
{
    // Strong atomicity for loads under in-place (undo-log) versioning:
    // a non-transactional reader must observe the committed value, not
    // a speculative write sitting in memory. The oldest undo entry
    // holds exactly that value. An in-place writer necessarily holds
    // the word's track unit in its write-set, so the sharer index
    // narrows the scan to the unit's writers.
    if (ctxs.empty())
        return mem_value;
    const SharerEntry* e =
        lookupSharers(ctxs.front()->trackUnit(word_addr), false, true);
    if (!e)
        return mem_value;
    for (const SharerSlot& s : e->sharers) {
        if (s.ctx->cpuId() == cpu || !s.writers)
            continue;
        if (s.ctx->wroteWordInPlace(word_addr))
            return s.ctx->oldestUndoValue(word_addr);
    }
    return mem_value;
}

void
ConflictDetector::patchInPlaceWriters(CpuId cpu, Addr line_addr,
                                      Addr word_addr, Word value)
{
    // Strong atomicity for stores over in-place speculative data: the
    // violated writer's eventual rollback must restore OUR value, and
    // its read/write sets were already violated via nonTxStore().
    const SharerEntry* e = lookupSharers(line_addr, false, true);
    if (!e)
        return;
    for (const SharerSlot& s : e->sharers) {
        HtmContext* ctx = s.ctx;
        if (ctx->cpuId() == cpu || !s.writers)
            continue;
        if (ctx->config().version == VersionMode::UndoLog && ctx->inTx())
            ctx->patchUndoEntries(word_addr, value);
    }
}

bool
ConflictDetector::validatedPeerBlocks(CpuId cpu, Addr unit,
                                      bool is_store) const
{
    const SharerEntry* e = lookupSharers(unit, is_store, true);
    if (!e)
        return false;
    for (const SharerSlot& s : e->sharers) {
        if (s.ctx->cpuId() == cpu || !s.ctx->inTx())
            continue;
        std::uint32_t mask = s.writers | (is_store ? s.readers : 0);
        if (mask & s.ctx->validatedLevels())
            return true;
    }
    return false;
}

bool
ConflictDetector::nonTxLoadMustStall(CpuId cpu, Addr line) const
{
    auto it = lockOwner.find(line);
    return it != lockOwner.end() && it->second.owner != cpu;
}

Cycles
ConflictDetector::overflowPenalty() const
{
    // Audit note (PR 8): the sharer-index rewrite left this charged on
    // both conflict paths. Eager mode charges it in Cpu::load/store on
    // every first access to a unit, before eagerCheck runs — so the
    // sig_filtered early-out inside lookupSharers cannot bypass it.
    // Lazy mode charges it at the tail of broadcastWriteSet regardless
    // of how many lines the filter skipped. What was missing was any
    // accounting: overflow consults were invisible in the stats dump.
    Cycles penalty = 0;
    for (const HtmContext* ctx : ctxs) {
        if (ctx->overflowed()) {
            ++statOverflowChecks;
            penalty += ctx->config().overflowCheckPenalty;
        }
    }
    return penalty;
}

} // namespace tmsim
