#include "htm/conflict_detector.hh"

#include "sim/logging.hh"

namespace tmsim {

ConflictDetector::ConflictDetector(EventQueue& eq_, StatsRegistry& stats)
    : eq(eq_),
      statBroadcastLines(stats.counter("htm.broadcast_lines")),
      statLazyViolations(stats.counter("htm.lazy_violations")),
      statEagerConflicts(stats.counter("htm.eager_conflicts")),
      statSelfViolations(stats.counter("htm.self_violations")),
      statLockStalls(stats.counter("htm.lock_stalls")),
      statStrongAtomicityViolations(
          stats.counter("htm.strong_atomicity_violations"))
{
}

void
ConflictDetector::addContext(HtmContext* ctx)
{
    ctxs.push_back(ctx);
}

Cycles
ConflictDetector::broadcastWriteSet(HtmContext& committer,
                                    const std::vector<Addr>& lines)
{
    statBroadcastLines += lines.size();
    for (Addr line : lines) {
        for (HtmContext* ctx : ctxs) {
            if (ctx == &committer || !ctx->inTx())
                continue;
            // Only readers are violated: a write-write overlap without
            // a read is serialisable (the later committer's values
            // simply supersede), and word-granular data application
            // keeps disjoint words of a shared line intact.
            std::uint32_t mask = ctx->levelsReading(line);
            mask &= ~ctx->validatedLevels();
            if (mask) {
                ++statLazyViolations;
                ctx->raiseViolation(mask, line);
            }
        }
    }
    return overflowPenalty();
}

void
ConflictDetector::lockLines(const HtmContext& owner,
                            const std::vector<Addr>& lines)
{
    for (Addr line : lines) {
        auto [it, inserted] = lockOwner.emplace(line, Lock{owner.cpuId(), 1});
        if (!inserted) {
            if (it->second.owner != owner.cpuId())
                panic("line 0x%llx already locked by cpu%d",
                      static_cast<unsigned long long>(line),
                      it->second.owner);
            ++it->second.count;
        }
    }
}

void
ConflictDetector::unlockLines(const HtmContext& owner,
                              const std::vector<Addr>& lines)
{
    for (Addr line : lines) {
        auto it = lockOwner.find(line);
        if (it == lockOwner.end() || it->second.owner != owner.cpuId())
            panic("unlock of line 0x%llx not held by cpu%d",
                  static_cast<unsigned long long>(line), owner.cpuId());
        if (--it->second.count > 0)
            continue;
        lockOwner.erase(it);
        auto wit = lockWaiters.find(line);
        if (wit != lockWaiters.end()) {
            auto handles = std::move(wit->second);
            lockWaiters.erase(wit);
            for (auto h : handles)
                eq.schedule(1, [h] { h.resume(); });
        }
    }
}

bool
ConflictDetector::lockedByOther(const HtmContext& me, Addr line) const
{
    auto it = lockOwner.find(line);
    return it != lockOwner.end() && it->second.owner != me.cpuId();
}

bool
ConflictDetector::anyLockedByOther(const HtmContext& me,
                                   const std::vector<Addr>& lines) const
{
    for (Addr line : lines)
        if (lockedByOther(me, line))
            return true;
    return false;
}

SimTask
ConflictDetector::waitUnlocked(const HtmContext& me, Addr line)
{
    while (lockedByOther(me, line)) {
        ++statLockStalls;
        co_await LockWait{*this, line};
    }
}

ConflictDetector::Verdict
ConflictDetector::eagerCheck(HtmContext& requester, Addr line,
                             bool is_write)
{
    for (HtmContext* ctx : ctxs) {
        if (ctx == &requester || !ctx->inTx())
            continue;
        std::uint32_t writerMask = ctx->levelsWriting(line);
        std::uint32_t mask = writerMask;
        if (is_write)
            mask |= ctx->levelsReading(line);
        if (!mask)
            continue;
        ++statEagerConflicts;

        const bool victimValidated = (mask & ctx->validatedLevels()) != 0;
        bool requesterLoses = victimValidated;
        if (writerMask != 0 &&
            ctx->config().version == VersionMode::UndoLog) {
            // An undo-log victim's speculative data sits IN memory: the
            // requester must not touch the line until the victim
            // resolves (it backs off and retries). To avoid deadlock
            // through nesting (a requester retrying an inner
            // transaction while holding outer-level lines the victim
            // wants), an OLDER requester also evicts the younger
            // holder. Age gives a total priority order — the oldest
            // transaction is never evicted, so the system always makes
            // progress (LogTM's possible-cycle/abort-younger policy).
            requesterLoses = true;
            const bool evictVictim = !victimValidated &&
                                     requester.inTx() &&
                                     requester.age() < ctx->age();
            if (evictVictim)
                ctx->raiseViolation(mask & ~ctx->validatedLevels(), line);
        }
        if (!requesterLoses &&
            requester.config().policy == ConflictPolicy::OlderWins) {
            // The older transaction (earlier outermost begin) wins.
            requesterLoses =
                requester.inTx() && ctx->age() <= requester.age();
        }

        if (requesterLoses) {
            ++statSelfViolations;
            return Verdict::SelfViolate;
        }
        ctx->raiseViolation(mask & ~ctx->validatedLevels(), line);
    }
    return Verdict::Proceed;
}

void
ConflictDetector::nonTxStore(CpuId cpu, Addr line)
{
    for (HtmContext* ctx : ctxs) {
        if (ctx->cpuId() == cpu || !ctx->inTx())
            continue;
        std::uint32_t mask =
            ctx->levelsReading(line) | ctx->levelsWriting(line);
        mask &= ~ctx->validatedLevels();
        if (mask) {
            ++statStrongAtomicityViolations;
            ctx->raiseViolation(mask, line);
        }
    }
}

Word
ConflictDetector::resolveNonTxLoad(CpuId cpu, Addr word_addr,
                                   Word mem_value) const
{
    // Strong atomicity for loads under in-place (undo-log) versioning:
    // a non-transactional reader must observe the committed value, not
    // a speculative write sitting in memory. The oldest undo entry
    // holds exactly that value.
    for (const HtmContext* ctx : ctxs) {
        if (ctx->cpuId() == cpu)
            continue;
        if (ctx->wroteWordInPlace(word_addr))
            return ctx->oldestUndoValue(word_addr);
    }
    return mem_value;
}

void
ConflictDetector::patchInPlaceWriters(CpuId cpu, Addr line_addr,
                                      Addr word_addr, Word value)
{
    // Strong atomicity for stores over in-place speculative data: the
    // violated writer's eventual rollback must restore OUR value, and
    // its read/write sets were already violated via nonTxStore().
    for (HtmContext* ctx : ctxs) {
        if (ctx->cpuId() == cpu)
            continue;
        if (ctx->config().version == VersionMode::UndoLog &&
            ctx->inTx() &&
            (ctx->levelsWriting(line_addr) != 0)) {
            ctx->patchUndoEntries(word_addr, value);
        }
    }
}

bool
ConflictDetector::nonTxLoadMustStall(CpuId cpu, Addr line) const
{
    auto it = lockOwner.find(line);
    return it != lockOwner.end() && it->second.owner != cpu;
}

Cycles
ConflictDetector::overflowPenalty() const
{
    Cycles penalty = 0;
    for (const HtmContext* ctx : ctxs)
        if (ctx->overflowed())
            penalty += ctx->config().overflowCheckPenalty;
    return penalty;
}

} // namespace tmsim
