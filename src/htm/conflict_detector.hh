/**
 * @file
 * Chip-wide conflict coordination between HTM contexts.
 *
 * Implements both conflict-detection styles of the paper:
 *  - Lazy (TCC): validate-time write-set broadcast that violates every
 *    active reader, plus a line-lock table that pins a validated
 *    transaction's write-set until xcommit so late accessors stall
 *    instead of reading soon-to-be-overwritten data.
 *  - Eager (UTM/LogTM): access-time checks with requester-wins or
 *    older-wins resolution.
 *
 * Also provides strong atomicity for non-transactional stores.
 *
 * Conflict queries are served from an inverted sharer index
 * (track-unit -> per-CPU reader/writer level-masks, kept in sync via
 * SharerIndexListener callbacks from every context) fronted by
 * chip-wide Bloom signatures, so each query costs O(actual sharers)
 * instead of O(all contexts x nesting depth).
 */

#ifndef TMSIM_HTM_CONFLICT_DETECTOR_HH
#define TMSIM_HTM_CONFLICT_DETECTOR_HH

#include <coroutine>
#include <memory>
#include <unordered_map>
#include <vector>

#include "htm/contention.hh"
#include "htm/htm_context.hh"
#include "htm/signature.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace tmsim {

class ConflictDetector : public SharerIndexListener
{
  public:
    ConflictDetector(EventQueue& eq, StatsRegistry& stats);

    /** Register a per-CPU context (called by the Machine at build).
     *  Contexts must share conflict-tracking granularity and line
     *  size; they register this detector as their sharer listener. */
    void addContext(HtmContext* ctx);

    size_t numContexts() const { return ctxs.size(); }

    /** SharerIndexListener: a context's aggregate masks for @p unit
     *  changed; mirror them into the inverted index. */
    void onSharerUpdate(HtmContext* ctx, Addr unit, std::uint32_t readers,
                        std::uint32_t writers) override;

    /** Point lock-stall span emission at @p t (the Machine's tracer). */
    void setTracer(TxTracer* t) { tracer = t; }

    // --- contention management ---

    /**
     * The chip-wide contention manager. Created from the first
     * registered context's configuration (addContext); before any
     * context exists, a default Requester manager is materialised so
     * raw users never see a null.
     */
    ContentionManager& contention();

    /** Software abandoned @p cpu's attempt sequence (voluntary abort
     *  that will not retry, or retry budget exhausted): drop its
     *  fairness record so stale seniority/karma cannot leak into the
     *  next, unrelated transaction. */
    void noteSequenceAbandoned(CpuId cpu);

    /** Outcome of the lazy commit-arbitration query. */
    struct CommitYield
    {
        bool yield = false;
        CpuId peer = -1;
        Addr line = invalidAddr;
    };

    /**
     * Lazy commit arbitration: should @p committer, already holding the
     * commit token, surrender its slot instead of violating one of the
     * active readers of @p lines (Hybrid's must-win escalation)? Pure
     * query — no violation is raised; the caller self-violates and
     * releases the token.
     */
    CommitYield commitYieldTarget(const HtmContext& committer,
                                  const std::vector<Addr>& lines);

    // --- lazy protocol ---

    /**
     * Validate-time broadcast of @p committer's top-level write-set:
     * every other context actively reading one of the lines is violated
     * (validated levels are never violated; they are serialised before
     * the committer).
     * @return modelled extra check cost for overflowed contexts.
     */
    Cycles broadcastWriteSet(HtmContext& committer,
                             const std::vector<Addr>& lines);

    /** Pin @p owner's validated write-set lines until unlock. */
    void lockLines(const HtmContext& owner, const std::vector<Addr>& lines);

    /** Release pinned lines and wake every stalled accessor. */
    void unlockLines(const HtmContext& owner,
                     const std::vector<Addr>& lines);

    /** True if @p line is pinned by a context other than @p me. */
    bool lockedByOther(const HtmContext& me, Addr line) const;

    /** True if any of @p lines is pinned by a context other than @p me. */
    bool anyLockedByOther(const HtmContext& me,
                          const std::vector<Addr>& lines) const;

    /** Park until @p line is no longer pinned by somebody else. */
    SimTask waitUnlocked(const HtmContext& me, Addr line);

    // --- eager protocol ---

    enum class Verdict
    {
        Proceed,
        SelfViolate,
    };

    /**
     * Access-time conflict check for @p requester touching @p line.
     * Violates losing contexts; returns SelfViolate when the requester
     * must abort instead (validated opponent, or older-wins policy).
     * When @p conflict_peer is non-null it receives the CPU id of the
     * opponent that decided a SelfViolate verdict (untouched
     * otherwise), so the caller can attribute the self-violation.
     */
    Verdict eagerCheck(HtmContext& requester, Addr line, bool is_write,
                       CpuId* conflict_peer = nullptr);

    // --- strong atomicity ---

    /**
     * A non-transactional store on @p cpu to @p line: violate every
     * active transaction speculating on the line.
     */
    void nonTxStore(CpuId cpu, Addr line);

    /**
     * A non-transactional load: nothing to violate, but the caller must
     * stall on pinned lines; exposed for symmetry/tests.
     */
    bool nonTxLoadMustStall(CpuId cpu, Addr line) const;

    /**
     * True if a context other than @p cpu has a Validated (committing)
     * level whose write-set — or, for a store, read-set too — contains
     * @p unit. A validated transaction is already serialised; a
     * non-transactional access that would conflict with its sets must
     * stall until it commits, rather than read data the commit is about
     * to replace or clobber a value the committer depends on. Lazy
     * mode's line locks only pin the write-set; this also covers the
     * validated read-set and the eager validate-to-commit window.
     */
    bool validatedPeerBlocks(CpuId cpu, Addr unit, bool is_store) const;

    /**
     * Strong-atomicity value resolution for a non-transactional load:
     * if another context holds an uncommitted in-place (undo-log)
     * write of the word, return the committed value from its undo log
     * instead of @p mem_value.
     */
    Word resolveNonTxLoad(CpuId cpu, Addr word_addr, Word mem_value) const;

    /**
     * After a non-transactional store over a word speculatively
     * written in place by transactions, patch their undo entries so
     * their rollback restores the non-transactional value.
     */
    void patchInPlaceWriters(CpuId cpu, Addr line_addr, Addr word_addr,
                             Word value);

    /**
     * Extra conflict-check latency due to overflowed contexts: one
     * overflowCheckPenalty per context whose overflow structures
     * (evicted lines, or the capacity-spill log) must be consulted.
     * Charged by the CPU on every eager first-access check — before
     * and independent of the signature filter, so the sig_filtered
     * early-out in lookupSharers cannot skip it — and by
     * broadcastWriteSet unconditionally at the end of a lazy commit
     * broadcast. Each consult is counted in `htm.overflow_checks`.
     */
    Cycles overflowPenalty() const;

    // --- sharer-index test hooks ---

    /** Reader/writer level-mask the index records for (@p ctx, @p unit);
     *  must equal the context's brute-force per-level scan. */
    std::uint32_t indexedReaders(const HtmContext& ctx, Addr unit) const;
    std::uint32_t indexedWriters(const HtmContext& ctx, Addr unit) const;

    /** Number of units with at least one sharer (tests/stats). */
    size_t indexedUnitCount() const { return sharerIndex.size(); }

  private:
    /** One context's membership in a unit's sharer list. Entries stay
     *  sorted by CPU id so query iteration order matches the
     *  pre-index full scan exactly. */
    struct SharerSlot
    {
        HtmContext* ctx;
        std::uint32_t readers;
        std::uint32_t writers;
    };

    struct SharerEntry
    {
        std::vector<SharerSlot> sharers;
    };

    /**
     * Signature-then-index probe: returns the sharer list for @p unit,
     * or nullptr when no context can be reading (if @p need_readers)
     * or writing (if @p need_writers) it. Counts the filter stats.
     */
    const SharerEntry* lookupSharers(Addr unit, bool need_readers,
                                     bool need_writers) const;
    struct LockWait
    {
        ConflictDetector& det;
        Addr line;

        bool await_ready() const { return false; }

        void
        await_suspend(std::coroutine_handle<> h) const
        {
            det.lockWaiters[line].push_back(h);
        }

        void await_resume() const {}
    };

    /** A pinned line. The count handles the same CPU validating
     *  nested transactions that both wrote the line (e.g. an open
     *  transaction inside a violation handler of a validated parent). */
    struct Lock
    {
        CpuId owner;
        int count;
    };

    EventQueue& eq;
    StatsRegistry& statsRef;
    std::vector<HtmContext*> ctxs;

    /** Chip-wide contention manager (see contention()). */
    std::unique_ptr<ContentionManager> cm;

    /** Lifecycle-event sink (never null; defaults to TxTracer::nil()). */
    TxTracer* tracer;
    std::unordered_map<Addr, Lock> lockOwner;
    std::unordered_map<Addr, std::vector<std::coroutine_handle<>>>
        lockWaiters;

    /** The inverted index: track-unit -> contexts whose sets contain
     *  it, with their per-level reader/writer masks. */
    std::unordered_map<Addr, SharerEntry> sharerIndex;

    /** Union Bloom signatures over all indexed units; first-line
     *  filter before any index probe. Stale bits (sets shrank) only
     *  cause false positives; both are rebuilt-from-empty whenever the
     *  index empties out. */
    TxSignature globalReadSig;
    TxSignature globalWriteSig;

    StatsRegistry::Counter& statBroadcastLines;
    StatsRegistry::Counter& statLazyViolations;
    StatsRegistry::Counter& statEagerConflicts;
    StatsRegistry::Counter& statSelfViolations;
    StatsRegistry::Counter& statLockStalls;
    StatsRegistry::Counter& statStrongAtomicityViolations;
    StatsRegistry::Counter& statSigFiltered;
    StatsRegistry::Counter& statIndexHits;
    StatsRegistry::Counter& statSigFalsePositives;

    /** Overflow-table consults actually charged (one per overflowed
     *  context per overflowPenalty() assessment; counted through the
     *  registry reference even from const query paths). */
    StatsRegistry::Counter& statOverflowChecks;
};

} // namespace tmsim

#endif // TMSIM_HTM_CONFLICT_DETECTOR_HH
