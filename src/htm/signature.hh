/**
 * @file
 * Bloom signatures over conflict-tracking units, plus the listener
 * interface that keeps the chip-wide sharer index in sync with
 * per-context read/write sets.
 *
 * A signature answers "might this unit be in the set?" with no false
 * negatives: a negative answer lets conflict queries skip every hash
 * probe. Bits are only ever added; stale bits after a set shrinks
 * (release, rollback, commit) merely cause false positives, which the
 * exact map lookup behind the filter resolves. Signatures are cleared
 * wholesale at cheap exact points (context leaves all transactions /
 * the sharer index empties).
 */

#ifndef TMSIM_HTM_SIGNATURE_HH
#define TMSIM_HTM_SIGNATURE_HH

#include <cstdint>
#include <cstring>

#include "sim/types.hh"

namespace tmsim {

/**
 * Fixed-size Bloom filter (2048 bits, two hash functions) with a
 * one-word summary in front: most negative queries are answered by a
 * single 64-bit test without touching the bit array.
 */
class TxSignature
{
  public:
    static constexpr std::size_t numBits = 2048;

    void
    add(Addr unit)
    {
        const std::uint64_t h = mix(unit);
        summary |= 1ull << (h & 63);
        setBit((h >> 6) & (numBits - 1));
        setBit((h >> 17) & (numBits - 1));
    }

    bool
    mayContain(Addr unit) const
    {
        const std::uint64_t h = mix(unit);
        if (!(summary & (1ull << (h & 63))))
            return false;
        return testBit((h >> 6) & (numBits - 1)) &&
               testBit((h >> 17) & (numBits - 1));
    }

    void
    clear()
    {
        summary = 0;
        std::memset(bits, 0, sizeof(bits));
    }

    bool empty() const { return summary == 0; }

  private:
    /** SplitMix64 finaliser: cheap, well-mixed bits from an address. */
    static std::uint64_t
    mix(std::uint64_t x)
    {
        x ^= x >> 30;
        x *= 0xBF58476D1CE4E5B9ull;
        x ^= x >> 27;
        x *= 0x94D049BB133111EBull;
        return x ^ (x >> 31);
    }

    void setBit(std::uint64_t i) { bits[i >> 6] |= 1ull << (i & 63); }

    bool
    testBit(std::uint64_t i) const
    {
        return (bits[i >> 6] >> (i & 63)) & 1;
    }

    std::uint64_t summary = 0;
    std::uint64_t bits[numBits / 64] = {};
};

/**
 * A TxSignature cleared lazily by epoch: bumping the owner's epoch
 * invalidates the signature without touching its bits; the clear is
 * paid only if the signature is used again.
 */
class EpochSignature
{
  public:
    void
    add(std::uint64_t cur_epoch, Addr unit)
    {
        if (epoch != cur_epoch) {
            sig.clear();
            epoch = cur_epoch;
        }
        sig.add(unit);
    }

    bool
    mayContain(std::uint64_t cur_epoch, Addr unit) const
    {
        return epoch == cur_epoch && sig.mayContain(unit);
    }

  private:
    TxSignature sig;
    std::uint64_t epoch = 0;
};

class HtmContext;

/**
 * Receiver of sharer-set updates. Whenever a context's aggregate
 * reader/writer level-masks for a tracking unit change, it reports the
 * new masks here (both zero once the context no longer tracks the
 * unit). The ConflictDetector implements this to maintain its inverted
 * unit -> sharers index.
 */
class SharerIndexListener
{
  public:
    virtual ~SharerIndexListener() = default;

    virtual void onSharerUpdate(HtmContext* ctx, Addr unit,
                                std::uint32_t readers,
                                std::uint32_t writers) = 0;
};

} // namespace tmsim

#endif // TMSIM_HTM_SIGNATURE_HH
