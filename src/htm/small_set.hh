/**
 * @file
 * Inline-capacity flat sets and open-addressed maps keyed by Addr.
 *
 * The transactional hot path inserts into and probes read/write sets
 * on every memory access; production STM runtimes (MiniVector-style
 * read/lock sets) get their speed from keeping those sets flat and
 * allocation-free. The containers here follow that recipe:
 *
 *  - FlatAddrSet<N>: dense insertion-ordered element array with N
 *    entries inline (no heap until the set outgrows them). Membership
 *    is a linear scan while the set is small — a handful of compares
 *    on contiguous memory beats any hash — and an open-addressed
 *    index of element positions once it grows past scanMax.
 *  - FlatAddrMap<V>: the same layout over (Addr, V) entries, used for
 *    the write buffer, the per-unit level-mask aggregates and the
 *    undo-log index.
 *
 * Iteration visits elements in insertion order (erase() swap-removes,
 * so order is only stable for sets that never erase — which is what
 * the write-set order reconstruction in HtmContext relies on).
 * clear() keeps capacity, so long-lived containers stop allocating
 * once warm.
 */

#ifndef TMSIM_HTM_SMALL_SET_HH
#define TMSIM_HTM_SMALL_SET_HH

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace tmsim {

namespace flat_detail {

/** Final mixer of murmur3: full-avalanche 64-bit hash. */
inline std::uint64_t
mixAddr(Addr a)
{
    std::uint64_t x = a;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

constexpr std::uint32_t slotEmpty = 0xffffffffu;
constexpr std::uint32_t slotTomb = 0xfffffffeu;

/** Linear scan below this size; open-addressed index above. */
constexpr size_t scanMax = 16;

/**
 * Open-addressed index mapping Addr -> position in a dense array.
 * The dense array itself stores the keys; the index holds positions
 * only, so rehashing never touches the elements.
 */
class SlotIndex
{
  public:
    bool active() const { return !slots.empty(); }

    void
    reset()
    {
        slots.clear();
        used = 0;
        tombs = 0;
    }

    /** (Re)build for @p n keys produced by @p key_at(i). */
    template <typename KeyAt>
    void
    build(size_t n, KeyAt key_at)
    {
        size_t want = 64;
        while (want < n * 2)
            want <<= 1;
        slots.assign(want, slotEmpty);
        used = n;
        tombs = 0;
        for (size_t i = 0; i < n; ++i)
            place(key_at(i), static_cast<std::uint32_t>(i));
    }

    /** Position of @p addr, or slotEmpty if absent. */
    template <typename KeyAt>
    std::uint32_t
    find(Addr addr, KeyAt key_at) const
    {
        const size_t mask = slots.size() - 1;
        size_t i = mixAddr(addr) & mask;
        for (;;) {
            const std::uint32_t s = slots[i];
            if (s == slotEmpty)
                return slotEmpty;
            if (s != slotTomb && key_at(s) == addr)
                return s;
            i = (i + 1) & mask;
        }
    }

    /** Record @p addr at dense position @p pos (addr must be absent).
     *  Call rehashIfNeeded() with the dense key accessor afterwards. */
    void
    insert(Addr addr, std::uint32_t pos)
    {
        place(addr, pos);
        ++used;
    }

    template <typename KeyAt>
    void
    rehashIfNeeded(size_t n, KeyAt key_at)
    {
        if ((used + tombs) * 4 >= slots.size() * 3)
            build(n, key_at);
    }

    /** Drop @p addr's slot (tombstone). */
    template <typename KeyAt>
    void
    erase(Addr addr, KeyAt key_at)
    {
        const size_t mask = slots.size() - 1;
        size_t i = mixAddr(addr) & mask;
        for (;;) {
            const std::uint32_t s = slots[i];
            if (s == slotEmpty)
                return;
            if (s != slotTomb && key_at(s) == addr) {
                slots[i] = slotTomb;
                --used;
                ++tombs;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /** The key at dense position @p from moved to @p to. */
    template <typename KeyAt>
    void
    moved(Addr addr, std::uint32_t to, KeyAt key_at)
    {
        const size_t mask = slots.size() - 1;
        size_t i = mixAddr(addr) & mask;
        for (;;) {
            const std::uint32_t s = slots[i];
            if (s == slotEmpty)
                return;
            if (s != slotTomb && key_at(s) == addr) {
                slots[i] = to;
                return;
            }
            i = (i + 1) & mask;
        }
    }

  private:
    void
    place(Addr addr, std::uint32_t pos)
    {
        const size_t mask = slots.size() - 1;
        size_t i = mixAddr(addr) & mask;
        while (slots[i] != slotEmpty && slots[i] != slotTomb)
            i = (i + 1) & mask;
        slots[i] = pos;
    }

    std::vector<std::uint32_t> slots;
    size_t used = 0;
    size_t tombs = 0;
};

} // namespace flat_detail

/**
 * A set of addresses with @p InlineN entries of inline storage and
 * insertion-order iteration. See the file comment for the design.
 */
template <size_t InlineN>
class FlatAddrSet
{
  public:
    FlatAddrSet() = default;

    FlatAddrSet(const FlatAddrSet& o) { copyFrom(o); }

    FlatAddrSet(FlatAddrSet&& o) noexcept { moveFrom(o); }

    FlatAddrSet&
    operator=(const FlatAddrSet& o)
    {
        if (this != &o) {
            release();
            copyFrom(o);
        }
        return *this;
    }

    FlatAddrSet&
    operator=(FlatAddrSet&& o) noexcept
    {
        if (this != &o) {
            release();
            moveFrom(o);
        }
        return *this;
    }

    ~FlatAddrSet() { release(); }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    const Addr* begin() const { return data_; }
    const Addr* end() const { return data_ + size_; }

    bool
    contains(Addr a) const
    {
        return findPos(a) != flat_detail::slotEmpty;
    }

    size_t count(Addr a) const { return contains(a) ? 1 : 0; }

    /** @return true if @p a was inserted (false: already present). */
    bool
    insert(Addr a)
    {
        if (findPos(a) != flat_detail::slotEmpty)
            return false;
        if (size_ == cap_)
            grow();
        data_[size_] = a;
        if (index.active()) {
            index.insert(a, static_cast<std::uint32_t>(size_));
            ++size_;
            index.rehashIfNeeded(size_, keyAt());
        } else {
            ++size_;
            if (size_ > flat_detail::scanMax)
                index.build(size_, keyAt());
        }
        return true;
    }

    /** Swap-remove @p a. @return number of elements removed (0/1). */
    size_t
    erase(Addr a)
    {
        const std::uint32_t pos = findPos(a);
        if (pos == flat_detail::slotEmpty)
            return 0;
        if (index.active())
            index.erase(a, keyAt());
        const size_t last = size_ - 1;
        if (pos != last) {
            data_[pos] = data_[last];
            if (index.active())
                index.moved(data_[pos], pos, keyAt());
        }
        size_ = last;
        return 1;
    }

    /** Drop every element; capacity (and heap block) is retained, the
     *  index is rebuilt lazily on the next spill past scanMax. */
    void
    clear()
    {
        size_ = 0;
        index.reset();
    }

  private:
    auto
    keyAt() const
    {
        return [this](std::uint32_t i) { return data_[i]; };
    }

    std::uint32_t
    findPos(Addr a) const
    {
        if (index.active())
            return index.find(a, keyAt());
        for (size_t i = 0; i < size_; ++i)
            if (data_[i] == a)
                return static_cast<std::uint32_t>(i);
        return flat_detail::slotEmpty;
    }

    void
    grow()
    {
        const size_t newCap = cap_ * 2;
        Addr* heap = new Addr[newCap];
        std::memcpy(heap, data_, size_ * sizeof(Addr));
        if (data_ != inline_)
            delete[] data_;
        data_ = heap;
        cap_ = newCap;
    }

    void
    release()
    {
        if (data_ != inline_)
            delete[] data_;
    }

    void
    copyFrom(const FlatAddrSet& o)
    {
        size_ = o.size_;
        if (o.data_ == o.inline_) {
            data_ = inline_;
            cap_ = InlineN;
        } else {
            data_ = new Addr[o.cap_];
            cap_ = o.cap_;
        }
        std::memcpy(data_, o.data_, size_ * sizeof(Addr));
        index = o.index;
    }

    void
    moveFrom(FlatAddrSet& o) noexcept
    {
        size_ = o.size_;
        if (o.data_ == o.inline_) {
            data_ = inline_;
            cap_ = InlineN;
            std::memcpy(inline_, o.inline_, size_ * sizeof(Addr));
        } else {
            data_ = o.data_;
            cap_ = o.cap_;
            o.data_ = o.inline_;
            o.cap_ = InlineN;
        }
        index = std::move(o.index);
        o.size_ = 0;
        o.index.reset();
    }

    Addr inline_[InlineN];
    Addr* data_ = inline_;
    size_t size_ = 0;
    size_t cap_ = InlineN;
    flat_detail::SlotIndex index;
};

/**
 * An open-addressed map from Addr to @p V over a dense entry vector.
 * Same probing and thresholds as FlatAddrSet; entries stay packed, so
 * iteration is a contiguous walk over (Addr, V) pairs.
 */
template <typename V>
class FlatAddrMap
{
  public:
    using Entry = std::pair<Addr, V>;

    size_t size() const { return dense.size(); }
    bool empty() const { return dense.empty(); }

    typename std::vector<Entry>::const_iterator
    begin() const
    {
        return dense.begin();
    }

    typename std::vector<Entry>::const_iterator
    end() const
    {
        return dense.end();
    }

    V*
    find(Addr a)
    {
        const std::uint32_t pos = findPos(a);
        return pos == flat_detail::slotEmpty ? nullptr
                                             : &dense[pos].second;
    }

    const V*
    find(Addr a) const
    {
        return const_cast<FlatAddrMap*>(this)->find(a);
    }

    /** Value for @p a, default-constructing it if absent. */
    V&
    operator[](Addr a)
    {
        const std::uint32_t pos = findPos(a);
        if (pos != flat_detail::slotEmpty)
            return dense[pos].second;
        dense.emplace_back(a, V{});
        if (index.active()) {
            index.insert(a, static_cast<std::uint32_t>(dense.size() - 1));
            index.rehashIfNeeded(dense.size(), keyAt());
        } else if (dense.size() > flat_detail::scanMax) {
            index.build(dense.size(), keyAt());
        }
        return dense.back().second;
    }

    /** Swap-remove @p a. @return number of entries removed (0/1). */
    size_t
    erase(Addr a)
    {
        const std::uint32_t pos = findPos(a);
        if (pos == flat_detail::slotEmpty)
            return 0;
        if (index.active())
            index.erase(a, keyAt());
        const size_t last = dense.size() - 1;
        if (pos != last) {
            dense[pos] = std::move(dense[last]);
            if (index.active())
                index.moved(dense[pos].first, pos, keyAt());
        }
        dense.pop_back();
        return 1;
    }

    void
    clear()
    {
        dense.clear();
        index.reset();
    }

  private:
    auto
    keyAt() const
    {
        return [this](std::uint32_t i) { return dense[i].first; };
    }

    std::uint32_t
    findPos(Addr a) const
    {
        if (index.active())
            return index.find(a, keyAt());
        for (size_t i = 0; i < dense.size(); ++i)
            if (dense[i].first == a)
                return static_cast<std::uint32_t>(i);
        return flat_detail::slotEmpty;
    }

    std::vector<Entry> dense;
    flat_detail::SlotIndex index;
};

} // namespace tmsim

#endif // TMSIM_HTM_SMALL_SET_HH
