#include "htm/htm_config.hh"

namespace tmsim {

const char*
contentionPolicyName(ContentionPolicy p)
{
    switch (p) {
    case ContentionPolicy::Requester: return "requester";
    case ContentionPolicy::Timestamp: return "timestamp";
    case ContentionPolicy::Karma: return "karma";
    case ContentionPolicy::Polite: return "polite";
    case ContentionPolicy::Hybrid: return "hybrid";
    }
    return "?";
}

bool
contentionPolicyFromName(const std::string& s, ContentionPolicy& out)
{
    if (s == "requester")
        out = ContentionPolicy::Requester;
    else if (s == "timestamp")
        out = ContentionPolicy::Timestamp;
    else if (s == "karma")
        out = ContentionPolicy::Karma;
    else if (s == "polite")
        out = ContentionPolicy::Polite;
    else if (s == "hybrid")
        out = ContentionPolicy::Hybrid;
    else
        return false;
    return true;
}

const char*
capacityModeName(CapacityMode m)
{
    switch (m) {
    case CapacityMode::Abort: return "abort";
    case CapacityMode::Overflow: return "overflow";
    }
    return "?";
}

bool
capacityModeFromName(const std::string& s, CapacityMode& out)
{
    if (s == "abort")
        out = CapacityMode::Abort;
    else if (s == "overflow")
        out = CapacityMode::Overflow;
    else
        return false;
    return true;
}

HtmConfig
HtmConfig::paperLazy()
{
    HtmConfig cfg;
    cfg.version = VersionMode::WriteBuffer;
    cfg.conflict = ConflictMode::Lazy;
    cfg.nesting = NestingMode::Full;
    cfg.scheme = NestScheme::Associativity;
    cfg.maxHwLevels = 4;
    cfg.lazyMerge = true;
    return cfg;
}

HtmConfig
HtmConfig::eagerUndoLog()
{
    HtmConfig cfg;
    cfg.version = VersionMode::UndoLog;
    cfg.conflict = ConflictMode::Eager;
    cfg.policy = ConflictPolicy::RequesterWins;
    cfg.nesting = NestingMode::Full;
    cfg.scheme = NestScheme::MultiTracking;
    cfg.maxHwLevels = 4;
    return cfg;
}

HtmConfig
HtmConfig::flattenedBaseline()
{
    HtmConfig cfg = paperLazy();
    cfg.nesting = NestingMode::Flatten;
    return cfg;
}

std::string
HtmConfig::describe() const
{
    std::string s;
    s += version == VersionMode::WriteBuffer ? "write-buffer" : "undo-log";
    s += conflict == ConflictMode::Lazy ? "/lazy" : "/eager";
    if (conflict == ConflictMode::Eager) {
        s += policy == ConflictPolicy::RequesterWins ? "(requester-wins)"
                                                     : "(older-wins)";
    }
    s += nesting == NestingMode::Full ? "/nested" : "/flattened";
    s += scheme == NestScheme::Associativity ? "/assoc" : "/multitrack";
    if (contention != ContentionPolicy::Requester) {
        s += "/cm=";
        s += contentionPolicyName(contention);
    }
    if (boundedCapacity()) {
        s += "/cap=r" + std::to_string(rsetCap) + "w" +
             std::to_string(wsetCap) + ":";
        s += capacityModeName(capacityMode);
    }
    return s;
}

} // namespace tmsim
