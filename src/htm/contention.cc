#include "htm/contention.hh"

#include <algorithm>

#include "htm/htm_context.hh"

namespace tmsim {

const ContentionManager::Rec ContentionManager::emptyRec{};

ContentionManager::ContentionManager(const HtmConfig& cfg,
                                     StatsRegistry& stats)
    : pol(cfg.effectiveContention()),
      starveK(std::max(cfg.starvationThreshold, 1)),
      distConsecAborts(stats.distribution("htm.consec_aborts")),
      distConsecAtCommit(stats.distribution("htm.consec_aborts_at_commit")),
      statEscalations(stats.counter("htm.cm.escalations"))
{
}

const ContentionManager::Rec&
ContentionManager::rec(CpuId cpu) const
{
    if (static_cast<size_t>(cpu) >= recs.size())
        return emptyRec;
    return recs[cpu];
}

ContentionManager::Rec&
ContentionManager::recMut(CpuId cpu)
{
    if (static_cast<size_t>(cpu) >= recs.size())
        recs.resize(cpu + 1);
    return recs[cpu];
}

void
ContentionManager::onOuterBegin(CpuId cpu, Tick now)
{
    Rec& r = recMut(cpu);
    if (!r.active) {
        r.active = true;
        r.firstBegin = now;
    }
    // else: an involuntary restart of the same attempt sequence — the
    // original firstBegin (and karma/consec/escal) is retained, which
    // is what keeps a repeatedly-violated old transaction senior.
}

void
ContentionManager::onTrackedAccess(CpuId cpu)
{
    Rec& r = recMut(cpu);
    if (r.active)
        ++r.karmaVal;
}

void
ContentionManager::onOuterCommit(CpuId cpu)
{
    Rec& r = recMut(cpu);
    distConsecAtCommit.sample(static_cast<std::uint64_t>(r.consec));
    r = Rec{};
}

void
ContentionManager::onOuterRollback(CpuId cpu)
{
    Rec& r = recMut(cpu);
    ++r.consec;
    distConsecAborts.sample(static_cast<std::uint64_t>(r.consec));
    if (pol == ContentionPolicy::Hybrid && !r.escal &&
        r.consec >= starveK) {
        r.escal = true;
        ++statEscalations;
    }
}

void
ContentionManager::onSequenceAbandoned(CpuId cpu)
{
    recMut(cpu) = Rec{};
}

Tick
ContentionManager::effectiveAge(CpuId cpu, Tick fallback) const
{
    const Rec& r = rec(cpu);
    return r.active ? r.firstBegin : fallback;
}

std::uint64_t
ContentionManager::karma(CpuId cpu) const
{
    return rec(cpu).karmaVal;
}

int
ContentionManager::consecutiveAborts(CpuId cpu) const
{
    return rec(cpu).consec;
}

bool
ContentionManager::escalated(CpuId cpu) const
{
    return rec(cpu).escal;
}

bool
ContentionManager::anyEscalatedBut(CpuId cpu) const
{
    for (size_t i = 0; i < recs.size(); ++i) {
        if (static_cast<CpuId>(i) != cpu && recs[i].escal)
            return true;
    }
    return false;
}

bool
ContentionManager::seniorTo(const HtmContext& a, const HtmContext& b) const
{
    const Tick ageA = effectiveAge(a.cpuId(), a.age());
    const Tick ageB = effectiveAge(b.cpuId(), b.age());
    if (ageA != ageB)
        return ageA < ageB;
    return a.cpuId() < b.cpuId();
}

bool
ContentionManager::karmaSenior(const HtmContext& a,
                               const HtmContext& b) const
{
    const std::uint64_t ka = karma(a.cpuId());
    const std::uint64_t kb = karma(b.cpuId());
    if (ka != kb)
        return ka > kb;
    return seniorTo(a, b);
}

Cycles
ContentionManager::backoffWindow(int retries)
{
    const int shift = std::min(std::max(retries, 1) - 1, 7);
    return Cycles{8} << shift;
}

// --- default (Requester) policy ------------------------------------------
//
// Legacy behaviour: access-time conflicts violate the holder, and the
// undo-log in-place writer is evicted only by a senior requester (the
// LogTM abort-younger rule, now with a deterministic tiebreak).

bool
ContentionManager::requesterLoses(const HtmContext&, const HtmContext&) const
{
    return false;
}

bool
ContentionManager::evictInPlaceVictim(const HtmContext& requester,
                                      const HtmContext& victim) const
{
    return seniorTo(requester, victim);
}

bool
ContentionManager::committerYields(const HtmContext&,
                                   const HtmContext&) const
{
    return false;
}

Cycles
ContentionManager::backoffDelay(CpuId, int retries, bool eager,
                                Rng& rng) const
{
    if (!eager) {
        // Lazy conflicts were decided at a serialization point; only
        // symmetry-breaking jitter is needed.
        return rng.below(4);
    }
    const Cycles w = backoffWindow(retries);
    return w + rng.below(w);
}

namespace {

/** Earlier retained first-begin tick wins every arbitration. */
class TimestampManager : public ContentionManager
{
  public:
    using ContentionManager::ContentionManager;

    bool
    requesterLoses(const HtmContext& requester,
                   const HtmContext& victim) const override
    {
        return seniorTo(victim, requester);
    }
};

/** Accumulated tracked accesses (retained across aborts) win; ties
 *  fall back to timestamp order. */
class KarmaManager : public ContentionManager
{
  public:
    using ContentionManager::ContentionManager;

    bool
    requesterLoses(const HtmContext& requester,
                   const HtmContext& victim) const override
    {
        return karmaSenior(victim, requester);
    }

    bool
    evictInPlaceVictim(const HtmContext& requester,
                       const HtmContext& victim) const override
    {
        return karmaSenior(requester, victim);
    }
};

/** The requester always defers to the current holder; progress comes
 *  from the randomized exponential backoff between retries. */
class PoliteManager : public ContentionManager
{
  public:
    using ContentionManager::ContentionManager;

    bool
    requesterLoses(const HtmContext&, const HtmContext&) const override
    {
        return true;
    }

    // evictInPlaceVictim keeps the base seniority rule: the undo-log
    // eviction is a liveness mechanism (it breaks nesting deadlocks),
    // not an arbitration preference, so even Polite retains it.

    Cycles
    backoffDelay(CpuId, int retries, bool, Rng& rng) const override
    {
        // Fully randomized: uniform over (0, 2*window], so same-streak
        // peers decorrelate even at the window cap.
        const Cycles w = backoffWindow(retries);
        return Cycles{1} + rng.below(2 * w);
    }
};

/** Karma plus the starvation guard: a transaction past K consecutive
 *  aborts escalates to must-win seniority until it commits. */
class HybridManager : public ContentionManager
{
  public:
    using ContentionManager::ContentionManager;

    bool
    requesterLoses(const HtmContext& requester,
                   const HtmContext& victim) const override
    {
        const bool er = escalated(requester.cpuId());
        const bool ev = escalated(victim.cpuId());
        if (er != ev)
            return ev;
        return karmaSenior(victim, requester);
    }

    bool
    evictInPlaceVictim(const HtmContext& requester,
                       const HtmContext& victim) const override
    {
        const bool er = escalated(requester.cpuId());
        const bool ev = escalated(victim.cpuId());
        if (er != ev)
            return er;
        return karmaSenior(requester, victim);
    }

    bool mayYieldAtCommit() const override { return true; }

    bool
    committerYields(const HtmContext& committer,
                    const HtmContext& reader) const override
    {
        return escalated(reader.cpuId()) &&
               !escalated(committer.cpuId());
    }

    Cycles
    backoffDelay(CpuId cpu, int retries, bool eager,
                 Rng& rng) const override
    {
        // An escalated transaction wins every arbitration, so make it
        // retry almost immediately instead of sitting out a window it
        // no longer needs.
        if (escalated(cpu))
            return rng.below(4);
        // While a peer is starving under lazy conflict detection,
        // restarting transactions — which have zero investment to
        // lose — stand aside for a while instead of racing straight
        // back onto the hot data. Combined with commit yielding this
        // clears a window wide enough for the escalated transaction
        // to finish. Eager mode needs no such window: the escalated
        // transaction already wins every access-time arbitration.
        if (!eager && anyEscalatedBut(cpu))
            return Cycles{32} + rng.below(32);
        return ContentionManager::backoffDelay(cpu, retries, eager, rng);
    }
};

} // namespace

std::unique_ptr<ContentionManager>
makeContentionManager(const HtmConfig& cfg, StatsRegistry& stats)
{
    switch (cfg.effectiveContention()) {
    case ContentionPolicy::Timestamp:
        return std::make_unique<TimestampManager>(cfg, stats);
    case ContentionPolicy::Karma:
        return std::make_unique<KarmaManager>(cfg, stats);
    case ContentionPolicy::Polite:
        return std::make_unique<PoliteManager>(cfg, stats);
    case ContentionPolicy::Hybrid:
        return std::make_unique<HybridManager>(cfg, stats);
    case ContentionPolicy::Requester:
        break;
    }
    return std::make_unique<ContentionManager>(cfg, stats);
}

} // namespace tmsim
