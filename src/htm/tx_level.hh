/**
 * @file
 * Per-nesting-level transactional state: the hardware-tracked portion
 * of a Transaction Control Block (paper figure 2).
 */

#ifndef TMSIM_HTM_TX_LEVEL_HH
#define TMSIM_HTM_TX_LEVEL_HH

#include <vector>

#include "htm/small_set.hh"
#include "sim/types.hh"

namespace tmsim {

/** Closed vs open nesting (xbegin vs xbegin_open). */
enum class TxKind
{
    Closed,
    Open,
};

/** Status field of xstatus. */
enum class TxStatus
{
    Active,
    Validated,
};

/**
 * One active nesting level. The read-set/write-set here are the
 * authoritative line-granularity sets; the cache annotations mirror
 * them for capacity/timing modelling, and HtmContext mirrors them
 * again in per-context unit -> level-mask aggregates (plus Bloom
 * signatures and the detector's sharer index). Mutate the sets only
 * through HtmContext so every mirror stays in sync.
 */
struct TxLevel
{
    TxKind kind = TxKind::Closed;
    TxStatus status = TxStatus::Active;

    /** Tick of the xbegin that created this level (conflict ages). */
    Tick beginTick = 0;

    /** Line-granularity read and write sets. The read set may drop
     *  lines (release); the write set only ever grows, keeping its
     *  insertion order equal to first-insert order — which is what
     *  the broadcast-order reconstruction below depends on. */
    FlatAddrSet<8> readLines;
    FlatAddrSet<8> writeLines;

    /** Word-granularity speculative data (VersionMode::WriteBuffer). */
    FlatAddrMap<Word> writeBuffer;

    /** Word addresses written at this level (VersionMode::UndoLog;
     *  used for open-nested ancestor patching and broadcasts). */
    FlatAddrSet<8> writtenWords;

    /**
     * Cached write-set broadcast order. Historically the write set
     * was a std::unordered_set and its iteration order — a function
     * of the first-insert order of its unique elements — leaked into
     * observable timing via the commit broadcast. HtmContext rebuilds
     * that exact order from writeLines' insertion order on demand
     * (see writeLinesOrdered); valid is cleared on every insert.
     */
    mutable std::vector<Addr> wlShadow;
    mutable bool wlShadowValid = false;

    /** First undo-log index belonging to this level. */
    size_t undoBase = 0;

    /** Flattening-mode subsumption depth riding on this level. */
    int flattenDepth = 0;

    /** Cheap size accessors used for commit/merge cost modelling. */
    size_t readSetSize() const { return readLines.size(); }
    size_t writeSetSize() const { return writeLines.size(); }

    /** Lines of this level's sets sitting past a per-level cap, i.e.
     *  the level's contribution to the software overflow log under
     *  CapacityMode::Overflow. Derived from the authoritative set
     *  sizes, so it survives merges, releases, and partial rollback
     *  without separate bookkeeping (cap 0 = unbounded = no spill). */
    size_t
    spilledLines(int rset_cap, int wset_cap) const
    {
        size_t n = 0;
        if (rset_cap > 0 && readLines.size() > static_cast<size_t>(rset_cap))
            n += readLines.size() - static_cast<size_t>(rset_cap);
        if (wset_cap > 0 &&
            writeLines.size() > static_cast<size_t>(wset_cap))
            n += writeLines.size() - static_cast<size_t>(wset_cap);
        return n;
    }

    /** Discard all tracked sets and speculative data (xrwsetclear).
     *  Callers must first detach the level from the aggregates (see
     *  HtmContext::clearTopSets). */
    void
    clearSets()
    {
        readLines.clear();
        writeLines.clear();
        writeBuffer.clear();
        writtenWords.clear();
        wlShadow.clear();
        wlShadowValid = false;
    }
};

} // namespace tmsim

#endif // TMSIM_HTM_TX_LEVEL_HH
