/**
 * @file
 * Pluggable contention management.
 *
 * The paper deliberately leaves contention policy to software
 * (section 3.2: violation handlers exist so "software can implement
 * arbitrary policies"); the simulator's hardware layer therefore
 * funnels every policy decision through one ContentionManager object
 * instead of hardcoding an arbitration rule and a backoff curve:
 *
 *  - eager arbitration: ConflictDetector::eagerCheck asks who loses an
 *    access-time conflict (requesterLoses) and whether an in-place
 *    (undo-log) holder should be evicted while the requester stalls
 *    (evictInPlaceVictim);
 *  - lazy commit arbitration: Cpu::xvalidate asks, once the commit
 *    token is held, whether the committer should yield its slot to a
 *    starving reader instead of violating it (commitYieldPeer);
 *  - restart scheduling: TxThread::backoff asks for the delay before
 *    re-executing an aborted transaction (backoffDelay).
 *
 * The manager also owns the per-CPU fairness bookkeeping that feeds
 * the policies: the first-begin tick of the current attempt sequence
 * (retained across involuntary restarts so an aborted transaction
 * keeps its seniority; reset on commit or when software abandons the
 * sequence), accumulated karma, and the consecutive-abort streak that
 * drives Hybrid's starvation guard — plus the fairness observability
 * stats (consecutive-abort distributions, escalation counter).
 *
 * Policies only ever choose WHO loses a conflict or WHEN a loser
 * retries; they never suppress a conflict, so serializability is
 * policy-invariant (the differential fuzzer runs every seed under
 * every policy and demands identical verdicts).
 */

#ifndef TMSIM_HTM_CONTENTION_HH
#define TMSIM_HTM_CONTENTION_HH

#include <memory>
#include <vector>

#include "htm/htm_config.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tmsim {

class HtmContext;

class ContentionManager
{
  public:
    ContentionManager(const HtmConfig& cfg, StatsRegistry& stats);
    virtual ~ContentionManager() = default;

    ContentionPolicy policy() const { return pol; }
    int starvationThreshold() const { return starveK; }

    // --- lifecycle hooks (driven by HtmContext and the runtime) ---

    /** Outermost xbegin. Starts a new attempt sequence unless one is
     *  already active (an involuntary restart), in which case the
     *  original first-begin tick is retained. */
    void onOuterBegin(CpuId cpu, Tick now);

    /** A read/write-set insertion by @p cpu (karma accrual). */
    void onTrackedAccess(CpuId cpu);

    /** Outermost commit: the sequence ends; karma, seniority and the
     *  abort streak reset. */
    void onOuterCommit(CpuId cpu);

    /** Outermost rollback (violation or abort unwinding to level 1).
     *  The sequence stays active; the abort streak grows and may trip
     *  Hybrid's starvation escalation. */
    void onOuterRollback(CpuId cpu);

    /** Software abandoned the sequence (voluntary abort that will not
     *  be retried, or retry budget exhausted): forget everything. */
    void onSequenceAbandoned(CpuId cpu);

    // --- fairness state queries ---

    /** First-begin tick of @p cpu's active attempt sequence, or
     *  @p fallback when no sequence is tracked (raw-ISA users). */
    Tick effectiveAge(CpuId cpu, Tick fallback) const;

    std::uint64_t karma(CpuId cpu) const;
    int consecutiveAborts(CpuId cpu) const;

    /** Hybrid starvation guard tripped and not yet released. */
    bool escalated(CpuId cpu) const;

    /**
     * Strict total seniority order: true iff @p a is senior to @p b —
     * earlier retained first-begin tick, ties broken by lower CPU id.
     * Exactly one of seniorTo(a,b) / seniorTo(b,a) holds for a != b,
     * which is what makes same-tick begins livelock-free.
     */
    bool seniorTo(const HtmContext& a, const HtmContext& b) const;

    // --- policy decisions ---

    /**
     * Eager arbitration with no physical constraint in play (victim
     * not validated, no in-place data): does @p requester lose against
     * active victim @p victim and self-violate?
     */
    virtual bool requesterLoses(const HtmContext& requester,
                                const HtmContext& victim) const;

    /**
     * Undo-log special case: the victim's speculative data sits in
     * memory, so the requester stalls regardless; should the holder
     * additionally be evicted so the requester makes progress after
     * its backoff (LogTM's abort-younger)?
     */
    virtual bool evictInPlaceVictim(const HtmContext& requester,
                                    const HtmContext& victim) const;

    /** Cheap guard so the lazy commit path skips the yield scan
     *  entirely for policies that never yield. */
    virtual bool mayYieldAtCommit() const { return false; }

    /**
     * Lazy commit arbitration: @p committer holds the commit token and
     * is about to violate active reader @p reader. Returning true
     * makes the committer abort itself instead (Hybrid's must-win
     * escalation); the reader is untouched.
     */
    virtual bool committerYields(const HtmContext& committer,
                                 const HtmContext& reader) const;

    /**
     * Restart scheduling: cycles to wait before re-executing after the
     * @p retries-th consecutive failure (retries >= 1; 0 is tolerated
     * and treated as 1). @p eager distinguishes the access-time-
     * conflict configs from lazy ones, whose conflicts were decided by
     * a committer and need only symmetry-breaking jitter.
     */
    virtual Cycles backoffDelay(CpuId cpu, int retries, bool eager,
                                Rng& rng) const;

    /**
     * The exponential backoff window for the @p retries-th failure:
     * 8 << min(retries-1, 7) cycles, guarded so retries <= 1 maps to
     * the base window instead of an undefined negative shift.
     */
    static Cycles backoffWindow(int retries);

  protected:
    struct Rec
    {
        bool active = false;
        bool escal = false;
        Tick firstBegin = 0;
        std::uint64_t karmaVal = 0;
        int consec = 0;
    };

    const Rec& rec(CpuId cpu) const;
    Rec& recMut(CpuId cpu);

    ContentionPolicy pol;
    int starveK;

    /** Karma-order comparison: higher karma first, seniority on tie. */
    bool karmaSenior(const HtmContext& a, const HtmContext& b) const;

    /** True if any CPU other than @p cpu is currently escalated. */
    bool anyEscalatedBut(CpuId cpu) const;

  private:
    mutable std::vector<Rec> recs;

    /** Empty record returned for CPUs never seen (raw-ISA tests). */
    static const Rec emptyRec;

    /** Streak length sampled at every outermost rollback: max() is the
     *  worst consecutive-abort run any transaction suffered. */
    StatsRegistry::Distribution& distConsecAborts;
    /** Streak length the eventually-committing attempt had to absorb. */
    StatsRegistry::Distribution& distConsecAtCommit;
    StatsRegistry::Counter& statEscalations;
};

/** Build the manager for @p cfg's effectiveContention() policy. */
std::unique_ptr<ContentionManager>
makeContentionManager(const HtmConfig& cfg, StatsRegistry& stats);

} // namespace tmsim

#endif // TMSIM_HTM_CONTENTION_HH
