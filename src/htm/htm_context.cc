#include "htm/htm_context.hh"

#include <algorithm>
#include <unordered_set>

#include "htm/contention.hh"
#include "sim/logging.hh"
#include "sim/trace.hh"

namespace tmsim {

HtmContext::HtmContext(CpuId id_, const HtmConfig& cfg_, BackingStore& mem_,
                       Cache* l1_, Cache* l2_, StatsRegistry& stats)
    : id(id_),
      cfg(cfg_),
      mem(mem_),
      l1(l1_),
      l2(l2_),
      lineSize(l1_ ? l1_->geometry().lineBytes : 32),
      statBegins(stats.counter(strfmt("cpu%d.htm.begins", id_))),
      statCommits(stats.counter(strfmt("cpu%d.htm.commits", id_))),
      statOpenCommits(stats.counter(strfmt("cpu%d.htm.open_commits", id_))),
      statRollbacks(stats.counter(strfmt("cpu%d.htm.rollbacks", id_))),
      statViolationsRaised(
          stats.counter(strfmt("cpu%d.htm.violations", id_))),
      statSubsumed(stats.counter(strfmt("cpu%d.htm.subsumed_begins", id_))),
      statCapacityAborts(
          stats.counter(strfmt("cpu%d.htm.capacity_aborts", id_))),
      statSigFiltered(stats.counter("htm.sig_filtered")),
      statSigFalsePositives(stats.counter("htm.sig_false_positives")),
      statCapacitySpills(stats.counter("htm.capacity_spills")),
      distRsetAtCommit(stats.distribution("htm.rset_size_at_commit")),
      distWsetAtCommit(stats.distribution("htm.wset_size_at_commit"))
{
    tracer = &TxTracer::nil();
    if (cfg.version == VersionMode::UndoLog &&
        cfg.conflict == ConflictMode::Lazy) {
        fatal("undo-log versioning requires eager conflict detection: "
              "in-place speculative writes need access-time ownership");
    }
}

int
HtmContext::logicalDepth() const
{
    int d = depth();
    for (const auto& lvl : levels)
        d += lvl.flattenDepth;
    return d;
}

Tick
HtmContext::age() const
{
    if (levels.empty())
        panic("age() outside a transaction");
    return levels.front().beginTick;
}

bool
HtmContext::begin(TxKind kind, Tick now)
{
    ++statBegins;
    const bool mustSubsume =
        (cfg.nesting == NestingMode::Flatten && !levels.empty()) ||
        depth() >= cfg.maxHwLevels;

    if (mustSubsume) {
        if (kind == TxKind::Open && cfg.nesting == NestingMode::Full) {
            fatal("open-nested transaction beyond hardware nesting "
                  "depth %d cannot be subsumed", cfg.maxHwLevels);
        }
        ++statSubsumed;
        top().flattenDepth++;
        tracer->instant(id, TxTracer::Ev::SubsumedBegin, depth());
        return false;
    }

    TxLevel lvl;
    lvl.kind = kind;
    lvl.beginTick = now;
    lvl.undoBase = undoLog.size();
    levels.push_back(std::move(lvl));
    if (depth() == 1 && cmgr)
        cmgr->onOuterBegin(id, now);
    tracer->beginTx(id,
                    depth() == 1 ? TxTracer::Ev::TxOuter
                    : kind == TxKind::Open ? TxTracer::Ev::TxOpen
                                           : TxTracer::Ev::TxNested,
                    depth());
    return true;
}

bool
HtmContext::topIsSubsumed() const
{
    return inTx() && top().flattenDepth > 0;
}

void
HtmContext::commitSubsumed()
{
    if (!topIsSubsumed())
        panic("commitSubsumed with no subsumed begin");
    levels.back().flattenDepth--;
}

Word
HtmContext::readVisible(Addr word_addr) const
{
    if (cfg.version == VersionMode::WriteBuffer) {
        for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
            if (const Word* hit = it->writeBuffer.find(word_addr))
                return *hit;
        }
    }
    return mem.read(word_addr);
}

Word
HtmContext::specRead(Addr addr)
{
    if (!inTx())
        panic("specRead outside a transaction");
    Word value = readVisible(addr);
    Addr unit = trackUnit(addr);
    if (top().readLines.insert(unit)) {
        noteReadInsert(unit);
        if (cfg.rsetCap > 0)
            enforceCapacity(false, unit);
    }
    Addr line = lineOf(addr);
    if (l1)
        l1->markRead(line, depth());
    if (l2)
        l2->markRead(line, depth());
    return value;
}

void
HtmContext::specWrite(Addr addr, Word value)
{
    if (!inTx())
        panic("specWrite outside a transaction");
    if (cfg.version == VersionMode::WriteBuffer) {
        top().writeBuffer[addr] = value;
    } else {
        pushUndo(addr);
        mem.write(addr, value);
        if (top().writtenWords.insert(addr)) {
            // Cover the in-place word in the write signature so
            // wroteWordInPlace() gets the same fast-negative filter.
            writeSig.add(sigEpoch, addr);
        }
    }
    Addr unit = trackUnit(addr);
    if (top().writeLines.insert(unit)) {
        top().wlShadowValid = false;
        noteWriteInsert(unit);
        if (cfg.wsetCap > 0)
            enforceCapacity(true, unit);
    }
    Addr line = lineOf(addr);
    if (l1)
        l1->markWrite(line, depth());
    if (l2)
        l2->markWrite(line, depth());
}

Word
HtmContext::immRead(Addr addr) const
{
    return inTx() ? readVisible(addr) : mem.read(addr);
}

void
HtmContext::immWrite(Addr addr, Word value)
{
    if (inTx())
        pushUndo(addr);
    mem.write(addr, value);
}

void
HtmContext::immWriteIdempotent(Addr addr, Word value)
{
    mem.write(addr, value);
}

void
HtmContext::releaseLine(Addr addr)
{
    if (!inTx())
        return;
    Addr unit = trackUnit(addr);
    if (top().readLines.erase(unit))
        noteReadErase(unit);
}

void
HtmContext::notifySharer(Addr unit)
{
    if (sharerListener)
        sharerListener->onSharerUpdate(this, unit, readersOf(unit),
                                       writersOf(unit));
}

void
HtmContext::noteReadInsert(Addr unit)
{
    std::uint32_t& m = aggReaders[unit];
    m |= 1u << (depth() - 1);
    readSig.add(sigEpoch, unit);
    if (cmgr)
        cmgr->onTrackedAccess(id);
    if (sharerListener)
        sharerListener->onSharerUpdate(this, unit, m, writersOf(unit));
}

void
HtmContext::noteWriteInsert(Addr unit)
{
    std::uint32_t& m = aggWriters[unit];
    m |= 1u << (depth() - 1);
    writeSig.add(sigEpoch, unit);
    if (cmgr)
        cmgr->onTrackedAccess(id);
    if (sharerListener)
        sharerListener->onSharerUpdate(this, unit, readersOf(unit), m);
}

void
HtmContext::noteReadErase(Addr unit)
{
    std::uint32_t* m = aggReaders.find(unit);
    if (!m)
        panic("read-aggregate missing unit 0x%llx",
              static_cast<unsigned long long>(unit));
    *m &= ~(1u << (depth() - 1));
    if (*m == 0)
        aggReaders.erase(unit);
    // The signature keeps the stale bit (false positives only).
    notifySharer(unit);
}

void
HtmContext::dropLevelFromAggregates(int lvl)
{
    const TxLevel& t = levels[static_cast<size_t>(lvl - 1)];
    const std::uint32_t bit = 1u << (lvl - 1);
    for (Addr unit : t.readLines) {
        std::uint32_t* m = aggReaders.find(unit);
        *m &= ~bit;
        if (*m == 0)
            aggReaders.erase(unit);
        notifySharer(unit);
    }
    for (Addr unit : t.writeLines) {
        std::uint32_t* m = aggWriters.find(unit);
        *m &= ~bit;
        if (*m == 0)
            aggWriters.erase(unit);
        notifySharer(unit);
    }
}

void
HtmContext::mergeChildAggregates(const TxLevel& child, int child_level)
{
    const std::uint32_t childBit = 1u << (child_level - 1);
    const std::uint32_t parentBit = childBit >> 1;
    for (Addr unit : child.readLines) {
        std::uint32_t& m = aggReaders[unit];
        m = (m & ~childBit) | parentBit;
        notifySharer(unit);
    }
    for (Addr unit : child.writeLines) {
        std::uint32_t& m = aggWriters[unit];
        m = (m & ~childBit) | parentBit;
        notifySharer(unit);
    }
}

void
HtmContext::onAllLevelsGone()
{
    overflowLines = 0;
    validatedMask = 0;
    // Lazy signature clear: both sets are provably empty here, so a
    // new epoch invalidates every stale bit at once.
    ++sigEpoch;
}

std::uint32_t
HtmContext::levelsReading(Addr line) const
{
    if (!readSig.mayContain(sigEpoch, line)) {
        ++statSigFiltered;
        return 0;
    }
    const std::uint32_t* m = aggReaders.find(line);
    if (!m) {
        ++statSigFalsePositives;
        return 0;
    }
    return *m;
}

std::uint32_t
HtmContext::levelsWriting(Addr line) const
{
    if (!writeSig.mayContain(sigEpoch, line)) {
        ++statSigFiltered;
        return 0;
    }
    const std::uint32_t* m = aggWriters.find(line);
    if (!m) {
        ++statSigFalsePositives;
        return 0;
    }
    return *m;
}

std::uint32_t
HtmContext::levelsReadingScan(Addr line) const
{
    std::uint32_t mask = 0;
    for (size_t i = 0; i < levels.size(); ++i)
        if (levels[i].readLines.count(line))
            mask |= 1u << i;
    return mask;
}

std::uint32_t
HtmContext::levelsWritingScan(Addr line) const
{
    std::uint32_t mask = 0;
    for (size_t i = 0; i < levels.size(); ++i)
        if (levels[i].writeLines.count(line))
            mask |= 1u << i;
    return mask;
}

std::uint32_t
HtmContext::validatedLevelsScan() const
{
    std::uint32_t mask = 0;
    for (size_t i = 0; i < levels.size(); ++i)
        if (levels[i].status == TxStatus::Validated)
            mask |= 1u << i;
    return mask;
}

bool
HtmContext::wroteWordInPlace(Addr word_addr) const
{
    if (cfg.version != VersionMode::UndoLog || !inTx())
        return false;
    if (!writeSig.mayContain(sigEpoch, word_addr)) {
        ++statSigFiltered;
        return false;
    }
    for (const auto& lvl : levels)
        if (lvl.writtenWords.contains(word_addr))
            return true;
    return false;
}

Word
HtmContext::oldestUndoValue(Addr word_addr) const
{
    const auto* entries = undoIndex.find(word_addr);
    if (!entries || entries->empty())
        panic("oldestUndoValue: no undo entry for 0x%llx",
              static_cast<unsigned long long>(word_addr));
    return undoLog[entries->front()].oldValue;
}

void
HtmContext::patchUndoEntries(Addr word_addr, Word value)
{
    const auto* entries = undoIndex.find(word_addr);
    if (!entries)
        return;
    for (std::uint32_t i : *entries)
        undoLog[i].oldValue = value;
}

void
HtmContext::setTopValidated()
{
    if (!inTx())
        panic("setTopValidated outside a transaction");
    top().status = TxStatus::Validated;
    validatedMask |= 1u << (depth() - 1);
    tracer->instant(id, TxTracer::Ev::Validated, depth());
}

const std::vector<Addr>&
HtmContext::writeLinesOrdered(const TxLevel& t) const
{
    if (!t.wlShadowValid) {
        t.wlShadow.clear();
        if (t.writeLines.size() <= 1) {
            t.wlShadow.assign(t.writeLines.begin(), t.writeLines.end());
        } else {
            // Replay the unique lines, in first-insert order, through
            // a fresh unordered_set: on a given libstdc++ this yields
            // the exact iteration order the historical unordered_set
            // write set had (range inserts and duplicate inserts do
            // not perturb the final order). Broadcast order — and with
            // it tick-level timing — stays bit-identical to the
            // pre-flat-set implementation.
            std::unordered_set<Addr> shadow;
            for (Addr a : t.writeLines)
                shadow.insert(a);
            t.wlShadow.assign(shadow.begin(), shadow.end());
        }
        t.wlShadowValid = true;
    }
    return t.wlShadow;
}

const std::vector<Addr>&
HtmContext::topWriteLines() const
{
    const std::vector<Addr>& ordered = writeLinesOrdered(top());
    scratchLines.assign(ordered.begin(), ordered.end());
    return scratchLines;
}

const std::vector<std::pair<Addr, Word>>&
HtmContext::topWrittenWords() const
{
    scratchWords.clear();
    if (cfg.version == VersionMode::WriteBuffer) {
        scratchWords.reserve(top().writeBuffer.size());
        scratchWords.assign(top().writeBuffer.begin(),
                            top().writeBuffer.end());
    } else {
        scratchWords.reserve(top().writtenWords.size());
        for (Addr w : top().writtenWords)
            scratchWords.emplace_back(w, mem.read(w));
    }
    return scratchWords;
}

void
HtmContext::clearTopSets()
{
    if (!inTx())
        panic("clearTopSets outside a transaction");
    dropLevelFromAggregates(depth());
    top().clearSets();
}

Cycles
HtmContext::commitClosedTop()
{
    if (depth() < 2)
        panic("commitClosedTop at depth %d", depth());
    const int childLevelNum = depth();
    const std::uint64_t spillBefore =
        cfg.boundedCapacity() ? spilledLineCount() : 0;
    distRsetAtCommit.sample(top().readSetSize());
    distWsetAtCommit.sample(top().writeSetSize());
    tracer->endTx(id, childLevelNum, TxTracer::Outcome::ClosedMerge);
    TxLevel child = std::move(levels.back());
    levels.pop_back();
    TxLevel& parent = levels.back();

    for (Addr a : child.readLines)
        parent.readLines.insert(a);
    // Merge the child's write set in its historical iteration order so
    // the parent's first-insert record — and with it the parent's own
    // broadcast order — matches what range-inserting the child's
    // unordered_set produced (see writeLinesOrdered).
    for (Addr a : writeLinesOrdered(child))
        parent.writeLines.insert(a);
    parent.wlShadowValid = false;
    mergeChildAggregates(child, childLevelNum);
    // The popped child level's Validated bit (if any) no longer exists.
    validatedMask &= ~(1u << (childLevelNum - 1));
    for (const auto& [word, value] : child.writeBuffer)
        parent.writeBuffer[word] = value;
    for (Addr w : child.writtenWords)
        parent.writtenWords.insert(w);
    // Undo-log entries of the child are absorbed by the parent simply
    // because the parent's undoBase already bounds them (paper 6.3.1).

    int childLevel = depth() + 1;
    if (l1)
        l1->mergeLevelDown(childLevel);
    if (l2)
        l2->mergeLevelDown(childLevel);
    // A conflict recorded against the child between its last poll
    // point and this merge now applies to the parent: the stale data
    // just merged into the parent's sets. Transfer the mask bits
    // instead of dropping them.
    {
        const std::uint32_t childBit = 1u << (childLevel - 1);
        const std::uint32_t parentBit = childBit >> 1;
        if (vcurrent & childBit)
            vcurrent = (vcurrent & ~childBit) | parentBit;
        if (vpending & childBit)
            vpending = (vpending & ~childBit) | parentBit;
    }
    // A closed-nested merge can push the parent past its own caps (the
    // merged sets are the union): re-check, counting fresh spills in
    // overflow/virtualised mode or aborting the parent level in abort
    // mode.
    if (cfg.boundedCapacity()) {
        const std::uint64_t spillAfter = spilledLineCount();
        if (spillAfter > spillBefore)
            statCapacitySpills += spillAfter - spillBefore;
        if (!capVirtualized &&
            cfg.capacityMode == CapacityMode::Abort && topOverCap()) {
            raiseCapacityAbort(depth(), invalidAddr);
        }
    }
    ++statCommits;

    if (cfg.lazyMerge)
        return 0;
    return cfg.mergePerLineCycles *
           (child.readSetSize() + child.writeSetSize());
}

Cycles
HtmContext::commitTopToMemory()
{
    if (!inTx())
        panic("commitTopToMemory outside a transaction");
    TxLevel& t = top();
    Cycles cost = 0;

    if (cfg.version == VersionMode::WriteBuffer) {
        for (const auto& [word, value] : t.writeBuffer) {
            mem.write(word, value);
            // Open-nested commit: ancestors holding a speculative
            // version of this word observe the committed value without
            // any change to their read/write sets (paper 4.5).
            for (int i = depth() - 1; i >= 1; --i) {
                auto& buf = levels[static_cast<size_t>(i - 1)].writeBuffer;
                if (Word* hit = buf.find(word))
                    *hit = value;
            }
        }
    } else {
        // Undo-log: memory is already current. For an open-nested
        // commit, patch ancestor undo entries so a later ancestor
        // rollback does not revert this committed update (paper 6.3.1:
        // "requires an expensive search through the undo-log").
        if (depth() > 1) {
            size_t base = t.undoBase;
            for (Addr word : t.writtenWords) {
                Word committed = mem.read(word);
                for (size_t i = 0; i < base; ++i) {
                    ++cost;
                    if (undoLog[i].addr == word)
                        undoLog[i].oldValue = committed;
                }
            }
        }
        truncateUndo(t.undoBase);
    }
    return cost;
}

void
HtmContext::popCommittedTop()
{
    if (!inTx())
        panic("popCommittedTop outside a transaction");
    int lvl = depth();
    distRsetAtCommit.sample(top().readSetSize());
    distWsetAtCommit.sample(top().writeSetSize());
    if (top().kind == TxKind::Open && lvl > 1) {
        ++statOpenCommits;
        tracer->endTx(id, lvl, TxTracer::Outcome::OpenCommit);
    } else {
        ++statCommits;
        tracer->endTx(id, lvl, TxTracer::Outcome::Commit);
    }
    if (l1)
        l1->commitOpenLevel(lvl);
    if (l2)
        l2->commitOpenLevel(lvl);
    clearViolationBits(lvl);
    dropLevelFromAggregates(lvl);
    validatedMask &= ~(1u << (lvl - 1));
    levels.pop_back();
    if (levels.empty()) {
        if (cmgr)
            cmgr->onOuterCommit(id);
        // A committed outermost level ends the virtualised episode;
        // rollbacks deliberately do not (the retried attempt needs the
        // lifted caps to make progress).
        capVirtualized = false;
        onAllLevelsGone();
    }
}

void
HtmContext::rollbackTo(int target)
{
    if (target < 1 || target > depth())
        panic("rollbackTo(%d) with depth %d", target, depth());
    for (int lvl = depth(); lvl >= target; --lvl) {
        TxLevel& t = levels.back();
        // Restore in-place speculative writes (undo-log stores and any
        // imst undo records) in FILO order.
        for (size_t i = undoLog.size(); i > t.undoBase; --i) {
            const UndoEntry& e = undoLog[i - 1];
            mem.write(e.addr, e.oldValue);
        }
        truncateUndo(t.undoBase);
        if (l1)
            l1->clearLevel(lvl);
        if (l2)
            l2->clearLevel(lvl);
        clearViolationBits(lvl);
        dropLevelFromAggregates(lvl);
        validatedMask &= ~(1u << (lvl - 1));
        levels.pop_back();
        ++statRollbacks;
        tracer->endTx(id, lvl, TxTracer::Outcome::Rollback, vaddr);
    }
    maybeReleaseReport();
    if (levels.empty()) {
        // The outermost level rolled back: the attempt sequence stays
        // active (the runtime usually retries), but the abort streak
        // grows and may trip the starvation guard.
        if (cmgr)
            cmgr->onOuterRollback(id);
        onAllLevelsGone();
    }
}

void
HtmContext::raiseViolation(std::uint32_t mask, Addr where, CpuId attacker)
{
    if (mask == 0)
        panic("raiseViolation with empty mask");
    ++statViolationsRaised;
    if (reporting)
        vcurrent |= mask;
    else
        vpending |= mask;
    if (!vheld) {
        vaddr = where;
        vattacker = attacker;
        vheld = true;
    }
    tracer->instant(id, TxTracer::Ev::ViolationRaised,
                    __builtin_ctz(mask) + 1, where, attacker);
    if (violationHook)
        violationHook();
}

bool
HtmContext::returnFromHandler()
{
    reporting = true;
    vcurrent |= vpending;
    vpending = 0;
    maybeReleaseReport();
    return vcurrent != 0;
}

void
HtmContext::clearViolationBits(int lvl)
{
    std::uint32_t bit = 1u << (lvl - 1);
    vcurrent &= ~bit;
    vpending &= ~bit;
    maybeReleaseReport();
}

void
HtmContext::clampMasksToDepth()
{
    if (levels.empty()) {
        vcurrent = 0;
        vpending = 0;
        vheld = false;
        return;
    }
    const std::uint32_t valid = (1u << depth()) - 1;
    if (vcurrent & ~valid)
        vcurrent = (vcurrent & valid) | (1u << (depth() - 1));
    if (vpending & ~valid)
        vpending = (vpending & valid) | (1u << (depth() - 1));
}

void
HtmContext::promotePendingForLevel(int lvl)
{
    std::uint32_t bit = 1u << (lvl - 1);
    if (vpending & bit) {
        vpending &= ~bit;
        vcurrent |= bit;
    }
}

void
HtmContext::setViolationHook(std::function<void()> hook)
{
    violationHook = std::move(hook);
}

void
HtmContext::noteEviction(const EvictInfo& info)
{
    if (!(info.evicted && info.transactional))
        return;
    ++overflowLines;
    // Cache-eviction abort mode: bounded-capacity hardware in Abort
    // mode cannot virtualise an evicted transactional line in place,
    // so the transaction restarts (virtualised). Unbounded configs
    // keep the historical virtualise-silently behaviour.
    if (cfg.boundedCapacity() && cfg.capacityMode == CapacityMode::Abort &&
        !capVirtualized && inTx()) {
        raiseCapacityAbort(depth(), info.lineAddr);
    }
}

std::uint64_t
HtmContext::spilledLineCount() const
{
    if (!cfg.boundedCapacity())
        return 0;
    if (!capVirtualized && cfg.capacityMode != CapacityMode::Overflow)
        return 0;
    std::uint64_t n = 0;
    for (const TxLevel& t : levels)
        n += t.spilledLines(cfg.rsetCap, cfg.wsetCap);
    return n;
}

bool
HtmContext::topOverCap() const
{
    const TxLevel& t = top();
    return (cfg.rsetCap > 0 &&
            t.readSetSize() > static_cast<size_t>(cfg.rsetCap)) ||
           (cfg.wsetCap > 0 &&
            t.writeSetSize() > static_cast<size_t>(cfg.wsetCap));
}

void
HtmContext::enforceCapacity(bool is_write, Addr unit)
{
    const int cap = is_write ? cfg.wsetCap : cfg.rsetCap;
    const size_t size =
        is_write ? top().writeSetSize() : top().readSetSize();
    if (size <= static_cast<size_t>(cap))
        return;
    if (capVirtualized || cfg.capacityMode == CapacityMode::Overflow) {
        // The line just spilled past the cap into the software
        // overflow log; from here on every conflict check against
        // this context pays overflowCheckPenalty (see
        // ConflictDetector::overflowPenalty).
        ++statCapacitySpills;
        return;
    }
    raiseCapacityAbort(depth(), unit);
}

void
HtmContext::raiseCapacityAbort(int lvl, Addr unit)
{
    // Virtualise before restarting: the retried attempt runs with the
    // caps lifted and the overflow penalty charged instead, so a
    // footprint the hardware can never hold cannot livelock the
    // attempt sequence.
    capVirtualized = true;
    capRestartFlag = true;
    ++statCapacityAborts;
    raiseViolation(1u << (lvl - 1), unit, id);
}

bool
HtmContext::takeCapacityRestart()
{
    const bool r = capRestartFlag;
    capRestartFlag = false;
    return r;
}

void
HtmContext::pushUndo(Addr word_addr)
{
    undoIndex[word_addr].push_back(
        static_cast<std::uint32_t>(undoLog.size()));
    undoLog.push_back(UndoEntry{word_addr, mem.read(word_addr)});
}

void
HtmContext::truncateUndo(size_t new_size)
{
    while (undoLog.size() > new_size) {
        const Addr word = undoLog.back().addr;
        auto* entries = undoIndex.find(word);
        // The newest entry for a word is necessarily the last index in
        // its per-word list.
        entries->pop_back();
        if (entries->empty())
            undoIndex.erase(word);
        undoLog.pop_back();
    }
}

void
HtmContext::resetAll()
{
    if (sharerListener) {
        for (const auto& [unit, mask] : aggReaders)
            sharerListener->onSharerUpdate(this, unit, 0, 0);
        for (const auto& [unit, mask] : aggWriters)
            sharerListener->onSharerUpdate(this, unit, 0, 0);
    }
    aggReaders.clear();
    aggWriters.clear();
    levels.clear();
    undoLog.clear();
    undoIndex.clear();
    vcurrent = 0;
    vpending = 0;
    vaddr = invalidAddr;
    vattacker = -1;
    vheld = false;
    reporting = true;
    capVirtualized = false;
    capRestartFlag = false;
    if (cmgr)
        cmgr->onSequenceAbandoned(id);
    onAllLevelsGone();
    if (l1)
        l1->clearAllTx();
    if (l2)
        l2->clearAllTx();
}

} // namespace tmsim
