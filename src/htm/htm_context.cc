#include "htm/htm_context.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tmsim {

HtmContext::HtmContext(CpuId id_, const HtmConfig& cfg_, BackingStore& mem_,
                       Cache* l1_, Cache* l2_, StatsRegistry& stats)
    : id(id_),
      cfg(cfg_),
      mem(mem_),
      l1(l1_),
      l2(l2_),
      lineSize(l1_ ? l1_->geometry().lineBytes : 32),
      statBegins(stats.counter(strfmt("cpu%d.htm.begins", id_))),
      statCommits(stats.counter(strfmt("cpu%d.htm.commits", id_))),
      statOpenCommits(stats.counter(strfmt("cpu%d.htm.open_commits", id_))),
      statRollbacks(stats.counter(strfmt("cpu%d.htm.rollbacks", id_))),
      statViolationsRaised(
          stats.counter(strfmt("cpu%d.htm.violations", id_))),
      statSubsumed(stats.counter(strfmt("cpu%d.htm.subsumed_begins", id_)))
{
    if (cfg.version == VersionMode::UndoLog &&
        cfg.conflict == ConflictMode::Lazy) {
        fatal("undo-log versioning requires eager conflict detection: "
              "in-place speculative writes need access-time ownership");
    }
}

int
HtmContext::logicalDepth() const
{
    int d = depth();
    for (const auto& lvl : levels)
        d += lvl.flattenDepth;
    return d;
}

Tick
HtmContext::age() const
{
    if (levels.empty())
        panic("age() outside a transaction");
    return levels.front().beginTick;
}

bool
HtmContext::begin(TxKind kind, Tick now)
{
    ++statBegins;
    const bool mustSubsume =
        (cfg.nesting == NestingMode::Flatten && !levels.empty()) ||
        depth() >= cfg.maxHwLevels;

    if (mustSubsume) {
        if (kind == TxKind::Open && cfg.nesting == NestingMode::Full) {
            fatal("open-nested transaction beyond hardware nesting "
                  "depth %d cannot be subsumed", cfg.maxHwLevels);
        }
        ++statSubsumed;
        top().flattenDepth++;
        return false;
    }

    TxLevel lvl;
    lvl.kind = kind;
    lvl.beginTick = now;
    lvl.undoBase = undoLog.size();
    levels.push_back(std::move(lvl));
    return true;
}

bool
HtmContext::topIsSubsumed() const
{
    return inTx() && top().flattenDepth > 0;
}

void
HtmContext::commitSubsumed()
{
    if (!topIsSubsumed())
        panic("commitSubsumed with no subsumed begin");
    levels.back().flattenDepth--;
}

Word
HtmContext::readVisible(Addr word_addr) const
{
    if (cfg.version == VersionMode::WriteBuffer) {
        for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
            auto hit = it->writeBuffer.find(word_addr);
            if (hit != it->writeBuffer.end())
                return hit->second;
        }
    }
    return mem.read(word_addr);
}

Word
HtmContext::specRead(Addr addr)
{
    if (!inTx())
        panic("specRead outside a transaction");
    Word value = readVisible(addr);
    top().readLines.insert(trackUnit(addr));
    Addr line = lineOf(addr);
    if (l1)
        l1->markRead(line, depth());
    if (l2)
        l2->markRead(line, depth());
    return value;
}

void
HtmContext::specWrite(Addr addr, Word value)
{
    if (!inTx())
        panic("specWrite outside a transaction");
    if (cfg.version == VersionMode::WriteBuffer) {
        top().writeBuffer[addr] = value;
    } else {
        pushUndo(addr);
        mem.write(addr, value);
        top().writtenWords.insert(addr);
    }
    top().writeLines.insert(trackUnit(addr));
    Addr line = lineOf(addr);
    if (l1)
        l1->markWrite(line, depth());
    if (l2)
        l2->markWrite(line, depth());
}

Word
HtmContext::immRead(Addr addr) const
{
    return inTx() ? readVisible(addr) : mem.read(addr);
}

void
HtmContext::immWrite(Addr addr, Word value)
{
    if (inTx())
        pushUndo(addr);
    mem.write(addr, value);
}

void
HtmContext::immWriteIdempotent(Addr addr, Word value)
{
    mem.write(addr, value);
}

void
HtmContext::releaseLine(Addr addr)
{
    if (!inTx())
        return;
    top().readLines.erase(trackUnit(addr));
}

std::uint32_t
HtmContext::levelsReading(Addr line) const
{
    std::uint32_t mask = 0;
    for (size_t i = 0; i < levels.size(); ++i)
        if (levels[i].readLines.count(line))
            mask |= 1u << i;
    return mask;
}

std::uint32_t
HtmContext::levelsWriting(Addr line) const
{
    std::uint32_t mask = 0;
    for (size_t i = 0; i < levels.size(); ++i)
        if (levels[i].writeLines.count(line))
            mask |= 1u << i;
    return mask;
}

std::uint32_t
HtmContext::validatedLevels() const
{
    std::uint32_t mask = 0;
    for (size_t i = 0; i < levels.size(); ++i)
        if (levels[i].status == TxStatus::Validated)
            mask |= 1u << i;
    return mask;
}

bool
HtmContext::wroteWordInPlace(Addr word_addr) const
{
    if (cfg.version != VersionMode::UndoLog || !inTx())
        return false;
    for (const auto& lvl : levels)
        if (lvl.writtenWords.count(word_addr))
            return true;
    return false;
}

Word
HtmContext::oldestUndoValue(Addr word_addr) const
{
    for (const auto& entry : undoLog)
        if (entry.addr == word_addr)
            return entry.oldValue;
    panic("oldestUndoValue: no undo entry for 0x%llx",
          static_cast<unsigned long long>(word_addr));
}

void
HtmContext::patchUndoEntries(Addr word_addr, Word value)
{
    for (auto& entry : undoLog)
        if (entry.addr == word_addr)
            entry.oldValue = value;
}

void
HtmContext::setTopValidated()
{
    if (!inTx())
        panic("setTopValidated outside a transaction");
    top().status = TxStatus::Validated;
}

std::vector<Addr>
HtmContext::topWriteLines() const
{
    const auto& lines = top().writeLines;
    return std::vector<Addr>(lines.begin(), lines.end());
}

std::vector<std::pair<Addr, Word>>
HtmContext::topWrittenWords() const
{
    std::vector<std::pair<Addr, Word>> words;
    if (cfg.version == VersionMode::WriteBuffer) {
        words.assign(top().writeBuffer.begin(), top().writeBuffer.end());
    } else {
        for (Addr w : top().writtenWords)
            words.emplace_back(w, mem.read(w));
    }
    return words;
}

Cycles
HtmContext::commitClosedTop()
{
    if (depth() < 2)
        panic("commitClosedTop at depth %d", depth());
    TxLevel child = std::move(levels.back());
    levels.pop_back();
    TxLevel& parent = levels.back();

    parent.readLines.insert(child.readLines.begin(), child.readLines.end());
    parent.writeLines.insert(child.writeLines.begin(),
                             child.writeLines.end());
    for (const auto& [word, value] : child.writeBuffer)
        parent.writeBuffer[word] = value;
    parent.writtenWords.insert(child.writtenWords.begin(),
                               child.writtenWords.end());
    // Undo-log entries of the child are absorbed by the parent simply
    // because the parent's undoBase already bounds them (paper 6.3.1).

    int childLevel = depth() + 1;
    if (l1)
        l1->mergeLevelDown(childLevel);
    if (l2)
        l2->mergeLevelDown(childLevel);
    // A conflict recorded against the child between its last poll
    // point and this merge now applies to the parent: the stale data
    // just merged into the parent's sets. Transfer the mask bits
    // instead of dropping them.
    {
        const std::uint32_t childBit = 1u << (childLevel - 1);
        const std::uint32_t parentBit = childBit >> 1;
        if (vcurrent & childBit)
            vcurrent = (vcurrent & ~childBit) | parentBit;
        if (vpending & childBit)
            vpending = (vpending & ~childBit) | parentBit;
    }
    ++statCommits;

    if (cfg.lazyMerge)
        return 0;
    return cfg.mergePerLineCycles *
           (child.readSetSize() + child.writeSetSize());
}

Cycles
HtmContext::commitTopToMemory()
{
    if (!inTx())
        panic("commitTopToMemory outside a transaction");
    TxLevel& t = top();
    Cycles cost = 0;

    if (cfg.version == VersionMode::WriteBuffer) {
        for (const auto& [word, value] : t.writeBuffer) {
            mem.write(word, value);
            // Open-nested commit: ancestors holding a speculative
            // version of this word observe the committed value without
            // any change to their read/write sets (paper 4.5).
            for (int i = depth() - 1; i >= 1; --i) {
                auto& buf = levels[static_cast<size_t>(i - 1)].writeBuffer;
                auto hit = buf.find(word);
                if (hit != buf.end())
                    hit->second = value;
            }
        }
    } else {
        // Undo-log: memory is already current. For an open-nested
        // commit, patch ancestor undo entries so a later ancestor
        // rollback does not revert this committed update (paper 6.3.1:
        // "requires an expensive search through the undo-log").
        if (depth() > 1) {
            size_t base = t.undoBase;
            for (Addr word : t.writtenWords) {
                Word committed = mem.read(word);
                for (size_t i = 0; i < base; ++i) {
                    ++cost;
                    if (undoLog[i].addr == word)
                        undoLog[i].oldValue = committed;
                }
            }
        }
        undoLog.resize(t.undoBase);
    }
    return cost;
}

void
HtmContext::popCommittedTop()
{
    if (!inTx())
        panic("popCommittedTop outside a transaction");
    int lvl = depth();
    if (top().kind == TxKind::Open && lvl > 1)
        ++statOpenCommits;
    else
        ++statCommits;
    if (l1)
        l1->commitOpenLevel(lvl);
    if (l2)
        l2->commitOpenLevel(lvl);
    clearViolationBits(lvl);
    levels.pop_back();
    if (levels.empty())
        overflowLines = 0;
}

void
HtmContext::rollbackTo(int target)
{
    if (target < 1 || target > depth())
        panic("rollbackTo(%d) with depth %d", target, depth());
    for (int lvl = depth(); lvl >= target; --lvl) {
        TxLevel& t = levels.back();
        // Restore in-place speculative writes (undo-log stores and any
        // imst undo records) in FILO order.
        while (undoLog.size() > t.undoBase) {
            const UndoEntry& e = undoLog.back();
            mem.write(e.addr, e.oldValue);
            undoLog.pop_back();
        }
        if (l1)
            l1->clearLevel(lvl);
        if (l2)
            l2->clearLevel(lvl);
        clearViolationBits(lvl);
        levels.pop_back();
        ++statRollbacks;
    }
    if (levels.empty())
        overflowLines = 0;
}

void
HtmContext::raiseViolation(std::uint32_t mask, Addr where)
{
    if (mask == 0)
        panic("raiseViolation with empty mask");
    ++statViolationsRaised;
    if (reporting)
        vcurrent |= mask;
    else
        vpending |= mask;
    vaddr = where;
    if (violationHook)
        violationHook();
}

bool
HtmContext::returnFromHandler()
{
    reporting = true;
    vcurrent |= vpending;
    vpending = 0;
    return vcurrent != 0;
}

void
HtmContext::clearViolationBits(int lvl)
{
    std::uint32_t bit = 1u << (lvl - 1);
    vcurrent &= ~bit;
    vpending &= ~bit;
}

void
HtmContext::clampMasksToDepth()
{
    if (levels.empty()) {
        vcurrent = 0;
        vpending = 0;
        return;
    }
    const std::uint32_t valid = (1u << depth()) - 1;
    if (vcurrent & ~valid)
        vcurrent = (vcurrent & valid) | (1u << (depth() - 1));
    if (vpending & ~valid)
        vpending = (vpending & valid) | (1u << (depth() - 1));
}

void
HtmContext::promotePendingForLevel(int lvl)
{
    std::uint32_t bit = 1u << (lvl - 1);
    if (vpending & bit) {
        vpending &= ~bit;
        vcurrent |= bit;
    }
}

void
HtmContext::setViolationHook(std::function<void()> hook)
{
    violationHook = std::move(hook);
}

void
HtmContext::noteEviction(const EvictInfo& info)
{
    if (info.evicted && info.transactional)
        ++overflowLines;
}

void
HtmContext::pushUndo(Addr word_addr)
{
    undoLog.push_back(UndoEntry{word_addr, mem.read(word_addr)});
}

void
HtmContext::resetAll()
{
    levels.clear();
    undoLog.clear();
    vcurrent = 0;
    vpending = 0;
    vaddr = invalidAddr;
    reporting = true;
    overflowLines = 0;
    if (l1)
        l1->clearAllTx();
    if (l2)
        l2->clearAllTx();
}

} // namespace tmsim
