/**
 * @file
 * Configuration space of the HTM engine: the design options surveyed in
 * paper section 2.2/6 (versioning, conflict detection, nesting support).
 */

#ifndef TMSIM_HTM_HTM_CONFIG_HH
#define TMSIM_HTM_HTM_CONFIG_HH

#include <string>

#include "mem/cache.hh"
#include "sim/types.hh"

namespace tmsim {

/** Where speculative data lives until commit. */
enum class VersionMode
{
    /** Buffer stores until commit (TCC/Herlihy style; paper 6.3.2). */
    WriteBuffer,
    /** Write memory in place, log old values (LogTM style; 6.3.1). */
    UndoLog,
};

/** When conflicts are detected. */
enum class ConflictMode
{
    /** At validate/commit time via write-set broadcast (TCC). */
    Lazy,
    /** At access time via coherence-style checks (UTM/LogTM). */
    Eager,
};

/** Who loses an eagerly-detected conflict. */
enum class ConflictPolicy
{
    /** The transaction already holding the data is violated. */
    RequesterWins,
    /** The younger transaction is violated (timestamp order). */
    OlderWins,
};

/**
 * Contention-management policy consulted at every arbitration and
 * restart-scheduling decision (see src/htm/contention.hh). The paper
 * leaves contention policy to software (section 3.2: violation
 * handlers exist so "software can implement arbitrary policies");
 * these are the bundled ones.
 */
enum class ContentionPolicy
{
    /** Legacy pass-through: arbitration follows ConflictPolicy
     *  (requester-wins, or timestamp order under OlderWins) and the
     *  backoff curve is the fixed exponential one. */
    Requester,
    /** Earlier first-begin tick wins; ties broken by CPU id. The
     *  first-begin tick is retained across restarts of the same
     *  attempt sequence, so an aborted transaction keeps its
     *  seniority until it commits or gives up. */
    Timestamp,
    /** Priority accumulates with tracked accesses (one unit of karma
     *  per read/write-set insertion) and is retained across aborts;
     *  higher karma wins, ties fall back to timestamp order. */
    Karma,
    /** Requester always defers to the current holder and retries
     *  after a randomized exponential backoff whose jitter is
     *  proportional to the window. */
    Polite,
    /** Karma, plus a starvation guard: a transaction aborted more
     *  than starvationThreshold times in a row escalates to must-win
     *  seniority (it wins every arbitration, and lazy committers
     *  yield their commit slot to it) until it commits. */
    Hybrid,
};

/** Short lower-case name used by CLIs and replay files. */
const char* contentionPolicyName(ContentionPolicy p);

/** Parse a contentionPolicyName(); returns false on unknown names. */
bool contentionPolicyFromName(const std::string& s, ContentionPolicy& out);

/** Conflict-tracking granularity (paper 6.3.1: "If word-level
 *  tracking is implemented, we need per-word R and W bits"). Word
 *  granularity eliminates false sharing and makes the early-release
 *  instruction safe (paper 4.7 notes releasing a whole cache line from
 *  a word address is not). */
enum class TrackGranularity
{
    Line,
    Word,
};

/**
 * What happens when a transaction exceeds a configured read/write-set
 * capacity bound (paper 2.3: VTM/XTM virtualisation; PAPERS.md
 * "Limited Read/Write-Set HTM").
 */
enum class CapacityMode
{
    /** The transaction takes a capacity abort and restarts; the
     *  restarted attempt runs virtualised (software overflow) so the
     *  sequence is guaranteed to make progress — XTM's abort-once,
     *  re-execute-in-software-mode policy. */
    Abort,
    /** Lines past the cap spill into a per-context software overflow
     *  log immediately; no abort, but every conflict check against the
     *  overflowed context pays overflowCheckPenalty (VTM-style). */
    Overflow,
};

/** Short lower-case name used by CLIs and replay files. */
const char* capacityModeName(CapacityMode m);

/** Parse a capacityModeName(); returns false on unknown names. */
bool capacityModeFromName(const std::string& s, CapacityMode& out);

/** How nested xbegin is treated. */
enum class NestingMode
{
    /** Independent per-level tracking and rollback (this paper). */
    Full,
    /** Subsume inner transactions into the outermost (the baseline
     *  flattening of prior HTM systems). */
    Flatten,
};

/** Complete HTM configuration. */
struct HtmConfig
{
    VersionMode version = VersionMode::WriteBuffer;
    ConflictMode conflict = ConflictMode::Lazy;
    ConflictPolicy policy = ConflictPolicy::RequesterWins;
    NestingMode nesting = NestingMode::Full;
    NestScheme scheme = NestScheme::Associativity;
    TrackGranularity granularity = TrackGranularity::Line;

    /** Contention-management policy (arbitration + restart backoff). */
    ContentionPolicy contention = ContentionPolicy::Requester;

    /** Hybrid's starvation guard: consecutive aborts beyond this
     *  threshold escalate the transaction to must-win seniority. */
    int starvationThreshold = 8;

    /**
     * The policy the contention manager actually runs: an explicit
     * ContentionPolicy wins; the legacy ConflictPolicy::OlderWins knob
     * maps onto Timestamp so existing configurations keep their
     * age-ordered arbitration (now with deterministic tiebreaks).
     */
    ContentionPolicy
    effectiveContention() const
    {
        if (contention != ContentionPolicy::Requester)
            return contention;
        return policy == ConflictPolicy::OlderWins
                   ? ContentionPolicy::Timestamp
                   : ContentionPolicy::Requester;
    }

    /** Hardware-supported nesting depth; deeper levels are handled by
     *  the overflow/virtualisation path with a cycle penalty. */
    int maxHwLevels = 4;

    /**
     * Closed-nested commit merge cost per read/write-set line, charged
     * when @ref lazyMerge is false (paper 6.3: "merging is difficult to
     * implement as a fast gang operation").
     */
    Cycles mergePerLineCycles = 1;

    /** Model the paper's lazy merge: commit-time merge is free and the
     *  cost folds into subsequent accesses. */
    bool lazyMerge = true;

    /** Extra conflict-check latency once a context has overflowed
     *  transactional lines out of its caches (virtualisation). */
    Cycles overflowCheckPenalty = 8;

    /**
     * Per-level read/write-set capacity, in tracked lines; 0 means
     * unbounded (the historical behaviour — all capacity machinery is
     * a no-op so default-config runs stay bit-identical). When a
     * level's set grows past its cap, capacityMode decides the fate;
     * in Abort mode a cache eviction of a transactional line also
     * triggers a capacity abort (the bounds assert the hardware really
     * cannot hold more than it promised).
     */
    int rsetCap = 0;
    int wsetCap = 0;
    CapacityMode capacityMode = CapacityMode::Abort;

    /** True when either set cap is configured. */
    bool
    boundedCapacity() const
    {
        return rsetCap > 0 || wsetCap > 0;
    }

    /** Runtime retry backoff/jitter between transaction re-executions.
     *  Disabling it reproduces a baseline whose flattened conflicts
     *  cascade (see EXPERIMENTS.md on figure-5 magnitudes). */
    bool retryBackoff = true;

    /** The configuration evaluated in the paper's section 7. */
    static HtmConfig paperLazy();

    /** Eager/undo-log design point (UTM/LogTM-like). */
    static HtmConfig eagerUndoLog();

    /** The flattening baseline of figure 5. */
    static HtmConfig flattenedBaseline();

    /** Human-readable summary for bench output. */
    std::string describe() const;
};

} // namespace tmsim

#endif // TMSIM_HTM_HTM_CONFIG_HH
