/**
 * @file
 * Per-CPU hardware transactional state: the nesting-level stack,
 * speculative versioning (write-buffer or undo-log), authoritative
 * read/write sets, and the violation mask registers of paper table 1.
 */

#ifndef TMSIM_HTM_HTM_CONTEXT_HH
#define TMSIM_HTM_HTM_CONTEXT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "htm/htm_config.hh"
#include "htm/signature.hh"
#include "htm/tx_level.hh"
#include "mem/backing_store.hh"
#include "mem/cache.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace tmsim {

class ContentionManager;
class TxTracer;

/**
 * The transactional half of one hardware CPU context. Owns the stack of
 * active nesting levels and the speculative data; knows nothing about
 * timing (the Cpu charges cycles) or about other CPUs (the
 * ConflictDetector coordinates).
 */
class HtmContext
{
  public:
    HtmContext(CpuId id, const HtmConfig& cfg, BackingStore& mem,
               Cache* l1, Cache* l2, StatsRegistry& stats);

    CpuId cpuId() const { return id; }
    const HtmConfig& config() const { return cfg; }
    Addr lineBytes() const { return lineSize; }
    Addr lineOf(Addr addr) const { return addr & ~(lineSize - 1); }

    /** The conflict-tracking unit for @p addr: the line address under
     *  line granularity, the word address under word granularity. */
    Addr
    trackUnit(Addr addr) const
    {
        return cfg.granularity == TrackGranularity::Word
                   ? (addr & ~(wordBytes - 1))
                   : lineOf(addr);
    }

    // --- transaction structure ---

    /** Number of hardware nesting levels currently active. */
    int depth() const { return static_cast<int>(levels.size()); }

    /** Nesting depth including flattened (subsumed) inner begins. */
    int logicalDepth() const;

    bool inTx() const { return !levels.empty(); }

    /** 1-based access to a nesting level. */
    TxLevel& level(int i) { return levels[static_cast<size_t>(i - 1)]; }
    const TxLevel&
    level(int i) const
    {
        return levels[static_cast<size_t>(i - 1)];
    }

    TxLevel& top() { return levels.back(); }
    const TxLevel& top() const { return levels.back(); }

    /** Begin tick of the outermost transaction (conflict age). */
    Tick age() const;

    /**
     * Push a nesting level (xbegin / xbegin_open).
     * @return true if a new hardware level was created; false if the
     * begin was subsumed (flattening mode, or hardware depth exceeded).
     */
    bool begin(TxKind kind, Tick now);

    /** True if the innermost xcommit should only pop a subsumed begin. */
    bool topIsSubsumed() const;

    /** Note a subsumed commit (decrements the flatten depth). */
    void commitSubsumed();

    // --- speculative data access (no timing) ---

    /** Transactional load visible at the current level. */
    Word specRead(Addr addr);

    /** Transactional store at the current level. */
    void specWrite(Addr addr, Word value);

    /** imld: load without read-set insertion. */
    Word immRead(Addr addr) const;

    /** imst: store to memory immediately, keeping undo information but
     *  no write-set membership. */
    void immWrite(Addr addr, Word value);

    /** imstid: idempotent immediate store: no undo information. */
    void immWriteIdempotent(Addr addr, Word value);

    /** release: drop a line from the current level's read-set. */
    void releaseLine(Addr addr);

    // --- set queries (track-unit addresses), used by conflict detection ---
    //
    // Answered from incrementally maintained per-context aggregates: a
    // Bloom signature gives a one-word fast-negative, then a single
    // unit -> level-mask map probe replaces the per-level scan.

    /** Bitmask of levels (bit level-1) whose read-set contains @p line. */
    std::uint32_t levelsReading(Addr line) const;

    /** Bitmask of levels whose write-set contains @p line. */
    std::uint32_t levelsWriting(Addr line) const;

    /** Bitmask of levels whose status is Validated. */
    std::uint32_t validatedLevels() const { return validatedMask; }

    /** Brute-force reference implementations of the three queries
     *  above (per-level hash probes). The aggregates must agree with
     *  these after every operation; the randomized property test
     *  asserts it. */
    std::uint32_t levelsReadingScan(Addr line) const;
    std::uint32_t levelsWritingScan(Addr line) const;
    std::uint32_t validatedLevelsScan() const;

    /** Register the chip-wide sharer-index maintainer (the
     *  ConflictDetector); it is notified on every aggregate change. */
    void setSharerListener(SharerIndexListener* l) { sharerListener = l; }

    /** Point lifecycle-event emission at @p t (the Machine's tracer).
     *  Defaults to TxTracer::nil(), the disabled null sink. */
    void setTracer(TxTracer* t) { tracer = t; }

    /** Register the chip-wide contention manager (the ConflictDetector
     *  wires this in addContext); it receives outer-begin/commit/
     *  rollback and tracked-access lifecycle events for fairness
     *  bookkeeping. Null (raw unit tests) disables the hooks. */
    void setContentionManager(ContentionManager* m) { cmgr = m; }

    /** UndoLog mode: this context has an uncommitted in-place write of
     *  @p word_addr. */
    bool wroteWordInPlace(Addr word_addr) const;

    /** UndoLog mode: the oldest (committed) value of @p word_addr in
     *  this context's undo log. Only valid if wroteWordInPlace(). */
    Word oldestUndoValue(Addr word_addr) const;

    /** UndoLog mode: overwrite every undo entry for @p word_addr so a
     *  later rollback restores @p value (strong-atomicity store over
     *  an in-place speculative write). */
    void patchUndoEntries(Addr word_addr, Word value);

    // --- commit and rollback (no timing; returns modelled costs) ---

    void setTopValidated();

    /** Lines in the top level's write-set (broadcast / locking). The
     *  returned reference is a per-context scratch buffer, valid until
     *  the next call on this context. */
    const std::vector<Addr>& topWriteLines() const;

    /** Words written by the top level, with their current values. Same
     *  scratch-buffer lifetime as topWriteLines(). */
    const std::vector<std::pair<Addr, Word>>& topWrittenWords() const;

    /** Discard the top level's read/write-set and speculative data
     *  (xrwsetclear), keeping the aggregates and sharer index in sync. */
    void clearTopSets();

    /**
     * Closed-nested commit: merge the top level into its parent.
     * @return merge cost in cycles (0 under lazy merging).
     */
    Cycles commitClosedTop();

    /**
     * Apply the top level's speculative writes to memory (outermost or
     * open-nested commit) and patch ancestor versions/undo entries.
     * @return modelled cost in cycles for ancestor-patch searches.
     */
    Cycles commitTopToMemory();

    /** Pop the committed top level (after commitTopToMemory). */
    void popCommittedTop();

    /**
     * Roll back levels top..@p target (inclusive): restore undo data,
     * discard buffers/sets, clear cache annotations and violation-mask
     * bits for the discarded levels.
     */
    void rollbackTo(int target);

    // --- violation registers (paper table 1) ---

    /** Record a conflict hitting @p mask levels at line @p where.
     *  @p attacker is the CPU whose access caused the conflict (-1
     *  when unknown, e.g. test-injected violations). The xvaddr /
     *  xvattacker report registers latch the FIRST undelivered
     *  conflict; later conflicts only accumulate mask bits until the
     *  report is consumed (consumeReport) or every mask bit clears. */
    void raiseViolation(std::uint32_t mask, Addr where,
                        CpuId attacker = -1);

    bool reportingEnabled() const { return reporting; }
    void setReporting(bool on) { reporting = on; }

    std::uint32_t xvcurrent() const { return vcurrent; }
    std::uint32_t xvpending() const { return vpending; }
    Addr xvaddr() const { return vaddr; }

    /** CPU that caused the first unconsumed violation (-1 if unknown). */
    CpuId xvattacker() const { return vattacker; }

    /** Hardware delivered the report (saved xvaddr/xvattacker into the
     *  handler frame): unlatch so the next conflict is reported with
     *  its own address/attacker. The register values stay readable. */
    void consumeReport() { vheld = false; }

    /** Deliverable = reporting enabled and xvcurrent nonzero. */
    bool deliverable() const { return reporting && vcurrent != 0; }

    /** xvret: re-enable reporting and promote pending bits.
     *  @return true if another delivery is required. */
    bool returnFromHandler();

    /** Clear both mask bits for @p lvl (xrwsetclear side effect). */
    void clearViolationBits(int lvl);

    /** Acknowledge every delivered violation (software "continue"). */
    void
    clearCurrentViolations()
    {
        vcurrent = 0;
        // Continuing past a capacity violation means no restart ever
        // happens; the flag must not mis-attribute a later rollback.
        // The context stays virtualised, which is exactly VTM's
        // continue-in-software-mode semantics.
        capRestartFlag = false;
        maybeReleaseReport();
    }

    /**
     * Remap mask bits that refer to levels deeper than the current
     * depth (the level committed/merged since the conflict was raised)
     * onto the current innermost level; drop everything if no
     * transaction is active.
     */
    void clampMasksToDepth();

    /**
     * Promote a pending violation bit for @p lvl into xvcurrent even
     * while reporting is disabled. Used by xvalidate: a transaction
     * with a conflict recorded against it must not validate.
     */
    void promotePendingForLevel(int lvl);

    /** Hook invoked on every raiseViolation (Cpu wake-ups). */
    void setViolationHook(std::function<void()> hook);

    // --- capacity / virtualisation ---

    /** Inform the context that a cache evicted a transactional line. */
    void noteEviction(const EvictInfo& info);

    /** True if conflict checks must consult the overflow structures:
     *  transactional lines were evicted out of the caches, or set
     *  entries spilled into the software overflow log. */
    bool
    overflowed() const
    {
        return overflowLines > 0 || spilledLineCount() > 0;
    }

    /**
     * Entries currently in the per-context software overflow log:
     * lines past the per-level caps under CapacityMode::Overflow, or
     * during a virtualised attempt after a capacity abort. Derived
     * from the surviving levels' authoritative set sizes, so partial
     * rollback and open-nested commit release overflow capacity
     * automatically. Always 0 when no cap is configured.
     */
    std::uint64_t spilledLineCount() const;

    /** True while the context executes virtualised: a capacity abort
     *  was taken and the restarted attempt runs with the caps lifted,
     *  spilling into the overflow log instead (XTM's abort-once,
     *  re-execute-in-software policy — guarantees the attempt sequence
     *  makes progress). Cleared when the outermost level commits. */
    bool capacityVirtualized() const { return capVirtualized; }

    /** Consume the capacity-restart flag (Cpu::rawRollback reads this
     *  to attribute the restart reason): true when the rollback being
     *  processed was triggered by a capacity abort. */
    bool takeCapacityRestart();

    /** The runtime abandoned the current attempt sequence: end any
     *  virtualised episode (the next sequence re-enforces the caps). */
    void
    noteSequenceAbandoned()
    {
        capVirtualized = false;
        capRestartFlag = false;
    }

    /** Undo-log depth (tests / stats). */
    size_t undoLogSize() const { return undoLog.size(); }

    /** Full reset of all transactional state (tests only). */
    void resetAll();

  private:
    struct UndoEntry
    {
        Addr addr;
        Word oldValue;
    };

    /** Word-granularity value visible at the current level. */
    Word readVisible(Addr word_addr) const;

    void pushUndo(Addr word_addr);

    /** Drop undo entries above @p new_size (commit resize / rollback
     *  restore), keeping the per-word entry index consistent. */
    void truncateUndo(size_t new_size);

    /** A violation report is only held while a mask bit backs it. */
    void
    maybeReleaseReport()
    {
        if (vcurrent == 0 && vpending == 0)
            vheld = false;
    }

    // --- aggregate / signature / sharer-index maintenance ---
    //
    // Every mutation of a level's read/write-set funnels through these
    // so the unit -> level-mask aggregates, the Bloom signatures and
    // the detector's inverted index stay equal to a brute-force scan.

    std::uint32_t
    readersOf(Addr unit) const
    {
        const std::uint32_t* m = aggReaders.find(unit);
        return m ? *m : 0;
    }

    std::uint32_t
    writersOf(Addr unit) const
    {
        const std::uint32_t* m = aggWriters.find(unit);
        return m ? *m : 0;
    }

    /** The top (or any) level's write set in the exact order the
     *  historical std::unordered_set write set iterated; cached per
     *  level and rebuilt from insertion order on demand. */
    const std::vector<Addr>& writeLinesOrdered(const TxLevel& t) const;

    void notifySharer(Addr unit);
    void noteReadInsert(Addr unit);
    void noteWriteInsert(Addr unit);
    void noteReadErase(Addr unit);

    /** Capacity-bound enforcement after a top-level set insert; only
     *  called when the relevant cap is configured. */
    void enforceCapacity(bool is_write, Addr unit);

    /** Top level exceeds either configured cap. */
    bool topOverCap() const;

    /** Take a capacity abort: flip the context into virtualised mode
     *  and raise a self-violation against level @p lvl. */
    void raiseCapacityAbort(int lvl, Addr unit);

    /** Remove level @p lvl's bit from the aggregates of every unit in
     *  its sets (pop, rollback, xrwsetclear). */
    void dropLevelFromAggregates(int lvl);

    /** Rewrite aggregates when a closed-nested child merges into its
     *  parent (child bit moves down one level). */
    void mergeChildAggregates(const TxLevel& child, int child_level);

    /** Called whenever the context leaves its outermost transaction:
     *  all sets are empty, so the signatures can be invalidated
     *  wholesale (lazy clear via epoch bump). */
    void onAllLevelsGone();

    CpuId id;
    HtmConfig cfg;
    BackingStore& mem;
    Cache* l1;
    Cache* l2;
    Addr lineSize;

    std::vector<TxLevel> levels;
    std::vector<UndoEntry> undoLog;

    /** Word -> ascending undo-log entry indices for that word, kept in
     *  lockstep with undoLog by pushUndo/truncateUndo. front() is the
     *  oldest (committed-value) entry, so the strong-atomicity queries
     *  cost O(entries for this word) instead of O(log length). */
    FlatAddrMap<std::vector<std::uint32_t>> undoIndex;

    /** Track-unit -> bitmask of levels reading/writing it; the union of
     *  the per-level sets, maintained incrementally. */
    FlatAddrMap<std::uint32_t> aggReaders;
    FlatAddrMap<std::uint32_t> aggWriters;

    /** Bloom filters over the aggregates (write signature also covers
     *  in-place written words under undo-log versioning). Invalidated
     *  by epoch bump when the context leaves all transactions. */
    EpochSignature readSig;
    EpochSignature writeSig;
    std::uint64_t sigEpoch = 1;

    /** Cached validatedLevels() mask. */
    std::uint32_t validatedMask = 0;

    SharerIndexListener* sharerListener = nullptr;

    /** Chip-wide contention manager (nullable; see setContentionManager). */
    ContentionManager* cmgr = nullptr;

    /** Scratch buffers reused by topWriteLines/topWrittenWords so the
     *  commit path does not allocate per transaction. */
    mutable std::vector<Addr> scratchLines;
    mutable std::vector<std::pair<Addr, Word>> scratchWords;

    // Violation registers.
    std::uint32_t vcurrent = 0;
    std::uint32_t vpending = 0;
    Addr vaddr = invalidAddr;
    CpuId vattacker = -1;
    /** xvaddr/xvattacker hold an undelivered report; later raises must
     *  not clobber it. */
    bool vheld = false;
    bool reporting = true;
    std::function<void()> violationHook;

    /** Lifecycle-event sink (never null; defaults to TxTracer::nil()). */
    TxTracer* tracer;

    std::uint64_t overflowLines = 0;

    /** Capacity state: virtualised execution after a capacity abort,
     *  and the not-yet-consumed restart-reason flag. */
    bool capVirtualized = false;
    bool capRestartFlag = false;

    StatsRegistry::Counter& statBegins;
    StatsRegistry::Counter& statCommits;
    StatsRegistry::Counter& statOpenCommits;
    StatsRegistry::Counter& statRollbacks;
    StatsRegistry::Counter& statViolationsRaised;
    StatsRegistry::Counter& statSubsumed;
    StatsRegistry::Counter& statCapacityAborts;

    /** Chip-wide (shared-name) signature filter stats. */
    StatsRegistry::Counter& statSigFiltered;
    StatsRegistry::Counter& statSigFalsePositives;

    /** Chip-wide: lines spilled into software overflow logs. */
    StatsRegistry::Counter& statCapacitySpills;

    /** Chip-wide commit-time set-size histograms: sampled once per
     *  commit of any flavour, so each samples count equals
     *  sum(cpu*.htm.commits) + sum(cpu*.htm.open_commits). */
    StatsRegistry::Distribution& distRsetAtCommit;
    StatsRegistry::Distribution& distWsetAtCommit;
};

} // namespace tmsim

#endif // TMSIM_HTM_HTM_CONTEXT_HH
