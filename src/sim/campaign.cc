#include "sim/campaign.hh"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

namespace tmsim {

namespace {

/** warn()/inform() lines a job emitted, buffered per job so the caller
 *  can replay them in merge (job-index) order: campaign stderr is as
 *  deterministic as campaign stdout, whatever the worker count. */
struct JobLog
{
    std::vector<std::pair<std::string, std::string>> lines;
};

} // namespace

CampaignResult
CampaignPool::run(std::size_t num_jobs, const CampaignOptions& opt,
                  const JobFn& body, const ReadyFn& on_ready)
{
    CampaignResult res;
    if (num_jobs == 0)
        return res;

    std::vector<JobLog> logs(num_jobs);
    auto makeCtx = [&](LogContext& ctx, std::size_t i) {
        ctx.quiet = opt.quiet;
        ctx.throwOnFatal = true;
        ctx.sink = [&logs, i](const char* level, const std::string& msg) {
            logs[i].lines.emplace_back(level, msg);
        };
    };
    auto replay = [&](std::size_t i) {
        for (const auto& [level, msg] : logs[i].lines)
            std::fprintf(stderr, "%s: %s\n", level.c_str(), msg.c_str());
        logs[i].lines.clear();
    };

    const int workers =
        opt.jobs <= 1
            ? 1
            : static_cast<int>(
                  std::min(static_cast<std::size_t>(opt.jobs), num_jobs));

    if (workers <= 1) {
        // Inline path: the exact operation sequence the parallel merge
        // reproduces (body under a trapping context, replay, merge).
        for (std::size_t i = 0; i < num_jobs; ++i) {
            LogContext ctx;
            makeCtx(ctx, i);
            try {
                LogScope scope(ctx);
                body(i);
            } catch (const std::exception& e) {
                replay(i);
                res.failed = true;
                res.failedJob = i;
                res.message = e.what();
                return res;
            }
            replay(i);
            ++res.merged;
            if (!on_ready(i)) {
                res.stopped = true;
                return res;
            }
        }
        return res;
    }

    std::mutex mu;
    std::condition_variable cv;
    std::size_t next = 0;                       // guarded by mu
    std::vector<char> done(num_jobs, 0);        // guarded by mu
    std::map<std::size_t, std::string> errors;  // guarded by mu
    bool cancel = false;                        // guarded by mu
    int active = workers;                       // guarded by mu

    auto workerLoop = [&]() {
        for (;;) {
            std::size_t i;
            {
                std::lock_guard<std::mutex> lk(mu);
                if (cancel || next >= num_jobs)
                    break;
                i = next++;
            }
            LogContext ctx;
            makeCtx(ctx, i);
            std::string err;
            bool ok = true;
            try {
                LogScope scope(ctx);
                body(i);
            } catch (const std::exception& e) {
                ok = false;
                err = e.what();
            } catch (...) {
                ok = false;
                err = "unknown exception escaped campaign job";
            }
            {
                std::lock_guard<std::mutex> lk(mu);
                done[i] = 1;
                if (!ok) {
                    errors.emplace(i, std::move(err));
                    cancel = true;
                }
            }
            cv.notify_all();
        }
        {
            std::lock_guard<std::mutex> lk(mu);
            --active;
        }
        cv.notify_all();
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
        pool.emplace_back(workerLoop);
    auto joinAll = [&]() {
        for (std::thread& t : pool)
            if (t.joinable())
                t.join();
    };

    try {
        for (std::size_t i = 0; i < num_jobs; ++i) {
            bool ready;
            {
                std::unique_lock<std::mutex> lk(mu);
                // Workers claim indices in ascending order, so once
                // every worker has exited an un-done job can never
                // complete: stop waiting for it.
                cv.wait(lk, [&] { return done[i] || active == 0; });
                ready = done[i] != 0;
                if (ready) {
                    auto it = errors.find(i);
                    if (it != errors.end()) {
                        res.failed = true;
                        res.failedJob = i;
                        res.message = it->second;
                    }
                }
            }
            if (!ready)
                break;
            replay(i);
            if (res.failed)
                break;
            ++res.merged;
            if (!on_ready(i)) {
                res.stopped = true;
                std::lock_guard<std::mutex> lk(mu);
                cancel = true;
                break;
            }
        }
        // A failure can hide beyond the merged prefix when merging
        // stopped first; surface the lowest-index one.
        if (!res.failed && !res.stopped) {
            std::lock_guard<std::mutex> lk(mu);
            if (!errors.empty()) {
                res.failed = true;
                res.failedJob = errors.begin()->first;
                res.message = errors.begin()->second;
            }
        }
    } catch (...) {
        {
            std::lock_guard<std::mutex> lk(mu);
            cancel = true;
        }
        joinAll();
        throw;
    }
    joinAll();
    return res;
}

} // namespace tmsim
