#include "sim/campaign.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include <unistd.h>

namespace tmsim {

namespace {

/** warn()/inform() lines a job emitted, buffered per job so the caller
 *  can replay them in merge (job-index) order: campaign stderr is as
 *  deterministic as campaign stdout, whatever the worker count. */
struct JobLog
{
    std::vector<std::pair<std::string, std::string>> lines;
};

using Clock = std::chrono::steady_clock;

std::uint64_t
usSince(Clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            Clock::now() - t0)
            .count());
}

/**
 * Caller-thread telemetry: per-job wall-time and merge-time HDR
 * distributions, a rate-limited stderr progress line, and the NDJSON
 * heartbeat stream. Only ever touched from the merging thread, so it
 * needs no locking; worker threads contribute nothing but the raw
 * wall-time slot they own.
 */
class TelemetryEmitter
{
  public:
    TelemetryEmitter(const CampaignOptions& opt_, std::size_t total_)
        : opt(opt_), total(total_),
          reg(opt_.telemetry ? *opt_.telemetry : localReg),
          wallDist(reg.distribution("campaign.job_wall_us")),
          mergeDist(reg.distribution("campaign.merge_us")),
          start(Clock::now())
    {
        if (!opt.heartbeatFile.empty()) {
            hb = std::fopen(opt.heartbeatFile.c_str(), "w");
            if (!hb) {
                warn("campaign: cannot open heartbeat file %s",
                     opt.heartbeatFile.c_str());
            }
        }
        stderrIsTty = isatty(fileno(stderr)) != 0;
    }

    ~TelemetryEmitter()
    {
        emit(true);
        if (hb)
            std::fclose(hb);
    }

    /** Record one merged job: its wall time, the merge cost, and the
     *  campaign position (jobs merged / jobs completed by workers). */
    void
    afterMerge(std::uint64_t wall_us, std::uint64_t merge_us,
               std::size_t merged_, std::size_t done_)
    {
        wallDist.sample(wall_us);
        mergeDist.sample(merge_us);
        merged = merged_;
        done = done_;
        const std::uint64_t interval =
            static_cast<std::uint64_t>(
                opt.telemetryIntervalMs < 0 ? 0 : opt.telemetryIntervalMs) *
            1000;
        if (usSince(start) - lastEmitUs >= interval)
            emit(false);
    }

  private:
    void
    emit(bool final)
    {
        lastEmitUs = usSince(start);
        const double secs = static_cast<double>(lastEmitUs) / 1e6;
        const double rate =
            secs > 0.0 ? static_cast<double>(merged) / secs : 0.0;
        const std::uint64_t fails = opt.failures ? opt.failures() : 0;
        if (opt.progress) {
            const double etaS =
                rate > 0.0
                    ? static_cast<double>(total - merged) / rate
                    : 0.0;
            std::fprintf(stderr,
                         "campaign: %zu/%zu merged, %llu failing, "
                         "%.1f jobs/s, ETA %.0fs%s",
                         merged, total,
                         static_cast<unsigned long long>(fails), rate,
                         etaS,
                         // On a TTY rewrite one line; in a log, emit
                         // whole lines (and always finish with one).
                         (stderrIsTty && !final) ? "\r" : "\n");
            std::fflush(stderr);
        }
        if (hb) {
            std::fprintf(
                hb,
                "{\"schema\": \"tmsim-campaign-heartbeat\", "
                "\"schema_version\": 1, \"final\": %s, "
                "\"wall_ms\": %llu, \"jobs_merged\": %zu, "
                "\"jobs_total\": %zu, \"failures\": %llu, "
                "\"jobs_per_sec\": %.3f, \"merge_lag\": %zu",
                final ? "true" : "false",
                static_cast<unsigned long long>(lastEmitUs / 1000),
                merged, total,
                static_cast<unsigned long long>(fails), rate,
                done - merged);
            if (final) {
                dumpDist(", \"job_wall_us\"", wallDist);
                dumpDist(", \"merge_us\"", mergeDist);
            }
            std::fprintf(hb, "}\n");
            std::fflush(hb);
        }
    }

    void
    dumpDist(const char* key, const StatsRegistry::Distribution& d)
    {
        std::fprintf(
            hb,
            "%s: {\"samples\": %llu, \"mean\": %.3f, \"p50\": %llu, "
            "\"p90\": %llu, \"p99\": %llu, \"max\": %llu}",
            key, static_cast<unsigned long long>(d.count()), d.mean(),
            static_cast<unsigned long long>(d.quantile(0.50)),
            static_cast<unsigned long long>(d.quantile(0.90)),
            static_cast<unsigned long long>(d.quantile(0.99)),
            static_cast<unsigned long long>(d.max()));
    }

    const CampaignOptions& opt;
    const std::size_t total;
    StatsRegistry localReg;
    StatsRegistry& reg;
    StatsRegistry::Distribution& wallDist;
    StatsRegistry::Distribution& mergeDist;
    Clock::time_point start;
    std::uint64_t lastEmitUs = 0;
    std::size_t merged = 0;
    std::size_t done = 0;
    std::FILE* hb = nullptr;
    bool stderrIsTty = false;
};

} // namespace

CampaignResult
CampaignPool::run(std::size_t num_jobs, const CampaignOptions& opt,
                  const JobFn& body, const ReadyFn& on_ready)
{
    CampaignResult res;
    if (num_jobs == 0)
        return res;

    std::vector<JobLog> logs(num_jobs);
    auto makeCtx = [&](LogContext& ctx, std::size_t i) {
        ctx.quiet = opt.quiet;
        ctx.throwOnFatal = true;
        ctx.sink = [&logs, i](const char* level, const std::string& msg) {
            logs[i].lines.emplace_back(level, msg);
        };
    };
    auto replay = [&](std::size_t i) {
        for (const auto& [level, msg] : logs[i].lines)
            std::fprintf(stderr, "%s: %s\n", level.c_str(), msg.c_str());
        logs[i].lines.clear();
    };

    const int workers =
        opt.jobs <= 1
            ? 1
            : static_cast<int>(
                  std::min(static_cast<std::size_t>(opt.jobs), num_jobs));

    // Telemetry rides outside the identity path: workers only stamp
    // the wall-time slot they own; the merging thread samples the
    // distributions and emits progress/heartbeat records in job order.
    const bool track = opt.progress || !opt.heartbeatFile.empty() ||
                       opt.telemetry != nullptr;
    std::unique_ptr<TelemetryEmitter> tel;
    std::vector<std::uint64_t> wallUs;
    if (track) {
        tel = std::make_unique<TelemetryEmitter>(opt, num_jobs);
        wallUs.assign(num_jobs, 0);
    }
    auto timedBody = [&](std::size_t i) {
        if (!track) {
            body(i);
            return;
        }
        const Clock::time_point t0 = Clock::now();
        body(i);
        wallUs[i] = usSince(t0);
    };
    auto timedReady = [&](std::size_t i, std::size_t done_cnt) {
        if (!track)
            return on_ready(i);
        const Clock::time_point t0 = Clock::now();
        const bool keep = on_ready(i);
        tel->afterMerge(wallUs[i], usSince(t0), res.merged, done_cnt);
        return keep;
    };

    if (workers <= 1) {
        // Inline path: the exact operation sequence the parallel merge
        // reproduces (body under a trapping context, replay, merge).
        for (std::size_t i = 0; i < num_jobs; ++i) {
            LogContext ctx;
            makeCtx(ctx, i);
            try {
                LogScope scope(ctx);
                timedBody(i);
            } catch (const std::exception& e) {
                replay(i);
                res.failed = true;
                res.failedJob = i;
                res.message = e.what();
                return res;
            }
            replay(i);
            ++res.merged;
            if (!timedReady(i, res.merged)) {
                res.stopped = true;
                return res;
            }
        }
        return res;
    }

    std::mutex mu;
    std::condition_variable cv;
    std::size_t next = 0;                       // guarded by mu
    std::vector<char> done(num_jobs, 0);        // guarded by mu
    std::size_t doneCnt = 0;                    // guarded by mu
    std::map<std::size_t, std::string> errors;  // guarded by mu
    bool cancel = false;                        // guarded by mu
    int active = workers;                       // guarded by mu

    auto workerLoop = [&]() {
        for (;;) {
            std::size_t i;
            {
                std::lock_guard<std::mutex> lk(mu);
                if (cancel || next >= num_jobs)
                    break;
                i = next++;
            }
            LogContext ctx;
            makeCtx(ctx, i);
            std::string err;
            bool ok = true;
            try {
                LogScope scope(ctx);
                timedBody(i);
            } catch (const std::exception& e) {
                ok = false;
                err = e.what();
            } catch (...) {
                ok = false;
                err = "unknown exception escaped campaign job";
            }
            {
                std::lock_guard<std::mutex> lk(mu);
                done[i] = 1;
                ++doneCnt;
                if (!ok) {
                    errors.emplace(i, std::move(err));
                    cancel = true;
                }
            }
            cv.notify_all();
        }
        {
            std::lock_guard<std::mutex> lk(mu);
            --active;
        }
        cv.notify_all();
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w)
        pool.emplace_back(workerLoop);
    auto joinAll = [&]() {
        for (std::thread& t : pool)
            if (t.joinable())
                t.join();
    };

    try {
        for (std::size_t i = 0; i < num_jobs; ++i) {
            bool ready;
            std::size_t doneNow;
            {
                std::unique_lock<std::mutex> lk(mu);
                // Workers claim indices in ascending order, so once
                // every worker has exited an un-done job can never
                // complete: stop waiting for it.
                cv.wait(lk, [&] { return done[i] || active == 0; });
                ready = done[i] != 0;
                doneNow = doneCnt;
                if (ready) {
                    auto it = errors.find(i);
                    if (it != errors.end()) {
                        res.failed = true;
                        res.failedJob = i;
                        res.message = it->second;
                    }
                }
            }
            if (!ready)
                break;
            replay(i);
            if (res.failed)
                break;
            ++res.merged;
            if (!timedReady(i, doneNow)) {
                res.stopped = true;
                std::lock_guard<std::mutex> lk(mu);
                cancel = true;
                break;
            }
        }
        // A failure can hide beyond the merged prefix when merging
        // stopped first; surface the lowest-index one.
        if (!res.failed && !res.stopped) {
            std::lock_guard<std::mutex> lk(mu);
            if (!errors.empty()) {
                res.failed = true;
                res.failedJob = errors.begin()->first;
                res.message = errors.begin()->second;
            }
        }
    } catch (...) {
        {
            std::lock_guard<std::mutex> lk(mu);
            cancel = true;
        }
        joinAll();
        throw;
    }
    joinAll();
    return res;
}

} // namespace tmsim
