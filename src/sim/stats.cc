#include "sim/stats.hh"

namespace tmsim {

StatsRegistry::Counter&
StatsRegistry::counter(const std::string& name)
{
    return counters[name];
}

std::uint64_t
StatsRegistry::value(const std::string& name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second.value();
}

std::uint64_t
StatsRegistry::sum(const std::string& pattern) const
{
    auto star = pattern.find('*');
    if (star == std::string::npos)
        return value(pattern);

    const std::string prefix = pattern.substr(0, star);
    const std::string suffix = pattern.substr(star + 1);
    std::uint64_t total = 0;
    for (const auto& [name, ctr] : counters) {
        if (name.size() < prefix.size() + suffix.size())
            continue;
        if (name.compare(0, prefix.size(), prefix) != 0)
            continue;
        if (name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
            continue;
        }
        total += ctr.value();
    }
    return total;
}

void
StatsRegistry::resetAll()
{
    for (auto& [name, ctr] : counters)
        ctr.reset();
}

void
StatsRegistry::dump(std::ostream& os) const
{
    for (const auto& [name, ctr] : counters)
        os << name << " " << ctr.value() << "\n";
}

std::vector<std::string>
StatsRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(counters.size());
    for (const auto& [name, ctr] : counters)
        out.push_back(name);
    return out;
}

} // namespace tmsim
