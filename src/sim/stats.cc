#include "sim/stats.hh"

#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace tmsim {

namespace {

/** Counter names are plain dotted identifiers today, but keep the JSON
 *  well-formed even if somebody registers an exotic one. */
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::string
fmtDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

int
StatsRegistry::Distribution::highestBucket() const
{
    for (int b = numBuckets() - 1; b >= 0; --b)
        if (bucketCounts[static_cast<size_t>(b)])
            return b;
    return -1;
}

std::uint64_t
StatsRegistry::Distribution::quantile(double q) const
{
    if (cnt == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the sample we want, 1-based: the ceil(q * count)-th
    // smallest sample (so p50 of two samples is the first, matching
    // the "at least q of the data is <= result" reading).
    std::uint64_t target =
        static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(cnt)));
    if (target < 1)
        target = 1;
    if (target > cnt)
        target = cnt;
    std::uint64_t cum = 0;
    const int top = highestBucket();
    for (int b = 0; b <= top; ++b) {
        cum += bucketCounts[static_cast<size_t>(b)];
        if (cum >= target) {
            // Report the bucket's upper bound, clamped to the observed
            // max: never below the true sample, and at most one bucket
            // width (< 2^-subBits relative) above it.
            const std::uint64_t hi = bucketHi(b);
            return hi < maxVal ? hi : maxVal;
        }
    }
    return maxVal;
}

void
StatsRegistry::Distribution::mergeFrom(const Distribution& other)
{
    if (other.cnt == 0)
        return;
    if (cnt == 0 && subBits != other.subBits) {
        // An empty destination (e.g. a fresh campaign-merge registry)
        // adopts the source's resolution; folding populated histograms
        // of different resolutions would corrupt the bucket counts.
        subBits = other.subBits;
        bucketCounts.assign(static_cast<size_t>(bucketsFor(subBits)), 0);
    }
    if (subBits != other.subBits) {
        fatal("cannot merge distributions with different sub-bucket "
              "bits (%d vs %d)",
              subBits, other.subBits);
    }
    if (cnt == 0) {
        minVal = other.minVal;
        maxVal = other.maxVal;
    } else {
        if (other.minVal < minVal)
            minVal = other.minVal;
        if (other.maxVal > maxVal)
            maxVal = other.maxVal;
    }
    cnt += other.cnt;
    sumVal += other.sumVal;
    for (size_t b = 0; b < bucketCounts.size(); ++b)
        bucketCounts[b] += other.bucketCounts[b];
}

StatsRegistry::Counter&
StatsRegistry::counter(const std::string& name)
{
    return counters[name];
}

StatsRegistry::Distribution&
StatsRegistry::distribution(const std::string& name)
{
    return dists[name];
}

StatsRegistry::Distribution&
StatsRegistry::distribution(const std::string& name, int sub_bucket_bits)
{
    return dists.try_emplace(name, Distribution(sub_bucket_bits))
        .first->second;
}

void
StatsRegistry::formula(const std::string& name, const std::string& num,
                       const std::string& den)
{
    formulas[name] = Formula{num, den, Formula::Kind::Ratio};
}

void
StatsRegistry::jainFairness(const std::string& name,
                            const std::string& pattern)
{
    formulas[name] = Formula{pattern, "", Formula::Kind::JainFairness};
}

std::uint64_t
StatsRegistry::value(const std::string& name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second.value();
}

std::uint64_t
StatsRegistry::sum(const std::string& pattern) const
{
    auto star = pattern.find('*');
    if (star == std::string::npos)
        return value(pattern);

    const std::string prefix = pattern.substr(0, star);
    const std::string suffix = pattern.substr(star + 1);
    std::uint64_t total = 0;
    for (const auto& [name, ctr] : counters) {
        if (name.size() < prefix.size() + suffix.size())
            continue;
        if (name.compare(0, prefix.size(), prefix) != 0)
            continue;
        if (name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
            continue;
        }
        total += ctr.value();
    }
    return total;
}

const StatsRegistry::Distribution*
StatsRegistry::findDistribution(const std::string& name) const
{
    auto it = dists.find(name);
    return it == dists.end() ? nullptr : &it->second;
}

double
StatsRegistry::formulaValue(const std::string& name) const
{
    auto it = formulas.find(name);
    if (it == formulas.end())
        return 0.0;
    const Formula& f = it->second;
    if (f.kind == Formula::Kind::JainFairness) {
        // Jain's index over every counter matching the pattern:
        // (sum x)^2 / (n * sum x^2). 1.0 when all shares are equal,
        // 1/n when one counter holds everything.
        const auto star = f.numerator.find('*');
        const std::string prefix = f.numerator.substr(0, star);
        const std::string suffix =
            star == std::string::npos ? "" : f.numerator.substr(star + 1);
        double s = 0.0, sq = 0.0;
        std::uint64_t n = 0;
        for (const auto& [cname, ctr] : counters) {
            if (star == std::string::npos) {
                if (cname != f.numerator)
                    continue;
            } else {
                if (cname.size() < prefix.size() + suffix.size())
                    continue;
                if (cname.compare(0, prefix.size(), prefix) != 0)
                    continue;
                if (cname.compare(cname.size() - suffix.size(),
                                  suffix.size(), suffix) != 0) {
                    continue;
                }
            }
            const double x = static_cast<double>(ctr.value());
            s += x;
            sq += x * x;
            ++n;
        }
        if (n == 0)
            return 0.0;
        // All matched counters hold zero: equal shares of nothing is
        // still perfectly fair, not "no data" (which is n == 0 above).
        if (sq == 0.0)
            return 1.0;
        return (s * s) / (static_cast<double>(n) * sq);
    }
    const std::uint64_t den = sum(f.denominator);
    if (den == 0)
        return 0.0;
    return static_cast<double>(sum(f.numerator)) /
           static_cast<double>(den);
}

void
StatsRegistry::mergeFrom(const StatsRegistry& other)
{
    for (const auto& [name, ctr] : other.counters)
        counters[name] += ctr.value();
    for (const auto& [name, dist] : other.dists)
        dists[name].mergeFrom(dist);
    for (const auto& [name, f] : other.formulas)
        formulas.emplace(name, f);
}

void
StatsRegistry::resetAll()
{
    for (auto& [name, ctr] : counters)
        ctr.reset();
    for (auto& [name, dist] : dists)
        dist.reset();
}

void
StatsRegistry::dump(std::ostream& os) const
{
    os << "# tmsim-stats schema " << statsSchemaVersion << "\n";
    for (const auto& [name, ctr] : counters)
        os << name << " " << ctr.value() << "\n";
    for (const auto& [name, dist] : dists) {
        os << name << "::samples " << dist.count() << "\n";
        os << name << "::min " << dist.min() << "\n";
        os << name << "::max " << dist.max() << "\n";
        os << name << "::mean " << fmtDouble(dist.mean()) << "\n";
        os << name << "::p50 " << dist.quantile(0.50) << "\n";
        os << name << "::p90 " << dist.quantile(0.90) << "\n";
        os << name << "::p99 " << dist.quantile(0.99) << "\n";
        os << name << "::p999 " << dist.quantile(0.999) << "\n";
        const int top = dist.highestBucket();
        for (int b = 0; b <= top; ++b) {
            if (dist.bucketCount(b) == 0)
                continue;
            os << name << "::bucket[" << dist.bucketLo(b) << ","
               << dist.bucketHi(b) << "] " << dist.bucketCount(b)
               << "\n";
        }
    }
    for (const auto& [name, f] : formulas)
        os << name << " " << fmtDouble(formulaValue(name)) << "\n";
}

void
StatsRegistry::dumpJson(std::ostream& os) const
{
    os << "{\n";
    os << "  \"schema\": \"tmsim-stats\",\n";
    os << "  \"schema_version\": " << statsSchemaVersion << ",\n";

    os << "  \"counters\": {";
    bool first = true;
    for (const auto& [name, ctr] : counters) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": " << ctr.value();
        first = false;
    }
    os << "\n  },\n";

    os << "  \"distributions\": {";
    first = true;
    for (const auto& [name, dist] : dists) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": {\"samples\": " << dist.count()
           << ", \"min\": " << dist.min() << ", \"max\": " << dist.max()
           << ", \"mean\": " << fmtDouble(dist.mean())
           << ", \"total\": " << dist.total()
           << ", \"p50\": " << dist.quantile(0.50)
           << ", \"p90\": " << dist.quantile(0.90)
           << ", \"p99\": " << dist.quantile(0.99)
           << ", \"p999\": " << dist.quantile(0.999)
           << ", \"sub_bucket_bits\": " << dist.subBucketBits()
           << ", \"buckets\": [";
        const int top = dist.highestBucket();
        bool firstB = true;
        for (int b = 0; b <= top; ++b) {
            if (dist.bucketCount(b) == 0)
                continue;
            os << (firstB ? "" : ", ") << "{\"lo\": "
               << dist.bucketLo(b) << ", \"hi\": "
               << dist.bucketHi(b) << ", \"count\": "
               << dist.bucketCount(b) << "}";
            firstB = false;
        }
        os << "]}";
        first = false;
    }
    os << "\n  },\n";

    os << "  \"formulas\": {";
    first = true;
    for (const auto& [name, f] : formulas) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": {\"value\": " << fmtDouble(formulaValue(name))
           << ", \"numerator\": \"" << jsonEscape(f.numerator)
           << "\", \"denominator\": \"" << jsonEscape(f.denominator)
           << "\", \"kind\": \""
           << (f.kind == Formula::Kind::JainFairness ? "jain_fairness"
                                                     : "ratio")
           << "\"}";
        first = false;
    }
    os << "\n  }\n";
    os << "}\n";
}

std::vector<std::string>
StatsRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(counters.size());
    for (const auto& [name, ctr] : counters)
        out.push_back(name);
    return out;
}

} // namespace tmsim
