#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace tmsim {

void
EventQueue::schedule(Cycles delay, Callback cb)
{
    scheduleAt(_curTick + delay, cb);
}

void
EventQueue::pushRing(Tick when, Callback& cb)
{
    Bucket& b = ring[bucketIndex(when)];
    b.cbs.push_back(cb);
    occupied |= std::uint64_t{1} << bucketIndex(when);
    ++ringCount;
}

void
EventQueue::scheduleAt(Tick when, Callback cb)
{
    if (when < _curTick)
        panic("event scheduled in the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_curTick));
    if (when - _curTick < ringTicks) {
        pushRing(when, cb);
    } else {
        overflow.push_back(FarEvent{when, nextSeq++, cb});
        std::push_heap(overflow.begin(), overflow.end(), Later{});
    }
}

void
EventQueue::advanceTo(Tick t)
{
    _curTick = t;
    // Drain every overflow event now inside [t, t + ringTicks). The
    // heap pops in (when, seq) order, i.e. scheduling order per tick,
    // and each target bucket is empty (its previous window tick has
    // already executed), so FIFO order within the tick is preserved.
    // t + ringTicks cannot overflow: t is always the tick of a pending
    // event, or a caller-supplied maxTick below it.
    while (!overflow.empty() && overflow.front().when - t < ringTicks) {
        std::pop_heap(overflow.begin(), overflow.end(), Later{});
        FarEvent& e = overflow.back();
        pushRing(e.when, e.cb);
        overflow.pop_back();
    }
}

Tick
EventQueue::run(Tick maxTick)
{
    for (;;) {
        const size_t idx = bucketIndex(_curTick);
        const std::uint64_t bit = std::uint64_t{1} << idx;
        if (occupied & bit) {
            Bucket& b = ring[idx];
            // Index-based loop: a callback may push into this very
            // bucket (same-tick scheduling), growing the vector.
            while (b.head < b.cbs.size()) {
                Callback cb = b.cbs[b.head++];
                --ringCount;
                ++numExecuted;
                cb();
            }
            b.cbs.clear();
            b.head = 0;
            occupied &= ~bit;
        }

        if (ringCount == 0 && overflow.empty())
            return _curTick;

        // Next pending tick. Ring events always precede overflow ones
        // (overflow implies when >= curTick + ringTicks).
        Tick next;
        if (ringCount != 0) {
            // First occupied bucket cyclically after idx; delta in
            // [1, ringTicks - 1]. rotr(occupied, idx + 1) puts bucket
            // idx + 1 at bit 0 (s == 0 means idx == 63: no rotation).
            const unsigned s = (idx + 1) & (ringTicks - 1);
            const std::uint64_t rot =
                s ? (occupied >> s) | (occupied << (ringTicks - s))
                  : occupied;
            next = _curTick + 1 +
                   static_cast<Tick>(__builtin_ctzll(rot));
        } else {
            next = overflow.front().when;
        }

        if (next > maxTick) {
            advanceTo(maxTick);
            return _curTick;
        }
        advanceTo(next);
    }
}

} // namespace tmsim
