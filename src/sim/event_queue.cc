#include "sim/event_queue.hh"

#include <utility>

#include "sim/logging.hh"

namespace tmsim {

void
EventQueue::schedule(Cycles delay, Callback cb)
{
    scheduleAt(_curTick + delay, std::move(cb));
}

void
EventQueue::scheduleAt(Tick when, Callback cb)
{
    if (when < _curTick)
        panic("event scheduled in the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_curTick));
    events.push(Event{when, nextSeq++, std::move(cb)});
}

Tick
EventQueue::run(Tick maxTick)
{
    while (!events.empty()) {
        const Event& top = events.top();
        if (top.when > maxTick) {
            _curTick = maxTick;
            return _curTick;
        }
        _curTick = top.when;
        // Move the callback out before popping so the callback may
        // schedule further events without invalidating 'top'.
        Callback cb = std::move(const_cast<Event&>(top).cb);
        events.pop();
        ++numExecuted;
        cb();
    }
    return _curTick;
}

} // namespace tmsim
