/**
 * @file
 * In-process parallel campaign engine: runs N independent jobs — each
 * owning fully isolated simulation state (Machine, StatsRegistry, Rng,
 * fuzz interpreter) — across a pool of host worker threads, and merges
 * their results on the caller's thread in strict job-index order
 * regardless of completion order.
 *
 * Determinism contract (see DESIGN.md section 11): because jobs share
 * no mutable state (the logging refactor made diagnostics per-context,
 * and every other simulator object is instance-owned) and because the
 * merge callback fires exactly in job-index order, a campaign run with
 * any worker count produces bitwise-identical merged output — stdout,
 * aggregated stats, replay files — to a sequential run of the same
 * jobs. jobs <= 1 does not spawn threads at all: the caller thread
 * runs body+merge per job in a plain loop, which is by construction
 * the same sequence of operations the parallel merge performs.
 *
 * Failure contract: each job body runs under a LogContext with
 * throwOnFatal set, so a worker's fatal() (or any escaped exception)
 * cancels the pool — no further jobs start, in-flight jobs drain, and
 * the failure with the smallest job index among those merged is
 * surfaced to the caller instead of exit()ing mid-merge. The merge
 * callback can also stop the campaign early by returning false
 * (e.g. "enough failing seeds reported"); that is a cancellation, not
 * a failure.
 */

#ifndef TMSIM_SIM_CAMPAIGN_HH
#define TMSIM_SIM_CAMPAIGN_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace tmsim {

/** How a campaign ended early (no member set → ran to completion). */
struct CampaignResult
{
    /** A job body threw (trapped fatal() or other exception). */
    bool failed = false;
    /** Index of the failing job surfaced to the caller. */
    std::size_t failedJob = 0;
    /** The failing job's diagnostic (fatal()/exception message). */
    std::string message;
    /** Merge requested an early stop (not a failure). */
    bool stopped = false;
    /** Jobs actually merged, in index order from 0. */
    std::size_t merged = 0;

    explicit operator bool() const { return failed; }
};

/** Campaign-wide knobs shared by every call site. */
struct CampaignOptions
{
    /** Host worker threads; <= 1 runs everything inline. */
    int jobs = 1;
    /** Quiet flag of each job's LogContext (suppresses warn/inform
     *  from inside worker simulations). */
    bool quiet = false;

    // --- live telemetry ---
    //
    // Everything below is strictly OFF the bitwise-identity path: it
    // writes to stderr, the heartbeat file, and the caller-owned
    // telemetry registry only, never to merged stdout or to the
    // registry that aggregates job stats (wall-clock samples are
    // nondeterministic and would break the --jobs 1 vs --jobs N
    // identity that campaign_smoke/sweep_smoke enforce).

    /** Emit a rate-limited progress line (merged/total, failures,
     *  jobs/s, ETA) to stderr while the campaign runs. */
    bool progress = false;

    /** Write schema-versioned NDJSON heartbeat records (one JSON
     *  object per line; see STATS.md "Campaign heartbeat") to this
     *  file. Empty = off. The final record carries HDR summaries of
     *  per-job wall time and merge time. */
    std::string heartbeatFile;

    /** Minimum milliseconds between progress/heartbeat emissions.
     *  0 emits at every merge (tests). A final record/line is always
     *  emitted regardless of the interval. */
    int telemetryIntervalMs = 500;

    /** Optional caller-owned registry receiving the
     *  campaign.job_wall_us and campaign.merge_us HDR distributions.
     *  Keep it separate from the merged job-stats registry. */
    StatsRegistry* telemetry = nullptr;

    /** App-level failure count (e.g. failing fuzz seeds) shown in
     *  progress/heartbeat output; called on the caller thread. */
    std::function<std::uint64_t()> failures;
};

/**
 * Type-erased pool core. Most callers want the typed runCampaign()
 * wrapper below; the core exists so the threading machinery compiles
 * once.
 */
class CampaignPool
{
  public:
    /** Runs job @p index; called on a worker (or inline) under a
     *  fatal-trapping LogContext. */
    using JobFn = std::function<void(std::size_t index)>;

    /** Called on the caller's thread once job @p index (and every job
     *  before it) completed; return false to stop the campaign. */
    using ReadyFn = std::function<bool(std::size_t index)>;

    static CampaignResult run(std::size_t num_jobs,
                              const CampaignOptions& opt,
                              const JobFn& body, const ReadyFn& on_ready);
};

/**
 * Run @p num_jobs jobs of @p job (index → Result) and fold each result
 * through @p merge (index, Result&&) → bool on the caller's thread in
 * ascending index order. Results are buffered at most as long as an
 * earlier job is still running.
 */
template <typename Result, typename Job, typename Merge>
CampaignResult
runCampaign(std::size_t num_jobs, const CampaignOptions& opt, Job&& job,
            Merge&& merge)
{
    std::vector<std::optional<Result>> results(num_jobs);
    CampaignPool::JobFn body = [&](std::size_t i) {
        results[i].emplace(job(i));
    };
    CampaignPool::ReadyFn ready = [&](std::size_t i) {
        Result r = std::move(*results[i]);
        results[i].reset();
        return merge(i, std::move(r));
    };
    return CampaignPool::run(num_jobs, opt, body, ready);
}

} // namespace tmsim

#endif // TMSIM_SIM_CAMPAIGN_HH
