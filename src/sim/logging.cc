#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace tmsim {

namespace {

std::string
vstrfmt(const char* fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

/** The active context of this host thread (nullptr → process default).
 *  Thread-local so concurrent campaign workers never share routing. */
thread_local LogContext* activeCtx = nullptr;

void
emit(const char* level, const std::string& msg)
{
    const LogContext& ctx = currentLogContext();
    if (ctx.sink) {
        ctx.sink(level, msg);
        return;
    }
    std::fprintf(stderr, "%s: %s\n", level, msg.c_str());
}

} // namespace

LogContext&
defaultLogContext()
{
    static LogContext ctx;
    return ctx;
}

LogContext&
currentLogContext()
{
    return activeCtx ? *activeCtx : defaultLogContext();
}

LogContext
LogContext::inherit()
{
    return currentLogContext();
}

LogScope::LogScope(LogContext& ctx) : prev(activeCtx)
{
    activeCtx = &ctx;
}

LogScope::~LogScope()
{
    activeCtx = prev;
}

std::string
strfmt(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
fatal(const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    if (currentLogContext().throwOnFatal)
        throw FatalError(s);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
warn(const char* fmt, ...)
{
    if (currentLogContext().quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    emit("warn", s);
}

void
inform(const char* fmt, ...)
{
    if (currentLogContext().quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrfmt(fmt, ap);
    va_end(ap);
    emit("info", s);
}

} // namespace tmsim
