/**
 * @file
 * gem5-style diagnostics: panic() for simulator bugs, fatal() for user
 * errors, warn()/inform() for status messages.
 *
 * Routing is context-based so independent machines can run on
 * concurrent host threads without sharing mutable state. Every thread
 * has a current LogContext (installed with LogScope, defaulting to the
 * process-wide context); warn()/inform() consult its quiet flag and
 * sink, and fatal() either exits (interactive tools, the historical
 * behaviour) or throws FatalError when the context traps fatals (a
 * campaign worker must cancel its pool, not exit() the process
 * mid-merge). panic() always aborts: it flags a simulator bug and a
 * core dump is the most useful artefact.
 */

#ifndef TMSIM_SIM_LOGGING_HH
#define TMSIM_SIM_LOGGING_HH

#include <cstdarg>
#include <functional>
#include <stdexcept>
#include <string>

namespace tmsim {

/** Thrown by fatal() instead of exiting when the current LogContext
 *  has throwOnFatal set (campaign workers, tests). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg)
        : std::runtime_error(msg)
    {
    }
};

/**
 * Per-machine / per-thread diagnostic routing. A context is plain
 * data; it is activated for the calling thread by a LogScope. Nested
 * scopes shadow outer ones (Machine::run() installs the machine's own
 * context for the duration of the run), and a freshly constructed
 * context inherits nothing — callers that want inheritance copy the
 * current context explicitly (see LogContext::inherit()).
 */
class LogContext
{
  public:
    /** Sink for one formatted diagnostic line. @p level is "warn" or
     *  "info". Only consulted when set; the default is stderr. */
    using Sink = std::function<void(const char* level,
                                    const std::string& msg)>;

    /** Suppress warn()/inform() routed through this context. */
    bool quiet = false;

    /** fatal() throws FatalError instead of printing + exit(1). */
    bool throwOnFatal = false;

    /** Optional capture sink for warn()/inform() (quiet still wins). */
    Sink sink;

    /** A context copying the calling thread's current quiet /
     *  throwOnFatal / sink settings (how Machine picks up a campaign
     *  worker's configuration at construction time). */
    static LogContext inherit();
};

/**
 * RAII activation of a LogContext for the calling thread. The context
 * must outlive the scope. Scopes nest; destruction restores the
 * previously active context.
 */
class LogScope
{
  public:
    explicit LogScope(LogContext& ctx);
    ~LogScope();

    LogScope(const LogScope&) = delete;
    LogScope& operator=(const LogScope&) = delete;

  private:
    LogContext* prev;
};

/** The calling thread's active context (the process-wide default
 *  context when no LogScope is live on this thread). */
LogContext& currentLogContext();

/** The process-wide fallback context. Tools and benches set its
 *  quiet flag once at startup; campaign workers scope their own
 *  LogContext with LogScope instead. */
LogContext& defaultLogContext();

/**
 * Abort the process with a message. Call when something happened that
 * should never happen regardless of user input: a simulator bug.
 */
[[noreturn]] void panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments). Exits the process, unless the current LogContext traps
 * fatals, in which case a FatalError carrying the formatted message is
 * thrown so the enclosing campaign/test harness can surface it.
 */
[[noreturn]] void fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning about imperfectly modelled behaviour. */
void warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Printf-style formatting into a std::string. */
std::string strfmt(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace tmsim

#endif // TMSIM_SIM_LOGGING_HH
