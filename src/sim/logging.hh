/**
 * @file
 * gem5-style diagnostics: panic() for simulator bugs, fatal() for user
 * errors, warn()/inform() for status messages.
 */

#ifndef TMSIM_SIM_LOGGING_HH
#define TMSIM_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace tmsim {

/**
 * Abort the process with a message. Call when something happened that
 * should never happen regardless of user input: a simulator bug.
 */
[[noreturn]] void panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Exit with an error message. Call when the simulation cannot continue
 * because of a user error (bad configuration, invalid arguments).
 */
[[noreturn]] void fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning about imperfectly modelled behaviour. */
void warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational status message. */
void inform(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Suppress warn()/inform() output (used by tests and benches). */
void setQuiet(bool quiet);

/** Printf-style formatting into a std::string. */
std::string strfmt(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace tmsim

#endif // TMSIM_SIM_LOGGING_HH
