/**
 * @file
 * Strict numeric CLI parsing shared by the tools. Bare strtoull/atoi
 * silently turn "abc" into 0 — a fuzz campaign invoked with
 * "--seeds abc" would report "0/0 seeds clean" and exit 0. These
 * helpers fatal() on empty input, trailing garbage and range overflow
 * so a mistyped flag aborts the run instead of faking success.
 */

#ifndef TMSIM_SIM_PARSE_HH
#define TMSIM_SIM_PARSE_HH

#include <cerrno>
#include <climits>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "sim/logging.hh"

namespace tmsim {

/** Parse @p val as an unsigned 64-bit number (base prefixes allowed);
 *  @p flag names the option in diagnostics. */
inline std::uint64_t
parseU64(const std::string& val, const char* flag)
{
    const char* s = val.c_str();
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s, &end, 0);
    if (end == s || *end != '\0')
        fatal("%s: '%s' is not a number", flag, s);
    if (errno == ERANGE)
        fatal("%s: '%s' is out of range", flag, s);
    if (val.find('-') != std::string::npos)
        fatal("%s: '%s' must be non-negative", flag, s);
    return static_cast<std::uint64_t>(v);
}

/** Parse @p val as a signed int within [@p min, @p max]. */
inline int
parseInt(const std::string& val, const char* flag, int min = INT_MIN,
         int max = INT_MAX)
{
    const char* s = val.c_str();
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(s, &end, 0);
    if (end == s || *end != '\0')
        fatal("%s: '%s' is not a number", flag, s);
    if (errno == ERANGE || v < min || v > max)
        fatal("%s: %s is out of range [%d, %d]", flag, s, min, max);
    return static_cast<int>(v);
}

/** Parse @p val as a finite double within [@p min, @p max]. The
 *  negated-range comparison also rejects NaN. */
inline double
parseDouble(const std::string& val, const char* flag, double min,
            double max)
{
    const char* s = val.c_str();
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(s, &end);
    if (end == s || *end != '\0')
        fatal("%s: '%s' is not a number", flag, s);
    if (errno == ERANGE || !(v >= min && v <= max))
        fatal("%s: %s is out of range [%g, %g]", flag, s, min, max);
    return v;
}

} // namespace tmsim

#endif // TMSIM_SIM_PARSE_HH
