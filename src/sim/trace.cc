#include "sim/trace.hh"

#include "sim/logging.hh"

namespace tmsim {

namespace {

/** Display name of an event; also the slice name in the viewer. */
const char*
evName(TxTracer::Ev ev)
{
    switch (ev) {
    case TxTracer::Ev::TxOuter: return "tx";
    case TxTracer::Ev::TxNested: return "tx.nested";
    case TxTracer::Ev::TxOpen: return "tx.open";
    case TxTracer::Ev::SubsumedBegin: return "subsumed_begin";
    case TxTracer::Ev::Validated: return "validated";
    case TxTracer::Ev::ViolationRaised: return "violation_raised";
    case TxTracer::Ev::ViolationDelivered: return "violation_delivered";
    case TxTracer::Ev::AbortRequested: return "abort_requested";
    case TxTracer::Ev::Arbitration: return "arbitration";
    case TxTracer::Ev::CommitHandler: return "handler.commit";
    case TxTracer::Ev::ViolationHandler: return "handler.violation";
    case TxTracer::Ev::AbortHandler: return "handler.abort";
    case TxTracer::Ev::Backoff: return "backoff";
    case TxTracer::Ev::LockStall: return "stall.lock";
    }
    return "?";
}

const char*
outcomeName(TxTracer::Outcome out)
{
    switch (out) {
    case TxTracer::Outcome::None: return "none";
    case TxTracer::Outcome::Commit: return "commit";
    case TxTracer::Outcome::OpenCommit: return "open_commit";
    case TxTracer::Outcome::ClosedMerge: return "closed_merge";
    case TxTracer::Outcome::Rollback: return "rollback";
    case TxTracer::Outcome::Abort: return "abort";
    }
    return "?";
}

} // namespace

TxTracer&
TxTracer::nil()
{
    static TxTracer t;
    return t;
}

void
TxTracer::enable(bool e)
{
    if (e && !clock)
        fatal("cannot enable a TxTracer with no clock (null sink)");
    on = e;
}

void
TxTracer::clear()
{
    events.clear();
    dropped = 0;
}

void
TxTracer::push(const Event& e)
{
    if (events.size() >= capacity) {
        ++dropped;
        return;
    }
    if (events.empty())
        events.reserve(capacity < 4096 ? capacity : 4096);
    events.push_back(e);
}

void
TxTracer::record(Ev ev, Phase ph, CpuId cpu, int depth, Addr addr,
                 CpuId other, Outcome out, Tick dur)
{
    push(Event{clock->curTick(), dur, addr, cpu, other, ev, ph,
               static_cast<std::uint8_t>(depth), out});
}

void
TxTracer::recordSpan(Ev ev, CpuId cpu, Tick start, Tick dur)
{
    push(Event{start, dur, invalidAddr, cpu, -1, ev, Phase::Complete, 0,
               Outcome::None});
}

void
TxTracer::writeChromeTrace(std::ostream& os) const
{
    const Tick cycles = clock ? clock->curTick() : 0;
    os << "{\n";
    os << "\"otherData\": {\"schema\": \"tmsim-trace\", "
       << "\"schema_version\": " << traceSchemaVersion << ", "
       << "\"cycles\": " << cycles << ", \"cpus\": " << numCpus << ", "
       << "\"events\": " << events.size() << ", \"dropped\": " << dropped
       << "},\n";
    os << "\"displayTimeUnit\": \"ns\",\n";
    os << "\"traceEvents\": [\n";

    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",\n";
        first = false;
    };

    for (int c = 0; c < numCpus; ++c) {
        sep();
        os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, "
           << "\"tid\": " << c << ", \"args\": {\"name\": \"cpu" << c
           << "\"}}";
    }

    for (const Event& e : events) {
        sep();
        os << "{\"name\": \"";
        // The viewer pairs an E with the most recent B on the track, so
        // the E reuses the slice kind implicitly; emit the generic name.
        os << (e.phase == Phase::SliceEnd ? "tx" : evName(e.ev));
        os << "\", \"ph\": \"";
        switch (e.phase) {
        case Phase::SliceBegin: os << "B"; break;
        case Phase::SliceEnd: os << "E"; break;
        case Phase::Instant: os << "i"; break;
        case Phase::Complete: os << "X"; break;
        }
        os << "\", \"ts\": " << e.ts << ", \"pid\": 0, \"tid\": " << e.cpu;
        if (e.phase == Phase::Complete)
            os << ", \"dur\": " << e.dur;
        if (e.phase == Phase::Instant)
            os << ", \"s\": \"t\"";
        os << ", \"args\": {";
        bool firstArg = true;
        auto arg = [&](const char* key) -> std::ostream& {
            if (!firstArg)
                os << ", ";
            firstArg = false;
            os << "\"" << key << "\": ";
            return os;
        };
        if (e.phase == Phase::SliceBegin)
            arg("kind") << "\"" << evName(e.ev) << "\"";
        if (e.phase != Phase::Complete)
            arg("depth") << static_cast<int>(e.depth);
        if (e.phase == Phase::SliceEnd)
            arg("outcome") << "\"" << outcomeName(e.outcome) << "\"";
        if (e.addr != invalidAddr)
            arg("addr") << "\"0x" << std::hex << e.addr << std::dec
                        << "\"";
        if (e.other >= 0)
            arg("attacker") << e.other;
        os << "}}";
    }
    os << "\n]\n}\n";
}

} // namespace tmsim
