/**
 * @file
 * TxTracer: per-transaction lifecycle tracing into a bounded in-memory
 * buffer, exportable as Chrome trace-event JSON (loadable in Perfetto /
 * chrome://tracing).
 *
 * The trace model (see DESIGN.md section 8):
 *  - one track per CPU (pid 0, tid = cpu id);
 *  - every hardware nesting level is a duration slice: a "B" event at
 *    xbegin and an "E" event at commit/merge/rollback, so the slice
 *    stack depth in the viewer equals the hardware nesting depth;
 *  - instant events mark subsumed begins, validation, violations
 *    (raised and delivered, with conflicting address, attacker CPU and
 *    nesting level), aborts and handler dispatches;
 *  - complete ("X") events with explicit durations cover backoff and
 *    lock-stall intervals.
 *
 * Tracing is compiled in but cheap when off: every recorder is an
 * inline enabled-flag test that falls through without a call. Emitters
 * hold a TxTracer* that defaults to TxTracer::nil(), a process-wide
 * permanently-disabled sink, so no call site needs a null check.
 */

#ifndef TMSIM_SIM_TRACE_HH
#define TMSIM_SIM_TRACE_HH

#include <cstdint>
#include <ostream>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace tmsim {

/** Bumped whenever the exported trace shape changes. */
constexpr int traceSchemaVersion = 1;

class TxTracer
{
  public:
    /** What happened. Slice kinds open a B/E pair; the rest are
     *  instants or explicit-duration spans. */
    enum class Ev : std::uint8_t
    {
        // Slices (B at begin; the matching E carries an Outcome).
        TxOuter,
        TxNested,
        TxOpen,
        // Instants.
        SubsumedBegin,
        Validated,
        ViolationRaised,
        ViolationDelivered,
        AbortRequested,
        /** A contention-manager decision went against this CPU: it
         *  self-violated, was evicted, or a committer yielded to it
         *  (addr = conflicting unit, other = opposing CPU). */
        Arbitration,
        CommitHandler,
        ViolationHandler,
        AbortHandler,
        // Explicit-duration spans.
        Backoff,
        LockStall,
    };

    /** How a slice ended (E events only). */
    enum class Outcome : std::uint8_t
    {
        None,
        Commit,
        OpenCommit,
        ClosedMerge,
        Rollback,
        Abort,
    };

    static constexpr std::size_t defaultCapacity = 1u << 20;

    /** A permanently-disabled null sink; the default target of every
     *  emitter so the off path is a single predictable branch. */
    static TxTracer& nil();

    /** Disabled sink with no clock; enable() on it is a fatal error. */
    TxTracer() = default;

    /** A real tracer stamping events from @p eq's clock. */
    explicit TxTracer(const EventQueue& eq,
                      std::size_t max_events = defaultCapacity)
        : clock(&eq), capacity(max_events)
    {
    }

    bool enabled() const { return on; }

    /** Turn recording on/off. Buffered events are kept. */
    void enable(bool e);

    /** Number of CPU tracks named in the export metadata. */
    void setNumCpus(int n) { numCpus = n; }

    // --- recorders (all no-ops while disabled) ---

    /** Open a nesting-level slice. */
    void
    beginTx(CpuId cpu, Ev kind, int depth)
    {
        if (on)
            record(kind, Phase::SliceBegin, cpu, depth, invalidAddr, -1,
                   Outcome::None, 0);
    }

    /** Close the innermost open slice on @p cpu's track. */
    void
    endTx(CpuId cpu, int depth, Outcome out, Addr addr = invalidAddr)
    {
        if (on)
            record(Ev::TxOuter, Phase::SliceEnd, cpu, depth, addr, -1,
                   out, 0);
    }

    /** Point event; @p addr / @p other default to "not applicable". */
    void
    instant(CpuId cpu, Ev ev, int depth, Addr addr = invalidAddr,
            CpuId other = -1)
    {
        if (on)
            record(ev, Phase::Instant, cpu, depth, addr, other,
                   Outcome::None, 0);
    }

    /** Interval with an explicit [start, start+dur) extent. */
    void
    span(CpuId cpu, Ev ev, Tick start, Tick dur)
    {
        if (on)
            recordSpan(ev, cpu, start, dur);
    }

    // --- buffer state ---

    std::size_t eventCount() const { return events.size(); }
    std::size_t droppedCount() const { return dropped; }
    void clear();

    /**
     * Export the buffer as Chrome trace-event JSON: a single object
     * with otherData (schema, cycle count, buffer accounting) and a
     * traceEvents array, one event per line so downstream line-based
     * tools (tools/trace_report) need no full JSON parser.
     */
    void writeChromeTrace(std::ostream& os) const;

  private:
    enum class Phase : std::uint8_t
    {
        SliceBegin,
        SliceEnd,
        Instant,
        Complete,
    };

    struct Event
    {
        Tick ts;
        Tick dur;
        Addr addr;
        CpuId cpu;
        CpuId other;
        Ev ev;
        Phase phase;
        std::uint8_t depth;
        Outcome outcome;
    };

    void record(Ev ev, Phase ph, CpuId cpu, int depth, Addr addr,
                CpuId other, Outcome out, Tick dur);
    void recordSpan(Ev ev, CpuId cpu, Tick start, Tick dur);
    void push(const Event& e);

    const EventQueue* clock = nullptr;
    std::size_t capacity = defaultCapacity;
    bool on = false;
    int numCpus = 0;
    std::size_t dropped = 0;
    std::vector<Event> events;
};

} // namespace tmsim

#endif // TMSIM_SIM_TRACE_HH
