/**
 * @file
 * Fundamental scalar types shared by every simulator module.
 */

#ifndef TMSIM_SIM_TYPES_HH
#define TMSIM_SIM_TYPES_HH

#include <cstdint>

namespace tmsim {

/** Simulated time, in processor clock cycles. */
using Tick = std::uint64_t;

/** A duration, in processor clock cycles. */
using Cycles = std::uint64_t;

/** A simulated physical byte address. */
using Addr = std::uint64_t;

/** Identifier of a hardware CPU context, 0-based. */
using CpuId = int;

/** Transaction nesting level; 0 means "not in a transaction". */
using NestLevel = int;

/** A 64-bit data word, the granularity of simulated loads and stores. */
using Word = std::uint64_t;

/** Number of bytes in a simulated data word. */
constexpr Addr wordBytes = 8;

/** An invalid/sentinel address. */
constexpr Addr invalidAddr = ~static_cast<Addr>(0);

} // namespace tmsim

#endif // TMSIM_SIM_TYPES_HH
