/**
 * @file
 * Deterministic discrete-event simulation queue.
 *
 * All simulated concurrency in tmsim is driven by one EventQueue per
 * Machine. Events scheduled for the same tick fire in FIFO order of
 * scheduling, which makes every run bit-reproducible for a given seed.
 *
 * Internally the queue is a tick-bucketed calendar: a 64-slot ring of
 * flat FIFO buckets covers the window [curTick, curTick + 64), which
 * absorbs nearly every event the simulator schedules (pipeline delays,
 * bus beats, same-tick wakeups). Events beyond the window land in an
 * overflow min-heap keyed by (tick, sequence) and are drained into the
 * ring — in scheduling order — when the window slides past them, so
 * same-tick FIFO semantics are identical to the former global
 * priority queue. Callbacks are stored in a small-buffer-optimized
 * InlineCallback, so the common schedule path performs no heap
 * allocation at all (buckets reuse their capacity tick after tick).
 */

#ifndef TMSIM_SIM_EVENT_QUEUE_HH
#define TMSIM_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <vector>

#include "sim/types.hh"

namespace tmsim {

/**
 * A fixed-capacity, trivially-copyable callable. Every event callback
 * in the simulator is a tiny capture (a coroutine handle, a task
 * pointer, a couple of references); storing them inline removes the
 * per-event heap allocation std::function used to make.
 */
class InlineCallback
{
  public:
    /** Inline capture capacity in bytes. */
    static constexpr size_t capacity = 32;

    InlineCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineCallback>>>
    InlineCallback(F f)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= capacity,
                      "event callback capture too large for "
                      "InlineCallback; shrink the lambda capture");
        static_assert(std::is_trivially_copyable_v<Fn>,
                      "event callbacks must be trivially copyable");
        static_assert(alignof(Fn) <= alignof(std::max_align_t));
        ::new (static_cast<void*>(buf)) Fn(f);
        invokeFn = [](void* p) { (*static_cast<Fn*>(p))(); };
    }

    void operator()() { invokeFn(buf); }

    explicit operator bool() const { return invokeFn != nullptr; }

  private:
    void (*invokeFn)(void*) = nullptr;
    alignas(alignof(std::max_align_t)) unsigned char buf[capacity];
};

/**
 * A time-ordered queue of callbacks. The queue owns the notion of "now"
 * (curTick) for the whole simulated machine.
 */
class EventQueue
{
  public:
    using Callback = InlineCallback;

    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /** Schedule @p cb to run @p delay cycles from now. */
    void schedule(Cycles delay, Callback cb);

    /** Schedule @p cb to run at absolute tick @p when (>= curTick). */
    void scheduleAt(Tick when, Callback cb);

    /**
     * Run events until the queue drains or @p maxTick is reached.
     * @return the tick at which the run stopped.
     */
    Tick run(Tick maxTick = ~static_cast<Tick>(0));

    /** True if no events are pending. */
    bool empty() const { return ringCount == 0 && overflow.empty(); }

    /** Number of pending events. */
    size_t pending() const { return ringCount + overflow.size(); }

    /** Total events executed so far (for stats / determinism checks). */
    std::uint64_t executed() const { return numExecuted; }

  private:
    /** Ring window width in ticks (and bucket count); power of two. */
    static constexpr Tick ringTicks = 64;

    /** One tick's FIFO of callbacks. head indexes the next callback
     *  to run; the vector keeps its capacity across ticks. */
    struct Bucket
    {
        std::vector<Callback> cbs;
        size_t head = 0;
    };

    struct FarEvent
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    /** Heap comparator: min (when, seq) at the front. */
    struct Later
    {
        bool
        operator()(const FarEvent& a, const FarEvent& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    /** Tick t lives in bucket t & (ringTicks - 1) while t is inside
     *  the window [_curTick, _curTick + ringTicks). */
    static size_t bucketIndex(Tick t) { return t & (ringTicks - 1); }

    /** Advance now to @p t (sliding the window) and pull every
     *  overflow event that falls inside the new window into the ring,
     *  in (when, seq) order so per-tick FIFO order is preserved. */
    void advanceTo(Tick t);

    void pushRing(Tick when, Callback& cb);

    std::array<Bucket, ringTicks> ring;
    std::uint64_t occupied = 0; ///< bit i set <=> ring[i] non-empty
    size_t ringCount = 0;       ///< unexecuted callbacks in the ring
    std::vector<FarEvent> overflow; ///< min-heap, when >= curTick + 64
    Tick _curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
};

} // namespace tmsim

#endif // TMSIM_SIM_EVENT_QUEUE_HH
