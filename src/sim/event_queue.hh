/**
 * @file
 * Deterministic discrete-event simulation queue.
 *
 * All simulated concurrency in tmsim is driven by one EventQueue per
 * Machine. Events scheduled for the same tick fire in FIFO order of
 * scheduling, which makes every run bit-reproducible for a given seed.
 */

#ifndef TMSIM_SIM_EVENT_QUEUE_HH
#define TMSIM_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace tmsim {

/**
 * A time-ordered queue of callbacks. The queue owns the notion of "now"
 * (curTick) for the whole simulated machine.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Current simulated time. */
    Tick curTick() const { return _curTick; }

    /** Schedule @p cb to run @p delay cycles from now. */
    void schedule(Cycles delay, Callback cb);

    /** Schedule @p cb to run at absolute tick @p when (>= curTick). */
    void scheduleAt(Tick when, Callback cb);

    /**
     * Run events until the queue drains or @p maxTick is reached.
     * @return the tick at which the run stopped.
     */
    Tick run(Tick maxTick = ~static_cast<Tick>(0));

    /** True if no events are pending. */
    bool empty() const { return events.empty(); }

    /** Number of pending events. */
    size_t pending() const { return events.size(); }

    /** Total events executed so far (for stats / determinism checks). */
    std::uint64_t executed() const { return numExecuted; }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event& a, const Event& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events;
    Tick _curTick = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
};

} // namespace tmsim

#endif // TMSIM_SIM_EVENT_QUEUE_HH
