/**
 * @file
 * Coroutine task types for simulated threads.
 *
 * All simulated software (workload bodies, runtime conventions, handlers)
 * is written as C++20 coroutines returning Task<T>. A co_await on a
 * simulator awaitable (Delay, WaitOn, memory operations) suspends the
 * whole logical thread; the EventQueue resumes it at the right tick.
 *
 * Exceptions propagate through co_await chains exactly like ordinary
 * call stacks, which is how transactional rollback unwinds a transaction
 * body back to its atomic() frame.
 */

#ifndef TMSIM_SIM_TASK_HH
#define TMSIM_SIM_TASK_HH

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace tmsim {

template <typename T>
class Task;

namespace detail {

struct FinalAwaiter
{
    bool await_ready() const noexcept { return false; }

    template <typename Promise>
    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<Promise> h) noexcept
    {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
    }

    void await_resume() const noexcept {}
};

struct PromiseBase
{
    std::coroutine_handle<> continuation = nullptr;
    std::exception_ptr exception = nullptr;
    bool completed = false;

    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }

    void
    unhandled_exception()
    {
        exception = std::current_exception();
        completed = true;
    }
};

template <typename T>
struct Promise : PromiseBase
{
    std::optional<T> value;

    Task<T> get_return_object();

    void
    return_value(T v)
    {
        value = std::move(v);
        completed = true;
    }
};

template <>
struct Promise<void> : PromiseBase
{
    Task<void> get_return_object();

    void return_void() { completed = true; }
};

} // namespace detail

/**
 * An eagerly-ownable, lazily-started coroutine task.
 *
 * The Task object owns the coroutine frame. Awaiting it starts the
 * child coroutine and resumes the awaiter when the child completes
 * (symmetric transfer). Top-level tasks are started with start() and
 * polled with done().
 */
template <typename T>
class Task
{
  public:
    using promise_type = detail::Promise<T>;
    using Handle = std::coroutine_handle<promise_type>;

    Task() = default;
    explicit Task(Handle h) : handle(h) {}

    Task(Task&& other) noexcept : handle(std::exchange(other.handle, {})) {}

    Task&
    operator=(Task&& other) noexcept
    {
        if (this != &other) {
            destroy();
            handle = std::exchange(other.handle, {});
        }
        return *this;
    }

    Task(const Task&) = delete;
    Task& operator=(const Task&) = delete;

    ~Task() { destroy(); }

    /** True if a coroutine is attached. */
    bool valid() const { return static_cast<bool>(handle); }

    /** True once the coroutine has run to completion (or thrown). */
    bool done() const { return handle && handle.promise().completed; }

    /** Start a top-level task (resume from the initial suspend point). */
    void
    start()
    {
        if (!handle)
            panic("start() on empty Task");
        handle.resume();
    }

    /**
     * Retrieve the result of a completed task, rethrowing any exception
     * that escaped the coroutine.
     */
    T
    result()
    {
        if (!done())
            panic("result() on unfinished Task");
        if (handle.promise().exception)
            std::rethrow_exception(handle.promise().exception);
        if constexpr (!std::is_void_v<T>)
            return std::move(*handle.promise().value);
    }

    // --- awaiter interface ---
    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        handle.promise().continuation = cont;
        return handle;
    }

    T
    await_resume()
    {
        if (handle.promise().exception)
            std::rethrow_exception(handle.promise().exception);
        if constexpr (!std::is_void_v<T>)
            return std::move(*handle.promise().value);
    }

  private:
    void
    destroy()
    {
        if (handle) {
            handle.destroy();
            handle = {};
        }
    }

    Handle handle{};
};

namespace detail {

template <typename T>
Task<T>
Promise<T>::get_return_object()
{
    return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void>
Promise<void>::get_return_object()
{
    return Task<void>(
        std::coroutine_handle<Promise<void>>::from_promise(*this));
}

} // namespace detail

/** The common task types used throughout the simulator. */
using SimTask = Task<void>;
using WordTask = Task<Word>;

/** Awaitable: suspend the current logical thread for @p n cycles. */
struct Delay
{
    EventQueue& eq;
    Cycles n;

    bool await_ready() const noexcept { return n == 0; }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        eq.schedule(n, [h] { h.resume(); });
    }

    void await_resume() const noexcept {}
};

/**
 * A one-shot wake slot. A coroutine parks itself on a Waker via WaitOn;
 * some other simulated agent later calls wake(), scheduling the resume.
 */
class Waker
{
  public:
    explicit Waker(EventQueue& eq) : eq(&eq) {}

    bool armed() const { return static_cast<bool>(handle); }

    void
    arm(std::coroutine_handle<> h)
    {
        if (handle)
            panic("Waker armed twice");
        handle = h;
    }

    /**
     * Resume the parked coroutine @p delay cycles from now. A wake with
     * nobody parked is remembered and satisfies the next WaitOn
     * immediately (no lost wake-ups).
     */
    void
    wake(Cycles delay = 0)
    {
        if (!handle) {
            pending = true;
            return;
        }
        auto h = std::exchange(handle, {});
        eq->schedule(delay, [h] { h.resume(); });
    }

    /** Consume a remembered wake, if any. */
    bool
    consumePending()
    {
        return std::exchange(pending, false);
    }

    /** Drop the parked coroutine without resuming (owner is unwinding). */
    void disarm() { handle = {}; }

  private:
    EventQueue* eq;
    std::coroutine_handle<> handle{};
    bool pending = false;
};

/** Awaitable: park on a Waker until somebody calls wake(). */
struct WaitOn
{
    Waker& waker;

    bool await_ready() const noexcept { return waker.consumePending(); }
    void await_suspend(std::coroutine_handle<> h) const { waker.arm(h); }
    void await_resume() const noexcept {}
};

} // namespace tmsim

#endif // TMSIM_SIM_TASK_HH
