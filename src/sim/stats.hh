/**
 * @file
 * Lightweight statistics registry in the spirit of gem5's stats package.
 *
 * Three stat kinds:
 *  - Counter: a named 64-bit event counter.
 *  - Distribution: a log2-bucketed histogram with min/max/mean, for
 *    quantities whose shape matters (set sizes, durations, latencies).
 *  - Formula: a derived ratio of two counter sum() patterns, evaluated
 *    lazily at dump time so it never goes stale.
 *
 * Both the text dump and the JSON dump lead with a schema version
 * header (see statsSchemaVersion) so downstream parsers can detect
 * format drift instead of silently misreading.
 */

#ifndef TMSIM_SIM_STATS_HH
#define TMSIM_SIM_STATS_HH

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tmsim {

/** Bumped whenever the dump format changes shape. v1 was the bare
 *  "name value" counter listing; v2 added the header line itself,
 *  distributions and formulas. */
constexpr int statsSchemaVersion = 2;

/**
 * A registry of named statistics. Components register stats at
 * construction; the Machine dumps the registry after a run. Returned
 * references stay valid for the registry's lifetime.
 */
class StatsRegistry
{
  public:
    /** A named 64-bit event counter. */
    class Counter
    {
      public:
        Counter() = default;
        void operator++() { ++val; }
        void operator++(int) { ++val; }
        void operator+=(std::uint64_t n) { val += n; }
        std::uint64_t value() const { return val; }
        /** Absolute gauges (e.g. sim.ticks) overwrite their value. */
        void set(std::uint64_t v) { val = v; }
        void reset() { val = 0; }

      private:
        std::uint64_t val = 0;
    };

    /**
     * A log2-bucketed histogram. Bucket 0 holds exactly the value 0;
     * bucket b >= 1 holds values in [2^(b-1), 2^b - 1]. 65 buckets
     * cover the full 64-bit sample range, so sample() never saturates
     * and the bucket counts always sum to count().
     */
    class Distribution
    {
      public:
        static constexpr int numBuckets = 65;

        void
        sample(std::uint64_t v)
        {
            if (cnt == 0) {
                minVal = v;
                maxVal = v;
            } else {
                if (v < minVal)
                    minVal = v;
                if (v > maxVal)
                    maxVal = v;
            }
            ++cnt;
            sumVal += v;
            ++bucketCounts[static_cast<size_t>(bucketOf(v))];
        }

        /** Bucket index for @p v (0 for v == 0, else floor(log2 v)+1). */
        static int
        bucketOf(std::uint64_t v)
        {
            return v == 0 ? 0 : 64 - __builtin_clzll(v);
        }

        /** Smallest value falling into bucket @p b. */
        static std::uint64_t
        bucketLo(int b)
        {
            return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
        }

        /** Largest value falling into bucket @p b. */
        static std::uint64_t
        bucketHi(int b)
        {
            if (b == 0)
                return 0;
            if (b == 64)
                return ~std::uint64_t{0};
            return (std::uint64_t{1} << b) - 1;
        }

        std::uint64_t count() const { return cnt; }
        std::uint64_t total() const { return sumVal; }
        std::uint64_t min() const { return cnt ? minVal : 0; }
        std::uint64_t max() const { return cnt ? maxVal : 0; }

        double
        mean() const
        {
            return cnt ? static_cast<double>(sumVal) /
                             static_cast<double>(cnt)
                       : 0.0;
        }

        std::uint64_t
        bucketCount(int b) const
        {
            return bucketCounts[static_cast<size_t>(b)];
        }

        /** Index of the highest non-empty bucket (-1 when empty). */
        int highestBucket() const;

        /** Fold @p other's samples into this distribution, exactly as
         *  if every sample had been taken here (campaign merging). */
        void
        mergeFrom(const Distribution& other)
        {
            if (other.cnt == 0)
                return;
            if (cnt == 0) {
                minVal = other.minVal;
                maxVal = other.maxVal;
            } else {
                if (other.minVal < minVal)
                    minVal = other.minVal;
                if (other.maxVal > maxVal)
                    maxVal = other.maxVal;
            }
            cnt += other.cnt;
            sumVal += other.sumVal;
            for (int b = 0; b < numBuckets; ++b)
                bucketCounts[static_cast<size_t>(b)] +=
                    other.bucketCounts[static_cast<size_t>(b)];
        }

        void
        reset()
        {
            cnt = 0;
            sumVal = 0;
            minVal = 0;
            maxVal = 0;
            bucketCounts.fill(0);
        }

      private:
        std::uint64_t cnt = 0;
        std::uint64_t sumVal = 0;
        std::uint64_t minVal = 0;
        std::uint64_t maxVal = 0;
        std::array<std::uint64_t, numBuckets> bucketCounts{};
    };

    /**
     * A derived statistic evaluated against the owning registry at
     * dump/value time. Ratio formulas divide two counter sum()
     * patterns ("prefix*suffix"); Jain-fairness formulas compute
     * (sum x)^2 / (n * sum x^2) over every counter matching the
     * numerator pattern (1.0 = perfectly fair, 1/n = one counter has
     * everything). Matching counters that are all zero are equal
     * shares of nothing — still 1.0; only "no counter matches" reads
     * 0.0.
     */
    struct Formula
    {
        enum class Kind : std::uint8_t
        {
            Ratio,
            JainFairness,
        };

        std::string numerator;
        std::string denominator;
        Kind kind = Kind::Ratio;
    };

    /**
     * Register (or look up) a counter under a hierarchical dotted name,
     * e.g. "cpu3.htm.violations".
     */
    Counter& counter(const std::string& name);

    /** Register (or look up) a distribution. */
    Distribution& distribution(const std::string& name);

    /**
     * Register a formula @p name = sum(@p num) / sum(@p den).
     * Re-registering an existing name overwrites its patterns.
     */
    void formula(const std::string& name, const std::string& num,
                 const std::string& den);

    /** Register a Jain fairness index @p name over every counter
     *  matching @p pattern (e.g. "cpu*.htm.outer_commits"). */
    void jainFairness(const std::string& name, const std::string& pattern);

    /** Read a counter's current value (0 if never registered). */
    std::uint64_t value(const std::string& name) const;

    /** Sum the values of all counters whose name matches "prefix*suffix".
     *  @p pattern contains at most one '*'. */
    std::uint64_t sum(const std::string& pattern) const;

    /** Look up a distribution (nullptr if never registered). */
    const Distribution* findDistribution(const std::string& name) const;

    /** Evaluate a registered formula (0.0 if unknown or den == 0). */
    double formulaValue(const std::string& name) const;

    /** Reset every counter and distribution to zero. */
    void resetAll();

    /**
     * Fold @p other into this registry: counters add, distributions
     * merge sample-for-sample, formulas register where absent. Merging
     * the same registries in the same order always produces the same
     * result (maps iterate sorted), which is what makes campaign-
     * aggregated stats independent of worker count.
     */
    void mergeFrom(const StatsRegistry& other);

    /**
     * Text dump: a "# tmsim-stats schema <v>" header, then "name value"
     * lines sorted by name. Distributions dump as name::samples/min/
     * max/mean plus one name::bucket line per non-empty bucket;
     * formulas dump their evaluated value.
     */
    void dump(std::ostream& os) const;

    /** JSON dump of the same data (one top-level object; see STATS.md
     *  for the schema). */
    void dumpJson(std::ostream& os) const;

    /** All registered counter names, sorted. */
    std::vector<std::string> names() const;

  private:
    std::map<std::string, Counter> counters;
    std::map<std::string, Distribution> dists;
    std::map<std::string, Formula> formulas;
};

} // namespace tmsim

#endif // TMSIM_SIM_STATS_HH
