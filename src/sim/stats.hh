/**
 * @file
 * Lightweight statistics registry in the spirit of gem5's stats package.
 *
 * Three stat kinds:
 *  - Counter: a named 64-bit event counter.
 *  - Distribution: an HdrHistogram-style log-linear histogram with
 *    min/max/mean and bounded-error quantiles, for quantities whose
 *    shape matters (set sizes, durations, latencies).
 *  - Formula: a derived ratio of two counter sum() patterns, evaluated
 *    lazily at dump time so it never goes stale.
 *
 * Both the text dump and the JSON dump lead with a schema version
 * header (see statsSchemaVersion) so downstream parsers can detect
 * format drift instead of silently misreading.
 */

#ifndef TMSIM_SIM_STATS_HH
#define TMSIM_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tmsim {

/** Bumped whenever the dump format changes shape. v1 was the bare
 *  "name value" counter listing; v2 added the header line itself,
 *  distributions and formulas; v3 switched distributions to log-linear
 *  (HDR) sub-bucketing and added the ::p50/::p90/::p99/::p999 quantile
 *  keys plus the per-distribution sub_bucket_bits field. */
constexpr int statsSchemaVersion = 3;

/**
 * A registry of named statistics. Components register stats at
 * construction; the Machine dumps the registry after a run. Returned
 * references stay valid for the registry's lifetime.
 */
class StatsRegistry
{
  public:
    /** A named 64-bit event counter. */
    class Counter
    {
      public:
        Counter() = default;
        void operator++() { ++val; }
        void operator++(int) { ++val; }
        void operator+=(std::uint64_t n) { val += n; }
        std::uint64_t value() const { return val; }
        /** Absolute gauges (e.g. sim.ticks) overwrite their value. */
        void set(std::uint64_t v) { val = v; }
        void reset() { val = 0; }

      private:
        std::uint64_t val = 0;
    };

    /**
     * An HdrHistogram-style log-linear histogram. With S sub-bucket
     * bits, every value below 2^S gets its own exact unit bucket;
     * above that, each power-of-two magnitude [2^k, 2^(k+1)) is split
     * into 2^S equal-width sub-buckets. The bucket width at magnitude
     * k is therefore 2^(k-S), which bounds the relative quantile error
     * at 2^-S (6.25% at the default S = 4). S = 0 degenerates to the
     * schema-v2 pure log2 layout.
     *
     * (65 - S) * 2^S buckets cover the full 64-bit sample range, so
     * sample() never saturates and the bucket counts always sum to
     * count(). Bucket counts are integers and merge by addition, so
     * quantiles of a merged distribution are independent of merge
     * order — the property campaign aggregation relies on.
     */
    class Distribution
    {
      public:
        /** Default sub-bucket resolution: 16 sub-buckets per log2
         *  magnitude, i.e. at most 6.25% relative quantile error. */
        static constexpr int defaultSubBucketBits = 4;
        static constexpr int maxSubBucketBits = 8;

        explicit Distribution(int sub_bucket_bits = defaultSubBucketBits)
            : subBits(clampBits(sub_bucket_bits)),
              bucketCounts(static_cast<size_t>(bucketsFor(subBits)), 0)
        {}

        /** Number of sub-bucket bits S this instance was built with. */
        int subBucketBits() const { return subBits; }

        /** Total bucket count for a given S: (65 - S) * 2^S. */
        static int
        bucketsFor(int bits)
        {
            return (65 - bits) << bits;
        }

        int numBuckets() const { return bucketsFor(subBits); }

        void
        sample(std::uint64_t v)
        {
            if (cnt == 0) {
                minVal = v;
                maxVal = v;
            } else {
                if (v < minVal)
                    minVal = v;
                if (v > maxVal)
                    maxVal = v;
            }
            ++cnt;
            sumVal += v;
            ++bucketCounts[static_cast<size_t>(bucketOf(v, subBits))];
        }

        /**
         * Bucket index for @p v at @p bits sub-bucket bits. Values in
         * [0, 2^bits) index themselves (the exact linear region); a
         * larger v with magnitude k = floor(log2 v) lands in
         * 2^bits + (k - bits) * 2^bits + ((v >> (k - bits)) - 2^bits).
         */
        static int
        bucketOf(std::uint64_t v, int bits)
        {
            if (v < (std::uint64_t{1} << bits))
                return static_cast<int>(v);
            const int k = 63 - __builtin_clzll(v);
            const int shift = k - bits;
            return static_cast<int>(
                (static_cast<std::uint64_t>(shift) << bits) +
                (v >> shift));
        }

        /** Smallest value falling into bucket @p b at @p bits. */
        static std::uint64_t
        bucketLo(int b, int bits)
        {
            const std::uint64_t sub = std::uint64_t{1} << bits;
            if (b < static_cast<int>(sub))
                return static_cast<std::uint64_t>(b);
            const int shift = (b >> bits) - 1;
            const std::uint64_t offset =
                static_cast<std::uint64_t>(b) - (static_cast<std::uint64_t>(
                                                     shift)
                                                 << bits);
            return offset << shift;
        }

        /** Largest value falling into bucket @p b at @p bits. */
        static std::uint64_t
        bucketHi(int b, int bits)
        {
            if (b + 1 >= bucketsFor(bits))
                return ~std::uint64_t{0};
            return bucketLo(b + 1, bits) - 1;
        }

        int bucketOf(std::uint64_t v) const { return bucketOf(v, subBits); }
        std::uint64_t bucketLo(int b) const { return bucketLo(b, subBits); }
        std::uint64_t bucketHi(int b) const { return bucketHi(b, subBits); }

        std::uint64_t count() const { return cnt; }
        std::uint64_t total() const { return sumVal; }
        std::uint64_t min() const { return cnt ? minVal : 0; }
        std::uint64_t max() const { return cnt ? maxVal : 0; }

        double
        mean() const
        {
            return cnt ? static_cast<double>(sumVal) /
                             static_cast<double>(cnt)
                       : 0.0;
        }

        std::uint64_t
        bucketCount(int b) const
        {
            return bucketCounts[static_cast<size_t>(b)];
        }

        /** Index of the highest non-empty bucket (-1 when empty). */
        int highestBucket() const;

        /**
         * The value at quantile @p q in [0, 1]: the upper bound of the
         * bucket holding the ceil(q * count())-th smallest sample,
         * clamped to the observed max. Relative error vs the true
         * sample is below 2^-subBucketBits (exact in the linear
         * region). 0 when empty.
         */
        std::uint64_t quantile(double q) const;

        /** Fold @p other's samples into this distribution, exactly as
         *  if every sample had been taken here (campaign merging).
         *  An empty destination adopts the source's sub-bucket bits;
         *  otherwise the resolutions must match. */
        void mergeFrom(const Distribution& other);

        void
        reset()
        {
            cnt = 0;
            sumVal = 0;
            minVal = 0;
            maxVal = 0;
            std::fill(bucketCounts.begin(), bucketCounts.end(), 0);
        }

      private:
        static int
        clampBits(int bits)
        {
            if (bits < 0)
                return 0;
            if (bits > maxSubBucketBits)
                return maxSubBucketBits;
            return bits;
        }

        std::uint64_t cnt = 0;
        std::uint64_t sumVal = 0;
        std::uint64_t minVal = 0;
        std::uint64_t maxVal = 0;
        int subBits = defaultSubBucketBits;
        std::vector<std::uint64_t> bucketCounts;
    };

    /**
     * A derived statistic evaluated against the owning registry at
     * dump/value time. Ratio formulas divide two counter sum()
     * patterns ("prefix*suffix"); Jain-fairness formulas compute
     * (sum x)^2 / (n * sum x^2) over every counter matching the
     * numerator pattern (1.0 = perfectly fair, 1/n = one counter has
     * everything). Matching counters that are all zero are equal
     * shares of nothing — still 1.0; only "no counter matches" reads
     * 0.0.
     */
    struct Formula
    {
        enum class Kind : std::uint8_t
        {
            Ratio,
            JainFairness,
        };

        std::string numerator;
        std::string denominator;
        Kind kind = Kind::Ratio;
    };

    /**
     * Register (or look up) a counter under a hierarchical dotted name,
     * e.g. "cpu3.htm.violations".
     */
    Counter& counter(const std::string& name);

    /** Register (or look up) a distribution (default resolution). */
    Distribution& distribution(const std::string& name);

    /** Register (or look up) a distribution with an explicit
     *  sub-bucket-bits resolution. The resolution only applies on
     *  first registration; a later lookup under a different @p
     *  sub_bucket_bits returns the existing instance unchanged. */
    Distribution& distribution(const std::string& name, int sub_bucket_bits);

    /**
     * Register a formula @p name = sum(@p num) / sum(@p den).
     * Re-registering an existing name overwrites its patterns.
     */
    void formula(const std::string& name, const std::string& num,
                 const std::string& den);

    /** Register a Jain fairness index @p name over every counter
     *  matching @p pattern (e.g. "cpu*.htm.outer_commits"). */
    void jainFairness(const std::string& name, const std::string& pattern);

    /** Read a counter's current value (0 if never registered). */
    std::uint64_t value(const std::string& name) const;

    /** Sum the values of all counters whose name matches "prefix*suffix".
     *  @p pattern contains at most one '*'. */
    std::uint64_t sum(const std::string& pattern) const;

    /** Look up a distribution (nullptr if never registered). */
    const Distribution* findDistribution(const std::string& name) const;

    /** Evaluate a registered formula (0.0 if unknown or den == 0). */
    double formulaValue(const std::string& name) const;

    /** Reset every counter and distribution to zero. */
    void resetAll();

    /**
     * Fold @p other into this registry: counters add, distributions
     * merge sample-for-sample, formulas register where absent. Merging
     * the same registries in the same order always produces the same
     * result (maps iterate sorted), which is what makes campaign-
     * aggregated stats independent of worker count.
     */
    void mergeFrom(const StatsRegistry& other);

    /**
     * Text dump: a "# tmsim-stats schema <v>" header, then "name value"
     * lines sorted by name. Distributions dump as name::samples/min/
     * max/mean plus one name::bucket line per non-empty bucket;
     * formulas dump their evaluated value.
     */
    void dump(std::ostream& os) const;

    /** JSON dump of the same data (one top-level object; see STATS.md
     *  for the schema). */
    void dumpJson(std::ostream& os) const;

    /** All registered counter names, sorted. */
    std::vector<std::string> names() const;

  private:
    std::map<std::string, Counter> counters;
    std::map<std::string, Distribution> dists;
    std::map<std::string, Formula> formulas;
};

} // namespace tmsim

#endif // TMSIM_SIM_STATS_HH
