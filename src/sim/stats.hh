/**
 * @file
 * Lightweight statistics registry in the spirit of gem5's stats package.
 */

#ifndef TMSIM_SIM_STATS_HH
#define TMSIM_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace tmsim {

/**
 * A registry of named scalar statistics. Components register counters
 * at construction; the Machine dumps the registry after a run.
 */
class StatsRegistry
{
  public:
    /** A named 64-bit event counter. */
    class Counter
    {
      public:
        Counter() = default;
        void operator++() { ++val; }
        void operator++(int) { ++val; }
        void operator+=(std::uint64_t n) { val += n; }
        std::uint64_t value() const { return val; }
        void reset() { val = 0; }

      private:
        std::uint64_t val = 0;
    };

    /**
     * Register (or look up) a counter under a hierarchical dotted name,
     * e.g. "cpu3.htm.violations". The returned reference stays valid
     * for the registry's lifetime.
     */
    Counter& counter(const std::string& name);

    /** Read a counter's current value (0 if never registered). */
    std::uint64_t value(const std::string& name) const;

    /** Sum the values of all counters whose name matches "prefix*suffix".
     *  @p pattern contains at most one '*'. */
    std::uint64_t sum(const std::string& pattern) const;

    /** Reset every counter to zero. */
    void resetAll();

    /** Write "name value" lines, sorted by name. */
    void dump(std::ostream& os) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    std::map<std::string, Counter> counters;
};

} // namespace tmsim

#endif // TMSIM_SIM_STATS_HH
