/**
 * @file
 * Engine-agnostic observation model shared by every execution engine
 * the fuzz corpus runs on (the cycle simulator in check/fuzz_interp,
 * the native STM backend in check/stm_interp): the word layout of the
 * fuzz regions, one checked access, one serialization unit, and the
 * complete ObservedRun the serializability oracle consumes. Nothing
 * here depends on how the engine executes — only on what it observed.
 */

#ifndef TMSIM_CHECK_OBSERVED_HH
#define TMSIM_CHECK_OBSERVED_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "check/fuzz_program.hh"
#include "sim/types.hh"

namespace tmsim {

/**
 * Word layout of the fuzz regions in (simulated or native) memory.
 * Regions are line-aligned so no track unit ever spans two regions
 * (release-safety and the cross-config invariant reason about whole
 * regions); slots within a region stay contiguous so neighbouring
 * slots share a line and exercise false sharing under line-granular
 * tracking.
 */
struct FuzzLayout
{
    Addr base = 0;
    int slots = 0;
    Addr regionStride = 0;

    Addr
    addrOf(Region r, int slot) const
    {
        return base + static_cast<Addr>(r) * regionStride +
               static_cast<Addr>(slot) * wordBytes;
    }

    /** Deterministic initial image, distinct per word. */
    static Word
    initValue(Region r, int slot)
    {
        return 0x1000u * (static_cast<unsigned>(r) + 1) +
               static_cast<unsigned>(slot);
    }
};

/** One checked access performed inside a committed unit. */
struct ObservedAccess
{
    enum class Kind : std::uint8_t
    {
        Read,          ///< value must match the golden model
        ReadUnchecked, ///< read later released: no value guarantee
        Write,         ///< applied to the golden model
    };

    Kind kind = Kind::Read;
    Addr addr = 0;
    Word value = 0;
};

/**
 * One serialization unit in chip-global order: an outer-transaction
 * commit, an open-nested commit, or a single non-transactional access
 * (which is its own serialization point under strong atomicity).
 */
struct ObservedUnit
{
    enum class Kind : std::uint8_t
    {
        TxCommit,
        OpenCommit,
        NakedLoad,
        NakedStore,
    };

    Kind kind = Kind::TxCommit;
    CpuId cpu = 0;
    /** Serialized, then rolled back before committing memory. */
    bool dead = false;
    /** Access content attached (always true for naked units). */
    bool filled = false;
    std::vector<ObservedAccess> accesses; ///< commits only
    Addr addr = 0;                        ///< naked units only
    Word value = 0;                       ///< naked units only
};

/** Everything the oracle needs about one execution. */
struct ObservedRun
{
    FuzzLayout layout;
    std::vector<ObservedUnit> units;
    bool hang = false;
    std::string error;
    /** Final backing-store words of all golden-checked regions. */
    std::vector<std::pair<Addr, Word>> finalChecked;
    /** Final words of the mode-invariant regions (Shared, Private). */
    std::vector<std::pair<Addr, Word>> finalInvariant;
};

} // namespace tmsim

#endif // TMSIM_CHECK_OBSERVED_HH
