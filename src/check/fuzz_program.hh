/**
 * @file
 * Fuzz-program representation for the serializability checker: a
 * deterministic, seed-generated parallel program over five disjoint
 * word regions, executed by check/fuzz_interp and validated by
 * check/oracle. Programs serialize to a line-based replay format so a
 * shrunk failing seed can be committed and re-executed bit-for-bit.
 */

#ifndef TMSIM_CHECK_FUZZ_PROGRAM_HH
#define TMSIM_CHECK_FUZZ_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "htm/htm_config.hh"
#include "sim/types.hh"

namespace tmsim {

/**
 * Memory regions with distinct checking rules. Slots are 8-byte words
 * laid out contiguously, so neighbouring slots share a cache line and
 * exercise false sharing under line-granular tracking.
 *
 *  - Shared:  closed-transactional reads/adds by any thread. Golden-
 *             checked and mode-invariant (every committed add applies
 *             exactly once, adds commute).
 *  - Open:    touched only by open-nested transaction bodies. Golden-
 *             checked per run, but excluded from cross-config
 *             comparison: open commits survive outer retries, and
 *             retry counts are mode-dependent.
 *  - Naked:   transactional adds mixed with NON-transactional loads
 *             and stores from any thread (strong atomicity). Golden-
 *             checked; excluded from cross-config comparison because
 *             the store/add interleaving is timing-dependent.
 *  - Private: slot t is only ever touched by thread t (tx adds and
 *             naked accesses). Golden-checked and mode-invariant.
 *  - Scratch: imst/imstid/imld targets and handler side effects.
 *             Unchecked: imst is visible to peers before commit.
 */
enum class Region : std::uint8_t
{
    Shared = 0,
    Open = 1,
    Naked = 2,
    Private = 3,
    Scratch = 4,
};

constexpr int numRegions = 5;

/** True if the oracle's golden model tracks words of @p r. */
inline bool
regionChecked(Region r)
{
    return r != Region::Scratch;
}

/** True if @p r must reach the same final state under every config. */
inline bool
regionInvariant(Region r)
{
    return r == Region::Shared || r == Region::Private;
}

enum class FuzzOpKind : std::uint8_t
{
    TxRead,       ///< transactional load, logged as a checked read
    TxAdd,        ///< transactional read-modify-write (load, store +v)
    Release,      ///< drop a previously read slot from the read-set
    ImmRead,      ///< imld (unchecked)
    ImmStore,     ///< imst to scratch
    ImmStoreIdem, ///< imstid to scratch
    Exec,         ///< spin for value cycles
    HandlerCommit,    ///< register a commit handler (imstid to scratch)
    HandlerViolation, ///< register a violation handler (Proceed)
    HandlerAbort,     ///< register an abort handler (imstid to scratch)
    Abort,        ///< xabort: voluntary abort, no retry
    Nest,         ///< run child transaction `child`
};

struct FuzzOp
{
    FuzzOpKind kind = FuzzOpKind::Exec;
    Region region = Region::Scratch;
    int slot = 0;
    Word value = 0; ///< add delta / store value / exec cycles
    int child = -1; ///< Nest: index into FuzzProgram::txs
};

struct FuzzTx
{
    bool open = false;
    std::vector<FuzzOp> ops;
};

enum class ThreadOpKind : std::uint8_t
{
    RunTx,      ///< run top-level transaction `tx`
    NakedLoad,  ///< non-transactional load (Naked or own Private slot)
    NakedStore, ///< non-transactional store
    Work,       ///< spin for value cycles
};

struct ThreadOp
{
    ThreadOpKind kind = ThreadOpKind::Work;
    int tx = -1;
    Region region = Region::Naked;
    int slot = 0;
    Word value = 0;
};

/**
 * A complete fuzz program. The per-seed config toggles (granularity,
 * eager policy) apply uniformly to every differential base config so
 * cross-config comparison stays apples-to-apples.
 */
struct FuzzProgram
{
    std::uint64_t seed = 0;
    int slotsPerRegion = 4;
    bool wordGranularity = false;
    bool olderWins = false;

    /** Contention-management policy applied to every differential base
     *  config. Policies reschedule conflicts but must never change a
     *  serializability verdict; the fuzzer checks exactly that. */
    ContentionPolicy contention = ContentionPolicy::Requester;

    /** Capacity bounds applied to every differential base config
     *  (0 = unbounded). Capacity aborts are just another restart
     *  reason; the oracle's serializability verdict must not change.
     *  Not drawn by generateProgram — forced via the tmsim_fuzz CLI —
     *  but carried here so shrink/replay preserve the configuration. */
    int rsetCap = 0;
    int wsetCap = 0;
    CapacityMode capacityMode = CapacityMode::Abort;

    /** Bug-injection self-test: thread 0 performs one deliberately
     *  unrecorded store to Shared slot 0 after its Nth top-level op
     *  (-1 = disabled). The oracle must flag the run. */
    int injectHiddenStoreAfter = -1;

    std::vector<FuzzTx> txs;
    std::vector<std::vector<ThreadOp>> threads;

    int numThreads() const { return static_cast<int>(threads.size()); }

    /** Replay-file text (tmsim-fuzz-replay v1). */
    std::string serialize() const;

    /** Parse a replay file; returns false with *err set on malformed
     *  input. */
    static bool parse(const std::string& text, FuzzProgram& out,
                      std::string* err = nullptr);
};

/** Deterministically generate the program for @p seed. */
FuzzProgram generateProgram(std::uint64_t seed);

} // namespace tmsim

#endif // TMSIM_CHECK_FUZZ_PROGRAM_HH
