#include "check/fuzz_program.hh"

#include <sstream>

namespace tmsim {

namespace {

const char*
opKindName(FuzzOpKind k)
{
    switch (k) {
    case FuzzOpKind::TxRead: return "txread";
    case FuzzOpKind::TxAdd: return "txadd";
    case FuzzOpKind::Release: return "release";
    case FuzzOpKind::ImmRead: return "immread";
    case FuzzOpKind::ImmStore: return "immstore";
    case FuzzOpKind::ImmStoreIdem: return "immstoreid";
    case FuzzOpKind::Exec: return "exec";
    case FuzzOpKind::HandlerCommit: return "hcommit";
    case FuzzOpKind::HandlerViolation: return "hviolation";
    case FuzzOpKind::HandlerAbort: return "habort";
    case FuzzOpKind::Abort: return "abort";
    case FuzzOpKind::Nest: return "nest";
    }
    return "?";
}

bool
opKindFromName(const std::string& s, FuzzOpKind& out)
{
    static const struct { const char* name; FuzzOpKind k; } table[] = {
        {"txread", FuzzOpKind::TxRead},
        {"txadd", FuzzOpKind::TxAdd},
        {"release", FuzzOpKind::Release},
        {"immread", FuzzOpKind::ImmRead},
        {"immstore", FuzzOpKind::ImmStore},
        {"immstoreid", FuzzOpKind::ImmStoreIdem},
        {"exec", FuzzOpKind::Exec},
        {"hcommit", FuzzOpKind::HandlerCommit},
        {"hviolation", FuzzOpKind::HandlerViolation},
        {"habort", FuzzOpKind::HandlerAbort},
        {"abort", FuzzOpKind::Abort},
        {"nest", FuzzOpKind::Nest},
    };
    for (const auto& e : table) {
        if (s == e.name) {
            out = e.k;
            return true;
        }
    }
    return false;
}

const char*
threadOpKindName(ThreadOpKind k)
{
    switch (k) {
    case ThreadOpKind::RunTx: return "runtx";
    case ThreadOpKind::NakedLoad: return "nakedload";
    case ThreadOpKind::NakedStore: return "nakedstore";
    case ThreadOpKind::Work: return "work";
    }
    return "?";
}

bool
threadOpKindFromName(const std::string& s, ThreadOpKind& out)
{
    if (s == "runtx")
        out = ThreadOpKind::RunTx;
    else if (s == "nakedload")
        out = ThreadOpKind::NakedLoad;
    else if (s == "nakedstore")
        out = ThreadOpKind::NakedStore;
    else if (s == "work")
        out = ThreadOpKind::Work;
    else
        return false;
    return true;
}

const char*
regionName(Region r)
{
    switch (r) {
    case Region::Shared: return "shared";
    case Region::Open: return "open";
    case Region::Naked: return "naked";
    case Region::Private: return "private";
    case Region::Scratch: return "scratch";
    }
    return "?";
}

bool
regionFromName(const std::string& s, Region& out)
{
    if (s == "shared")
        out = Region::Shared;
    else if (s == "open")
        out = Region::Open;
    else if (s == "naked")
        out = Region::Naked;
    else if (s == "private")
        out = Region::Private;
    else if (s == "scratch")
        out = Region::Scratch;
    else
        return false;
    return true;
}

bool
fail(std::string* err, const std::string& msg)
{
    if (err)
        *err = msg;
    return false;
}

} // namespace

std::string
FuzzProgram::serialize() const
{
    std::ostringstream os;
    os << "tmsim-fuzz-replay v1\n";
    os << "seed " << seed << "\n";
    os << "slots " << slotsPerRegion << "\n";
    os << "word-granularity " << (wordGranularity ? 1 : 0) << "\n";
    os << "older-wins " << (olderWins ? 1 : 0) << "\n";
    os << "contention " << contentionPolicyName(contention) << "\n";
    // Only emitted when bounded, so unbounded replay files stay
    // byte-identical to the pre-capacity format.
    if (rsetCap > 0 || wsetCap > 0)
        os << "capacity " << rsetCap << " " << wsetCap << " "
           << capacityModeName(capacityMode) << "\n";
    os << "inject " << injectHiddenStoreAfter << "\n";
    os << "txs " << txs.size() << "\n";
    for (size_t i = 0; i < txs.size(); ++i) {
        const FuzzTx& tx = txs[i];
        os << "tx " << i << " " << (tx.open ? "open" : "closed") << " "
           << tx.ops.size() << "\n";
        for (const FuzzOp& op : tx.ops) {
            os << "op " << opKindName(op.kind) << " "
               << regionName(op.region) << " " << op.slot << " "
               << op.value << " " << op.child << "\n";
        }
    }
    os << "threads " << threads.size() << "\n";
    for (size_t t = 0; t < threads.size(); ++t) {
        os << "thread " << t << " " << threads[t].size() << "\n";
        for (const ThreadOp& op : threads[t]) {
            os << "top " << threadOpKindName(op.kind) << " " << op.tx
               << " " << regionName(op.region) << " " << op.slot << " "
               << op.value << "\n";
        }
    }
    return os.str();
}

bool
FuzzProgram::parse(const std::string& text, FuzzProgram& out,
                   std::string* err)
{
    std::istringstream is(text);
    std::string line;
    if (!std::getline(is, line) || line != "tmsim-fuzz-replay v1")
        return fail(err, "bad header (expected 'tmsim-fuzz-replay v1')");

    FuzzProgram p;
    auto expectKeyed = [&](const char* key, auto& value) -> bool {
        if (!std::getline(is, line))
            return false;
        std::istringstream ls(line);
        std::string k;
        ls >> k >> value;
        return !ls.fail() && k == key;
    };

    long long inject = -1;
    int wordGran = 0, older = 0;
    size_t nTxs = 0, nThreads = 0;
    if (!expectKeyed("seed", p.seed))
        return fail(err, "missing seed");
    if (!expectKeyed("slots", p.slotsPerRegion) || p.slotsPerRegion < 1 ||
        p.slotsPerRegion > 64)
        return fail(err, "bad slots");
    if (!expectKeyed("word-granularity", wordGran))
        return fail(err, "missing word-granularity");
    if (!expectKeyed("older-wins", older))
        return fail(err, "missing older-wins");
    // Optional contention-policy line (absent in pre-policy replay
    // files, which ran the legacy Requester pass-through).
    if (!std::getline(is, line))
        return fail(err, "missing inject");
    {
        std::istringstream ls(line);
        std::string k, v;
        ls >> k >> v;
        if (!ls.fail() && k == "contention") {
            if (!contentionPolicyFromName(v, p.contention))
                return fail(err, "bad contention policy: " + line);
            if (!std::getline(is, line))
                return fail(err, "missing inject");
        }
    }
    // Optional capacity line (absent in unbounded replay files). The
    // keyword is matched first and the payload validated separately:
    // a mangled capacity line must be reported as such, not fall
    // through to be misparsed as the inject line.
    bool sawCapacity = false;
    for (;;) {
        std::istringstream ls(line);
        std::string k;
        ls >> k;
        if (k != "capacity")
            break;
        if (sawCapacity)
            return fail(err, "duplicate capacity line: " + line);
        sawCapacity = true;
        int rcap = 0, wcap = 0;
        std::string mode, extra;
        ls >> rcap >> wcap >> mode;
        if (ls.fail() || mode.empty()) {
            return fail(err, "malformed capacity line (expected "
                             "'capacity RCAP WCAP MODE'): " + line);
        }
        if (ls >> extra)
            return fail(err, "trailing junk on capacity line: " + line);
        if (rcap < 0 || wcap < 0 || rcap > 100000 || wcap > 100000) {
            return fail(err, "capacity bounds out of range "
                             "[0, 100000]: " + line);
        }
        if (!capacityModeFromName(mode, p.capacityMode))
            return fail(err, "bad capacity mode: " + line);
        p.rsetCap = rcap;
        p.wsetCap = wcap;
        if (!std::getline(is, line))
            return fail(err, "missing inject");
    }
    {
        std::istringstream ls(line);
        std::string k;
        ls >> k >> inject;
        if (ls.fail() || k != "inject")
            return fail(err, "missing inject");
    }
    if (!expectKeyed("txs", nTxs) || nTxs > 10000)
        return fail(err, "bad txs count");
    p.wordGranularity = wordGran != 0;
    p.olderWins = older != 0;
    p.injectHiddenStoreAfter = static_cast<int>(inject);

    p.txs.resize(nTxs);
    for (size_t i = 0; i < nTxs; ++i) {
        if (!std::getline(is, line))
            return fail(err, "truncated tx header");
        std::istringstream ls(line);
        std::string tag, kind;
        size_t idx = 0, nOps = 0;
        ls >> tag >> idx >> kind >> nOps;
        if (ls.fail() || tag != "tx" || idx != i || nOps > 10000)
            return fail(err, "bad tx header: " + line);
        p.txs[i].open = kind == "open";
        if (!p.txs[i].open && kind != "closed")
            return fail(err, "bad tx kind: " + kind);
        p.txs[i].ops.resize(nOps);
        for (size_t j = 0; j < nOps; ++j) {
            if (!std::getline(is, line))
                return fail(err, "truncated op list");
            std::istringstream os2(line);
            std::string otag, okind, oregion;
            FuzzOp op;
            os2 >> otag >> okind >> oregion >> op.slot >> op.value >>
                op.child;
            if (os2.fail() || otag != "op" ||
                !opKindFromName(okind, op.kind) ||
                !regionFromName(oregion, op.region)) {
                return fail(err, "bad op: " + line);
            }
            p.txs[i].ops[j] = op;
        }
    }

    if (!expectKeyed("threads", nThreads) || nThreads < 1 || nThreads > 64)
        return fail(err, "bad threads count");
    p.threads.resize(nThreads);
    for (size_t t = 0; t < nThreads; ++t) {
        if (!std::getline(is, line))
            return fail(err, "truncated thread header");
        std::istringstream ls(line);
        std::string tag;
        size_t idx = 0, nOps = 0;
        ls >> tag >> idx >> nOps;
        if (ls.fail() || tag != "thread" || idx != t || nOps > 10000)
            return fail(err, "bad thread header: " + line);
        p.threads[t].resize(nOps);
        for (size_t j = 0; j < nOps; ++j) {
            if (!std::getline(is, line))
                return fail(err, "truncated thread ops");
            std::istringstream os2(line);
            std::string otag, okind, oregion;
            ThreadOp op;
            os2 >> otag >> okind >> op.tx >> oregion >> op.slot >>
                op.value;
            if (os2.fail() || otag != "top" ||
                !threadOpKindFromName(okind, op.kind) ||
                !regionFromName(oregion, op.region)) {
                return fail(err, "bad thread op: " + line);
            }
            p.threads[t][j] = op;
        }
    }

    // Referential sanity: tx/child indices and slots must be in range.
    auto txOk = [&](int idx) {
        return idx >= 0 && idx < static_cast<int>(p.txs.size());
    };
    for (size_t i = 0; i < p.txs.size(); ++i) {
        const FuzzTx& tx = p.txs[i];
        for (const FuzzOp& op : tx.ops) {
            // Children must have strictly larger indices (the generator
            // appends them after the parent): keeps the tx graph a DAG
            // so the interpreter cannot recurse forever on a crafted
            // replay file.
            if (op.kind == FuzzOpKind::Nest &&
                (!txOk(op.child) || op.child <= static_cast<int>(i))) {
                return fail(err, "nest child out of range");
            }
            if (op.slot < 0 || op.slot >= p.slotsPerRegion)
                return fail(err, "op slot out of range");
        }
    }
    for (const auto& tops : p.threads) {
        for (const ThreadOp& op : tops) {
            if (op.kind == ThreadOpKind::RunTx && !txOk(op.tx))
                return fail(err, "thread tx out of range");
            if (op.slot < 0 || op.slot >= p.slotsPerRegion)
                return fail(err, "thread op slot out of range");
        }
    }

    out = std::move(p);
    return true;
}

} // namespace tmsim
