#include "check/oracle.hh"

#include <sstream>
#include <unordered_map>

namespace tmsim {

namespace {

const char*
unitKindName(ObservedUnit::Kind k)
{
    switch (k) {
    case ObservedUnit::Kind::TxCommit: return "tx-commit";
    case ObservedUnit::Kind::OpenCommit: return "open-commit";
    case ObservedUnit::Kind::NakedLoad: return "naked-load";
    case ObservedUnit::Kind::NakedStore: return "naked-store";
    }
    return "?";
}

OracleVerdict
failAt(size_t unit_idx, const ObservedUnit& u, const std::string& what)
{
    std::ostringstream os;
    os << "unit " << unit_idx << " (" << unitKindName(u.kind) << ", cpu "
       << u.cpu << "): " << what;
    return OracleVerdict{false, os.str()};
}

std::string
hex(Word v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

} // namespace

OracleVerdict
checkRun(const FuzzProgram& program, const ObservedRun& run)
{
    if (!run.error.empty())
        return OracleVerdict{false, "recorder error: " + run.error};
    if (run.hang)
        return OracleVerdict{false, "simulation hit the tick limit "
                                    "without completing"};

    // Golden model: only words of checked regions exist in it.
    std::unordered_map<Addr, Word> model;
    for (int r = 0; r < numRegions; ++r) {
        const Region reg = static_cast<Region>(r);
        if (!regionChecked(reg))
            continue;
        for (int s = 0; s < program.slotsPerRegion; ++s) {
            model[run.layout.addrOf(reg, s)] =
                FuzzLayout::initValue(reg, s);
        }
    }

    for (size_t i = 0; i < run.units.size(); ++i) {
        const ObservedUnit& u = run.units[i];
        if (u.dead)
            continue;
        if (!u.filled)
            return failAt(i, u, "serialized but never filled");
        switch (u.kind) {
        case ObservedUnit::Kind::NakedLoad: {
            auto it = model.find(u.addr);
            if (it == model.end())
                return failAt(i, u, "load of unchecked word " +
                                        hex(u.addr));
            if (it->second != u.value) {
                return failAt(i, u,
                              "non-tx load of " + hex(u.addr) +
                                  " observed " + hex(u.value) +
                                  " but the serial model holds " +
                                  hex(it->second));
            }
            break;
        }
        case ObservedUnit::Kind::NakedStore: {
            auto it = model.find(u.addr);
            if (it == model.end())
                return failAt(i, u, "store to unchecked word " +
                                        hex(u.addr));
            it->second = u.value;
            break;
        }
        case ObservedUnit::Kind::TxCommit:
        case ObservedUnit::Kind::OpenCommit:
            for (const ObservedAccess& a : u.accesses) {
                auto it = model.find(a.addr);
                if (it == model.end())
                    return failAt(i, u, "access to unchecked word " +
                                            hex(a.addr));
                switch (a.kind) {
                case ObservedAccess::Kind::Read:
                    if (it->second != a.value) {
                        return failAt(
                            i, u,
                            "committed read of " + hex(a.addr) +
                                " observed " + hex(a.value) +
                                " but the serial model holds " +
                                hex(it->second));
                    }
                    break;
                case ObservedAccess::Kind::ReadUnchecked:
                    break;
                case ObservedAccess::Kind::Write:
                    it->second = a.value;
                    break;
                }
            }
            break;
        }
    }

    for (const auto& [addr, value] : run.finalChecked) {
        auto it = model.find(addr);
        if (it == model.end())
            return OracleVerdict{false, "final snapshot covers "
                                        "unmodelled word " + hex(addr)};
        if (it->second != value) {
            return OracleVerdict{
                false, "final memory mismatch at " + hex(addr) +
                           ": backing store holds " + hex(value) +
                           " but replaying the commit order gives " +
                           hex(it->second)};
        }
    }
    return OracleVerdict{};
}

} // namespace tmsim
