/**
 * @file
 * Fuzz-program interpreter for the native STM backend: executes the
 * same FuzzProgram that check/fuzz_interp runs on the simulator, but
 * on real host threads over an StmRuntime, and reconstructs a global
 * serialization order from each unit's commit key (stm/stm_thread's
 * StmCommitInfo). The resulting ObservedRun feeds the same
 * serializability oracle (check/oracle) — the STM is scheduled
 * nondeterministically, so the oracle's golden sequential replay of
 * the *observed* order is the correctness contract, not bit-identical
 * commit order across engines or runs.
 */

#ifndef TMSIM_CHECK_STM_INTERP_HH
#define TMSIM_CHECK_STM_INTERP_HH

#include <vector>

#include "check/frame_log.hh"
#include "check/fuzz_program.hh"
#include "check/observed.hh"
#include "stm/stm_thread.hh"

namespace tmsim {

class StatsRegistry;

/**
 * Executes one FuzzProgram on the STM backend. Single-shot: construct,
 * call run() once. Thread t of the program maps to one host thread
 * owning one StmThread.
 */
class StmFuzzInterp
{
  public:
    explicit StmFuzzInterp(const FuzzProgram& program,
                           StmConfig cfg = StmConfig{});

    /** Execute the program and return the observation. With
     *  @p stats_out, the runtime's stm.* stats merge into it. */
    ObservedRun run(StatsRegistry* stats_out = nullptr);

  private:
    struct KeyedUnit
    {
        StmCommitInfo key;
        ObservedUnit unit;
    };

    void attach(StmRuntime& rt);
    void threadBody(StmThread& t, int tid, std::vector<KeyedUnit>& out);
    void runTxNode(StmThread& t, int tid, int tx_idx, int depth,
                   std::vector<KeyedUnit>& out);
    void execBody(StmThread& t, int tid, int tx_idx, int depth,
                  std::vector<KeyedUnit>& out);

    const FuzzProgram& prog;
    StmConfig cfg;
    FuzzLayout layout;
    FrameLog flog;
};

} // namespace tmsim

#endif // TMSIM_CHECK_STM_INTERP_HH
