/**
 * @file
 * Seeded fuzz-program generator. Every structural choice draws from a
 * single xoshiro stream seeded by the program seed, so generation is
 * bit-reproducible across hosts and sessions.
 *
 * Generation rules keep programs inside the envelope the oracle can
 * check exactly (see fuzz_program.hh region semantics):
 *  - open transactions are leaves and only touch the Open region;
 *  - voluntary aborts only appear at nesting depth 1 (a deeper abort
 *    would kill the whole outer transaction under flattening but only
 *    the inner one under full nesting — mode-variant by design);
 *  - release only targets a slot the same transaction read earlier;
 *  - Private-region ops always use the generating thread's own slot;
 *  - nesting depth is capped at 3 (< maxHwLevels, so full-nesting
 *    configs never silently subsume).
 */

#include "check/fuzz_program.hh"

#include <set>
#include <utility>

#include "sim/rng.hh"

namespace tmsim {

namespace {

constexpr int maxDepth = 3;

/** Slots sharing a 32-byte line (8-byte words). */
constexpr int slotsPerLine = 4;

struct Gen
{
    Rng rng;
    FuzzProgram p;
    int nThreads = 0;

    /**
     * Line groups (region, slot/slotsPerLine) holding a TxAdd anywhere
     * in the top-level transaction being generated. Release must avoid
     * them: under flattening a release drops the whole merged read-set
     * entry, so releasing an added line would un-protect the add's
     * read-modify-write and allow a genuine lost update — a real
     * mode-variant outcome, not a bug, which would drown the oracle.
     */
    std::set<std::pair<int, int>> addedGroups;

    static std::pair<int, int>
    groupOf(const FuzzOp& op)
    {
        return {static_cast<int>(op.region), op.slot / slotsPerLine};
    }

    explicit Gen(std::uint64_t seed)
        : rng(seed * 0x9E3779B97F4A7C15ull + 0xC0FFEEull)
    {
    }

    int
    slot()
    {
        return static_cast<int>(rng.below(p.slotsPerRegion));
    }

    FuzzOp
    txDataOp(int tid)
    {
        FuzzOp op;
        const std::uint64_t pick = rng.below(100);
        if (pick < 35) {
            op.kind = FuzzOpKind::TxAdd;
            op.region = Region::Shared;
        } else if (pick < 50) {
            op.kind = FuzzOpKind::TxRead;
            op.region = Region::Shared;
        } else if (pick < 65) {
            op.kind = FuzzOpKind::TxAdd;
            op.region = Region::Naked;
        } else if (pick < 75) {
            op.kind = FuzzOpKind::TxRead;
            op.region = Region::Naked;
        } else if (pick < 90) {
            op.kind = FuzzOpKind::TxAdd;
            op.region = Region::Private;
        } else {
            op.kind = FuzzOpKind::TxRead;
            op.region = Region::Private;
        }
        op.slot = op.region == Region::Private ? tid : slot();
        op.value = 1 + rng.below(9);
        return op;
    }

    /** Generate one transaction; returns its index in p.txs. */
    int
    genTx(int tid, int depth, bool open)
    {
        const int idx = static_cast<int>(p.txs.size());
        p.txs.push_back(FuzzTx{});
        p.txs[static_cast<size_t>(idx)].open = open;

        const int nOps = 1 + static_cast<int>(rng.below(6));
        // Slots this transaction has TxRead so far (release candidates).
        std::vector<FuzzOp> reads;
        bool aborted = false;
        for (int i = 0; i < nOps && !aborted; ++i) {
            FuzzOp op;
            if (open) {
                // Open-nested bodies only touch the Open region (plus
                // side-effect-free fillers); they are leaves.
                const std::uint64_t pick = rng.below(100);
                if (pick < 45) {
                    op.kind = FuzzOpKind::TxAdd;
                    op.region = Region::Open;
                    op.slot = slot();
                    op.value = 1 + rng.below(9);
                } else if (pick < 70) {
                    op.kind = FuzzOpKind::TxRead;
                    op.region = Region::Open;
                    op.slot = slot();
                } else if (pick < 80) {
                    op.kind = FuzzOpKind::ImmRead;
                    op.region = Region::Scratch;
                    op.slot = slot();
                } else if (pick < 90) {
                    op.kind = FuzzOpKind::HandlerCommit;
                    op.region = Region::Scratch;
                    op.slot = slot();
                } else {
                    op.kind = FuzzOpKind::Exec;
                    op.value = 1 + rng.below(15);
                }
            } else {
                const std::uint64_t pick = rng.below(100);
                // Reads whose line group carries no TxAdd (see
                // addedGroups): the only safe release targets.
                std::vector<FuzzOp> releasable;
                for (const FuzzOp& r : reads) {
                    if (!addedGroups.count(groupOf(r)))
                        releasable.push_back(r);
                }
                if (pick < 55) {
                    op = txDataOp(tid);
                } else if (pick < 60 && !releasable.empty()) {
                    const FuzzOp& r =
                        releasable[rng.below(releasable.size())];
                    op.kind = FuzzOpKind::Release;
                    op.region = r.region;
                    op.slot = r.slot;
                } else if (pick < 65) {
                    op.kind = FuzzOpKind::ImmRead;
                    op.region = static_cast<Region>(rng.below(numRegions));
                    op.slot = op.region == Region::Private
                                  ? tid
                                  : slot();
                } else if (pick < 70) {
                    op.kind = rng.chancePermille(500)
                                  ? FuzzOpKind::ImmStore
                                  : FuzzOpKind::ImmStoreIdem;
                    op.region = Region::Scratch;
                    op.slot = slot();
                    op.value = rng.below(1000);
                } else if (pick < 78) {
                    op.kind = FuzzOpKind::Exec;
                    op.value = 1 + rng.below(20);
                } else if (pick < 84) {
                    const std::uint64_t h = rng.below(3);
                    op.kind = h == 0   ? FuzzOpKind::HandlerCommit
                              : h == 1 ? FuzzOpKind::HandlerViolation
                                       : FuzzOpKind::HandlerAbort;
                    op.region = Region::Scratch;
                    op.slot = slot();
                } else if (pick < 94 && depth < maxDepth) {
                    op.kind = FuzzOpKind::Nest;
                    const bool childOpen = rng.chancePermille(300);
                    op.child = genTx(tid, depth + 1, childOpen);
                } else if (depth == 1 && rng.chancePermille(60)) {
                    // Rare voluntary abort, always the final op.
                    op.kind = FuzzOpKind::Abort;
                    op.value = 1;
                    aborted = true;
                } else {
                    op = txDataOp(tid);
                }
            }
            if (op.kind == FuzzOpKind::TxRead)
                reads.push_back(op);
            if (op.kind == FuzzOpKind::TxAdd)
                addedGroups.insert(groupOf(op));
            p.txs[static_cast<size_t>(idx)].ops.push_back(op);
        }
        return idx;
    }
};

} // namespace

FuzzProgram
generateProgram(std::uint64_t seed)
{
    Gen g(seed);
    g.p.seed = seed;
    g.nThreads = 2 + static_cast<int>(g.rng.below(3)); // 2..4
    g.p.slotsPerRegion =
        std::max(g.nThreads, 3 + static_cast<int>(g.rng.below(4)));
    g.p.wordGranularity = g.rng.chancePermille(500);
    g.p.olderWins = g.rng.chancePermille(300);
    // Uniform draw over every contention policy (Requester = legacy
    // pass-through): policies reschedule conflicts, never change
    // serializability, so each seed is valid under all of them.
    static const ContentionPolicy policies[] = {
        ContentionPolicy::Requester, ContentionPolicy::Timestamp,
        ContentionPolicy::Karma,     ContentionPolicy::Polite,
        ContentionPolicy::Hybrid,
    };
    g.p.contention = policies[g.rng.below(5)];

    g.p.threads.resize(static_cast<size_t>(g.nThreads));
    for (int t = 0; t < g.nThreads; ++t) {
        const int nOps = 2 + static_cast<int>(g.rng.below(5)); // 2..6
        for (int i = 0; i < nOps; ++i) {
            ThreadOp op;
            const std::uint64_t pick = g.rng.below(100);
            if (pick < 60) {
                op.kind = ThreadOpKind::RunTx;
                const bool topOpen = g.rng.chancePermille(150);
                g.addedGroups.clear(); // scope: one top-level tx
                op.tx = g.genTx(t, 1, topOpen);
            } else if (pick < 75) {
                op.kind = ThreadOpKind::NakedLoad;
                op.region = g.rng.chancePermille(650) ? Region::Naked
                                                      : Region::Private;
                op.slot = op.region == Region::Private ? t : g.slot();
            } else if (pick < 90) {
                op.kind = ThreadOpKind::NakedStore;
                op.region = g.rng.chancePermille(650) ? Region::Naked
                                                      : Region::Private;
                op.slot = op.region == Region::Private ? t : g.slot();
                op.value = 1 + g.rng.below(500);
            } else {
                op.kind = ThreadOpKind::Work;
                op.value = 1 + g.rng.below(30);
            }
            g.p.threads[static_cast<size_t>(t)].push_back(op);
        }
    }
    return g.p;
}

} // namespace tmsim
