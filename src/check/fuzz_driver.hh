/**
 * @file
 * Cross-config differential driver: runs one fuzz program under the
 * four design points the paper contrasts (eager/undo-log, eager/write-
 * buffer, lazy/write-buffer, lazy flattened), oracle-checks each run,
 * and asserts that the mode-invariant regions reach identical final
 * state everywhere. Failing programs are shrunk greedily while the
 * failure reproduces.
 */

#ifndef TMSIM_CHECK_FUZZ_DRIVER_HH
#define TMSIM_CHECK_FUZZ_DRIVER_HH

#include <string>
#include <vector>

#include "check/fuzz_interp.hh"
#include "check/fuzz_program.hh"
#include "htm/htm_config.hh"

namespace tmsim {

struct FuzzConfig
{
    std::string name;
    HtmConfig htm;
};

/** The four differential base configs, with the program's uniform
 *  per-seed toggles (granularity, eager policy) applied. */
std::vector<FuzzConfig> fuzzConfigs(const FuzzProgram& program);

struct FuzzFailure
{
    bool failed = false;
    std::string config;  ///< config name that misbehaved
    std::string message; ///< oracle/divergence diagnostic

    explicit operator bool() const { return failed; }
};

/** Run @p program under every config; first failure wins. With
 *  @p stats_out, every executed run's machine stats merge into it. */
FuzzFailure
runProgramAllConfigs(const FuzzProgram& program,
                     Tick max_ticks = FuzzInterp::defaultMaxTicks,
                     StatsRegistry* stats_out = nullptr);

/**
 * Greedy shrink: repeatedly drop threads, thread ops and transaction
 * ops (re-running the full differential check each time) while the
 * program still fails, within a budget of @p max_runs differential
 * runs. Unreferenced transactions are pruned from the result.
 */
FuzzProgram
shrinkProgram(const FuzzProgram& program, int max_runs = 400,
              Tick max_ticks = FuzzInterp::defaultMaxTicks);

} // namespace tmsim

#endif // TMSIM_CHECK_FUZZ_DRIVER_HH
