#include "check/stm_interp.hh"

#include <algorithm>
#include <atomic>
#include <thread>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace tmsim {

namespace {

constexpr Addr stmLineBytes = 32; // layout geometry, as the simulator

/** Fixed-work spin standing in for the simulator's exec(n). */
void
spinWork(std::uint64_t n)
{
    volatile std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < n; ++i)
        sink = sink + 1;
}

} // namespace

StmFuzzInterp::StmFuzzInterp(const FuzzProgram& program, StmConfig config)
    : prog(program), cfg(std::move(config))
{
    layout.slots = prog.slotsPerRegion;
}

void
StmFuzzInterp::attach(StmRuntime& rt)
{
    // Same region geometry as the simulator layout: line-aligned
    // regions, contiguous word slots. Base addresses differ between
    // engines, so cross-engine comparison is positional.
    const Addr regionBytes =
        static_cast<Addr>(layout.slots) * wordBytes;
    layout.regionStride =
        (regionBytes + stmLineBytes - 1) & ~(stmLineBytes - 1);
    layout.base = rt.allocate(
        static_cast<Addr>(numRegions) * layout.regionStride,
        stmLineBytes);
    for (int r = 0; r < numRegions; ++r) {
        for (int s = 0; s < layout.slots; ++s) {
            const Region reg = static_cast<Region>(r);
            rt.write(layout.addrOf(reg, s),
                     FuzzLayout::initValue(reg, s));
        }
    }
}

void
StmFuzzInterp::execBody(StmThread& t, int tid, int tx_idx, int depth,
                        std::vector<KeyedUnit>& out)
{
    constexpr Addr wordMask = ~(wordBytes - 1);
    const FuzzTx& tx = prog.txs[static_cast<size_t>(tx_idx)];
    for (const FuzzOp& op : tx.ops) {
        const Addr a = layout.addrOf(op.region, op.slot);
        switch (op.kind) {
        case FuzzOpKind::TxRead: {
            const Word v = t.txLoad(a);
            flog.logAccess(tid, ObservedAccess::Kind::Read, a, v);
            break;
        }
        case FuzzOpKind::TxAdd: {
            const Word v = t.txLoad(a);
            t.txStore(a, v + op.value);
            flog.logAccess(tid, ObservedAccess::Kind::Read, a, v);
            flog.logAccess(tid, ObservedAccess::Kind::Write, a,
                           v + op.value);
            break;
        }
        case FuzzOpKind::Release:
            t.release(a);
            flog.markReleased(tid, a & wordMask, wordMask);
            break;
        case FuzzOpKind::ImmRead:
            t.imld(a);
            break;
        case FuzzOpKind::ImmStore:
            t.imst(a, op.value);
            break;
        case FuzzOpKind::ImmStoreIdem:
            t.imstid(a, op.value);
            break;
        case FuzzOpKind::Exec:
            spinWork(op.value);
            break;
        case FuzzOpKind::HandlerCommit: {
            std::vector<Word> args;
            args.push_back(a);
            args.push_back(op.value + 1);
            t.onCommit(
                [](StmThread& th, const std::vector<Word>& hargs) {
                    th.imstid(hargs[0], hargs[1]);
                },
                std::move(args));
            break;
        }
        case FuzzOpKind::HandlerViolation: {
            std::vector<Word> args;
            args.push_back(a);
            t.onViolation(
                [](StmThread& th, const StmViolationInfo&,
                   const std::vector<Word>& hargs) {
                    th.imstid(hargs[0], 1);
                    return StmVioAction::Proceed;
                },
                std::move(args));
            break;
        }
        case FuzzOpKind::HandlerAbort: {
            std::vector<Word> args;
            args.push_back(a);
            args.push_back(op.value + 2);
            t.onAbort(
                [](StmThread& th, const std::vector<Word>& hargs) {
                    th.imstid(hargs[0], hargs[1]);
                },
                std::move(args));
            break;
        }
        case FuzzOpKind::Abort:
            t.xabort(op.value);
            break;
        case FuzzOpKind::Nest:
            runTxNode(t, tid, op.child, depth + 1, out);
            break;
        }
    }
}

void
StmFuzzInterp::runTxNode(StmThread& t, int tid, int tx_idx, int depth,
                         std::vector<KeyedUnit>& out)
{
    const FuzzTx& tx = prog.txs[static_cast<size_t>(tx_idx)];
    const StmTxBody body = [&](StmThread& th) {
        flog.enterAttempt(tid, depth);
        execBody(th, tid, tx_idx, depth, out);
    };
    const StmTxOutcome o =
        tx.open ? t.atomicOpen(body) : t.atomic(body);

    if (!o.committed()) {
        // Voluntary abort: the attempt's frames are dead.
        flog.discardAtOrBelow(tid, depth);
        return;
    }

    if (!flog.topIs(tid, depth)) {
        flog.setError("frame stack out of sync at commit");
        return;
    }
    FrameLog::Frame f = flog.takeTop(tid);

    // The STM nests fully (no flattening): memory commits happen at
    // the outermost level and at every open-nested level. Unlike the
    // simulator there is no serialize-then-cancel window — violations
    // surface synchronously in the faulting thread — so a returned
    // commit is always durable and can be attached immediately.
    const bool memoryCommit = depth == 1 || tx.open;
    if (memoryCommit) {
        ObservedUnit u;
        u.kind = tx.open && depth > 1 ? ObservedUnit::Kind::OpenCommit
                                      : ObservedUnit::Kind::TxCommit;
        u.cpu = static_cast<CpuId>(tid);
        u.filled = true;
        u.accesses = std::move(f.accesses);
        out.push_back(KeyedUnit{t.lastCommit(), std::move(u)});
    } else {
        flog.foldIntoTop(tid, std::move(f.accesses));
    }
}

void
StmFuzzInterp::threadBody(StmThread& t, int tid,
                          std::vector<KeyedUnit>& out)
{
    if (tid >= prog.numThreads())
        return;
    const auto& ops = prog.threads[static_cast<size_t>(tid)];
    for (size_t i = 0; i < ops.size(); ++i) {
        const ThreadOp& op = ops[i];
        switch (op.kind) {
        case ThreadOpKind::RunTx:
            runTxNode(t, tid, op.tx, 1, out);
            break;
        case ThreadOpKind::NakedLoad: {
            const Addr a = layout.addrOf(op.region, op.slot);
            const auto [v, key] = t.nakedLoad(a);
            ObservedUnit u;
            u.kind = ObservedUnit::Kind::NakedLoad;
            u.cpu = static_cast<CpuId>(tid);
            u.filled = true;
            u.addr = a;
            u.value = v;
            out.push_back(KeyedUnit{key, std::move(u)});
            break;
        }
        case ThreadOpKind::NakedStore: {
            const Addr a = layout.addrOf(op.region, op.slot);
            const StmCommitInfo key = t.nakedStore(a, op.value);
            ObservedUnit u;
            u.kind = ObservedUnit::Kind::NakedStore;
            u.cpu = static_cast<CpuId>(tid);
            u.filled = true;
            u.addr = a;
            u.value = op.value;
            out.push_back(KeyedUnit{key, std::move(u)});
            break;
        }
        case ThreadOpKind::Work:
            spinWork(op.value);
            break;
        }
        // Self-test bug injection: a deliberately unrecorded store the
        // oracle must catch (validates the whole checking pipeline).
        if (tid == 0 && prog.injectHiddenStoreAfter == static_cast<int>(i))
            t.nakedStore(layout.addrOf(Region::Shared, 0),
                         0xDEADBEEFull);
    }
}

ObservedRun
StmFuzzInterp::run(StatsRegistry* stats_out)
{
    StmRuntime rt(cfg);
    attach(rt);
    rt.armWatchdog();

    const int n = prog.numThreads();
    flog.resize(static_cast<size_t>(n));
    std::vector<std::vector<KeyedUnit>> perThread(
        static_cast<size_t>(n));
    std::vector<std::string> errs(static_cast<size_t>(n));
    std::atomic<bool> hung{false};

    std::vector<std::thread> hosts;
    hosts.reserve(static_cast<size_t>(n));
    for (int tid = 0; tid < n; ++tid) {
        hosts.emplace_back([&, tid] {
            StmThread t(rt, tid);
            try {
                threadBody(t, tid, perThread[static_cast<size_t>(tid)]);
            } catch (const StmHangError& h) {
                hung.store(true, std::memory_order_relaxed);
            } catch (const StmRollback&) {
                errs[static_cast<size_t>(tid)] =
                    "rollback escaped the retry driver";
            } catch (const StmAbortSignal&) {
                errs[static_cast<size_t>(tid)] =
                    "abort signal escaped the retry driver";
            } catch (const std::exception& e) {
                errs[static_cast<size_t>(tid)] =
                    std::string("exception escaped stm thread: ") +
                    e.what();
            } catch (...) {
                errs[static_cast<size_t>(tid)] =
                    "unknown exception escaped stm thread";
            }
        });
    }
    for (std::thread& h : hosts)
        h.join();

    ObservedRun rec;
    rec.layout = layout;
    for (const std::string& e : errs) {
        if (!e.empty() && rec.error.empty())
            rec.error = e;
    }
    if (rec.error.empty() && !flog.error().empty())
        rec.error = flog.error();
    rec.hang = hung.load(std::memory_order_relaxed) &&
               rec.error.empty();

    // Global serialization order: writers at their commit timestamp
    // (phase 0) precede the read-only units that observed state at
    // that timestamp (phase 1); seq breaks the remaining ties.
    std::vector<KeyedUnit> all;
    for (auto& pt : perThread) {
        for (auto& ku : pt)
            all.push_back(std::move(ku));
    }
    std::stable_sort(all.begin(), all.end(),
                     [](const KeyedUnit& x, const KeyedUnit& y) {
                         if (x.key.key != y.key.key)
                             return x.key.key < y.key.key;
                         if (x.key.phase != y.key.phase)
                             return x.key.phase < y.key.phase;
                         return x.key.seq < y.key.seq;
                     });
    rec.units.reserve(all.size());
    for (auto& ku : all)
        rec.units.push_back(std::move(ku.unit));

    for (int r = 0; r < numRegions; ++r) {
        const Region reg = static_cast<Region>(r);
        if (!regionChecked(reg))
            continue;
        for (int s = 0; s < layout.slots; ++s) {
            const Addr a = layout.addrOf(reg, s);
            const Word v = rt.read(a);
            rec.finalChecked.emplace_back(a, v);
            if (regionInvariant(reg))
                rec.finalInvariant.emplace_back(a, v);
        }
    }

    if (stats_out)
        rt.mergeStats(*stats_out);
    return rec;
}

} // namespace tmsim
