/**
 * @file
 * Per-thread attempt-frame recorder shared by the fuzz interpreters of
 * every execution engine. Each logical thread keeps a stack of frames,
 * one per live transaction attempt; checked accesses are logged into
 * the top frame, a closed-nested commit folds the child frame into its
 * parent, and a restart discards the frames the failed attempt left
 * behind. The engine decides *when* these transitions happen (hooks in
 * the simulator, direct calls in the STM backend); the bookkeeping is
 * identical.
 */

#ifndef TMSIM_CHECK_FRAME_LOG_HH
#define TMSIM_CHECK_FRAME_LOG_HH

#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "check/observed.hh"

namespace tmsim {

class FrameLog
{
  public:
    struct Frame
    {
        int depth;
        std::vector<ObservedAccess> accesses;
    };

    void
    resize(size_t n_threads)
    {
        frames.resize(n_threads);
    }

    /** Start (or restart) the attempt at @p depth: discard frames the
     *  previous attempt left at this depth or deeper. */
    void
    enterAttempt(int tid, int depth)
    {
        auto& st = frames[static_cast<size_t>(tid)];
        while (!st.empty() && st.back().depth >= depth)
            st.pop_back();
        st.push_back(Frame{depth, {}});
    }

    /** Log one checked access into the top frame; reports through the
     *  owner's error sink when no frame is live. */
    void
    logAccess(int tid, ObservedAccess::Kind kind, Addr a, Word v)
    {
        auto& st = frames[static_cast<size_t>(tid)];
        if (st.empty()) {
            setError("access logged outside any transaction frame");
            return;
        }
        st.back().accesses.push_back(ObservedAccess{kind, a, v});
    }

    /**
     * Mark logged reads of track unit @p unit unchecked after a
     * release. Conservative: a release drops the whole track unit from
     * the top-level read-set under flattening, so un-check matching
     * reads in every live frame of this thread. @p unit_mask maps an
     * address to its track unit (line mask for line-granular engines,
     * word mask for word-granular ones).
     */
    void
    markReleased(int tid, Addr unit, Addr unit_mask)
    {
        for (Frame& f : frames[static_cast<size_t>(tid)]) {
            for (ObservedAccess& a : f.accesses) {
                if (a.kind == ObservedAccess::Kind::Read &&
                    (a.addr & unit_mask) == unit) {
                    a.kind = ObservedAccess::Kind::ReadUnchecked;
                }
            }
        }
    }

    /** Discard every frame of @p tid at or deeper than @p depth
     *  (voluntary abort: the attempt's frames are dead). */
    void
    discardAtOrBelow(int tid, int depth)
    {
        auto& st = frames[static_cast<size_t>(tid)];
        while (!st.empty() && st.back().depth >= depth)
            st.pop_back();
    }

    /** True if the top frame of @p tid exists and sits at @p depth. */
    bool
    topIs(int tid, int depth) const
    {
        const auto& st = frames[static_cast<size_t>(tid)];
        return !st.empty() && st.back().depth == depth;
    }

    /** Pop and return the top frame (caller checked topIs()). */
    Frame
    takeTop(int tid)
    {
        auto& st = frames[static_cast<size_t>(tid)];
        Frame f = std::move(st.back());
        st.pop_back();
        return f;
    }

    /** Fold @p accesses into the current top frame (closed-nested
     *  commit: the child's accesses become the parent's). */
    void
    foldIntoTop(int tid, std::vector<ObservedAccess> accesses)
    {
        auto& st = frames[static_cast<size_t>(tid)];
        if (st.empty()) {
            setError("nested commit with no enclosing frame");
            return;
        }
        st.back().accesses.insert(st.back().accesses.end(),
                                  accesses.begin(), accesses.end());
    }

    bool
    empty(int tid) const
    {
        return frames[static_cast<size_t>(tid)].empty();
    }

    /** First recorder-invariant violation, if any ("" when clean).
     *  Only meaningful once all recording threads are quiescent. */
    const std::string& error() const { return firstError; }

    /** First-wins; safe to call from concurrent engine threads (the
     *  frame operations themselves are per-tid and lock-free). */
    void
    setError(const std::string& msg)
    {
        std::lock_guard<std::mutex> g(errLock);
        if (firstError.empty())
            firstError = msg;
    }

  private:
    std::vector<std::vector<Frame>> frames;
    std::string firstError;
    std::mutex errLock;
};

} // namespace tmsim

#endif // TMSIM_CHECK_FRAME_LOG_HH
