#include "check/fuzz_interp.hh"

#include <memory>

namespace tmsim {

namespace {

// Handler bodies registered by fuzz programs. They only touch the
// unchecked Scratch region (via idempotent stores), so they are
// invisible to the oracle no matter how often handlers fire.

SimTask
fuzzScratchStoreHandler(TxThread& th, const std::vector<Word>& args)
{
    co_await th.cpu().imstid(args[0], args[1]);
}

Task<VioAction>
fuzzViolationHandler(TxThread& th, const ViolationInfo&,
                     const std::vector<Word>& args)
{
    co_await th.cpu().imstid(args[0], 1);
    co_return VioAction::Proceed;
}

} // namespace

FuzzInterp::FuzzInterp(const FuzzProgram& program, const HtmConfig& htm)
    : prog(program), htmCfg(htm)
{
    layout.slots = prog.slotsPerRegion;
    pending.assign(static_cast<size_t>(prog.numThreads()), -1);
    flog.resize(static_cast<size_t>(prog.numThreads()));
}

Addr
FuzzInterp::trackUnitMask() const
{
    if (htmCfg.granularity == TrackGranularity::Word)
        return ~(wordBytes - 1);
    return ~(lineBytes - 1);
}

Addr
FuzzInterp::trackUnitOf(Addr a) const
{
    return a & trackUnitMask();
}

void
FuzzInterp::setError(const std::string& msg)
{
    if (rec.error.empty())
        rec.error = msg;
}

void
FuzzInterp::attach(Machine& m)
{
    lineBytes = m.config().l1.lineBytes;
    // Line-align each region so no track unit spans two regions.
    const Addr regionBytes =
        static_cast<Addr>(layout.slots) * wordBytes;
    layout.regionStride =
        (regionBytes + lineBytes - 1) & ~(lineBytes - 1);
    layout.base = m.memory().allocate(
        static_cast<Addr>(numRegions) * layout.regionStride, lineBytes);
    for (int r = 0; r < numRegions; ++r) {
        for (int s = 0; s < layout.slots; ++s) {
            const Region reg = static_cast<Region>(r);
            m.memory().write(layout.addrOf(reg, s),
                             FuzzLayout::initValue(reg, s));
        }
    }
    rec.layout = layout;

    m.setCommitOrderHooks(
        [this](CpuId cpu, bool open) { onSerialized(cpu, open); },
        [this](CpuId cpu) { onCancelled(cpu); });
}

void
FuzzInterp::onSerialized(CpuId cpu, bool open)
{
    if (cpu < 0 || cpu >= static_cast<CpuId>(pending.size())) {
        setError("serialize hook from unexpected cpu");
        return;
    }
    if (pending[cpu] != -1) {
        setError("cpu serialized a second unit before filling the "
                 "first (recorder invariant broken)");
        return;
    }
    ObservedUnit u;
    u.kind = open ? ObservedUnit::Kind::OpenCommit
                  : ObservedUnit::Kind::TxCommit;
    u.cpu = cpu;
    pending[cpu] = static_cast<int>(rec.units.size());
    rec.units.push_back(std::move(u));
}

void
FuzzInterp::onCancelled(CpuId cpu)
{
    if (cpu < 0 || cpu >= static_cast<CpuId>(pending.size()) ||
        pending[static_cast<size_t>(cpu)] == -1) {
        setError("serialize-cancel with no pending unit");
        return;
    }
    rec.units[static_cast<size_t>(pending[cpu])].dead = true;
    pending[cpu] = -1;
}

void
FuzzInterp::attachCommit(CpuId cpu, ObservedUnit::Kind kind,
                         std::vector<ObservedAccess> accesses)
{
    if (cpu < 0 || cpu >= static_cast<CpuId>(pending.size()) ||
        pending[static_cast<size_t>(cpu)] == -1) {
        setError("commit completed without a serialization point");
        return;
    }
    ObservedUnit& u = rec.units[static_cast<size_t>(pending[cpu])];
    if (u.kind != kind) {
        setError("commit kind does not match its serialization record");
        return;
    }
    u.accesses = std::move(accesses);
    u.filled = true;
    pending[cpu] = -1;
}

void
FuzzInterp::recordNaked(ObservedUnit::Kind kind, CpuId cpu, Addr a,
                        Word v)
{
    ObservedUnit u;
    u.kind = kind;
    u.cpu = cpu;
    u.addr = a;
    u.value = v;
    u.filled = true;
    rec.units.push_back(std::move(u));
}

SimTask
FuzzInterp::execBody(TxThread& t, int tid, int tx_idx, int depth)
{
    const FuzzTx& tx = prog.txs[static_cast<size_t>(tx_idx)];
    for (const FuzzOp& op : tx.ops) {
        const Addr a = layout.addrOf(op.region, op.slot);
        switch (op.kind) {
        case FuzzOpKind::TxRead: {
            const Word v = co_await t.ld(a);
            flog.logAccess(tid, ObservedAccess::Kind::Read, a, v);
            break;
        }
        case FuzzOpKind::TxAdd: {
            const Word v = co_await t.ld(a);
            co_await t.st(a, v + op.value);
            flog.logAccess(tid, ObservedAccess::Kind::Read, a, v);
            flog.logAccess(tid, ObservedAccess::Kind::Write, a, v + op.value);
            break;
        }
        case FuzzOpKind::Release:
            co_await t.cpu().release(a);
            flog.markReleased(tid, trackUnitOf(a), trackUnitMask());
            break;
        case FuzzOpKind::ImmRead:
            co_await t.cpu().imld(a);
            break;
        case FuzzOpKind::ImmStore:
            co_await t.cpu().imst(a, op.value);
            break;
        case FuzzOpKind::ImmStoreIdem:
            co_await t.cpu().imstid(a, op.value);
            break;
        case FuzzOpKind::Exec:
            co_await t.work(op.value);
            break;
        case FuzzOpKind::HandlerCommit: {
            std::vector<Word> args;
            args.push_back(a);
            args.push_back(op.value + 1);
            co_await t.onCommit(fuzzScratchStoreHandler,
                                std::move(args));
            break;
        }
        case FuzzOpKind::HandlerViolation: {
            std::vector<Word> args;
            args.push_back(a);
            co_await t.onViolation(fuzzViolationHandler,
                                   std::move(args));
            break;
        }
        case FuzzOpKind::HandlerAbort: {
            std::vector<Word> args;
            args.push_back(a);
            args.push_back(op.value + 2);
            co_await t.onAbort(fuzzScratchStoreHandler,
                               std::move(args));
            break;
        }
        case FuzzOpKind::Abort:
            co_await t.cpu().xabort(op.value);
            break;
        case FuzzOpKind::Nest:
            co_await runTxNode(t, tid, op.child, depth + 1);
            break;
        }
    }
}

SimTask
FuzzInterp::runTxNode(TxThread& t, int tid, int tx_idx, int depth)
{
    const FuzzTx& tx = prog.txs[static_cast<size_t>(tx_idx)];
    TxBody body = [this, tid, tx_idx, depth](TxThread& th) -> SimTask {
        flog.enterAttempt(tid, depth);
        co_await execBody(th, tid, tx_idx, depth);
    };
    TxOutcome out;
    try {
        // Keep each co_await unconditional: a conditional expression
        // with co_await in both arms is miscompiled by this toolchain.
        if (tx.open)
            out = co_await t.atomicOpen(body);
        else
            out = co_await t.atomic(body);
    } catch (...) {
        // An ancestor-level rollback unwound through this transaction
        // before its atomic() could return. If this is an open-nested
        // child whose xcommit already applied memory, the cpu still
        // holds its serialization slot (the hardware cancel correctly
        // did not fire for a durable commit): attach it on the way out
        // so the slot is filled before the ancestor's retry serializes
        // again. A child that had only validated was cancelled by
        // rawRollback and leaves no pending slot.
        const CpuId cpu = t.cpu().id();
        if (tx.open && depth > 1 && cpu >= 0 &&
            cpu < static_cast<CpuId>(pending.size()) &&
            pending[static_cast<size_t>(cpu)] != -1) {
            if (flog.topIs(tid, depth)) {
                attachCommit(cpu, ObservedUnit::Kind::OpenCommit,
                             std::move(flog.takeTop(tid).accesses));
            } else {
                setError("open commit unwound with no matching frame");
            }
        }
        throw;
    }

    if (!out.committed()) {
        // Voluntary abort: the attempt's frames are dead.
        flog.discardAtOrBelow(tid, depth);
        co_return;
    }

    if (!flog.topIs(tid, depth)) {
        setError("frame stack out of sync at commit");
        co_return;
    }
    FrameLog::Frame f = flog.takeTop(tid);

    // A unit commits memory iff it is the outermost level, or an
    // open-nested level under full nesting (flattening subsumes it).
    const bool memoryCommit =
        depth == 1 || (tx.open && htmCfg.nesting == NestingMode::Full);
    if (memoryCommit) {
        attachCommit(t.cpu().id(),
                     tx.open && depth > 1 ? ObservedUnit::Kind::OpenCommit
                                          : ObservedUnit::Kind::TxCommit,
                     std::move(f.accesses));
    } else {
        // Closed-nested (or flatten-subsumed) commit: fold the child's
        // accesses into the enclosing attempt.
        flog.foldIntoTop(tid, std::move(f.accesses));
    }
}

SimTask
FuzzInterp::threadBody(TxThread& t, int tid)
{
    if (tid >= prog.numThreads())
        co_return;
    const auto& ops = prog.threads[static_cast<size_t>(tid)];
    for (size_t i = 0; i < ops.size(); ++i) {
        const ThreadOp& op = ops[i];
        switch (op.kind) {
        case ThreadOpKind::RunTx:
            co_await runTxNode(t, tid, op.tx, 1);
            break;
        case ThreadOpKind::NakedLoad: {
            const Addr a = layout.addrOf(op.region, op.slot);
            const Word v = co_await t.ld(a);
            recordNaked(ObservedUnit::Kind::NakedLoad, t.cpu().id(), a,
                        v);
            break;
        }
        case ThreadOpKind::NakedStore: {
            const Addr a = layout.addrOf(op.region, op.slot);
            co_await t.st(a, op.value);
            recordNaked(ObservedUnit::Kind::NakedStore, t.cpu().id(), a,
                        op.value);
            break;
        }
        case ThreadOpKind::Work:
            co_await t.work(op.value);
            break;
        }
        // Self-test bug injection: a deliberately unrecorded store the
        // oracle must catch (validates the whole checking pipeline).
        if (tid == 0 && prog.injectHiddenStoreAfter == static_cast<int>(i))
            co_await t.st(layout.addrOf(Region::Shared, 0),
                          0xDEADBEEFull);
    }
}

ObservedRun
FuzzInterp::finish(Machine& m, bool hang)
{
    rec.hang = hang;
    if (!flog.error().empty())
        setError(flog.error());
    if (!hang) {
        for (size_t c = 0; c < pending.size(); ++c) {
            if (pending[c] != -1)
                setError("run ended with an unfilled serialized unit");
        }
        for (const ObservedUnit& u : rec.units) {
            if (!u.dead && !u.filled)
                setError("serialized unit never filled or cancelled");
        }
    }
    for (int r = 0; r < numRegions; ++r) {
        const Region reg = static_cast<Region>(r);
        if (!regionChecked(reg))
            continue;
        for (int s = 0; s < layout.slots; ++s) {
            const Addr a = layout.addrOf(reg, s);
            const Word v = m.memory().read(a);
            rec.finalChecked.emplace_back(a, v);
            if (regionInvariant(reg))
                rec.finalInvariant.emplace_back(a, v);
        }
    }
    return std::move(rec);
}

ObservedRun
FuzzInterp::run(Tick max_ticks, StatsRegistry* stats_out)
{
    MachineConfig cfg;
    cfg.numCpus = prog.numThreads();
    cfg.htm = htmCfg;
    cfg.memBytes = 4ull * 1024 * 1024;
    Machine m(cfg);
    attach(m);

    std::vector<std::unique_ptr<TxThread>> threads;
    threads.reserve(static_cast<size_t>(prog.numThreads()));
    for (int i = 0; i < prog.numThreads(); ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));
    for (int i = 0; i < prog.numThreads(); ++i) {
        TxThread* t = threads[static_cast<size_t>(i)].get();
        m.spawn(i, [this, t, i](Cpu&) -> SimTask {
            co_await threadBody(*t, i);
        });
    }

    try {
        m.run(max_ticks);
    } catch (const FatalError&) {
        // A trapped fatal() is a campaign-level event (cancel the
        // worker pool), not a per-seed oracle verdict.
        throw;
    } catch (const std::exception& e) {
        setError(std::string("exception escaped simulation: ") +
                 e.what());
    }
    if (stats_out)
        stats_out->mergeFrom(m.stats());
    return finish(m, !m.allDone() && rec.error.empty() &&
                         flog.error().empty());
}

} // namespace tmsim
