#include "check/fuzz_driver.hh"

#include <sstream>

#include "check/oracle.hh"

namespace tmsim {

std::vector<FuzzConfig>
fuzzConfigs(const FuzzProgram& program)
{
    HtmConfig base;
    base.granularity = program.wordGranularity ? TrackGranularity::Word
                                               : TrackGranularity::Line;
    base.policy = program.olderWins ? ConflictPolicy::OlderWins
                                    : ConflictPolicy::RequesterWins;
    base.contention = program.contention;
    base.rsetCap = program.rsetCap;
    base.wsetCap = program.wsetCap;
    base.capacityMode = program.capacityMode;

    std::vector<FuzzConfig> out;
    {
        HtmConfig c = base;
        c.version = VersionMode::UndoLog;
        c.conflict = ConflictMode::Eager;
        c.nesting = NestingMode::Full;
        out.push_back({"eager-undolog", c});
    }
    {
        HtmConfig c = base;
        c.version = VersionMode::WriteBuffer;
        c.conflict = ConflictMode::Eager;
        c.nesting = NestingMode::Full;
        out.push_back({"eager-wb", c});
    }
    {
        HtmConfig c = base;
        c.version = VersionMode::WriteBuffer;
        c.conflict = ConflictMode::Lazy;
        c.nesting = NestingMode::Full;
        out.push_back({"lazy-wb", c});
    }
    {
        HtmConfig c = base;
        c.version = VersionMode::WriteBuffer;
        c.conflict = ConflictMode::Lazy;
        c.nesting = NestingMode::Flatten;
        out.push_back({"lazy-wb-flatten", c});
    }
    return out;
}

FuzzFailure
runProgramAllConfigs(const FuzzProgram& program, Tick max_ticks,
                     StatsRegistry* stats_out)
{
    const std::vector<FuzzConfig> configs = fuzzConfigs(program);
    std::vector<std::pair<Addr, Word>> ref;
    std::string refName;
    bool haveRef = false;

    for (const FuzzConfig& cfg : configs) {
        FuzzInterp interp(program, cfg.htm);
        const ObservedRun run = interp.run(max_ticks, stats_out);
        const OracleVerdict v = checkRun(program, run);
        if (!v.ok)
            return FuzzFailure{true, cfg.name, v.message};
        if (!haveRef) {
            ref = run.finalInvariant;
            refName = cfg.name;
            haveRef = true;
            continue;
        }
        if (run.finalInvariant.size() != ref.size()) {
            return FuzzFailure{true, cfg.name,
                               "invariant snapshot shape differs from " +
                                   refName};
        }
        for (size_t i = 0; i < ref.size(); ++i) {
            if (run.finalInvariant[i] == ref[i])
                continue;
            std::ostringstream os;
            os << "cross-config divergence at 0x" << std::hex
               << ref[i].first << ": " << refName << " finished with 0x"
               << ref[i].second << " but " << cfg.name
               << " finished with 0x" << run.finalInvariant[i].second;
            return FuzzFailure{true, cfg.name, os.str()};
        }
    }
    return FuzzFailure{};
}

namespace {

/** Drop transactions no thread (or surviving nest op) references and
 *  compact indices; child > parent ordering is preserved. */
FuzzProgram
pruneTxs(const FuzzProgram& p)
{
    std::vector<bool> live(p.txs.size(), false);
    // Indices only grow through nest edges, so one ascending pass after
    // seeding the roots reaches every descendant.
    for (const auto& tops : p.threads) {
        for (const ThreadOp& op : tops) {
            if (op.kind == ThreadOpKind::RunTx && op.tx >= 0)
                live[static_cast<size_t>(op.tx)] = true;
        }
    }
    for (size_t i = 0; i < p.txs.size(); ++i) {
        if (!live[i])
            continue;
        for (const FuzzOp& op : p.txs[i].ops) {
            if (op.kind == FuzzOpKind::Nest && op.child >= 0)
                live[static_cast<size_t>(op.child)] = true;
        }
    }

    std::vector<int> remap(p.txs.size(), -1);
    FuzzProgram out = p;
    out.txs.clear();
    for (size_t i = 0; i < p.txs.size(); ++i) {
        if (!live[i])
            continue;
        remap[i] = static_cast<int>(out.txs.size());
        out.txs.push_back(p.txs[i]);
    }
    for (FuzzTx& tx : out.txs) {
        for (FuzzOp& op : tx.ops) {
            if (op.kind == FuzzOpKind::Nest)
                op.child = remap[static_cast<size_t>(op.child)];
        }
    }
    for (auto& tops : out.threads) {
        for (ThreadOp& op : tops) {
            if (op.kind == ThreadOpKind::RunTx)
                op.tx = remap[static_cast<size_t>(op.tx)];
        }
    }
    return out;
}

} // namespace

FuzzProgram
shrinkProgram(const FuzzProgram& program, int max_runs, Tick max_ticks)
{
    FuzzProgram best = program;
    int budget = max_runs;
    auto stillFails = [&](const FuzzProgram& cand) {
        if (budget <= 0)
            return false;
        --budget;
        return runProgramAllConfigs(cand, max_ticks).failed;
    };

    bool progress = true;
    while (progress && budget > 0) {
        progress = false;

        // Drop whole threads, highest index first (keep at least one).
        for (int t = best.numThreads() - 1;
             t >= 0 && best.numThreads() > 1; --t) {
            FuzzProgram cand = best;
            cand.threads.erase(cand.threads.begin() + t);
            if (stillFails(cand)) {
                best = std::move(cand);
                progress = true;
            }
        }

        // Drop individual top-level thread ops, last first.
        for (size_t t = 0; t < best.threads.size(); ++t) {
            for (int i = static_cast<int>(best.threads[t].size()) - 1;
                 i >= 0; --i) {
                FuzzProgram cand = best;
                cand.threads[t].erase(cand.threads[t].begin() + i);
                if (stillFails(cand)) {
                    best = std::move(cand);
                    progress = true;
                }
            }
        }

        // Drop individual transaction ops, last first. Removing a Nest
        // op merely strands the child tx; pruneTxs collects it below.
        for (size_t x = 0; x < best.txs.size(); ++x) {
            for (int i = static_cast<int>(best.txs[x].ops.size()) - 1;
                 i >= 0; --i) {
                FuzzProgram cand = best;
                cand.txs[x].ops.erase(cand.txs[x].ops.begin() + i);
                if (stillFails(cand)) {
                    best = std::move(cand);
                    progress = true;
                }
            }
        }
    }
    return pruneTxs(best);
}

} // namespace tmsim
