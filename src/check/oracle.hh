/**
 * @file
 * Serializability oracle: replays an ObservedRun's serialization units
 * against a golden sequential memory model and flags any committed
 * read value or final backing-store word that no serial execution in
 * the observed commit order could have produced.
 */

#ifndef TMSIM_CHECK_ORACLE_HH
#define TMSIM_CHECK_ORACLE_HH

#include <string>

#include "check/fuzz_program.hh"
#include "check/observed.hh"

namespace tmsim {

struct OracleVerdict
{
    bool ok = true;
    std::string message;
};

/**
 * Golden-model check of one execution:
 *  - the run must have completed (no hang, no recorder error);
 *  - every non-dead unit replayed in serialization order must read the
 *    model value (checked reads) and its writes update the model;
 *  - the final backing store of every checked region must equal the
 *    model word-for-word.
 */
OracleVerdict checkRun(const FuzzProgram& program,
                       const ObservedRun& run);

} // namespace tmsim

#endif // TMSIM_CHECK_ORACLE_HH
