/**
 * @file
 * Fuzz-program interpreter and run recorder: executes a FuzzProgram on
 * a Machine while logging the chip-global serialization order (via the
 * commit-order hooks) and every checked access each committed unit
 * performed. The resulting ObservedRun is the input to check/oracle.
 */

#ifndef TMSIM_CHECK_FUZZ_INTERP_HH
#define TMSIM_CHECK_FUZZ_INTERP_HH

#include <string>
#include <utility>
#include <vector>

#include "check/frame_log.hh"
#include "check/fuzz_program.hh"
#include "check/observed.hh"
#include "core/machine.hh"
#include "runtime/tx_thread.hh"

namespace tmsim {

/**
 * Executes one FuzzProgram under one HtmConfig. Single-shot: construct,
 * then either call run() (owns the Machine) or drive the attach /
 * threadBody / finish pieces from an external harness (kernel_fuzz).
 */
class FuzzInterp
{
  public:
    static constexpr Tick defaultMaxTicks = 4'000'000;

    FuzzInterp(const FuzzProgram& program, const HtmConfig& htm);

    /** Build a machine, execute the program, return the observation.
     *  With @p stats_out, the machine's stats registry is merged into
     *  it after the run (campaign aggregation). */
    ObservedRun run(Tick max_ticks = defaultMaxTicks,
                    StatsRegistry* stats_out = nullptr);

    // --- pieces for external harnesses ---

    /** Allocate the region layout, write the initial image, install
     *  the commit-order hooks. Call once before spawning threads. */
    void attach(Machine& m);

    /** Body of logical thread @p tid (no-op for tids beyond the
     *  program's thread count). */
    SimTask threadBody(TxThread& t, int tid);

    /** Validate recorder consistency and snapshot the final memory
     *  image. @p hang marks a run cut off by the tick limit. */
    ObservedRun finish(Machine& m, bool hang);

  private:
    SimTask runTxNode(TxThread& t, int tid, int tx_idx, int depth);
    SimTask execBody(TxThread& t, int tid, int tx_idx, int depth);

    void onSerialized(CpuId cpu, bool open);
    void onCancelled(CpuId cpu);
    void attachCommit(CpuId cpu, ObservedUnit::Kind kind,
                      std::vector<ObservedAccess> accesses);
    void recordNaked(ObservedUnit::Kind kind, CpuId cpu, Addr a, Word v);
    void setError(const std::string& msg);

    Addr trackUnitMask() const;
    Addr trackUnitOf(Addr a) const;

    const FuzzProgram& prog;
    HtmConfig htmCfg;
    Addr lineBytes = 32;
    FuzzLayout layout;
    ObservedRun rec;
    /** Per-cpu index into rec.units of the serialized-but-unfilled
     *  unit, or -1. A thread is sequential, so at most one. */
    std::vector<int> pending;
    FrameLog flog;
};

} // namespace tmsim

#endif // TMSIM_CHECK_FUZZ_INTERP_HH
