/**
 * @file
 * Fuzz-program interpreter and run recorder: executes a FuzzProgram on
 * a Machine while logging the chip-global serialization order (via the
 * commit-order hooks) and every checked access each committed unit
 * performed. The resulting ObservedRun is the input to check/oracle.
 */

#ifndef TMSIM_CHECK_FUZZ_INTERP_HH
#define TMSIM_CHECK_FUZZ_INTERP_HH

#include <string>
#include <utility>
#include <vector>

#include "check/fuzz_program.hh"
#include "core/machine.hh"
#include "runtime/tx_thread.hh"

namespace tmsim {

/**
 * Word layout of the fuzz regions in simulated memory. Regions are
 * line-aligned so no track unit ever spans two regions (release-safety
 * and the cross-config invariant reason about whole regions); slots
 * within a region stay contiguous so neighbouring slots share a line
 * and exercise false sharing under line-granular tracking.
 */
struct FuzzLayout
{
    Addr base = 0;
    int slots = 0;
    Addr regionStride = 0;

    Addr
    addrOf(Region r, int slot) const
    {
        return base + static_cast<Addr>(r) * regionStride +
               static_cast<Addr>(slot) * wordBytes;
    }

    /** Deterministic initial image, distinct per word. */
    static Word
    initValue(Region r, int slot)
    {
        return 0x1000u * (static_cast<unsigned>(r) + 1) +
               static_cast<unsigned>(slot);
    }
};

/** One checked access performed inside a committed unit. */
struct ObservedAccess
{
    enum class Kind : std::uint8_t
    {
        Read,          ///< value must match the golden model
        ReadUnchecked, ///< read later released: no value guarantee
        Write,         ///< applied to the golden model
    };

    Kind kind = Kind::Read;
    Addr addr = 0;
    Word value = 0;
};

/**
 * One serialization unit in chip-global order: an outer-transaction
 * commit, an open-nested commit, or a single non-transactional access
 * (which is its own serialization point under strong atomicity).
 */
struct ObservedUnit
{
    enum class Kind : std::uint8_t
    {
        TxCommit,
        OpenCommit,
        NakedLoad,
        NakedStore,
    };

    Kind kind = Kind::TxCommit;
    CpuId cpu = 0;
    /** Serialized, then rolled back before committing memory. */
    bool dead = false;
    /** Access content attached (always true for naked units). */
    bool filled = false;
    std::vector<ObservedAccess> accesses; ///< commits only
    Addr addr = 0;                        ///< naked units only
    Word value = 0;                       ///< naked units only
};

/** Everything the oracle needs about one execution. */
struct ObservedRun
{
    FuzzLayout layout;
    std::vector<ObservedUnit> units;
    bool hang = false;
    std::string error;
    /** Final backing-store words of all golden-checked regions. */
    std::vector<std::pair<Addr, Word>> finalChecked;
    /** Final words of the mode-invariant regions (Shared, Private). */
    std::vector<std::pair<Addr, Word>> finalInvariant;
};

/**
 * Executes one FuzzProgram under one HtmConfig. Single-shot: construct,
 * then either call run() (owns the Machine) or drive the attach /
 * threadBody / finish pieces from an external harness (kernel_fuzz).
 */
class FuzzInterp
{
  public:
    static constexpr Tick defaultMaxTicks = 4'000'000;

    FuzzInterp(const FuzzProgram& program, const HtmConfig& htm);

    /** Build a machine, execute the program, return the observation.
     *  With @p stats_out, the machine's stats registry is merged into
     *  it after the run (campaign aggregation). */
    ObservedRun run(Tick max_ticks = defaultMaxTicks,
                    StatsRegistry* stats_out = nullptr);

    // --- pieces for external harnesses ---

    /** Allocate the region layout, write the initial image, install
     *  the commit-order hooks. Call once before spawning threads. */
    void attach(Machine& m);

    /** Body of logical thread @p tid (no-op for tids beyond the
     *  program's thread count). */
    SimTask threadBody(TxThread& t, int tid);

    /** Validate recorder consistency and snapshot the final memory
     *  image. @p hang marks a run cut off by the tick limit. */
    ObservedRun finish(Machine& m, bool hang);

  private:
    struct Frame
    {
        int depth;
        std::vector<ObservedAccess> accesses;
    };

    SimTask runTxNode(TxThread& t, int tid, int tx_idx, int depth);
    SimTask execBody(TxThread& t, int tid, int tx_idx, int depth);

    /** Start (or restart) the attempt at @p depth: discard frames the
     *  previous attempt left at this depth or deeper. */
    void enterAttempt(int tid, int depth);
    void logAccess(int tid, ObservedAccess::Kind kind, Addr a, Word v);
    /** Mark logged reads of @p unit unchecked after a release. */
    void markReleased(int tid, Addr unit);

    void onSerialized(CpuId cpu, bool open);
    void onCancelled(CpuId cpu);
    void attachCommit(CpuId cpu, ObservedUnit::Kind kind,
                      std::vector<ObservedAccess> accesses);
    void recordNaked(ObservedUnit::Kind kind, CpuId cpu, Addr a, Word v);
    void setError(const std::string& msg);

    Addr trackUnitOf(Addr a) const;

    const FuzzProgram& prog;
    HtmConfig htmCfg;
    Addr lineBytes = 32;
    FuzzLayout layout;
    ObservedRun rec;
    /** Per-cpu index into rec.units of the serialized-but-unfilled
     *  unit, or -1. A thread is sequential, so at most one. */
    std::vector<int> pending;
    std::vector<std::vector<Frame>> frames;
};

} // namespace tmsim

#endif // TMSIM_CHECK_FUZZ_INTERP_HH
