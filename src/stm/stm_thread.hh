/**
 * @file
 * StmThread: one host thread's view of the STM — the full paper ISA
 * surface (xbegin/xbegin_open, two-phase xvalidate/xcommit, xabort,
 * imld/imst/imstid, release), the commit/violation/abort handler
 * stacks, and the atomic()/atomicOpen() retry drivers, all with the
 * same software semantics as the simulated runtime (runtime/tx_thread)
 * but implemented over orecs, a redo log and the global version clock.
 *
 * Nesting follows the paper's txstack discipline (SNIPPETS.md §3):
 * a closed-nested commit merges the child's read/write sets into the
 * parent (handlers stay registered); loads see staged writes of every
 * enclosing level (read-your-write across levels); only the outermost
 * level — or an open-nested level, which commits early — performs the
 * full two-phase commit against memory.
 */

#ifndef TMSIM_STM_STM_THREAD_HH
#define TMSIM_STM_STM_THREAD_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sim/types.hh"
#include "stm/stm_runtime.hh"

namespace tmsim {

class StmThread;

/** Rollback of levels >= targetLevel after a conflict; the atomic()
 *  driver owning targetLevel absorbs it and retries. */
struct StmRollback
{
    int targetLevel;
    Addr vaddr;
};

/** Voluntary abort of levels >= targetLevel (no retry). */
struct StmAbortSignal
{
    int targetLevel;
    Word code;
};

/** The watchdog deadline expired while an operation spun. */
struct StmHangError
{
    std::string what;
};

struct StmViolationInfo
{
    Addr vaddr;
    int targetLevel;
};

enum class StmVioAction
{
    Proceed,  ///< fall through: roll back and retry
    Continue, ///< resume the interrupted operation
};

using StmCommitFn =
    std::function<void(StmThread&, const std::vector<Word>&)>;
using StmAbortFn = StmCommitFn;
using StmViolationFn = std::function<StmVioAction(
    StmThread&, const StmViolationInfo&, const std::vector<Word>&)>;

enum class StmTxResult
{
    Committed,
    Aborted,
};

struct StmTxOutcome
{
    StmTxResult result = StmTxResult::Committed;
    Word abortCode = 0;
    int retries = 0;

    bool committed() const { return result == StmTxResult::Committed; }
};

/**
 * Serialization key of a memory-committing unit, for harnesses that
 * reconstruct a global serial order (check/stm_interp). Units sort by
 * (key, phase, seq): writers carry (commit timestamp, phase 0) and
 * read-only units (snapshot timestamp, phase 1), so a writer at
 * timestamp t precedes the readers that observed state t.
 */
struct StmCommitInfo
{
    std::uint64_t key = 0;
    int phase = 0;
    std::uint64_t seq = 0;
};

using StmTxBody = std::function<void(StmThread&)>;

class StmThread
{
  public:
    StmThread(StmRuntime& rt, int tid);

    StmThread(const StmThread&) = delete;
    StmThread& operator=(const StmThread&) = delete;

    StmRuntime& runtime() { return rt; }
    int tid() const { return tidVal; }
    Rng& rng() { return threadRng; }

    // --- raw ISA surface ---

    void xbegin();
    void xbeginOpen();
    /** Phase 1 of the two-phase commit: lock the write set, fetch the
     *  commit timestamp, validate the read set. After xvalidate the
     *  commit can no longer fail; commit handlers run next. */
    void xvalidate();
    /** Phase 2: publish the redo log, release orecs, pop the level. */
    void xcommit();
    /** Voluntary abort of the innermost level (runs abort handlers,
     *  throws StmAbortSignal). */
    void xabort(Word code = 0);

    Word txLoad(Addr a);
    void txStore(Addr a, Word v);

    /** imld: load without read-set insertion. */
    Word imld(Addr a);
    /** imst: immediate store (undo kept, no write-set insertion). */
    void imst(Addr a, Word v);
    /** imstid: idempotent immediate store (no undo information). */
    void imstid(Addr a, Word v);
    /** release: drop @p a from every live level's read set. */
    void release(Addr a);

    int depth() const { return static_cast<int>(levels.size()); }
    bool inTx() const { return !levels.empty(); }

    // --- software conventions (runtime/tx_thread analogues) ---

    /** Run @p body as a closed transaction, retrying on violation
     *  until it commits or aborts voluntarily. */
    StmTxOutcome atomic(const StmTxBody& body);
    /** Run @p body as an open-nested transaction. */
    StmTxOutcome atomicOpen(const StmTxBody& body);

    void onCommit(StmCommitFn fn, std::vector<Word> args = {});
    void onViolation(StmViolationFn fn, std::vector<Word> args = {});
    void onAbort(StmAbortFn fn, std::vector<Word> args = {});

    // --- non-transactional accesses (strong-atomicity analogues) ---

    /** Single-word serialization unit: value + its snapshot key. */
    std::pair<Word, StmCommitInfo> nakedLoad(Addr a);
    /** Single-write serialization unit: returns its commit key. */
    StmCommitInfo nakedStore(Addr a, Word v);

    /** Key of the most recent memory-committing xcommit (outermost or
     *  open) performed by this thread. */
    const StmCommitInfo& lastCommit() const { return lastCommitInfo; }

    StmThreadStats& stats() { return st; }

  private:
    struct Handler
    {
        StmCommitFn commitFn;     ///< commit/abort stacks
        StmViolationFn violationFn; ///< violation stack
        std::vector<Word> args;
    };

    struct Level
    {
        bool open = false;
        /** Redo log in program order; later entries win. */
        std::vector<std::pair<Addr, Word>> writeBuf;
        /** (address, orec version observed) of every checked read. */
        std::vector<std::pair<Addr, std::uint64_t>> reads;
        /** imst undo records (address, pre-store value), FILO. */
        std::vector<std::pair<Addr, Word>> imstUndo;
        size_t chSave = 0;
        size_t vhSave = 0;
        size_t ahSave = 0;
        /** Set by xvalidate for xcommit (phase-2 state). */
        bool validated = false;
        std::uint64_t wv = 0;
        std::vector<std::pair<std::size_t, std::uint64_t>> locks;
    };

    void beginLevel(bool open);
    StmTxOutcome runTx(bool open, const StmTxBody& body);
    /** xvalidate + commit handlers + xcommit, per paper section 4.2. */
    void commitSequence();
    void defaultBackoff(int retries);

    /** Staged-write lookup across all live levels, newest first. */
    bool findStagedWrite(Addr a, Word& out) const;

    /** One consistent (value, orec version) read of @p a. */
    std::pair<Word, std::uint64_t> consistentRead(Addr a);

    /** Extend the read snapshot to now. On failure delivers a
     *  violation for the first failing read (usually throws); returns
     *  false only when a handler chose to Continue. */
    bool extendSnapshot();

    /** True if every live level's reads are valid at the current orec
     *  state; *fail_addr receives the first failing address. */
    bool validateAllReads(Addr* fail_addr) const;

    /** Validate one read entry against the current orec state.
     *  @p self_locks: lock records of an in-progress commit, so a
     *  self-locked orec validates against its pre-lock version. */
    bool readEntryValid(
        Addr a, std::uint64_t ver,
        const std::vector<std::pair<std::size_t, std::uint64_t>>*
            self_locks) const;

    /** Shallowest level whose read set contains @p a (1-based); falls
     *  back to the innermost level. */
    int violationTargetFor(Addr a) const;

    /** Run violation handlers of levels >= target (newest first);
     *  Proceed => rollback + throw StmRollback, Continue => return. */
    void deliverViolation(Addr vaddr, int target);

    /** Discard levels >= target: restore imst undo FILO, truncate the
     *  handler stacks to the target level's saved marks. */
    void rollbackTo(int target);

    void releaseLocks(Level& lv);
    void spinOrHang(int& tries, const char* where);
    void checkDeadline(const char* where) const;

    StmRuntime& rt;
    int tidVal;
    std::vector<Level> levels;
    /** Snapshot timestamp of the current nest (TL2 rv), shared by all
     *  levels and advanced by successful snapshot extensions. */
    std::uint64_t rv = 0;
    std::vector<Handler> ch;
    std::vector<Handler> vh;
    std::vector<Handler> ah;
    StmCommitInfo lastCommitInfo;
    StmThreadStats& st;
    Rng threadRng;
};

} // namespace tmsim

#endif // TMSIM_STM_STM_THREAD_HH
