/**
 * @file
 * StmRuntime: the process-wide shared state of the native STM backend
 * — the word-addressable transactional heap, the orec table, the
 * global version clock, the serialization-sequence counter, and the
 * per-thread stats that merge into a StatsRegistry after the threads
 * join. Host threads act on it through StmThread (stm_thread.hh).
 */

#ifndef TMSIM_STM_STM_RUNTIME_HH
#define TMSIM_STM_STM_RUNTIME_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "sim/types.hh"
#include "stm/orec_table.hh"
#include "stm/stm_config.hh"

namespace tmsim {

class StatsRegistry;

/** Host-side event counts of one thread; plain (unshared) fields
 *  merged single-threaded after the run. */
struct StmThreadStats
{
    std::uint64_t starts = 0;
    std::uint64_t commits = 0;
    std::uint64_t roCommits = 0;
    std::uint64_t openCommits = 0;
    std::uint64_t abortsVoluntary = 0;
    std::uint64_t violations = 0;
    std::uint64_t retries = 0;
    std::uint64_t snapshotExtensions = 0;
    std::uint64_t lockFailures = 0;
    std::uint64_t nakedLoads = 0;
    std::uint64_t nakedStores = 0;
    std::uint64_t releases = 0;
    std::uint64_t commitHandlerRuns = 0;
    std::uint64_t violationHandlerRuns = 0;
    std::uint64_t abortHandlerRuns = 0;
    std::vector<std::uint64_t> readSetSizes;  ///< sampled at commit
    std::vector<std::uint64_t> writeSetSizes; ///< sampled at commit

    void mergeFrom(const StmThreadStats& o);
};

/**
 * Shared state of one STM instance. Construct, allocate() the heap
 * layout, spawn host threads each owning an StmThread, join, then
 * read memory / merge stats from the (again single-threaded) owner.
 */
class StmRuntime
{
  public:
    explicit StmRuntime(StmConfig cfg = StmConfig{});

    const StmConfig& config() const { return cfg; }

    /** Bump-allocate @p bytes with @p align (mirrors BackingStore's
     *  interface so layout code ports over). Single-threaded. */
    Addr allocate(Addr bytes, Addr align = wordBytes);

    /** Non-transactional word access for setup/teardown code while no
     *  transactions run (plain acquire/release atomics). */
    Word read(Addr a) const;
    void write(Addr a, Word v);

    OrecTable& orecs() { return orecTable; }
    GlobalClock& clock() { return versionClock; }

    /** Tie-break sequence for serialization units that share a clock
     *  key (read-only commits, naked loads). */
    std::uint64_t
    nextSeq()
    {
        return seqCounter.fetch_add(1, std::memory_order_relaxed);
    }

    /** Arm the watchdog: operations that cannot make progress by the
     *  deadline throw StmHangError. Call before spawning threads. */
    void armWatchdog();
    std::chrono::steady_clock::time_point deadline() const { return dl; }

    /** Word cell accessor for StmThread (bounds-checked). */
    std::atomic<Word>& cell(Addr a);
    const std::atomic<Word>& cell(Addr a) const;

    /** Per-thread stats slot (valid tids: 0..63). */
    StmThreadStats& statsFor(int tid);

    /** Fold every thread's counters into @p reg under "stm.*". Call
     *  after all threads joined. */
    void mergeStats(StatsRegistry& reg) const;

  private:
    StmConfig cfg;
    std::vector<std::atomic<Word>> memWords;
    OrecTable orecTable;
    GlobalClock versionClock;
    std::atomic<std::uint64_t> seqCounter{0};
    Addr brk = 0;
    std::chrono::steady_clock::time_point dl;
    std::vector<StmThreadStats> threadStats;
};

} // namespace tmsim

#endif // TMSIM_STM_STM_RUNTIME_HH
