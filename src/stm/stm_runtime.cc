#include "stm/stm_runtime.hh"

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace tmsim {

void
StmThreadStats::mergeFrom(const StmThreadStats& o)
{
    starts += o.starts;
    commits += o.commits;
    roCommits += o.roCommits;
    openCommits += o.openCommits;
    abortsVoluntary += o.abortsVoluntary;
    violations += o.violations;
    retries += o.retries;
    snapshotExtensions += o.snapshotExtensions;
    lockFailures += o.lockFailures;
    nakedLoads += o.nakedLoads;
    nakedStores += o.nakedStores;
    releases += o.releases;
    commitHandlerRuns += o.commitHandlerRuns;
    violationHandlerRuns += o.violationHandlerRuns;
    abortHandlerRuns += o.abortHandlerRuns;
    readSetSizes.insert(readSetSizes.end(), o.readSetSizes.begin(),
                        o.readSetSizes.end());
    writeSetSizes.insert(writeSetSizes.end(), o.writeSetSizes.begin(),
                         o.writeSetSizes.end());
}

namespace {

constexpr int maxStmThreads = 64;

std::size_t
roundUpPow2(std::size_t v)
{
    std::size_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

StmRuntime::StmRuntime(StmConfig config)
    : cfg(std::move(config)),
      memWords(cfg.memWords),
      orecTable(roundUpPow2(cfg.numOrecs)),
      threadStats(maxStmThreads)
{
    if (cfg.memWords == 0 || cfg.numOrecs == 0)
        fatal("stm: memWords and numOrecs must be nonzero");
    for (auto& w : memWords)
        w.store(0, std::memory_order_relaxed);
    armWatchdog();
}

Addr
StmRuntime::allocate(Addr bytes, Addr align)
{
    if (align == 0 || (align & (align - 1)) != 0)
        fatal("stm: allocation alignment must be a power of two");
    const Addr base = (brk + align - 1) & ~(align - 1);
    const Addr limit = static_cast<Addr>(memWords.size()) * wordBytes;
    if (bytes > limit || base > limit - bytes)
        fatal("stm: heap exhausted (%llu words configured)",
              static_cast<unsigned long long>(memWords.size()));
    brk = base + bytes;
    return base;
}

std::atomic<Word>&
StmRuntime::cell(Addr a)
{
    const std::size_t idx = static_cast<std::size_t>(a / wordBytes);
    if (idx >= memWords.size())
        fatal("stm: word address 0x%llx out of bounds",
              static_cast<unsigned long long>(a));
    return memWords[idx];
}

const std::atomic<Word>&
StmRuntime::cell(Addr a) const
{
    return const_cast<StmRuntime*>(this)->cell(a);
}

Word
StmRuntime::read(Addr a) const
{
    return cell(a).load(std::memory_order_acquire);
}

void
StmRuntime::write(Addr a, Word v)
{
    cell(a).store(v, std::memory_order_release);
}

void
StmRuntime::armWatchdog()
{
    dl = std::chrono::steady_clock::now() + cfg.opTimeout;
}

StmThreadStats&
StmRuntime::statsFor(int tid)
{
    if (tid < 0 || tid >= maxStmThreads)
        fatal("stm: thread id %d out of range", tid);
    return threadStats[static_cast<std::size_t>(tid)];
}

void
StmRuntime::mergeStats(StatsRegistry& reg) const
{
    StmThreadStats total;
    for (const StmThreadStats& t : threadStats)
        total.mergeFrom(t);

    reg.counter("stm.starts") += total.starts;
    reg.counter("stm.commits") += total.commits;
    reg.counter("stm.commits_readonly") += total.roCommits;
    reg.counter("stm.commits_open") += total.openCommits;
    reg.counter("stm.aborts_voluntary") += total.abortsVoluntary;
    reg.counter("stm.violations") += total.violations;
    reg.counter("stm.retries") += total.retries;
    reg.counter("stm.snapshot_extensions") += total.snapshotExtensions;
    reg.counter("stm.lock_failures") += total.lockFailures;
    reg.counter("stm.naked_loads") += total.nakedLoads;
    reg.counter("stm.naked_stores") += total.nakedStores;
    reg.counter("stm.releases") += total.releases;
    reg.counter("stm.handler_runs_commit") += total.commitHandlerRuns;
    reg.counter("stm.handler_runs_violation") +=
        total.violationHandlerRuns;
    reg.counter("stm.handler_runs_abort") += total.abortHandlerRuns;

    auto& rs = reg.distribution("stm.read_set_size");
    for (std::uint64_t v : total.readSetSizes)
        rs.sample(v);
    auto& ws = reg.distribution("stm.write_set_size");
    for (std::uint64_t v : total.writeSetSizes)
        ws.sample(v);
}

} // namespace tmsim
