/**
 * @file
 * Ownership records and the global version clock of the TL2-style STM
 * backend (per the TL2 / OrecLazy lineage referenced in PAPERS.md).
 *
 * Each orec is one 64-bit atomic word:
 *   - bit 63 clear: the word IS the version — the commit timestamp of
 *     the last transaction that wrote any address mapping to this orec.
 *   - bit 63 set:   locked for commit; the low bits hold the owning
 *     thread id. The pre-lock version lives in the owner's commit-local
 *     lock record, not in the orec itself.
 *
 * Version invariant: successive writers of one orec serialize on its
 * lock and fetch their commit timestamps while holding it, so the
 * version sequence of every orec is strictly increasing. Observing an
 * unlocked orec at version v therefore proves every writer of that
 * orec with timestamp <= v has fully released (writes in memory).
 */

#ifndef TMSIM_STM_OREC_TABLE_HH
#define TMSIM_STM_OREC_TABLE_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace tmsim {

constexpr std::uint64_t orecLockBit = std::uint64_t{1} << 63;

inline bool orecLocked(std::uint64_t o) { return (o & orecLockBit) != 0; }

inline std::uint64_t orecVersion(std::uint64_t o) { return o; }

/** Owner tid of a locked orec (meaningless when unlocked). */
inline int
orecOwner(std::uint64_t o)
{
    return static_cast<int>(o & ~orecLockBit);
}

inline std::uint64_t
orecLockedBy(int tid)
{
    return orecLockBit | static_cast<std::uint64_t>(tid);
}

/**
 * Global version clock. Read by transaction starts (the read snapshot
 * rv) and advanced by committing writers. Commit protocol ordering is
 * load-bearing: a writer LOCKS its write orecs before fetching its
 * commit timestamp, so any timestamp wv <= rv implies the writer
 * locked before rv was sampled — a reader sampling rv then either
 * observes the lock (and waits) or the fully-released new version.
 * That is what makes "serialize read-only work at rv" sound.
 */
class GlobalClock
{
  public:
    std::uint64_t now() const { return clk.load(std::memory_order_acquire); }

    /** Next commit timestamp (strictly positive; version 0 means
     *  "initial image, never written"). */
    std::uint64_t
    advance()
    {
        return clk.fetch_add(1, std::memory_order_acq_rel) + 1;
    }

  private:
    std::atomic<std::uint64_t> clk{0};
};

/** The orec array plus the address-to-orec mapping. */
class OrecTable
{
  public:
    explicit OrecTable(std::size_t n_orecs)
        : mask(n_orecs - 1), orecs(n_orecs)
    {
        for (auto& o : orecs)
            o.store(0, std::memory_order_relaxed);
    }

    std::size_t
    indexOf(Addr a) const
    {
        return static_cast<std::size_t>(a / wordBytes) & mask;
    }

    std::atomic<std::uint64_t>& at(std::size_t idx) { return orecs[idx]; }
    std::atomic<std::uint64_t>& of(Addr a) { return orecs[indexOf(a)]; }

    std::size_t size() const { return orecs.size(); }

  private:
    std::size_t mask;
    std::vector<std::atomic<std::uint64_t>> orecs;
};

} // namespace tmsim

#endif // TMSIM_STM_OREC_TABLE_HH
