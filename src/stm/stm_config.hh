/**
 * @file
 * Configuration for the native STM backend (src/stm): table sizes,
 * spin budgets, the per-run watchdog deadline, and the pluggable
 * contention hook invoked between retries of an atomic section.
 */

#ifndef TMSIM_STM_STM_CONFIG_HH
#define TMSIM_STM_STM_CONFIG_HH

#include <chrono>
#include <cstddef>
#include <functional>

namespace tmsim {

/**
 * Tuning knobs of one StmRuntime instance. Defaults are sized for the
 * fuzz corpus and the scaling benchmark; everything is host-side (no
 * simulated cost model).
 */
struct StmConfig
{
    /** Size of the word-addressable transactional heap. */
    std::size_t memWords = std::size_t{1} << 20;

    /** Ownership-record count; must be a power of two. Aliasing two
     *  addresses onto one orec is safe (false conflicts only). */
    std::size_t numOrecs = std::size_t{1} << 16;

    /** Bounded spin (iterations) on a locked orec before the waiter
     *  gives up and treats the lock as a conflict. */
    int spinTries = 4096;

    /** Watchdog: an operation that cannot make progress within this
     *  budget throws StmHangError instead of spinning forever. The
     *  lock protocol cannot deadlock (sorted acquisition), so this
     *  only fires on livelock pathologies or a wedged host. */
    std::chrono::milliseconds opTimeout{10'000};

    /**
     * Contention hook: called by the atomic()/atomicOpen() retry
     * drivers after a rolled-back attempt, before the re-execution.
     * Replaceable by embedders (benchmarks install their own policy);
     * when empty, StmThread applies capped exponential backoff.
     */
    std::function<void(int tid, int retries)> onRetry;
};

} // namespace tmsim

#endif // TMSIM_STM_STM_CONFIG_HH
