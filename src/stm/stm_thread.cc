#include "stm/stm_thread.hh"

#include <algorithm>
#include <thread>

#include "sim/logging.hh"

namespace tmsim {

StmThread::StmThread(StmRuntime& runtime, int tid)
    : rt(runtime), tidVal(tid), st(runtime.statsFor(tid)),
      threadRng(0xC0FFEEull + static_cast<std::uint64_t>(tid) * 7919)
{
}

void
StmThread::checkDeadline(const char* where) const
{
    if (std::chrono::steady_clock::now() > rt.deadline())
        throw StmHangError{std::string("stm watchdog expired: ") + where};
}

void
StmThread::spinOrHang(int& tries, const char* where)
{
    ++tries;
    if ((tries & 0x3F) == 0) {
        checkDeadline(where);
        std::this_thread::yield();
    }
}

// --- transaction lifecycle -------------------------------------------

void
StmThread::beginLevel(bool open)
{
    Level lv;
    lv.open = open;
    lv.chSave = ch.size();
    lv.vhSave = vh.size();
    lv.ahSave = ah.size();
    if (levels.empty())
        rv = rt.clock().now();
    levels.push_back(std::move(lv));
    ++st.starts;
}

void
StmThread::xbegin()
{
    beginLevel(false);
}

void
StmThread::xbeginOpen()
{
    beginLevel(true);
}

bool
StmThread::findStagedWrite(Addr a, Word& out) const
{
    // Read-your-write across levels (paper txstack): the newest staged
    // value anywhere in the nest wins, searching innermost level first
    // and each level's redo log newest-entry-first.
    for (auto lv = levels.rbegin(); lv != levels.rend(); ++lv) {
        for (auto w = lv->writeBuf.rbegin(); w != lv->writeBuf.rend();
             ++w) {
            if (w->first == a) {
                out = w->second;
                return true;
            }
        }
    }
    return false;
}

std::pair<Word, std::uint64_t>
StmThread::consistentRead(Addr a)
{
    auto& orec = rt.orecs().of(a);
    const auto& c = rt.cell(a);
    int tries = 0;
    for (;;) {
        const std::uint64_t o1 = orec.load(std::memory_order_acquire);
        if (orecLocked(o1)) {
            // A committer owns the orec; its critical section is
            // bounded, so wait rather than abort.
            spinOrHang(tries, "read of a locked orec");
            continue;
        }
        const Word v = c.load(std::memory_order_acquire);
        const std::uint64_t o2 = orec.load(std::memory_order_acquire);
        if (o1 != o2) {
            spinOrHang(tries, "torn read retry");
            continue;
        }
        return {v, o1};
    }
}

bool
StmThread::readEntryValid(
    Addr a, std::uint64_t ver,
    const std::vector<std::pair<std::size_t, std::uint64_t>>* self_locks)
    const
{
    auto& rtm = const_cast<StmRuntime&>(rt);
    const std::size_t idx = rtm.orecs().indexOf(a);
    const std::uint64_t o =
        rtm.orecs().at(idx).load(std::memory_order_acquire);
    if (orecLocked(o)) {
        if (self_locks && orecOwner(o) == tidVal) {
            for (const auto& [li, prev] : *self_locks) {
                if (li == idx)
                    return prev == ver;
            }
        }
        return false;
    }
    return orecVersion(o) == ver;
}

bool
StmThread::validateAllReads(Addr* fail_addr) const
{
    for (const Level& lv : levels) {
        for (const auto& [a, ver] : lv.reads) {
            if (!readEntryValid(a, ver, nullptr)) {
                *fail_addr = a;
                return false;
            }
        }
    }
    return true;
}

bool
StmThread::extendSnapshot()
{
    // Sample the clock BEFORE validating: validation then proves every
    // read still current at some point at or after the sample, so the
    // snapshot may advance to it.
    const std::uint64_t newRv = rt.clock().now();
    Addr fail = 0;
    if (validateAllReads(&fail)) {
        rv = newRv;
        ++st.snapshotExtensions;
        return true;
    }
    deliverViolation(fail, violationTargetFor(fail));
    return false; // a violation handler chose Continue
}

Word
StmThread::txLoad(Addr a)
{
    if (levels.empty())
        fatal("stm: txLoad outside a transaction");
    Word staged;
    if (findStagedWrite(a, staged))
        return staged;
    for (;;) {
        const auto [v, ver] = consistentRead(a);
        if (ver <= rv) {
            levels.back().reads.emplace_back(a, ver);
            return v;
        }
        // The word was committed after our snapshot: try to extend.
        if (!extendSnapshot()) {
            // Software chose to resume past the violation: it takes
            // responsibility for the stale snapshot (xvret semantics).
            levels.back().reads.emplace_back(a, ver);
            return v;
        }
    }
}

void
StmThread::txStore(Addr a, Word v)
{
    if (levels.empty())
        fatal("stm: txStore outside a transaction");
    levels.back().writeBuf.emplace_back(a, v);
}

int
StmThread::violationTargetFor(Addr a) const
{
    for (std::size_t i = 0; i < levels.size(); ++i) {
        for (const auto& [ra, ver] : levels[i].reads) {
            if (ra == a)
                return static_cast<int>(i) + 1;
        }
    }
    return depth();
}

void
StmThread::deliverViolation(Addr vaddr, int target)
{
    ++st.violations;
    const Level& tf = levels[static_cast<std::size_t>(target) - 1];
    const StmViolationInfo info{vaddr, target};
    // Violation handlers of every level being rolled back, newest
    // first (paper 4.3: reverse order preserves undo semantics).
    for (std::size_t i = vh.size(); i > tf.vhSave; --i) {
        ++st.violationHandlerRuns;
        const Handler& h = vh[i - 1];
        if (h.violationFn(*this, info, h.args) == StmVioAction::Continue)
            return;
    }
    rollbackTo(target);
    throw StmRollback{target, vaddr};
}

void
StmThread::releaseLocks(Level& lv)
{
    // Restore the pre-lock versions (the commit did not happen).
    for (auto it = lv.locks.rbegin(); it != lv.locks.rend(); ++it)
        rt.orecs().at(it->first).store(it->second,
                                       std::memory_order_release);
    lv.locks.clear();
}

void
StmThread::rollbackTo(int target)
{
    const Level& tf = levels[static_cast<std::size_t>(target) - 1];
    const std::size_t chS = tf.chSave;
    const std::size_t vhS = tf.vhSave;
    const std::size_t ahS = tf.ahSave;
    for (std::size_t li = levels.size();
         li >= static_cast<std::size_t>(target); --li) {
        Level& lv = levels[li - 1];
        releaseLocks(lv); // defensive: an interrupted phase-1
        // Undo in-place immediate stores, FILO.
        for (auto it = lv.imstUndo.rbegin(); it != lv.imstUndo.rend();
             ++it) {
            rt.write(it->first, it->second);
        }
    }
    levels.resize(static_cast<std::size_t>(target) - 1);
    ch.resize(chS);
    vh.resize(vhS);
    ah.resize(ahS);
}

void
StmThread::xabort(Word code)
{
    if (levels.empty())
        fatal("stm: xabort outside a transaction");
    const int target = depth();
    const Level& tf = levels[static_cast<std::size_t>(target) - 1];
    ++st.abortsVoluntary;
    // Abort handlers of the innermost level only, newest first.
    for (std::size_t i = ah.size(); i > tf.ahSave; --i) {
        ++st.abortHandlerRuns;
        const Handler& h = ah[i - 1];
        h.commitFn(*this, h.args);
    }
    rollbackTo(target);
    throw StmAbortSignal{target, code};
}

// --- two-phase commit ------------------------------------------------

void
StmThread::xvalidate()
{
    if (levels.empty())
        fatal("stm: xvalidate outside a transaction");
    Level& lv = levels.back();
    const bool outermost = depth() == 1;
    if (!outermost && !lv.open)
        return; // closed-nested commit validates nothing

    // Unique orecs of the committing write set, in sorted order so
    // concurrent committers cannot deadlock.
    std::vector<std::size_t> idxs;
    idxs.reserve(lv.writeBuf.size());
    for (const auto& [a, v] : lv.writeBuf)
        idxs.push_back(rt.orecs().indexOf(a));
    std::sort(idxs.begin(), idxs.end());
    idxs.erase(std::unique(idxs.begin(), idxs.end()), idxs.end());

    for (;;) {
        bool lockedAll = true;
        for (const std::size_t idx : idxs) {
            auto& o = rt.orecs().at(idx);
            int tries = 0;
            bool gotIt = false;
            for (;;) {
                std::uint64_t cur =
                    o.load(std::memory_order_acquire);
                if (!orecLocked(cur)) {
                    if (o.compare_exchange_weak(
                            cur, orecLockedBy(tidVal),
                            std::memory_order_acq_rel,
                            std::memory_order_acquire)) {
                        lv.locks.emplace_back(idx, cur);
                        gotIt = true;
                        break;
                    }
                    continue; // CAS raced, re-examine
                }
                if (tries >= rt.config().spinTries)
                    break; // treat as a conflict
                spinOrHang(tries, "commit lock acquisition");
            }
            if (!gotIt) {
                ++st.lockFailures;
                lockedAll = false;
                break;
            }
        }
        if (!lockedAll) {
            // Conflict during phase 1: give the locks back and deliver
            // a violation against this nest.
            releaseLocks(lv);
            Addr fail = lv.writeBuf.empty() ? 0 : lv.writeBuf[0].first;
            deliverViolation(fail, violationTargetFor(fail));
            checkDeadline("commit lock retry");
            continue; // handler chose Continue: start phase 1 over
        }

        // Commit timestamp AFTER locking (load-bearing: a writer with
        // wv <= a reader's rv must have locked before that rv was
        // sampled — see GlobalClock).
        lv.wv = idxs.empty() ? 0 : rt.clock().advance();

        // Validate the read set: the whole nest for an outermost
        // commit (children merged upward), only this level for an
        // open-nested early commit. Read-only commits skip this —
        // every read was already proven current at the snapshot rv,
        // which is exactly where the commit serializes. wv == rv + 1
        // proves no concurrent commit intervened since the snapshot.
        Addr fail = 0;
        bool ok = true;
        if (!idxs.empty() && lv.wv != rv + 1) {
            const std::size_t from =
                outermost ? 0 : levels.size() - 1;
            for (std::size_t li = from; ok && li < levels.size();
                 ++li) {
                for (const auto& [a, ver] : levels[li].reads) {
                    if (!readEntryValid(a, ver, &lv.locks)) {
                        fail = a;
                        ok = false;
                        break;
                    }
                }
            }
        }
        if (!ok) {
            releaseLocks(lv);
            deliverViolation(fail, violationTargetFor(fail));
            checkDeadline("commit validation retry");
            continue; // handler chose Continue
        }
        lv.validated = true;
        return;
    }
}

void
StmThread::xcommit()
{
    if (levels.empty())
        fatal("stm: xcommit outside a transaction");
    {
        Level& lv = levels.back();
        const bool outermost = depth() == 1;
        if (!outermost && !lv.open) {
            // Closed-nested commit: merge the child's read/write sets
            // (and immediate-store undo) into the parent; handlers stay
            // registered (they now belong to the parent's attempt).
            Level child = std::move(lv);
            levels.pop_back();
            Level& parent = levels.back();
            parent.reads.insert(parent.reads.end(),
                                child.reads.begin(), child.reads.end());
            parent.writeBuf.insert(parent.writeBuf.end(),
                                   child.writeBuf.begin(),
                                   child.writeBuf.end());
            parent.imstUndo.insert(parent.imstUndo.end(),
                                   child.imstUndo.begin(),
                                   child.imstUndo.end());
            return;
        }
        if (!lv.validated)
            xvalidate(); // raw-ISA callers: commit implies validation
    }

    Level& lv = levels.back();
    const bool outermost = depth() == 1;

    // Phase 2: publish the redo log in program order, then release
    // the orecs at the commit timestamp.
    for (const auto& [a, v] : lv.writeBuf)
        rt.cell(a).store(v, std::memory_order_release);
    for (const auto& [idx, prev] : lv.locks)
        rt.orecs().at(idx).store(lv.wv, std::memory_order_release);

    const bool readOnly = lv.writeBuf.empty();
    lastCommitInfo = readOnly
                         ? StmCommitInfo{rv, 1, rt.nextSeq()}
                         : StmCommitInfo{lv.wv, 0, rt.nextSeq()};

    ++st.commits;
    if (readOnly)
        ++st.roCommits;
    if (!outermost)
        ++st.openCommits;
    std::size_t nreads = 0;
    const std::size_t from = outermost ? 0 : levels.size() - 1;
    for (std::size_t li = from; li < levels.size(); ++li)
        nreads += levels[li].reads.size();
    st.readSetSizes.push_back(nreads);
    st.writeSetSizes.push_back(lv.writeBuf.size());

    // The committed level's handlers are consumed: truncate all three
    // stacks to the marks taken at its xbegin.
    ch.resize(lv.chSave);
    vh.resize(lv.vhSave);
    ah.resize(lv.ahSave);
    levels.pop_back();
}

void
StmThread::commitSequence()
{
    if (levels.empty())
        fatal("stm: commit outside a transaction");
    Level& lv = levels.back();
    const bool outermost = depth() == 1;
    if (!outermost && !lv.open) {
        xcommit(); // closed-nested merge; xvalidate is a no-op
        return;
    }
    xvalidate(); // may throw StmRollback via a violation
    // Commit handlers registered by this level run between the two
    // phases, in registration order (paper 4.2).
    const std::size_t fromH = lv.chSave;
    const std::size_t toH = ch.size();
    for (std::size_t i = fromH; i < toH; ++i) {
        ++st.commitHandlerRuns;
        ch[i].commitFn(*this, ch[i].args);
    }
    xcommit();
}

// --- retry drivers ---------------------------------------------------

void
StmThread::defaultBackoff(int retries)
{
    const int cap = retries < 16 ? retries : 16;
    const std::uint64_t spins =
        threadRng.next() & ((std::uint64_t{1} << cap) - 1);
    for (std::uint64_t i = 0; i < spins; ++i) {
        if ((i & 0xFF) == 0xFF)
            std::this_thread::yield();
    }
}

StmTxOutcome
StmThread::runTx(bool open, const StmTxBody& body)
{
    int retries = 0;
    for (;;) {
        if (open)
            xbeginOpen();
        else
            xbegin();
        const int myLevel = depth();
        try {
            body(*this);
            commitSequence();
            return StmTxOutcome{StmTxResult::Committed, 0, retries};
        } catch (const StmRollback& r) {
            // A rollback targeting an outer level belongs to an
            // enclosing driver.
            if (r.targetLevel < myLevel)
                throw;
            ++retries;
            ++st.retries;
        } catch (const StmAbortSignal& a) {
            if (a.targetLevel < myLevel)
                throw;
            return StmTxOutcome{StmTxResult::Aborted, a.code, retries};
        }
        if (rt.config().onRetry)
            rt.config().onRetry(tidVal, retries);
        else
            defaultBackoff(retries);
        checkDeadline("transaction retry");
    }
}

StmTxOutcome
StmThread::atomic(const StmTxBody& body)
{
    return runTx(false, body);
}

StmTxOutcome
StmThread::atomicOpen(const StmTxBody& body)
{
    return runTx(true, body);
}

// --- handler registration --------------------------------------------

void
StmThread::onCommit(StmCommitFn fn, std::vector<Word> args)
{
    if (levels.empty())
        fatal("stm: onCommit outside a transaction");
    Handler h;
    h.commitFn = std::move(fn);
    h.args = std::move(args);
    ch.push_back(std::move(h));
}

void
StmThread::onViolation(StmViolationFn fn, std::vector<Word> args)
{
    if (levels.empty())
        fatal("stm: onViolation outside a transaction");
    Handler h;
    h.violationFn = std::move(fn);
    h.args = std::move(args);
    vh.push_back(std::move(h));
}

void
StmThread::onAbort(StmAbortFn fn, std::vector<Word> args)
{
    if (levels.empty())
        fatal("stm: onAbort outside a transaction");
    Handler h;
    h.commitFn = std::move(fn);
    h.args = std::move(args);
    ah.push_back(std::move(h));
}

// --- immediate and non-transactional operations ----------------------

Word
StmThread::imld(Addr a)
{
    return rt.cell(a).load(std::memory_order_acquire);
}

void
StmThread::imst(Addr a, Word v)
{
    auto& c = rt.cell(a);
    if (!levels.empty()) {
        // Undo kept: a rollback of the registering level restores the
        // pre-store value (mirrors the simulator's undo records).
        levels.back().imstUndo.emplace_back(
            a, c.load(std::memory_order_acquire));
    }
    c.store(v, std::memory_order_release);
}

void
StmThread::imstid(Addr a, Word v)
{
    rt.cell(a).store(v, std::memory_order_release);
}

void
StmThread::release(Addr a)
{
    ++st.releases;
    for (Level& lv : levels) {
        lv.reads.erase(
            std::remove_if(lv.reads.begin(), lv.reads.end(),
                           [a](const auto& e) { return e.first == a; }),
            lv.reads.end());
    }
}

std::pair<Word, StmCommitInfo>
StmThread::nakedLoad(Addr a)
{
    const auto [v, ver] = consistentRead(a);
    ++st.nakedLoads;
    return {v, StmCommitInfo{ver, 1, rt.nextSeq()}};
}

StmCommitInfo
StmThread::nakedStore(Addr a, Word v)
{
    auto& o = rt.orecs().of(a);
    int tries = 0;
    for (;;) {
        std::uint64_t cur = o.load(std::memory_order_acquire);
        if (!orecLocked(cur) &&
            o.compare_exchange_weak(cur, orecLockedBy(tidVal),
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
            break;
        }
        spinOrHang(tries, "naked store lock");
    }
    const std::uint64_t wv = rt.clock().advance();
    rt.cell(a).store(v, std::memory_order_release);
    o.store(wv, std::memory_order_release);
    ++st.nakedStores;
    return StmCommitInfo{wv, 0, rt.nextSeq()};
}

} // namespace tmsim
