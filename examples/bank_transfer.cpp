/**
 * @file
 * Bank-transfer example: closed-nested transactions, voluntary aborts
 * with abort handlers, and the conservation invariant under heavy
 * contention.
 *
 * Each teller moves money between random accounts inside a
 * transaction. Audits run concurrently as read-only transactions and
 * must always observe a consistent total. Transfers from overdrawn
 * accounts abort voluntarily; an abort handler counts the rejections.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/machine.hh"
#include "runtime/tx_thread.hh"
#include "sim/rng.hh"

using namespace tmsim;

namespace {

constexpr int numAccounts = 32;
constexpr int numTellers = 6;
constexpr int transfersPerTeller = 40;
constexpr Word initialBalance = 1000;

} // namespace

int
main()
{
    MachineConfig cfg;
    cfg.numCpus = numTellers + 1; // tellers + one auditor
    cfg.htm = HtmConfig::paperLazy();
    Machine m(cfg);

    Addr accounts = m.memory().allocate(numAccounts * 64, 64);
    auto accountAddr = [&](int i) {
        return accounts + static_cast<Addr>(i) * 64;
    };
    for (int i = 0; i < numAccounts; ++i)
        m.memory().write(accountAddr(i), initialBalance);

    std::vector<std::unique_ptr<TxThread>> threads;
    for (int i = 0; i < m.numCpus(); ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));

    int rejected = 0;
    int audits = 0;
    bool auditFailed = false;
    int tellersDone = 0;

    // Tellers.
    for (int i = 0; i < numTellers; ++i) {
        m.spawn(i, [&, i](Cpu&) -> SimTask {
            TxThread& t = *threads[static_cast<size_t>(i)];
            Rng rng(static_cast<std::uint64_t>(i) + 42);
            for (int k = 0; k < transfersPerTeller; ++k) {
                int from = static_cast<int>(rng.below(numAccounts));
                int to = static_cast<int>(rng.below(numAccounts));
                Word amount = rng.range(1, 5000); // sometimes too much
                TxOutcome out = co_await t.atomic(
                    [&](TxThread& tx) -> SimTask {
                        co_await tx.onAbort(
                            [&](TxThread&,
                                const std::vector<Word>&) -> SimTask {
                                ++rejected;
                                co_return;
                            });
                        Word b = co_await tx.ld(accountAddr(from));
                        if (b < amount) {
                            // Insufficient funds: voluntary abort runs
                            // the abort handler and undoes everything.
                            co_await tx.cpu().xabort(1);
                        }
                        co_await tx.st(accountAddr(from), b - amount);
                        Word c = co_await tx.ld(accountAddr(to));
                        co_await tx.st(accountAddr(to), c + amount);
                    });
                (void)out;
            }
            ++tellersDone;
        });
    }

    // Auditor: read-only transactions observe a consistent snapshot.
    m.spawn(numTellers, [&](Cpu& c) -> SimTask {
        TxThread& t = *threads[numTellers];
        while (tellersDone < numTellers) {
            Word total = 0;
            co_await t.atomic([&](TxThread& tx) -> SimTask {
                total = 0; // reset on retry
                for (int i = 0; i < numAccounts; ++i)
                    total += co_await tx.ld(accountAddr(i));
            });
            ++audits;
            if (total != numAccounts * initialBalance)
                auditFailed = true;
            co_await c.exec(500);
        }
    });

    m.run();

    Word total = 0;
    for (int i = 0; i < numAccounts; ++i)
        total += m.memory().read(accountAddr(i));

    std::printf("final total    = %llu (expected %llu)\n",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(numAccounts *
                                                initialBalance));
    std::printf("transfers      = %d, rejected (aborted) = %d\n",
                numTellers * transfersPerTeller, rejected);
    std::printf("audits         = %d, consistent = %s\n", audits,
                auditFailed ? "NO" : "yes");
    std::printf("rollbacks      = %llu\n",
                static_cast<unsigned long long>(
                    m.stats().sum("cpu*.htm.rollbacks")));
    return (total == numAccounts * initialBalance && !auditFailed) ? 0 : 1;
}
