/**
 * @file
 * Quickstart: build a simulated 4-core machine, run transactional
 * threads that increment a shared counter, and inspect the stats.
 *
 *   $ ./build/examples/quickstart
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/machine.hh"
#include "runtime/tx_thread.hh"

using namespace tmsim;

int
main()
{
    // 1. Configure the machine: 4 CPUs, the paper's lazy write-buffer
    //    HTM with full nesting support.
    MachineConfig cfg;
    cfg.numCpus = 4;
    cfg.htm = HtmConfig::paperLazy();
    Machine m(cfg);

    // 2. Allocate shared simulated memory (host-side, untimed).
    Addr counter = m.memory().allocate(64);

    // 3. One TxThread per CPU provides the software conventions:
    //    TCB management, handler stacks, atomic() retry.
    std::vector<std::unique_ptr<TxThread>> threads;
    for (int i = 0; i < m.numCpus(); ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));

    // 4. Spawn one coroutine per CPU. Each runs 100 transactions that
    //    read-modify-write the shared counter; conflicts are detected
    //    by the HTM and the runtime retries automatically.
    for (int i = 0; i < m.numCpus(); ++i) {
        m.spawn(i, [&, i](Cpu&) -> SimTask {
            TxThread& t = *threads[static_cast<size_t>(i)];
            for (int k = 0; k < 100; ++k) {
                TxOutcome out =
                    co_await t.atomic([&](TxThread& tx) -> SimTask {
                        Word v = co_await tx.ld(counter);
                        co_await tx.work(20); // some computation
                        co_await tx.st(counter, v + 1);
                    });
                if (!out.committed())
                    std::printf("unexpected abort!\n");
            }
        });
    }

    // 5. Run to completion and inspect the results.
    Tick cycles = m.run();
    std::printf("counter        = %llu (expected 400)\n",
                static_cast<unsigned long long>(m.memory().read(counter)));
    std::printf("cycles         = %llu\n",
                static_cast<unsigned long long>(cycles));
    std::printf("commits        = %llu\n",
                static_cast<unsigned long long>(
                    m.stats().sum("cpu*.htm.commits")));
    std::printf("rollbacks      = %llu\n",
                static_cast<unsigned long long>(
                    m.stats().sum("cpu*.htm.rollbacks")));
    std::printf("lazy conflicts = %llu\n",
                static_cast<unsigned long long>(
                    m.stats().value("htm.lazy_violations")));
    return m.memory().read(counter) == 400 ? 0 : 1;
}
