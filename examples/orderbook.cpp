/**
 * @file
 * Order-book example: open nesting for hot counters, closed nesting
 * for composable library calls (the B-tree), and the compensation
 * pattern — the paper's SPECjbb recipe applied to a small exchange.
 *
 * Traders place orders concurrently: each order takes a ticket from a
 * global sequencer (open-nested: no serialisation through the outer
 * transaction) and inserts into a shared B-tree book (closed-nested:
 * an index conflict retries only the index operation).
 */

#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "core/machine.hh"
#include "runtime/tx_thread.hh"
#include "sim/rng.hh"
#include "workloads/btree.hh"

using namespace tmsim;

int
main()
{
    constexpr int traders = 6;
    constexpr int ordersPerTrader = 20;

    MachineConfig cfg;
    cfg.numCpus = traders;
    cfg.htm = HtmConfig::paperLazy();
    Machine m(cfg);

    SimBTree book = SimBTree::create(m.memory(), 2048);
    Addr ticketCounter = m.memory().allocate(64);
    m.memory().write(ticketCounter, 1);

    std::vector<std::unique_ptr<TxThread>> threads;
    for (int i = 0; i < traders; ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));

    for (int i = 0; i < traders; ++i) {
        m.spawn(i, [&, i](Cpu&) -> SimTask {
            TxThread& t = *threads[static_cast<size_t>(i)];
            Rng rng(static_cast<std::uint64_t>(i) * 31 + 7);
            for (int k = 0; k < ordersPerTrader; ++k) {
                Word price = 100 + rng.below(50);
                co_await t.atomic([&](TxThread& tx) -> SimTask {
                    // Pricing/validation logic.
                    co_await tx.work(200);

                    // Ticket from the global sequencer: open-nested,
                    // commits immediately; tickets are unique but may
                    // have gaps if this order later rolls back (the
                    // paper's order-ID argument: unique, not dense).
                    Word ticket = 0;
                    co_await tx.atomicOpen(
                        [&](TxThread& ti) -> SimTask {
                            ticket = co_await ti.ld(ticketCounter);
                            co_await ti.st(ticketCounter, ticket + 1);
                        });

                    // Book insert: a composable library call wrapped
                    // closed-nested — an index collision replays only
                    // the insert, not the pricing work above.
                    co_await tx.atomic([&](TxThread& ti) -> SimTask {
                        co_await book.insert(
                            ti, ticket,
                            (price << 8) | static_cast<Word>(i));
                    });
                });
            }
        });
    }

    Tick cycles = m.run();

    auto items = book.items(m.memory());
    std::set<Word> tickets;
    for (const auto& [k, v] : items) {
        (void)v;
        tickets.insert(k);
    }
    const bool ok = book.validateStructure(m.memory()) &&
                    items.size() == traders * ordersPerTrader &&
                    tickets.size() == items.size();

    std::printf("orders booked    = %zu (expected %d)\n", items.size(),
                traders * ordersPerTrader);
    std::printf("tickets unique   = %s, structure valid = %s\n",
                tickets.size() == items.size() ? "yes" : "NO",
                book.validateStructure(m.memory()) ? "yes" : "NO");
    std::printf("tickets consumed = %llu (gaps = rolled-back orders)\n",
                static_cast<unsigned long long>(
                    m.memory().read(ticketCounter) - 1));
    std::printf("cycles           = %llu, rollbacks = %llu\n",
                static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(
                    m.stats().sum("cpu*.htm.rollbacks")));
    return ok ? 0 : 1;
}
