/**
 * @file
 * Transactional I/O example: buffered output through commit handlers
 * and compensated input through violation handlers (paper section 5).
 *
 * Worker threads process records from a shared input "file" inside
 * transactions and log results to a shared output device. A rolled-
 * back transaction automatically rewinds its input reads and discards
 * its buffered output — no torn or duplicated I/O is ever visible.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/machine.hh"
#include "runtime/tx_io.hh"
#include "runtime/tx_thread.hh"

using namespace tmsim;

int
main()
{
    constexpr int workers = 4;
    constexpr int records = 32;

    MachineConfig cfg;
    cfg.numCpus = workers;
    cfg.htm = HtmConfig::paperLazy();
    Machine m(cfg);

    // Input: a shared sequential file of work items.
    std::vector<Word> input;
    for (int i = 0; i < records; ++i)
        input.push_back(static_cast<Word>(i + 1) * 10);
    TxInFile inFile = TxInFile::create(m.memory(), input);

    // Output: a shared append-only log device.
    TxLogDevice log = TxLogDevice::create(m.memory(), 4096);
    TxIo io(log);

    std::vector<std::unique_ptr<TxThread>> threads;
    for (int i = 0; i < workers; ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));

    for (int i = 0; i < workers; ++i) {
        m.spawn(i, [&, i](Cpu&) -> SimTask {
            TxThread& t = *threads[static_cast<size_t>(i)];
            for (int k = 0; k < records / workers; ++k) {
                co_await t.atomic([&](TxThread& tx) -> SimTask {
                    // "read() syscall": executes immediately inside an
                    // open-nested transaction; a violation handler
                    // rewinds the file position if we roll back.
                    Word item = co_await inFile.txRead(tx);

                    co_await tx.work(300); // process the item

                    // "write() syscall": staged privately now, the
                    // actual append runs as a commit handler after the
                    // transaction validates.
                    std::vector<Word> rec;
                    rec.push_back(static_cast<Word>(i + 1)); // worker
                    rec.push_back(item);
                    rec.push_back(item * item); // result
                    co_await io.txWrite(tx, std::move(rec));
                });
            }
        });
    }

    m.run();

    auto out = log.contents(m.memory());
    // Every input record must appear squared exactly once.
    std::vector<bool> seen(records + 1, false);
    bool ok = out.size() == static_cast<size_t>(records) * 3;
    for (size_t off = 0; ok && off < out.size(); off += 3) {
        Word worker = out[off];
        Word item = out[off + 1];
        Word sq = out[off + 2];
        int idx = static_cast<int>(item / 10);
        if (worker < 1 || worker > workers || idx < 1 || idx > records ||
            seen[static_cast<size_t>(idx)] || sq != item * item) {
            ok = false;
        } else {
            seen[static_cast<size_t>(idx)] = true;
        }
    }

    std::printf("input consumed  = %llu records (expected %d)\n",
                static_cast<unsigned long long>(
                    inFile.position(m.memory())),
                records);
    std::printf("log records     = %zu (each atomic, none torn)\n",
                out.size() / 3);
    std::printf("compensations   = %llu input rewinds\n",
                static_cast<unsigned long long>(inFile.compensations()));
    std::printf("result          = %s\n", ok ? "consistent" : "BROKEN");
    return ok ? 0 : 1;
}
