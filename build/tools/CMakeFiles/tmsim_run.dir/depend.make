# Empty dependencies file for tmsim_run.
# This may be replaced when dependencies are built.
