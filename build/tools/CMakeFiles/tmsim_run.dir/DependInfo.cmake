
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/tmsim_run.cc" "tools/CMakeFiles/tmsim_run.dir/tmsim_run.cc.o" "gcc" "tools/CMakeFiles/tmsim_run.dir/tmsim_run.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmsim_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmsim_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
