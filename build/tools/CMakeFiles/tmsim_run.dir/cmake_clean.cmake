file(REMOVE_RECURSE
  "CMakeFiles/tmsim_run.dir/tmsim_run.cc.o"
  "CMakeFiles/tmsim_run.dir/tmsim_run.cc.o.d"
  "tmsim_run"
  "tmsim_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmsim_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
