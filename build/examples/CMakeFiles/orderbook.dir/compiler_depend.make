# Empty compiler generated dependencies file for orderbook.
# This may be replaced when dependencies are built.
