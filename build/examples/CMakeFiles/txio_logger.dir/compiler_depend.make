# Empty compiler generated dependencies file for txio_logger.
# This may be replaced when dependencies are built.
