file(REMOVE_RECURSE
  "CMakeFiles/txio_logger.dir/txio_logger.cpp.o"
  "CMakeFiles/txio_logger.dir/txio_logger.cpp.o.d"
  "txio_logger"
  "txio_logger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txio_logger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
