file(REMOVE_RECURSE
  "CMakeFiles/test_htm_conflict.dir/test_htm_conflict.cc.o"
  "CMakeFiles/test_htm_conflict.dir/test_htm_conflict.cc.o.d"
  "test_htm_conflict"
  "test_htm_conflict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_htm_conflict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
