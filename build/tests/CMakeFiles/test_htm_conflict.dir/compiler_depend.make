# Empty compiler generated dependencies file for test_htm_conflict.
# This may be replaced when dependencies are built.
