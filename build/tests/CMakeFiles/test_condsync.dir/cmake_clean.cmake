file(REMOVE_RECURSE
  "CMakeFiles/test_condsync.dir/test_condsync.cc.o"
  "CMakeFiles/test_condsync.dir/test_condsync.cc.o.d"
  "test_condsync"
  "test_condsync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_condsync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
