# Empty compiler generated dependencies file for test_condsync.
# This may be replaced when dependencies are built.
