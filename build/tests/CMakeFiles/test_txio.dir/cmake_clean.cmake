file(REMOVE_RECURSE
  "CMakeFiles/test_txio.dir/test_txio.cc.o"
  "CMakeFiles/test_txio.dir/test_txio.cc.o.d"
  "test_txio"
  "test_txio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_txio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
