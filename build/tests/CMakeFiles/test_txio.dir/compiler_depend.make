# Empty compiler generated dependencies file for test_txio.
# This may be replaced when dependencies are built.
