# Empty dependencies file for test_htm_context.
# This may be replaced when dependencies are built.
