file(REMOVE_RECURSE
  "CMakeFiles/test_htm_context.dir/test_htm_context.cc.o"
  "CMakeFiles/test_htm_context.dir/test_htm_context.cc.o.d"
  "test_htm_context"
  "test_htm_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_htm_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
