file(REMOVE_RECURSE
  "CMakeFiles/test_htm_single.dir/test_htm_single.cc.o"
  "CMakeFiles/test_htm_single.dir/test_htm_single.cc.o.d"
  "test_htm_single"
  "test_htm_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_htm_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
