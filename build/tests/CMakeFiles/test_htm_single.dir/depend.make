# Empty dependencies file for test_htm_single.
# This may be replaced when dependencies are built.
