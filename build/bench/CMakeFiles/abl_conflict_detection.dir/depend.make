# Empty dependencies file for abl_conflict_detection.
# This may be replaced when dependencies are built.
