file(REMOVE_RECURSE
  "CMakeFiles/abl_conflict_detection.dir/abl_conflict_detection.cc.o"
  "CMakeFiles/abl_conflict_detection.dir/abl_conflict_detection.cc.o.d"
  "abl_conflict_detection"
  "abl_conflict_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_conflict_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
