file(REMOVE_RECURSE
  "CMakeFiles/abl_immediate_ops.dir/abl_immediate_ops.cc.o"
  "CMakeFiles/abl_immediate_ops.dir/abl_immediate_ops.cc.o.d"
  "abl_immediate_ops"
  "abl_immediate_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_immediate_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
