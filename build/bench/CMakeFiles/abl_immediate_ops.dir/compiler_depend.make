# Empty compiler generated dependencies file for abl_immediate_ops.
# This may be replaced when dependencies are built.
