# Empty compiler generated dependencies file for tbl_overheads.
# This may be replaced when dependencies are built.
