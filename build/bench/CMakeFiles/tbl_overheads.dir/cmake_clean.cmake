file(REMOVE_RECURSE
  "CMakeFiles/tbl_overheads.dir/tbl_overheads.cc.o"
  "CMakeFiles/tbl_overheads.dir/tbl_overheads.cc.o.d"
  "tbl_overheads"
  "tbl_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
