file(REMOVE_RECURSE
  "CMakeFiles/micro_sim_ops.dir/micro_sim_ops.cc.o"
  "CMakeFiles/micro_sim_ops.dir/micro_sim_ops.cc.o.d"
  "micro_sim_ops"
  "micro_sim_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sim_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
