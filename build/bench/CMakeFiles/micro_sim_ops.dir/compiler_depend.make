# Empty compiler generated dependencies file for micro_sim_ops.
# This may be replaced when dependencies are built.
