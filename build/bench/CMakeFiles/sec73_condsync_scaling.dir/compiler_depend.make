# Empty compiler generated dependencies file for sec73_condsync_scaling.
# This may be replaced when dependencies are built.
