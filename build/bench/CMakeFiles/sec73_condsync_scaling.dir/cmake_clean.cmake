file(REMOVE_RECURSE
  "CMakeFiles/sec73_condsync_scaling.dir/sec73_condsync_scaling.cc.o"
  "CMakeFiles/sec73_condsync_scaling.dir/sec73_condsync_scaling.cc.o.d"
  "sec73_condsync_scaling"
  "sec73_condsync_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec73_condsync_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
