# Empty dependencies file for abl_nesting_scheme.
# This may be replaced when dependencies are built.
