file(REMOVE_RECURSE
  "CMakeFiles/abl_nesting_scheme.dir/abl_nesting_scheme.cc.o"
  "CMakeFiles/abl_nesting_scheme.dir/abl_nesting_scheme.cc.o.d"
  "abl_nesting_scheme"
  "abl_nesting_scheme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_nesting_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
