# Empty dependencies file for sec72_io_scaling.
# This may be replaced when dependencies are built.
