file(REMOVE_RECURSE
  "CMakeFiles/sec72_io_scaling.dir/sec72_io_scaling.cc.o"
  "CMakeFiles/sec72_io_scaling.dir/sec72_io_scaling.cc.o.d"
  "sec72_io_scaling"
  "sec72_io_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec72_io_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
