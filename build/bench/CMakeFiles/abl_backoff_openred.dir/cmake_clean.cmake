file(REMOVE_RECURSE
  "CMakeFiles/abl_backoff_openred.dir/abl_backoff_openred.cc.o"
  "CMakeFiles/abl_backoff_openred.dir/abl_backoff_openred.cc.o.d"
  "abl_backoff_openred"
  "abl_backoff_openred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_backoff_openred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
