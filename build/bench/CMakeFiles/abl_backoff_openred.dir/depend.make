# Empty dependencies file for abl_backoff_openred.
# This may be replaced when dependencies are built.
