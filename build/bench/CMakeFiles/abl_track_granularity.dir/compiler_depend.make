# Empty compiler generated dependencies file for abl_track_granularity.
# This may be replaced when dependencies are built.
