file(REMOVE_RECURSE
  "CMakeFiles/abl_track_granularity.dir/abl_track_granularity.cc.o"
  "CMakeFiles/abl_track_granularity.dir/abl_track_granularity.cc.o.d"
  "abl_track_granularity"
  "abl_track_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_track_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
