file(REMOVE_RECURSE
  "CMakeFiles/fig5_nesting.dir/fig5_nesting.cc.o"
  "CMakeFiles/fig5_nesting.dir/fig5_nesting.cc.o.d"
  "fig5_nesting"
  "fig5_nesting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_nesting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
