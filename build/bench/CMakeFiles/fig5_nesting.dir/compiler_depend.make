# Empty compiler generated dependencies file for fig5_nesting.
# This may be replaced when dependencies are built.
