file(REMOVE_RECURSE
  "CMakeFiles/tmsim_core.dir/core/cpu.cc.o"
  "CMakeFiles/tmsim_core.dir/core/cpu.cc.o.d"
  "CMakeFiles/tmsim_core.dir/core/machine.cc.o"
  "CMakeFiles/tmsim_core.dir/core/machine.cc.o.d"
  "CMakeFiles/tmsim_core.dir/core/mem_system.cc.o"
  "CMakeFiles/tmsim_core.dir/core/mem_system.cc.o.d"
  "libtmsim_core.a"
  "libtmsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
