file(REMOVE_RECURSE
  "CMakeFiles/tmsim_runtime.dir/runtime/cond_sched.cc.o"
  "CMakeFiles/tmsim_runtime.dir/runtime/cond_sched.cc.o.d"
  "CMakeFiles/tmsim_runtime.dir/runtime/thread_area.cc.o"
  "CMakeFiles/tmsim_runtime.dir/runtime/thread_area.cc.o.d"
  "CMakeFiles/tmsim_runtime.dir/runtime/tx_alloc.cc.o"
  "CMakeFiles/tmsim_runtime.dir/runtime/tx_alloc.cc.o.d"
  "CMakeFiles/tmsim_runtime.dir/runtime/tx_io.cc.o"
  "CMakeFiles/tmsim_runtime.dir/runtime/tx_io.cc.o.d"
  "CMakeFiles/tmsim_runtime.dir/runtime/tx_thread.cc.o"
  "CMakeFiles/tmsim_runtime.dir/runtime/tx_thread.cc.o.d"
  "libtmsim_runtime.a"
  "libtmsim_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmsim_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
