file(REMOVE_RECURSE
  "libtmsim_runtime.a"
)
