
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/cond_sched.cc" "src/CMakeFiles/tmsim_runtime.dir/runtime/cond_sched.cc.o" "gcc" "src/CMakeFiles/tmsim_runtime.dir/runtime/cond_sched.cc.o.d"
  "/root/repo/src/runtime/thread_area.cc" "src/CMakeFiles/tmsim_runtime.dir/runtime/thread_area.cc.o" "gcc" "src/CMakeFiles/tmsim_runtime.dir/runtime/thread_area.cc.o.d"
  "/root/repo/src/runtime/tx_alloc.cc" "src/CMakeFiles/tmsim_runtime.dir/runtime/tx_alloc.cc.o" "gcc" "src/CMakeFiles/tmsim_runtime.dir/runtime/tx_alloc.cc.o.d"
  "/root/repo/src/runtime/tx_io.cc" "src/CMakeFiles/tmsim_runtime.dir/runtime/tx_io.cc.o" "gcc" "src/CMakeFiles/tmsim_runtime.dir/runtime/tx_io.cc.o.d"
  "/root/repo/src/runtime/tx_thread.cc" "src/CMakeFiles/tmsim_runtime.dir/runtime/tx_thread.cc.o" "gcc" "src/CMakeFiles/tmsim_runtime.dir/runtime/tx_thread.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmsim_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
