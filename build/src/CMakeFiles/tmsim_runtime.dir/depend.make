# Empty dependencies file for tmsim_runtime.
# This may be replaced when dependencies are built.
