file(REMOVE_RECURSE
  "libtmsim_sim.a"
)
