file(REMOVE_RECURSE
  "CMakeFiles/tmsim_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/tmsim_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/tmsim_sim.dir/sim/logging.cc.o"
  "CMakeFiles/tmsim_sim.dir/sim/logging.cc.o.d"
  "CMakeFiles/tmsim_sim.dir/sim/stats.cc.o"
  "CMakeFiles/tmsim_sim.dir/sim/stats.cc.o.d"
  "libtmsim_sim.a"
  "libtmsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
