# Empty dependencies file for tmsim_sim.
# This may be replaced when dependencies are built.
