
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/htm/conflict_detector.cc" "src/CMakeFiles/tmsim_htm.dir/htm/conflict_detector.cc.o" "gcc" "src/CMakeFiles/tmsim_htm.dir/htm/conflict_detector.cc.o.d"
  "/root/repo/src/htm/htm_config.cc" "src/CMakeFiles/tmsim_htm.dir/htm/htm_config.cc.o" "gcc" "src/CMakeFiles/tmsim_htm.dir/htm/htm_config.cc.o.d"
  "/root/repo/src/htm/htm_context.cc" "src/CMakeFiles/tmsim_htm.dir/htm/htm_context.cc.o" "gcc" "src/CMakeFiles/tmsim_htm.dir/htm/htm_context.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
