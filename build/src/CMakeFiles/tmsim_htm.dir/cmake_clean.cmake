file(REMOVE_RECURSE
  "CMakeFiles/tmsim_htm.dir/htm/conflict_detector.cc.o"
  "CMakeFiles/tmsim_htm.dir/htm/conflict_detector.cc.o.d"
  "CMakeFiles/tmsim_htm.dir/htm/htm_config.cc.o"
  "CMakeFiles/tmsim_htm.dir/htm/htm_config.cc.o.d"
  "CMakeFiles/tmsim_htm.dir/htm/htm_context.cc.o"
  "CMakeFiles/tmsim_htm.dir/htm/htm_context.cc.o.d"
  "libtmsim_htm.a"
  "libtmsim_htm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmsim_htm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
