# Empty compiler generated dependencies file for tmsim_htm.
# This may be replaced when dependencies are built.
