file(REMOVE_RECURSE
  "libtmsim_htm.a"
)
