file(REMOVE_RECURSE
  "CMakeFiles/tmsim_workloads.dir/workloads/btree.cc.o"
  "CMakeFiles/tmsim_workloads.dir/workloads/btree.cc.o.d"
  "CMakeFiles/tmsim_workloads.dir/workloads/harness.cc.o"
  "CMakeFiles/tmsim_workloads.dir/workloads/harness.cc.o.d"
  "CMakeFiles/tmsim_workloads.dir/workloads/kernel_condsync.cc.o"
  "CMakeFiles/tmsim_workloads.dir/workloads/kernel_condsync.cc.o.d"
  "CMakeFiles/tmsim_workloads.dir/workloads/kernel_iobench.cc.o"
  "CMakeFiles/tmsim_workloads.dir/workloads/kernel_iobench.cc.o.d"
  "CMakeFiles/tmsim_workloads.dir/workloads/kernel_mp3d.cc.o"
  "CMakeFiles/tmsim_workloads.dir/workloads/kernel_mp3d.cc.o.d"
  "CMakeFiles/tmsim_workloads.dir/workloads/kernel_specjbb.cc.o"
  "CMakeFiles/tmsim_workloads.dir/workloads/kernel_specjbb.cc.o.d"
  "CMakeFiles/tmsim_workloads.dir/workloads/kernels_scientific.cc.o"
  "CMakeFiles/tmsim_workloads.dir/workloads/kernels_scientific.cc.o.d"
  "libtmsim_workloads.a"
  "libtmsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
