file(REMOVE_RECURSE
  "libtmsim_workloads.a"
)
