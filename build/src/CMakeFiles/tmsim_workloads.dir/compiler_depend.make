# Empty compiler generated dependencies file for tmsim_workloads.
# This may be replaced when dependencies are built.
