
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/btree.cc" "src/CMakeFiles/tmsim_workloads.dir/workloads/btree.cc.o" "gcc" "src/CMakeFiles/tmsim_workloads.dir/workloads/btree.cc.o.d"
  "/root/repo/src/workloads/harness.cc" "src/CMakeFiles/tmsim_workloads.dir/workloads/harness.cc.o" "gcc" "src/CMakeFiles/tmsim_workloads.dir/workloads/harness.cc.o.d"
  "/root/repo/src/workloads/kernel_condsync.cc" "src/CMakeFiles/tmsim_workloads.dir/workloads/kernel_condsync.cc.o" "gcc" "src/CMakeFiles/tmsim_workloads.dir/workloads/kernel_condsync.cc.o.d"
  "/root/repo/src/workloads/kernel_iobench.cc" "src/CMakeFiles/tmsim_workloads.dir/workloads/kernel_iobench.cc.o" "gcc" "src/CMakeFiles/tmsim_workloads.dir/workloads/kernel_iobench.cc.o.d"
  "/root/repo/src/workloads/kernel_mp3d.cc" "src/CMakeFiles/tmsim_workloads.dir/workloads/kernel_mp3d.cc.o" "gcc" "src/CMakeFiles/tmsim_workloads.dir/workloads/kernel_mp3d.cc.o.d"
  "/root/repo/src/workloads/kernel_specjbb.cc" "src/CMakeFiles/tmsim_workloads.dir/workloads/kernel_specjbb.cc.o" "gcc" "src/CMakeFiles/tmsim_workloads.dir/workloads/kernel_specjbb.cc.o.d"
  "/root/repo/src/workloads/kernels_scientific.cc" "src/CMakeFiles/tmsim_workloads.dir/workloads/kernels_scientific.cc.o" "gcc" "src/CMakeFiles/tmsim_workloads.dir/workloads/kernels_scientific.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmsim_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmsim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmsim_htm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmsim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
