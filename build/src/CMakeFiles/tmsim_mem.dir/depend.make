# Empty dependencies file for tmsim_mem.
# This may be replaced when dependencies are built.
