file(REMOVE_RECURSE
  "CMakeFiles/tmsim_mem.dir/mem/backing_store.cc.o"
  "CMakeFiles/tmsim_mem.dir/mem/backing_store.cc.o.d"
  "CMakeFiles/tmsim_mem.dir/mem/bus.cc.o"
  "CMakeFiles/tmsim_mem.dir/mem/bus.cc.o.d"
  "CMakeFiles/tmsim_mem.dir/mem/cache.cc.o"
  "CMakeFiles/tmsim_mem.dir/mem/cache.cc.o.d"
  "CMakeFiles/tmsim_mem.dir/mem/cache_geometry.cc.o"
  "CMakeFiles/tmsim_mem.dir/mem/cache_geometry.cc.o.d"
  "libtmsim_mem.a"
  "libtmsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
