file(REMOVE_RECURSE
  "libtmsim_mem.a"
)
