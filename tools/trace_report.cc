/**
 * @file
 * trace_report — offline analyzer for tmsim Chrome trace-event JSON
 * (the --trace output of tmsim_run).
 *
 *   trace_report run.trace.json
 *   trace_report run.trace.json --top 20
 *   trace_report run.trace.json --check     (self-validate, exit 1 on
 *                                            any inconsistency)
 *
 * Reports:
 *  - top conflicting addresses (violation_raised counts per address);
 *  - a conflict heatmap: for the top contended addresses, violations
 *    broken down by attacker CPU, plus the outermost rolled-back
 *    cycles attributed to each address (a rollback's wasted cycles
 *    are charged to the address of the last violation the victim CPU
 *    saw before the slice ended);
 *  - outermost transaction duration percentiles (p50/p90/p99, exact —
 *    computed from the raw slice durations, so they cross-check the
 *    simulator's bounded-error HDR `::p99` keys);
 *  - per-CPU cycle attribution: useful (committed outermost tx work),
 *    wasted (rolled-back outermost tx work), commit (post-validation
 *    commit phase of committed transactions), backoff (retry backoff
 *    spans), other (everything else: non-transactional execution,
 *    memory stalls outside transactions). The five categories sum to
 *    the simulated cycle count on every CPU by construction;
 *  - abort-chain lengths: how many consecutive outermost rollbacks a
 *    transaction suffered before finally committing.
 *
 * The exporter emits one trace event per line, so this tool parses
 * line-by-line with string searches instead of a full JSON parser.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "sim/parse.hh"

namespace {

using tmsim::parseInt;

using u64 = std::uint64_t;
using i64 = std::int64_t;

/** Extract the number following `"key": ` on @p line (-1 if absent). */
i64
findNum(const std::string& line, const char* key)
{
    std::string pat = std::string("\"") + key + "\": ";
    size_t p = line.find(pat);
    if (p == std::string::npos)
        return -1;
    return std::strtoll(line.c_str() + p + pat.size(), nullptr, 10);
}

/** Extract the string following `"key": "` on @p line ("" if absent). */
std::string
findStr(const std::string& line, const char* key)
{
    std::string pat = std::string("\"") + key + "\": \"";
    size_t p = line.find(pat);
    if (p == std::string::npos)
        return "";
    size_t start = p + pat.size();
    size_t end = line.find('"', start);
    if (end == std::string::npos)
        return "";
    return line.substr(start, end - start);
}

struct CpuState
{
    std::vector<u64> sliceBegin; // B timestamps, one per open level
    u64 lastValidated = 0;
    bool validSeen = false; // a depth-1 validated instant in this slice
    u64 useful = 0;
    u64 wasted = 0;
    u64 commit = 0;
    u64 backoff = 0;
    int chain = 0; // consecutive outermost rollbacks so far
    std::string lastVioAddr; // most recent violation on this CPU
};

/** Exact q-quantile of an (unsorted) sample vector: the
 *  ceil(q*n)-th smallest, matching Distribution::quantile's rank. */
u64
exactQuantile(std::vector<u64>& v, double q)
{
    if (v.empty())
        return 0;
    std::sort(v.begin(), v.end());
    size_t rank = static_cast<size_t>(
        std::max(1.0, std::ceil(q * static_cast<double>(v.size()))));
    if (rank > v.size())
        rank = v.size();
    return v[rank - 1];
}

void
printDurationLine(const char* label, std::vector<u64> v)
{
    if (v.empty()) {
        std::printf("  %-12s (none)\n", label);
        return;
    }
    u64 sum = 0;
    for (u64 x : v)
        sum += x;
    const u64 p50 = exactQuantile(v, 0.50);
    const u64 p90 = exactQuantile(v, 0.90);
    const u64 p99 = exactQuantile(v, 0.99);
    std::printf("  %-12s n=%zu mean=%.1f ::p50 %llu ::p90 %llu "
                "::p99 %llu max=%llu\n",
                label, v.size(),
                static_cast<double>(sum) / static_cast<double>(v.size()),
                static_cast<unsigned long long>(p50),
                static_cast<unsigned long long>(p90),
                static_cast<unsigned long long>(p99),
                static_cast<unsigned long long>(v.back()));
}

struct Options
{
    std::string file;
    int top = 10;
    bool check = false;
};

void
usage()
{
    std::fprintf(stderr,
                 "usage: trace_report FILE [--top N] [--check]\n");
}

} // namespace

int
main(int argc, char** argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--top") {
            if (i + 1 >= argc) {
                usage();
                return 2;
            }
            // Strict parse: atoi turned "--top abc" into 0 and the
            // report silently rendered empty tables.
            opt.top = parseInt(argv[++i], "--top", 1, 1'000'000);
        } else if (arg == "--check") {
            opt.check = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
            return 2;
        } else if (opt.file.empty()) {
            opt.file = arg;
        } else {
            usage();
            return 2;
        }
    }
    if (opt.file.empty()) {
        usage();
        return 2;
    }

    std::ifstream in(opt.file);
    if (!in) {
        std::fprintf(stderr, "trace_report: cannot open '%s'\n",
                     opt.file.c_str());
        return 1;
    }

    u64 cycles = 0;
    i64 cpus = 0, dropped = 0, schemaVersion = -1;
    std::vector<CpuState> cpu;
    std::map<std::string, u64> conflictAddr;
    std::map<std::string, std::map<i64, u64>> heat; // addr x attacker
    std::map<std::string, u64> abortCycles;         // addr -> cycles
    std::vector<u64> committedDur, rolledDur;
    std::map<int, u64> chainHist;
    int errors = 0;
    auto fail = [&](const char* fmt, auto... args) {
        std::fprintf(stderr, fmt, args...);
        ++errors;
    };

    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"otherData\"") != std::string::npos) {
            if (findStr(line, "schema") != "tmsim-trace")
                fail("error: not a tmsim-trace file%s\n", "");
            schemaVersion = findNum(line, "schema_version");
            cycles = static_cast<u64>(findNum(line, "cycles"));
            cpus = findNum(line, "cpus");
            dropped = findNum(line, "dropped");
            if (cpus > 0)
                cpu.resize(static_cast<size_t>(cpus));
            continue;
        }
        size_t php = line.find("\"ph\": \"");
        if (php == std::string::npos)
            continue;
        char ph = line[php + 7];
        if (ph == 'M')
            continue;
        i64 tid = findNum(line, "tid");
        if (tid < 0)
            continue;
        if (tid >= static_cast<i64>(cpu.size()))
            cpu.resize(static_cast<size_t>(tid) + 1);
        CpuState& c = cpu[static_cast<size_t>(tid)];
        u64 ts = static_cast<u64>(findNum(line, "ts"));
        std::string name = findStr(line, "name");

        if (ph == 'B') {
            c.sliceBegin.push_back(ts);
            if (c.sliceBegin.size() == 1)
                c.validSeen = false;
        } else if (ph == 'E') {
            if (c.sliceBegin.empty()) {
                fail("error: cpu%lld: E with no open slice at ts %llu\n",
                     static_cast<long long>(tid),
                     static_cast<unsigned long long>(ts));
                continue;
            }
            u64 begin = c.sliceBegin.back();
            c.sliceBegin.pop_back();
            if (ts < begin)
                fail("error: cpu%lld: slice ends (%llu) before it "
                     "begins (%llu)\n",
                     static_cast<long long>(tid),
                     static_cast<unsigned long long>(ts),
                     static_cast<unsigned long long>(begin));
            if (!c.sliceBegin.empty())
                continue; // nested level: the outermost slice covers it
            std::string outcome = findStr(line, "outcome");
            if (outcome == "commit") {
                if (c.validSeen && c.lastValidated >= begin &&
                    c.lastValidated <= ts) {
                    c.useful += c.lastValidated - begin;
                    c.commit += ts - c.lastValidated;
                } else {
                    c.useful += ts - begin;
                }
                committedDur.push_back(ts - begin);
                if (c.chain > 0)
                    ++chainHist[c.chain];
                c.chain = 0;
            } else {
                c.wasted += ts - begin;
                rolledDur.push_back(ts - begin);
                if (!c.lastVioAddr.empty())
                    abortCycles[c.lastVioAddr] += ts - begin;
                if (outcome == "rollback" || outcome == "abort")
                    ++c.chain;
            }
        } else if (ph == 'i') {
            if (name == "violation_raised") {
                std::string addr = findStr(line, "addr");
                if (!addr.empty()) {
                    ++conflictAddr[addr];
                    ++heat[addr][findNum(line, "attacker")];
                    c.lastVioAddr = addr;
                }
            } else if (name == "validated" &&
                       c.sliceBegin.size() == 1 &&
                       findNum(line, "depth") == 1) {
                c.lastValidated = ts;
                c.validSeen = true;
            }
        } else if (ph == 'X') {
            if (name == "backoff" && c.sliceBegin.empty())
                c.backoff += static_cast<u64>(findNum(line, "dur"));
        }
    }

    if (schemaVersion != 1)
        fail("error: unsupported trace schema version %lld\n",
             static_cast<long long>(schemaVersion));
    for (size_t i = 0; i < cpu.size(); ++i) {
        if (!cpu[i].sliceBegin.empty())
            fail("error: cpu%zu: %zu slice(s) still open at end of "
                 "trace\n",
                 i, cpu[i].sliceBegin.size());
        if (cpu[i].chain > 0) {
            ++chainHist[cpu[i].chain]; // chain cut off by end of run
            cpu[i].chain = 0;
        }
    }

    std::printf("trace_report: %s\n", opt.file.c_str());
    std::printf("schema tmsim-trace v%lld, %lld cpus, %llu cycles, "
                "%lld dropped event(s)\n\n",
                static_cast<long long>(schemaVersion),
                static_cast<long long>(cpus),
                static_cast<unsigned long long>(cycles),
                static_cast<long long>(dropped));

    std::printf("top conflict addresses (violations raised):\n");
    std::vector<std::pair<std::string, u64>> byCount(conflictAddr.begin(),
                                                     conflictAddr.end());
    std::sort(byCount.begin(), byCount.end(),
              [](const auto& a, const auto& b) {
                  return a.second != b.second ? a.second > b.second
                                              : a.first < b.first;
              });
    if (byCount.empty())
        std::printf("  (none)\n");
    for (size_t i = 0;
         i < byCount.size() && i < static_cast<size_t>(opt.top); ++i)
        std::printf("  %-18s %llu\n", byCount[i].first.c_str(),
                    static_cast<unsigned long long>(byCount[i].second));

    // Heatmap: rows are the same top addresses, columns the attacker
    // CPU that raised each violation; the abort_cyc column charges
    // every outermost rollback's wasted cycles to the address of the
    // last violation its victim CPU saw.
    std::printf("\nconflict heatmap "
                "(violations by attacker cpu; abort cycles by address):\n");
    if (byCount.empty()) {
        std::printf("  (none)\n");
    } else {
        const size_t ncols =
            cpu.size() ? cpu.size()
                       : static_cast<size_t>(cpus > 0 ? cpus : 0);
        std::printf("  %-18s %10s", "address", "abort_cyc");
        for (size_t a = 0; a < ncols; ++a)
            std::printf(" %6s%zu", "cpu", a);
        std::printf("\n");
        for (size_t i = 0;
             i < byCount.size() && i < static_cast<size_t>(opt.top);
             ++i) {
            const std::string& addr = byCount[i].first;
            auto ac = abortCycles.find(addr);
            std::printf("  %-18s %10llu", addr.c_str(),
                        static_cast<unsigned long long>(
                            ac == abortCycles.end() ? 0 : ac->second));
            const auto& row = heat[addr];
            for (size_t a = 0; a < ncols; ++a) {
                auto it = row.find(static_cast<i64>(a));
                std::printf(" %7llu",
                            static_cast<unsigned long long>(
                                it == row.end() ? 0 : it->second));
            }
            std::printf("\n");
        }
    }

    std::printf("\noutermost tx durations (cycles, exact quantiles):\n");
    printDurationLine("committed", std::move(committedDur));
    printDurationLine("rolled-back", std::move(rolledDur));

    std::printf("\nper-cpu cycle attribution:\n");
    std::printf("  %-5s %12s %12s %12s %12s %12s %12s\n", "cpu", "useful",
                "wasted", "commit", "backoff", "other", "total");
    u64 sums[5] = {0, 0, 0, 0, 0};
    for (size_t i = 0; i < cpu.size(); ++i) {
        const CpuState& c = cpu[i];
        u64 accounted = c.useful + c.wasted + c.commit + c.backoff;
        if (accounted > cycles)
            fail("error: cpu%zu: attributed %llu cycles out of %llu\n",
                 i, static_cast<unsigned long long>(accounted),
                 static_cast<unsigned long long>(cycles));
        u64 other = accounted > cycles ? 0 : cycles - accounted;
        std::printf("  %-5zu %12llu %12llu %12llu %12llu %12llu %12llu\n",
                    i, static_cast<unsigned long long>(c.useful),
                    static_cast<unsigned long long>(c.wasted),
                    static_cast<unsigned long long>(c.commit),
                    static_cast<unsigned long long>(c.backoff),
                    static_cast<unsigned long long>(other),
                    static_cast<unsigned long long>(accounted + other));
        sums[0] += c.useful;
        sums[1] += c.wasted;
        sums[2] += c.commit;
        sums[3] += c.backoff;
        sums[4] += other;
    }
    std::printf("  %-5s %12llu %12llu %12llu %12llu %12llu %12llu\n",
                "all", static_cast<unsigned long long>(sums[0]),
                static_cast<unsigned long long>(sums[1]),
                static_cast<unsigned long long>(sums[2]),
                static_cast<unsigned long long>(sums[3]),
                static_cast<unsigned long long>(sums[4]),
                static_cast<unsigned long long>(sums[0] + sums[1] +
                                                sums[2] + sums[3] +
                                                sums[4]));

    std::printf("\nabort chains (outermost rollbacks before a commit):\n");
    if (chainHist.empty())
        std::printf("  (none)\n");
    for (const auto& [len, n] : chainHist)
        std::printf("  length %-4d %llu\n", len,
                    static_cast<unsigned long long>(n));

    if (opt.check) {
        if (dropped != 0)
            fail("error: %lld dropped event(s); attribution would be "
                 "unreliable\n",
                 static_cast<long long>(dropped));
        std::printf("\ncheck: %s\n", errors ? "FAILED" : "OK");
        return errors ? 1 : 0;
    }
    return errors ? 1 : 0;
}
