/**
 * @file
 * tmsim_run — command-line driver: run any bundled kernel under any
 * HTM configuration and dump the statistics, gem5-style.
 *
 *   tmsim_run --kernel mp3d --cpus 8
 *   tmsim_run --kernel specjbb-open --cpus 8 --nesting flatten
 *   tmsim_run --kernel water --conflict eager --version undolog \
 *             --policy older --stats
 *   tmsim_run --list
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "sim/logging.hh"
#include "sim/parse.hh"
#include "sim/trace.hh"
#include "workloads/harness.hh"

using namespace tmsim;

namespace {

void
usage()
{
    std::printf(
        "usage: tmsim_run --kernel NAME [options]\n"
        "  --kernel NAME        workload (see --list)\n"
        "  --cpus N             CPUs / threads (default 8)\n"
        "  --version wb|undolog speculative versioning\n"
        "  --conflict lazy|eager\n"
        "  --policy requester|older   (eager resolution)\n"
        "  --contention P       contention manager: requester|timestamp|\n"
        "                       karma|polite|hybrid\n"
        "  --starvation-k N     hybrid: escalate after N consecutive\n"
        "                       aborts (default 8)\n"
        "  --nesting full|flatten\n"
        "  --scheme assoc|multitrack  (cache nesting scheme)\n"
        "  --granularity line|word    (conflict tracking)\n"
        "  --rset-cap N         bound per-level read-sets to N lines\n"
        "                       (0 = unbounded, the default)\n"
        "  --wset-cap N         bound per-level write-sets to N lines\n"
        "  --capacity-mode M    abort|overflow: over-cap handling\n"
        "  --no-backoff         disable retry backoff\n"
        "  --store dense|sparse backing-store host representation\n"
        "                       (default sparse; semantics-identical)\n"
        "  --jbb-ops N          specjbb-*: total operations\n"
        "  --jbb-customers N    specjbb-*: total customer keys\n"
        "  --jbb-stock N        specjbb-*: total stock keys\n"
        "  --jbb-warehouses N   specjbb-*: warehouse shards (default 1)\n"
        "  --jbb-think N        specjbb-*: think cycles per phase\n"
        "  --jbb-remote-pct N   specjbb-*: %% of new orders handed to\n"
        "                       another warehouse (cross-shard)\n"
        "  --zipf S             specjbb-*: Zipf skew in [0,1) for\n"
        "                       warehouse/customer/item draws\n"
        "  --fuzz-seed N        seed for the 'fuzz' kernel (default 1)\n"
        "  --stats              dump every counter after the run\n"
        "  --trace FILE         write a Chrome trace-event JSON of every\n"
        "                       transaction lifecycle event (Perfetto)\n"
        "  --json-stats FILE    write the full stats registry as JSON\n"
        "  --quiet              suppress simulator log output (default:\n"
        "                       warnings and above are shown)\n"
        "  --list               list kernels\n");
}

} // namespace

int
main(int argc, char** argv)
{
    std::string kernelName;
    std::string traceFile;
    std::string jsonStatsFile;
    int cpus = 8;
    HtmConfig htm = HtmConfig::paperLazy();
    KernelParams kp;
    bool dumpStats = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--kernel") {
            kernelName = next();
        } else if (arg == "--cpus") {
            cpus = parseInt(next(), "--cpus", 1, 128);
        } else if (arg == "--version") {
            std::string v = next();
            htm.version = v == "undolog" ? VersionMode::UndoLog
                                         : VersionMode::WriteBuffer;
            if (htm.version == VersionMode::UndoLog)
                htm.conflict = ConflictMode::Eager;
        } else if (arg == "--conflict") {
            htm.conflict = next() == "eager" ? ConflictMode::Eager
                                             : ConflictMode::Lazy;
        } else if (arg == "--policy") {
            htm.policy = next() == "older" ? ConflictPolicy::OlderWins
                                           : ConflictPolicy::RequesterWins;
        } else if (arg == "--contention") {
            const std::string name = next();
            if (!contentionPolicyFromName(name, htm.contention))
                fatal("unknown contention policy '%s'", name.c_str());
        } else if (arg == "--starvation-k") {
            htm.starvationThreshold = parseInt(next(), "--starvation-k", 1);
        } else if (arg == "--nesting") {
            htm.nesting = next() == "flatten" ? NestingMode::Flatten
                                              : NestingMode::Full;
        } else if (arg == "--scheme") {
            htm.scheme = next() == "multitrack"
                             ? NestScheme::MultiTracking
                             : NestScheme::Associativity;
        } else if (arg == "--granularity") {
            htm.granularity = next() == "word" ? TrackGranularity::Word
                                               : TrackGranularity::Line;
        } else if (arg == "--rset-cap") {
            htm.rsetCap = parseInt(next(), "--rset-cap", 0, 100000);
        } else if (arg == "--wset-cap") {
            htm.wsetCap = parseInt(next(), "--wset-cap", 0, 100000);
        } else if (arg == "--capacity-mode") {
            const std::string name = next();
            if (!capacityModeFromName(name, htm.capacityMode))
                fatal("unknown capacity mode '%s'", name.c_str());
        } else if (arg == "--no-backoff") {
            htm.retryBackoff = false;
        } else if (arg == "--store") {
            const std::string name = next();
            StoreMode mode;
            if (!storeModeFromName(name, mode))
                fatal("unknown store mode '%s'", name.c_str());
            setDefaultStoreMode(mode);
        } else if (arg == "--jbb-ops") {
            kp.jbbOps = parseInt(next(), "--jbb-ops", 1);
        } else if (arg == "--jbb-customers") {
            kp.jbbCustomers = parseInt(next(), "--jbb-customers", 1);
        } else if (arg == "--jbb-stock") {
            kp.jbbStockItems = parseInt(next(), "--jbb-stock", 1);
        } else if (arg == "--jbb-warehouses") {
            kp.jbbWarehouses = parseInt(next(), "--jbb-warehouses", 1,
                                        1024);
        } else if (arg == "--jbb-think") {
            kp.jbbThinkCycles = parseInt(next(), "--jbb-think", 0);
        } else if (arg == "--jbb-remote-pct") {
            kp.jbbRemotePct = parseInt(next(), "--jbb-remote-pct", 0,
                                       100);
        } else if (arg == "--zipf") {
            kp.zipfS = parseDouble(next(), "--zipf", 0.0, 0.999);
        } else if (arg == "--fuzz-seed") {
            kp.fuzzSeed = parseU64(next(), "--fuzz-seed");
        } else if (arg == "--stats") {
            dumpStats = true;
        } else if (arg == "--trace") {
            traceFile = next();
        } else if (arg == "--json-stats") {
            jsonStatsFile = next();
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--list") {
            for (const std::string& n : namedKernels())
                std::printf("%s\n", n.c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    if (kernelName.empty()) {
        usage();
        return 2;
    }
    auto kernel = makeNamedKernel(kernelName, kp);
    if (!kernel)
        fatal("unknown kernel '%s' (try --list)", kernelName.c_str());

    defaultLogContext().quiet = quiet;

    MachineConfig cfg;
    cfg.numCpus = cpus;
    cfg.htm = htm;
    cfg.memBytes = std::max(cfg.memBytes, kernel->memBytesHint());
    Machine m(cfg);
    if (!traceFile.empty())
        m.tracer().enable(true);
    kernel->init(m, cpus);

    std::vector<std::unique_ptr<TxThread>> threads;
    for (int i = 0; i < cpus; ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));
    for (int i = 0; i < cpus; ++i) {
        Kernel* k = kernel.get();
        TxThread* t = threads[static_cast<size_t>(i)].get();
        m.spawn(i, [k, t, i, cpus](Cpu&) -> SimTask {
            co_await k->thread(*t, i, cpus);
        });
    }

    Tick cycles = m.run();
    bool verified = kernel->verify(m, cpus);

    std::uint64_t instr = 0;
    for (int i = 0; i < cpus; ++i)
        instr += m.cpu(i).instret();

    std::printf("kernel       %s\n", kernelName.c_str());
    std::printf("htm          %s%s\n", htm.describe().c_str(),
                htm.granularity == TrackGranularity::Word ? "/word" : "");
    std::printf("cpus         %d\n", cpus);
    std::printf("cycles       %llu\n",
                static_cast<unsigned long long>(cycles));
    std::printf("instructions %llu\n",
                static_cast<unsigned long long>(instr));
    std::printf("commits      %llu\n",
                static_cast<unsigned long long>(
                    m.stats().sum("cpu*.htm.commits") +
                    m.stats().sum("cpu*.htm.open_commits")));
    std::printf("rollbacks    %llu (outer %llu, inner %llu)\n",
                static_cast<unsigned long long>(
                    m.stats().sum("cpu*.htm.rollbacks")),
                static_cast<unsigned long long>(
                    m.stats().sum("cpu*.rollbacks_outer")),
                static_cast<unsigned long long>(
                    m.stats().sum("cpu*.rollbacks_inner")));
    std::printf("bus busy     %llu cycles\n",
                static_cast<unsigned long long>(
                    m.stats().value("bus.busy_cycles")));
    std::printf("verified     %s\n", verified ? "yes" : "NO");

    if (dumpStats) {
        std::printf("---- stats ----\n");
        m.stats().dump(std::cout);
    }
    if (!traceFile.empty()) {
        std::ofstream os(traceFile);
        if (!os)
            fatal("cannot open trace file '%s'", traceFile.c_str());
        m.tracer().writeChromeTrace(os);
        if (m.tracer().droppedCount())
            std::fprintf(stderr,
                         "warning: trace buffer full, %llu event(s) "
                         "dropped\n",
                         static_cast<unsigned long long>(
                             m.tracer().droppedCount()));
    }
    if (!jsonStatsFile.empty()) {
        std::ofstream os(jsonStatsFile);
        if (!os)
            fatal("cannot open stats file '%s'", jsonStatsFile.c_str());
        m.stats().dumpJson(os);
    }
    return verified ? 0 : 1;
}
