# Sweep smoke test (ctest: sweep_smoke).
# Runs a small kernel x config x cpu grid sequentially and through the
# worker pool, and requires the two merged documents to be identical
# byte for byte (the campaign determinism contract).

set(seq "${WORK_DIR}/sweep_seq.json")
set(par "${WORK_DIR}/sweep_par.json")

foreach(mode "seq;1;${seq}" "par;4;${par}")
    list(GET mode 1 jobs)
    list(GET mode 2 out)
    execute_process(
        COMMAND ${TMSIM_SWEEP} --kernel contend --cpus 1,2,4
                --configs lazy-wb,eager-undolog --quiet
                --jobs ${jobs} --json-stats ${out}
        RESULT_VARIABLE rc
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "tmsim_sweep --jobs ${jobs} failed (rc=${rc}):\n${err}")
    endif()
endforeach()

file(READ ${seq} seqText)
file(READ ${par} parText)
if(NOT seqText STREQUAL parText)
    message(FATAL_ERROR
            "sweep documents differ between --jobs 1 and --jobs 4")
endif()
if(NOT seqText MATCHES "\"schema\": \"tmsim-sweep\"")
    message(FATAL_ERROR "sweep JSON missing schema header")
endif()
if(NOT seqText MATCHES "\"all_verified\": true")
    message(FATAL_ERROR "sweep reported a verification failure")
endif()
