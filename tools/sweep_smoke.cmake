# Sweep smoke test (ctest: sweep_smoke).
# Runs a small kernel x config x cpu grid sequentially and through the
# worker pool, and requires the two merged documents to be identical
# byte for byte (the campaign determinism contract).

set(seq "${WORK_DIR}/sweep_seq.json")
set(par "${WORK_DIR}/sweep_par.json")

foreach(mode "seq;1;${seq}" "par;4;${par}")
    list(GET mode 1 jobs)
    list(GET mode 2 out)
    execute_process(
        COMMAND ${TMSIM_SWEEP} --kernel contend --cpus 1,2,4
                --configs lazy-wb,eager-undolog --quiet
                --jobs ${jobs} --json-stats ${out}
        RESULT_VARIABLE rc
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "tmsim_sweep --jobs ${jobs} failed (rc=${rc}):\n${err}")
    endif()
endforeach()

file(READ ${seq} seqText)
file(READ ${par} parText)

# Schema v2 carries exactly two host-time (hence nondeterministic)
# additions: per-cell "wall_us" lines and the top-level "campaign"
# section. Strip those, then require byte identity on everything else.
function(strip_host_time in out)
    string(REGEX REPLACE "\n *\"wall_us\": [0-9]+," "" txt "${in}")
    string(REGEX REPLACE
           "\n  \"campaign\": {[^}]*\"job_wall_us\": {[^}]*},[^}]*\"merge_us\": {[^}]*}\n  },"
           "" txt "${txt}")
    set(${out} "${txt}" PARENT_SCOPE)
endfunction()

strip_host_time("${seqText}" seqStripped)
strip_host_time("${parText}" parStripped)

if(NOT seqStripped STREQUAL parStripped)
    message(FATAL_ERROR
            "sweep documents differ between --jobs 1 and --jobs 4 "
            "beyond the declared host-time fields")
endif()
if(seqStripped STREQUAL seqText)
    message(FATAL_ERROR
            "strip_host_time removed nothing: wall_us/campaign fields "
            "missing or the stripper regressed")
endif()
if(NOT seqText MATCHES "\"schema\": \"tmsim-sweep\"")
    message(FATAL_ERROR "sweep JSON missing schema header")
endif()
if(NOT seqText MATCHES "\"schema_version\": 2")
    message(FATAL_ERROR "sweep JSON not schema v2")
endif()
if(NOT seqText MATCHES "\"wall_us\": [0-9]")
    message(FATAL_ERROR "sweep cells missing wall_us")
endif()
if(NOT seqText MATCHES "\"campaign\": {")
    message(FATAL_ERROR "sweep JSON missing campaign telemetry section")
endif()
if(NOT seqText MATCHES "\"job_wall_us\": {\"samples\": [1-9]")
    message(FATAL_ERROR "campaign job_wall_us has no samples")
endif()
if(NOT seqText MATCHES "\"all_verified\": true")
    message(FATAL_ERROR "sweep reported a verification failure")
endif()
