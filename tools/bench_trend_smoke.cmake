# Bench-trend smoke test (ctest: bench_trend_smoke).
# Exercises the perf-trend gate end to end against a scratch trend
# file: collecting the repo's BENCH_* headline metrics must produce a
# parseable NDJSON trend that passes `check`; appending a deliberate
# 2x regression must make `check` exit nonzero and name the metric.

find_package(Python3 COMPONENTS Interpreter REQUIRED)

set(trend "${WORK_DIR}/bench_trend_smoke.ndjson")
file(REMOVE ${trend})

set(ENV{TMSIM_TREND_FILE} ${trend})

# 1. Collect the checked-in headline metrics into a fresh trend file.
execute_process(
    COMMAND ${Python3_EXECUTABLE} ${BENCH_TREND} --trend ${trend} collect
            --repo-root ${REPO_ROOT}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_trend collect failed:\n${out}${err}")
endif()

# 2. Every line of the trend file must be a self-describing v1 record.
file(STRINGS ${trend} lines)
list(LENGTH lines nlines)
if(nlines LESS 1)
    message(FATAL_ERROR "bench_trend collect wrote no records")
endif()
foreach(line IN LISTS lines)
    if(NOT line MATCHES "\"schema\": \"tmsim-bench-trend\"")
        message(FATAL_ERROR "trend record missing schema: ${line}")
    endif()
    if(NOT line MATCHES "\"schema_version\": 1")
        message(FATAL_ERROR "trend record missing version: ${line}")
    endif()
endforeach()

# 3. The known-good snapshot must pass the gate.
execute_process(
    COMMAND ${Python3_EXECUTABLE} ${BENCH_TREND} --trend ${trend} check
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "bench_trend check rejected the known-good trend:\n"
            "${out}${err}")
endif()

# 4. Inject a 2x slowdown on the perf_smoke metric; the gate must trip.
execute_process(
    COMMAND ${Python3_EXECUTABLE} ${BENCH_TREND} --trend ${trend} record
            --metric fuzz200_ms --value 1400 --unit ms
            --direction lower --source bench_trend_smoke
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_trend record failed:\n${out}${err}")
endif()
execute_process(
    COMMAND ${Python3_EXECUTABLE} ${BENCH_TREND} --trend ${trend} check
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
    message(FATAL_ERROR
            "bench_trend check accepted a 2x regression:\n${out}${err}")
endif()
if(NOT "${out}${err}" MATCHES "fuzz200_ms")
    message(FATAL_ERROR
            "regression report does not name the metric:\n${out}${err}")
endif()

# 5. Appending never rewrote history: the known-good prefix is intact.
file(STRINGS ${trend} after)
list(LENGTH after nafter)
math(EXPR expect "${nlines} + 1")
if(NOT nafter EQUAL ${expect})
    message(FATAL_ERROR
            "trend file not append-only: ${nlines} -> ${nafter} lines")
endif()
