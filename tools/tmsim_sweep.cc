/**
 * @file
 * tmsim_sweep — batch sweep driver: runs one kernel across a grid of
 * HTM design points x CPU counts, fanning the (fully isolated,
 * deterministic) simulations across host worker threads, and emits a
 * single merged JSON document with a per-cell summary and each cell's
 * full stats registry. Cell order in the document is grid order
 * (config-major, then CPU count) regardless of --jobs, so the merged
 * document is bitwise-identical for any worker count.
 *
 *   tmsim_sweep --kernel mp3d --cpus 1,2,4,8 --jobs 8 \
 *               --json-stats mp3d.sweep.json
 *   tmsim_sweep --kernel contend --configs lazy-wb,eager-undolog
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/campaign.hh"
#include "sim/logging.hh"
#include "sim/parse.hh"
#include "workloads/harness.hh"

using namespace tmsim;

namespace {

/** Bumped whenever the merged sweep document changes shape.
 *  v2: per-cell "wall_us" (host wall time of the cell's simulation)
 *  and a top-level "campaign" section with the merged campaign.*
 *  telemetry, so a sweep document is self-describing about its own
 *  cost. Both are host-time measurements and therefore the only
 *  nondeterministic fields in the document; sweep_smoke strips them
 *  before comparing --jobs 1 against --jobs 4. */
constexpr int sweepSchemaVersion = 2;

/** One-line JSON summary of an HDR distribution (host-time fields). */
std::string
distSummary(const StatsRegistry::Distribution& d)
{
    char buf[256];
    std::snprintf(
        buf, sizeof(buf),
        "{\"samples\": %llu, \"mean\": %.3f, \"p50\": %llu, "
        "\"p90\": %llu, \"p99\": %llu, \"max\": %llu}",
        static_cast<unsigned long long>(d.count()), d.mean(),
        static_cast<unsigned long long>(d.quantile(0.50)),
        static_cast<unsigned long long>(d.quantile(0.90)),
        static_cast<unsigned long long>(d.quantile(0.99)),
        static_cast<unsigned long long>(d.max()));
    return buf;
}

struct SweepConfig
{
    const char* name;
    VersionMode version;
    ConflictMode conflict;
    NestingMode nesting;
};

/** The four design points the paper contrasts (same naming as the
 *  differential fuzzer's configs). */
const SweepConfig sweepConfigs[] = {
    {"lazy-wb", VersionMode::WriteBuffer, ConflictMode::Lazy,
     NestingMode::Full},
    {"eager-wb", VersionMode::WriteBuffer, ConflictMode::Eager,
     NestingMode::Full},
    {"eager-undolog", VersionMode::UndoLog, ConflictMode::Eager,
     NestingMode::Full},
    {"lazy-wb-flatten", VersionMode::WriteBuffer, ConflictMode::Lazy,
     NestingMode::Flatten},
};

const SweepConfig*
findConfig(const std::string& name)
{
    for (const SweepConfig& c : sweepConfigs)
        if (name == c.name)
            return &c;
    return nullptr;
}

std::vector<std::string>
splitList(const std::string& s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    return out;
}

void
usage()
{
    std::printf(
        "usage: tmsim_sweep --kernel NAME [options]\n"
        "  --kernel NAME      workload (tmsim_run --list)\n"
        "  --cpus LIST        comma-separated CPU counts "
        "(default 1,2,4,8)\n"
        "  --configs LIST     design points: lazy-wb,eager-wb,"
        "eager-undolog,\n"
        "                     lazy-wb-flatten (default: all four)\n"
        "  --jobs N           host worker threads (default 1; the "
        "merged\n"
        "                     document is identical for any N)\n"
        "  --json-stats FILE  write the merged sweep document "
        "(default stdout)\n"
        "  --fuzz-seed N      seed for the 'fuzz' kernel (default 1)\n"
        "  --store dense|sparse  backing-store host representation\n"
        "  --jbb-ops N        specjbb-*: total operations\n"
        "  --jbb-customers N  specjbb-*: total customer keys\n"
        "  --jbb-stock N      specjbb-*: total stock keys\n"
        "  --jbb-warehouses N specjbb-*: warehouse shards\n"
        "  --jbb-think N      specjbb-*: think cycles per phase\n"
        "  --jbb-remote-pct N specjbb-*: %% cross-shard new orders\n"
        "  --zipf S           specjbb-*: Zipf skew in [0,1)\n"
        "  --rset-cap N       bound per-level read-sets to N lines\n"
        "                     (0 = unbounded, the default)\n"
        "  --wset-cap N       bound per-level write-sets to N lines\n"
        "  --capacity-mode M  abort|overflow: over-cap handling\n"
        "  --quiet            suppress simulator log output\n");
}

} // namespace

int
main(int argc, char** argv)
{
    std::string kernelName;
    std::string jsonStatsFile;
    std::string cpusList = "1,2,4,8";
    std::string configsList;
    KernelParams kp;
    int jobs = 1;
    bool quiet = false;
    int rsetCap = 0;
    int wsetCap = 0;
    CapacityMode capMode = CapacityMode::Abort;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--kernel") {
            kernelName = next();
        } else if (arg == "--cpus") {
            cpusList = next();
        } else if (arg == "--configs") {
            configsList = next();
        } else if (arg == "--jobs") {
            jobs = parseInt(next(), "--jobs", 1, 1024);
        } else if (arg == "--json-stats") {
            jsonStatsFile = next();
        } else if (arg == "--fuzz-seed") {
            kp.fuzzSeed = parseU64(next(), "--fuzz-seed");
        } else if (arg == "--store") {
            const std::string name = next();
            StoreMode mode;
            if (!storeModeFromName(name, mode))
                fatal("unknown store mode '%s'", name.c_str());
            setDefaultStoreMode(mode);
        } else if (arg == "--jbb-ops") {
            kp.jbbOps = parseInt(next(), "--jbb-ops", 1);
        } else if (arg == "--jbb-customers") {
            kp.jbbCustomers = parseInt(next(), "--jbb-customers", 1);
        } else if (arg == "--jbb-stock") {
            kp.jbbStockItems = parseInt(next(), "--jbb-stock", 1);
        } else if (arg == "--jbb-warehouses") {
            kp.jbbWarehouses = parseInt(next(), "--jbb-warehouses", 1,
                                        1024);
        } else if (arg == "--jbb-think") {
            kp.jbbThinkCycles = parseInt(next(), "--jbb-think", 0);
        } else if (arg == "--jbb-remote-pct") {
            kp.jbbRemotePct = parseInt(next(), "--jbb-remote-pct", 0,
                                       100);
        } else if (arg == "--zipf") {
            kp.zipfS = parseDouble(next(), "--zipf", 0.0, 0.999);
        } else if (arg == "--rset-cap") {
            rsetCap = parseInt(next(), "--rset-cap", 0, 100000);
        } else if (arg == "--wset-cap") {
            wsetCap = parseInt(next(), "--wset-cap", 0, 100000);
        } else if (arg == "--capacity-mode") {
            const std::string name = next();
            if (!capacityModeFromName(name, capMode))
                fatal("unknown capacity mode '%s'", name.c_str());
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    if (kernelName.empty()) {
        usage();
        return 2;
    }
    if (!makeNamedKernel(kernelName, kp))
        fatal("unknown kernel '%s' (try tmsim_run --list)",
              kernelName.c_str());

    std::vector<int> cpuCounts;
    for (const std::string& tok : splitList(cpusList))
        cpuCounts.push_back(parseInt(tok, "--cpus", 1, 128));

    std::vector<const SweepConfig*> configs;
    if (configsList.empty()) {
        for (const SweepConfig& c : sweepConfigs)
            configs.push_back(&c);
    } else {
        for (const std::string& tok : splitList(configsList)) {
            const SweepConfig* c = findConfig(tok);
            if (!c)
                fatal("unknown config '%s' (lazy-wb|eager-wb|"
                      "eager-undolog|lazy-wb-flatten)",
                      tok.c_str());
            configs.push_back(c);
        }
    }

    defaultLogContext().quiet = quiet;

    // Grid cells in config-major order; job index == cell index.
    struct Cell
    {
        const SweepConfig* cfg;
        int cpus;
    };
    std::vector<Cell> grid;
    for (const SweepConfig* c : configs)
        for (int n : cpuCounts)
            grid.push_back(Cell{c, n});

    struct CellResult
    {
        RunResult r;
        std::string statsJson;
        std::uint64_t wallUs = 0;
    };

    std::ostringstream doc;
    doc << "{\n";
    doc << "  \"schema\": \"tmsim-sweep\",\n";
    doc << "  \"schema_version\": " << sweepSchemaVersion << ",\n";
    doc << "  \"kernel\": \"" << kernelName << "\",\n";
    doc << "  \"runs\": [\n";

    bool allVerified = true;
    StatsRegistry telemetry;
    CampaignOptions opt;
    opt.jobs = jobs;
    opt.quiet = quiet;
    opt.telemetry = &telemetry;
    const CampaignResult cres = runCampaign<CellResult>(
        grid.size(), opt,
        [&](std::size_t i) {
            const Cell& cell = grid[i];
            HtmConfig htm;
            htm.version = cell.cfg->version;
            htm.conflict = cell.cfg->conflict;
            htm.nesting = cell.cfg->nesting;
            htm.rsetCap = rsetCap;
            htm.wsetCap = wsetCap;
            htm.capacityMode = capMode;
            auto kernel = makeNamedKernel(kernelName, kp);
            CellResult res;
            StatsRegistry stats;
            const auto t0 = std::chrono::steady_clock::now();
            res.r = runKernel(*kernel, htm, cell.cpus,
                              64ull * 1024 * 1024, &stats);
            res.wallUs = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count());
            std::ostringstream ss;
            stats.dumpJson(ss);
            res.statsJson = ss.str();
            return res;
        },
        [&](std::size_t i, CellResult&& res) {
            const Cell& cell = grid[i];
            std::fprintf(stderr,
                         "%-16s cpus %-3d %10llu cycles  %8llu commits  "
                         "%s\n",
                         cell.cfg->name, cell.cpus,
                         static_cast<unsigned long long>(res.r.cycles),
                         static_cast<unsigned long long>(res.r.commits),
                         res.r.verified ? "ok" : "VERIFY-FAIL");
            allVerified = allVerified && res.r.verified;
            // Indent the embedded registry dump to the cell's depth so
            // the merged document stays readable.
            std::istringstream stats(res.statsJson);
            std::ostringstream indented;
            std::string line;
            bool first = true;
            while (std::getline(stats, line)) {
                indented << (first ? "" : "\n      ") << line;
                first = false;
            }
            doc << "    {\n"
                << "      \"config\": \"" << cell.cfg->name << "\",\n"
                << "      \"cpus\": " << cell.cpus << ",\n"
                << "      \"cycles\": " << res.r.cycles << ",\n"
                << "      \"instructions\": " << res.r.instructions
                << ",\n"
                << "      \"commits\": " << res.r.commits << ",\n"
                << "      \"rollbacks\": " << res.r.rollbacks << ",\n"
                << "      \"verified\": "
                << (res.r.verified ? "true" : "false") << ",\n"
                // Host time; the one nondeterministic per-cell field
                // (kept on its own line so sweep_smoke can strip it).
                << "      \"wall_us\": " << res.wallUs << ",\n"
                << "      \"stats\": " << indented.str() << "\n"
                << "    }" << (i + 1 < grid.size() ? "," : "") << "\n";
            return true;
        });

    if (cres.failed) {
        std::fprintf(stderr, "fatal: sweep cancelled at cell %zu: %s\n",
                     cres.failedJob, cres.message.c_str());
        return 1;
    }

    doc << "  ],\n";
    // Merged campaign telemetry: what this sweep cost the host. Each
    // sub-object is emitted on one line so sweep_smoke can strip the
    // section before its determinism compare.
    doc << "  \"campaign\": {\n";
    doc << "    \"jobs\": " << jobs << ",\n";
    doc << "    \"job_wall_us\": "
        << distSummary(telemetry.distribution("campaign.job_wall_us"))
        << ",\n";
    doc << "    \"merge_us\": "
        << distSummary(telemetry.distribution("campaign.merge_us"))
        << "\n";
    doc << "  },\n";
    doc << "  \"all_verified\": " << (allVerified ? "true" : "false")
        << "\n";
    doc << "}\n";

    if (jsonStatsFile.empty()) {
        std::cout << doc.str();
    } else {
        std::ofstream os(jsonStatsFile);
        if (!os)
            fatal("cannot open stats file '%s'", jsonStatsFile.c_str());
        os << doc.str();
        std::fprintf(stderr, "wrote %s (%zu cells)\n",
                     jsonStatsFile.c_str(), grid.size());
    }
    return allVerified ? 0 : 1;
}
