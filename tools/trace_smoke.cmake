# Observability smoke test (ctest: trace_smoke).
# Runs mp3d with --trace/--json-stats, then self-validates the trace
# with trace_report --check and sanity-checks both output files.

set(trace "${WORK_DIR}/smoke.trace.json")
set(stats "${WORK_DIR}/smoke.stats.json")

execute_process(
    COMMAND ${TMSIM_RUN} --kernel mp3d --cpus 8 --quiet
            --trace ${trace} --json-stats ${stats}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "tmsim_run failed (rc=${rc})")
endif()

foreach(f ${trace} ${stats})
    if(NOT EXISTS ${f})
        message(FATAL_ERROR "missing output file ${f}")
    endif()
endforeach()

file(READ ${stats} statsText)
if(NOT statsText MATCHES "\"schema\": \"tmsim-stats\"")
    message(FATAL_ERROR "stats JSON missing schema header")
endif()
if(NOT statsText MATCHES "\"distributions\"")
    message(FATAL_ERROR "stats JSON missing distributions")
endif()

execute_process(
    COMMAND ${TRACE_REPORT} ${trace} --check
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "trace_report --check failed (rc=${rc})")
endif()
