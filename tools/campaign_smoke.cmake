# Campaign determinism smoke test (ctest: campaign_smoke).
# Fuzzes the same seed range with --jobs 1 and --jobs 4 and requires
# stdout and the merged stats registry to match byte for byte: the
# parallel campaign must be observationally identical to sequential.

set(outSeq "${WORK_DIR}/campaign_seq.out")
set(outPar "${WORK_DIR}/campaign_par.out")
set(statsSeq "${WORK_DIR}/campaign_seq.stats.json")
set(statsPar "${WORK_DIR}/campaign_par.stats.json")

execute_process(
    COMMAND ${TMSIM_FUZZ} --seeds 120 --quiet --jobs 1
            --out-dir ${WORK_DIR} --json-stats ${statsSeq}
    OUTPUT_FILE ${outSeq}
    RESULT_VARIABLE rcSeq)
execute_process(
    COMMAND ${TMSIM_FUZZ} --seeds 120 --quiet --jobs 4
            --out-dir ${WORK_DIR} --json-stats ${statsPar}
    OUTPUT_FILE ${outPar}
    RESULT_VARIABLE rcPar)

if(NOT rcSeq EQUAL 0)
    message(FATAL_ERROR "tmsim_fuzz --jobs 1 failed (rc=${rcSeq})")
endif()
if(NOT rcPar EQUAL rcSeq)
    message(FATAL_ERROR
            "exit codes differ: jobs=1 rc=${rcSeq}, jobs=4 rc=${rcPar}")
endif()

file(READ ${outSeq} seqText)
file(READ ${outPar} parText)
if(NOT seqText STREQUAL parText)
    message(FATAL_ERROR "stdout differs between --jobs 1 and --jobs 4")
endif()

file(READ ${statsSeq} seqStats)
file(READ ${statsPar} parStats)
if(NOT seqStats STREQUAL parStats)
    message(FATAL_ERROR
            "merged stats differ between --jobs 1 and --jobs 4")
endif()
if(NOT seqStats MATCHES "campaign.seeds")
    message(FATAL_ERROR "merged stats missing campaign counters")
endif()
