#!/usr/bin/env bash
# Perf-regression smoke: time a fixed 200-seed tmsim_fuzz batch
# (single job, quiet) and compare against the checked-in baseline in
# tools/perf_baseline.json.
#
# The gate is deliberately loose: only a regression of more than
# regression_threshold_pct (default 40%) over the baseline fails, so
# ordinary host-to-host and runner-to-runner variance does not flake.
# A softer tier warns (without failing) above warn_threshold_pct
# (default 20%) so creeping slowdowns surface before they trip the
# gate. Improvements never fail; refresh the baseline when the hot
# path gets faster so the gate stays meaningful.
#
# The measurement is not discarded: both the wall ms and the derived
# seeds/s are appended to the perf-trend file (BENCH_TREND.json, or
# TMSIM_TREND_FILE) via tools/bench_trend, so every smoke run extends
# the recorded trajectory.
#
# Usage:
#   tools/perf_smoke.sh <path-to-tmsim_fuzz>
#   TMSIM_PERF_BASELINE_MS=900 tools/perf_smoke.sh ...   # override
#   TMSIM_TREND_FILE=/tmp/t.ndjson tools/perf_smoke.sh ...

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
fuzz_bin="${1:?usage: perf_smoke.sh <path-to-tmsim_fuzz>}"
baseline_file="${repo_root}/tools/perf_baseline.json"

read -r baseline_ms threshold_pct warn_pct < <(python3 - "$baseline_file" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
print(doc["fuzz200_ms"], doc.get("regression_threshold_pct", 40),
      doc.get("warn_threshold_pct", 20))
EOF
)
baseline_ms="${TMSIM_PERF_BASELINE_MS:-${baseline_ms}}"

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

# Best of three: the batch is deterministic, so the minimum is the
# cleanest estimate of what the host can do.
best_ms=""
for _ in 1 2 3; do
    t0=$(date +%s%N)
    "${fuzz_bin}" --seeds 200 --quiet --out-dir "${workdir}" > /dev/null
    t1=$(date +%s%N)
    ms=$(( (t1 - t0) / 1000000 ))
    if [ -z "${best_ms}" ] || [ "${ms}" -lt "${best_ms}" ]; then
        best_ms="${ms}"
    fi
done

limit_ms=$(( baseline_ms * (100 + threshold_pct) / 100 ))
warn_ms=$(( baseline_ms * (100 + warn_pct) / 100 ))
echo "perf_smoke: 200-seed batch best-of-3 ${best_ms} ms" \
     "(baseline ${baseline_ms} ms, warn above ${warn_ms} ms," \
     "fail above ${limit_ms} ms)"

# Keep the measurement: append wall ms and seeds/s to the trend file.
seeds_per_s=$(python3 -c "print(round(200 / (${best_ms} / 1000.0), 1))")
"${repo_root}/tools/bench_trend" record \
    --metric fuzz200_ms --value "${best_ms}" --unit ms \
    --direction lower --baseline "${baseline_ms}" \
    --source perf_smoke || true
"${repo_root}/tools/bench_trend" record \
    --metric fuzz_seeds_per_second --value "${seeds_per_s}" \
    --unit seeds/s --direction higher --source perf_smoke || true

if [ "${best_ms}" -gt "${limit_ms}" ]; then
    echo "perf_smoke: FAIL - >${threshold_pct}% slower than baseline" >&2
    exit 1
fi
if [ "${best_ms}" -gt "${warn_ms}" ]; then
    echo "perf_smoke: WARN - >${warn_pct}% slower than baseline" \
         "(not failing; investigate before it crosses" \
         "${threshold_pct}%)" >&2
fi
echo "perf_smoke: OK"
