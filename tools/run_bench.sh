#!/usr/bin/env bash
# Build the simulator in RelWithDebInfo and run the google-benchmark
# targets, writing one BENCH_<target>.json per target into the repo
# root (next to the curated BENCH_*.json result files).
#
# Usage:
#   tools/run_bench.sh                 # all benchmark targets
#   tools/run_bench.sh abl_conflict_index   # just one target
#
# Extra arguments after the target list are forwarded to every
# benchmark binary (e.g. --benchmark_filter=BM_LazyBroadcast).

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build-bench}"

all_targets=(micro_sim_ops abl_conflict_index abl_hotpath)

# Plain-printf ablation exes that manage their own JSON output (no
# google-benchmark flags); each entry maps target -> output flag.
plain_targets=(abl_contention abl_capacity abl_jbb_scale)

targets=()
extra_args=()
for arg in "$@"; do
    case "$arg" in
        -*) extra_args+=("$arg") ;;
        *) targets+=("$arg") ;;
    esac
done
if [ "${#targets[@]}" -eq 0 ]; then
    targets=("${all_targets[@]}" "${plain_targets[@]}")
fi

gbench=()
plain=()
for t in "${targets[@]}"; do
    if [[ " ${plain_targets[*]} " == *" ${t} "* ]]; then
        plain+=("$t")
    else
        gbench+=("$t")
    fi
done

cmake -B "${build_dir}" -S "${repo_root}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${build_dir}" -j "$(nproc)" --target "${targets[@]}"

jobs="$(nproc)"

for t in "${gbench[@]+"${gbench[@]}"}"; do
    out="${repo_root}/BENCH_${t}.json"
    echo "== ${t} -> ${out}"
    "${build_dir}/bench/${t}" \
        --benchmark_format=json \
        --benchmark_out="${out}" \
        --benchmark_out_format=json \
        "${extra_args[@]+"${extra_args[@]}"}"
    # The conflict-index bench also has a pool-driven end-to-end grid
    # mode with deterministic simulated metrics.
    if [ "$t" = abl_conflict_index ]; then
        e2e="${repo_root}/BENCH_conflict_index_e2e.json"
        echo "== ${t} (sweep mode) -> ${e2e}"
        "${build_dir}/bench/${t}" --sweep-out "${e2e}" --jobs "${jobs}"
    fi
done

# The design x policy grid fans out across host cores; row order (and
# thus the JSON) is identical for any --jobs.
for t in "${plain[@]+"${plain[@]}"}"; do
    out="${repo_root}/BENCH_${t#abl_}.json"
    echo "== ${t} -> ${out}"
    "${build_dir}/bench/${t}" --out "${out}" --jobs "${jobs}" \
        "${extra_args[@]+"${extra_args[@]}"}"
done
