# CLI strictness regression (ctest: trace_report_args).
# --top used to go through bare atoi: "--top abc" became 0 (empty
# tables, exit 0) and a missing value walked off argv. Malformed values
# must now fail loudly; valid ones must still work.

# Minimal well-formed trace: metadata header, no events.
set(trace "${WORK_DIR}/args.trace.json")
file(WRITE ${trace}
     "{\"otherData\": {\"schema\": \"tmsim-trace\", \
\"schema_version\": 1, \"cycles\": 0, \"cpus\": 0, \"dropped\": 0}}\n")

# Malformed values: must exit nonzero and name the flag.
foreach(bad abc 10x -3 99999999999999999999)
    execute_process(
        COMMAND ${TRACE_REPORT} ${trace} --top ${bad}
        RESULT_VARIABLE rc
        ERROR_VARIABLE err
        OUTPUT_QUIET)
    if(rc EQUAL 0)
        message(FATAL_ERROR "--top ${bad} was accepted (rc=0)")
    endif()
    if(NOT err MATCHES "--top")
        message(FATAL_ERROR
                "--top ${bad} diagnostic does not name the flag: ${err}")
    endif()
endforeach()

# Missing value: usage error, not an argv overrun.
execute_process(
    COMMAND ${TRACE_REPORT} ${trace} --top
    RESULT_VARIABLE rc
    ERROR_QUIET OUTPUT_QUIET)
if(rc EQUAL 0)
    message(FATAL_ERROR "--top with no value was accepted (rc=0)")
endif()

# A well-formed value still parses (the empty trace itself is fine:
# trace_report reports zero events).
execute_process(
    COMMAND ${TRACE_REPORT} ${trace} --top 5
    RESULT_VARIABLE rc
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "--top 5 rejected (rc=${rc}): ${err}")
endif()
