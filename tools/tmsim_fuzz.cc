/**
 * @file
 * tmsim_fuzz — cross-config differential schedule fuzzer. For each
 * seed it generates a parallel transactional program, runs it under
 * the four contrasted HTM design points, checks every run against the
 * serializability oracle, and compares the mode-invariant final state
 * across configs. Failing seeds are shrunk and written as replay files
 * that this tool (and the ctest suite) can deterministically re-run.
 *
 *   tmsim_fuzz --seeds 1000
 *   tmsim_fuzz --replay tests/replays/foo.replay --expect-fail
 *   tmsim_fuzz --selftest-inject
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "check/fuzz_driver.hh"
#include "check/fuzz_program.hh"
#include "sim/logging.hh"

using namespace tmsim;

namespace {

void
usage()
{
    std::printf(
        "usage: tmsim_fuzz [options]\n"
        "  --seeds N          fuzz N sequential seeds (default 200)\n"
        "  --seed-start S     first seed (default 1)\n"
        "  --replay FILE      re-run one replay file instead of fuzzing\n"
        "  --expect-fail      with --replay: exit 0 iff the replay "
        "still fails\n"
        "  --out-dir DIR      where failing-seed replays are written "
        "(default .)\n"
        "  --max-ticks N      per-run simulated tick limit\n"
        "  --shrink-runs N    differential-run budget for shrinking "
        "(default 400)\n"
        "  --contention P     force one contention policy (requester|"
        "timestamp|karma|polite|hybrid)\n"
        "                     instead of the per-seed draw; also "
        "overrides replays\n"
        "  --selftest-inject  verify the pipeline catches an injected "
        "bug\n"
        "  --quiet            suppress simulator log output\n");
}

std::string
writeReplay(const std::string& out_dir, const FuzzProgram& p,
            const std::string& tag)
{
    std::ostringstream name;
    name << out_dir << "/fuzz_" << tag << ".replay";
    std::ofstream os(name.str());
    if (!os) {
        std::fprintf(stderr, "cannot write replay file %s\n",
                     name.str().c_str());
        return {};
    }
    os << p.serialize();
    return name.str();
}

void
reportFailure(const FuzzProgram& shrunk, const FuzzFailure& fail,
              const std::string& replay_path)
{
    std::printf("FAIL seed %llu [%s]: %s\n",
                static_cast<unsigned long long>(shrunk.seed),
                fail.config.c_str(), fail.message.c_str());
    if (!replay_path.empty())
        std::printf("     replay written to %s\n", replay_path.c_str());
}

/**
 * End-to-end self-test of the checking pipeline: plant a deliberately
 * unrecorded store into a generated program, assert the oracle flags
 * it, shrink, write + re-parse the replay, and assert the failure
 * reproduces identically. Exercises the same code paths a real
 * simulator bug would take.
 */
int
selftestInject(const std::string& out_dir, int shrink_runs,
               Tick max_ticks)
{
    FuzzProgram p = generateProgram(7);
    p.injectHiddenStoreAfter = 0;

    const FuzzFailure fail = runProgramAllConfigs(p, max_ticks);
    if (!fail.failed) {
        std::printf("selftest: FAIL (injected hidden store was not "
                    "detected)\n");
        return 1;
    }
    std::printf("selftest: injected bug detected [%s]: %s\n",
                fail.config.c_str(), fail.message.c_str());

    const FuzzProgram shrunk = shrinkProgram(p, shrink_runs, max_ticks);
    const FuzzFailure shrunkFail = runProgramAllConfigs(shrunk, max_ticks);
    if (!shrunkFail.failed) {
        std::printf("selftest: FAIL (shrunk program no longer fails)\n");
        return 1;
    }
    std::printf("selftest: shrunk to %d thread(s), %zu tx(s)\n",
                shrunk.numThreads(), shrunk.txs.size());

    const std::string path = writeReplay(out_dir, shrunk, "selftest");
    if (path.empty())
        return 1;
    std::ifstream is(path);
    std::stringstream buf;
    buf << is.rdbuf();
    FuzzProgram reparsed;
    std::string err;
    if (!FuzzProgram::parse(buf.str(), reparsed, &err)) {
        std::printf("selftest: FAIL (replay did not re-parse: %s)\n",
                    err.c_str());
        return 1;
    }
    const FuzzFailure replayFail =
        runProgramAllConfigs(reparsed, max_ticks);
    if (!replayFail.failed || replayFail.config != shrunkFail.config) {
        std::printf("selftest: FAIL (replay did not reproduce the "
                    "original failure)\n");
        return 1;
    }
    std::printf("selftest: replay reproduced [%s]: %s\n",
                replayFail.config.c_str(), replayFail.message.c_str());
    std::printf("selftest: PASS\n");
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    std::uint64_t seeds = 200;
    std::uint64_t seedStart = 1;
    std::string replayFile;
    std::string outDir = ".";
    Tick maxTicks = FuzzInterp::defaultMaxTicks;
    int shrinkRuns = 400;
    bool expectFail = false;
    bool selftest = false;
    bool quiet = false;
    bool forcePolicy = false;
    ContentionPolicy policy = ContentionPolicy::Requester;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--seeds") {
            seeds = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--seed-start") {
            seedStart = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--replay") {
            replayFile = next();
        } else if (arg == "--expect-fail") {
            expectFail = true;
        } else if (arg == "--out-dir") {
            outDir = next();
        } else if (arg == "--max-ticks") {
            maxTicks = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--shrink-runs") {
            shrinkRuns = std::atoi(next().c_str());
        } else if (arg == "--contention") {
            const std::string name = next();
            if (!contentionPolicyFromName(name, policy))
                fatal("unknown contention policy '%s'", name.c_str());
            forcePolicy = true;
        } else if (arg == "--selftest-inject") {
            selftest = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    setQuiet(quiet);

    if (selftest)
        return selftestInject(outDir, shrinkRuns, maxTicks);

    if (!replayFile.empty()) {
        std::ifstream is(replayFile);
        if (!is)
            fatal("cannot open replay file '%s'", replayFile.c_str());
        std::stringstream buf;
        buf << is.rdbuf();
        FuzzProgram p;
        std::string err;
        if (!FuzzProgram::parse(buf.str(), p, &err))
            fatal("malformed replay file: %s", err.c_str());
        if (forcePolicy)
            p.contention = policy;
        const FuzzFailure fail = runProgramAllConfigs(p, maxTicks);
        if (fail.failed) {
            std::printf("replay FAILS [%s]: %s\n", fail.config.c_str(),
                        fail.message.c_str());
            return expectFail ? 0 : 1;
        }
        std::printf("replay passes across all configs\n");
        if (expectFail) {
            std::printf("error: --expect-fail but the replay no "
                        "longer fails\n");
            return 1;
        }
        return 0;
    }

    constexpr int maxReported = 5;
    int failures = 0;
    for (std::uint64_t s = seedStart; s < seedStart + seeds; ++s) {
        FuzzProgram p = generateProgram(s);
        if (forcePolicy)
            p.contention = policy;
        const FuzzFailure fail = runProgramAllConfigs(p, maxTicks);
        if (!fail.failed) {
            if ((s - seedStart + 1) % 100 == 0) {
                std::printf("... %llu/%llu seeds clean\n",
                            static_cast<unsigned long long>(
                                s - seedStart + 1),
                            static_cast<unsigned long long>(seeds));
                std::fflush(stdout);
            }
            continue;
        }
        ++failures;
        const FuzzProgram shrunk = shrinkProgram(p, shrinkRuns, maxTicks);
        // Shrinking re-checks every candidate, so the shrunk program
        // still fails (possibly with a different first-failing config).
        const FuzzFailure sf = runProgramAllConfigs(shrunk, maxTicks);
        const std::string path = writeReplay(
            outDir, shrunk, "seed_" + std::to_string(s));
        reportFailure(shrunk, sf.failed ? sf : fail, path);
        if (failures >= maxReported) {
            std::printf("stopping after %d failures\n", failures);
            break;
        }
    }

    if (failures == 0) {
        std::printf("OK: %llu seed(s) x 4 configs, oracle clean, "
                    "mode-invariant state identical\n",
                    static_cast<unsigned long long>(seeds));
        return 0;
    }
    std::printf("%d failing seed(s)\n", failures);
    return 1;
}
