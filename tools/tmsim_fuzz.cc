/**
 * @file
 * tmsim_fuzz — cross-config differential schedule fuzzer. For each
 * seed it generates a parallel transactional program, runs it under
 * the four contrasted HTM design points, checks every run against the
 * serializability oracle, and compares the mode-invariant final state
 * across configs. Failing seeds are shrunk and written as replay files
 * that this tool (and the ctest suite) can deterministically re-run.
 *
 * Campaigns fan out across host worker threads with --jobs N: each
 * seed is one isolated job (own machines, stats, interpreters) and the
 * results merge in seed order, so verdicts, shrunk replays, merged
 * stats and all output are bitwise-identical to a --jobs 1 run of the
 * same seeds. Failing seeds are shrunk sequentially on the merging
 * thread, keeping shrink determinism trivially independent of the
 * worker count.
 *
 *   tmsim_fuzz --seeds 1000 --jobs 8
 *   tmsim_fuzz --replay tests/replays/foo.replay --expect-fail
 *   tmsim_fuzz --selftest-inject
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "check/fuzz_driver.hh"
#include "check/fuzz_program.hh"
#include "sim/campaign.hh"
#include "sim/logging.hh"
#include "sim/parse.hh"
#include "sim/stats.hh"

using namespace tmsim;

namespace {

void
usage()
{
    std::printf(
        "usage: tmsim_fuzz [options]\n"
        "  --seeds N          fuzz N sequential seeds (default 200)\n"
        "  --seed-start S     first seed (default 1)\n"
        "  --jobs N           host worker threads for the campaign "
        "(default 1;\n"
        "                     results are identical for any N)\n"
        "  --json-stats FILE  write the campaign's merged stats "
        "registry as JSON\n"
        "  --replay FILE      re-run one replay file instead of fuzzing\n"
        "  --expect-fail      with --replay: exit 0 iff the replay "
        "still fails\n"
        "  --out-dir DIR      where failing-seed replays are written "
        "(default .)\n"
        "  --max-ticks N      per-run simulated tick limit\n"
        "  --shrink-runs N    differential-run budget for shrinking "
        "(default 400)\n"
        "  --contention P     force one contention policy (requester|"
        "timestamp|karma|polite|hybrid)\n"
        "                     instead of the per-seed draw; also "
        "overrides replays\n"
        "  --rset-cap N       bound every config's per-level read-set "
        "to N lines\n"
        "  --wset-cap N       bound every config's per-level write-set "
        "to N lines\n"
        "  --capacity-mode M  abort|overflow: how over-cap accesses "
        "are handled\n"
        "  --store dense|sparse  backing-store host representation "
        "(default\n"
        "                     sparse; results are identical)\n"
        "                     (default abort); like --contention, "
        "caps also\n"
        "                     override replays and survive shrinking\n"
        "  --selftest-inject  verify the pipeline catches an injected "
        "bug\n"
        "  --progress         live progress line on stderr (merged/"
        "total,\n"
        "                     failures, seeds/s, ETA)\n"
        "  --heartbeat FILE   stream NDJSON heartbeat records (see "
        "STATS.md);\n"
        "                     the final record summarises per-seed "
        "wall and\n"
        "                     merge time distributions\n"
        "  --quiet            suppress simulator log output\n");
}

std::string
writeReplay(const std::string& out_dir, const FuzzProgram& p,
            const std::string& tag)
{
    std::ostringstream name;
    name << out_dir << "/fuzz_" << tag << ".replay";
    std::ofstream os(name.str());
    if (!os) {
        std::fprintf(stderr, "cannot write replay file %s\n",
                     name.str().c_str());
        return {};
    }
    os << p.serialize();
    return name.str();
}

void
reportFailure(const FuzzProgram& shrunk, const FuzzFailure& fail,
              const std::string& replay_path)
{
    std::printf("FAIL seed %llu [%s]: %s\n",
                static_cast<unsigned long long>(shrunk.seed),
                fail.config.c_str(), fail.message.c_str());
    if (!replay_path.empty())
        std::printf("     replay written to %s\n", replay_path.c_str());
}

/**
 * End-to-end self-test of the checking pipeline: plant a deliberately
 * unrecorded store into a generated program, assert the oracle flags
 * it, shrink, write + re-parse the replay, and assert the failure
 * reproduces identically. Exercises the same code paths a real
 * simulator bug would take.
 */
int
selftestInject(const std::string& out_dir, int shrink_runs,
               Tick max_ticks)
{
    FuzzProgram p = generateProgram(7);
    p.injectHiddenStoreAfter = 0;

    const FuzzFailure fail = runProgramAllConfigs(p, max_ticks);
    if (!fail.failed) {
        std::printf("selftest: FAIL (injected hidden store was not "
                    "detected)\n");
        return 1;
    }
    std::printf("selftest: injected bug detected [%s]: %s\n",
                fail.config.c_str(), fail.message.c_str());

    const FuzzProgram shrunk = shrinkProgram(p, shrink_runs, max_ticks);
    const FuzzFailure shrunkFail = runProgramAllConfigs(shrunk, max_ticks);
    if (!shrunkFail.failed) {
        std::printf("selftest: FAIL (shrunk program no longer fails)\n");
        return 1;
    }
    std::printf("selftest: shrunk to %d thread(s), %zu tx(s)\n",
                shrunk.numThreads(), shrunk.txs.size());

    const std::string path = writeReplay(out_dir, shrunk, "selftest");
    if (path.empty())
        return 1;
    std::ifstream is(path);
    std::stringstream buf;
    buf << is.rdbuf();
    FuzzProgram reparsed;
    std::string err;
    if (!FuzzProgram::parse(buf.str(), reparsed, &err)) {
        std::printf("selftest: FAIL (replay did not re-parse: %s)\n",
                    err.c_str());
        return 1;
    }
    const FuzzFailure replayFail =
        runProgramAllConfigs(reparsed, max_ticks);
    if (!replayFail.failed || replayFail.config != shrunkFail.config) {
        std::printf("selftest: FAIL (replay did not reproduce the "
                    "original failure)\n");
        return 1;
    }
    std::printf("selftest: replay reproduced [%s]: %s\n",
                replayFail.config.c_str(), replayFail.message.c_str());
    std::printf("selftest: PASS\n");
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    std::uint64_t seeds = 200;
    std::uint64_t seedStart = 1;
    std::string replayFile;
    std::string outDir = ".";
    std::string jsonStatsFile;
    Tick maxTicks = FuzzInterp::defaultMaxTicks;
    int shrinkRuns = 400;
    int jobs = 1;
    bool expectFail = false;
    bool selftest = false;
    bool quiet = false;
    bool progress = false;
    std::string heartbeatFile;
    bool forcePolicy = false;
    ContentionPolicy policy = ContentionPolicy::Requester;
    int rsetCap = 0;
    int wsetCap = 0;
    CapacityMode capMode = CapacityMode::Abort;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--seeds") {
            seeds = parseU64(next(), "--seeds");
            if (seeds == 0)
                fatal("--seeds must be >= 1");
        } else if (arg == "--seed-start") {
            seedStart = parseU64(next(), "--seed-start");
        } else if (arg == "--jobs") {
            jobs = parseInt(next(), "--jobs", 1, 1024);
        } else if (arg == "--json-stats") {
            jsonStatsFile = next();
        } else if (arg == "--replay") {
            replayFile = next();
        } else if (arg == "--expect-fail") {
            expectFail = true;
        } else if (arg == "--out-dir") {
            outDir = next();
        } else if (arg == "--max-ticks") {
            maxTicks = parseU64(next(), "--max-ticks");
        } else if (arg == "--shrink-runs") {
            shrinkRuns = parseInt(next(), "--shrink-runs", 0);
        } else if (arg == "--contention") {
            const std::string name = next();
            if (!contentionPolicyFromName(name, policy))
                fatal("unknown contention policy '%s'", name.c_str());
            forcePolicy = true;
        } else if (arg == "--rset-cap") {
            rsetCap = parseInt(next(), "--rset-cap", 0, 100000);
        } else if (arg == "--wset-cap") {
            wsetCap = parseInt(next(), "--wset-cap", 0, 100000);
        } else if (arg == "--capacity-mode") {
            const std::string name = next();
            if (!capacityModeFromName(name, capMode))
                fatal("unknown capacity mode '%s'", name.c_str());
        } else if (arg == "--store") {
            const std::string name = next();
            StoreMode mode;
            if (!storeModeFromName(name, mode))
                fatal("unknown store mode '%s'", name.c_str());
            setDefaultStoreMode(mode);
        } else if (arg == "--selftest-inject") {
            selftest = true;
        } else if (arg == "--progress") {
            progress = true;
        } else if (arg == "--heartbeat") {
            heartbeatFile = next();
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    defaultLogContext().quiet = quiet;

    // Forced-configuration overrides, applied identically to generated,
    // replayed and re-generated (shrink input) programs.
    auto applyForced = [&](FuzzProgram& p) {
        if (forcePolicy)
            p.contention = policy;
        if (rsetCap > 0 || wsetCap > 0) {
            p.rsetCap = rsetCap;
            p.wsetCap = wsetCap;
            p.capacityMode = capMode;
        }
    };

    if (selftest)
        return selftestInject(outDir, shrinkRuns, maxTicks);

    if (!replayFile.empty()) {
        std::ifstream is(replayFile);
        if (!is)
            fatal("cannot open replay file '%s'", replayFile.c_str());
        std::stringstream buf;
        buf << is.rdbuf();
        FuzzProgram p;
        std::string err;
        if (!FuzzProgram::parse(buf.str(), p, &err))
            fatal("malformed replay file: %s", err.c_str());
        applyForced(p);
        const FuzzFailure fail = runProgramAllConfigs(p, maxTicks);
        if (fail.failed) {
            std::printf("replay FAILS [%s]: %s\n", fail.config.c_str(),
                        fail.message.c_str());
            return expectFail ? 0 : 1;
        }
        std::printf("replay passes across all configs\n");
        if (expectFail) {
            std::printf("error: --expect-fail but the replay no "
                        "longer fails\n");
            return 1;
        }
        return 0;
    }

    // The campaign: one job per seed, each with fully isolated
    // machines/stats/interpreters, merged in seed order so every
    // output below is invariant under --jobs.
    struct SeedResult
    {
        FuzzFailure fail;
        StatsRegistry stats;
    };

    constexpr int maxReported = 5;
    int failures = 0;
    StatsRegistry merged;

    CampaignOptions opt;
    opt.jobs = jobs;
    opt.quiet = quiet;
    // Telemetry goes to stderr / the heartbeat file only; the merged
    // registry stays wall-clock-free so --jobs N output is identical.
    opt.progress = progress;
    opt.heartbeatFile = heartbeatFile;
    opt.failures = [&]() -> std::uint64_t {
        return static_cast<std::uint64_t>(failures);
    };
    const CampaignResult cres = runCampaign<SeedResult>(
        static_cast<std::size_t>(seeds), opt,
        [&](std::size_t i) {
            FuzzProgram p = generateProgram(seedStart + i);
            applyForced(p);
            SeedResult r;
            r.fail = runProgramAllConfigs(p, maxTicks, &r.stats);
            return r;
        },
        [&](std::size_t i, SeedResult&& r) {
            merged.mergeFrom(r.stats);
            if (!r.fail.failed) {
                if ((i + 1) % 100 == 0) {
                    std::printf("... %llu/%llu seeds clean\n",
                                static_cast<unsigned long long>(i + 1),
                                static_cast<unsigned long long>(seeds));
                    std::fflush(stdout);
                }
                return true;
            }
            ++failures;
            const std::uint64_t s = seedStart + i;
            FuzzProgram p = generateProgram(s);
            applyForced(p);
            // Shrink sequentially on the merging thread: deterministic
            // regardless of how many workers ran the campaign.
            const FuzzProgram shrunk =
                shrinkProgram(p, shrinkRuns, maxTicks);
            // Shrinking re-checks every candidate, so the shrunk
            // program still fails (possibly with a different
            // first-failing config).
            const FuzzFailure sf = runProgramAllConfigs(shrunk, maxTicks);
            const std::string path = writeReplay(
                outDir, shrunk, "seed_" + std::to_string(s));
            reportFailure(shrunk, sf.failed ? sf : r.fail, path);
            if (failures >= maxReported) {
                std::printf("stopping after %d failures\n", failures);
                return false;
            }
            return true;
        });

    if (cres.failed) {
        std::fprintf(stderr,
                     "fatal: campaign cancelled at seed %llu: %s\n",
                     static_cast<unsigned long long>(seedStart +
                                                     cres.failedJob),
                     cres.message.c_str());
        return 1;
    }

    if (!jsonStatsFile.empty()) {
        merged.counter("campaign.seeds").set(cres.merged);
        merged.counter("campaign.seeds_failing")
            .set(static_cast<std::uint64_t>(failures));
        merged.counter("campaign.configs_per_seed").set(4);
        std::ofstream os(jsonStatsFile);
        if (!os)
            fatal("cannot open stats file '%s'", jsonStatsFile.c_str());
        merged.dumpJson(os);
    }

    if (failures == 0) {
        std::printf("OK: %llu seed(s) x 4 configs, oracle clean, "
                    "mode-invariant state identical\n",
                    static_cast<unsigned long long>(seeds));
        return 0;
    }
    std::printf("%d failing seed(s)\n", failures);
    return 1;
}
