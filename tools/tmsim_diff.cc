/**
 * @file
 * tmsim_diff — cross-ENGINE differential fuzzer. For each seed it
 * generates the same parallel transactional program tmsim_fuzz uses,
 * runs it once on the cycle simulator (lazy write-buffer config) and
 * N times on the native STM backend (src/stm, really parallel host
 * threads), checks every run against the serializability oracle, and
 * compares the mode-invariant final regions across engines.
 *
 * The STM is nondeterministically scheduled, so the contract is NOT
 * bit-identical commit order: each run's *observed* serialization
 * order must replay cleanly through the golden model, and the
 * commutative mode-invariant regions (Shared, Private) must reach the
 * same final values as the simulator. Base addresses differ between
 * engines, so the cross-engine comparison is positional.
 *
 *   tmsim_diff --seeds 500
 *   tmsim_diff --replay tests/replays/foo.replay --expect-fail
 *   tmsim_diff --selftest-inject
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "check/fuzz_driver.hh"
#include "check/fuzz_program.hh"
#include "check/oracle.hh"
#include "check/stm_interp.hh"
#include "sim/logging.hh"
#include "sim/parse.hh"
#include "sim/stats.hh"

using namespace tmsim;

namespace {

void
usage()
{
    std::printf(
        "usage: tmsim_diff [options]\n"
        "  --seeds N          diff N sequential seeds (default 200)\n"
        "  --seed-start S     first seed (default 1)\n"
        "  --repeat N         STM runs per seed (default 2; each run\n"
        "                     is a fresh nondeterministic schedule)\n"
        "  --json-stats FILE  write merged sim+stm stats as JSON\n"
        "  --replay FILE      re-run one replay file instead of "
        "fuzzing\n"
        "  --expect-fail      with --replay: exit 0 iff the replay "
        "still fails\n"
        "  --out-dir DIR      where failing-seed replays are written "
        "(default .)\n"
        "  --max-ticks N      simulator tick limit per run\n"
        "  --timeout-ms N     STM watchdog per run (default 10000)\n"
        "  --selftest-inject  verify the STM pipeline catches an "
        "injected bug\n"
        "  --quiet            suppress simulator log output\n");
}

struct DiffFailure
{
    bool failed = false;
    std::string engine;  ///< "sim", "stm run K", or "sim-vs-stm"
    std::string message;

    explicit operator bool() const { return failed; }
};

std::string
describeInvariantSlot(const FuzzProgram& p, size_t idx)
{
    const size_t slots = static_cast<size_t>(p.slotsPerRegion);
    std::ostringstream os;
    os << (idx < slots ? "Shared" : "Private") << "[" << idx % slots
       << "]";
    return os.str();
}

/**
 * One seed end-to-end: simulator reference run (oracle-checked), then
 * @p repeat STM runs (each oracle-checked and compared positionally
 * against the simulator's mode-invariant snapshot).
 */
DiffFailure
diffProgram(const FuzzProgram& p, Tick max_ticks, int repeat,
            const StmConfig& scfg, StatsRegistry* stats_out)
{
    // Reference: the lazy write-buffer design point, the closest
    // simulated analogue of a lazy-versioning STM.
    HtmConfig simCfg;
    for (const FuzzConfig& c : fuzzConfigs(p)) {
        if (c.name == "lazy-wb")
            simCfg = c.htm;
    }
    FuzzInterp interp(p, simCfg);
    const ObservedRun simRun = interp.run(max_ticks, stats_out);
    const OracleVerdict simV = checkRun(p, simRun);
    if (!simV.ok)
        return DiffFailure{true, "sim", simV.message};

    for (int k = 0; k < repeat; ++k) {
        StmFuzzInterp stm(p, scfg);
        const ObservedRun stmRun = stm.run(stats_out);
        const OracleVerdict v = checkRun(p, stmRun);
        const std::string tag = "stm run " + std::to_string(k + 1);
        if (!v.ok)
            return DiffFailure{true, tag, v.message};
        if (stmRun.finalInvariant.size() !=
            simRun.finalInvariant.size()) {
            return DiffFailure{true, "sim-vs-stm",
                               "invariant snapshot shape differs"};
        }
        for (size_t i = 0; i < simRun.finalInvariant.size(); ++i) {
            const Word sv = simRun.finalInvariant[i].second;
            const Word tv = stmRun.finalInvariant[i].second;
            if (sv == tv)
                continue;
            std::ostringstream os;
            os << "cross-engine divergence at "
               << describeInvariantSlot(p, i) << ": sim finished with 0x"
               << std::hex << sv << " but " << tag
               << " finished with 0x" << tv;
            return DiffFailure{true, "sim-vs-stm", os.str()};
        }
    }
    return DiffFailure{};
}

std::string
writeReplay(const std::string& out_dir, const FuzzProgram& p,
            const std::string& tag)
{
    std::ostringstream name;
    name << out_dir << "/diff_" << tag << ".replay";
    std::ofstream os(name.str());
    if (!os) {
        std::fprintf(stderr, "cannot write replay file %s\n",
                     name.str().c_str());
        return {};
    }
    os << p.serialize();
    return name.str();
}

/**
 * Self-test: plant a deliberately unrecorded store (executed on the
 * STM as an unlogged naked store) and assert the serializability
 * oracle flags the STM run. Validates that the cross-engine pipeline
 * can actually catch a bug, not just that clean seeds pass.
 */
int
selftestInject(Tick max_ticks, const StmConfig& scfg)
{
    FuzzProgram p = generateProgram(7);
    p.injectHiddenStoreAfter = 0;

    StmFuzzInterp stm(p, scfg);
    const ObservedRun run = stm.run(nullptr);
    const OracleVerdict v = checkRun(p, run);
    if (v.ok) {
        std::printf("selftest: FAIL (injected hidden store was not "
                    "detected on the stm engine)\n");
        return 1;
    }
    std::printf("selftest: injected bug detected [stm]: %s\n",
                v.message.c_str());

    // The full differential path must flag it too.
    const DiffFailure df = diffProgram(p, max_ticks, 1, scfg, nullptr);
    if (!df.failed) {
        std::printf("selftest: FAIL (differential driver missed the "
                    "injected bug)\n");
        return 1;
    }
    std::printf("selftest: differential driver caught it [%s]: %s\n",
                df.engine.c_str(), df.message.c_str());
    std::printf("selftest: PASS\n");
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    std::uint64_t seeds = 200;
    std::uint64_t seedStart = 1;
    int repeat = 2;
    std::string replayFile;
    std::string outDir = ".";
    std::string jsonStatsFile;
    Tick maxTicks = FuzzInterp::defaultMaxTicks;
    std::uint64_t timeoutMs = 10'000;
    bool expectFail = false;
    bool selftest = false;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--seeds") {
            seeds = parseU64(next(), "--seeds");
            if (seeds == 0)
                fatal("--seeds must be >= 1");
        } else if (arg == "--seed-start") {
            seedStart = parseU64(next(), "--seed-start");
        } else if (arg == "--repeat") {
            repeat = parseInt(next(), "--repeat", 1, 1000);
        } else if (arg == "--json-stats") {
            jsonStatsFile = next();
        } else if (arg == "--replay") {
            replayFile = next();
        } else if (arg == "--expect-fail") {
            expectFail = true;
        } else if (arg == "--out-dir") {
            outDir = next();
        } else if (arg == "--max-ticks") {
            maxTicks = parseU64(next(), "--max-ticks");
        } else if (arg == "--timeout-ms") {
            timeoutMs = parseU64(next(), "--timeout-ms");
        } else if (arg == "--selftest-inject") {
            selftest = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    defaultLogContext().quiet = quiet;

    StmConfig scfg;
    scfg.opTimeout = std::chrono::milliseconds(timeoutMs);

    if (selftest)
        return selftestInject(maxTicks, scfg);

    if (!replayFile.empty()) {
        std::ifstream is(replayFile);
        if (!is)
            fatal("cannot open replay file '%s'", replayFile.c_str());
        std::stringstream buf;
        buf << is.rdbuf();
        FuzzProgram p;
        std::string err;
        if (!FuzzProgram::parse(buf.str(), p, &err))
            fatal("malformed replay file: %s", err.c_str());
        const DiffFailure fail =
            diffProgram(p, maxTicks, repeat, scfg, nullptr);
        if (fail.failed) {
            std::printf("replay FAILS [%s]: %s\n", fail.engine.c_str(),
                        fail.message.c_str());
            return expectFail ? 0 : 1;
        }
        std::printf("replay passes on both engines\n");
        if (expectFail) {
            std::printf("error: --expect-fail but the replay no "
                        "longer fails\n");
            return 1;
        }
        return 0;
    }

    // Seeds run sequentially: each STM run already fans out across
    // host threads, so a seed-level worker pool would only fight it
    // for cores and add scheduling noise to the diff.
    constexpr int maxReported = 5;
    int failures = 0;
    StatsRegistry merged;

    for (std::uint64_t i = 0; i < seeds; ++i) {
        const std::uint64_t s = seedStart + i;
        const FuzzProgram p = generateProgram(s);
        StatsRegistry stats;
        const DiffFailure fail =
            diffProgram(p, maxTicks, repeat, scfg, &stats);
        merged.mergeFrom(stats);
        if (!fail.failed) {
            if ((i + 1) % 100 == 0) {
                std::printf("... %llu/%llu seeds clean\n",
                            static_cast<unsigned long long>(i + 1),
                            static_cast<unsigned long long>(seeds));
                std::fflush(stdout);
            }
            continue;
        }
        ++failures;
        const std::string path =
            writeReplay(outDir, p, "seed_" + std::to_string(s));
        std::printf("FAIL seed %llu [%s]: %s\n",
                    static_cast<unsigned long long>(s),
                    fail.engine.c_str(), fail.message.c_str());
        if (!path.empty())
            std::printf("     replay written to %s\n", path.c_str());
        if (failures >= maxReported) {
            std::printf("stopping after %d failures\n", failures);
            break;
        }
    }

    if (!jsonStatsFile.empty()) {
        merged.counter("diff.seeds").set(seeds);
        merged.counter("diff.seeds_failing")
            .set(static_cast<std::uint64_t>(failures));
        merged.counter("diff.stm_runs_per_seed")
            .set(static_cast<std::uint64_t>(repeat));
        std::ofstream os(jsonStatsFile);
        if (!os)
            fatal("cannot open stats file '%s'", jsonStatsFile.c_str());
        merged.dumpJson(os);
    }

    if (failures == 0) {
        std::printf("OK: %llu seed(s), sim + %d stm run(s) each, "
                    "oracle clean, invariant state identical\n",
                    static_cast<unsigned long long>(seeds), repeat);
        return 0;
    }
    std::printf("%d failing seed(s)\n", failures);
    return 1;
}
