/**
 * @file
 * Ablation A2 (paper section 6.3): the two cache schemes for nesting
 * support — multi-tracking R/W bits per level (fig 4a) vs associativity
 * (NL field + version replication, fig 4b) — and eager vs lazy merging
 * cost at closed-nested commits.
 */

#include <cstdio>

#include "sim/logging.hh"
#include "workloads/kernel_mp3d.hh"
#include "workloads/kernel_specjbb.hh"

using namespace tmsim;

namespace {

void
row(const char* name, const KernelFactory& make)
{
    struct Cfg
    {
        const char* tag;
        NestScheme scheme;
        bool lazyMerge;
    } cfgs[] = {
        {"assoc+lazy", NestScheme::Associativity, true},
        {"assoc+eager", NestScheme::Associativity, false},
        {"multitrack+lazy", NestScheme::MultiTracking, true},
        {"multitrack+eager", NestScheme::MultiTracking, false},
    };

    std::printf("%-14s", name);
    RunResult base;
    bool first = true;
    for (const Cfg& c : cfgs) {
        HtmConfig htm = HtmConfig::paperLazy();
        htm.scheme = c.scheme;
        htm.lazyMerge = c.lazyMerge;
        auto k = make();
        RunResult r = runKernel(*k, htm, 8);
        if (first) {
            base = r;
            first = false;
        }
        std::printf(" %9llu (%4.2fx%s)",
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<double>(base.cycles) /
                        static_cast<double>(r.cycles),
                    r.verified ? "" : " BAD");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    defaultLogContext().quiet = true;
    std::printf("# Ablation: nesting cache scheme x merge policy, "
                "8 CPUs, cycles (relative speed vs assoc+lazy, higher = faster)\n");
    std::printf("%-14s %18s %18s %18s %18s\n", "benchmark", "assoc+lazy",
                "assoc+eager", "mtrack+lazy", "mtrack+eager");
    row("mp3d", [] { return std::make_unique<Mp3dKernel>(); });
    row("specjbb-closed", [] {
        return std::make_unique<SpecJbbKernel>(JbbVariant::ClosedNested);
    });
    return 0;
}
