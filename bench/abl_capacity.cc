/**
 * @file
 * Ablation A12 — bounded HTM capacity. Sweeps the per-level read/
 * write-set line caps across two op-class-bearing kernels and both
 * capacity modes, and reports how the abort rate and the commit
 * throughput trade as the hardware footprint shrinks.
 *
 * The interesting comparisons:
 *  - abort mode: the capacity-abort rate must rise monotonically as
 *    the caps shrink (a transaction that did not fit in 8 lines will
 *    not fit in 4); the bench enforces this and fails if the model
 *    ever violates it;
 *  - overflow mode: zero capacity aborts by construction — spilled
 *    lines ride the software overflow structure instead — at the cost
 *    of the per-transaction overflowCheckPenalty, visible as a lower
 *    commits/kcycle than the unbounded baseline but a higher one than
 *    tight-cap abort mode (the paper's VTM/XTM virtualisation
 *    argument, sec 2.3);
 *  - per-op-class p99: long transactions (specjbb neworder, contend
 *    long) absorb nearly all of the capacity pain; short ones barely
 *    move.
 *
 * With --out FILE the sweep is also written as JSON (the curated copy
 * lives at BENCH_capacity.json in the repo root; tools/bench_trend
 * collects the headline numbers from it). With --jobs N the kernel x
 * cap x mode grid fans out across host worker threads; rows merge in
 * grid order, so all output is identical for any N.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "sim/campaign.hh"
#include "sim/logging.hh"
#include "sim/parse.hh"
#include "workloads/harness.hh"

using namespace tmsim;

namespace {

/** Caps swept, widest first; 0 is the unbounded baseline. */
const int caps[] = {0, 32, 16, 8, 4};

/** Kernels chosen because they register op classes, so the JSON can
 *  report per-business-op p99 next to the aggregate throughput. */
struct KernelInfo
{
    const char* name;
    std::vector<const char*> opClasses;
};

const KernelInfo kernels[] = {
    // mp3d/barnes: real read/write footprints, the capacity story.
    {"mp3d", {}},
    {"barnes", {}},
    // specjbb-closed: business-op classes split the p99 impact.
    {"specjbb-closed", {"neworder", "payment", "orderstatus"}},
    // contend: 1-line footprint control — caps must be a no-op.
    {"contend", {"long", "short"}},
};

struct Cell
{
    const KernelInfo* k;
    int cap;
    CapacityMode mode;
};

/** Everything one grid cell measures. */
struct CellResult
{
    RunResult r;
    std::uint64_t capAborts = 0;
    std::uint64_t capRestarts = 0;
    std::uint64_t capSpills = 0;
    std::uint64_t ovfChecks = 0;
    /** p99 of htm.tx_duration_committed.<class>, in cell op-class
     *  order; 0 when the class never committed a transaction. */
    std::vector<std::uint64_t> p99;
};

struct Row
{
    Cell cell;
    CellResult res;
    double abortRate;   ///< capacity aborts per commit
    double throughput;  ///< commits per kilocycle
};

const char*
modeLabel(const Cell& c)
{
    return c.cap == 0 ? "unbounded" : capacityModeName(c.mode);
}

} // namespace

int
main(int argc, char** argv)
{
    std::string outFile;
    int cpus = 8;
    int jobs = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            outFile = argv[++i];
        } else if (std::strcmp(argv[i], "--cpus") == 0 && i + 1 < argc) {
            cpus = parseInt(argv[++i], "--cpus", 1, 64);
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs = parseInt(argv[++i], "--jobs", 1, 1024);
        } else {
            std::fprintf(stderr, "usage: abl_capacity [--cpus N] "
                                 "[--jobs N] [--out FILE]\n");
            return 2;
        }
    }

    defaultLogContext().quiet = true;
    std::printf("# Ablation: HTM capacity bounds (rset=wset cap), "
                "%d CPUs\n",
                cpus);
    std::printf("%-15s %4s %-9s %9s %8s %8s %8s %7s %8s %4s\n",
                "kernel", "cap", "mode", "cycles", "commits", "cap_abt",
                "spills", "abt/cmt", "cmt/kcyc", "ok");

    // Grid cells in kernel-major, cap-major order; the unbounded
    // baseline runs once per kernel (both modes are bit-identical
    // when no cap is set). Rows print in grid order at merge time, so
    // the table and the JSON are --jobs invariant.
    std::vector<Cell> grid;
    for (const KernelInfo& k : kernels) {
        for (int cap : caps) {
            if (cap == 0) {
                grid.push_back(Cell{&k, 0, CapacityMode::Abort});
                continue;
            }
            grid.push_back(Cell{&k, cap, CapacityMode::Abort});
            grid.push_back(Cell{&k, cap, CapacityMode::Overflow});
        }
    }

    std::vector<Row> rows;
    bool allOk = true;
    CampaignOptions opt;
    opt.jobs = jobs;
    opt.quiet = true;
    const CampaignResult cres = runCampaign<CellResult>(
        grid.size(), opt,
        [&](std::size_t i) {
            const Cell& cell = grid[i];
            HtmConfig cfg = HtmConfig::paperLazy();
            cfg.rsetCap = cell.cap;
            cfg.wsetCap = cell.cap;
            cfg.capacityMode = cell.mode;
            auto k = makeNamedKernel(cell.k->name);
            if (!k)
                fatal("unknown kernel %s", cell.k->name);
            StatsRegistry stats;
            CellResult res;
            res.r = runKernel(*k, cfg, cpus, 64ull * 1024 * 1024,
                              &stats);
            res.capAborts = stats.sum("cpu*.htm.capacity_aborts");
            res.capRestarts = stats.sum("cpu*.htm.capacity_restarts");
            res.capSpills = stats.value("htm.capacity_spills");
            res.ovfChecks = stats.value("htm.overflow_checks");
            for (const char* cls : cell.k->opClasses) {
                const StatsRegistry::Distribution* d =
                    stats.findDistribution(
                    std::string("htm.tx_duration_committed.") + cls);
                res.p99.push_back(d ? d->quantile(0.99) : 0);
            }
            return res;
        },
        [&](std::size_t i, CellResult&& res) {
            const Cell& cell = grid[i];
            const double rate =
                res.r.commits
                    ? static_cast<double>(res.capAborts) /
                          static_cast<double>(res.r.commits)
                    : 0.0;
            const double tput =
                res.r.cycles
                    ? 1000.0 * static_cast<double>(res.r.commits) /
                          static_cast<double>(res.r.cycles)
                    : 0.0;
            allOk = allOk && res.r.verified;
            std::printf("%-15s %4d %-9s %9llu %8llu %8llu %8llu "
                        "%7.3f %8.2f %4s\n",
                        cell.k->name, cell.cap, modeLabel(cell),
                        static_cast<unsigned long long>(res.r.cycles),
                        static_cast<unsigned long long>(res.r.commits),
                        static_cast<unsigned long long>(res.capAborts),
                        static_cast<unsigned long long>(res.capSpills),
                        rate, tput, res.r.verified ? "yes" : "NO");
            rows.push_back(Row{cell, std::move(res), rate, tput});
            return true;
        });
    if (cres.failed)
        fatal("sweep cancelled at cell %zu: %s", cres.failedJob,
              cres.message.c_str());

    // The model's own sanity contract, enforced every run:
    //  - unbounded and overflow cells never take a capacity abort;
    //  - in abort mode the capacity-abort count is nondecreasing as
    //    the cap shrinks: a footprint that overflowed cap C also
    //    overflows any cap < C, so the set of over-cap transactions
    //    only grows. (The per-commit *rate* can wobble a hair because
    //    its denominator shifts with the retry interleaving; the
    //    count is the interleaving-independent invariant.)
    for (const KernelInfo& k : kernels) {
        std::uint64_t prevAborts = 0;
        for (const Row& row : rows) {
            if (row.cell.k != &k)
                continue;
            const bool abortMode =
                row.cell.cap > 0 &&
                row.cell.mode == CapacityMode::Abort;
            if (!abortMode && row.res.capAborts != 0) {
                std::printf("# VIOLATION: %s cap=%d %s took %llu "
                            "capacity aborts (expected 0)\n",
                            k.name, row.cell.cap, modeLabel(row.cell),
                            static_cast<unsigned long long>(
                                row.res.capAborts));
                allOk = false;
            }
            if (abortMode) {
                // rows arrive widest cap first
                if (row.res.capAborts < prevAborts) {
                    std::printf(
                        "# VIOLATION: %s capacity aborts fell from "
                        "%llu to %llu as cap shrank to %d\n",
                        k.name,
                        static_cast<unsigned long long>(prevAborts),
                        static_cast<unsigned long long>(
                            row.res.capAborts),
                        row.cell.cap);
                    allOk = false;
                }
                prevAborts = row.res.capAborts;
            }
        }
    }
    std::printf("# capacity-abort monotonicity: %s\n",
                allOk ? "ok" : "VIOLATED");

    // Headline numbers for the trend file: mp3d at the tightest cap,
    // both modes, against the unbounded baseline.
    std::map<std::string, double> headline;
    for (const Row& row : rows) {
        if (std::strcmp(row.cell.k->name, "mp3d") != 0)
            continue;
        if (row.cell.cap == 0)
            headline["mp3d_unbounded_commits_per_kcycle"] =
                row.throughput;
        else if (row.cell.cap == 4 &&
                 row.cell.mode == CapacityMode::Abort)
            headline["mp3d_cap4_abort_commits_per_kcycle"] =
                row.throughput;
        else if (row.cell.cap == 4 &&
                 row.cell.mode == CapacityMode::Overflow)
            headline["mp3d_cap4_overflow_commits_per_kcycle"] =
                row.throughput;
    }

    if (!outFile.empty()) {
        std::ofstream os(outFile);
        if (!os)
            fatal("cannot open %s", outFile.c_str());
        os << "{\n  \"bench\": \"abl_capacity\",\n"
           << "  \"cpus\": " << cpus << ",\n  \"rows\": [\n";
        for (size_t i = 0; i < rows.size(); ++i) {
            const Row& row = rows[i];
            os << "    {\"kernel\": \"" << row.cell.k->name
               << "\", \"cap\": " << row.cell.cap
               << ", \"mode\": \"" << modeLabel(row.cell)
               << "\", \"cycles\": " << row.res.r.cycles
               << ", \"commits\": " << row.res.r.commits
               << ", \"rollbacks\": " << row.res.r.rollbacks
               << ", \"capacity_aborts\": " << row.res.capAborts
               << ", \"capacity_restarts\": " << row.res.capRestarts
               << ", \"capacity_spills\": " << row.res.capSpills
               << ", \"overflow_checks\": " << row.res.ovfChecks
               << ", \"capacity_abort_rate\": " << row.abortRate
               << ", \"commits_per_kcycle\": " << row.throughput
               << ", \"p99\": {";
            for (size_t c = 0; c < row.cell.k->opClasses.size(); ++c) {
                os << "\"" << row.cell.k->opClasses[c]
                   << "\": " << row.res.p99[c]
                   << (c + 1 < row.cell.k->opClasses.size() ? ", "
                                                            : "");
            }
            os << "}, \"verified\": "
               << (row.res.r.verified ? "true" : "false") << "}"
               << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        os << "  ],\n  \"headline\": {";
        size_t n = 0;
        for (const auto& [key, val] : headline) {
            os << "\"" << key << "\": " << val
               << (++n < headline.size() ? ", " : "");
        }
        os << "}\n}\n";
        std::printf("# wrote %s\n", outFile.c_str());
    }
    return allOk ? 0 : 1;
}
