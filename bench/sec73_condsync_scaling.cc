/**
 * @file
 * Reproduces the paper's section-7.3 experiment: conditional
 * synchronisation (producer/consumer) within transactions, using the
 * figure-3 scheduler built from open nesting and violation handlers,
 * against a polling (abort-and-retry spin) baseline.
 *
 * One CPU hosts the scheduler; the remaining CPUs form
 * producer/consumer pairs over single-slot channels. Reported per CPU
 * count: items transferred per kilocycle and scaling over the smallest
 * machine.
 */

#include <cstdio>

#include "sim/logging.hh"
#include "workloads/kernel_condsync.hh"

using namespace tmsim;

namespace {

struct Point
{
    double tput;
    double instrPerItem;
    bool ok;
};

Point
run(bool use_scheduler, int cpus)
{
    CondSyncParams p;
    p.useScheduler = use_scheduler;
    p.itemsPerPair = 16;
    CondSyncKernel k(p);
    RunResult r = runKernel(k, HtmConfig::paperLazy(), cpus);
    double items = static_cast<double>(k.itemsTransferred(cpus));
    return Point{items * 1000.0 / static_cast<double>(r.cycles),
                 static_cast<double>(r.instructions) / items, r.verified};
}

} // namespace

int
main()
{
    defaultLogContext().quiet = true;
    // cpus = 1 scheduler + 2*pairs workers.
    const int counts[] = {3, 5, 9, 13};

    std::printf("# Section 7.3: conditional synchronisation "
                "(producer/consumer pairs)\n");
    std::printf("# throughput in items per 1000 cycles\n");
    std::printf("%6s %6s %13s %9s %11s %11s %9s %11s\n", "cpus",
                "pairs", "watch/retry", "scaling", "instr/item",
                "polling", "scaling", "instr/item");

    double schedBase = 0, pollBase = 0;
    bool allOk = true;
    for (int n : counts) {
        Point sched = run(true, n);
        Point poll = run(false, n);
        if (n == counts[0]) {
            schedBase = sched.tput;
            pollBase = poll.tput;
        }
        allOk = allOk && sched.ok && poll.ok;
        std::printf("%6d %6d %13.3f %8.2fx %11.0f %11.3f %8.2fx %11.0f\n",
                    n, (n - 1) / 2, sched.tput, sched.tput / schedBase,
                    sched.instrPerItem, poll.tput,
                    poll.tput / pollBase, poll.instrPerItem);
    }
    if (!allOk) {
        std::fprintf(stderr, "VERIFICATION FAILURE\n");
        return 1;
    }
    return 0;
}
