/**
 * @file
 * Ablation A8: cost of conflict detection as CPU count and write-set
 * size grow. Exercises the detector's hot queries directly — lazy
 * validate-time write-set broadcast, eager access-time checks, and
 * strong-atomicity scans for non-transactional stores — plus an
 * end-to-end contended-transaction throughput run.
 *
 * The sharer-index/signature optimisation turns these from
 * O(lines x CPUs x depth) scans into O(actual sharers) lookups; this
 * benchmark is the before/after evidence (BENCH_conflict_index.json).
 *
 * Set layout per victim CPU: `privLines` private read lines plus
 * `kHotLines` hot lines read by everybody. The committer/requester
 * touches mostly-private lines, so almost every probed line has no
 * remote sharers — the common case a broadcast still had to pay a
 * full per-CPU scan for.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/machine.hh"
#include "runtime/tx_thread.hh"
#include "sim/campaign.hh"
#include "sim/logging.hh"
#include "sim/parse.hh"

using namespace tmsim;

namespace {

constexpr int kHotLines = 4;

MachineConfig
config(int cpus, HtmConfig htm)
{
    MachineConfig cfg;
    cfg.numCpus = cpus;
    cfg.htm = htm;
    cfg.memBytes = 8ull * 1024 * 1024;
    return cfg;
}

struct Rig
{
    std::unique_ptr<Machine> m;
    Addr hotBase = 0;
    Addr privBase = 0;
    Addr lineBytes = 32;

    Addr hot(int i) const { return hotBase + static_cast<Addr>(i) * lineBytes; }

    Addr
    priv(int cpu, int i) const
    {
        return privBase +
               (static_cast<Addr>(cpu) * 4096 + static_cast<Addr>(i)) *
                   lineBytes;
    }
};

/**
 * Build a machine where every CPU except 0 sits mid-transaction with a
 * populated read-set (private lines + the hot lines) and a small
 * private write-set. CPU 0 is the committer/requester under test.
 */
Rig
makeRig(int cpus, HtmConfig htm, int privLines)
{
    Rig r;
    r.m = std::make_unique<Machine>(config(cpus, htm));
    r.lineBytes = r.m->config().l1.lineBytes;
    r.hotBase = r.m->memory().allocate(kHotLines * r.lineBytes);
    r.privBase =
        r.m->memory().allocate(static_cast<Addr>(cpus) * 4096 * r.lineBytes);
    for (int c = 1; c < cpus; ++c) {
        HtmContext& ctx = r.m->cpu(c).htm();
        ctx.begin(TxKind::Closed, static_cast<Tick>(c));
        for (int i = 0; i < privLines; ++i)
            ctx.specRead(r.priv(c, i));
        for (int i = 0; i < kHotLines; ++i)
            ctx.specRead(r.hot(i));
        for (int i = 0; i < 8; ++i)
            ctx.specWrite(r.priv(c, privLines + i), 1);
    }
    return r;
}

/**
 * Lazy conflict-heavy commit: the committer validates a write-set of
 * `wset` lines (one hot line, the rest private) against `cpus - 1`
 * active readers. Pre-change cost: wset x cpus context scans.
 */
void
BM_LazyBroadcast(benchmark::State& state)
{
    defaultLogContext().quiet = true;
    const int cpus = static_cast<int>(state.range(0));
    const int wset = static_cast<int>(state.range(1));
    Rig r = makeRig(cpus, HtmConfig::paperLazy(), 64);

    HtmContext& committer = r.m->cpu(0).htm();
    committer.begin(TxKind::Closed, 0);
    std::vector<Addr> lines;
    lines.push_back(r.hot(0));
    for (int i = 1; i < wset; ++i)
        lines.push_back(r.priv(0, i));

    ConflictDetector& det = r.m->memSystem().detector();
    for (auto _ : state) {
        Cycles pen = det.broadcastWriteSet(committer, lines);
        benchmark::DoNotOptimize(pen);
    }
    state.SetItemsProcessed(state.iterations() * wset);
}

/**
 * Eager access-time checks: the requester probes `wset` mostly-private
 * units for read access (hot units are read-shared, so nothing is
 * violated — this is the steady-state no-conflict cost every access
 * pays under eager detection).
 */
void
BM_EagerCheck(benchmark::State& state)
{
    defaultLogContext().quiet = true;
    const int cpus = static_cast<int>(state.range(0));
    const int wset = static_cast<int>(state.range(1));
    Rig r = makeRig(cpus, HtmConfig::eagerUndoLog(), 64);

    HtmContext& req = r.m->cpu(0).htm();
    req.begin(TxKind::Closed, 0);
    std::vector<Addr> units;
    units.push_back(req.trackUnit(r.hot(0)));
    for (int i = 1; i < wset; ++i)
        units.push_back(req.trackUnit(r.priv(0, i)));

    ConflictDetector& det = r.m->memSystem().detector();
    for (auto _ : state) {
        for (Addr u : units) {
            auto v = det.eagerCheck(req, u, false);
            benchmark::DoNotOptimize(v);
        }
    }
    state.SetItemsProcessed(state.iterations() * wset);
}

/**
 * Strong atomicity: a non-transactional CPU stores to lines no
 * transaction touches; every store still had to scan all contexts.
 */
void
BM_NonTxStoreScan(benchmark::State& state)
{
    defaultLogContext().quiet = true;
    const int cpus = static_cast<int>(state.range(0));
    Rig r = makeRig(cpus, HtmConfig::paperLazy(), 64);
    ConflictDetector& det = r.m->memSystem().detector();

    std::vector<Addr> units;
    for (int i = 0; i < 64; ++i)
        units.push_back(r.priv(0, i));

    for (auto _ : state) {
        for (Addr u : units)
            det.nonTxStore(0, u);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}

/** Result of one end-to-end hot-line run (simulated metrics only). */
struct E2eResult
{
    Tick cycles = 0;
    std::uint64_t commits = 0;
    std::uint64_t rollbacks = 0;
};

/**
 * The end-to-end workload: every CPU runs transactions that read the
 * hot lines and update private counters, so each commit broadcast
 * confronts the full sharer population.
 */
E2eResult
runE2e(int cpus, const HtmConfig& htm)
{
    Machine m(config(cpus, htm));
    std::vector<std::unique_ptr<TxThread>> threads;
    for (int i = 0; i < cpus; ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));
    Addr hot = m.memory().allocate(kHotLines * 32);
    Addr priv = m.memory().allocate(static_cast<Addr>(cpus) * 1024);
    for (int i = 0; i < cpus; ++i) {
        m.spawn(i, [&, i](Cpu&) -> SimTask {
            TxThread& t = *threads[static_cast<size_t>(i)];
            Addr mine = priv + static_cast<Addr>(i) * 1024;
            for (int k = 0; k < 20; ++k) {
                co_await t.atomic([&](TxThread& tx) -> SimTask {
                    Word h = co_await tx.ld(hot);
                    for (int j = 0; j < 12; ++j) {
                        Word v = co_await tx.ld(mine + 8 * j);
                        co_await tx.st(mine + 8 * j, v + h + 1);
                    }
                });
            }
        });
    }
    E2eResult r;
    r.cycles = m.run();
    r.commits = m.stats().sum("cpu*.htm.commits");
    r.rollbacks = m.stats().sum("cpu*.htm.rollbacks");
    return r;
}

/** Same workload as a host-time benchmark. */
void
BM_TxThroughputE2E(benchmark::State& state)
{
    defaultLogContext().quiet = true;
    const int cpus = static_cast<int>(state.range(0));
    for (auto _ : state) {
        E2eResult r = runE2e(cpus, HtmConfig::paperLazy());
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() * 20 * cpus);
}

/**
 * Pool-driven sweep mode (--sweep-out FILE [--jobs N]): the end-to-end
 * hot-line workload over a design x CPU grid, fanned across host
 * workers and merged in grid order. All metrics are simulated (cycles,
 * commits, rollbacks), so the document is identical for any --jobs.
 */
int
runSweep(const std::string& out_file, int jobs)
{
    defaultLogContext().quiet = true;

    struct Design
    {
        const char* name;
        HtmConfig htm;
    };
    const Design designs[] = {
        {"lazy-wb", HtmConfig::paperLazy()},
        {"eager-undolog", HtmConfig::eagerUndoLog()},
    };
    const int cpuCounts[] = {1, 2, 4, 8, 16};

    struct Cell
    {
        const Design* d;
        int cpus;
    };
    std::vector<Cell> grid;
    for (const Design& d : designs)
        for (int n : cpuCounts)
            grid.push_back(Cell{&d, n});

    std::ofstream os(out_file);
    if (!os)
        fatal("cannot open %s", out_file.c_str());
    os << "{\n  \"bench\": \"abl_conflict_index_e2e\",\n"
       << "  \"rows\": [\n";

    CampaignOptions opt;
    opt.jobs = jobs;
    opt.quiet = true;
    const CampaignResult cres = runCampaign<E2eResult>(
        grid.size(), opt,
        [&](std::size_t i) {
            return runE2e(grid[i].cpus, grid[i].d->htm);
        },
        [&](std::size_t i, E2eResult&& r) {
            const Cell& cell = grid[i];
            std::printf("%-14s cpus %-3d %10llu cycles  %6llu commits  "
                        "%6llu rollbacks\n",
                        cell.d->name, cell.cpus,
                        static_cast<unsigned long long>(r.cycles),
                        static_cast<unsigned long long>(r.commits),
                        static_cast<unsigned long long>(r.rollbacks));
            os << "    {\"design\": \"" << cell.d->name
               << "\", \"cpus\": " << cell.cpus
               << ", \"cycles\": " << r.cycles
               << ", \"commits\": " << r.commits
               << ", \"rollbacks\": " << r.rollbacks << "}"
               << (i + 1 < grid.size() ? "," : "") << "\n";
            return true;
        });
    if (cres.failed)
        fatal("sweep cancelled at cell %zu: %s", cres.failedJob,
              cres.message.c_str());
    os << "  ]\n}\n";
    std::printf("# wrote %s\n", out_file.c_str());
    return 0;
}

} // namespace

BENCHMARK(BM_LazyBroadcast)
    ->ArgsProduct({{1, 2, 4, 8, 16}, {16, 256}})
    ->ArgNames({"cpus", "wset"});
BENCHMARK(BM_EagerCheck)
    ->ArgsProduct({{1, 2, 4, 8, 16}, {16, 256}})
    ->ArgNames({"cpus", "wset"});
BENCHMARK(BM_NonTxStoreScan)->Arg(1)->Arg(4)->Arg(16)->ArgName("cpus");
BENCHMARK(BM_TxThroughputE2E)
    ->Arg(2)->Arg(8)->Arg(16)
    ->ArgName("cpus")
    ->Unit(benchmark::kMillisecond);

// Custom main instead of BENCHMARK_MAIN(): --sweep-out selects the
// pool-driven end-to-end grid; anything else goes to google-benchmark.
int
main(int argc, char** argv)
{
    std::string sweepOut;
    int jobs = 1;
    std::vector<char*> passthrough{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sweep-out") == 0 && i + 1 < argc) {
            sweepOut = argv[++i];
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs = parseInt(argv[++i], "--jobs", 1, 1024);
        } else {
            passthrough.push_back(argv[i]);
        }
    }
    if (!sweepOut.empty())
        return runSweep(sweepOut, jobs);

    int bargc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&bargc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bargc, passthrough.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
