/**
 * @file
 * Reproduces the paper's section-7.2 experiment: I/O within
 * transactions. Each thread repeatedly performs a small computation
 * within a transaction and outputs a message into a shared log.
 *
 * The transactional scheme buffers output privately and performs the
 * "system call" through a commit handler (open-nested append); the
 * baseline serialises the whole transaction around a direct append
 * (conventional HTMs that revert to sequential execution on I/O).
 *
 * Reported per CPU count: throughput in messages per kilocycle and the
 * speedup over 1 CPU — the paper demonstrates "scalable performance
 * for transactional I/O".
 */

#include <cstdio>

#include "sim/logging.hh"
#include "workloads/kernel_iobench.hh"

using namespace tmsim;

namespace {

struct Point
{
    int threads;
    double tput;
    bool ok;
};

Point
run(bool transactional, int threads)
{
    IoBenchParams p;
    p.transactional = transactional;
    p.msgsPerThread = 24;
    IoBenchKernel k(p);
    RunResult r = runKernel(k, HtmConfig::paperLazy(), threads);
    const double msgs = static_cast<double>(threads) * p.msgsPerThread;
    return Point{threads, msgs * 1000.0 / static_cast<double>(r.cycles),
                 r.verified};
}

} // namespace

int
main()
{
    defaultLogContext().quiet = true;
    const int counts[] = {1, 2, 4, 8, 16};

    std::printf("# Section 7.2: transactional I/O microbenchmark\n");
    std::printf("# throughput in messages per 1000 cycles "
                "(weak scaling: msgs/thread fixed)\n");
    std::printf("%8s %14s %10s %14s %10s %8s\n", "cpus", "tx-handler",
                "speedup", "serialized", "speedup", "tx/ser");

    double txBase = 0, serBase = 0;
    bool allOk = true;
    for (int n : counts) {
        Point tx = run(true, n);
        Point ser = run(false, n);
        if (n == 1) {
            txBase = tx.tput;
            serBase = ser.tput;
        }
        allOk = allOk && tx.ok && ser.ok;
        std::printf("%8d %14.3f %9.2fx %14.3f %9.2fx %7.2fx\n", n,
                    tx.tput, tx.tput / txBase, ser.tput,
                    ser.tput / serBase, tx.tput / ser.tput);
    }
    if (!allOk) {
        std::fprintf(stderr, "VERIFICATION FAILURE\n");
        return 1;
    }
    return 0;
}
