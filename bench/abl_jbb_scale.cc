/**
 * @file
 * Ablation A14 — production-scale SPECjbb. Runs the sharded,
 * Zipf-skewed warehouse workload (1M customer keys, 100k stock keys,
 * open-nested order-id handoff) across warehouse counts x skew x CPU
 * counts up to 128, and reports per-op-class p99 commit latency — the
 * tail metric a system serving millions of users is judged on — plus
 * commit throughput.
 *
 * The interesting comparisons:
 *  - 1 warehouse vs 16: sharding removes the single order-tree/counter
 *    funnel, so commits/kcycle keeps climbing past 8 CPUs instead of
 *    flattening;
 *  - s = 0 vs s = 0.99: Zipf skew concentrates traffic on warehouse 0
 *    and the hot keys, re-creating contention inside the hot shard —
 *    visible as a higher neworder p99 at equal throughput;
 *  - contention policies at 64/128 CPUs: the PR 4 managers
 *    (timestamp/karma/hybrid) finally measured at the CPU counts they
 *    were built for, on top of the PR 1 signature-filtered sharer
 *    index which makes 128-CPU conflict lookups tractable;
 *  - sparse-vs-dense store parity: one headline cell re-runs under the
 *    dense store and every result field must match bitwise (the
 *    backing-store representation is semantics-neutral by contract).
 *
 * With --out FILE the grid is written as JSON (curated copy:
 * BENCH_jbb_scale.json; tools/bench_trend collects the headline
 * numbers). With --jobs N the grid fans out across host workers; rows
 * merge in grid order, so all output is identical for any N.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "sim/campaign.hh"
#include "sim/logging.hh"
#include "sim/parse.hh"
#include "workloads/harness.hh"

using namespace tmsim;

namespace {

/** The op classes the kernel tags (remote only exists when W > 1). */
const char* const opClasses[] = {"neworder", "neworder-remote",
                                 "payment", "orderstatus"};
constexpr std::size_t numClasses = 4;

struct Cell
{
    int warehouses;
    double zipfS;
    int cpus;
    ContentionPolicy policy;
    bool policyCell; ///< printed in the policy section of the table
};

struct CellResult
{
    RunResult r;
    std::uint64_t remoteHandoffs = 0;
    /** p99 of htm.tx_duration_committed.<class>, opClasses order;
     *  0 when the class never committed a transaction. */
    std::uint64_t p99[numClasses] = {0, 0, 0, 0};
};

struct Row
{
    Cell cell;
    CellResult res;
    double throughput; ///< commits per kilocycle
};

} // namespace

int
main(int argc, char** argv)
{
    std::string outFile;
    int jobs = 1;
    // Production-scale dataset; --ops/--customers shrink it for
    // smokes without changing the grid shape.
    KernelParams base;
    base.jbbCustomers = 1000000;
    base.jbbStockItems = 100000;
    base.jbbOps = 1280;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            outFile = argv[++i];
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs = parseInt(argv[++i], "--jobs", 1, 1024);
        } else if (std::strcmp(argv[i], "--ops") == 0 && i + 1 < argc) {
            base.jbbOps = parseInt(argv[++i], "--ops", 1);
        } else if (std::strcmp(argv[i], "--customers") == 0 &&
                   i + 1 < argc) {
            base.jbbCustomers = parseInt(argv[++i], "--customers", 1);
        } else {
            std::fprintf(stderr,
                         "usage: abl_jbb_scale [--jobs N] [--ops N] "
                         "[--customers N] [--out FILE]\n");
            return 2;
        }
    }

    defaultLogContext().quiet = true;
    std::printf("# Ablation: production-scale SPECjbb (open variant, "
                "%d customers, %d ops)\n",
                base.jbbCustomers, base.jbbOps);
    std::printf("%-4s %-5s %-4s %-10s %10s %8s %7s %8s %9s %9s %4s\n",
                "wh", "zipf", "cpus", "policy", "cycles", "commits",
                "remote", "cmt/kcyc", "norder_p99", "remote_p99", "ok");

    // Scaling grid: warehouses x skew x CPUs under the default
    // (requester) policy, then the contention-policy section at the
    // sharded/skewed headline point.
    std::vector<Cell> grid;
    for (int w : {1, 16})
        for (double s : {0.0, 0.99})
            for (int cpus : {8, 64, 128})
                grid.push_back(Cell{w, s, cpus,
                                    ContentionPolicy::Requester, false});
    for (ContentionPolicy pol :
         {ContentionPolicy::Timestamp, ContentionPolicy::Karma,
          ContentionPolicy::Hybrid})
        for (int cpus : {64, 128})
            grid.push_back(Cell{16, 0.99, cpus, pol, true});

    auto runCell = [&](const Cell& cell) {
        HtmConfig cfg = HtmConfig::paperLazy();
        cfg.contention = cell.policy;
        KernelParams kp = base;
        kp.jbbWarehouses = cell.warehouses;
        kp.zipfS = cell.zipfS;
        kp.jbbRemotePct = cell.warehouses > 1 ? 10 : 0;
        auto k = makeNamedKernel("specjbb-open", kp);
        StatsRegistry stats;
        CellResult res;
        res.r = runKernel(*k, cfg, cell.cpus, 64ull * 1024 * 1024,
                          &stats);
        res.remoteHandoffs = stats.value("jbb.remote_handoffs");
        for (std::size_t c = 0; c < numClasses; ++c) {
            const StatsRegistry::Distribution* d =
                stats.findDistribution(
                    std::string("htm.tx_duration_committed.") +
                    opClasses[c]);
            res.p99[c] = d ? d->quantile(0.99) : 0;
        }
        return res;
    };

    std::vector<Row> rows;
    bool allOk = true;
    CampaignOptions opt;
    opt.jobs = jobs;
    opt.quiet = true;
    const CampaignResult cres = runCampaign<CellResult>(
        grid.size(), opt,
        [&](std::size_t i) { return runCell(grid[i]); },
        [&](std::size_t i, CellResult&& res) {
            const Cell& cell = grid[i];
            const double tput =
                res.r.cycles
                    ? 1000.0 * static_cast<double>(res.r.commits) /
                          static_cast<double>(res.r.cycles)
                    : 0.0;
            allOk = allOk && res.r.verified;
            std::printf("%-4d %-5.2f %-4d %-10s %10llu %8llu %7llu "
                        "%8.2f %9llu %9llu %4s\n",
                        cell.warehouses, cell.zipfS, cell.cpus,
                        contentionPolicyName(cell.policy),
                        static_cast<unsigned long long>(res.r.cycles),
                        static_cast<unsigned long long>(res.r.commits),
                        static_cast<unsigned long long>(
                            res.remoteHandoffs),
                        tput,
                        static_cast<unsigned long long>(res.p99[0]),
                        static_cast<unsigned long long>(res.p99[1]),
                        res.r.verified ? "yes" : "NO");
            rows.push_back(Row{cell, std::move(res), tput});
            return true;
        });
    if (cres.failed)
        fatal("sweep cancelled at cell %zu: %s", cres.failedJob,
              cres.message.c_str());

    // Store-parity contract, enforced every run: re-run the sharded
    // skewed 64-CPU headline cell under the dense store and demand a
    // bitwise-identical result (the host representation of memory
    // must never leak into simulated behaviour). Sequential on
    // purpose — the default store mode is process-global state.
    {
        const Cell headlineCell{16, 0.99, 64,
                                ContentionPolicy::Requester, false};
        const Row* sparseRow = nullptr;
        for (const Row& row : rows) {
            if (row.cell.warehouses == 16 && row.cell.zipfS == 0.99 &&
                row.cell.cpus == 64 && !row.cell.policyCell) {
                sparseRow = &row;
                break;
            }
        }
        setDefaultStoreMode(StoreMode::Dense);
        const CellResult dense = runCell(headlineCell);
        setDefaultStoreMode(StoreMode::Sparse);
        if (!sparseRow || dense.r.cycles != sparseRow->res.r.cycles ||
            dense.r.commits != sparseRow->res.r.commits ||
            dense.r.rollbacks != sparseRow->res.r.rollbacks ||
            dense.r.instructions != sparseRow->res.r.instructions ||
            !dense.r.verified) {
            std::printf("# VIOLATION: dense-store rerun diverged from "
                        "sparse headline cell\n");
            allOk = false;
        } else {
            std::printf("# store parity (sparse == dense, w16 s0.99 "
                        "cpus64): ok\n");
        }
    }

    // Headline numbers for the trend file: the sharded, skewed,
    // many-core cells — scaling and tails.
    std::map<std::string, double> headline;
    for (const Row& row : rows) {
        if (row.cell.policyCell || row.cell.warehouses != 16 ||
            row.cell.zipfS != 0.99)
            continue;
        const std::string base_key =
            "open_w16_s099_cpus" + std::to_string(row.cell.cpus);
        headline[base_key + "_commits_per_kcycle"] = row.throughput;
        headline[base_key + "_neworder_p99"] =
            static_cast<double>(row.res.p99[0]);
    }

    if (!outFile.empty()) {
        std::ofstream os(outFile);
        if (!os)
            fatal("cannot open %s", outFile.c_str());
        os << "{\n  \"bench\": \"abl_jbb_scale\",\n"
           << "  \"customers\": " << base.jbbCustomers << ",\n"
           << "  \"ops\": " << base.jbbOps << ",\n  \"rows\": [\n";
        for (size_t i = 0; i < rows.size(); ++i) {
            const Row& row = rows[i];
            os << "    {\"warehouses\": " << row.cell.warehouses
               << ", \"zipf_s\": " << row.cell.zipfS
               << ", \"cpus\": " << row.cell.cpus
               << ", \"policy\": \""
               << contentionPolicyName(row.cell.policy)
               << "\", \"cycles\": " << row.res.r.cycles
               << ", \"commits\": " << row.res.r.commits
               << ", \"rollbacks\": " << row.res.r.rollbacks
               << ", \"remote_handoffs\": " << row.res.remoteHandoffs
               << ", \"commits_per_kcycle\": " << row.throughput
               << ", \"p99\": {";
            for (std::size_t c = 0; c < numClasses; ++c) {
                os << "\"" << opClasses[c] << "\": " << row.res.p99[c]
                   << (c + 1 < numClasses ? ", " : "");
            }
            os << "}, \"verified\": "
               << (row.res.r.verified ? "true" : "false") << "}"
               << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        os << "  ],\n  \"headline\": {";
        size_t n = 0;
        for (const auto& [key, val] : headline) {
            os << "\"" << key << "\": " << val
               << (++n < headline.size() ? ", " : "");
        }
        os << "}\n}\n";
        std::printf("# wrote %s\n", outFile.c_str());
    }
    return allOk ? 0 : 1;
}
