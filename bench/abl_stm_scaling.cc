/**
 * @file
 * Ablation A13 — native STM backend thread scaling. Unlike every other
 * bench in this directory this one does not run the cycle simulator:
 * it drives the src/stm runtime with real host threads and measures
 * wall-clock commit throughput at 1, 2 and 4 threads.
 *
 * Three kernels, chosen so the curve is interpretable on any host,
 * including single-CPU CI boxes (host_cpus is recorded in the JSON):
 *
 *  - "latency": each operation waits a fixed think time *outside* the
 *    transaction, then runs a small disjoint-counter transaction. The
 *    workload is latency-bound, not CPU-bound, so threads overlap
 *    their think times and throughput scales with the thread count
 *    even on one CPU — this is the curve the scaling gate checks.
 *  - "disjoint": back-to-back transactions over per-thread counters,
 *    CPU-bound with zero conflicts. Scales only with real cores;
 *    on a 1-CPU host it stays flat by construction.
 *  - "contended": all threads increment the same counter word,
 *    CPU-bound with maximal conflicts; the interesting output is the
 *    retry rate, not the speedup.
 *
 * With --out FILE the curve is written as JSON (curated copy:
 * BENCH_stm_scaling.json in the repo root; tools/bench_trend collects
 * the headline number). The run fails (exit 1) unless the latency
 * kernel reaches --min-speedup (default 2.0) at 4 threads, every
 * commit count is exact, and the contended kernel's final counter
 * equals its total op count (the STM lost no increments).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/logging.hh"
#include "sim/parse.hh"
#include "stm/stm_runtime.hh"
#include "stm/stm_thread.hh"

using namespace tmsim;

namespace {

const int threadCounts[] = {1, 2, 4};

struct RunResult
{
    double seconds = 0;
    std::uint64_t commits = 0;
    std::uint64_t retries = 0;
    Word finalSum = 0; ///< contended-counter total (exactness check)
};

using KernelFn = RunResult (*)(int threads, int ops_per_thread,
                               int think_us);

/** Spawn @p threads host threads, run @p body(tid) in each, and time
 *  the span from release to last join. */
template <typename Body>
double
timeThreads(int threads, const Body& body)
{
    std::vector<std::thread> hosts;
    hosts.reserve(static_cast<size_t>(threads));
    const auto t0 = std::chrono::steady_clock::now();
    for (int tid = 0; tid < threads; ++tid)
        hosts.emplace_back([&, tid] { body(tid); });
    for (auto& h : hosts)
        h.join();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

RunResult
collect(StmRuntime& rt, int threads, double seconds)
{
    RunResult r;
    r.seconds = seconds;
    for (int tid = 0; tid < threads; ++tid) {
        r.commits += rt.statsFor(tid).commits;
        r.retries += rt.statsFor(tid).retries;
    }
    return r;
}

/** Think-time-bound: sleep outside the tx, then one small tx on a
 *  per-thread counter. Threads overlap their sleeps, so this scales
 *  on any host. */
RunResult
kernelLatency(int threads, int ops_per_thread, int think_us)
{
    StmRuntime rt;
    const Addr base = rt.allocate(64 * wordBytes);
    rt.armWatchdog();
    const double s = timeThreads(threads, [&](int tid) {
        StmThread t(rt, tid);
        const Addr mine = base + static_cast<Addr>(tid) * wordBytes;
        for (int i = 0; i < ops_per_thread; ++i) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(think_us));
            (void)t.atomic([&](StmThread& th) {
                th.txStore(mine, th.txLoad(mine) + 1);
            });
        }
    });
    return collect(rt, threads, s);
}

/** CPU-bound, conflict-free: per-thread counters, no think time. */
RunResult
kernelDisjoint(int threads, int ops_per_thread, int /*think_us*/)
{
    StmRuntime rt;
    const Addr base = rt.allocate(64 * wordBytes);
    rt.armWatchdog();
    const double s = timeThreads(threads, [&](int tid) {
        StmThread t(rt, tid);
        const Addr mine = base + static_cast<Addr>(tid) * wordBytes;
        for (int i = 0; i < ops_per_thread; ++i) {
            (void)t.atomic([&](StmThread& th) {
                th.txStore(mine, th.txLoad(mine) + 1);
            });
        }
    });
    return collect(rt, threads, s);
}

/** CPU-bound, maximally conflicting: one shared counter word. The
 *  exactness check (final value == total ops) is the point. */
RunResult
kernelContended(int threads, int ops_per_thread, int /*think_us*/)
{
    StmRuntime rt;
    const Addr ctr = rt.allocate(wordBytes);
    rt.armWatchdog();
    const double s = timeThreads(threads, [&](int tid) {
        StmThread t(rt, tid);
        for (int i = 0; i < ops_per_thread; ++i) {
            (void)t.atomic([&](StmThread& th) {
                th.txStore(ctr, th.txLoad(ctr) + 1);
            });
        }
    });
    RunResult r = collect(rt, threads, s);
    r.finalSum = rt.read(ctr);
    return r;
}

struct KernelInfo
{
    const char* name;
    KernelFn fn;
    bool scalingGate; ///< the >= min-speedup requirement applies
};

const KernelInfo kernels[] = {
    {"latency", kernelLatency, true},
    {"disjoint", kernelDisjoint, false},
    {"contended", kernelContended, false},
};

} // namespace

int
main(int argc, char** argv)
{
    int opsPerThread = 400;
    int thinkUs = 200;
    double minSpeedup = 2.0;
    std::string outFile;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("missing value for %s", arg.c_str());
            return argv[++i];
        };
        if (arg == "--ops") {
            opsPerThread = parseInt(next(), "--ops", 1, 1'000'000);
        } else if (arg == "--think-us") {
            thinkUs = parseInt(next(), "--think-us", 1, 1'000'000);
        } else if (arg == "--min-speedup") {
            minSpeedup = parseInt(next(), "--min-speedup", 1, 100);
        } else if (arg == "--out") {
            outFile = next();
        } else {
            fatal("unknown option: %s", arg.c_str());
        }
    }

    const unsigned hostCpus = std::thread::hardware_concurrency();
    std::printf("abl_stm_scaling: host_cpus=%u ops/thread=%d "
                "think=%dus\n\n",
                hostCpus, opsPerThread, thinkUs);
    std::printf("  %-10s %-8s %12s %10s %10s %9s\n", "kernel",
                "threads", "commits", "retries", "ops/sec", "speedup");

    bool ok = true;
    std::string rows;
    for (const KernelInfo& k : kernels) {
        double base = 0;
        for (int threads : threadCounts) {
            const RunResult r = k.fn(threads, opsPerThread, thinkUs);
            const double ops =
                static_cast<double>(threads) * opsPerThread;
            const double rate = ops / r.seconds;
            if (threads == 1)
                base = rate;
            const double speedup = rate / base;

            // Exactness: every op committed exactly once...
            if (r.commits != static_cast<std::uint64_t>(ops)) {
                std::fprintf(stderr,
                             "error: %s/%d: %llu commits for %.0f "
                             "ops\n",
                             k.name, threads,
                             static_cast<unsigned long long>(r.commits),
                             ops);
                ok = false;
            }
            // ...and no contended increment was lost.
            if (k.fn == kernelContended &&
                r.finalSum != static_cast<Word>(ops)) {
                std::fprintf(stderr,
                             "error: contended/%d: final counter "
                             "%llu != %0.f\n",
                             threads,
                             static_cast<unsigned long long>(r.finalSum),
                             ops);
                ok = false;
            }
            if (k.scalingGate && threads == 4 &&
                speedup < minSpeedup) {
                std::fprintf(stderr,
                             "error: %s: 4-thread speedup %.2fx < "
                             "required %.2fx\n",
                             k.name, speedup, minSpeedup);
                ok = false;
            }

            std::printf("  %-10s %-8d %12llu %10llu %10.0f %8.2fx\n",
                        k.name, threads,
                        static_cast<unsigned long long>(r.commits),
                        static_cast<unsigned long long>(r.retries),
                        rate, speedup);

            char buf[256];
            std::snprintf(
                buf, sizeof buf,
                "    {\"kernel\": \"%s\", \"threads\": %d, "
                "\"seconds\": %.4f, \"commits\": %llu, "
                "\"retries\": %llu, \"ops_per_sec\": %.1f, "
                "\"speedup_vs_1\": %.3f}",
                k.name, threads, r.seconds,
                static_cast<unsigned long long>(r.commits),
                static_cast<unsigned long long>(r.retries), rate,
                speedup);
            if (!rows.empty())
                rows += ",\n";
            rows += buf;
        }
        std::printf("\n");
    }

    if (!outFile.empty()) {
        std::ofstream os(outFile);
        if (!os)
            fatal("cannot open '%s'", outFile.c_str());
        os << "{\n  \"bench\": \"abl_stm_scaling\",\n"
           << "  \"host_cpus\": " << hostCpus << ",\n"
           << "  \"ops_per_thread\": " << opsPerThread << ",\n"
           << "  \"think_us\": " << thinkUs << ",\n"
           << "  \"rows\": [\n"
           << rows << "\n  ],\n"
           << "  \"verified\": " << (ok ? "true" : "false") << "\n}\n";
    }

    std::printf("%s\n", ok ? "VERIFIED" : "FAILED");
    return ok ? 0 : 1;
}
