/**
 * @file
 * Ablation A5 (paper 6.3.1): line- vs word-granularity conflict
 * tracking under false sharing. Every thread read-modify-writes its
 * OWN word, but all words share one cache line: line-granular sets see
 * permanent conflicts, word-granular sets see none.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/machine.hh"
#include "runtime/tx_thread.hh"
#include "sim/logging.hh"

using namespace tmsim;

namespace {

struct Result
{
    Tick cycles;
    std::uint64_t rollbacks;
    bool ok;
};

Result
run(TrackGranularity gran, int threads, bool false_sharing)
{
    MachineConfig cfg;
    cfg.numCpus = threads;
    cfg.htm = HtmConfig::paperLazy();
    cfg.htm.granularity = gran;
    Machine m(cfg);

    // false_sharing: all counters packed into one line; otherwise one
    // line each.
    const Addr stride = false_sharing ? wordBytes : 64;
    Addr base = m.memory().allocate(static_cast<Addr>(threads) * 64, 64);

    std::vector<std::unique_ptr<TxThread>> ths;
    for (int i = 0; i < threads; ++i)
        ths.push_back(std::make_unique<TxThread>(m.cpu(i)));

    constexpr int iters = 40;
    for (int i = 0; i < threads; ++i) {
        m.spawn(i, [&, i](Cpu&) -> SimTask {
            TxThread& t = *ths[static_cast<size_t>(i)];
            Addr mine = base + static_cast<Addr>(i) * stride;
            for (int k = 0; k < iters; ++k) {
                co_await t.atomic([&](TxThread& tx) -> SimTask {
                    Word v = co_await tx.ld(mine);
                    co_await tx.work(30);
                    co_await tx.st(mine, v + 1);
                });
            }
        });
    }
    Tick c = m.run();
    bool ok = true;
    for (int i = 0; i < threads; ++i) {
        if (m.memory().read(base + static_cast<Addr>(i) * stride) !=
            static_cast<Word>(iters)) {
            ok = false;
        }
    }
    return Result{c, m.stats().sum("cpu*.htm.rollbacks"), ok};
}

} // namespace

int
main()
{
    defaultLogContext().quiet = true;
    std::printf("# Ablation: conflict-tracking granularity "
                "(per-thread counters, 40 RMWs each)\n");
    std::printf("%6s %10s %22s %22s %10s\n", "cpus", "layout",
                "line-granular", "word-granular", "speedup");
    for (int n : {2, 4, 8}) {
        for (bool fs : {true, false}) {
            Result line = run(TrackGranularity::Line, n, fs);
            Result word = run(TrackGranularity::Word, n, fs);
            std::printf("%6d %10s %12llu (rb %3llu) %12llu (rb %3llu) "
                        "%9.2fx%s\n",
                        n, fs ? "packed" : "padded",
                        static_cast<unsigned long long>(line.cycles),
                        static_cast<unsigned long long>(line.rollbacks),
                        static_cast<unsigned long long>(word.cycles),
                        static_cast<unsigned long long>(word.rollbacks),
                        static_cast<double>(line.cycles) /
                            static_cast<double>(word.cycles),
                        (line.ok && word.ok) ? "" : " BAD");
        }
    }
    return 0;
}
