/**
 * @file
 * Ablation A3 (paper section 4.7): the benefit of the immediate
 * load/store instructions for thread-private runtime state. A
 * TCB-traffic-heavy microkernel (many tiny transactions registering
 * handlers) runs once with imld/imst for the runtime conventions (as
 * shipped) and once with a synthetic variant that routes the same
 * traffic through regular transactional accesses, bloating read/write
 * sets and commit broadcasts.
 */

#include <cstdio>

#include "core/machine.hh"
#include "runtime/tx_thread.hh"
#include "sim/logging.hh"

using namespace tmsim;

namespace {

struct Result
{
    Tick cycles;
    std::uint64_t broadcastLines;
};

/**
 * The "no immediate ops" variant is approximated by performing, inside
 * every transaction, the same number of regular transactional accesses
 * to the thread-private area that the runtime would otherwise do
 * immediately (the shipped imld/imst runtime traffic stays, so the
 * delta isolates the set-tracking and broadcast cost).
 */
Result
run(bool private_in_sets, int n_threads)
{
    MachineConfig cfg;
    cfg.numCpus = n_threads;
    cfg.htm = HtmConfig::paperLazy();
    Machine m(cfg);

    std::vector<std::unique_ptr<TxThread>> threads;
    std::vector<Addr> priv;
    Addr shared = m.memory().allocate(64);
    for (int i = 0; i < n_threads; ++i) {
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));
        priv.push_back(m.memory().allocate(8 * wordBytes, 64));
    }

    constexpr int txPerThread = 32;
    for (int i = 0; i < n_threads; ++i) {
        m.spawn(i, [&, i](Cpu&) -> SimTask {
            TxThread& t = *threads[static_cast<size_t>(i)];
            Addr mine = priv[static_cast<size_t>(i)];
            for (int k = 0; k < txPerThread; ++k) {
                co_await t.atomic([&](TxThread& tx) -> SimTask {
                    co_await tx.work(40);
                    // Runtime-style private bookkeeping traffic.
                    for (int w = 0; w < 6; ++w) {
                        Addr a = mine + static_cast<Addr>(w) * wordBytes;
                        if (private_in_sets) {
                            Word v = co_await tx.ld(a);
                            co_await tx.st(a, v + 1);
                        } else {
                            Word v = co_await tx.cpu().imld(a);
                            co_await tx.cpu().imst(a, v + 1);
                        }
                    }
                    co_await tx.ld(shared +
                                   static_cast<Addr>(0)); // tiny read
                });
            }
        });
    }
    Tick c = m.run();
    return Result{c, m.stats().value("htm.broadcast_lines")};
}

} // namespace

int
main()
{
    defaultLogContext().quiet = true;
    std::printf("# Ablation: immediate operations (imld/imst) for "
                "thread-private runtime state\n");
    std::printf("%6s %18s %18s %10s %22s\n", "cpus", "imld/imst(cyc)",
                "tracked(cyc)", "speedup", "broadcast lines (im/tr)");
    for (int n : {2, 4, 8}) {
        Result im = run(false, n);
        Result tr = run(true, n);
        std::printf("%6d %18llu %18llu %9.2fx %11llu/%llu\n", n,
                    static_cast<unsigned long long>(im.cycles),
                    static_cast<unsigned long long>(tr.cycles),
                    static_cast<double>(tr.cycles) /
                        static_cast<double>(im.cycles),
                    static_cast<unsigned long long>(im.broadcastLines),
                    static_cast<unsigned long long>(tr.broadcastLines));
    }
    return 0;
}
