/**
 * @file
 * Ablations A6/A7 grounding the EXPERIMENTS.md figure-5 magnitude
 * analysis on mp3d:
 *
 *  A6 — retry backoff: disabling the runtime's retry jitter removes
 *       the stabilisation of the FLATTENED baseline, letting conflicts
 *       cascade the way the paper's baseline did; the nesting speedup
 *       grows accordingly.
 *
 *  A7 — open-nested reductions: running the commutative reduction
 *       updates as open-nested transactions with violation/abort
 *       compensation (the paper's system-code recipe) removes even the
 *       merged-read-set exposure that bounds closed nesting, pushing
 *       the improvement over flattening further.
 */

#include <cstdio>

#include "sim/logging.hh"
#include "workloads/kernel_mp3d.hh"

using namespace tmsim;

namespace {

struct Row
{
    double gain;
    double nestedVsSeq;
    bool ok;
};

Row
measure(bool backoff, bool open_reductions)
{
    Mp3dParams p;
    p.openReductions = open_reductions;
    HtmConfig base = HtmConfig::paperLazy();
    base.retryBackoff = backoff;

    Fig5Row r = fig5Row(
        [&] { return std::make_unique<Mp3dKernel>(p); }, 8, base);
    return Row{r.nestingSpeedup, r.nestedVsSeq, r.allVerified};
}

} // namespace

int
main()
{
    defaultLogContext().quiet = true;
    std::printf("# Ablation: mp3d nesting gain over flattening, 8 CPUs\n");
    std::printf("%-12s %-12s %10s %10s %6s\n", "backoff", "reductions",
                "gain", "n/seq", "ok");
    struct Case
    {
        bool backoff;
        bool open;
    } cases[] = {
        {true, false},  // shipped default (closed nesting)
        {false, false}, // cascading baseline, closed nesting
        {true, true},   // open-nested reductions
        {false, true},  // both
    };
    for (const Case& c : cases) {
        Row r = measure(c.backoff, c.open);
        std::printf("%-12s %-12s %9.2fx %9.2fx %6s\n",
                    c.backoff ? "jittered" : "none",
                    c.open ? "open" : "closed", r.gain, r.nestedVsSeq,
                    r.ok ? "yes" : "NO");
    }
    std::printf("# paper figure 5 mp3d: 4.93x\n");
    return 0;
}
