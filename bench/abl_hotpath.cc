/**
 * @file
 * Host-side hot-path ablation (google-benchmark): isolates the three
 * layers the seeds/second overhaul targets and measures each in ops
 * per host-second, plus the end-to-end headline number itself.
 *
 *  - Event queue: schedule/dispatch throughput of the calendar queue,
 *    with and without far-future events spilling to the overflow heap.
 *  - Transactional sets: FlatAddrSet / FlatAddrMap insert, lookup and
 *    clear at sizes spanning the inline buffer, the linear-scan range
 *    and the indexed range, against the std::unordered_{set,map} they
 *    replaced.
 *  - End to end: differential fuzz seeds per second (the tmsim_fuzz
 *    inner loop: generate a program, run it under all four design
 *    points, oracle-check every run).
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "check/fuzz_driver.hh"
#include "check/fuzz_program.hh"
#include "htm/small_set.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

using namespace tmsim;

namespace {

/** Self-rescheduling event source: each firing schedules the next one
 *  1..8 ticks out (all ring traffic), optionally detouring every
 *  eighth event through the far-future overflow heap. */
struct Ticker
{
    EventQueue* eq;
    std::uint64_t remaining;
    bool farFuture;

    void
    fire()
    {
        if (remaining == 0)
            return;
        --remaining;
        Cycles delta = 1 + static_cast<Cycles>(remaining & 7);
        if (farFuture && (remaining & 7) == 0)
            delta += 300; // past the 64-tick ring window
        eq->schedule(delta, [this] { fire(); });
    }
};

void
eventQueueChurn(benchmark::State& state, bool far_future)
{
    constexpr int tickers = 16;
    constexpr std::uint64_t perTicker = 1000;
    std::uint64_t executed = 0;
    for (auto _ : state) {
        EventQueue eq;
        Ticker ts[tickers];
        for (int i = 0; i < tickers; ++i) {
            ts[i] = Ticker{&eq, perTicker, far_future};
            Ticker* t = &ts[i];
            eq.schedule(static_cast<Cycles>(i), [t] { t->fire(); });
        }
        eq.run();
        executed += eq.executed();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(executed));
}

void
BM_EventQueueRing(benchmark::State& state)
{
    eventQueueChurn(state, false);
}

void
BM_EventQueueOverflow(benchmark::State& state)
{
    eventQueueChurn(state, true);
}

/** Addresses spread over distinct lines, hashed order-insensitive. */
Addr
addrAt(size_t i)
{
    return static_cast<Addr>(i) * 64 + 0x10000;
}

void
BM_FlatSetInsertClear(benchmark::State& state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    FlatAddrSet<8> s;
    for (auto _ : state) {
        s.clear();
        for (size_t i = 0; i < n; ++i)
            s.insert(addrAt(i));
        benchmark::DoNotOptimize(s.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}

void
BM_StdSetInsertClear(benchmark::State& state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    std::unordered_set<Addr> s;
    for (auto _ : state) {
        s.clear();
        for (size_t i = 0; i < n; ++i)
            s.insert(addrAt(i));
        benchmark::DoNotOptimize(s.size());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(n));
}

void
BM_FlatSetLookup(benchmark::State& state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    FlatAddrSet<8> s;
    for (size_t i = 0; i < n; ++i)
        s.insert(addrAt(i));
    size_t hits = 0;
    for (auto _ : state) {
        // Half hits, half misses: probe 2n addresses of which the
        // even-indexed ones are present.
        for (size_t i = 0; i < n; ++i) {
            hits += s.contains(addrAt(i));
            hits += s.contains(addrAt(i) + 4);
        }
    }
    benchmark::DoNotOptimize(hits);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(2 * n));
}

void
BM_StdSetLookup(benchmark::State& state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    std::unordered_set<Addr> s;
    for (size_t i = 0; i < n; ++i)
        s.insert(addrAt(i));
    size_t hits = 0;
    for (auto _ : state) {
        for (size_t i = 0; i < n; ++i) {
            hits += s.count(addrAt(i));
            hits += s.count(addrAt(i) + 4);
        }
    }
    benchmark::DoNotOptimize(hits);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(2 * n));
}

void
BM_FlatMapUpsertFind(benchmark::State& state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    FlatAddrMap<Word> m;
    Word sum = 0;
    for (auto _ : state) {
        m.clear();
        for (size_t i = 0; i < n; ++i)
            m[addrAt(i)] = static_cast<Word>(i);
        for (size_t i = 0; i < n; ++i)
            if (const Word* v = m.find(addrAt(i)))
                sum += *v;
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(2 * n));
}

void
BM_StdMapUpsertFind(benchmark::State& state)
{
    const size_t n = static_cast<size_t>(state.range(0));
    std::unordered_map<Addr, Word> m;
    Word sum = 0;
    for (auto _ : state) {
        m.clear();
        for (size_t i = 0; i < n; ++i)
            m[addrAt(i)] = static_cast<Word>(i);
        for (size_t i = 0; i < n; ++i) {
            auto it = m.find(addrAt(i));
            if (it != m.end())
                sum += it->second;
        }
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(2 * n));
}

/** The tmsim_fuzz inner loop: items/sec here IS seeds per second. */
void
BM_FuzzSeedsPerSec(benchmark::State& state)
{
    defaultLogContext().quiet = true;
    std::uint64_t seed = 1;
    for (auto _ : state) {
        const FuzzProgram program = generateProgram(seed++);
        FuzzFailure fail = runProgramAllConfigs(program);
        benchmark::DoNotOptimize(fail.failed);
    }
    state.SetItemsProcessed(state.iterations());
}

} // namespace

BENCHMARK(BM_EventQueueRing);
BENCHMARK(BM_EventQueueOverflow);
BENCHMARK(BM_FlatSetInsertClear)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_StdSetInsertClear)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_FlatSetLookup)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_StdSetLookup)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_FlatMapUpsertFind)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_StdMapUpsertFind)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_FuzzSeedsPerSec)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
