/**
 * @file
 * Host-side microbenchmarks (google-benchmark) of the simulator's hot
 * paths: how many simulated operations per host-second the machinery
 * sustains — loads/stores through the hierarchy, transaction
 * begin/commit, nesting, and conflict-heavy retry loops.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "core/machine.hh"
#include "runtime/tx_thread.hh"
#include "sim/logging.hh"

using namespace tmsim;

namespace {

MachineConfig
config(int cpus, HtmConfig htm = HtmConfig::paperLazy())
{
    MachineConfig cfg;
    cfg.numCpus = cpus;
    cfg.htm = htm;
    cfg.memBytes = 8ull * 1024 * 1024; // keep construction cheap
    return cfg;
}

void
BM_PlainLoadStore(benchmark::State& state)
{
    defaultLogContext().quiet = true;
    for (auto _ : state) {
        Machine m(config(1));
        Addr a = m.memory().allocate(4096);
        m.spawn(0, [&](Cpu& c) -> SimTask {
            for (int i = 0; i < 1000; ++i) {
                Word v = co_await c.load(a + (i % 64) * 8);
                co_await c.store(a + (i % 64) * 8, v + 1);
            }
        });
        m.run();
    }
    state.SetItemsProcessed(state.iterations() * 2000);
}

void
BM_TransactionCommit(benchmark::State& state)
{
    defaultLogContext().quiet = true;
    for (auto _ : state) {
        Machine m(config(1));
        TxThread t0(m.cpu(0));
        Addr a = m.memory().allocate(64);
        m.spawn(0, [&](Cpu&) -> SimTask {
            for (int i = 0; i < 200; ++i) {
                co_await t0.atomic([&](TxThread& t) -> SimTask {
                    Word v = co_await t.ld(a);
                    co_await t.st(a, v + 1);
                });
            }
        });
        m.run();
    }
    state.SetItemsProcessed(state.iterations() * 200);
}

void
BM_NestedTransaction(benchmark::State& state)
{
    defaultLogContext().quiet = true;
    for (auto _ : state) {
        Machine m(config(1));
        TxThread t0(m.cpu(0));
        Addr a = m.memory().allocate(64);
        m.spawn(0, [&](Cpu&) -> SimTask {
            for (int i = 0; i < 100; ++i) {
                co_await t0.atomic([&](TxThread& t) -> SimTask {
                    co_await t.atomic([&](TxThread& ti) -> SimTask {
                        Word v = co_await ti.ld(a);
                        co_await ti.st(a, v + 1);
                    });
                });
            }
        });
        m.run();
    }
    state.SetItemsProcessed(state.iterations() * 100);
}

void
BM_ContendedCounter8(benchmark::State& state)
{
    defaultLogContext().quiet = true;
    for (auto _ : state) {
        Machine m(config(8));
        std::vector<std::unique_ptr<TxThread>> threads;
        for (int i = 0; i < 8; ++i)
            threads.push_back(std::make_unique<TxThread>(m.cpu(i)));
        Addr a = m.memory().allocate(64);
        for (int i = 0; i < 8; ++i) {
            m.spawn(i, [&, i](Cpu&) -> SimTask {
                TxThread& t = *threads[static_cast<size_t>(i)];
                for (int k = 0; k < 20; ++k) {
                    co_await t.atomic([&](TxThread& tx) -> SimTask {
                        Word v = co_await tx.ld(a);
                        co_await tx.work(10);
                        co_await tx.st(a, v + 1);
                    });
                }
            });
        }
        m.run();
    }
    state.SetItemsProcessed(state.iterations() * 160);
}

void
BM_ContendedCounter16(benchmark::State& state)
{
    defaultLogContext().quiet = true;
    for (auto _ : state) {
        Machine m(config(16));
        std::vector<std::unique_ptr<TxThread>> threads;
        for (int i = 0; i < 16; ++i)
            threads.push_back(std::make_unique<TxThread>(m.cpu(i)));
        Addr a = m.memory().allocate(64);
        for (int i = 0; i < 16; ++i) {
            m.spawn(i, [&, i](Cpu&) -> SimTask {
                TxThread& t = *threads[static_cast<size_t>(i)];
                for (int k = 0; k < 10; ++k) {
                    co_await t.atomic([&](TxThread& tx) -> SimTask {
                        Word v = co_await tx.ld(a);
                        co_await tx.work(10);
                        co_await tx.st(a, v + 1);
                    });
                }
            });
        }
        m.run();
    }
    state.SetItemsProcessed(state.iterations() * 160);
}

void
BM_EagerContendedCounter8(benchmark::State& state)
{
    defaultLogContext().quiet = true;
    for (auto _ : state) {
        Machine m(config(8, HtmConfig::eagerUndoLog()));
        std::vector<std::unique_ptr<TxThread>> threads;
        for (int i = 0; i < 8; ++i)
            threads.push_back(std::make_unique<TxThread>(m.cpu(i)));
        Addr a = m.memory().allocate(64);
        for (int i = 0; i < 8; ++i) {
            m.spawn(i, [&, i](Cpu&) -> SimTask {
                TxThread& t = *threads[static_cast<size_t>(i)];
                for (int k = 0; k < 20; ++k) {
                    co_await t.atomic([&](TxThread& tx) -> SimTask {
                        Word v = co_await tx.ld(a);
                        co_await tx.work(10);
                        co_await tx.st(a, v + 1);
                    });
                }
            });
        }
        m.run();
    }
    state.SetItemsProcessed(state.iterations() * 160);
}

void
BM_MachineConstruction(benchmark::State& state)
{
    defaultLogContext().quiet = true;
    for (auto _ : state) {
        Machine m(config(static_cast<int>(state.range(0))));
        benchmark::DoNotOptimize(&m);
    }
}

} // namespace

BENCHMARK(BM_PlainLoadStore)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TransactionCommit)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NestedTransaction)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ContendedCounter8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ContendedCounter16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EagerContendedCounter8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MachineConstruction)->Arg(1)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
