/**
 * @file
 * Reproduces the paper's section-7 overhead calibration:
 *
 *   "Starting a transaction requires 6 instructions for TCB
 *    allocation. A commit without any handlers requires 10
 *    instructions, while a rollback without handlers requires 6
 *    instructions. Registering a handler without arguments takes 9
 *    instructions."
 *
 * Measures the exact instruction counts of the runtime fast paths and
 * the cycle costs including the (well-cached) thread-private memory
 * traffic.
 */

#include <cstdio>

#include "core/machine.hh"
#include "runtime/tx_thread.hh"
#include "sim/logging.hh"

using namespace tmsim;

namespace {

struct Measurement
{
    std::uint64_t instructions;
    std::uint64_t cycles;
};

Measurement
measureBeginAndCommit(bool measure_begin)
{
    MachineConfig cfg;
    cfg.numCpus = 1;
    cfg.htm = HtmConfig::paperLazy();
    Machine m(cfg);
    TxThread t0(m.cpu(0));
    Measurement out{0, 0};

    m.spawn(0, [&](Cpu& c) -> SimTask {
        // Warm the TCB/handler-stack lines.
        co_await t0.atomic([](TxThread&) -> SimTask { co_return; });

        if (measure_begin) {
            std::uint64_t i0 = c.instret();
            Tick c0 = c.now();
            co_await t0.atomic([&](TxThread&) -> SimTask {
                out.instructions = c.instret() - i0;
                out.cycles = c.now() - c0;
                co_return;
            });
        } else {
            std::uint64_t i0 = 0;
            Tick c0 = 0;
            co_await t0.atomic([&](TxThread&) -> SimTask {
                i0 = c.instret();
                c0 = c.now();
                co_return;
            });
            out.instructions = c.instret() - i0;
            out.cycles = c.now() - c0;
        }
    });
    m.run();
    return out;
}

Measurement
measureRollback()
{
    MachineConfig cfg;
    cfg.numCpus = 1;
    cfg.htm = HtmConfig::paperLazy();
    Machine m(cfg);
    TxThread t0(m.cpu(0));
    Measurement out{0, 0};
    std::uint64_t raiseInstr = 0;
    Tick raiseTick = 0;
    int attempt = 0;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await t0.atomic(
            [&](TxThread& t) -> SimTask {
                ++attempt;
                if (attempt <= 2) {
                    // Attempt 1 warms the handler-stack lines; the
                    // second rollback is the measured (warm) one.
                    raiseInstr = c.instret();
                    raiseTick = c.now();
                    c.htm().raiseViolation(0x1, 0);
                    co_await t.work(0);
                } else {
                    // Retry entry: subtract the 6-instruction begin.
                    out.instructions = c.instret() - raiseInstr - 6;
                    out.cycles = c.now() - raiseTick;
                }
                co_return;
            },
            TxOpts{0, false});
    });
    m.run();
    return out;
}

Measurement
measureRegistration()
{
    MachineConfig cfg;
    cfg.numCpus = 1;
    cfg.htm = HtmConfig::paperLazy();
    Machine m(cfg);
    TxThread t0(m.cpu(0));
    Measurement out{0, 0};
    auto nopHandler = [](TxThread&,
                         const std::vector<Word>&) -> SimTask {
        co_return;
    };

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await t.onCommit(
                [](TxThread&, const std::vector<Word>&) -> SimTask {
                    co_return;
                });
        });
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            std::uint64_t i0 = c.instret();
            Tick c0 = c.now();
            co_await t.onCommit(nopHandler);
            out.instructions = c.instret() - i0;
            out.cycles = c.now() - c0;
        });
    });
    m.run();
    return out;
}

} // namespace

int
main()
{
    defaultLogContext().quiet = true;

    Measurement begin = measureBeginAndCommit(true);
    Measurement commit = measureBeginAndCommit(false);
    Measurement rollback = measureRollback();
    Measurement reg = measureRegistration();

    std::printf("# Section 7 overhead calibration (paper values in "
                "parentheses)\n");
    std::printf("%-38s %12s %8s\n", "event", "instructions", "cycles");
    std::printf("%-38s %8llu (6) %8llu\n",
                "transaction start (TCB allocation)",
                static_cast<unsigned long long>(begin.instructions),
                static_cast<unsigned long long>(begin.cycles));
    std::printf("%-38s %7llu (10) %8llu\n", "commit without handlers",
                static_cast<unsigned long long>(commit.instructions),
                static_cast<unsigned long long>(commit.cycles));
    std::printf("%-38s %8llu (6) %8llu\n", "rollback without handlers",
                static_cast<unsigned long long>(rollback.instructions),
                static_cast<unsigned long long>(rollback.cycles));
    std::printf("%-38s %8llu (9) %8llu\n",
                "handler registration (no arguments)",
                static_cast<unsigned long long>(reg.instructions),
                static_cast<unsigned long long>(reg.cycles));

    const bool ok = begin.instructions == 6 && commit.instructions == 10 &&
                    rollback.instructions == 6 && reg.instructions == 9;
    if (!ok) {
        std::fprintf(stderr, "CALIBRATION MISMATCH\n");
        return 1;
    }
    return 0;
}
