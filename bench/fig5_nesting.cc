/**
 * @file
 * Reproduces paper FIGURE 5: "Performance improvement with full nesting
 * support over flattening for 8 processors. Values shown above each bar
 * are speedups of nested versions over sequential execution with one
 * processor."
 *
 * Rows: barnes, fmm, moldyn, mp3d, swim, tomcatv, water,
 * SPECjbb2000-closed, SPECjbb2000-open.
 *
 * Paper reference points: mp3d 4.93x; SPECjbb-closed 2.05x (total
 * 3.94); SPECjbb-open 2.22x (total 4.25); flat SPECjbb total 1.92.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "sim/logging.hh"
#include "sim/parse.hh"
#include "workloads/kernel_mp3d.hh"
#include "workloads/kernel_specjbb.hh"
#include "workloads/kernels_scientific.hh"

using namespace tmsim;

namespace {

struct Row
{
    const char* name;
    KernelFactory make;
    double paperGain; // nesting speedup over flattening (figure 5 bar)
};

} // namespace

int
main(int argc, char** argv)
{
    defaultLogContext().quiet = true;
    // Strict parse: a bare atoi would quietly turn "abc" into 0 and the
    // bench would report nonsense speedups at 0 threads.
    const int threads =
        argc > 1 ? parseInt(argv[1], "threads", 1, 128) : 8;

    std::vector<Row> rows = {
        {"barnes",
         [] { return std::make_unique<SciKernel>(sciBarnes()); }, 1.13},
        {"fmm", [] { return std::make_unique<SciKernel>(sciFmm()); },
         1.08},
        {"moldyn",
         [] { return std::make_unique<SciKernel>(sciMoldyn()); }, 1.22},
        {"mp3d", [] { return std::make_unique<Mp3dKernel>(); }, 4.93},
        {"swim", [] { return std::make_unique<SciKernel>(sciSwim()); },
         1.02},
        {"tomcatv",
         [] { return std::make_unique<SciKernel>(sciTomcatv()); }, 1.04},
        {"water",
         [] { return std::make_unique<SciKernel>(sciWater()); }, 1.15},
        {"specjbb-closed",
         [] {
             return std::make_unique<SpecJbbKernel>(
                 JbbVariant::ClosedNested);
         },
         2.05},
        {"specjbb-open",
         [] {
             return std::make_unique<SpecJbbKernel>(JbbVariant::OpenNested);
         },
         2.22},
        // Extension: the closed+open combination the paper suggests
        // but does not evaluate ("We could use both open and closed
        // nesting to obtain the advantages of both approaches, but we
        // did not evaluate this"). No paper reference value.
        {"specjbb-hybrid*",
         [] {
             return std::make_unique<SpecJbbKernel>(JbbVariant::Hybrid);
         },
         0.0},
    };

    std::printf("# Figure 5: speedup of full nesting over flattening "
                "(%d processors)\n",
                threads);
    std::printf("# gain = flattened_cycles / nested_cycles; "
                "n/seq = nested speedup over 1 CPU (bar annotation)\n");
    std::printf("%-16s %8s %8s %8s %8s %10s %10s %9s %6s\n", "benchmark",
                "gain", "paper", "n/seq", "f/seq", "nested_cyc",
                "flat_cyc", "rollbacks", "ok");

    bool allOk = true;
    for (const Row& row : rows) {
        Fig5Row r = fig5Row(row.make, threads);
        std::printf("%-16s %8.2f %8.2f %8.2f %8.2f %10llu %10llu "
                    "%5llu/%-4llu %5s\n",
                    row.name, r.nestingSpeedup, row.paperGain,
                    r.nestedVsSeq, r.flatVsSeq,
                    static_cast<unsigned long long>(r.nested.cycles),
                    static_cast<unsigned long long>(r.flat.cycles),
                    static_cast<unsigned long long>(r.nested.rollbacks),
                    static_cast<unsigned long long>(r.flat.rollbacks),
                    r.allVerified ? "yes" : "NO");
        allOk = allOk && r.allVerified;
    }

    if (!allOk) {
        std::fprintf(stderr, "VERIFICATION FAILURE\n");
        return 1;
    }
    return 0;
}
