/**
 * @file
 * Ablation A8 — contention-management policy sweep. Runs the
 * adversarial `contend` kernel (every transaction hammers the same
 * hot line) under every ContentionPolicy and every conflict-handling
 * design point, and reports cycles, rollbacks and commit throughput.
 *
 * The interesting comparisons:
 *  - requester vs timestamp: pure tie-break determinism vs age order;
 *  - karma/hybrid vs timestamp: investment-weighted arbitration
 *    recovers throughput that strict age order gives away (an old
 *    transaction that keeps losing its window still outranks a young
 *    one that has already re-read the whole line);
 *  - hybrid's starvation guard: max consecutive aborts stays bounded
 *    by the escalation threshold while the others can run long tails.
 *
 * With --out FILE the sweep is also written as JSON (the curated copy
 * lives at BENCH_contention.json in the repo root). With --jobs N the
 * design x policy grid fans out across host worker threads; rows merge
 * in grid order, so all output is identical for any N.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "sim/campaign.hh"
#include "sim/logging.hh"
#include "sim/parse.hh"
#include "workloads/kernel_contention.hh"

using namespace tmsim;

namespace {

struct Design
{
    const char* name;
    VersionMode version;
    ConflictMode conflict;
};

const Design designs[] = {
    {"lazy-wb", VersionMode::WriteBuffer, ConflictMode::Lazy},
    {"eager-wb", VersionMode::WriteBuffer, ConflictMode::Eager},
    {"eager-undolog", VersionMode::UndoLog, ConflictMode::Eager},
};

const ContentionPolicy policies[] = {
    ContentionPolicy::Requester, ContentionPolicy::Timestamp,
    ContentionPolicy::Karma,     ContentionPolicy::Polite,
    ContentionPolicy::Hybrid,
};

struct Row
{
    std::string design;
    std::string policy;
    RunResult r;
    double throughput; ///< commits per kilocycle
};

} // namespace

int
main(int argc, char** argv)
{
    std::string outFile;
    int cpus = 8;
    int jobs = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            outFile = argv[++i];
        } else if (std::strcmp(argv[i], "--cpus") == 0 && i + 1 < argc) {
            cpus = parseInt(argv[++i], "--cpus", 1, 64);
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            jobs = parseInt(argv[++i], "--jobs", 1, 1024);
        } else {
            std::fprintf(stderr, "usage: abl_contention [--cpus N] "
                                 "[--jobs N] [--out FILE]\n");
            return 2;
        }
    }

    defaultLogContext().quiet = true;
    std::printf("# Ablation: contention policies on the 'contend' "
                "kernel, %d CPUs\n",
                cpus);
    std::printf("%-14s %-10s %9s %9s %9s %6s\n", "design", "policy",
                "cycles", "rollback", "cmt/kcyc", "ok");

    // Grid cells in design-major order; each cell is one isolated job
    // and rows print in grid order at merge time, so the table and the
    // JSON are --jobs invariant.
    struct Cell
    {
        const Design* d;
        ContentionPolicy pol;
    };
    std::vector<Cell> grid;
    for (const Design& d : designs)
        for (ContentionPolicy pol : policies)
            grid.push_back(Cell{&d, pol});

    std::vector<Row> rows;
    bool allOk = true;
    CampaignOptions opt;
    opt.jobs = jobs;
    opt.quiet = true;
    const CampaignResult cres = runCampaign<RunResult>(
        grid.size(), opt,
        [&](std::size_t i) {
            const Cell& cell = grid[i];
            HtmConfig cfg;
            cfg.version = cell.d->version;
            cfg.conflict = cell.d->conflict;
            cfg.contention = cell.pol;
            ContentionKernel k;
            return runKernel(k, cfg, cpus);
        },
        [&](std::size_t i, RunResult&& r) {
            const Cell& cell = grid[i];
            const double tput =
                r.cycles ? 1000.0 * static_cast<double>(r.commits) /
                               static_cast<double>(r.cycles)
                         : 0.0;
            allOk = allOk && r.verified;
            std::printf("%-14s %-10s %9llu %9llu %9.2f %6s\n",
                        cell.d->name, contentionPolicyName(cell.pol),
                        static_cast<unsigned long long>(r.cycles),
                        static_cast<unsigned long long>(r.rollbacks),
                        tput, r.verified ? "yes" : "NO");
            rows.push_back(Row{cell.d->name,
                               contentionPolicyName(cell.pol), r, tput});
            return true;
        });
    if (cres.failed)
        fatal("sweep cancelled at cell %zu: %s", cres.failedJob,
              cres.message.c_str());

    // Per-policy mean throughput across the design points: the
    // headline Hybrid-vs-Timestamp comparison. (Per-design rows above
    // show where each policy earns it: Hybrid wins both eager designs
    // outright and pays a few percent on lazy for bounding the
    // consecutive-abort tail.)
    std::printf("# mean commits/kcycle across designs:\n");
    std::vector<std::pair<std::string, double>> means;
    for (ContentionPolicy pol : policies) {
        double sum = 0.0;
        int n = 0;
        for (const Row& row : rows) {
            if (row.policy == contentionPolicyName(pol)) {
                sum += row.throughput;
                ++n;
            }
        }
        means.emplace_back(contentionPolicyName(pol),
                           n ? sum / n : 0.0);
        std::printf("#   %-10s %6.2f\n", means.back().first.c_str(),
                    means.back().second);
    }

    if (!outFile.empty()) {
        std::ofstream os(outFile);
        if (!os)
            fatal("cannot open %s", outFile.c_str());
        os << "{\n  \"bench\": \"abl_contention\",\n"
           << "  \"kernel\": \"contend\",\n"
           << "  \"cpus\": " << cpus << ",\n  \"rows\": [\n";
        for (size_t i = 0; i < rows.size(); ++i) {
            const Row& row = rows[i];
            os << "    {\"design\": \"" << row.design
               << "\", \"policy\": \"" << row.policy
               << "\", \"cycles\": " << row.r.cycles
               << ", \"commits\": " << row.r.commits
               << ", \"rollbacks\": " << row.r.rollbacks
               << ", \"commits_per_kcycle\": " << row.throughput
               << ", \"verified\": "
               << (row.r.verified ? "true" : "false") << "}"
               << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        os << "  ],\n  \"mean_commits_per_kcycle\": {";
        for (size_t i = 0; i < means.size(); ++i) {
            os << "\"" << means[i].first << "\": " << means[i].second
               << (i + 1 < means.size() ? ", " : "");
        }
        os << "}\n}\n";
        std::printf("# wrote %s\n", outFile.c_str());
    }
    return allOk ? 0 : 1;
}
