/**
 * @file
 * Ablation A1 (paper sections 2.2/6.1 design space): lazy write-buffer
 * (TCC-style) vs eager undo-log (UTM/LogTM-style) conflict detection,
 * under requester-wins and older-wins resolution, across the
 * contention spectrum of the workload suite.
 */

#include <cstdio>

#include "sim/logging.hh"
#include "workloads/kernel_mp3d.hh"
#include "workloads/kernel_specjbb.hh"
#include "workloads/kernels_scientific.hh"

using namespace tmsim;

namespace {

void
row(const char* name, const KernelFactory& make)
{
    HtmConfig lazy = HtmConfig::paperLazy();
    HtmConfig eagerRw = HtmConfig::eagerUndoLog();
    HtmConfig eagerOw = HtmConfig::eagerUndoLog();
    eagerOw.policy = ConflictPolicy::OlderWins;

    struct Cfg
    {
        const char* tag;
        HtmConfig cfg;
    } cfgs[] = {
        {"lazy/wb", lazy},
        {"eager/req-wins", eagerRw},
        {"eager/older-wins", eagerOw},
    };

    std::printf("%-14s", name);
    RunResult base;
    bool first = true;
    for (const Cfg& c : cfgs) {
        auto k = make();
        RunResult r = runKernel(*k, c.cfg, 8);
        if (first) {
            base = r;
            first = false;
        }
        std::printf(" %9llu (%4.2fx rb=%llu%s)",
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<double>(base.cycles) /
                        static_cast<double>(r.cycles),
                    static_cast<unsigned long long>(r.rollbacks),
                    r.verified ? "" : " BAD");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    defaultLogContext().quiet = true;
    std::printf("# Ablation: conflict detection / versioning design "
                "points at 8 CPUs\n");
    std::printf("# cycles (relative speed vs lazy/wb, higher = faster; rollbacks)\n");
    std::printf("%-14s %28s %28s %28s\n", "benchmark", "lazy/write-buffer",
                "eager/requester-wins", "eager/older-wins");

    row("mp3d", [] { return std::make_unique<Mp3dKernel>(); });
    row("water",
        [] { return std::make_unique<SciKernel>(sciWater()); });
    row("swim", [] { return std::make_unique<SciKernel>(sciSwim()); });
    row("specjbb-open", [] {
        return std::make_unique<SpecJbbKernel>(JbbVariant::OpenNested);
    });
    return 0;
}
