/**
 * @file
 * Transactional I/O (paper section 5 / 7.2): buffered output through
 * commit handlers, input compensation through violation handlers, and
 * atomicity of log records under concurrency.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/machine.hh"
#include "runtime/tx_io.hh"
#include "runtime/tx_thread.hh"

using namespace tmsim;

namespace {

MachineConfig
config(int cpus = 2)
{
    MachineConfig cfg;
    cfg.numCpus = cpus;
    cfg.htm = HtmConfig::paperLazy();
    cfg.memBytes = 16 * 1024 * 1024;
    return cfg;
}

std::vector<Word>
record(Word tag, size_t n)
{
    std::vector<Word> r;
    for (size_t i = 0; i < n; ++i)
        r.push_back(tag * 1000 + i);
    return r;
}

} // namespace

TEST(TxIo, WriteOutsideTransactionAppendsImmediately)
{
    Machine m(config(1));
    TxLogDevice log = TxLogDevice::create(m.memory(), 4096);
    TxIo io(log);
    TxThread t0(m.cpu(0));

    m.spawn(0, [&](Cpu&) -> SimTask {
        co_await io.txWrite(t0, record(1, 3));
    });
    m.run();
    EXPECT_EQ(log.contents(m.memory()),
              (std::vector<Word>{1000, 1001, 1002}));
}

TEST(TxIo, WriteInsideTransactionDeferredToCommit)
{
    Machine m(config(1));
    TxLogDevice log = TxLogDevice::create(m.memory(), 4096);
    TxIo io(log);
    TxThread t0(m.cpu(0));

    m.spawn(0, [&](Cpu&) -> SimTask {
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await io.txWrite(t, record(2, 2));
            // Not yet in the log: buffered privately.
            EXPECT_EQ(log.length(m.memory()), 0u);
        });
        EXPECT_EQ(log.length(m.memory()), 2u);
    });
    m.run();
    EXPECT_EQ(log.contents(m.memory()), (std::vector<Word>{2000, 2001}));
}

TEST(TxIo, AbortedTransactionWritesNothing)
{
    Machine m(config(1));
    TxLogDevice log = TxLogDevice::create(m.memory(), 4096);
    TxIo io(log);
    TxThread t0(m.cpu(0));

    m.spawn(0, [&](Cpu&) -> SimTask {
        TxOutcome out = co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await io.txWrite(t, record(3, 2));
            co_await t.cpu().xabort(1);
        });
        EXPECT_EQ(out.result, TxResult::Aborted);
    });
    m.run();
    EXPECT_EQ(log.length(m.memory()), 0u);
}

TEST(TxIo, ViolatedAttemptWritesOnlyOnce)
{
    Machine m(config(1));
    TxLogDevice log = TxLogDevice::create(m.memory(), 4096);
    TxIo io(log);
    TxThread t0(m.cpu(0));
    bool first = true;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await io.txWrite(t, record(4, 2));
            if (first) {
                first = false;
                c.htm().raiseViolation(0x1, 0);
                co_await t.work(1);
            }
        });
    });
    m.run();
    // The violated attempt's buffered record was discarded with its
    // commit handler; only the retry's record reached the device.
    EXPECT_EQ(log.contents(m.memory()), (std::vector<Word>{4000, 4001}));
}

TEST(TxIo, RecordsFromConcurrentWritersAreAtomicUnits)
{
    constexpr int nThreads = 4;
    constexpr int perThread = 8;
    constexpr size_t recLen = 4;
    Machine m(config(nThreads));
    TxLogDevice log = TxLogDevice::create(m.memory(), 16384);
    TxIo io(log);
    std::vector<std::unique_ptr<TxThread>> threads;
    for (int i = 0; i < nThreads; ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));

    for (int i = 0; i < nThreads; ++i) {
        m.spawn(i, [&, i](Cpu&) -> SimTask {
            TxThread& t = *threads[static_cast<size_t>(i)];
            for (int k = 0; k < perThread; ++k) {
                co_await t.atomic([&](TxThread& th) -> SimTask {
                    co_await th.work(50);
                    co_await io.txWrite(
                        th, record(static_cast<Word>(i + 1), recLen));
                });
            }
        });
    }
    m.run();

    auto words = log.contents(m.memory());
    ASSERT_EQ(words.size(), nThreads * perThread * recLen);
    // Every record must appear contiguously (the open-nested append is
    // atomic), and each thread must have written exactly perThread.
    std::vector<int> counts(nThreads + 1, 0);
    for (size_t off = 0; off < words.size(); off += recLen) {
        Word tag = words[off] / 1000;
        ASSERT_GE(tag, 1u);
        ASSERT_LE(tag, static_cast<Word>(nThreads));
        for (size_t j = 0; j < recLen; ++j)
            EXPECT_EQ(words[off + j], tag * 1000 + j);
        ++counts[static_cast<size_t>(tag)];
    }
    for (int i = 1; i <= nThreads; ++i)
        EXPECT_EQ(counts[static_cast<size_t>(i)], perThread);
}

TEST(TxIo, ReadCompensatedOnViolation)
{
    Machine m(config(1));
    std::vector<Word> contents{100, 101, 102, 103};
    TxInFile file = TxInFile::create(m.memory(), contents);
    TxThread t0(m.cpu(0));
    bool first = true;
    std::vector<Word> got;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            Word a = co_await file.txRead(t);
            Word b = co_await file.txRead(t);
            if (first) {
                first = false;
                // The transaction consumed two words, then rolls back:
                // compensation must rewind the file position.
                c.htm().raiseViolation(0x1, 0);
                co_await t.work(1);
            }
            got.push_back(a);
            got.push_back(b);
        });
    });
    m.run();
    // The retry re-read the same two words.
    EXPECT_EQ(got, (std::vector<Word>{100, 101}));
    EXPECT_EQ(file.position(m.memory()), 2u);
    EXPECT_EQ(file.compensations(), 2u); // two reads compensated
}

TEST(TxIo, ReadCompensatedOnAbort)
{
    Machine m(config(1));
    TxInFile file = TxInFile::create(m.memory(), {7, 8, 9});
    TxThread t0(m.cpu(0));

    m.spawn(0, [&](Cpu&) -> SimTask {
        TxOutcome out = co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await file.txRead(t);
            co_await t.cpu().xabort(1);
        });
        EXPECT_EQ(out.result, TxResult::Aborted);
    });
    m.run();
    EXPECT_EQ(file.position(m.memory()), 0u);
}

TEST(TxIo, CommittedReadKeepsPosition)
{
    Machine m(config(1));
    TxInFile file = TxInFile::create(m.memory(), {7, 8, 9});
    TxThread t0(m.cpu(0));
    Word v0 = 0, v1 = 0;

    m.spawn(0, [&](Cpu&) -> SimTask {
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            v0 = co_await file.txRead(t);
        });
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            v1 = co_await file.txRead(t);
        });
    });
    m.run();
    EXPECT_EQ(v0, 7u);
    EXPECT_EQ(v1, 8u);
    EXPECT_EQ(file.position(m.memory()), 2u);
    EXPECT_EQ(file.compensations(), 0u);
}

// --- device capacity bounds (PR 8 satellite) ------------------------------

TEST(TxIoCapacity, AppendToExactlyFullDeviceSucceeds)
{
    Machine m(config(1));
    TxLogDevice log = TxLogDevice::create(m.memory(), 6);
    TxIo io(log);
    TxThread t0(m.cpu(0));

    TxOutcome out;
    m.spawn(0, [&](Cpu&) -> SimTask {
        co_await io.txWrite(t0, record(1, 4));
        out = co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await io.txWrite(t, record(2, 2)); // lands exactly at cap
        });
    });
    m.run();
    ASSERT_TRUE(m.allDone());
    EXPECT_TRUE(out.committed());
    EXPECT_EQ(log.length(m.memory()), 6u);
    EXPECT_EQ(log.contents(m.memory()),
              (std::vector<Word>{1000, 1001, 1002, 1003, 2000, 2001}));
}

TEST(TxIoCapacity, OverfullCommitHandlerAppendAbortsRecoverably)
{
    // Pre-fix, the append ran off the end of the device's backing
    // allocation. Now the transaction whose commit handler cannot fit
    // its record aborts recoverably with logFullCode and the log is
    // untouched.
    Machine m(config(1));
    TxLogDevice log = TxLogDevice::create(m.memory(), 6);
    TxIo io(log);
    TxThread t0(m.cpu(0));

    TxOutcome out;
    m.spawn(0, [&](Cpu&) -> SimTask {
        co_await io.txWrite(t0, record(1, 4));
        out = co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await io.txWrite(t, record(2, 3)); // cap + 1
        });

        // The thread survives: a fitting record still goes through.
        TxOutcome ok = co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await io.txWrite(t, record(3, 2));
        });
        EXPECT_TRUE(ok.committed());
    });
    m.run();
    ASSERT_TRUE(m.allDone());
    EXPECT_EQ(out.result, TxResult::Aborted);
    EXPECT_EQ(out.abortCode, TxThread::logFullCode);
    EXPECT_EQ(log.length(m.memory()), 6u);
    EXPECT_EQ(log.contents(m.memory()),
              (std::vector<Word>{1000, 1001, 1002, 1003, 3000, 3001}));
}

TEST(TxIoCapacity, OverfullImmediateAppendLeavesLogUntouched)
{
    // txWrite outside a transaction: the open-nested append itself
    // aborts; with no enclosing transaction to escalate to, the write
    // is dropped and the device stays consistent.
    Machine m(config(1));
    TxLogDevice log = TxLogDevice::create(m.memory(), 3);
    TxIo io(log);
    TxThread t0(m.cpu(0));

    m.spawn(0, [&](Cpu&) -> SimTask {
        co_await io.txWrite(t0, record(1, 2));
        co_await io.txWrite(t0, record(2, 2)); // cap + 1: refused
        co_await io.txWrite(t0, record(3, 1)); // still fits
    });
    m.run();
    ASSERT_TRUE(m.allDone());
    EXPECT_EQ(log.contents(m.memory()),
              (std::vector<Word>{1000, 1001, 3000}));
}

TEST(TxIoCapacity, OverfullDirectWriteAbortsRecoverably)
{
    Machine m(config(1));
    TxLogDevice log = TxLogDevice::create(m.memory(), 4);
    TxIo io(log);
    TxThread t0(m.cpu(0));

    TxOutcome out;
    m.spawn(0, [&](Cpu&) -> SimTask {
        out = co_await t0.serializedAtomic([&](TxThread& t) -> SimTask {
            co_await io.directWrite(t, record(9, 5)); // cap + 1
        });
    });
    m.run();
    ASSERT_TRUE(m.allDone());
    EXPECT_EQ(out.result, TxResult::Aborted);
    EXPECT_EQ(out.abortCode, TxThread::logFullCode);
    EXPECT_EQ(log.length(m.memory()), 0u);
}
