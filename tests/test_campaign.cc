/**
 * @file
 * Campaign engine: the determinism contract (parallel merge order and
 * output identical to sequential), cancellation on worker failure and
 * merge early-stop, and the per-thread log-context machinery the pool
 * is built on (scoped quiet/sink routing, trapped fatal(), strict CLI
 * parsing).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/campaign.hh"
#include "sim/logging.hh"
#include "sim/parse.hh"
#include "sim/stats.hh"

using namespace tmsim;

namespace {

/** Run a square-the-index campaign and record the merge order. */
std::vector<std::size_t>
mergeOrder(std::size_t n, int jobs, std::vector<int>* values = nullptr)
{
    std::vector<std::size_t> order;
    CampaignOptions opt;
    opt.jobs = jobs;
    const CampaignResult res = runCampaign<int>(
        n, opt,
        [](std::size_t i) { return static_cast<int>(i * i); },
        [&](std::size_t i, int&& v) {
            order.push_back(i);
            if (values)
                values->push_back(v);
            return true;
        });
    EXPECT_FALSE(res.failed);
    EXPECT_FALSE(res.stopped);
    EXPECT_EQ(res.merged, n);
    return order;
}

} // namespace

TEST(Campaign, SequentialAndParallelMergeIdentically)
{
    std::vector<int> seqVals, parVals;
    const auto seq = mergeOrder(32, 1, &seqVals);
    const auto par = mergeOrder(32, 8, &parVals);
    EXPECT_EQ(seq, par);
    EXPECT_EQ(seqVals, parVals);
    for (std::size_t i = 0; i < seq.size(); ++i)
        EXPECT_EQ(seq[i], i);
}

TEST(Campaign, MergeOrderHoldsUnderAdversarialJobDelays)
{
    // Early jobs sleep longest, so completion order is roughly the
    // reverse of index order — the merge must still be 0,1,2,...
    const std::size_t n = 16;
    std::vector<std::size_t> order;
    CampaignOptions opt;
    opt.jobs = 8;
    const CampaignResult res = runCampaign<std::size_t>(
        n, opt,
        [&](std::size_t i) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2 * (n - i)));
            return i;
        },
        [&](std::size_t i, std::size_t&& v) {
            EXPECT_EQ(i, v);
            order.push_back(i);
            return true;
        });
    EXPECT_FALSE(res.failed);
    ASSERT_EQ(order.size(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Campaign, WorkerFatalCancelsPoolAndSurfacesMessage)
{
    for (int jobs : {1, 4}) {
        std::atomic<int> started{0};
        std::size_t mergedBeforeFailure = 0;
        CampaignOptions opt;
        opt.jobs = jobs;
        const CampaignResult res = runCampaign<int>(
            64, opt,
            [&](std::size_t i) {
                started.fetch_add(1);
                if (i == 5)
                    fatal("boom at job 5");
                return static_cast<int>(i);
            },
            [&](std::size_t i, int&&) {
                EXPECT_LT(i, 5u);
                ++mergedBeforeFailure;
                return true;
            });
        EXPECT_TRUE(res.failed) << "jobs=" << jobs;
        EXPECT_TRUE(static_cast<bool>(res));
        EXPECT_EQ(res.failedJob, 5u);
        EXPECT_NE(res.message.find("boom at job 5"), std::string::npos);
        EXPECT_EQ(mergedBeforeFailure, 5u);
        EXPECT_EQ(res.merged, 5u);
        // Cancellation: nowhere near all 64 jobs may have started.
        EXPECT_LT(started.load(), 64) << "jobs=" << jobs;
    }
}

TEST(Campaign, NonFatalExceptionAlsoSurfaces)
{
    CampaignOptions opt;
    opt.jobs = 4;
    const CampaignResult res = runCampaign<int>(
        8, opt,
        [](std::size_t i) {
            if (i == 2)
                throw std::runtime_error("job exploded");
            return 0;
        },
        [](std::size_t, int&&) { return true; });
    EXPECT_TRUE(res.failed);
    EXPECT_EQ(res.failedJob, 2u);
    EXPECT_NE(res.message.find("job exploded"), std::string::npos);
}

TEST(Campaign, MergeReturningFalseStopsEarly)
{
    for (int jobs : {1, 4}) {
        std::size_t merged = 0;
        CampaignOptions opt;
        opt.jobs = jobs;
        const CampaignResult res = runCampaign<int>(
            1000, opt, [](std::size_t i) { return static_cast<int>(i); },
            [&](std::size_t, int&&) { return ++merged < 10; });
        EXPECT_FALSE(res.failed) << "jobs=" << jobs;
        EXPECT_TRUE(res.stopped);
        EXPECT_EQ(res.merged, 10u);
        EXPECT_EQ(merged, 10u);
    }
}

TEST(Campaign, ZeroJobsIsANoOp)
{
    CampaignOptions opt;
    opt.jobs = 8;
    bool touched = false;
    const CampaignResult res = runCampaign<int>(
        0, opt, [&](std::size_t) { touched = true; return 0; },
        [&](std::size_t, int&&) { touched = true; return true; });
    EXPECT_FALSE(res.failed);
    EXPECT_EQ(res.merged, 0u);
    EXPECT_FALSE(touched);
}

TEST(Campaign, PerJobStatsMergeIsJobsInvariant)
{
    // The pattern every campaign tool uses: each job fills a private
    // registry, the merge folds it. The aggregate must not depend on
    // the worker count.
    auto run = [](int jobs) {
        StatsRegistry merged;
        CampaignOptions opt;
        opt.jobs = jobs;
        runCampaign<StatsRegistry>(
            20, opt,
            [](std::size_t i) {
                StatsRegistry r;
                r.counter("job.runs") += 1;
                r.counter("job.total") += i;
                r.distribution("job.size").sample(i + 1);
                return r;
            },
            [&](std::size_t, StatsRegistry&& r) {
                merged.mergeFrom(r);
                return true;
            });
        std::ostringstream os;
        merged.dumpJson(os);
        return os.str();
    };
    const std::string seq = run(1);
    EXPECT_EQ(seq, run(4));
    EXPECT_EQ(seq, run(13));
    EXPECT_NE(seq.find("\"job.runs\": 20"), std::string::npos);
}

TEST(Campaign, TelemetryDistributionsCoverEveryMergedJob)
{
    // Telemetry goes to the caller-owned registry and never perturbs
    // the merge: one wall-time and one merge-time sample per merged
    // job, whatever the worker count.
    for (int jobs : {1, 4}) {
        StatsRegistry tel;
        CampaignOptions opt;
        opt.jobs = jobs;
        opt.telemetry = &tel;
        std::vector<std::size_t> order;
        const CampaignResult res = runCampaign<int>(
            16, opt, [](std::size_t i) { return static_cast<int>(i); },
            [&](std::size_t i, int&& v) {
                EXPECT_EQ(static_cast<std::size_t>(v), i);
                order.push_back(i);
                return true;
            });
        EXPECT_FALSE(res.failed);
        EXPECT_EQ(res.merged, 16u);
        for (std::size_t i = 0; i < order.size(); ++i)
            EXPECT_EQ(order[i], i);
        const auto* wall = tel.findDistribution("campaign.job_wall_us");
        const auto* merge = tel.findDistribution("campaign.merge_us");
        ASSERT_NE(wall, nullptr);
        ASSERT_NE(merge, nullptr);
        EXPECT_EQ(wall->count(), 16u) << "jobs=" << jobs;
        EXPECT_EQ(merge->count(), 16u) << "jobs=" << jobs;
    }
}

TEST(Campaign, HeartbeatFileIsSchemaVersionedNdjson)
{
    const std::string path =
        testing::TempDir() + "tmsim_campaign_heartbeat_test.ndjson";
    std::remove(path.c_str());
    {
        CampaignOptions opt;
        opt.jobs = 4;
        opt.heartbeatFile = path;
        opt.telemetryIntervalMs = 0; // a record per merge + the final one
        opt.failures = []() -> std::uint64_t { return 3; };
        const CampaignResult res = runCampaign<int>(
            10, opt, [](std::size_t i) { return static_cast<int>(i); },
            [](std::size_t, int&&) { return true; });
        EXPECT_FALSE(res.failed);
        EXPECT_EQ(res.merged, 10u);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open()) << path;
    std::string line, last;
    std::size_t records = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        EXPECT_EQ(
            line.rfind(
                "{\"schema\": \"tmsim-campaign-heartbeat\", "
                "\"schema_version\": 1, ",
                0),
            0u)
            << line;
        EXPECT_EQ(line.back(), '}') << line;
        EXPECT_NE(line.find("\"failures\": 3"), std::string::npos);
        last = line;
        ++records;
    }
    // interval 0 emits at every merge, plus the final record.
    EXPECT_GE(records, 11u);
    EXPECT_NE(last.find("\"final\": true"), std::string::npos);
    EXPECT_NE(last.find("\"jobs_merged\": 10"), std::string::npos);
    EXPECT_NE(last.find("\"jobs_total\": 10"), std::string::npos);
    EXPECT_NE(last.find("\"job_wall_us\": {\"samples\": 10,"),
              std::string::npos);
    EXPECT_NE(last.find("\"merge_us\": {\"samples\": 10,"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(Campaign, TelemetryIntervalSuppressesIntermediateRecords)
{
    const std::string path =
        testing::TempDir() + "tmsim_campaign_heartbeat_quiet.ndjson";
    std::remove(path.c_str());
    {
        CampaignOptions opt;
        opt.jobs = 1;
        opt.heartbeatFile = path;
        opt.telemetryIntervalMs = 60 * 1000; // beyond any test runtime
        const CampaignResult res = runCampaign<int>(
            8, opt, [](std::size_t i) { return static_cast<int>(i); },
            [](std::size_t, int&&) { return true; });
        EXPECT_FALSE(res.failed);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open()) << path;
    std::string line;
    std::size_t records = 0;
    bool sawFinal = false;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        ++records;
        if (line.find("\"final\": true") != std::string::npos)
            sawFinal = true;
    }
    // The first merge emits (lastEmit starts at 0), then the interval
    // gags everything until the guaranteed final record.
    EXPECT_LE(records, 2u);
    EXPECT_TRUE(sawFinal);
    std::remove(path.c_str());
}

TEST(LogContext, ScopesNestAndRestore)
{
    EXPECT_FALSE(currentLogContext().quiet);
    LogContext outer;
    outer.quiet = true;
    {
        LogScope a(outer);
        EXPECT_TRUE(currentLogContext().quiet);
        LogContext inner;
        {
            LogScope b(inner);
            EXPECT_FALSE(currentLogContext().quiet);
        }
        EXPECT_TRUE(currentLogContext().quiet);
    }
    EXPECT_FALSE(currentLogContext().quiet);
}

TEST(LogContext, SinkCapturesWarningsPerThread)
{
    std::vector<std::string> mine;
    LogContext ctx;
    ctx.sink = [&](const char* level, const std::string& msg) {
        mine.push_back(std::string(level) + ":" + msg);
    };
    LogScope scope(ctx);

    warn("captured %d", 1);
    inform("captured %d", 2);

    // Another thread without a scope must not reach our sink.
    std::thread other([] {
        LogContext q;
        q.quiet = true;   // don't spam test output
        LogScope s(q);
        warn("other thread");
    });
    other.join();

    ASSERT_EQ(mine.size(), 2u);
    EXPECT_EQ(mine[0], "warn:captured 1");
    EXPECT_EQ(mine[1], "info:captured 2");
}

TEST(LogContext, QuietSuppressesSink)
{
    int calls = 0;
    LogContext ctx;
    ctx.quiet = true;
    ctx.sink = [&](const char*, const std::string&) { ++calls; };
    LogScope scope(ctx);
    warn("dropped");
    inform("dropped");
    EXPECT_EQ(calls, 0);
}

TEST(LogContext, InheritCopiesCurrentSettings)
{
    LogContext ctx;
    ctx.quiet = true;
    ctx.throwOnFatal = true;
    LogScope scope(ctx);
    const LogContext child = LogContext::inherit();
    EXPECT_TRUE(child.quiet);
    EXPECT_TRUE(child.throwOnFatal);
}

TEST(Fatal, ThrowsUnderTrappingContext)
{
    LogContext ctx;
    ctx.throwOnFatal = true;
    LogScope scope(ctx);
    try {
        fatal("bad value %d", 42);
        FAIL() << "fatal() returned";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("bad value 42"),
                  std::string::npos);
    }
}

namespace {

/** Run the parse helpers under a fatal-trapping scope. */
template <typename Fn>
void
expectParseFatal(Fn&& fn)
{
    LogContext ctx;
    ctx.throwOnFatal = true;
    LogScope scope(ctx);
    EXPECT_THROW(fn(), FatalError);
}

} // namespace

TEST(Parse, AcceptsPlainHexAndOctal)
{
    EXPECT_EQ(parseU64("123", "--x"), 123u);
    EXPECT_EQ(parseU64("0x10", "--x"), 16u);
    EXPECT_EQ(parseInt("-5", "--x"), -5);
    EXPECT_EQ(parseInt("42", "--x", 1, 64), 42);
}

TEST(Parse, RejectsGarbageTrailingAndRange)
{
    expectParseFatal([] { parseU64("abc", "--seeds"); });
    expectParseFatal([] { parseU64("12x", "--seeds"); });
    expectParseFatal([] { parseU64("", "--seeds"); });
    expectParseFatal([] { parseU64("-3", "--seeds"); });
    expectParseFatal([] { parseU64("99999999999999999999999", "--seeds"); });
    expectParseFatal([] { parseInt("notanint", "--jobs"); });
    expectParseFatal([] { parseInt("0", "--jobs", 1, 1024); });
    expectParseFatal([] { parseInt("1025", "--jobs", 1, 1024); });
}
