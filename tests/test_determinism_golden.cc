/**
 * @file
 * Golden determinism fingerprints.
 *
 * Each case runs a bundled kernel under a fixed configuration and
 * fingerprints everything the simulator's hot paths could perturb:
 * the number of events executed, the final tick, the chip-global
 * commit (serialisation) order, and a hash of the full stats dump.
 * The constants below were captured on the seed implementation
 * (std::priority_queue event loop, std::unordered_set read/write
 * sets); any hot-path rewrite must reproduce them bit-for-bit.
 *
 * The write-set broadcast order leaks libstdc++'s unordered_set
 * iteration order into tick-level timing, so the exact constants are
 * only asserted when running against the same libstdc++ release they
 * were captured with. On other standard libraries the test still
 * asserts run-to-run reproducibility of every fingerprint.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/machine.hh"
#include "runtime/tx_thread.hh"
#include "workloads/harness.hh"

using namespace tmsim;

namespace {

/** libstdc++ release the golden constants were captured with. */
#if defined(__GLIBCXX__)
constexpr long capturedGlibcxx = 20220819; // gcc 12.2.0 (Debian)
constexpr bool exactGoldens = (__GLIBCXX__ == capturedGlibcxx);
#else
constexpr bool exactGoldens = false;
#endif

struct Fingerprint
{
    std::uint64_t events = 0;
    std::uint64_t ticks = 0;
    std::uint64_t commitOrder = 0;
    std::uint64_t statsText = 0;
    /** Serialized units behind the commitOrder hash (not part of the
     *  golden constants — structural invariant only). */
    std::uint64_t commitCount = 0;

    bool
    operator==(const Fingerprint& o) const
    {
        return events == o.events && ticks == o.ticks &&
               commitOrder == o.commitOrder &&
               statsText == o.statsText &&
               commitCount == o.commitCount;
    }
};

std::uint64_t
fnv1a(std::uint64_t h, const void* data, size_t n)
{
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

constexpr std::uint64_t fnvInit = 0xcbf29ce484222325ull;

/** Mirror of runKernel() with commit-order hooks and queue access. */
Fingerprint
runFingerprint(const std::string& kernel_name, const HtmConfig& htm,
               int n_threads, std::uint64_t fuzz_seed = 1,
               StoreMode store = defaultStoreMode())
{
    auto kernel = makeNamedKernel(kernel_name, fuzz_seed);
    if (!kernel)
        ADD_FAILURE() << "unknown kernel " << kernel_name;

    MachineConfig cfg;
    cfg.numCpus = n_threads;
    cfg.htm = htm;
    cfg.store = store;
    Machine m(cfg);
    m.logContext().quiet = true;

    std::uint64_t order = fnvInit;
    std::uint64_t count = 0;
    m.setCommitOrderHooks(
        [&order, &count](CpuId cpu, bool open) {
            const std::uint64_t rec =
                (static_cast<std::uint64_t>(cpu) << 1) | (open ? 1 : 0);
            order = fnv1a(order, &rec, sizeof(rec));
            ++count;
        },
        [&order](CpuId cpu) {
            const std::uint64_t rec =
                (static_cast<std::uint64_t>(cpu) << 1) | (1ull << 63);
            order = fnv1a(order, &rec, sizeof(rec));
        });

    kernel->init(m, n_threads);

    std::vector<std::unique_ptr<TxThread>> threads;
    threads.reserve(static_cast<size_t>(n_threads));
    for (int i = 0; i < n_threads; ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));
    for (int i = 0; i < n_threads; ++i) {
        TxThread* t = threads[static_cast<size_t>(i)].get();
        m.spawn(i, [k = kernel.get(), t, i, n_threads](Cpu&) -> SimTask {
            co_await k->thread(*t, i, n_threads);
        });
    }

    Fingerprint fp;
    fp.ticks = m.run();
    fp.events = m.eventQueue().executed();
    fp.commitOrder = order;
    fp.commitCount = count;

    std::ostringstream os;
    m.stats().dump(os);
    const std::string text = os.str();
    fp.statsText = fnv1a(fnvInit, text.data(), text.size());

    EXPECT_TRUE(kernel->verify(m, n_threads)) << kernel_name;
    return fp;
}

struct GoldenCase
{
    const char* kernel;
    const char* config; // "lazy" or "eager"
    int threads;
    Fingerprint expect;
};

/** Captured on the seed implementation; see file comment. The
 *  statsText hashes were re-captured for stats schema v3 (log-linear
 *  distributions, ::pXX quantile keys, per-op-class histograms) and
 *  again when the capacity-model counters (capacity_aborts/restarts/
 *  spills, overflow_checks) joined the registry; the
 *  events/ticks/commitOrder fingerprints are untouched from the seed
 *  capture, which is what proves the observability layer — and an
 *  unbounded capacity config — costs zero simulated time. */
const GoldenCase goldenCases[] = {
    {"mp3d", "lazy", 4,
     {6045ull, 28356ull, 0x4db1ad9b2e846b25ull, 0xf279cdb0645abbfeull}},
    {"mp3d", "eager", 4,
     {5434ull, 22312ull, 0xb0cf2742cb1e16a5ull, 0x964081467061582cull}},
    {"contend", "lazy", 4,
     {3975ull, 14109ull, 0x7adea40108c5eb25ull, 0x938e2f3dfe3844b0ull}},
    {"contend", "eager", 4,
     {3397ull, 17497ull, 0x83d3dd7740a52f25ull, 0xc3321dacaddfb7b9ull}},
    {"specjbb-closed", "lazy", 4,
     {26664ull, 137093ull, 0x9a066da7e416e5e1ull, 0x80878894675d3f6eull}},
    {"barnes", "eager", 2,
     {13364ull, 89081ull, 0xbd42f82741d22ee5ull, 0xf366371714315170ull}},
};

HtmConfig
configByName(const std::string& name)
{
    return name == "eager" ? HtmConfig::eagerUndoLog()
                           : HtmConfig::paperLazy();
}

} // namespace

TEST(DeterminismGolden, KernelFingerprintsMatchSeed)
{
    const bool print = std::getenv("TMSIM_GOLDEN_PRINT") != nullptr;
    for (const auto& c : goldenCases) {
        SCOPED_TRACE(std::string(c.kernel) + "/" + c.config);
        Fingerprint fp =
            runFingerprint(c.kernel, configByName(c.config), c.threads);
        if (print) {
            printf("    {\"%s\", \"%s\", %d,\n"
                   "     {%lluull, %lluull, 0x%llxull, 0x%llxull}},\n",
                   c.kernel, c.config, c.threads,
                   static_cast<unsigned long long>(fp.events),
                   static_cast<unsigned long long>(fp.ticks),
                   static_cast<unsigned long long>(fp.commitOrder),
                   static_cast<unsigned long long>(fp.statsText));
            continue;
        }
        // Structural invariants hold on every standard library: the
        // kernel ran (events, time passed), transactions serialized
        // (non-empty commit order, so the hash moved off its seed),
        // and the stats dump is non-trivial. Before this split, a
        // libstdc++ mismatch silently skipped ALL golden checking — a
        // simulator that committed nothing still passed.
        EXPECT_GT(fp.events, 0u);
        EXPECT_GT(fp.ticks, 0u);
        EXPECT_GT(fp.commitCount, 0u);
        EXPECT_NE(fp.commitOrder, fnvInit);
        EXPECT_NE(fp.statsText, fnvInit);
        EXPECT_NE(fp.statsText, 0u);

        // Only the exact hash values depend on libstdc++'s iteration
        // order, so only they are gated on the captured release.
        if (exactGoldens) {
            EXPECT_EQ(fp.events, c.expect.events);
            EXPECT_EQ(fp.ticks, c.expect.ticks);
            EXPECT_EQ(fp.commitOrder, c.expect.commitOrder);
            EXPECT_EQ(fp.statsText, c.expect.statsText);
        }
        // Regardless of the standard library, the same run twice must
        // produce the same fingerprint.
        Fingerprint again =
            runFingerprint(c.kernel, configByName(c.config), c.threads);
        EXPECT_TRUE(fp == again);
    }
}

TEST(DeterminismGolden, StoreModesProduceIdenticalFingerprints)
{
    // The backing-store representation (dense flat array vs sparse
    // chunk map) is a host-memory decision; by contract it must never
    // leak into simulated behaviour. Every golden case — and a fuzz
    // seed for coverage of the random op mix — must fingerprint
    // byte-identically under both modes.
    for (const auto& c : goldenCases) {
        SCOPED_TRACE(std::string(c.kernel) + "/" + c.config);
        Fingerprint dense =
            runFingerprint(c.kernel, configByName(c.config), c.threads,
                           1, StoreMode::Dense);
        Fingerprint sparse =
            runFingerprint(c.kernel, configByName(c.config), c.threads,
                           1, StoreMode::Sparse);
        EXPECT_TRUE(dense == sparse);
    }
    Fingerprint fd = runFingerprint("fuzz", HtmConfig::paperLazy(), 4,
                                    42, StoreMode::Dense);
    Fingerprint fs = runFingerprint("fuzz", HtmConfig::paperLazy(), 4,
                                    42, StoreMode::Sparse);
    EXPECT_TRUE(fd == fs);
}

TEST(DeterminismGolden, FuzzKernelIsReproducible)
{
    Fingerprint a = runFingerprint("fuzz", HtmConfig::paperLazy(), 4, 42);
    Fingerprint b = runFingerprint("fuzz", HtmConfig::paperLazy(), 4, 42);
    EXPECT_TRUE(a == b);
}
