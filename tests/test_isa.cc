/**
 * @file
 * ISA conformance tests against paper tables 1 and 2: register
 * visibility (xstatus fields, xvaddr, xvcurrent/xvpending), the
 * xvret/xenviolrep protocol, two-phase commit ordering guarantees, and
 * instruction-level semantics not covered elsewhere.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "core/tx_signals.hh"
#include "runtime/tx_thread.hh"

using namespace tmsim;

namespace {

MachineConfig
config(HtmConfig htm, int cpus = 2)
{
    MachineConfig cfg;
    cfg.numCpus = cpus;
    cfg.htm = htm;
    cfg.memBytes = 4 * 1024 * 1024;
    return cfg;
}

} // namespace

TEST(Isa, XstatusTracksTypeStatusAndNestingLevel)
{
    Machine m(config(HtmConfig::paperLazy()));
    m.spawn(0, [&](Cpu& c) -> SimTask {
        EXPECT_FALSE(c.htm().inTx());
        co_await c.xbegin();
        EXPECT_EQ(c.htm().depth(), 1);
        EXPECT_EQ(c.htm().top().kind, TxKind::Closed);
        EXPECT_EQ(c.htm().top().status, TxStatus::Active);
        co_await c.xbeginOpen();
        EXPECT_EQ(c.htm().depth(), 2);
        EXPECT_EQ(c.htm().top().kind, TxKind::Open);
        co_await c.xvalidate();
        EXPECT_EQ(c.htm().top().status, TxStatus::Validated);
        co_await c.xcommit();
        EXPECT_EQ(c.htm().depth(), 1);
        co_await c.xvalidate();
        co_await c.xcommit();
        EXPECT_FALSE(c.htm().inTx());
    });
    m.run();
}

TEST(Isa, XvaddrHoldsConflictAddress)
{
    Machine m(config(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.load(a);
        c.htm().raiseViolation(0x1, c.htm().lineOf(a));
        EXPECT_EQ(c.htm().xvaddr(), c.htm().lineOf(a));
        try {
            co_await c.exec(1);
        } catch (const TxRollback& r) {
            EXPECT_EQ(r.vaddr, c.htm().lineOf(a));
        }
    });
    m.run();
}

TEST(Isa, ReportingDisabledRoutesToPending)
{
    Machine m(config(HtmConfig::paperLazy()));
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        c.htm().setReporting(false);
        c.htm().raiseViolation(0x1, 0);
        EXPECT_EQ(c.htm().xvcurrent(), 0u);
        EXPECT_EQ(c.htm().xvpending(), 0x1u);
        // xvret (via xvret()) promotes pending into current.
        bool redeliver = c.xvret();
        EXPECT_TRUE(redeliver);
        EXPECT_EQ(c.htm().xvcurrent(), 0x1u);
        EXPECT_EQ(c.htm().xvpending(), 0u);
        // Clean up: acknowledge and commit.
        c.htm().clearCurrentViolations();
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
}

TEST(Isa, XenviolrepReenablesReporting)
{
    Machine m(config(HtmConfig::paperLazy()));
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        c.htm().setReporting(false);
        EXPECT_FALSE(c.htm().reportingEnabled());
        c.xenviolrep();
        EXPECT_TRUE(c.htm().reportingEnabled());
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
}

TEST(Isa, ValidatePreventsLaterViolationByPriorAccess)
{
    // The xvalidate guarantee: after it completes, no prior memory
    // access can cause a rollback — a later committer writing our
    // read-set must order itself after us.
    Machine m(config(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    bool committed = false;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.load(a);
        co_await c.store(a, 1);
        co_await c.xvalidate();
        co_await c.exec(2000); // window for cpu1's commit attempt
        co_await c.xcommit();  // must succeed
        committed = true;
    });
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(400);
        co_await c.xbegin();
        co_await c.store(a, 2);
        co_await c.xvalidate(); // stalls on cpu0's pinned line
        co_await c.xcommit();
    });
    m.run();
    EXPECT_TRUE(committed);
    EXPECT_EQ(m.stats().value("cpu0.htm.rollbacks"), 0u);
    EXPECT_EQ(m.memory().read(a), 2u); // cpu1 serialised after cpu0
}

TEST(Isa, ValidateIsIdempotent)
{
    Machine m(config(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(a, 1);
        co_await c.xvalidate();
        co_await c.xvalidate(); // second validate is a no-op
        co_await c.xcommit();
    });
    m.run();
    EXPECT_EQ(m.memory().read(a), 1u);
}

TEST(Isa, XrwsetclearDiscardsTopSets)
{
    Machine m(config(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.load(a);
        co_await c.store(a, 5);
        Addr line = c.htm().lineOf(a);
        EXPECT_NE(c.htm().levelsReading(line), 0u);
        EXPECT_NE(c.htm().levelsWriting(line), 0u);
        co_await c.xrwsetclear();
        EXPECT_EQ(c.htm().levelsReading(line), 0u);
        EXPECT_EQ(c.htm().levelsWriting(line), 0u);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
    // The discarded write never reached memory.
    EXPECT_EQ(m.memory().read(a), 0u);
}

TEST(Isa, CustomViolationProtocolCanContinue)
{
    // The raw hook level: software can resume the interrupted
    // transaction (jump back to xvpc) instead of rolling back.
    Machine m(config(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    int delivered = 0;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        c.setViolationProtocol([&](Cpu& cc) -> SimTask {
            ++delivered;
            cc.htm().clearCurrentViolations();
            co_return; // continue
        });
        co_await c.xbegin();
        co_await c.load(a);
        c.htm().raiseViolation(0x1, c.htm().lineOf(a));
        co_await c.exec(5); // delivery point: continues
        co_await c.store(a, 7);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(m.memory().read(a), 7u);
}

TEST(Isa, ImmediateOpsInterleaveWithTrackedOps)
{
    Machine m(config(HtmConfig::paperLazy()));
    Addr tracked = m.memory().allocate(64);
    Addr priv = m.memory().allocate(64);
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.store(tracked, 1);
        co_await c.imst(priv, 2);
        Word t = co_await c.load(tracked);
        Word p = co_await c.imld(priv);
        EXPECT_EQ(t, 1u);
        EXPECT_EQ(p, 2u);
        co_await c.xvalidate();
        co_await c.xcommit();
    });
    m.run();
    EXPECT_EQ(m.memory().read(tracked), 1u);
    EXPECT_EQ(m.memory().read(priv), 2u);
}

TEST(Isa, ClampStaleViolationMaskAfterMerge)
{
    // A violation raised against a child level in the delivery window
    // of its merge lands on the parent (no lost or stale bits).
    Machine m(config(HtmConfig::paperLazy()));
    Addr a = m.memory().allocate(64);
    bool outerRolled = false;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await c.xbegin();
        co_await c.xbegin();
        co_await c.load(a);
        // Conflict recorded against level 2...
        c.htm().raiseViolation(0x2, c.htm().lineOf(a));
        // ...but the child merges before the next delivery point
        // (possible because delivery happens at instruction
        // boundaries). HtmContext transfers the bit to the parent.
        c.htm().commitClosedTop();
        EXPECT_EQ(c.htm().xvcurrent(), 0x1u);
        try {
            co_await c.exec(1);
        } catch (const TxRollback& r) {
            EXPECT_EQ(r.targetLevel, 1);
            outerRolled = true;
        }
    });
    m.run();
    EXPECT_TRUE(outerRolled);
}

TEST(Isa, OpenBeyondHardwareDepthIsFatal)
{
    auto attempt = [] {
        HtmConfig htm = HtmConfig::paperLazy();
        htm.maxHwLevels = 1;
        Machine m(config(htm, 1));
        m.spawn(0, [&](Cpu& c) -> SimTask {
            co_await c.xbegin();
            co_await c.xbeginOpen(); // cannot subsume an open begin
        });
        m.run();
    };
    EXPECT_EXIT(attempt(), ::testing::ExitedWithCode(1),
                "open-nested transaction beyond hardware nesting");
}

TEST(Isa, SerializedAtomicExcludesOtherSerialized)
{
    // The no-transactional-I/O baseline: serialized transactions hold
    // the global resource for their full duration.
    Machine m(config(HtmConfig::paperLazy(), 2));
    Addr a = m.memory().allocate(64);
    Tick firstDone = 0, secondStart = 0;

    // Use TxThreads since serializedAtomic is a runtime facility.
    TxThread t0(m.cpu(0));
    TxThread t1(m.cpu(1));
    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await t0.serializedAtomic([&](TxThread& t) -> SimTask {
            co_await t.work(2000);
            Word v = co_await t.ld(a);
            co_await t.st(a, v + 1);
        });
        firstDone = c.now();
    });
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(100);
        co_await t1.serializedAtomic([&](TxThread& t) -> SimTask {
            secondStart = t.cpu().now();
            Word v = co_await t.ld(a);
            co_await t.st(a, v + 1);
        });
    });
    m.run();
    EXPECT_GE(secondStart, firstDone); // fully serialized
    EXPECT_EQ(m.memory().read(a), 2u);
}

TEST(Isa, MachineRejectsDoubleSpawnOnCpu)
{
    auto attempt = [] {
        Machine m(config(HtmConfig::paperLazy(), 1));
        m.spawn(0, [](Cpu& c) -> SimTask { co_await c.exec(10); });
        m.spawn(0, [](Cpu& c) -> SimTask { co_await c.exec(10); });
        m.run();
    };
    EXPECT_EXIT(attempt(), ::testing::ExitedWithCode(1),
                "already has an active thread");
}

TEST(Isa, RunStopsAtTickLimit)
{
    Machine m(config(HtmConfig::paperLazy(), 1));
    m.spawn(0, [](Cpu& c) -> SimTask { co_await c.exec(1000000); });
    Tick end = m.run(5000);
    EXPECT_EQ(end, 5000u);
    EXPECT_FALSE(m.allDone());
    m.run(); // let it finish so teardown is clean
    EXPECT_TRUE(m.allDone());
}
