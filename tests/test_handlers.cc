/**
 * @file
 * Commit, violation and abort handler semantics (paper 4.2-4.4, 4.6):
 * registration order, execution order (commit FIFO, violation/abort
 * LIFO), merging into parents on closed commit, immediate execution on
 * open commit, discard on rollback, the Continue action, and argument
 * passing.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "runtime/tx_thread.hh"

using namespace tmsim;

namespace {

MachineConfig
config(int cpus = 2)
{
    MachineConfig cfg;
    cfg.numCpus = cpus;
    cfg.htm = HtmConfig::paperLazy();
    cfg.memBytes = 8 * 1024 * 1024;
    return cfg;
}

} // namespace

TEST(Handlers, CommitHandlersRunInRegistrationOrderAfterValidate)
{
    Machine m(config());
    TxThread t0(m.cpu(0));
    std::vector<int> order;

    m.spawn(0, [&](Cpu&) -> SimTask {
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            for (int i = 0; i < 3; ++i) {
                co_await t.onCommit(
                    [&order, i](TxThread&,
                                const std::vector<Word>&) -> SimTask {
                        order.push_back(i);
                        co_return;
                    });
            }
            EXPECT_TRUE(order.empty()); // nothing runs before validate
        });
    });
    m.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Handlers, CommitHandlerRunsBetweenValidateAndCommit)
{
    Machine m(config());
    TxThread t0(m.cpu(0));
    Addr a = m.memory().allocate(64);
    bool sawSpeculative = false;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await t.st(a, 77);
            co_await t.onCommit(
                [&](TxThread& th, const std::vector<Word>&) -> SimTask {
                    // Two-phase commit: the handler runs validated but
                    // uncommitted; memory still holds the old value,
                    // yet the transaction reads its own write.
                    EXPECT_EQ(m.memory().read(a), 0u);
                    EXPECT_EQ(c.htm().top().status, TxStatus::Validated);
                    Word v = co_await th.cpu().imld(a);
                    EXPECT_EQ(v, 77u);
                    sawSpeculative = true;
                });
        });
    });
    m.run();
    EXPECT_TRUE(sawSpeculative);
    EXPECT_EQ(m.memory().read(a), 77u);
}

TEST(Handlers, CommitHandlersDiscardedOnRollback)
{
    Machine m(config());
    TxThread t0(m.cpu(0));
    TxThread t1(m.cpu(1));
    Addr a = m.memory().allocate(64);
    int handlerRuns = 0;
    bool first = true;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await t.ld(a);
            co_await t.onCommit(
                [&](TxThread&, const std::vector<Word>&) -> SimTask {
                    ++handlerRuns;
                    co_return;
                });
            if (first) {
                first = false;
                // Force a violation: the handler registered in this
                // attempt must be discarded, not run.
                c.htm().raiseViolation(0x1, c.htm().lineOf(a));
            }
            co_await t.work(1);
        });
    });
    (void)t1;
    m.run();
    EXPECT_EQ(handlerRuns, 1); // only the successful attempt's handler
}

TEST(Handlers, ViolationHandlersRunInReverseOrder)
{
    Machine m(config());
    TxThread t0(m.cpu(0));
    Addr a = m.memory().allocate(64);
    std::vector<int> order;
    bool first = true;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await t.ld(a);
            if (first) {
                for (int i = 0; i < 3; ++i) {
                    co_await t.onViolation(
                        [&order, i](TxThread&, const ViolationInfo&,
                                    const std::vector<Word>&)
                            -> Task<VioAction> {
                            order.push_back(i);
                            co_return VioAction::Proceed;
                        });
                }
                first = false;
                c.htm().raiseViolation(0x1, c.htm().lineOf(a));
                co_await t.work(1);
            }
        });
    });
    m.run();
    EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
}

TEST(Handlers, ViolationHandlerReceivesConflictAddress)
{
    Machine m(config());
    TxThread t0(m.cpu(0));
    Addr a = m.memory().allocate(64);
    Addr seen = 0;
    bool first = true;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await t.ld(a);
            if (first) {
                first = false;
                co_await t.onViolation(
                    [&](TxThread&, const ViolationInfo& info,
                        const std::vector<Word>&) -> Task<VioAction> {
                        seen = info.vaddr;
                        co_return VioAction::Proceed;
                    });
                c.htm().raiseViolation(0x1, c.htm().lineOf(a));
                co_await t.work(1);
            }
        });
    });
    m.run();
    EXPECT_EQ(seen, m.cpu(0).htm().lineOf(a));
}

TEST(Handlers, ContinueResumesInterruptedTransaction)
{
    Machine m(config());
    TxThread t0(m.cpu(0));
    Addr a = m.memory().allocate(64);
    int handlerRuns = 0;
    int bodyRuns = 0;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        TxOutcome out = co_await t0.atomic([&](TxThread& t) -> SimTask {
            ++bodyRuns;
            co_await t.onViolation(
                [&](TxThread&, const ViolationInfo&,
                    const std::vector<Word>&) -> Task<VioAction> {
                    ++handlerRuns;
                    co_return VioAction::Continue;
                });
            co_await t.ld(a);
            c.htm().raiseViolation(0x1, c.htm().lineOf(a));
            co_await t.work(10); // delivery point: handler continues
            co_await t.st(a, 1);
        });
        EXPECT_TRUE(out.committed());
    });
    m.run();
    EXPECT_EQ(handlerRuns, 1);
    EXPECT_EQ(bodyRuns, 1); // never rolled back
    EXPECT_EQ(m.memory().read(a), 1u);
}

TEST(Handlers, PendingViolationRedeliveredAfterContinue)
{
    // Conflicts arriving while reporting is disabled land in xvpending
    // and are re-delivered after xvret (paper 4.3/4.6).
    Machine m(config());
    TxThread t0(m.cpu(0));
    Addr a = m.memory().allocate(64);
    int handlerRuns = 0;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await t.onViolation(
                [&](TxThread&, const ViolationInfo&,
                    const std::vector<Word>&) -> Task<VioAction> {
                    if (++handlerRuns == 1) {
                        // Simulate a conflict arriving mid-handler.
                        c.htm().raiseViolation(0x1, c.htm().lineOf(a));
                        EXPECT_EQ(c.htm().xvpending(), 0x1u);
                    }
                    co_return VioAction::Continue;
                });
            co_await t.ld(a);
            c.htm().raiseViolation(0x1, c.htm().lineOf(a));
            co_await t.work(10);
        });
    });
    m.run();
    EXPECT_EQ(handlerRuns, 2);
}

TEST(Handlers, AbortHandlersRunOnXabort)
{
    Machine m(config());
    TxThread t0(m.cpu(0));
    std::vector<int> order;

    m.spawn(0, [&](Cpu&) -> SimTask {
        TxOutcome out = co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await t.onAbort(
                [&](TxThread&, const std::vector<Word>&) -> SimTask {
                    order.push_back(1);
                    co_return;
                });
            co_await t.onAbort(
                [&](TxThread&, const std::vector<Word>&) -> SimTask {
                    order.push_back(2);
                    co_return;
                });
            co_await t.cpu().xabort(5);
        });
        EXPECT_EQ(out.result, TxResult::Aborted);
    });
    m.run();
    EXPECT_EQ(order, (std::vector<int>{2, 1})); // LIFO
}

TEST(Handlers, AbortHandlersNotRunOnCommit)
{
    Machine m(config());
    TxThread t0(m.cpu(0));
    int abortRuns = 0;

    m.spawn(0, [&](Cpu&) -> SimTask {
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await t.onAbort(
                [&](TxThread&, const std::vector<Word>&) -> SimTask {
                    ++abortRuns;
                    co_return;
                });
        });
    });
    m.run();
    EXPECT_EQ(abortRuns, 0);
}

TEST(Handlers, ClosedNestedHandlersMergeIntoParent)
{
    // Paper 4.6: at closed-nested commit, the child's handlers merge
    // with the parent's; the commit handler runs when the OUTERMOST
    // transaction commits.
    Machine m(config());
    TxThread t0(m.cpu(0));
    std::vector<std::string> order;

    m.spawn(0, [&](Cpu&) -> SimTask {
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await t.onCommit(
                [&](TxThread&, const std::vector<Word>&) -> SimTask {
                    order.push_back("outer");
                    co_return;
                });
            co_await t.atomic([&](TxThread& ti) -> SimTask {
                co_await ti.onCommit(
                    [&](TxThread&, const std::vector<Word>&) -> SimTask {
                        order.push_back("inner");
                        co_return;
                    });
            });
            // Inner committed (merged); its handler has NOT run yet.
            EXPECT_TRUE(order.empty());
        });
    });
    m.run();
    // FIFO across the merged stack: outer registered first.
    EXPECT_EQ(order, (std::vector<std::string>{"outer", "inner"}));
}

TEST(Handlers, OpenNestedCommitHandlersRunImmediately)
{
    Machine m(config());
    TxThread t0(m.cpu(0));
    bool innerRan = false;
    bool outerStillActive = false;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await t.atomicOpen([&](TxThread& ti) -> SimTask {
                co_await ti.onCommit(
                    [&](TxThread&, const std::vector<Word>&) -> SimTask {
                        innerRan = true;
                        outerStillActive = c.htm().depth() >= 1;
                        co_return;
                    });
            });
            EXPECT_TRUE(innerRan); // ran at the open commit, not later
        });
    });
    m.run();
    EXPECT_TRUE(innerRan);
    EXPECT_TRUE(outerStillActive);
}

TEST(Handlers, HandlerArgumentsDeliveredIntact)
{
    Machine m(config());
    TxThread t0(m.cpu(0));
    std::vector<Word> seen;

    m.spawn(0, [&](Cpu&) -> SimTask {
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            std::vector<Word> args;
            args.push_back(10);
            args.push_back(20);
            args.push_back(30);
            co_await t.onCommit(
                [&](TxThread&, const std::vector<Word>& a) -> SimTask {
                    seen = a;
                    co_return;
                },
                std::move(args));
        });
    });
    m.run();
    EXPECT_EQ(seen, (std::vector<Word>{10, 20, 30}));
}

TEST(Handlers, ViolationHandlersOfRolledBackLevelsAllRun)
{
    // A conflict that hits the outer level runs the violation handlers
    // of every level being rolled back, newest first.
    Machine m(config());
    TxThread t0(m.cpu(0));
    Addr outerAddr = m.memory().allocate(64);
    std::vector<std::string> order;
    bool first = true;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await t.ld(outerAddr);
            if (!first)
                co_return;
            co_await t.onViolation(
                [&](TxThread&, const ViolationInfo&,
                    const std::vector<Word>&) -> Task<VioAction> {
                    order.push_back("outer");
                    co_return VioAction::Proceed;
                });
            co_await t.atomic([&](TxThread& ti) -> SimTask {
                co_await ti.onViolation(
                    [&](TxThread&, const ViolationInfo&,
                        const std::vector<Word>&) -> Task<VioAction> {
                        order.push_back("inner");
                        co_return VioAction::Proceed;
                    });
                if (first) {
                    first = false;
                    // Conflict against the OUTER level while the inner
                    // transaction is active.
                    c.htm().raiseViolation(0x1, 0);
                    co_await ti.work(1);
                }
            });
        });
    });
    m.run();
    EXPECT_EQ(order, (std::vector<std::string>{"inner", "outer"}));
}
