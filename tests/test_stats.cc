/**
 * @file
 * StatsRegistry unit tests: counter sum() pattern matching (including
 * the overlap and no-match edge cases), log-linear (HDR) Distribution
 * bucketing and quantile error bounds, Formula evaluation, and the
 * schema headers of both dump formats.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace tmsim;
using Dist = StatsRegistry::Distribution;

TEST(StatsSum, ExactNameWithoutStar)
{
    StatsRegistry reg;
    reg.counter("cpu0.loads") += 7;
    EXPECT_EQ(reg.sum("cpu0.loads"), 7u);
    EXPECT_EQ(reg.sum("cpu0.stores"), 0u); // never registered
}

TEST(StatsSum, EmptySuffixMatchesEveryPrefixedCounter)
{
    StatsRegistry reg;
    reg.counter("cpu0.loads") += 1;
    reg.counter("cpu1.loads") += 2;
    reg.counter("cpu10.stores") += 4;
    reg.counter("bus.transfers") += 100;
    EXPECT_EQ(reg.sum("cpu*"), 7u);
    EXPECT_EQ(reg.sum("*"), 107u); // empty prefix AND suffix: everything
}

TEST(StatsSum, EmptyPrefixMatchesEverySuffixedCounter)
{
    StatsRegistry reg;
    reg.counter("cpu0.htm.begins") += 3;
    reg.counter("cpu1.htm.begins") += 4;
    reg.counter("cpu1.htm.begins_other") += 8;
    EXPECT_EQ(reg.sum("*.htm.begins"), 7u);
}

TEST(StatsSum, PrefixAndSuffixMayNotOverlap)
{
    StatsRegistry reg;
    // "aba" matches prefix "ab" and suffix "ba" only if they may share
    // the middle character; sum() must require disjoint halves.
    reg.counter("aba") += 1;
    reg.counter("abba") += 2;
    reg.counter("abxba") += 4;
    EXPECT_EQ(reg.sum("ab*ba"), 6u);
}

TEST(StatsSum, NoMatchIsZero)
{
    StatsRegistry reg;
    reg.counter("cpu0.loads") += 5;
    EXPECT_EQ(reg.sum("gpu*"), 0u);
    EXPECT_EQ(reg.sum("cpu*.misses"), 0u);
    EXPECT_EQ(reg.sum("*"), 5u);
}

TEST(StatsSum, SameNameReturnsSameCounter)
{
    StatsRegistry reg;
    StatsRegistry::Counter& a = reg.counter("shared.name");
    StatsRegistry::Counter& b = reg.counter("shared.name");
    EXPECT_EQ(&a, &b);
    a += 3;
    ++b;
    EXPECT_EQ(reg.value("shared.name"), 4u);
}

TEST(Distribution, ZeroSubBucketBitsDegeneratesToLog2)
{
    // S = 0 is exactly the schema-v2 log2 layout: bucket 0 holds {0},
    // bucket b >= 1 holds [2^(b-1), 2^b - 1].
    EXPECT_EQ(Dist::bucketsFor(0), 65);
    EXPECT_EQ(Dist::bucketOf(0, 0), 0);
    EXPECT_EQ(Dist::bucketOf(1, 0), 1);
    EXPECT_EQ(Dist::bucketOf(3, 0), 2);
    EXPECT_EQ(Dist::bucketOf(1023, 0), 10);
    EXPECT_EQ(Dist::bucketOf(1024, 0), 11);
    EXPECT_EQ(Dist::bucketOf(~std::uint64_t{0}, 0), 64);
    EXPECT_EQ(Dist::bucketHi(64, 0), ~std::uint64_t{0});
}

TEST(Distribution, LinearRegionIsExactAtDefaultBits)
{
    // With S = 4, every value below 16 has its own unit bucket and
    // each log2 magnitude above splits into 16 sub-buckets.
    for (std::uint64_t v = 0; v < 16; ++v) {
        EXPECT_EQ(Dist::bucketOf(v, 4), static_cast<int>(v));
        EXPECT_EQ(Dist::bucketLo(static_cast<int>(v), 4), v);
        EXPECT_EQ(Dist::bucketHi(static_cast<int>(v), 4), v);
    }
    // [16, 32) is still unit-width (magnitude 4, width 2^0)...
    EXPECT_EQ(Dist::bucketOf(16, 4), 16);
    EXPECT_EQ(Dist::bucketOf(31, 4), 31);
    // ...and [32, 64) has width-2 sub-buckets: {32,33} share one.
    EXPECT_EQ(Dist::bucketOf(32, 4), Dist::bucketOf(33, 4));
    EXPECT_NE(Dist::bucketOf(33, 4), Dist::bucketOf(34, 4));
}

TEST(Distribution, BucketBoundsTileTheFullRangeAtEveryBits)
{
    for (int bits = 0; bits <= Dist::maxSubBucketBits; ++bits) {
        const int n = Dist::bucketsFor(bits);
        EXPECT_EQ(Dist::bucketLo(0, bits), 0u);
        for (int b = 1; b < n; ++b) {
            ASSERT_EQ(Dist::bucketLo(b, bits),
                      Dist::bucketHi(b - 1, bits) + 1)
                << "gap at bucket " << b << " bits " << bits;
            ASSERT_EQ(Dist::bucketOf(Dist::bucketLo(b, bits), bits), b)
                << "lo misindexed at bucket " << b << " bits " << bits;
            ASSERT_EQ(Dist::bucketOf(Dist::bucketHi(b, bits), bits), b)
                << "hi misindexed at bucket " << b << " bits " << bits;
        }
        EXPECT_EQ(Dist::bucketHi(n - 1, bits), ~std::uint64_t{0});
    }
}

TEST(Distribution, SampleTracksCountMinMaxMeanAndBuckets)
{
    StatsRegistry reg;
    Dist& d = reg.distribution("d");
    EXPECT_EQ(d.subBucketBits(), Dist::defaultSubBucketBits);
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.min(), 0u);
    EXPECT_EQ(d.max(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.highestBucket(), -1);

    for (std::uint64_t v : {0ull, 1ull, 3ull, 3ull, 100ull})
        d.sample(v);
    EXPECT_EQ(d.count(), 5u);
    EXPECT_EQ(d.total(), 107u);
    EXPECT_EQ(d.min(), 0u);
    EXPECT_EQ(d.max(), 100u);
    EXPECT_DOUBLE_EQ(d.mean(), 107.0 / 5.0);
    EXPECT_EQ(d.bucketCount(0), 1u); // {0}
    EXPECT_EQ(d.bucketCount(1), 1u); // {1}
    EXPECT_EQ(d.bucketCount(3), 2u); // {3} (exact linear region)
    EXPECT_EQ(d.bucketCount(d.bucketOf(100)), 1u);
    EXPECT_EQ(d.highestBucket(), d.bucketOf(100));

    std::uint64_t bucketSum = 0;
    for (int b = 0; b < d.numBuckets(); ++b)
        bucketSum += d.bucketCount(b);
    EXPECT_EQ(bucketSum, d.count());

    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.highestBucket(), -1);
}

namespace {

/** Deterministic 64-bit value stream (splitmix64). */
std::uint64_t
mix64(std::uint64_t& state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Exact quantile by sorting: the ceil(q*n)-th smallest sample. */
std::uint64_t
exactQuantile(std::vector<std::uint64_t> v, double q)
{
    std::sort(v.begin(), v.end());
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(v.size())));
    if (rank < 1)
        rank = 1;
    return v[rank - 1];
}

} // namespace

TEST(DistributionQuantile, ErrorBoundedAtEverySubBucketBits)
{
    // est >= exact and (est - exact) <= exact * 2^-S: the documented
    // bound, checked against sorted ground truth over a wide dynamic
    // range at every supported resolution.
    const double qs[] = {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0};
    for (int bits = 0; bits <= Dist::maxSubBucketBits; ++bits) {
        Dist d(bits);
        std::vector<std::uint64_t> samples;
        std::uint64_t state = 12345;
        for (int i = 0; i < 4000; ++i) {
            // Spread across magnitudes: shift a 64-bit draw right by
            // a varying amount so small and huge values both appear.
            const std::uint64_t v = mix64(state) >> (mix64(state) % 64);
            samples.push_back(v);
            d.sample(v);
        }
        for (double q : qs) {
            const std::uint64_t exact = exactQuantile(samples, q);
            const std::uint64_t est = d.quantile(q);
            ASSERT_GE(est, exact) << "bits " << bits << " q " << q;
            const double err = static_cast<double>(est - exact);
            const double bound =
                static_cast<double>(exact) / static_cast<double>(1 << bits);
            ASSERT_LE(err, bound) << "bits " << bits << " q " << q
                                  << " exact " << exact << " est " << est;
        }
    }
}

TEST(DistributionQuantile, DefaultBitsMeetTheSixPointTwoFivePercentBound)
{
    // The acceptance-criterion form of the bound: at the default
    // resolution the relative error never exceeds 6.25%.
    Dist d;
    std::vector<std::uint64_t> samples;
    std::uint64_t state = 99;
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = mix64(state) % 1000000;
        samples.push_back(v);
        d.sample(v);
    }
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        const std::uint64_t exact = exactQuantile(samples, q);
        const std::uint64_t est = d.quantile(q);
        ASSERT_GE(est, exact);
        ASSERT_LE(static_cast<double>(est - exact),
                  0.0625 * static_cast<double>(exact))
            << "q " << q;
    }
}

TEST(DistributionQuantile, EdgeCases)
{
    Dist d;
    EXPECT_EQ(d.quantile(0.5), 0u);   // empty
    EXPECT_EQ(d.quantile(0.0), 0u);   // empty, lower edge
    EXPECT_EQ(d.quantile(1.0), 0u);   // empty, upper edge
    EXPECT_EQ(d.quantile(0.999), 0u); // empty, p999

    d.sample(7);
    EXPECT_EQ(d.quantile(0.0), 7u);
    EXPECT_EQ(d.quantile(0.5), 7u);
    EXPECT_EQ(d.quantile(1.0), 7u);
    // Single sample: every tail percentile clamps to that sample, not
    // to the enclosing bucket's upper bound.
    EXPECT_EQ(d.quantile(0.999), 7u);

    // Quantiles clamp to the observed max, never a bucket bound
    // beyond it.
    Dist e;
    e.sample(1000);
    EXPECT_EQ(e.quantile(1.0), 1000u);
    EXPECT_EQ(e.quantile(0.999), 1000u);
}

TEST(DistributionQuantile, MergeIsExactAndOrderInvariant)
{
    // Folding per-job histograms must reproduce the single-histogram
    // bucket counts exactly, so merged quantiles are byte-identical
    // regardless of how samples were split across jobs.
    Dist whole;
    Dist parts[4];
    std::uint64_t state = 777;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t v = mix64(state) % 100000;
        whole.sample(v);
        parts[i % 4].sample(v);
    }
    Dist fwd, rev;
    for (int p = 0; p < 4; ++p)
        fwd.mergeFrom(parts[p]);
    for (int p = 3; p >= 0; --p)
        rev.mergeFrom(parts[p]);
    for (double q : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
        EXPECT_EQ(fwd.quantile(q), whole.quantile(q)) << "q " << q;
        EXPECT_EQ(rev.quantile(q), whole.quantile(q)) << "q " << q;
    }
    EXPECT_EQ(fwd.count(), whole.count());
    EXPECT_EQ(fwd.total(), whole.total());
}

TEST(DistributionMerge, EmptyDestinationAdoptsSourceResolution)
{
    Dist dst(2);
    Dist src(6);
    src.sample(1234);
    dst.mergeFrom(src);
    EXPECT_EQ(dst.subBucketBits(), 6);
    EXPECT_EQ(dst.count(), 1u);
    EXPECT_EQ(dst.quantile(1.0), src.quantile(1.0));
}

TEST(DistributionMerge, MismatchedResolutionsAreFatal)
{
    Dist dst(2);
    dst.sample(5);
    Dist src(6);
    src.sample(9);
    LogContext ctx;
    ctx.throwOnFatal = true;
    ctx.quiet = true;
    LogScope scope(ctx);
    EXPECT_THROW(dst.mergeFrom(src), FatalError);
}

TEST(Formula, EvaluatesLazilyAgainstCurrentCounters)
{
    StatsRegistry reg;
    reg.counter("cpu0.hits") += 3;
    reg.counter("cpu1.hits") += 1;
    reg.counter("cpu0.accesses") += 8;
    reg.counter("cpu1.accesses") += 8;
    reg.formula("hit_rate", "cpu*.hits", "cpu*.accesses");
    EXPECT_DOUBLE_EQ(reg.formulaValue("hit_rate"), 4.0 / 16.0);

    reg.counter("cpu0.hits") += 4; // formulas never go stale
    EXPECT_DOUBLE_EQ(reg.formulaValue("hit_rate"), 8.0 / 16.0);

    reg.formula("div_zero", "cpu*.hits", "cpu*.misses");
    EXPECT_DOUBLE_EQ(reg.formulaValue("div_zero"), 0.0);
    EXPECT_DOUBLE_EQ(reg.formulaValue("no_such_formula"), 0.0);
}

TEST(Dump, TextDumpLeadsWithSchemaHeader)
{
    StatsRegistry reg;
    reg.counter("a.b") += 2;
    reg.distribution("lat").sample(5);
    reg.formula("ratio", "a.b", "a.b");
    std::ostringstream os;
    reg.dump(os);
    const std::string text = os.str();
    EXPECT_EQ(text.rfind("# tmsim-stats schema 3\n", 0), 0u)
        << "dump must lead with the schema header, got: " << text;
    EXPECT_NE(text.find("a.b 2\n"), std::string::npos);
    EXPECT_NE(text.find("lat::samples 1\n"), std::string::npos);
    EXPECT_NE(text.find("lat::p50 5\n"), std::string::npos);
    EXPECT_NE(text.find("lat::p99 5\n"), std::string::npos);
    EXPECT_NE(text.find("lat::p999 5\n"), std::string::npos);
    EXPECT_NE(text.find("lat::bucket[5,5] 1\n"), std::string::npos);
    EXPECT_NE(text.find("ratio 1\n"), std::string::npos);
}

TEST(Dump, JsonDumpCarriesSchemaAndAllThreeKinds)
{
    StatsRegistry reg;
    reg.counter("a.b") += 2;
    reg.distribution("lat").sample(5);
    reg.formula("ratio", "a.b", "a.b");
    std::ostringstream os;
    reg.dumpJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"schema\": \"tmsim-stats\""), std::string::npos);
    EXPECT_NE(json.find("\"schema_version\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"a.b\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"samples\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"p50\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"p999\": 5"), std::string::npos);
    EXPECT_NE(json.find("\"sub_bucket_bits\": 4"), std::string::npos);
    EXPECT_NE(json.find("{\"lo\": 5, \"hi\": 5, \"count\": 1}"),
              std::string::npos);
    EXPECT_NE(json.find("\"numerator\": \"a.b\""), std::string::npos);
}

TEST(Reset, ResetAllZeroesCountersAndDistributions)
{
    StatsRegistry reg;
    reg.counter("c") += 9;
    reg.distribution("d").sample(9);
    reg.resetAll();
    EXPECT_EQ(reg.value("c"), 0u);
    EXPECT_EQ(reg.findDistribution("d")->count(), 0u);
}

TEST(JainFairness, PerfectAndSkewedShares)
{
    StatsRegistry reg;
    reg.counter("cpu0.commits") += 4;
    reg.counter("cpu1.commits") += 4;
    reg.jainFairness("fair", "cpu*.commits");
    EXPECT_DOUBLE_EQ(reg.formulaValue("fair"), 1.0);

    reg.counter("cpu1.commits") += 4; // 4 vs 8
    EXPECT_DOUBLE_EQ(reg.formulaValue("fair"),
                     (12.0 * 12.0) / (2.0 * (16.0 + 64.0)));
}

TEST(JainFairness, AllZeroCountersArePerfectlyFair)
{
    // n matched counters all holding zero are equal shares of
    // nothing: fairness 1.0, not the old divide-by-zero 0.0.
    StatsRegistry reg;
    reg.counter("cpu0.commits");
    reg.counter("cpu1.commits");
    reg.jainFairness("fair", "cpu*.commits");
    EXPECT_DOUBLE_EQ(reg.formulaValue("fair"), 1.0);
}

TEST(JainFairness, NoMatchingCounterReadsZero)
{
    StatsRegistry reg;
    reg.jainFairness("fair", "cpu*.commits");
    EXPECT_DOUBLE_EQ(reg.formulaValue("fair"), 0.0);
}

TEST(Merge, CountersAddAndDistributionsFold)
{
    StatsRegistry a;
    a.counter("c") += 3;
    a.distribution("d").sample(1);
    a.distribution("d").sample(100);

    StatsRegistry b;
    b.counter("c") += 4;
    b.counter("only_b") += 7;
    b.distribution("d").sample(50);
    b.distribution("only_b_dist").sample(9);

    a.mergeFrom(b);
    EXPECT_EQ(a.value("c"), 7u);
    EXPECT_EQ(a.value("only_b"), 7u);
    const auto* d = a.findDistribution("d");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->count(), 3u);
    EXPECT_EQ(d->min(), 1u);
    EXPECT_EQ(d->max(), 100u);
    ASSERT_NE(a.findDistribution("only_b_dist"), nullptr);
    EXPECT_EQ(a.findDistribution("only_b_dist")->count(), 1u);
}

TEST(Merge, EmptySourceDistributionIsANoOp)
{
    StatsRegistry a;
    a.distribution("d").sample(5);
    StatsRegistry b;
    b.distribution("d"); // registered, never sampled
    a.mergeFrom(b);
    EXPECT_EQ(a.findDistribution("d")->count(), 1u);
    EXPECT_EQ(a.findDistribution("d")->min(), 5u);
}

TEST(Merge, FormulasRegisterWhereAbsent)
{
    StatsRegistry a;
    StatsRegistry b;
    b.counter("x.n") += 1;
    b.counter("x.d") += 2;
    b.formula("r", "x.n", "x.d");
    a.mergeFrom(b);
    EXPECT_DOUBLE_EQ(a.formulaValue("r"), 0.5);
}

TEST(Merge, OrderInvariantAggregation)
{
    // The campaign merges per-job registries in job order; the result
    // must not depend on which jobs contributed which counters.
    StatsRegistry parts[3];
    parts[0].counter("c") += 1;
    parts[1].counter("c") += 2;
    parts[1].distribution("d").sample(10);
    parts[2].distribution("d").sample(20);

    StatsRegistry fwd;
    for (const StatsRegistry& p : parts)
        fwd.mergeFrom(p);
    StatsRegistry rev;
    for (int i = 2; i >= 0; --i)
        rev.mergeFrom(parts[i]);

    std::ostringstream a, b;
    fwd.dumpJson(a);
    rev.dumpJson(b);
    EXPECT_EQ(a.str(), b.str());
}
