/**
 * @file
 * StatsRegistry unit tests: counter sum() pattern matching (including
 * the overlap and no-match edge cases), log2 Distribution bucketing,
 * Formula evaluation, and the schema headers of both dump formats.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace tmsim;
using Dist = StatsRegistry::Distribution;

TEST(StatsSum, ExactNameWithoutStar)
{
    StatsRegistry reg;
    reg.counter("cpu0.loads") += 7;
    EXPECT_EQ(reg.sum("cpu0.loads"), 7u);
    EXPECT_EQ(reg.sum("cpu0.stores"), 0u); // never registered
}

TEST(StatsSum, EmptySuffixMatchesEveryPrefixedCounter)
{
    StatsRegistry reg;
    reg.counter("cpu0.loads") += 1;
    reg.counter("cpu1.loads") += 2;
    reg.counter("cpu10.stores") += 4;
    reg.counter("bus.transfers") += 100;
    EXPECT_EQ(reg.sum("cpu*"), 7u);
    EXPECT_EQ(reg.sum("*"), 107u); // empty prefix AND suffix: everything
}

TEST(StatsSum, EmptyPrefixMatchesEverySuffixedCounter)
{
    StatsRegistry reg;
    reg.counter("cpu0.htm.begins") += 3;
    reg.counter("cpu1.htm.begins") += 4;
    reg.counter("cpu1.htm.begins_other") += 8;
    EXPECT_EQ(reg.sum("*.htm.begins"), 7u);
}

TEST(StatsSum, PrefixAndSuffixMayNotOverlap)
{
    StatsRegistry reg;
    // "aba" matches prefix "ab" and suffix "ba" only if they may share
    // the middle character; sum() must require disjoint halves.
    reg.counter("aba") += 1;
    reg.counter("abba") += 2;
    reg.counter("abxba") += 4;
    EXPECT_EQ(reg.sum("ab*ba"), 6u);
}

TEST(StatsSum, NoMatchIsZero)
{
    StatsRegistry reg;
    reg.counter("cpu0.loads") += 5;
    EXPECT_EQ(reg.sum("gpu*"), 0u);
    EXPECT_EQ(reg.sum("cpu*.misses"), 0u);
    EXPECT_EQ(reg.sum("*"), 5u);
}

TEST(StatsSum, SameNameReturnsSameCounter)
{
    StatsRegistry reg;
    StatsRegistry::Counter& a = reg.counter("shared.name");
    StatsRegistry::Counter& b = reg.counter("shared.name");
    EXPECT_EQ(&a, &b);
    a += 3;
    ++b;
    EXPECT_EQ(reg.value("shared.name"), 4u);
}

TEST(Distribution, BucketOfIsLog2Shaped)
{
    EXPECT_EQ(Dist::bucketOf(0), 0);
    EXPECT_EQ(Dist::bucketOf(1), 1);
    EXPECT_EQ(Dist::bucketOf(2), 2);
    EXPECT_EQ(Dist::bucketOf(3), 2);
    EXPECT_EQ(Dist::bucketOf(4), 3);
    EXPECT_EQ(Dist::bucketOf(7), 3);
    EXPECT_EQ(Dist::bucketOf(8), 4);
    EXPECT_EQ(Dist::bucketOf(1023), 10);
    EXPECT_EQ(Dist::bucketOf(1024), 11);
    EXPECT_EQ(Dist::bucketOf(~std::uint64_t{0}), 64);
}

TEST(Distribution, BucketBoundsTileTheFullRange)
{
    EXPECT_EQ(Dist::bucketLo(0), 0u);
    EXPECT_EQ(Dist::bucketHi(0), 0u);
    for (int b = 1; b < Dist::numBuckets; ++b) {
        EXPECT_EQ(Dist::bucketLo(b), Dist::bucketHi(b - 1) + 1)
            << "gap at bucket " << b;
        EXPECT_EQ(Dist::bucketOf(Dist::bucketLo(b)), b);
        EXPECT_EQ(Dist::bucketOf(Dist::bucketHi(b)), b);
    }
    EXPECT_EQ(Dist::bucketHi(64), ~std::uint64_t{0});
}

TEST(Distribution, SampleTracksCountMinMaxMeanAndBuckets)
{
    StatsRegistry reg;
    Dist& d = reg.distribution("d");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.min(), 0u);
    EXPECT_EQ(d.max(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.highestBucket(), -1);

    for (std::uint64_t v : {0ull, 1ull, 3ull, 3ull, 100ull})
        d.sample(v);
    EXPECT_EQ(d.count(), 5u);
    EXPECT_EQ(d.total(), 107u);
    EXPECT_EQ(d.min(), 0u);
    EXPECT_EQ(d.max(), 100u);
    EXPECT_DOUBLE_EQ(d.mean(), 107.0 / 5.0);
    EXPECT_EQ(d.bucketCount(0), 1u); // {0}
    EXPECT_EQ(d.bucketCount(1), 1u); // {1}
    EXPECT_EQ(d.bucketCount(2), 2u); // {2,3}
    EXPECT_EQ(d.bucketCount(7), 1u); // [64,127]
    EXPECT_EQ(d.highestBucket(), 7);

    std::uint64_t bucketSum = 0;
    for (int b = 0; b < Dist::numBuckets; ++b)
        bucketSum += d.bucketCount(b);
    EXPECT_EQ(bucketSum, d.count());

    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.highestBucket(), -1);
}

TEST(Formula, EvaluatesLazilyAgainstCurrentCounters)
{
    StatsRegistry reg;
    reg.counter("cpu0.hits") += 3;
    reg.counter("cpu1.hits") += 1;
    reg.counter("cpu0.accesses") += 8;
    reg.counter("cpu1.accesses") += 8;
    reg.formula("hit_rate", "cpu*.hits", "cpu*.accesses");
    EXPECT_DOUBLE_EQ(reg.formulaValue("hit_rate"), 4.0 / 16.0);

    reg.counter("cpu0.hits") += 4; // formulas never go stale
    EXPECT_DOUBLE_EQ(reg.formulaValue("hit_rate"), 8.0 / 16.0);

    reg.formula("div_zero", "cpu*.hits", "cpu*.misses");
    EXPECT_DOUBLE_EQ(reg.formulaValue("div_zero"), 0.0);
    EXPECT_DOUBLE_EQ(reg.formulaValue("no_such_formula"), 0.0);
}

TEST(Dump, TextDumpLeadsWithSchemaHeader)
{
    StatsRegistry reg;
    reg.counter("a.b") += 2;
    reg.distribution("lat").sample(5);
    reg.formula("ratio", "a.b", "a.b");
    std::ostringstream os;
    reg.dump(os);
    const std::string text = os.str();
    EXPECT_EQ(text.rfind("# tmsim-stats schema 2\n", 0), 0u)
        << "dump must lead with the schema header, got: " << text;
    EXPECT_NE(text.find("a.b 2\n"), std::string::npos);
    EXPECT_NE(text.find("lat::samples 1\n"), std::string::npos);
    EXPECT_NE(text.find("lat::bucket[4,7] 1\n"), std::string::npos);
    EXPECT_NE(text.find("ratio 1\n"), std::string::npos);
}

TEST(Dump, JsonDumpCarriesSchemaAndAllThreeKinds)
{
    StatsRegistry reg;
    reg.counter("a.b") += 2;
    reg.distribution("lat").sample(5);
    reg.formula("ratio", "a.b", "a.b");
    std::ostringstream os;
    reg.dumpJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"schema\": \"tmsim-stats\""), std::string::npos);
    EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"a.b\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"samples\": 1"), std::string::npos);
    EXPECT_NE(json.find("{\"lo\": 4, \"hi\": 7, \"count\": 1}"),
              std::string::npos);
    EXPECT_NE(json.find("\"numerator\": \"a.b\""), std::string::npos);
}

TEST(Reset, ResetAllZeroesCountersAndDistributions)
{
    StatsRegistry reg;
    reg.counter("c") += 9;
    reg.distribution("d").sample(9);
    reg.resetAll();
    EXPECT_EQ(reg.value("c"), 0u);
    EXPECT_EQ(reg.findDistribution("d")->count(), 0u);
}

TEST(JainFairness, PerfectAndSkewedShares)
{
    StatsRegistry reg;
    reg.counter("cpu0.commits") += 4;
    reg.counter("cpu1.commits") += 4;
    reg.jainFairness("fair", "cpu*.commits");
    EXPECT_DOUBLE_EQ(reg.formulaValue("fair"), 1.0);

    reg.counter("cpu1.commits") += 4; // 4 vs 8
    EXPECT_DOUBLE_EQ(reg.formulaValue("fair"),
                     (12.0 * 12.0) / (2.0 * (16.0 + 64.0)));
}

TEST(JainFairness, AllZeroCountersArePerfectlyFair)
{
    // n matched counters all holding zero are equal shares of
    // nothing: fairness 1.0, not the old divide-by-zero 0.0.
    StatsRegistry reg;
    reg.counter("cpu0.commits");
    reg.counter("cpu1.commits");
    reg.jainFairness("fair", "cpu*.commits");
    EXPECT_DOUBLE_EQ(reg.formulaValue("fair"), 1.0);
}

TEST(JainFairness, NoMatchingCounterReadsZero)
{
    StatsRegistry reg;
    reg.jainFairness("fair", "cpu*.commits");
    EXPECT_DOUBLE_EQ(reg.formulaValue("fair"), 0.0);
}

TEST(Merge, CountersAddAndDistributionsFold)
{
    StatsRegistry a;
    a.counter("c") += 3;
    a.distribution("d").sample(1);
    a.distribution("d").sample(100);

    StatsRegistry b;
    b.counter("c") += 4;
    b.counter("only_b") += 7;
    b.distribution("d").sample(50);
    b.distribution("only_b_dist").sample(9);

    a.mergeFrom(b);
    EXPECT_EQ(a.value("c"), 7u);
    EXPECT_EQ(a.value("only_b"), 7u);
    const auto* d = a.findDistribution("d");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->count(), 3u);
    EXPECT_EQ(d->min(), 1u);
    EXPECT_EQ(d->max(), 100u);
    ASSERT_NE(a.findDistribution("only_b_dist"), nullptr);
    EXPECT_EQ(a.findDistribution("only_b_dist")->count(), 1u);
}

TEST(Merge, EmptySourceDistributionIsANoOp)
{
    StatsRegistry a;
    a.distribution("d").sample(5);
    StatsRegistry b;
    b.distribution("d"); // registered, never sampled
    a.mergeFrom(b);
    EXPECT_EQ(a.findDistribution("d")->count(), 1u);
    EXPECT_EQ(a.findDistribution("d")->min(), 5u);
}

TEST(Merge, FormulasRegisterWhereAbsent)
{
    StatsRegistry a;
    StatsRegistry b;
    b.counter("x.n") += 1;
    b.counter("x.d") += 2;
    b.formula("r", "x.n", "x.d");
    a.mergeFrom(b);
    EXPECT_DOUBLE_EQ(a.formulaValue("r"), 0.5);
}

TEST(Merge, OrderInvariantAggregation)
{
    // The campaign merges per-job registries in job order; the result
    // must not depend on which jobs contributed which counters.
    StatsRegistry parts[3];
    parts[0].counter("c") += 1;
    parts[1].counter("c") += 2;
    parts[1].distribution("d").sample(10);
    parts[2].distribution("d").sample(20);

    StatsRegistry fwd;
    for (const StatsRegistry& p : parts)
        fwd.mergeFrom(p);
    StatsRegistry rev;
    for (int i = 2; i >= 0; --i)
        rev.mergeFrom(parts[i]);

    std::ostringstream a, b;
    fwd.dumpJson(a);
    rev.dumpJson(b);
    EXPECT_EQ(a.str(), b.str());
}
