/**
 * @file
 * Direct unit tests of the HtmContext state machine — no Machine, no
 * timing: nesting-level bookkeeping, versioning data structures,
 * violation registers, set queries and the commit/rollback logic in
 * isolation.
 */

#include <gtest/gtest.h>

#include "htm/htm_context.hh"
#include "mem/backing_store.hh"
#include "sim/stats.hh"

using namespace tmsim;

namespace {

struct Fixture
{
    StatsRegistry stats;
    BackingStore mem{1 << 20};
    HtmContext ctx;

    explicit Fixture(HtmConfig cfg = HtmConfig::paperLazy())
        : ctx(0, cfg, mem, nullptr, nullptr, stats)
    {
    }
};

} // namespace

TEST(HtmContextUnit, BeginPushesLevelsUpToHwLimit)
{
    HtmConfig cfg = HtmConfig::paperLazy();
    cfg.maxHwLevels = 3;
    Fixture f(cfg);
    EXPECT_TRUE(f.ctx.begin(TxKind::Closed, 1));
    EXPECT_TRUE(f.ctx.begin(TxKind::Closed, 2));
    EXPECT_TRUE(f.ctx.begin(TxKind::Closed, 3));
    EXPECT_FALSE(f.ctx.begin(TxKind::Closed, 4)); // subsumed
    EXPECT_EQ(f.ctx.depth(), 3);
    EXPECT_EQ(f.ctx.logicalDepth(), 4);
    EXPECT_TRUE(f.ctx.topIsSubsumed());
    f.ctx.commitSubsumed();
    EXPECT_FALSE(f.ctx.topIsSubsumed());
    EXPECT_EQ(f.ctx.age(), 1u); // outermost begin tick
}

TEST(HtmContextUnit, WriteBufferVisibilityAcrossLevels)
{
    Fixture f;
    f.mem.write(0x100, 7);
    f.ctx.begin(TxKind::Closed, 0);
    f.ctx.specWrite(0x100, 10);
    EXPECT_EQ(f.ctx.specRead(0x100), 10u); // own write
    f.ctx.begin(TxKind::Closed, 1);
    EXPECT_EQ(f.ctx.specRead(0x100), 10u); // ancestor state visible
    f.ctx.specWrite(0x100, 20);
    EXPECT_EQ(f.ctx.specRead(0x100), 20u); // innermost wins
    EXPECT_EQ(f.mem.read(0x100), 7u);      // nothing escaped
    f.ctx.commitClosedTop();
    EXPECT_EQ(f.ctx.specRead(0x100), 20u); // merged into parent
    f.ctx.setTopValidated();
    f.ctx.commitTopToMemory();
    f.ctx.popCommittedTop();
    EXPECT_EQ(f.mem.read(0x100), 20u);
}

TEST(HtmContextUnit, SetQueriesReportPerLevelMasks)
{
    Fixture f;
    f.ctx.begin(TxKind::Closed, 0);
    f.ctx.specRead(0x100);
    f.ctx.begin(TxKind::Closed, 1);
    f.ctx.specWrite(0x100, 1);
    f.ctx.specRead(0x200);
    Addr l1 = f.ctx.trackUnit(0x100);
    Addr l2 = f.ctx.trackUnit(0x200);
    EXPECT_EQ(f.ctx.levelsReading(l1), 0x1u);
    EXPECT_EQ(f.ctx.levelsWriting(l1), 0x2u);
    EXPECT_EQ(f.ctx.levelsReading(l2), 0x2u);
    f.ctx.commitClosedTop();
    EXPECT_EQ(f.ctx.levelsReading(l1), 0x1u);
    EXPECT_EQ(f.ctx.levelsWriting(l1), 0x1u); // merged down
    EXPECT_EQ(f.ctx.levelsReading(l2), 0x1u);
}

TEST(HtmContextUnit, RollbackToIntermediateLevel)
{
    Fixture f;
    f.ctx.begin(TxKind::Closed, 0);
    f.ctx.specWrite(0x100, 1);
    f.ctx.begin(TxKind::Closed, 1);
    f.ctx.specWrite(0x200, 2);
    f.ctx.begin(TxKind::Closed, 2);
    f.ctx.specWrite(0x300, 3);
    f.ctx.rollbackTo(2); // kill levels 3 and 2, keep 1
    EXPECT_EQ(f.ctx.depth(), 1);
    EXPECT_EQ(f.ctx.levelsWriting(f.ctx.trackUnit(0x100)), 0x1u);
    EXPECT_EQ(f.ctx.levelsWriting(f.ctx.trackUnit(0x200)), 0u);
    EXPECT_EQ(f.ctx.levelsWriting(f.ctx.trackUnit(0x300)), 0u);
}

TEST(HtmContextUnit, UndoLogRegionsNestAndRestoreFifo)
{
    Fixture f(HtmConfig::eagerUndoLog());
    f.mem.write(0x100, 5);
    f.ctx.begin(TxKind::Closed, 0);
    f.ctx.specWrite(0x100, 6);
    f.ctx.specWrite(0x100, 7); // second write: second undo entry
    EXPECT_EQ(f.ctx.undoLogSize(), 2u);
    f.ctx.begin(TxKind::Closed, 1);
    f.ctx.specWrite(0x100, 8);
    EXPECT_EQ(f.mem.read(0x100), 8u);
    f.ctx.rollbackTo(2);
    EXPECT_EQ(f.mem.read(0x100), 7u); // child undone only
    f.ctx.rollbackTo(1);
    EXPECT_EQ(f.mem.read(0x100), 5u); // FILO to the original
    EXPECT_EQ(f.ctx.undoLogSize(), 0u);
}

TEST(HtmContextUnit, ImmediateWritesAreUndoneOnlyWithinTx)
{
    Fixture f;
    f.mem.write(0x100, 1);
    f.ctx.immWrite(0x100, 2); // outside any transaction: plain store
    EXPECT_EQ(f.mem.read(0x100), 2u);
    f.ctx.begin(TxKind::Closed, 0);
    f.ctx.immWrite(0x100, 3);
    f.ctx.rollbackTo(1);
    EXPECT_EQ(f.mem.read(0x100), 2u); // in-tx imst rolled back
}

TEST(HtmContextUnit, ViolationMaskClampAndPromotion)
{
    Fixture f;
    f.ctx.begin(TxKind::Closed, 0);
    f.ctx.begin(TxKind::Closed, 1);
    f.ctx.raiseViolation(0x2, 0x40);
    EXPECT_EQ(f.ctx.xvcurrent(), 0x2u);
    EXPECT_EQ(f.ctx.xvaddr(), 0x40u);
    // Level 2 disappears (commit): the bit transfers to level 1 via
    // commitClosedTop; a stale deeper bit clamps to depth.
    f.ctx.clearCurrentViolations();
    f.ctx.raiseViolation(0x4, 0x80); // bogus deep bit
    f.ctx.clampMasksToDepth();
    EXPECT_EQ(f.ctx.xvcurrent(), 0x2u); // clamped onto level 2

    f.ctx.setReporting(false);
    f.ctx.raiseViolation(0x1, 0xC0);
    EXPECT_EQ(f.ctx.xvpending(), 0x1u);
    f.ctx.promotePendingForLevel(1);
    EXPECT_EQ(f.ctx.xvpending(), 0u);
    EXPECT_EQ(f.ctx.xvcurrent() & 0x1u, 0x1u);
}

TEST(HtmContextUnit, ReportRegistersLatchFirstUndeliveredConflict)
{
    // Two back-to-back conflicts before any delivery: the report
    // registers must keep the FIRST address/attacker — the second
    // conflict only accumulates mask bits. Overwriting would make the
    // handler chase the wrong line (the original bug this guards).
    Fixture f;
    f.ctx.begin(TxKind::Closed, 0);
    f.ctx.raiseViolation(0x1, 0x40, 3);
    f.ctx.raiseViolation(0x1, 0x80, 5);
    EXPECT_EQ(f.ctx.xvaddr(), 0x40u);
    EXPECT_EQ(f.ctx.xvattacker(), 3);

    // Delivery consumes the report; the next conflict re-latches.
    f.ctx.consumeReport();
    f.ctx.raiseViolation(0x1, 0xC0, 7);
    EXPECT_EQ(f.ctx.xvaddr(), 0xC0u);
    EXPECT_EQ(f.ctx.xvattacker(), 7);
}

TEST(HtmContextUnit, ReportReleasesWhenEveryMaskBitClears)
{
    // Without an explicit consume, clearing all mask bits (software
    // acknowledged every violation) also unlatches the report.
    Fixture f;
    f.ctx.begin(TxKind::Closed, 0);
    f.ctx.raiseViolation(0x1, 0x40, 2);
    f.ctx.raiseViolation(0x1, 0x80, 4);
    EXPECT_EQ(f.ctx.xvaddr(), 0x40u);
    f.ctx.clearCurrentViolations();
    f.ctx.raiseViolation(0x1, 0x80, 4);
    EXPECT_EQ(f.ctx.xvaddr(), 0x80u);
    EXPECT_EQ(f.ctx.xvattacker(), 4);
}

TEST(HtmContextUnit, UndoIndexSurvivesCommitAndRollbackResizes)
{
    // oldestUndoValue / patchUndoEntries are index-backed; the index
    // must stay consistent as nested levels push, commit (merge) and
    // roll back undo regions for the same word.
    HtmConfig cfg = HtmConfig::eagerUndoLog();
    Fixture f(cfg);
    f.mem.write(0x100, 7);

    f.ctx.begin(TxKind::Closed, 0);
    f.ctx.specWrite(0x100, 10);
    EXPECT_EQ(f.ctx.oldestUndoValue(0x100), 7u);
    f.ctx.begin(TxKind::Closed, 1);
    f.ctx.specWrite(0x100, 20);
    EXPECT_EQ(f.ctx.oldestUndoValue(0x100), 7u);

    // Inner rollback restores 10 and drops its undo entry; the
    // remaining entry still maps to the oldest value.
    f.ctx.rollbackTo(2);
    EXPECT_EQ(f.mem.read(0x100), 10u);
    EXPECT_EQ(f.ctx.oldestUndoValue(0x100), 7u);

    // A strong-atomicity patch rewrites every remaining entry.
    f.ctx.patchUndoEntries(0x100, 99);
    EXPECT_EQ(f.ctx.oldestUndoValue(0x100), 99u);
    f.ctx.rollbackTo(1);
    EXPECT_EQ(f.mem.read(0x100), 99u);
    EXPECT_EQ(f.ctx.undoLogSize(), 0u);
}

TEST(HtmContextUnit, ReturnFromHandlerPromotesPending)
{
    Fixture f;
    f.ctx.begin(TxKind::Closed, 0);
    f.ctx.setReporting(false);
    f.ctx.raiseViolation(0x1, 0);
    EXPECT_FALSE(f.ctx.deliverable());
    EXPECT_TRUE(f.ctx.returnFromHandler());
    EXPECT_TRUE(f.ctx.deliverable());
    EXPECT_TRUE(f.ctx.reportingEnabled());
}

TEST(HtmContextUnit, OpenCommitPatchesAncestorBuffer)
{
    Fixture f;
    f.mem.write(0x100, 1);
    f.ctx.begin(TxKind::Closed, 0);
    f.ctx.specWrite(0x100, 2); // parent buffered write
    f.ctx.begin(TxKind::Open, 1);
    f.ctx.specWrite(0x100, 3);
    f.ctx.setTopValidated();
    f.ctx.commitTopToMemory();
    f.ctx.popCommittedTop();
    EXPECT_EQ(f.mem.read(0x100), 3u);      // published
    EXPECT_EQ(f.ctx.specRead(0x100), 3u);  // parent buffer patched
    f.ctx.rollbackTo(1);
    EXPECT_EQ(f.mem.read(0x100), 3u);      // open commit survives
}

TEST(HtmContextUnit, TrackUnitRespectsGranularity)
{
    Fixture line;
    EXPECT_EQ(line.ctx.trackUnit(0x128), line.ctx.lineOf(0x128));

    HtmConfig cfg = HtmConfig::paperLazy();
    cfg.granularity = TrackGranularity::Word;
    Fixture word(cfg);
    EXPECT_EQ(word.ctx.trackUnit(0x128), 0x128u);
    EXPECT_NE(word.ctx.trackUnit(0x128), word.ctx.trackUnit(0x120));
}

TEST(HtmContextUnit, ResetAllClearsEverything)
{
    Fixture f;
    f.ctx.begin(TxKind::Closed, 0);
    f.ctx.specWrite(0x100, 1);
    f.ctx.raiseViolation(0x1, 0);
    f.ctx.resetAll();
    EXPECT_FALSE(f.ctx.inTx());
    EXPECT_EQ(f.ctx.xvcurrent(), 0u);
    EXPECT_EQ(f.ctx.undoLogSize(), 0u);
    EXPECT_TRUE(f.ctx.reportingEnabled());
}

TEST(HtmContextUnit, UndoLogWithLazyConflictIsRejected)
{
    HtmConfig bad;
    bad.version = VersionMode::UndoLog;
    bad.conflict = ConflictMode::Lazy;
    auto attempt = [&] { Fixture f(bad); };
    EXPECT_EXIT(attempt(), ::testing::ExitedWithCode(1),
                "undo-log versioning requires eager conflict detection");
}
