/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering and
 * determinism, coroutine task chaining, exception propagation, wakers,
 * stats, and the RNG.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

using namespace tmsim;

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 20u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(7, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(1, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 2u);
}

TEST(EventQueue, RunStopsAtMaxTick)
{
    EventQueue eq;
    bool fired = false;
    eq.schedule(100, [&] { fired = true; });
    eq.run(50);
    EXPECT_FALSE(fired);
    EXPECT_EQ(eq.curTick(), 50u);
    eq.run();
    EXPECT_TRUE(fired);
}

namespace {

SimTask
child(EventQueue& eq, int& counter)
{
    co_await Delay{eq, 5};
    ++counter;
}

SimTask
parent(EventQueue& eq, int& counter)
{
    co_await child(eq, counter);
    co_await child(eq, counter);
    ++counter;
}

SimTask
thrower(EventQueue& eq)
{
    co_await Delay{eq, 1};
    throw std::runtime_error("boom");
}

SimTask
catcher(EventQueue& eq, bool& caught)
{
    try {
        co_await thrower(eq);
    } catch (const std::runtime_error&) {
        caught = true;
    }
}

} // namespace

TEST(Task, ChainedChildrenAdvanceTime)
{
    EventQueue eq;
    int counter = 0;
    SimTask t = parent(eq, counter);
    t.start();
    eq.run();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(counter, 3);
    EXPECT_EQ(eq.curTick(), 10u);
}

TEST(Task, ExceptionPropagatesThroughAwait)
{
    EventQueue eq;
    bool caught = false;
    SimTask t = catcher(eq, caught);
    t.start();
    eq.run();
    EXPECT_TRUE(t.done());
    EXPECT_TRUE(caught);
}

TEST(Task, ResultRethrowsTopLevelException)
{
    EventQueue eq;
    SimTask t = thrower(eq);
    t.start();
    eq.run();
    ASSERT_TRUE(t.done());
    EXPECT_THROW(t.result(), std::runtime_error);
}

namespace {

WordTask
produceValue(EventQueue& eq)
{
    co_await Delay{eq, 3};
    co_return 42;
}

WordTask
consumeValue(EventQueue& eq)
{
    Word v = co_await produceValue(eq);
    co_return v * 2;
}

} // namespace

TEST(Task, ValueTasksReturnThroughAwait)
{
    EventQueue eq;
    WordTask t = consumeValue(eq);
    t.start();
    eq.run();
    ASSERT_TRUE(t.done());
    EXPECT_EQ(t.result(), 84u);
}

namespace {

SimTask
waiter(Waker& w, int& state)
{
    state = 1;
    co_await WaitOn{w};
    state = 2;
}

} // namespace

TEST(Waker, WakeResumesParkedCoroutine)
{
    EventQueue eq;
    Waker w(eq);
    int state = 0;
    SimTask t = waiter(w, state);
    t.start();
    eq.run();
    EXPECT_EQ(state, 1);
    EXPECT_FALSE(t.done());
    w.wake();
    eq.run();
    EXPECT_EQ(state, 2);
    EXPECT_TRUE(t.done());
}

TEST(Waker, EarlyWakeIsNotLost)
{
    EventQueue eq;
    Waker w(eq);
    w.wake(); // nobody parked yet
    int state = 0;
    SimTask t = waiter(w, state);
    t.start();
    eq.run();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(state, 2);
}

TEST(Stats, CounterRegistryAndPatterns)
{
    StatsRegistry stats;
    stats.counter("cpu0.loads") += 5;
    stats.counter("cpu1.loads") += 7;
    stats.counter("cpu0.stores") += 3;
    EXPECT_EQ(stats.value("cpu0.loads"), 5u);
    EXPECT_EQ(stats.value("missing"), 0u);
    EXPECT_EQ(stats.sum("cpu*.loads"), 12u);
    EXPECT_EQ(stats.sum("cpu0.loads"), 5u);
    stats.resetAll();
    EXPECT_EQ(stats.sum("cpu*.loads"), 0u);
}

TEST(Rng, DeterministicAndBounded)
{
    Rng a(123), b(123), c(124);
    bool allEqual = true, anyDiff = false;
    for (int i = 0; i < 100; ++i) {
        auto va = a.next(), vb = b.next(), vc = c.next();
        allEqual = allEqual && (va == vb);
        anyDiff = anyDiff || (va != vc);
    }
    EXPECT_TRUE(allEqual);
    EXPECT_TRUE(anyDiff);

    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.range(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}
