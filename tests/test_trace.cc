/**
 * @file
 * TxTracer integration tests: run a contended workload with tracing
 * enabled, then check the exported Chrome trace's structure (balanced
 * B/E slice pairs per CPU track, schema metadata) and the
 * distribution-vs-counter invariants the instrumentation guarantees.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/machine.hh"
#include "runtime/tx_thread.hh"
#include "sim/trace.hh"
#include "workloads/harness.hh"

using namespace tmsim;

namespace {

MachineConfig
config(HtmConfig htm, int cpus)
{
    MachineConfig cfg;
    cfg.numCpus = cpus;
    cfg.htm = htm;
    cfg.memBytes = 8 * 1024 * 1024;
    return cfg;
}

/** Run @p cpus threads each incrementing a shared counter @p iters
 *  times through atomic(); contention guarantees violations. */
void
runContended(Machine& m, std::vector<std::unique_ptr<TxThread>>& threads,
             int cpus, int iters)
{
    Addr a = m.memory().allocate(64);
    for (int i = 0; i < cpus; ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));
    for (int i = 0; i < cpus; ++i) {
        m.spawn(i, [&, i, iters](Cpu&) -> SimTask {
            for (int k = 0; k < iters; ++k) {
                co_await threads[static_cast<size_t>(i)]->atomic(
                    [&](TxThread& t) -> SimTask {
                        Word v = co_await t.ld(a);
                        co_await t.work(20);
                        co_await t.st(a, v + 1);
                    });
            }
        });
    }
    m.run();
    EXPECT_EQ(m.memory().read(a), static_cast<Word>(cpus * iters));
}

} // namespace

TEST(Trace, NullSinkRecordsNothing)
{
    TxTracer& nil = TxTracer::nil();
    EXPECT_FALSE(nil.enabled());
    nil.beginTx(0, TxTracer::Ev::TxOuter, 1);
    nil.instant(0, TxTracer::Ev::Validated, 1);
    nil.endTx(0, 1, TxTracer::Outcome::Commit);
    nil.span(0, TxTracer::Ev::Backoff, 10, 5);
    EXPECT_EQ(nil.eventCount(), 0u);
}

TEST(Trace, DisabledTracerRecordsNothingDuringRun)
{
    Machine m(config(HtmConfig::paperLazy(), 4));
    std::vector<std::unique_ptr<TxThread>> threads;
    runContended(m, threads, 4, 10);
    EXPECT_FALSE(m.tracer().enabled());
    EXPECT_EQ(m.tracer().eventCount(), 0u);
}

TEST(Trace, SlicePairsBalancePerCpuTrack)
{
    const int cpus = 4;
    Machine m(config(HtmConfig::paperLazy(), cpus));
    m.tracer().enable(true);
    std::vector<std::unique_ptr<TxThread>> threads;
    runContended(m, threads, cpus, 10);
    ASSERT_GT(m.tracer().eventCount(), 0u);
    EXPECT_EQ(m.tracer().droppedCount(), 0u);

    std::ostringstream os;
    m.tracer().writeChromeTrace(os);
    std::istringstream in(os.str());

    // One event per line: balance B against E per tid and require every
    // commit/rollback outcome to appear on an E line.
    std::vector<int> open(static_cast<size_t>(cpus), 0);
    int slices = 0, outcomes = 0, meta = 0;
    std::string line;
    while (std::getline(in, line)) {
        size_t php = line.find("\"ph\": \"");
        if (php == std::string::npos)
            continue;
        char ph = line[php + 7];
        size_t tidp = line.find("\"tid\": ");
        ASSERT_NE(tidp, std::string::npos) << line;
        int tid = std::atoi(line.c_str() + tidp + 7);
        ASSERT_LT(tid, cpus);
        if (ph == 'M') {
            ++meta;
        } else if (ph == 'B') {
            ++open[static_cast<size_t>(tid)];
            ++slices;
        } else if (ph == 'E') {
            --open[static_cast<size_t>(tid)];
            EXPECT_GE(open[static_cast<size_t>(tid)], 0)
                << "E without B on track " << tid;
            if (line.find("\"outcome\": ") != std::string::npos)
                ++outcomes;
        }
    }
    EXPECT_EQ(meta, cpus); // one thread_name record per track
    EXPECT_GT(slices, 0);
    EXPECT_EQ(slices, outcomes); // every slice end names its outcome
    for (int i = 0; i < cpus; ++i)
        EXPECT_EQ(open[static_cast<size_t>(i)], 0)
            << "unbalanced slices on track " << i;

    EXPECT_NE(os.str().find("\"schema\": \"tmsim-trace\""),
              std::string::npos);
}

TEST(Trace, DistributionSamplesMatchScalarCounters)
{
    const int cpus = 4;
    Machine m(config(HtmConfig::paperLazy(), cpus));
    m.tracer().enable(true);
    std::vector<std::unique_ptr<TxThread>> threads;
    runContended(m, threads, cpus, 15);
    StatsRegistry& s = m.stats();

    const std::uint64_t commits = s.sum("cpu*.htm.commits") +
                                  s.sum("cpu*.htm.open_commits");
    EXPECT_GT(commits, 0u);
    EXPECT_EQ(s.findDistribution("htm.rset_size_at_commit")->count(),
              commits);
    EXPECT_EQ(s.findDistribution("htm.wset_size_at_commit")->count(),
              commits);
    EXPECT_EQ(s.findDistribution("htm.tx_duration_committed")->count(),
              s.sum("cpu*.htm.outer_commits"));
    EXPECT_EQ(s.findDistribution("htm.tx_duration_violated")->count(),
              s.sum("cpu*.rollbacks_outer"));
    EXPECT_EQ(s.findDistribution("htm.violation_to_restart")->count(),
              s.sum("cpu*.htm.restarts"));
    EXPECT_EQ(s.sum("cpu*.bus.busy_cycles"), s.value("bus.busy_cycles"));
    EXPECT_EQ(s.value("sim.ticks"), static_cast<std::uint64_t>(m.now()));
    EXPECT_GT(s.formulaValue("htm.commit_rate"), 0.0);
}

TEST(Trace, OpClassDistributionsPartitionTheTotals)
{
    // contend-mixed tags every outermost transaction "long" or
    // "short", so the per-class histograms must partition the
    // chip-wide commit-duration and restart-latency histograms
    // sample-for-sample (and cycle-for-cycle).
    auto kernel = makeNamedKernel("contend-mixed", 1);
    ASSERT_NE(kernel, nullptr);
    StatsRegistry s;
    RunResult r =
        runKernel(*kernel, HtmConfig::paperLazy(), 4, 8 << 20, &s);
    EXPECT_TRUE(r.verified);

    const auto* durAll = s.findDistribution("htm.tx_duration_committed");
    const auto* durLong =
        s.findDistribution("htm.tx_duration_committed.long");
    const auto* durShort =
        s.findDistribution("htm.tx_duration_committed.short");
    ASSERT_NE(durAll, nullptr);
    ASSERT_NE(durLong, nullptr);
    ASSERT_NE(durShort, nullptr);
    EXPECT_GT(durLong->count(), 0u);
    EXPECT_GT(durShort->count(), 0u);
    EXPECT_EQ(durLong->count() + durShort->count(), durAll->count());
    EXPECT_EQ(durLong->total() + durShort->total(), durAll->total());

    const auto* vrAll = s.findDistribution("htm.violation_to_restart");
    const auto* vrLong =
        s.findDistribution("htm.violation_to_restart.long");
    const auto* vrShort =
        s.findDistribution("htm.violation_to_restart.short");
    ASSERT_NE(vrAll, nullptr);
    ASSERT_NE(vrLong, nullptr);
    ASSERT_NE(vrShort, nullptr);
    EXPECT_EQ(vrLong->count() + vrShort->count(), vrAll->count());
    EXPECT_EQ(vrLong->total() + vrShort->total(), vrAll->total());

    // The quantile keys the ROADMAP asks for are reportable per class.
    EXPECT_GE(durLong->quantile(0.99), durLong->quantile(0.5));
    EXPECT_GE(durShort->quantile(0.99), durShort->quantile(0.5));
}

TEST(Trace, BufferCapacityDropsInsteadOfGrowing)
{
    EventQueue eq;
    TxTracer t(eq, 4);
    t.enable(true);
    for (int i = 0; i < 10; ++i)
        t.instant(0, TxTracer::Ev::Validated, 1);
    EXPECT_EQ(t.eventCount(), 4u);
    EXPECT_EQ(t.droppedCount(), 6u);
    t.clear();
    EXPECT_EQ(t.eventCount(), 0u);
    EXPECT_EQ(t.droppedCount(), 0u);
}
