/**
 * @file
 * Contention management: per-policy arbitration rules, fairness
 * bookkeeping (seniority retention, karma, starvation escalation),
 * backoff scheduling, and the satellite regressions that shipped with
 * the pluggable ContentionManager — same-tick tie-breaking, word-
 * granularity early release, and recoverable handler-stack overflow.
 */

#include <gtest/gtest.h>

#include "core/machine.hh"
#include "core/tx_signals.hh"
#include "htm/contention.hh"
#include "htm/htm_context.hh"
#include "runtime/handler_stack.hh"
#include "runtime/tx_thread.hh"
#include "workloads/kernel_contention.hh"

using namespace tmsim;

namespace {

HtmConfig
policyConfig(ContentionPolicy pol)
{
    HtmConfig cfg = HtmConfig::paperLazy();
    cfg.contention = pol;
    return cfg;
}

/** Two standalone contexts plus the manager under test — enough to
 *  exercise every arbitration rule without a Machine. */
struct CmFixture
{
    StatsRegistry stats;
    BackingStore mem{1 << 20};
    HtmConfig cfg;
    std::unique_ptr<ContentionManager> cm;
    HtmContext a;
    HtmContext b;

    explicit CmFixture(HtmConfig cfg_)
        : cfg(cfg_),
          cm(makeContentionManager(cfg, stats)),
          a(0, cfg, mem, nullptr, nullptr, stats),
          b(1, cfg, mem, nullptr, nullptr, stats)
    {
    }

    explicit CmFixture(ContentionPolicy pol)
        : CmFixture(policyConfig(pol))
    {
    }

    /** Begin an outermost attempt on both the context and the manager,
     *  the way Cpu::xbegin drives them. */
    void
    begin(HtmContext& ctx, Tick now)
    {
        ctx.begin(TxKind::Closed, now);
        cm->onOuterBegin(ctx.cpuId(), now);
    }
};

MachineConfig
config(HtmConfig htm, int cpus = 2)
{
    MachineConfig cfg;
    cfg.numCpus = cpus;
    cfg.htm = htm;
    cfg.memBytes = 4 * 1024 * 1024;
    return cfg;
}

} // namespace

// --- backoff scheduling (satellite: window guard + jitter) ---------------

TEST(ContentionBackoff, WindowGuardsZeroAndNegativeRetries)
{
    // retries <= 1 maps to the base window; pre-fix a retries==0 call
    // computed an undefined negative shift.
    EXPECT_EQ(ContentionManager::backoffWindow(0),
              ContentionManager::backoffWindow(1));
    EXPECT_EQ(ContentionManager::backoffWindow(-3),
              ContentionManager::backoffWindow(1));
    EXPECT_EQ(ContentionManager::backoffWindow(1), Cycles{8});
    EXPECT_EQ(ContentionManager::backoffWindow(2), Cycles{16});
    // Capped: the shift saturates at 7.
    EXPECT_EQ(ContentionManager::backoffWindow(8),
              ContentionManager::backoffWindow(100));
    EXPECT_EQ(ContentionManager::backoffWindow(100), Cycles{8} << 7);
}

TEST(ContentionBackoff, BaseDelayJitterIsProportionalToWindow)
{
    CmFixture f(ContentionPolicy::Requester);
    Rng rng(42);
    for (int retries : {1, 3, 7}) {
        const Cycles w = ContentionManager::backoffWindow(retries);
        Cycles lo = ~Cycles{0};
        Cycles hi = 0;
        for (int i = 0; i < 200; ++i) {
            const Cycles d =
                f.cm->backoffDelay(0, retries, /*eager=*/true, rng);
            EXPECT_GE(d, w);
            EXPECT_LT(d, 2 * w);
            lo = std::min(lo, d);
            hi = std::max(hi, d);
        }
        // The jitter really spans the window (not a fixed offset).
        EXPECT_GT(hi - lo, w / 2);
    }
    // Lazy conflicts need only symmetry-breaking jitter.
    for (int i = 0; i < 50; ++i)
        EXPECT_LT(f.cm->backoffDelay(0, 5, /*eager=*/false, rng),
                  Cycles{4});
}

TEST(ContentionBackoff, PoliteSpansDoubleWindowFromOne)
{
    CmFixture f(ContentionPolicy::Polite);
    Rng rng(7);
    const int retries = 4;
    const Cycles w = ContentionManager::backoffWindow(retries);
    Cycles lo = ~Cycles{0};
    Cycles hi = 0;
    for (int i = 0; i < 400; ++i) {
        const Cycles d =
            f.cm->backoffDelay(0, retries, /*eager=*/true, rng);
        EXPECT_GE(d, Cycles{1});
        EXPECT_LE(d, 2 * w);
        lo = std::min(lo, d);
        hi = std::max(hi, d);
    }
    // Fully randomized: draws land both under and over the base window.
    EXPECT_LT(lo, w);
    EXPECT_GT(hi, w);
}

// --- seniority (satellites: same-tick tie-break, retention) --------------

TEST(ContentionSeniority, SameTickTieBreaksByCpuIdStrictly)
{
    CmFixture f(ContentionPolicy::Timestamp);
    f.begin(f.a, 100);
    f.begin(f.b, 100);

    // seniorTo is a strict total order even at identical begin ticks;
    // the pre-fix "<=" age comparison made both transactions junior to
    // each other, so same-tick writers livelocked.
    EXPECT_FALSE(f.cm->seniorTo(f.a, f.a));
    EXPECT_TRUE(f.cm->seniorTo(f.a, f.b) != f.cm->seniorTo(f.b, f.a));
    EXPECT_TRUE(f.cm->seniorTo(f.a, f.b)); // lower CPU id wins the tie

    // Exactly one side loses the arbitration.
    EXPECT_TRUE(f.cm->requesterLoses(f.b, f.a));
    EXPECT_FALSE(f.cm->requesterLoses(f.a, f.b));
}

TEST(ContentionSeniority, RetainedAcrossRestartsResetOnCommit)
{
    CmFixture f(ContentionPolicy::Timestamp);
    f.cm->onOuterBegin(0, 5);
    f.cm->onOuterRollback(0);
    // The restart does not refresh the age: the sequence keeps its
    // original first-begin tick and stays senior.
    f.cm->onOuterBegin(0, 500);
    EXPECT_EQ(f.cm->effectiveAge(0, 500), Tick{5});

    // Commit ends the sequence; the next begin starts fresh.
    f.cm->onOuterCommit(0);
    f.cm->onOuterBegin(0, 600);
    EXPECT_EQ(f.cm->effectiveAge(0, 600), Tick{600});

    // Abandoning a sequence (no more retries) also forgets it.
    f.cm->onOuterRollback(0);
    f.cm->onSequenceAbandoned(0);
    EXPECT_EQ(f.cm->consecutiveAborts(0), 0);
    EXPECT_EQ(f.cm->effectiveAge(0, 900), Tick{900});
}

TEST(ContentionSeniority, RepeatedlyAbortedOldTxOutranksYoungOnes)
{
    CmFixture f(ContentionPolicy::Timestamp);
    f.begin(f.a, 10);
    for (int round = 0; round < 5; ++round) {
        f.cm->onOuterRollback(0);
        f.cm->onOuterBegin(0, 100 + 50 * round); // involuntary restart
        // A fresh young competitor each round.
        f.cm->onOuterCommit(1);
        f.begin(f.b, 120 + 50 * round);
        EXPECT_TRUE(f.cm->requesterLoses(f.b, f.a))
            << "young requester must lose against the old victim";
        EXPECT_FALSE(f.cm->requesterLoses(f.a, f.b));
    }
}

// --- karma ----------------------------------------------------------------

TEST(ContentionKarma, AccruesOnTrackedAccessRetainedAcrossAborts)
{
    CmFixture f(ContentionPolicy::Karma);
    f.cm->onOuterBegin(0, 1);
    for (int i = 0; i < 3; ++i)
        f.cm->onTrackedAccess(0);
    EXPECT_EQ(f.cm->karma(0), 3u);

    f.cm->onOuterRollback(0);
    f.cm->onOuterBegin(0, 50);
    EXPECT_EQ(f.cm->karma(0), 3u); // investment survives the abort
    f.cm->onTrackedAccess(0);
    EXPECT_EQ(f.cm->karma(0), 4u);

    f.cm->onOuterCommit(0);
    EXPECT_EQ(f.cm->karma(0), 0u);

    // Accesses outside an active sequence accrue nothing.
    f.cm->onTrackedAccess(0);
    EXPECT_EQ(f.cm->karma(0), 0u);
}

TEST(ContentionKarma, HigherKarmaWinsArbitration)
{
    CmFixture f(ContentionPolicy::Karma);
    f.begin(f.a, 100); // a is older...
    f.begin(f.b, 200);
    for (int i = 0; i < 5; ++i)
        f.cm->onTrackedAccess(1); // ...but b has more invested
    EXPECT_TRUE(f.cm->requesterLoses(f.a, f.b));
    EXPECT_FALSE(f.cm->requesterLoses(f.b, f.a));
    // Equal karma falls back to timestamp order.
    for (int i = 0; i < 5; ++i)
        f.cm->onTrackedAccess(0);
    EXPECT_TRUE(f.cm->requesterLoses(f.b, f.a));
}

// --- hybrid starvation guard ---------------------------------------------

TEST(ContentionHybrid, EscalatesAfterThresholdWinsEverythingUntilCommit)
{
    HtmConfig cfg = policyConfig(ContentionPolicy::Hybrid);
    cfg.starvationThreshold = 3;
    CmFixture f(cfg);
    f.begin(f.a, 100);
    f.begin(f.b, 50); // b is senior and better invested
    for (int i = 0; i < 10; ++i)
        f.cm->onTrackedAccess(1);

    f.cm->onOuterRollback(0);
    f.cm->onOuterRollback(0);
    EXPECT_FALSE(f.cm->escalated(0));
    EXPECT_TRUE(f.cm->requesterLoses(f.a, f.b));

    f.cm->onOuterRollback(0); // third consecutive abort: guard trips
    EXPECT_TRUE(f.cm->escalated(0));
    EXPECT_EQ(f.cm->consecutiveAborts(0), 3);

    // Escalation overrides karma and age in both arbitration rules.
    EXPECT_FALSE(f.cm->requesterLoses(f.a, f.b));
    EXPECT_TRUE(f.cm->requesterLoses(f.b, f.a));
    EXPECT_TRUE(f.cm->evictInPlaceVictim(f.a, f.b));
    EXPECT_FALSE(f.cm->evictInPlaceVictim(f.b, f.a));

    // Lazy committers yield their commit slot to the starving reader.
    EXPECT_TRUE(f.cm->mayYieldAtCommit());
    EXPECT_TRUE(f.cm->committerYields(f.b, f.a));
    EXPECT_FALSE(f.cm->committerYields(f.a, f.b));

    // The guard releases only at commit.
    f.cm->onOuterBegin(0, 999);
    EXPECT_TRUE(f.cm->escalated(0));
    f.cm->onOuterCommit(0);
    EXPECT_FALSE(f.cm->escalated(0));

    // Fairness observability: the trip was counted and the streak
    // distribution saw the full run.
    EXPECT_EQ(f.stats.value("htm.cm.escalations"), 1u);
    const auto* dist = f.stats.findDistribution("htm.consec_aborts");
    ASSERT_NE(dist, nullptr);
    EXPECT_EQ(dist->max(), 3u);
    const auto* atCommit =
        f.stats.findDistribution("htm.consec_aborts_at_commit");
    ASSERT_NE(atCommit, nullptr);
    EXPECT_EQ(atCommit->max(), 3u);
}

TEST(ContentionHybrid, EscalatedTransactionRetriesAlmostImmediately)
{
    HtmConfig cfg = policyConfig(ContentionPolicy::Hybrid);
    cfg.starvationThreshold = 2;
    CmFixture f(cfg);
    f.cm->onOuterBegin(0, 1);
    f.cm->onOuterRollback(0);
    f.cm->onOuterRollback(0);
    ASSERT_TRUE(f.cm->escalated(0));
    Rng rng(3);
    for (int i = 0; i < 50; ++i)
        EXPECT_LT(f.cm->backoffDelay(0, 9, /*eager=*/true, rng),
                  Cycles{4});
}

// --- legacy mapping -------------------------------------------------------

TEST(ContentionConfig, LegacyOlderWinsMapsToTimestamp)
{
    HtmConfig cfg;
    cfg.policy = ConflictPolicy::OlderWins;
    EXPECT_EQ(cfg.effectiveContention(), ContentionPolicy::Timestamp);
    cfg.contention = ContentionPolicy::Polite; // explicit knob wins
    EXPECT_EQ(cfg.effectiveContention(), ContentionPolicy::Polite);

    ContentionPolicy pol;
    EXPECT_TRUE(contentionPolicyFromName("hybrid", pol));
    EXPECT_EQ(pol, ContentionPolicy::Hybrid);
    EXPECT_FALSE(contentionPolicyFromName("nonsense", pol));
}

// --- machine-level regression: same-tick lockstep writers ----------------

TEST(ContentionMachine, SameTickLockstepWritersMakeProgress)
{
    // Two eager transactions incrementing the same word in lockstep,
    // retrying immediately with no backoff. Under the legacy OlderWins
    // ("<=" ages) arbitration, equal-age attempts each judged the other
    // senior, both self-violated, and the pair livelocked forever; the
    // strict seniority order breaks the tie by CPU id.
    HtmConfig htm = HtmConfig::paperLazy();
    htm.conflict = ConflictMode::Eager;
    htm.policy = ConflictPolicy::OlderWins;
    Machine m(config(htm));
    Addr a = m.memory().allocate(64);
    m.memory().write(a, 0);

    const int iters = 20;
    for (int cpu = 0; cpu < 2; ++cpu) {
        m.spawn(cpu, [&, cpu](Cpu& c) -> SimTask {
            // Cancel the Machine's one-tick spawn stagger so both
            // transactions really do begin on the same tick.
            if (cpu == 0)
                co_await c.exec(1);
            for (int i = 0; i < iters; ++i) {
                for (;;) {
                    try {
                        co_await c.xbegin();
                        Word v = co_await c.load(a);
                        co_await c.exec(10);
                        co_await c.store(a, v + 1);
                        co_await c.xvalidate();
                        co_await c.xcommit();
                        break;
                    } catch (const TxRollback&) {
                        // retry immediately: no backoff, so only the
                        // arbitration order provides progress
                    }
                }
            }
        });
    }
    m.run(2'000'000);
    ASSERT_TRUE(m.allDone()) << "same-tick writers livelocked";
    EXPECT_EQ(m.memory().read(a), static_cast<Word>(2 * iters));
}

// --- word-granularity early release (paper 4.7) --------------------------

TEST(ContentionRelease, WordReleaseKeepsOtherWordsOnLineTracked)
{
    // Pre-fix, release dropped the whole LINE from the read-set even
    // under word tracking, so a conflicting store to a *different*
    // word of the same line slipped by unnoticed.
    HtmConfig htm = HtmConfig::paperLazy();
    htm.conflict = ConflictMode::Eager;
    htm.granularity = TrackGranularity::Word;
    Machine m(config(htm));
    Addr line = m.memory().allocate(64);
    const Addr w0 = line;
    const Addr w1 = line + wordBytes;

    int rollbacks = 0;
    m.spawn(0, [&](Cpu& c) -> SimTask {
        for (;;) {
            try {
                co_await c.xbegin();
                co_await c.load(w0);
                co_await c.load(w1);
                co_await c.release(w1);
                co_await c.exec(3000); // conflict window
                co_await c.xvalidate();
                co_await c.xcommit();
                co_return;
            } catch (const TxRollback&) {
                ++rollbacks;
            }
        }
    });
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(600); // after the reader released w1
        co_await c.store(w0, 7); // still tracked: must violate
    });
    m.run();
    EXPECT_GE(rollbacks, 1)
        << "store to a still-tracked word of a partially released "
           "line must violate the reader";
}

TEST(ContentionRelease, WordReleaseActuallyReleasesTheAddressedWord)
{
    HtmConfig htm = HtmConfig::paperLazy();
    htm.conflict = ConflictMode::Eager;
    htm.granularity = TrackGranularity::Word;
    Machine m(config(htm));
    Addr line = m.memory().allocate(64);
    const Addr w0 = line;
    const Addr w1 = line + wordBytes;

    int rollbacks = 0;
    m.spawn(0, [&](Cpu& c) -> SimTask {
        for (;;) {
            try {
                co_await c.xbegin();
                co_await c.load(w0);
                co_await c.load(w1);
                co_await c.release(w1);
                co_await c.exec(3000);
                co_await c.xvalidate();
                co_await c.xcommit();
                co_return;
            } catch (const TxRollback&) {
                ++rollbacks;
            }
        }
    });
    m.spawn(1, [&](Cpu& c) -> SimTask {
        co_await c.exec(600);
        co_await c.store(w1, 7); // released: must NOT violate
    });
    m.run();
    EXPECT_EQ(rollbacks, 0)
        << "store to the released word must not violate the reader";
}

// --- recoverable handler-stack overflow ----------------------------------

TEST(ContentionOverflow, HandlerStackOverflowAbortsTransactionNotSim)
{
    // Pre-fix, pushing past the 2048-word handler stack called fatal()
    // and killed the whole simulation; now the registration aborts the
    // transaction recoverably with a dedicated code.
    Machine m(config(HtmConfig::paperLazy(), 1));
    TxThread t0(m.cpu(0));

    bool bodyResumedAfterOverflow = false;
    TxOutcome out;
    m.spawn(0, [&](Cpu&) -> SimTask {
        std::vector<Word> hugeArgs(4096, 0);
        out = co_await t0.atomic(
            [&](TxThread& t) -> SimTask {
                co_await t.onCommit(
                    [](TxThread&, const std::vector<Word>&) -> SimTask {
                        co_return;
                    },
                    hugeArgs);
                bodyResumedAfterOverflow = true;
            },
            TxOpts{});

        // The thread (and the sim) survive: a later transaction runs.
        TxOutcome ok = co_await t0.atomic(
            [](TxThread&) -> SimTask { co_return; });
        EXPECT_TRUE(ok.committed());
    });
    m.run();
    ASSERT_TRUE(m.allDone());
    EXPECT_EQ(out.result, TxResult::Aborted);
    EXPECT_EQ(out.abortCode, TxThread::handlerOverflowCode);
    EXPECT_FALSE(bodyResumedAfterOverflow);
    EXPECT_EQ(t0.frameCount(), 0u);
}

TEST(ContentionOverflow, HandlerStackPushRefusesOverflowWithoutFatal)
{
    // Pre-fix, push() itself called fatal() when the entry did not
    // fit, so any caller that reached it past a stale wouldOverflow
    // probe (e.g. resumed by a custom abort protocol) killed the
    // process. Now push() returns nullptr and leaves the stack intact.
    using Stack = HandlerStack<int>;
    Stack st(0x1000, 0x2000, 8); // room for one small entry

    const Stack::Entry* a = st.push(1, {7, 8});
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->wordOff, 0u);
    EXPECT_EQ(st.topWords(), 4u);

    // 2 + 5 = 7 words needed, 4 free: refused, nothing changes.
    const Stack::Entry* b = st.push(2, {1, 2, 3, 4, 5});
    EXPECT_EQ(b, nullptr);
    EXPECT_EQ(st.topWords(), 4u);
    EXPECT_EQ(st.size(), 1u);

    // An entry that fits in the remaining space still lands.
    const Stack::Entry* c = st.push(3, {9, 10});
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->wordOff, 4u);
    EXPECT_EQ(st.topWords(), 8u);
    EXPECT_TRUE(st.wouldOverflow(0));
}

// --- fairness stats -------------------------------------------------------

TEST(ContentionStats, JainFairnessIndexOverPerCpuCommits)
{
    StatsRegistry reg;
    reg.jainFairness("fair", "cpu*.commits");
    EXPECT_EQ(reg.formulaValue("fair"), 0.0); // no matching counters

    reg.counter("cpu0.commits") += 6;
    reg.counter("cpu1.commits") += 6;
    EXPECT_DOUBLE_EQ(reg.formulaValue("fair"), 1.0);

    // One CPU hogging everything: (x)^2 / (2 * x^2) = 1/2.
    StatsRegistry skew;
    skew.jainFairness("fair", "cpu*.commits");
    skew.counter("cpu0.commits") += 8;
    skew.counter("cpu1.commits") += 0;
    EXPECT_DOUBLE_EQ(skew.formulaValue("fair"), 0.5);
}

// --- end-to-end: the starvation guard bounds the abort tail --------------

namespace {

/** Run the adversarial contend kernel (8 threads hammering one hot
 *  line back-to-back) and return the worst consecutive-abort streak
 *  any transaction suffered. */
std::uint64_t
worstStreak(ContentionPolicy pol)
{
    MachineConfig cfg;
    cfg.numCpus = 8;
    cfg.htm = HtmConfig::paperLazy(); // lazy: commit-time arbitration
    cfg.htm.contention = pol;
    Machine m(cfg);

    ContentionKernel k;
    k.init(m, cfg.numCpus);

    std::vector<std::unique_ptr<TxThread>> threads;
    for (int i = 0; i < cfg.numCpus; ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));
    for (int i = 0; i < cfg.numCpus; ++i) {
        TxThread* t = threads[static_cast<size_t>(i)].get();
        m.spawn(i, [&k, t, &cfg, i](Cpu&) -> SimTask {
            co_await k.thread(*t, i, cfg.numCpus);
        });
    }
    m.run();
    EXPECT_TRUE(k.verify(m, cfg.numCpus));
    const auto* dist = m.stats().findDistribution("htm.consec_aborts");
    return dist ? dist->max() : 0;
}

} // namespace

TEST(ContentionGuard, HybridBoundsConsecutiveAbortsTimestampDoesNot)
{
    const std::uint64_t timestampWorst =
        worstStreak(ContentionPolicy::Timestamp);
    const std::uint64_t hybridWorst =
        worstStreak(ContentionPolicy::Hybrid);

    // Age order has no lever at lazy commit time: the long transaction
    // loses to every short committer and its streak runs away. The
    // starvation guard escalates it past K=8 consecutive aborts, so
    // its streak stays within a small multiple of the threshold.
    EXPECT_GT(timestampWorst, 3 * 8u);
    EXPECT_LE(hybridWorst, 3 * 8u);
    EXPECT_LT(hybridWorst, timestampWorst);
}
