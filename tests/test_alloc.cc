/**
 * @file
 * Transactional allocator (paper section 5): open-nested brk updates
 * and violation/abort compensation.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/machine.hh"
#include "runtime/tx_alloc.hh"
#include "runtime/tx_thread.hh"

using namespace tmsim;

namespace {

MachineConfig
config(int cpus = 2)
{
    MachineConfig cfg;
    cfg.numCpus = cpus;
    cfg.htm = HtmConfig::paperLazy();
    cfg.memBytes = 16 * 1024 * 1024;
    return cfg;
}

} // namespace

TEST(TxAlloc, AllocOutsideTransaction)
{
    Machine m(config(1));
    TxHeap heap = TxHeap::create(m.memory(), 1 << 20);
    TxThread t0(m.cpu(0));
    Addr p = 0;

    m.spawn(0, [&](Cpu&) -> SimTask { p = co_await heap.alloc(t0, 100); });
    m.run();
    EXPECT_NE(p, 0u);
    EXPECT_EQ(heap.liveBytes(m.memory()), 128u); // rounded to 64
    EXPECT_EQ(heap.compensations(), 0u);
}

TEST(TxAlloc, DistinctBlocksForConcurrentAllocators)
{
    constexpr int nThreads = 4;
    Machine m(config(nThreads));
    TxHeap heap = TxHeap::create(m.memory(), 1 << 20);
    std::vector<std::unique_ptr<TxThread>> threads;
    for (int i = 0; i < nThreads; ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));
    std::vector<Addr> blocks;

    for (int i = 0; i < nThreads; ++i) {
        m.spawn(i, [&, i](Cpu&) -> SimTask {
            TxThread& t = *threads[static_cast<size_t>(i)];
            for (int k = 0; k < 8; ++k) {
                co_await t.atomic([&](TxThread& th) -> SimTask {
                    Addr p = co_await heap.alloc(th, 64);
                    blocks.push_back(p);
                });
            }
        });
    }
    m.run();
    ASSERT_EQ(blocks.size(), 32u);
    std::sort(blocks.begin(), blocks.end());
    EXPECT_EQ(std::unique(blocks.begin(), blocks.end()), blocks.end());
    EXPECT_EQ(heap.liveBytes(m.memory()), 32u * 64u);
}

TEST(TxAlloc, AbortCompensatesAllocation)
{
    Machine m(config(1));
    TxHeap heap = TxHeap::create(m.memory(), 1 << 20);
    TxThread t0(m.cpu(0));

    m.spawn(0, [&](Cpu&) -> SimTask {
        TxOutcome out = co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await heap.alloc(t, 64);
            co_await t.cpu().xabort(1);
        });
        EXPECT_EQ(out.result, TxResult::Aborted);
    });
    m.run();
    EXPECT_EQ(heap.liveBytes(m.memory()), 0u);
    EXPECT_EQ(heap.compensations(), 1u);
}

TEST(TxAlloc, ViolationCompensatesThenRetrySucceeds)
{
    Machine m(config(1));
    TxHeap heap = TxHeap::create(m.memory(), 1 << 20);
    TxThread t0(m.cpu(0));
    bool first = true;

    m.spawn(0, [&](Cpu& c) -> SimTask {
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await heap.alloc(t, 64);
            if (first) {
                first = false;
                c.htm().raiseViolation(0x1, 0);
                co_await t.work(1);
            }
        });
    });
    m.run();
    // One compensated allocation plus one committed one.
    EXPECT_EQ(heap.compensations(), 1u);
    EXPECT_EQ(heap.liveBytes(m.memory()), 64u);
}

TEST(TxAlloc, ExplicitFreeReducesLiveBytes)
{
    Machine m(config(1));
    TxHeap heap = TxHeap::create(m.memory(), 1 << 20);
    TxThread t0(m.cpu(0));

    m.spawn(0, [&](Cpu&) -> SimTask {
        Addr p = co_await heap.alloc(t0, 256);
        co_await heap.free(t0, p, 256);
    });
    m.run();
    EXPECT_EQ(heap.liveBytes(m.memory()), 0u);
}

TEST(TxAlloc, CommittedAllocationNotCompensated)
{
    Machine m(config(1));
    TxHeap heap = TxHeap::create(m.memory(), 1 << 20);
    TxThread t0(m.cpu(0));

    m.spawn(0, [&](Cpu&) -> SimTask {
        co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await heap.alloc(t, 64);
        });
        // Abort in a LATER transaction must not touch the earlier
        // allocation (handlers were truncated at commit).
        TxOutcome out = co_await t0.atomic([&](TxThread& t) -> SimTask {
            co_await t.cpu().xabort(1);
        });
        EXPECT_EQ(out.result, TxResult::Aborted);
    });
    m.run();
    EXPECT_EQ(heap.compensations(), 0u);
    EXPECT_EQ(heap.liveBytes(m.memory()), 64u);
}
