/**
 * @file
 * Tests of the check/ layer: deterministic generation, replay-file
 * round-trips, the serializability oracle (clean runs pass, tampered
 * runs fail), the commit-order hooks, and the injected-bug shrink +
 * replay pipeline end to end.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "check/fuzz_driver.hh"
#include "check/fuzz_interp.hh"
#include "check/fuzz_program.hh"
#include "check/oracle.hh"
#include "core/machine.hh"
#include "runtime/tx_thread.hh"

using namespace tmsim;

TEST(FuzzProgram, GenerationIsDeterministic)
{
    for (std::uint64_t seed : {1ull, 17ull, 123456789ull}) {
        const FuzzProgram a = generateProgram(seed);
        const FuzzProgram b = generateProgram(seed);
        EXPECT_EQ(a.serialize(), b.serialize()) << "seed " << seed;
        EXPECT_GE(a.numThreads(), 1);
    }
    // Different seeds produce different programs (overwhelmingly).
    EXPECT_NE(generateProgram(1).serialize(),
              generateProgram(2).serialize());
}

TEST(FuzzProgram, SerializeParseRoundTrip)
{
    const FuzzProgram p = generateProgram(42);
    FuzzProgram q;
    std::string err;
    ASSERT_TRUE(FuzzProgram::parse(p.serialize(), q, &err)) << err;
    EXPECT_EQ(p.serialize(), q.serialize());
    EXPECT_EQ(p.seed, q.seed);
    EXPECT_EQ(p.wordGranularity, q.wordGranularity);
    EXPECT_EQ(p.olderWins, q.olderWins);
    EXPECT_EQ(p.txs.size(), q.txs.size());
    EXPECT_EQ(p.threads.size(), q.threads.size());
}

TEST(FuzzProgram, ParseRejectsMalformedInput)
{
    FuzzProgram q;
    std::string err;
    EXPECT_FALSE(FuzzProgram::parse("not a replay", q, &err));
    EXPECT_FALSE(err.empty());

    // A nest edge pointing backwards (cycle) must be rejected.
    FuzzProgram p;
    p.txs.resize(2);
    FuzzOp nest;
    nest.kind = FuzzOpKind::Nest;
    nest.child = 0; // tx 1 -> tx 0: child index must be > parent's
    p.txs[1].ops.push_back(nest);
    nest.child = 1;
    p.txs[0].ops.push_back(nest);
    ThreadOp top;
    top.kind = ThreadOpKind::RunTx;
    top.tx = 0;
    p.threads.push_back({top});
    EXPECT_FALSE(FuzzProgram::parse(p.serialize(), q, &err));
}

TEST(FuzzProgram, ParseRejectsMangledCapacityLines)
{
    // Negative corpus: each file carries one specific capacity-line
    // defect. A mangled capacity line must be reported as a capacity
    // problem — before this hardening, a truncated line fell through
    // keyword matching and surfaced as a baffling "missing inject".
    const char* files[] = {
        "capacity_truncated.replay",   "capacity_duplicate.replay",
        "capacity_out_of_range.replay", "capacity_bad_mode.replay",
        "capacity_trailing.replay",
    };
    for (const char* f : files) {
        SCOPED_TRACE(f);
        std::ifstream is(std::string(TMSIM_REPLAYS_DIR) + "/" + f);
        ASSERT_TRUE(is.good());
        std::stringstream buf;
        buf << is.rdbuf();
        FuzzProgram q;
        std::string err;
        EXPECT_FALSE(FuzzProgram::parse(buf.str(), q, &err));
        EXPECT_NE(err.find("capacity"), std::string::npos) << err;
    }
}

TEST(FuzzProgram, ParseAcceptsCapacityLineRoundTrip)
{
    FuzzProgram p = generateProgram(3);
    p.rsetCap = 4;
    p.wsetCap = 8;
    p.capacityMode = CapacityMode::Overflow;
    FuzzProgram q;
    std::string err;
    ASSERT_TRUE(FuzzProgram::parse(p.serialize(), q, &err)) << err;
    EXPECT_EQ(q.rsetCap, 4);
    EXPECT_EQ(q.wsetCap, 8);
    EXPECT_EQ(q.capacityMode, CapacityMode::Overflow);
    EXPECT_EQ(p.serialize(), q.serialize());
}

namespace {

/** A two-thread program of counter increments on one shared slot. */
FuzzProgram
tinyProgram()
{
    FuzzProgram p;
    p.seed = 0;
    p.slotsPerRegion = 4;
    FuzzTx tx;
    FuzzOp add;
    add.kind = FuzzOpKind::TxAdd;
    add.region = Region::Shared;
    add.slot = 0;
    add.value = 3;
    tx.ops.push_back(add);
    p.txs.push_back(tx);
    ThreadOp run;
    run.kind = ThreadOpKind::RunTx;
    run.tx = 0;
    p.threads.push_back({run, run});
    p.threads.push_back({run});
    return p;
}

} // namespace

TEST(FuzzOracle, CleanRunPassesEveryConfig)
{
    const FuzzFailure fail = runProgramAllConfigs(tinyProgram());
    EXPECT_FALSE(fail.failed) << "[" << fail.config << "] "
                              << fail.message;
}

TEST(FuzzOracle, TamperedReadValueIsFlagged)
{
    const FuzzProgram p = tinyProgram();
    FuzzInterp interp(p, fuzzConfigs(p)[0].htm);
    ObservedRun run = interp.run();
    ASSERT_TRUE(checkRun(p, run).ok);

    // Corrupt one committed read; the golden replay must notice.
    bool tampered = false;
    for (auto& u : run.units) {
        if (u.dead)
            continue;
        for (auto& a : u.accesses) {
            if (a.kind == ObservedAccess::Kind::Read) {
                a.value ^= 0xFF;
                tampered = true;
                break;
            }
        }
        if (tampered)
            break;
    }
    ASSERT_TRUE(tampered);
    EXPECT_FALSE(checkRun(p, run).ok);
}

TEST(FuzzOracle, TamperedFinalMemoryIsFlagged)
{
    const FuzzProgram p = tinyProgram();
    FuzzInterp interp(p, fuzzConfigs(p)[0].htm);
    ObservedRun run = interp.run();
    ASSERT_TRUE(checkRun(p, run).ok);
    ASSERT_FALSE(run.finalChecked.empty());
    run.finalChecked[0].second += 1;
    EXPECT_FALSE(checkRun(p, run).ok);
}

TEST(FuzzOracle, HiddenStoreIsDetectedShrunkAndReplayable)
{
    FuzzProgram p = generateProgram(7);
    p.injectHiddenStoreAfter = 0;
    const FuzzFailure fail = runProgramAllConfigs(p);
    ASSERT_TRUE(fail.failed);

    const FuzzProgram shrunk = shrinkProgram(p, 120);
    const FuzzFailure sf = runProgramAllConfigs(shrunk);
    EXPECT_TRUE(sf.failed);
    EXPECT_LE(shrunk.threads.size(), p.threads.size());

    // The replay text reproduces the failure deterministically.
    FuzzProgram replayed;
    std::string err;
    ASSERT_TRUE(FuzzProgram::parse(shrunk.serialize(), replayed, &err))
        << err;
    const FuzzFailure rf = runProgramAllConfigs(replayed);
    EXPECT_TRUE(rf.failed);
    EXPECT_EQ(rf.config, sf.config);
    EXPECT_EQ(rf.message, sf.message);
}

TEST(FuzzDriver, ConfigsCoverTheFourDesignPoints)
{
    const auto cfgs = fuzzConfigs(tinyProgram());
    ASSERT_EQ(cfgs.size(), 4u);
    int undolog = 0, eager = 0, flatten = 0;
    for (const auto& c : cfgs) {
        undolog += c.htm.version == VersionMode::UndoLog;
        eager += c.htm.conflict == ConflictMode::Eager;
        flatten += c.htm.nesting == NestingMode::Flatten;
    }
    EXPECT_EQ(undolog, 1);
    EXPECT_EQ(eager, 2);
    EXPECT_EQ(flatten, 1);
}

TEST(CommitOrderHooks, OneSerializePerOuterCommitInOrder)
{
    MachineConfig cfg;
    cfg.numCpus = 2;
    cfg.htm = HtmConfig::paperLazy();
    cfg.memBytes = 1 << 20;
    Machine m(cfg);
    const Addr a = m.memory().allocate(64);

    std::vector<std::pair<CpuId, bool>> serialized;
    int cancelled = 0;
    m.setCommitOrderHooks(
        [&](CpuId cpu, bool open) { serialized.push_back({cpu, open}); },
        [&](CpuId) { ++cancelled; });

    std::vector<std::unique_ptr<TxThread>> threads;
    for (int i = 0; i < 2; ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));
    for (int i = 0; i < 2; ++i) {
        TxThread* t = threads[static_cast<size_t>(i)].get();
        m.spawn(i, [t, a](Cpu& c) -> SimTask {
            co_await t->atomic([a](TxThread& th) -> SimTask {
                Word v = co_await th.cpu().load(a);
                co_await th.cpu().exec(20);
                co_await th.cpu().store(a, v + 1);
            });
            (void)c;
        });
    }
    m.run();

    // Both increments landed, so every memory commit serialized
    // exactly once: two live outer commits, each open=false, plus one
    // serialize per rollback that had already validated (cancelled).
    EXPECT_EQ(m.memory().read(a), 2u);
    ASSERT_EQ(serialized.size(), 2u + static_cast<size_t>(cancelled));
    for (const auto& [cpu, open] : serialized) {
        EXPECT_TRUE(cpu == 0 || cpu == 1);
        EXPECT_FALSE(open);
    }
}

TEST(CommitOrderHooks, OpenNestedCommitSerializesAsOpen)
{
    MachineConfig cfg;
    cfg.numCpus = 1;
    cfg.htm = HtmConfig::paperLazy();
    cfg.memBytes = 1 << 20;
    Machine m(cfg);
    const Addr a = m.memory().allocate(64);

    std::vector<bool> openFlags;
    m.setCommitOrderHooks(
        [&](CpuId, bool open) { openFlags.push_back(open); },
        [&](CpuId) {});

    TxThread t(m.cpu(0));
    m.spawn(0, [&t, a](Cpu&) -> SimTask {
        co_await t.atomic([a](TxThread& th) -> SimTask {
            co_await th.cpu().store(a, 1);
            co_await th.atomicOpen([a](TxThread& th2) -> SimTask {
                co_await th2.cpu().store(a + 8, 2);
            });
        });
    });
    m.run();

    // Open child serializes first (open=true), outer commit second.
    ASSERT_EQ(openFlags.size(), 2u);
    EXPECT_TRUE(openFlags[0]);
    EXPECT_FALSE(openFlags[1]);
}
