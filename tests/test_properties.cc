/**
 * @file
 * Property-based tests (parameterised sweeps): serialisability
 * witnesses under randomised workloads across the full HTM
 * configuration space, plus determinism of the simulator itself.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "core/machine.hh"
#include "runtime/tx_thread.hh"
#include "sim/rng.hh"
#include "workloads/btree.hh"

using namespace tmsim;

namespace {

struct PropCase
{
    const char* tag;
    VersionMode version;
    ConflictMode conflict;
    ConflictPolicy policy;
    NestingMode nesting;
    NestScheme scheme;
    int threads;
};

HtmConfig
toConfig(const PropCase& c)
{
    HtmConfig htm;
    htm.version = c.version;
    htm.conflict = c.conflict;
    htm.policy = c.policy;
    htm.nesting = c.nesting;
    htm.scheme = c.scheme;
    return htm;
}

MachineConfig
machineConfig(const PropCase& c)
{
    MachineConfig cfg;
    cfg.numCpus = c.threads;
    cfg.htm = toConfig(c);
    cfg.memBytes = 16 * 1024 * 1024;
    return cfg;
}

class PropertyTest : public ::testing::TestWithParam<PropCase>
{
};

} // namespace

TEST_P(PropertyTest, RandomNestedCountersAreExact)
{
    const PropCase& pc = GetParam();
    Machine m(machineConfig(pc));
    std::vector<std::unique_ptr<TxThread>> threads;
    for (int i = 0; i < pc.threads; ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));

    constexpr int counters = 6;
    Addr base = m.memory().allocate(counters * 64, 64);
    auto addrOf = [&](int i) { return base + static_cast<Addr>(i) * 64; };
    constexpr int opsPerThread = 25;
    std::vector<int> expected(counters, 0);

    // Host-side expectation: each thread's op sequence is derived from
    // a deterministic RNG; increments survive exactly once per commit.
    for (int t = 0; t < pc.threads; ++t) {
        Rng rng(1000 + static_cast<std::uint64_t>(t));
        for (int k = 0; k < opsPerThread; ++k) {
            rng.next(); // depth draw
            ++expected[static_cast<size_t>(rng.below(counters))];
        }
    }

    for (int t = 0; t < pc.threads; ++t) {
        m.spawn(t, [&, t](Cpu&) -> SimTask {
            TxThread& th = *threads[static_cast<size_t>(t)];
            Rng rng(1000 + static_cast<std::uint64_t>(t));
            for (int k = 0; k < opsPerThread; ++k) {
                int depth = static_cast<int>(rng.next() % 3); // 0..2
                int idx = static_cast<int>(rng.below(counters));
                Addr a = addrOf(idx);
                auto increment = [&](TxThread& tx) -> SimTask {
                    Word v = co_await tx.ld(a);
                    co_await tx.work(5);
                    co_await tx.st(a, v + 1);
                };
                co_await th.atomic([&](TxThread& tx) -> SimTask {
                    co_await tx.work(10);
                    if (depth == 0) {
                        co_await increment(tx);
                    } else if (depth == 1) {
                        co_await tx.atomic([&](TxThread& ti) -> SimTask {
                            co_await increment(ti);
                        });
                    } else {
                        co_await tx.atomic([&](TxThread& ti) -> SimTask {
                            co_await ti.atomic(
                                [&](TxThread& tj) -> SimTask {
                                    co_await increment(tj);
                                });
                        });
                    }
                });
            }
        });
    }
    m.run();
    for (int i = 0; i < counters; ++i) {
        EXPECT_EQ(m.memory().read(addrOf(i)),
                  static_cast<Word>(expected[static_cast<size_t>(i)]))
            << pc.tag << " counter " << i;
    }
}

TEST_P(PropertyTest, RandomTransfersConserveTotal)
{
    const PropCase& pc = GetParam();
    Machine m(machineConfig(pc));
    std::vector<std::unique_ptr<TxThread>> threads;
    for (int i = 0; i < pc.threads; ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));

    constexpr int accounts = 12;
    constexpr Word initial = 500;
    Addr base = m.memory().allocate(accounts * 64, 64);
    auto addrOf = [&](int i) { return base + static_cast<Addr>(i) * 64; };
    for (int i = 0; i < accounts; ++i)
        m.memory().write(addrOf(i), initial);

    for (int t = 0; t < pc.threads; ++t) {
        m.spawn(t, [&, t](Cpu&) -> SimTask {
            TxThread& th = *threads[static_cast<size_t>(t)];
            Rng rng(77 + static_cast<std::uint64_t>(t));
            for (int k = 0; k < 20; ++k) {
                int from = static_cast<int>(rng.below(accounts));
                int to = static_cast<int>(rng.below(accounts));
                Word amount = rng.range(1, 400);
                bool sometimesAbort = rng.chancePermille(150);
                TxOutcome out = co_await th.atomic(
                    [&](TxThread& tx) -> SimTask {
                        Word b = co_await tx.ld(addrOf(from));
                        if (b < amount || sometimesAbort)
                            co_await tx.cpu().xabort(1);
                        co_await tx.st(addrOf(from), b - amount);
                        // The deposit runs closed-nested: composable.
                        co_await tx.atomic([&](TxThread& ti) -> SimTask {
                            Word c = co_await ti.ld(addrOf(to));
                            co_await ti.st(addrOf(to), c + amount);
                        });
                    });
                (void)out;
            }
        });
    }
    m.run();
    Word total = 0;
    for (int i = 0; i < accounts; ++i)
        total += m.memory().read(addrOf(i));
    EXPECT_EQ(total, static_cast<Word>(accounts) * initial) << pc.tag;
}

TEST_P(PropertyTest, BTreeKeySetMatchesModelUnderConcurrency)
{
    const PropCase& pc = GetParam();
    Machine m(machineConfig(pc));
    SimBTree tree = SimBTree::create(m.memory(), 4096);
    std::vector<std::unique_ptr<TxThread>> threads;
    for (int i = 0; i < pc.threads; ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));

    // Disjoint per-thread key ranges keep the expected key set exact;
    // structural interference (splits, shared upper nodes) remains.
    std::set<Word> expectedKeys;
    for (int t = 0; t < pc.threads; ++t) {
        Rng rng(5 + static_cast<std::uint64_t>(t));
        for (int k = 0; k < 20; ++k)
            expectedKeys.insert(static_cast<Word>(t) * 1000 +
                                rng.range(1, 200));
    }

    for (int t = 0; t < pc.threads; ++t) {
        m.spawn(t, [&, t](Cpu&) -> SimTask {
            TxThread& th = *threads[static_cast<size_t>(t)];
            Rng rng(5 + static_cast<std::uint64_t>(t));
            for (int k = 0; k < 20; ++k) {
                Word key = static_cast<Word>(t) * 1000 + rng.range(1, 200);
                co_await th.atomic([&](TxThread& tx) -> SimTask {
                    co_await tree.insert(tx, key, key);
                });
            }
        });
    }
    m.run();
    EXPECT_TRUE(tree.validateStructure(m.memory())) << pc.tag;
    auto items = tree.items(m.memory());
    std::set<Word> got;
    for (const auto& [k, v] : items) {
        (void)v;
        got.insert(k);
    }
    EXPECT_EQ(got, expectedKeys) << pc.tag;
}

TEST_P(PropertyTest, SimulationIsDeterministic)
{
    const PropCase& pc = GetParam();
    auto runOnce = [&]() -> Tick {
        Machine m(machineConfig(pc));
        std::vector<std::unique_ptr<TxThread>> threads;
        for (int i = 0; i < pc.threads; ++i)
            threads.push_back(std::make_unique<TxThread>(m.cpu(i)));
        Addr a = m.memory().allocate(64);
        for (int t = 0; t < pc.threads; ++t) {
            m.spawn(t, [&, t](Cpu&) -> SimTask {
                TxThread& th = *threads[static_cast<size_t>(t)];
                for (int k = 0; k < 15; ++k) {
                    co_await th.atomic([&](TxThread& tx) -> SimTask {
                        Word v = co_await tx.ld(a);
                        co_await tx.work(7);
                        co_await tx.st(a, v + 1);
                    });
                }
            });
        }
        return m.run();
    };
    Tick first = runOnce();
    Tick second = runOnce();
    EXPECT_EQ(first, second) << pc.tag;
    EXPECT_GT(first, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, PropertyTest,
    ::testing::Values(
        PropCase{"lazy_wb_assoc_4t", VersionMode::WriteBuffer,
                 ConflictMode::Lazy, ConflictPolicy::RequesterWins,
                 NestingMode::Full, NestScheme::Associativity, 4},
        PropCase{"lazy_wb_mtrack_4t", VersionMode::WriteBuffer,
                 ConflictMode::Lazy, ConflictPolicy::RequesterWins,
                 NestingMode::Full, NestScheme::MultiTracking, 4},
        PropCase{"lazy_flatten_4t", VersionMode::WriteBuffer,
                 ConflictMode::Lazy, ConflictPolicy::RequesterWins,
                 NestingMode::Flatten, NestScheme::Associativity, 4},
        PropCase{"eager_req_4t", VersionMode::UndoLog, ConflictMode::Eager,
                 ConflictPolicy::RequesterWins, NestingMode::Full,
                 NestScheme::MultiTracking, 4},
        PropCase{"eager_older_4t", VersionMode::UndoLog,
                 ConflictMode::Eager, ConflictPolicy::OlderWins,
                 NestingMode::Full, NestScheme::MultiTracking, 4},
        PropCase{"eager_wb_4t", VersionMode::WriteBuffer,
                 ConflictMode::Eager, ConflictPolicy::RequesterWins,
                 NestingMode::Full, NestScheme::Associativity, 4},
        PropCase{"lazy_wb_assoc_8t", VersionMode::WriteBuffer,
                 ConflictMode::Lazy, ConflictPolicy::RequesterWins,
                 NestingMode::Full, NestScheme::Associativity, 8},
        PropCase{"eager_flatten_8t", VersionMode::UndoLog,
                 ConflictMode::Eager, ConflictPolicy::RequesterWins,
                 NestingMode::Flatten, NestScheme::MultiTracking, 8}),
    [](const ::testing::TestParamInfo<PropCase>& info) {
        return std::string(info.param.tag);
    });
