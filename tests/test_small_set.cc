/**
 * @file
 * Growth-edge tests for the flat read/write-set containers: the
 * linear-scan -> open-addressed-index transition at exactly scanMax
 * elements, insertion across the rehashIfNeeded load-factor boundary,
 * erase/tombstone behaviour around those edges, and inline -> heap
 * growth of FlatAddrSet's dense array.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "htm/small_set.hh"

using namespace tmsim;

namespace {

/** Distinct line-ish addresses, 64-byte stride. */
Addr
key(int i)
{
    return 0x4000 + static_cast<Addr>(i) * 64;
}

} // namespace

TEST(FlatAddrSet, InsertExactlyAtScanMaxStaysConsistent)
{
    // scanMax is 16: element 16 (the 17th) triggers the index build.
    // Membership answers must be identical just below, at, and just
    // above the boundary.
    FlatAddrSet<8> s;
    for (int i = 0; i < 16; ++i)
        EXPECT_TRUE(s.insert(key(i)));
    EXPECT_EQ(s.size(), 16u);
    for (int i = 0; i < 16; ++i)
        EXPECT_TRUE(s.contains(key(i))) << i;
    EXPECT_FALSE(s.contains(key(16)));

    // Duplicate inserts at the boundary must not build a bogus index.
    EXPECT_FALSE(s.insert(key(7)));
    EXPECT_EQ(s.size(), 16u);

    // The 17th element crosses into indexed mode.
    EXPECT_TRUE(s.insert(key(16)));
    EXPECT_EQ(s.size(), 17u);
    for (int i = 0; i < 17; ++i)
        EXPECT_TRUE(s.contains(key(i))) << i;
    EXPECT_FALSE(s.contains(key(17)));
    EXPECT_FALSE(s.insert(key(16)));
}

TEST(FlatAddrSet, InsertAcrossRehashBoundary)
{
    // The first index build sizes for 17 keys -> 64 slots; inserts
    // rehash when (used + tombs) * 4 >= slots * 3, i.e. at 48 live
    // entries. Walk well past that and verify every membership query
    // and the insertion-order iteration survive the rehash.
    FlatAddrSet<8> s;
    const int n = 130; // crosses 48 (64->128) and 96 (128->256)
    for (int i = 0; i < n; ++i)
        EXPECT_TRUE(s.insert(key(i))) << i;
    EXPECT_EQ(s.size(), static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        EXPECT_TRUE(s.contains(key(i))) << i;
    EXPECT_FALSE(s.contains(key(n)));

    // Insertion order is preserved for erase-free sets (the write-set
    // order reconstruction in HtmContext relies on this).
    int i = 0;
    for (Addr a : s)
        EXPECT_EQ(a, key(i++));
    EXPECT_EQ(i, n);
}

TEST(FlatAddrSet, TombstonesCountTowardRehash)
{
    // Repeated insert/erase churn accumulates tombstones; the load
    // factor counts them, so the index must eventually rebuild instead
    // of degrading into an always-full probe loop. This loops far past
    // the slot count — it only terminates if tombstone rehashing works.
    FlatAddrSet<8> s;
    for (int i = 0; i < 20; ++i)
        s.insert(key(i));
    for (int i = 0; i < 500; ++i) {
        EXPECT_EQ(s.erase(key(1000 + i)), 0u)
            << "erase of an absent key must be a no-op";
        EXPECT_TRUE(s.insert(key(1000 + i)));
        EXPECT_EQ(s.erase(key(1000 + i)), 1u);
    }
    EXPECT_EQ(s.size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_TRUE(s.contains(key(i))) << i;
}

TEST(FlatAddrSet, ClearAfterIndexedModeRebuildsLazily)
{
    FlatAddrSet<8> s;
    for (int i = 0; i < 40; ++i)
        s.insert(key(i));
    s.clear();
    EXPECT_EQ(s.size(), 0u);
    EXPECT_FALSE(s.contains(key(3)));

    // Refill past scanMax again: the index must rebuild from scratch
    // with no stale positions from the previous generation.
    for (int i = 0; i < 20; ++i)
        EXPECT_TRUE(s.insert(key(100 + i)));
    for (int i = 0; i < 20; ++i)
        EXPECT_TRUE(s.contains(key(100 + i))) << i;
    for (int i = 0; i < 40; ++i)
        EXPECT_FALSE(s.contains(key(i))) << i;
}

TEST(FlatAddrMap, GrowthAcrossScanMaxAndRehashBoundary)
{
    FlatAddrMap<std::uint32_t> m;
    const int n = 130;
    for (int i = 0; i < n; ++i)
        m[key(i)] = static_cast<std::uint32_t>(i * 3);
    EXPECT_EQ(m.size(), static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        const std::uint32_t* v = m.find(key(i));
        ASSERT_NE(v, nullptr) << i;
        EXPECT_EQ(*v, static_cast<std::uint32_t>(i * 3)) << i;
    }
    EXPECT_EQ(m.find(key(n)), nullptr);

    // operator[] on an existing key must not duplicate the entry —
    // including for the boundary element (dense position scanMax).
    m[key(16)] = 999;
    EXPECT_EQ(m.size(), static_cast<size_t>(n));
    EXPECT_EQ(*m.find(key(16)), 999u);
}

TEST(FlatAddrMap, SwapRemoveKeepsIndexPositionsFresh)
{
    FlatAddrMap<int> m;
    for (int i = 0; i < 32; ++i)
        m[key(i)] = i;

    // Erasing from the middle swap-moves the last entry into the hole;
    // the index must track the move or lookups of the moved key die.
    EXPECT_EQ(m.erase(key(5)), 1u);
    EXPECT_EQ(m.find(key(5)), nullptr);
    const int* moved = m.find(key(31));
    ASSERT_NE(moved, nullptr);
    EXPECT_EQ(*moved, 31);
    EXPECT_EQ(m.size(), 31u);
    EXPECT_EQ(m.erase(key(5)), 0u);

    for (int i = 0; i < 32; ++i) {
        if (i == 5)
            continue;
        const int* v = m.find(key(i));
        ASSERT_NE(v, nullptr) << i;
        EXPECT_EQ(*v, i) << i;
    }
}
