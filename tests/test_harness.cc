/**
 * @file
 * Workload-harness tests: RunResult field plausibility, Fig5Row
 * arithmetic, and negative verification — each kernel's verifier must
 * actually detect a corrupted result (otherwise the "ok" columns in
 * the benches prove nothing).
 */

#include <gtest/gtest.h>

#include "workloads/kernel_iobench.hh"
#include "workloads/kernel_mp3d.hh"
#include "workloads/kernel_specjbb.hh"
#include "workloads/kernels_scientific.hh"

using namespace tmsim;

TEST(Harness, RunResultFieldsArePopulated)
{
    SciParams p = sciSwim();
    p.outerIters = 16;
    SciKernel k(p);
    RunResult r = runKernel(k, HtmConfig::paperLazy(), 4);
    EXPECT_TRUE(r.verified);
    EXPECT_EQ(r.kernel, "swim");
    EXPECT_EQ(r.threads, 4);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.commits, 0u);
    EXPECT_FALSE(r.htm.empty());
}

TEST(Harness, Fig5RowArithmeticIsConsistent)
{
    Fig5Row row = fig5Row(
        [] {
            SciParams p = sciTomcatv();
            p.outerIters = 24;
            return std::make_unique<SciKernel>(p);
        },
        4);
    EXPECT_TRUE(row.allVerified);
    EXPECT_DOUBLE_EQ(row.nestingSpeedup,
                     static_cast<double>(row.flat.cycles) /
                         static_cast<double>(row.nested.cycles));
    EXPECT_DOUBLE_EQ(row.nestedVsSeq,
                     static_cast<double>(row.seq.cycles) /
                         static_cast<double>(row.nested.cycles));
    EXPECT_EQ(row.seq.threads, 1);
    EXPECT_EQ(row.nested.threads, 4);
}

namespace {

/** Run a kernel inline so the final memory image can be corrupted
 *  before verify() is consulted. */
template <typename K>
bool
verifyAfterCorruption(K& kernel, std::function<void(Machine&)> corrupt)
{
    MachineConfig cfg;
    cfg.numCpus = 4;
    cfg.htm = HtmConfig::paperLazy();
    cfg.memBytes = 64ull * 1024 * 1024;
    Machine m(cfg);
    kernel.init(m, 4);
    std::vector<std::unique_ptr<TxThread>> threads;
    for (int i = 0; i < 4; ++i)
        threads.push_back(std::make_unique<TxThread>(m.cpu(i)));
    for (int i = 0; i < 4; ++i) {
        TxThread* t = threads[static_cast<size_t>(i)].get();
        K* k = &kernel;
        m.spawn(i,
                [k, t, i](Cpu&) -> SimTask { co_await k->thread(*t, i, 4); });
    }
    m.run();
    EXPECT_TRUE(kernel.verify(m, 4)); // sane before corruption
    corrupt(m);
    return kernel.verify(m, 4);
}

} // namespace

TEST(HarnessNegative, SciVerifierCatchesLostIncrement)
{
    SciParams p = sciWater();
    p.outerIters = 16;
    SciKernel k(p);
    // Any cell +1 breaks the total.
    bool ok = verifyAfterCorruption(k, [&](Machine& m) {
        // The cells array is the first workload allocation; find a
        // nonzero cell by scanning and bump it.
        for (Addr a = 64; a < 1 << 20; a += 64) {
            Word v = m.memory().read(a);
            if (v != 0 && v < 1000) {
                m.memory().write(a, v + 1);
                return;
            }
        }
    });
    EXPECT_FALSE(ok);
}

TEST(HarnessNegative, Mp3dVerifierCatchesMomentumDrift)
{
    Mp3dParams p;
    p.particles = 96;
    Mp3dKernel k(p);
    bool sawCorruption = false;
    bool ok = verifyAfterCorruption(k, [&](Machine& m) {
        // Momentum is a single nonzero word allocated after the cells;
        // corrupt the largest word found in the low heap.
        Addr best = 0;
        Word bestV = 0;
        for (Addr a = 64; a < 1 << 20; a += 8) {
            Word v = m.memory().read(a);
            if (v > bestV && v < (1ull << 40)) {
                bestV = v;
                best = a;
            }
        }
        if (best) {
            m.memory().write(best, bestV + 1);
            sawCorruption = true;
        }
    });
    EXPECT_TRUE(sawCorruption);
    EXPECT_FALSE(ok);
}

TEST(HarnessNegative, JbbVerifierCatchesStockLoss)
{
    SpecJbbKernel k(JbbVariant::Flat);
    bool ok = verifyAfterCorruption(k, [&](Machine& m) {
        // Stock values start at 100 and end close to it; find one and
        // nudge it (simulating a lost update).
        auto items = k.stock().items(m.memory());
        ASSERT_FALSE(items.empty());
        // Rewrite via host: re-find the leaf word by searching memory
        // for the exact (key,value) pair is fragile; instead corrupt
        // through the tree's own accessor surface: bulk operations are
        // host-side, so scan memory for the first value in [90, 110]
        // adjacent to a plausible key.
        for (Addr a = 64; a < 4u << 20; a += 8) {
            Word v = m.memory().read(a);
            if (v >= 90 && v <= 110) {
                m.memory().write(a, v - 1);
                return;
            }
        }
    });
    EXPECT_FALSE(ok);
}

TEST(HarnessNegative, IoVerifierCatchesTornRecord)
{
    IoBenchParams p;
    p.msgsPerThread = 6;
    IoBenchKernel k(p);
    bool ok = verifyAfterCorruption(k, [&](Machine& m) {
        // Log records carry tag words >= 1000000; smash one payload.
        for (Addr a = 64; a < 4u << 20; a += 8) {
            if (m.memory().read(a) >= 1000000) {
                m.memory().write(a + 8, 0xDEAD);
                return;
            }
        }
    });
    EXPECT_FALSE(ok);
}
